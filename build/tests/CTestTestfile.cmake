# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/atune_common_tests[1]_include.cmake")
include("/root/repo/build/tests/atune_math_tests[1]_include.cmake")
include("/root/repo/build/tests/atune_ml_tests[1]_include.cmake")
include("/root/repo/build/tests/atune_core_tests[1]_include.cmake")
include("/root/repo/build/tests/atune_systems_tests[1]_include.cmake")
include("/root/repo/build/tests/atune_tuners_tests[1]_include.cmake")
include("/root/repo/build/tests/atune_integration_tests[1]_include.cmake")
