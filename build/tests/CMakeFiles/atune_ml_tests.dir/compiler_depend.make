# Empty compiler generated dependencies file for atune_ml_tests.
# This may be replaced when dependencies are built.
