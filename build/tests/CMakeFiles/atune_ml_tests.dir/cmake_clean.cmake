file(REMOVE_RECURSE
  "CMakeFiles/atune_ml_tests.dir/ml/acquisition_test.cc.o"
  "CMakeFiles/atune_ml_tests.dir/ml/acquisition_test.cc.o.d"
  "CMakeFiles/atune_ml_tests.dir/ml/gaussian_process_test.cc.o"
  "CMakeFiles/atune_ml_tests.dir/ml/gaussian_process_test.cc.o.d"
  "CMakeFiles/atune_ml_tests.dir/ml/kmeans_test.cc.o"
  "CMakeFiles/atune_ml_tests.dir/ml/kmeans_test.cc.o.d"
  "CMakeFiles/atune_ml_tests.dir/ml/linear_model_test.cc.o"
  "CMakeFiles/atune_ml_tests.dir/ml/linear_model_test.cc.o.d"
  "CMakeFiles/atune_ml_tests.dir/ml/neural_net_test.cc.o"
  "CMakeFiles/atune_ml_tests.dir/ml/neural_net_test.cc.o.d"
  "CMakeFiles/atune_ml_tests.dir/ml/nnls_test.cc.o"
  "CMakeFiles/atune_ml_tests.dir/ml/nnls_test.cc.o.d"
  "atune_ml_tests"
  "atune_ml_tests.pdb"
  "atune_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
