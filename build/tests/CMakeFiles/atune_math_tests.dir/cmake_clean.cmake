file(REMOVE_RECURSE
  "CMakeFiles/atune_math_tests.dir/math/doe_test.cc.o"
  "CMakeFiles/atune_math_tests.dir/math/doe_test.cc.o.d"
  "CMakeFiles/atune_math_tests.dir/math/matrix_test.cc.o"
  "CMakeFiles/atune_math_tests.dir/math/matrix_test.cc.o.d"
  "CMakeFiles/atune_math_tests.dir/math/sampling_test.cc.o"
  "CMakeFiles/atune_math_tests.dir/math/sampling_test.cc.o.d"
  "atune_math_tests"
  "atune_math_tests.pdb"
  "atune_math_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_math_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
