# Empty compiler generated dependencies file for atune_math_tests.
# This may be replaced when dependencies are built.
