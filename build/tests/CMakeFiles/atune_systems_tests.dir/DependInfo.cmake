
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/systems/dbms_model_test.cc" "tests/CMakeFiles/atune_systems_tests.dir/systems/dbms_model_test.cc.o" "gcc" "tests/CMakeFiles/atune_systems_tests.dir/systems/dbms_model_test.cc.o.d"
  "/root/repo/tests/systems/dbms_system_test.cc" "tests/CMakeFiles/atune_systems_tests.dir/systems/dbms_system_test.cc.o" "gcc" "tests/CMakeFiles/atune_systems_tests.dir/systems/dbms_system_test.cc.o.d"
  "/root/repo/tests/systems/hardware_test.cc" "tests/CMakeFiles/atune_systems_tests.dir/systems/hardware_test.cc.o" "gcc" "tests/CMakeFiles/atune_systems_tests.dir/systems/hardware_test.cc.o.d"
  "/root/repo/tests/systems/knob_behavior_test.cc" "tests/CMakeFiles/atune_systems_tests.dir/systems/knob_behavior_test.cc.o" "gcc" "tests/CMakeFiles/atune_systems_tests.dir/systems/knob_behavior_test.cc.o.d"
  "/root/repo/tests/systems/monotonicity_test.cc" "tests/CMakeFiles/atune_systems_tests.dir/systems/monotonicity_test.cc.o" "gcc" "tests/CMakeFiles/atune_systems_tests.dir/systems/monotonicity_test.cc.o.d"
  "/root/repo/tests/systems/mr_system_test.cc" "tests/CMakeFiles/atune_systems_tests.dir/systems/mr_system_test.cc.o" "gcc" "tests/CMakeFiles/atune_systems_tests.dir/systems/mr_system_test.cc.o.d"
  "/root/repo/tests/systems/multi_tenant_test.cc" "tests/CMakeFiles/atune_systems_tests.dir/systems/multi_tenant_test.cc.o" "gcc" "tests/CMakeFiles/atune_systems_tests.dir/systems/multi_tenant_test.cc.o.d"
  "/root/repo/tests/systems/spark_system_test.cc" "tests/CMakeFiles/atune_systems_tests.dir/systems/spark_system_test.cc.o" "gcc" "tests/CMakeFiles/atune_systems_tests.dir/systems/spark_system_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuners/CMakeFiles/atune_tuners.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/atune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/atune_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/atune_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
