file(REMOVE_RECURSE
  "CMakeFiles/atune_systems_tests.dir/systems/dbms_model_test.cc.o"
  "CMakeFiles/atune_systems_tests.dir/systems/dbms_model_test.cc.o.d"
  "CMakeFiles/atune_systems_tests.dir/systems/dbms_system_test.cc.o"
  "CMakeFiles/atune_systems_tests.dir/systems/dbms_system_test.cc.o.d"
  "CMakeFiles/atune_systems_tests.dir/systems/hardware_test.cc.o"
  "CMakeFiles/atune_systems_tests.dir/systems/hardware_test.cc.o.d"
  "CMakeFiles/atune_systems_tests.dir/systems/knob_behavior_test.cc.o"
  "CMakeFiles/atune_systems_tests.dir/systems/knob_behavior_test.cc.o.d"
  "CMakeFiles/atune_systems_tests.dir/systems/monotonicity_test.cc.o"
  "CMakeFiles/atune_systems_tests.dir/systems/monotonicity_test.cc.o.d"
  "CMakeFiles/atune_systems_tests.dir/systems/mr_system_test.cc.o"
  "CMakeFiles/atune_systems_tests.dir/systems/mr_system_test.cc.o.d"
  "CMakeFiles/atune_systems_tests.dir/systems/multi_tenant_test.cc.o"
  "CMakeFiles/atune_systems_tests.dir/systems/multi_tenant_test.cc.o.d"
  "CMakeFiles/atune_systems_tests.dir/systems/spark_system_test.cc.o"
  "CMakeFiles/atune_systems_tests.dir/systems/spark_system_test.cc.o.d"
  "atune_systems_tests"
  "atune_systems_tests.pdb"
  "atune_systems_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_systems_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
