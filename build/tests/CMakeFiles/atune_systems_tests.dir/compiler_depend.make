# Empty compiler generated dependencies file for atune_systems_tests.
# This may be replaced when dependencies are built.
