file(REMOVE_RECURSE
  "CMakeFiles/atune_common_tests.dir/common/csv_test.cc.o"
  "CMakeFiles/atune_common_tests.dir/common/csv_test.cc.o.d"
  "CMakeFiles/atune_common_tests.dir/common/logging_test.cc.o"
  "CMakeFiles/atune_common_tests.dir/common/logging_test.cc.o.d"
  "CMakeFiles/atune_common_tests.dir/common/random_test.cc.o"
  "CMakeFiles/atune_common_tests.dir/common/random_test.cc.o.d"
  "CMakeFiles/atune_common_tests.dir/common/stats_test.cc.o"
  "CMakeFiles/atune_common_tests.dir/common/stats_test.cc.o.d"
  "CMakeFiles/atune_common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/atune_common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/atune_common_tests.dir/common/string_util_test.cc.o"
  "CMakeFiles/atune_common_tests.dir/common/string_util_test.cc.o.d"
  "atune_common_tests"
  "atune_common_tests.pdb"
  "atune_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
