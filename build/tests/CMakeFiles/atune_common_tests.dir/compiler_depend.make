# Empty compiler generated dependencies file for atune_common_tests.
# This may be replaced when dependencies are built.
