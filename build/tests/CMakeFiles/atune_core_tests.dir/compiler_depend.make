# Empty compiler generated dependencies file for atune_core_tests.
# This may be replaced when dependencies are built.
