file(REMOVE_RECURSE
  "CMakeFiles/atune_core_tests.dir/core/comparator_test.cc.o"
  "CMakeFiles/atune_core_tests.dir/core/comparator_test.cc.o.d"
  "CMakeFiles/atune_core_tests.dir/core/configuration_test.cc.o"
  "CMakeFiles/atune_core_tests.dir/core/configuration_test.cc.o.d"
  "CMakeFiles/atune_core_tests.dir/core/objective_test.cc.o"
  "CMakeFiles/atune_core_tests.dir/core/objective_test.cc.o.d"
  "CMakeFiles/atune_core_tests.dir/core/parameter_space_test.cc.o"
  "CMakeFiles/atune_core_tests.dir/core/parameter_space_test.cc.o.d"
  "CMakeFiles/atune_core_tests.dir/core/parameter_test.cc.o"
  "CMakeFiles/atune_core_tests.dir/core/parameter_test.cc.o.d"
  "CMakeFiles/atune_core_tests.dir/core/registry_test.cc.o"
  "CMakeFiles/atune_core_tests.dir/core/registry_test.cc.o.d"
  "CMakeFiles/atune_core_tests.dir/core/session_test.cc.o"
  "CMakeFiles/atune_core_tests.dir/core/session_test.cc.o.d"
  "CMakeFiles/atune_core_tests.dir/core/tuner_evaluator_test.cc.o"
  "CMakeFiles/atune_core_tests.dir/core/tuner_evaluator_test.cc.o.d"
  "atune_core_tests"
  "atune_core_tests.pdb"
  "atune_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
