# Empty compiler generated dependencies file for atune_integration_tests.
# This may be replaced when dependencies are built.
