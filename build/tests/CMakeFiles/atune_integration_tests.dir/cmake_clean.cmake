file(REMOVE_RECURSE
  "CMakeFiles/atune_integration_tests.dir/integration/determinism_test.cc.o"
  "CMakeFiles/atune_integration_tests.dir/integration/determinism_test.cc.o.d"
  "CMakeFiles/atune_integration_tests.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/atune_integration_tests.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/atune_integration_tests.dir/integration/misconfiguration_test.cc.o"
  "CMakeFiles/atune_integration_tests.dir/integration/misconfiguration_test.cc.o.d"
  "CMakeFiles/atune_integration_tests.dir/integration/tiny_budget_test.cc.o"
  "CMakeFiles/atune_integration_tests.dir/integration/tiny_budget_test.cc.o.d"
  "atune_integration_tests"
  "atune_integration_tests.pdb"
  "atune_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
