file(REMOVE_RECURSE
  "CMakeFiles/atune_tuners_tests.dir/tuners/adaptive_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/adaptive_test.cc.o.d"
  "CMakeFiles/atune_tuners_tests.dir/tuners/cost_model_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/cost_model_test.cc.o.d"
  "CMakeFiles/atune_tuners_tests.dir/tuners/diurnal_adaptation_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/diurnal_adaptation_test.cc.o.d"
  "CMakeFiles/atune_tuners_tests.dir/tuners/experiment_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/experiment_test.cc.o.d"
  "CMakeFiles/atune_tuners_tests.dir/tuners/ml_tuners_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/ml_tuners_test.cc.o.d"
  "CMakeFiles/atune_tuners_tests.dir/tuners/repository_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/repository_test.cc.o.d"
  "CMakeFiles/atune_tuners_tests.dir/tuners/rule_based_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/rule_based_test.cc.o.d"
  "CMakeFiles/atune_tuners_tests.dir/tuners/simulation_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/simulation_test.cc.o.d"
  "CMakeFiles/atune_tuners_tests.dir/tuners/starfish_test.cc.o"
  "CMakeFiles/atune_tuners_tests.dir/tuners/starfish_test.cc.o.d"
  "atune_tuners_tests"
  "atune_tuners_tests.pdb"
  "atune_tuners_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_tuners_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
