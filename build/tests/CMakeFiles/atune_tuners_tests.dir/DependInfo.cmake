
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tuners/adaptive_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/adaptive_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/adaptive_test.cc.o.d"
  "/root/repo/tests/tuners/cost_model_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/cost_model_test.cc.o.d"
  "/root/repo/tests/tuners/diurnal_adaptation_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/diurnal_adaptation_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/diurnal_adaptation_test.cc.o.d"
  "/root/repo/tests/tuners/experiment_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/experiment_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/experiment_test.cc.o.d"
  "/root/repo/tests/tuners/ml_tuners_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/ml_tuners_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/ml_tuners_test.cc.o.d"
  "/root/repo/tests/tuners/repository_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/repository_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/repository_test.cc.o.d"
  "/root/repo/tests/tuners/rule_based_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/rule_based_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/rule_based_test.cc.o.d"
  "/root/repo/tests/tuners/simulation_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/simulation_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/simulation_test.cc.o.d"
  "/root/repo/tests/tuners/starfish_test.cc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/starfish_test.cc.o" "gcc" "tests/CMakeFiles/atune_tuners_tests.dir/tuners/starfish_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuners/CMakeFiles/atune_tuners.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/atune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/atune_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/atune_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
