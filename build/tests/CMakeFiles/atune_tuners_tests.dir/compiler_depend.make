# Empty compiler generated dependencies file for atune_tuners_tests.
# This may be replaced when dependencies are built.
