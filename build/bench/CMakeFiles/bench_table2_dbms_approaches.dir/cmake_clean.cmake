file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dbms_approaches.dir/bench_table2_dbms_approaches.cc.o"
  "CMakeFiles/bench_table2_dbms_approaches.dir/bench_table2_dbms_approaches.cc.o.d"
  "bench_table2_dbms_approaches"
  "bench_table2_dbms_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dbms_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
