# Empty compiler generated dependencies file for bench_table2_dbms_approaches.
# This may be replaced when dependencies are built.
