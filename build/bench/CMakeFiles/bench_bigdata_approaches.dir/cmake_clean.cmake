file(REMOVE_RECURSE
  "CMakeFiles/bench_bigdata_approaches.dir/bench_bigdata_approaches.cc.o"
  "CMakeFiles/bench_bigdata_approaches.dir/bench_bigdata_approaches.cc.o.d"
  "bench_bigdata_approaches"
  "bench_bigdata_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bigdata_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
