# Empty dependencies file for bench_bigdata_approaches.
# This may be replaced when dependencies are built.
