file(REMOVE_RECURSE
  "CMakeFiles/bench_heterogeneity.dir/bench_heterogeneity.cc.o"
  "CMakeFiles/bench_heterogeneity.dir/bench_heterogeneity.cc.o.d"
  "bench_heterogeneity"
  "bench_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
