# Empty compiler generated dependencies file for bench_hadoop_vs_dbms.
# This may be replaced when dependencies are built.
