# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_hadoop_vs_dbms.
