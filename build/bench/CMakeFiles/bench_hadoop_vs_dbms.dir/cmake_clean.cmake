file(REMOVE_RECURSE
  "CMakeFiles/bench_hadoop_vs_dbms.dir/bench_hadoop_vs_dbms.cc.o"
  "CMakeFiles/bench_hadoop_vs_dbms.dir/bench_hadoop_vs_dbms.cc.o.d"
  "bench_hadoop_vs_dbms"
  "bench_hadoop_vs_dbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hadoop_vs_dbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
