file(REMOVE_RECURSE
  "CMakeFiles/bench_cloud_and_realtime.dir/bench_cloud_and_realtime.cc.o"
  "CMakeFiles/bench_cloud_and_realtime.dir/bench_cloud_and_realtime.cc.o.d"
  "bench_cloud_and_realtime"
  "bench_cloud_and_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cloud_and_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
