# Empty compiler generated dependencies file for bench_cloud_and_realtime.
# This may be replaced when dependencies are built.
