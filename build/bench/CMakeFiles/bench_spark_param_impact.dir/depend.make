# Empty dependencies file for bench_spark_param_impact.
# This may be replaced when dependencies are built.
