file(REMOVE_RECURSE
  "CMakeFiles/bench_spark_param_impact.dir/bench_spark_param_impact.cc.o"
  "CMakeFiles/bench_spark_param_impact.dir/bench_spark_param_impact.cc.o.d"
  "bench_spark_param_impact"
  "bench_spark_param_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spark_param_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
