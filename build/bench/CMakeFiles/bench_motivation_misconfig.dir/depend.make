# Empty dependencies file for bench_motivation_misconfig.
# This may be replaced when dependencies are built.
