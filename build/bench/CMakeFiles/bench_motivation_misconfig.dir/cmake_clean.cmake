file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_misconfig.dir/bench_motivation_misconfig.cc.o"
  "CMakeFiles/bench_motivation_misconfig.dir/bench_motivation_misconfig.cc.o.d"
  "bench_motivation_misconfig"
  "bench_motivation_misconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_misconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
