file(REMOVE_RECURSE
  "CMakeFiles/atune_cli.dir/atune_cli.cc.o"
  "CMakeFiles/atune_cli.dir/atune_cli.cc.o.d"
  "atune"
  "atune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
