
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/atune_cli.cc" "tools/CMakeFiles/atune_cli.dir/atune_cli.cc.o" "gcc" "tools/CMakeFiles/atune_cli.dir/atune_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuners/CMakeFiles/atune_tuners.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/atune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/atune_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/atune_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
