# Empty compiler generated dependencies file for atune_cli.
# This may be replaced when dependencies are built.
