file(REMOVE_RECURSE
  "CMakeFiles/hadoop_terasort_tuning.dir/hadoop_terasort_tuning.cpp.o"
  "CMakeFiles/hadoop_terasort_tuning.dir/hadoop_terasort_tuning.cpp.o.d"
  "hadoop_terasort_tuning"
  "hadoop_terasort_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_terasort_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
