# Empty dependencies file for hadoop_terasort_tuning.
# This may be replaced when dependencies are built.
