file(REMOVE_RECURSE
  "CMakeFiles/dbms_memory_advisor.dir/dbms_memory_advisor.cpp.o"
  "CMakeFiles/dbms_memory_advisor.dir/dbms_memory_advisor.cpp.o.d"
  "dbms_memory_advisor"
  "dbms_memory_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbms_memory_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
