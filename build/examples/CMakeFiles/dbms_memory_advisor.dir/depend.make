# Empty dependencies file for dbms_memory_advisor.
# This may be replaced when dependencies are built.
