# Empty compiler generated dependencies file for cloud_provisioning.
# This may be replaced when dependencies are built.
