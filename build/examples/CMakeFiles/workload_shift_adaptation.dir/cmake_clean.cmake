file(REMOVE_RECURSE
  "CMakeFiles/workload_shift_adaptation.dir/workload_shift_adaptation.cpp.o"
  "CMakeFiles/workload_shift_adaptation.dir/workload_shift_adaptation.cpp.o.d"
  "workload_shift_adaptation"
  "workload_shift_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_shift_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
