# Empty dependencies file for workload_shift_adaptation.
# This may be replaced when dependencies are built.
