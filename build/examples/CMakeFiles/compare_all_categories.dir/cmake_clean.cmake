file(REMOVE_RECURSE
  "CMakeFiles/compare_all_categories.dir/compare_all_categories.cpp.o"
  "CMakeFiles/compare_all_categories.dir/compare_all_categories.cpp.o.d"
  "compare_all_categories"
  "compare_all_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_all_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
