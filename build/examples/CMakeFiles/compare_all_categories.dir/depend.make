# Empty dependencies file for compare_all_categories.
# This may be replaced when dependencies are built.
