
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spark_shuffle_tuning.cpp" "examples/CMakeFiles/spark_shuffle_tuning.dir/spark_shuffle_tuning.cpp.o" "gcc" "examples/CMakeFiles/spark_shuffle_tuning.dir/spark_shuffle_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuners/CMakeFiles/atune_tuners.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/atune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/atune_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/atune_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
