file(REMOVE_RECURSE
  "CMakeFiles/spark_shuffle_tuning.dir/spark_shuffle_tuning.cpp.o"
  "CMakeFiles/spark_shuffle_tuning.dir/spark_shuffle_tuning.cpp.o.d"
  "spark_shuffle_tuning"
  "spark_shuffle_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_shuffle_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
