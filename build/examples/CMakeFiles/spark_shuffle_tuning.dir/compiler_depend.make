# Empty compiler generated dependencies file for spark_shuffle_tuning.
# This may be replaced when dependencies are built.
