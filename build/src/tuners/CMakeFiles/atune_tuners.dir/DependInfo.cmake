
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuners/adaptive/adaptive_memory.cc" "src/tuners/CMakeFiles/atune_tuners.dir/adaptive/adaptive_memory.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/adaptive/adaptive_memory.cc.o.d"
  "/root/repo/src/tuners/adaptive/colt.cc" "src/tuners/CMakeFiles/atune_tuners.dir/adaptive/colt.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/adaptive/colt.cc.o.d"
  "/root/repo/src/tuners/adaptive/stage_retuner.cc" "src/tuners/CMakeFiles/atune_tuners.dir/adaptive/stage_retuner.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/adaptive/stage_retuner.cc.o.d"
  "/root/repo/src/tuners/builtin.cc" "src/tuners/CMakeFiles/atune_tuners.dir/builtin.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/builtin.cc.o.d"
  "/root/repo/src/tuners/cost_model/cost_model_tuner.cc" "src/tuners/CMakeFiles/atune_tuners.dir/cost_model/cost_model_tuner.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/cost_model/cost_model_tuner.cc.o.d"
  "/root/repo/src/tuners/cost_model/cost_models.cc" "src/tuners/CMakeFiles/atune_tuners.dir/cost_model/cost_models.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/cost_model/cost_models.cc.o.d"
  "/root/repo/src/tuners/cost_model/stmm.cc" "src/tuners/CMakeFiles/atune_tuners.dir/cost_model/stmm.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/cost_model/stmm.cc.o.d"
  "/root/repo/src/tuners/experiment/adaptive_sampling.cc" "src/tuners/CMakeFiles/atune_tuners.dir/experiment/adaptive_sampling.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/experiment/adaptive_sampling.cc.o.d"
  "/root/repo/src/tuners/experiment/ituned.cc" "src/tuners/CMakeFiles/atune_tuners.dir/experiment/ituned.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/experiment/ituned.cc.o.d"
  "/root/repo/src/tuners/experiment/sard.cc" "src/tuners/CMakeFiles/atune_tuners.dir/experiment/sard.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/experiment/sard.cc.o.d"
  "/root/repo/src/tuners/experiment/search_baselines.cc" "src/tuners/CMakeFiles/atune_tuners.dir/experiment/search_baselines.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/experiment/search_baselines.cc.o.d"
  "/root/repo/src/tuners/ml_tuners/ernest.cc" "src/tuners/CMakeFiles/atune_tuners.dir/ml_tuners/ernest.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/ml_tuners/ernest.cc.o.d"
  "/root/repo/src/tuners/ml_tuners/grey_box.cc" "src/tuners/CMakeFiles/atune_tuners.dir/ml_tuners/grey_box.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/ml_tuners/grey_box.cc.o.d"
  "/root/repo/src/tuners/ml_tuners/ottertune.cc" "src/tuners/CMakeFiles/atune_tuners.dir/ml_tuners/ottertune.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/ml_tuners/ottertune.cc.o.d"
  "/root/repo/src/tuners/ml_tuners/rodd_nn.cc" "src/tuners/CMakeFiles/atune_tuners.dir/ml_tuners/rodd_nn.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/ml_tuners/rodd_nn.cc.o.d"
  "/root/repo/src/tuners/rule_based/builtin_rules.cc" "src/tuners/CMakeFiles/atune_tuners.dir/rule_based/builtin_rules.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/rule_based/builtin_rules.cc.o.d"
  "/root/repo/src/tuners/rule_based/config_navigator.cc" "src/tuners/CMakeFiles/atune_tuners.dir/rule_based/config_navigator.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/rule_based/config_navigator.cc.o.d"
  "/root/repo/src/tuners/rule_based/rule_engine.cc" "src/tuners/CMakeFiles/atune_tuners.dir/rule_based/rule_engine.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/rule_based/rule_engine.cc.o.d"
  "/root/repo/src/tuners/rule_based/spex.cc" "src/tuners/CMakeFiles/atune_tuners.dir/rule_based/spex.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/rule_based/spex.cc.o.d"
  "/root/repo/src/tuners/simulation/addm.cc" "src/tuners/CMakeFiles/atune_tuners.dir/simulation/addm.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/simulation/addm.cc.o.d"
  "/root/repo/src/tuners/simulation/starfish.cc" "src/tuners/CMakeFiles/atune_tuners.dir/simulation/starfish.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/simulation/starfish.cc.o.d"
  "/root/repo/src/tuners/simulation/trace_simulator.cc" "src/tuners/CMakeFiles/atune_tuners.dir/simulation/trace_simulator.cc.o" "gcc" "src/tuners/CMakeFiles/atune_tuners.dir/simulation/trace_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/atune_math.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/atune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/atune_systems.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
