# Empty compiler generated dependencies file for atune_tuners.
# This may be replaced when dependencies are built.
