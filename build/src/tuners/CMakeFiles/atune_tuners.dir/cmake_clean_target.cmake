file(REMOVE_RECURSE
  "libatune_tuners.a"
)
