# Empty dependencies file for atune_common.
# This may be replaced when dependencies are built.
