file(REMOVE_RECURSE
  "libatune_common.a"
)
