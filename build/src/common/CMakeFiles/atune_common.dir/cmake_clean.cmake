file(REMOVE_RECURSE
  "CMakeFiles/atune_common.dir/csv.cc.o"
  "CMakeFiles/atune_common.dir/csv.cc.o.d"
  "CMakeFiles/atune_common.dir/logging.cc.o"
  "CMakeFiles/atune_common.dir/logging.cc.o.d"
  "CMakeFiles/atune_common.dir/random.cc.o"
  "CMakeFiles/atune_common.dir/random.cc.o.d"
  "CMakeFiles/atune_common.dir/stats.cc.o"
  "CMakeFiles/atune_common.dir/stats.cc.o.d"
  "CMakeFiles/atune_common.dir/status.cc.o"
  "CMakeFiles/atune_common.dir/status.cc.o.d"
  "CMakeFiles/atune_common.dir/string_util.cc.o"
  "CMakeFiles/atune_common.dir/string_util.cc.o.d"
  "libatune_common.a"
  "libatune_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
