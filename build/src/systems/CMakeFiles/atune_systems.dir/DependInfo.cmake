
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/dbms/dbms_model.cc" "src/systems/CMakeFiles/atune_systems.dir/dbms/dbms_model.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/dbms/dbms_model.cc.o.d"
  "/root/repo/src/systems/dbms/dbms_system.cc" "src/systems/CMakeFiles/atune_systems.dir/dbms/dbms_system.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/dbms/dbms_system.cc.o.d"
  "/root/repo/src/systems/dbms/dbms_workloads.cc" "src/systems/CMakeFiles/atune_systems.dir/dbms/dbms_workloads.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/dbms/dbms_workloads.cc.o.d"
  "/root/repo/src/systems/hardware.cc" "src/systems/CMakeFiles/atune_systems.dir/hardware.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/hardware.cc.o.d"
  "/root/repo/src/systems/mapreduce/mr_model.cc" "src/systems/CMakeFiles/atune_systems.dir/mapreduce/mr_model.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/mapreduce/mr_model.cc.o.d"
  "/root/repo/src/systems/mapreduce/mr_system.cc" "src/systems/CMakeFiles/atune_systems.dir/mapreduce/mr_system.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/mapreduce/mr_system.cc.o.d"
  "/root/repo/src/systems/mapreduce/mr_workloads.cc" "src/systems/CMakeFiles/atune_systems.dir/mapreduce/mr_workloads.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/mapreduce/mr_workloads.cc.o.d"
  "/root/repo/src/systems/multi_tenant.cc" "src/systems/CMakeFiles/atune_systems.dir/multi_tenant.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/multi_tenant.cc.o.d"
  "/root/repo/src/systems/spark/spark_model.cc" "src/systems/CMakeFiles/atune_systems.dir/spark/spark_model.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/spark/spark_model.cc.o.d"
  "/root/repo/src/systems/spark/spark_system.cc" "src/systems/CMakeFiles/atune_systems.dir/spark/spark_system.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/spark/spark_system.cc.o.d"
  "/root/repo/src/systems/spark/spark_workloads.cc" "src/systems/CMakeFiles/atune_systems.dir/spark/spark_workloads.cc.o" "gcc" "src/systems/CMakeFiles/atune_systems.dir/spark/spark_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/atune_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
