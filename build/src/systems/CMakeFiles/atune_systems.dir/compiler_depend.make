# Empty compiler generated dependencies file for atune_systems.
# This may be replaced when dependencies are built.
