file(REMOVE_RECURSE
  "CMakeFiles/atune_systems.dir/dbms/dbms_model.cc.o"
  "CMakeFiles/atune_systems.dir/dbms/dbms_model.cc.o.d"
  "CMakeFiles/atune_systems.dir/dbms/dbms_system.cc.o"
  "CMakeFiles/atune_systems.dir/dbms/dbms_system.cc.o.d"
  "CMakeFiles/atune_systems.dir/dbms/dbms_workloads.cc.o"
  "CMakeFiles/atune_systems.dir/dbms/dbms_workloads.cc.o.d"
  "CMakeFiles/atune_systems.dir/hardware.cc.o"
  "CMakeFiles/atune_systems.dir/hardware.cc.o.d"
  "CMakeFiles/atune_systems.dir/mapreduce/mr_model.cc.o"
  "CMakeFiles/atune_systems.dir/mapreduce/mr_model.cc.o.d"
  "CMakeFiles/atune_systems.dir/mapreduce/mr_system.cc.o"
  "CMakeFiles/atune_systems.dir/mapreduce/mr_system.cc.o.d"
  "CMakeFiles/atune_systems.dir/mapreduce/mr_workloads.cc.o"
  "CMakeFiles/atune_systems.dir/mapreduce/mr_workloads.cc.o.d"
  "CMakeFiles/atune_systems.dir/multi_tenant.cc.o"
  "CMakeFiles/atune_systems.dir/multi_tenant.cc.o.d"
  "CMakeFiles/atune_systems.dir/spark/spark_model.cc.o"
  "CMakeFiles/atune_systems.dir/spark/spark_model.cc.o.d"
  "CMakeFiles/atune_systems.dir/spark/spark_system.cc.o"
  "CMakeFiles/atune_systems.dir/spark/spark_system.cc.o.d"
  "CMakeFiles/atune_systems.dir/spark/spark_workloads.cc.o"
  "CMakeFiles/atune_systems.dir/spark/spark_workloads.cc.o.d"
  "libatune_systems.a"
  "libatune_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
