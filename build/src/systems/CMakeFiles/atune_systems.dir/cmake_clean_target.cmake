file(REMOVE_RECURSE
  "libatune_systems.a"
)
