
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/acquisition.cc" "src/ml/CMakeFiles/atune_ml.dir/acquisition.cc.o" "gcc" "src/ml/CMakeFiles/atune_ml.dir/acquisition.cc.o.d"
  "/root/repo/src/ml/gaussian_process.cc" "src/ml/CMakeFiles/atune_ml.dir/gaussian_process.cc.o" "gcc" "src/ml/CMakeFiles/atune_ml.dir/gaussian_process.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/atune_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/atune_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/linear_model.cc" "src/ml/CMakeFiles/atune_ml.dir/linear_model.cc.o" "gcc" "src/ml/CMakeFiles/atune_ml.dir/linear_model.cc.o.d"
  "/root/repo/src/ml/neural_net.cc" "src/ml/CMakeFiles/atune_ml.dir/neural_net.cc.o" "gcc" "src/ml/CMakeFiles/atune_ml.dir/neural_net.cc.o.d"
  "/root/repo/src/ml/nnls.cc" "src/ml/CMakeFiles/atune_ml.dir/nnls.cc.o" "gcc" "src/ml/CMakeFiles/atune_ml.dir/nnls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/atune_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
