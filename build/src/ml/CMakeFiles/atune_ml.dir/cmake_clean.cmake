file(REMOVE_RECURSE
  "CMakeFiles/atune_ml.dir/acquisition.cc.o"
  "CMakeFiles/atune_ml.dir/acquisition.cc.o.d"
  "CMakeFiles/atune_ml.dir/gaussian_process.cc.o"
  "CMakeFiles/atune_ml.dir/gaussian_process.cc.o.d"
  "CMakeFiles/atune_ml.dir/kmeans.cc.o"
  "CMakeFiles/atune_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/atune_ml.dir/linear_model.cc.o"
  "CMakeFiles/atune_ml.dir/linear_model.cc.o.d"
  "CMakeFiles/atune_ml.dir/neural_net.cc.o"
  "CMakeFiles/atune_ml.dir/neural_net.cc.o.d"
  "CMakeFiles/atune_ml.dir/nnls.cc.o"
  "CMakeFiles/atune_ml.dir/nnls.cc.o.d"
  "libatune_ml.a"
  "libatune_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
