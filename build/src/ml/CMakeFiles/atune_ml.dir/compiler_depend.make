# Empty compiler generated dependencies file for atune_ml.
# This may be replaced when dependencies are built.
