file(REMOVE_RECURSE
  "libatune_ml.a"
)
