
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comparator.cc" "src/core/CMakeFiles/atune_core.dir/comparator.cc.o" "gcc" "src/core/CMakeFiles/atune_core.dir/comparator.cc.o.d"
  "/root/repo/src/core/configuration.cc" "src/core/CMakeFiles/atune_core.dir/configuration.cc.o" "gcc" "src/core/CMakeFiles/atune_core.dir/configuration.cc.o.d"
  "/root/repo/src/core/objective.cc" "src/core/CMakeFiles/atune_core.dir/objective.cc.o" "gcc" "src/core/CMakeFiles/atune_core.dir/objective.cc.o.d"
  "/root/repo/src/core/parameter.cc" "src/core/CMakeFiles/atune_core.dir/parameter.cc.o" "gcc" "src/core/CMakeFiles/atune_core.dir/parameter.cc.o.d"
  "/root/repo/src/core/parameter_space.cc" "src/core/CMakeFiles/atune_core.dir/parameter_space.cc.o" "gcc" "src/core/CMakeFiles/atune_core.dir/parameter_space.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/atune_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/atune_core.dir/registry.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/atune_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/atune_core.dir/session.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/atune_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/atune_core.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/atune_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
