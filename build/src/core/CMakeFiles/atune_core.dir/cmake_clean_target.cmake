file(REMOVE_RECURSE
  "libatune_core.a"
)
