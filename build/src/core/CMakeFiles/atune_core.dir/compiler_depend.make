# Empty compiler generated dependencies file for atune_core.
# This may be replaced when dependencies are built.
