file(REMOVE_RECURSE
  "CMakeFiles/atune_core.dir/comparator.cc.o"
  "CMakeFiles/atune_core.dir/comparator.cc.o.d"
  "CMakeFiles/atune_core.dir/configuration.cc.o"
  "CMakeFiles/atune_core.dir/configuration.cc.o.d"
  "CMakeFiles/atune_core.dir/objective.cc.o"
  "CMakeFiles/atune_core.dir/objective.cc.o.d"
  "CMakeFiles/atune_core.dir/parameter.cc.o"
  "CMakeFiles/atune_core.dir/parameter.cc.o.d"
  "CMakeFiles/atune_core.dir/parameter_space.cc.o"
  "CMakeFiles/atune_core.dir/parameter_space.cc.o.d"
  "CMakeFiles/atune_core.dir/registry.cc.o"
  "CMakeFiles/atune_core.dir/registry.cc.o.d"
  "CMakeFiles/atune_core.dir/session.cc.o"
  "CMakeFiles/atune_core.dir/session.cc.o.d"
  "CMakeFiles/atune_core.dir/tuner.cc.o"
  "CMakeFiles/atune_core.dir/tuner.cc.o.d"
  "libatune_core.a"
  "libatune_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
