# Empty compiler generated dependencies file for atune_math.
# This may be replaced when dependencies are built.
