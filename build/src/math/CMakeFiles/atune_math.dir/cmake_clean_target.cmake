file(REMOVE_RECURSE
  "libatune_math.a"
)
