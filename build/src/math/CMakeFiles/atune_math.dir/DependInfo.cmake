
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/doe.cc" "src/math/CMakeFiles/atune_math.dir/doe.cc.o" "gcc" "src/math/CMakeFiles/atune_math.dir/doe.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/math/CMakeFiles/atune_math.dir/matrix.cc.o" "gcc" "src/math/CMakeFiles/atune_math.dir/matrix.cc.o.d"
  "/root/repo/src/math/sampling.cc" "src/math/CMakeFiles/atune_math.dir/sampling.cc.o" "gcc" "src/math/CMakeFiles/atune_math.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
