file(REMOVE_RECURSE
  "CMakeFiles/atune_math.dir/doe.cc.o"
  "CMakeFiles/atune_math.dir/doe.cc.o.d"
  "CMakeFiles/atune_math.dir/matrix.cc.o"
  "CMakeFiles/atune_math.dir/matrix.cc.o.d"
  "CMakeFiles/atune_math.dir/sampling.cc.o"
  "CMakeFiles/atune_math.dir/sampling.cc.o.d"
  "libatune_math.a"
  "libatune_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atune_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
