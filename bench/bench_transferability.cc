// E12 — configuration transferability across workloads: Table 1's ML-row
// weakness "typically low accuracy for unseen queries/applications", and
// the general observation (§1) that "some parameters might affect the
// performance of different queries/jobs in different ways".
//
// Method: tune a configuration for workload A (25-run budget), then run
// that *frozen* configuration on workload B. The transfer matrix's
// off-diagonal shows how much a config optimized for one workload gives up
// on another — the reason ad-hoc workloads need adaptive or per-workload
// tuning rather than a single golden config.

#include <memory>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "core/session.h"
#include "tuners/experiment/ituned.h"

namespace atune {
namespace bench {
namespace {

struct Cell {
  double runtime = 0.0;   // frozen config's runtime on the target workload
  bool failed = false;
};

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E12: bench_transferability",
              "Table 1 'low accuracy for unseen queries/applications'",
              "Configs tuned for workload A (rows), evaluated frozen on "
              "workload B (columns); DBMS, iTuned with 25 runs per row.");

  std::vector<std::pair<std::string, Workload>> workloads = {
      {"olap", MakeDbmsOlapWorkload(0.5)},
      {"oltp", MakeDbmsOltpWorkload(0.5)},
      {"oltp-hot", MakeDbmsOltpWorkload(0.5, /*clients=*/64.0, /*skew=*/0.85)},
      {"mixed", MakeDbmsMixedWorkload(0.5)},
  };

  // Tune one config per source workload.
  std::vector<Configuration> tuned;
  for (const auto& [name, workload] : workloads) {
    auto dbms = MakeDbms(77);
    ITunedTuner tuner;
    SessionOptions options;
    options.budget.max_evaluations = SmokeSize(25, 6);
    options.seed = 99;
    auto outcome = RunTuningSession(&tuner, dbms.get(), workload, options);
    tuned.push_back(outcome.ok() ? outcome->best_config
                                 : dbms->space().DefaultConfiguration());
    (void)name;
  }

  // Per-column best (self-tuned) runtimes for normalization.
  auto measure = [&](const Configuration& config,
                     const Workload& workload) -> Cell {
    auto dbms = MakeDbms(78);
    dbms->set_noise_sigma(0.0);
    auto r = dbms->Execute(config, workload);
    Cell cell;
    if (r.ok()) {
      cell.runtime = r->runtime_seconds * (r->failed ? 10.0 : 1.0);
      cell.failed = r->failed;
    }
    return cell;
  };

  std::vector<double> self_runtime(workloads.size());
  for (size_t j = 0; j < workloads.size(); ++j) {
    self_runtime[j] = measure(tuned[j], workloads[j].second).runtime;
  }

  std::vector<std::string> header = {"tuned for \\ run on"};
  for (const auto& [name, workload] : workloads) {
    (void)workload;
    header.push_back(name);
  }
  TableWriter table(header);
  for (size_t i = 0; i < workloads.size(); ++i) {
    std::vector<std::string> row = {workloads[i].first};
    for (size_t j = 0; j < workloads.size(); ++j) {
      Cell cell = measure(tuned[i], workloads[j].second);
      double slowdown = cell.runtime / std::max(self_runtime[j], 1e-9);
      row.push_back(StrFormat("%.0fs (%.1fx)%s", cell.runtime, slowdown,
                              cell.failed ? " FAIL" : ""));
    }
    table.AddRow(row);
  }
  table.WritePretty(std::cout);

  // Also measure the defaults row for context.
  {
    auto dbms = MakeDbms(79);
    std::vector<std::string> row = {"(defaults)"};
    for (size_t j = 0; j < workloads.size(); ++j) {
      Cell cell =
          measure(dbms->space().DefaultConfiguration(), workloads[j].second);
      row.push_back(StrFormat("%.0fs (%.1fx)", cell.runtime,
                              cell.runtime / std::max(self_runtime[j], 1e-9)));
    }
    TableWriter defaults_table(header);
    defaults_table.AddRow(row);
    defaults_table.WritePretty(std::cout);
  }

  std::printf(
      "\nHow to read it: the diagonal is 1.0x by construction. Off-diagonal\n"
      "entries show the transfer penalty — a config tuned for the OLAP\n"
      "batch wastes the OLTP workload's commit path and vice versa, though\n"
      "any tuned config still beats the stock defaults. This is why the ML\n"
      "category needs workload mapping (OtterTune) and why ad-hoc\n"
      "applications push the paper toward the adaptive category.\n");
  return 0;
}
