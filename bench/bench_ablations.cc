// E7 — ablation studies for the design choices DESIGN.md calls out:
//   A1  iTuned surrogate: GP vs neural network vs none (random search)
//   A2  iTuned initialization: maximin LHS vs plain random design
//   A3  iTuned acquisition: EI vs PI vs LCB
//   A4  OtterTune: with vs without the historical repository
//   A5  COLT: exploration fraction sweep (cost-vs-gain sensitivity)
//   A6  iTuned: early abort of low-utility experiments on/off
//
// Each ablation runs several seeds on the DBMS OLAP scenario with a fixed
// experiment budget and reports the mean best objective.

#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/session.h"
#include "tuners/adaptive/colt.h"
#include "tuners/experiment/ituned.h"
#include "tuners/experiment/search_baselines.h"
#include "tuners/ml_tuners/ottertune.h"
#include "tuners/ml_tuners/rodd_nn.h"

namespace atune {
namespace bench {
namespace {

const size_t kSeeds = SmokeSize(5, 1);
const size_t kBudget = SmokeSize(25, 6);

struct AblationResult {
  double mean_best = 0.0;
  double mean_speedup = 0.0;
};

AblationResult RunVariant(
    const std::function<std::unique_ptr<Tuner>()>& make_tuner,
    const Workload& workload) {
  RunningStats best, speedup;
  for (size_t s = 0; s < kSeeds; ++s) {
    auto dbms = MakeDbms(200 + s);
    auto tuner = make_tuner();
    SessionOptions options;
    options.budget.max_evaluations = kBudget;
    options.seed = 900 + s;
    auto outcome = RunTuningSession(tuner.get(), dbms.get(), workload, options);
    if (!outcome.ok()) continue;
    best.Add(outcome->best_objective);
    speedup.Add(outcome->speedup_over_default);
  }
  return {best.mean(), speedup.mean()};
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E7: bench_ablations", "design-choice ablations (DESIGN.md)",
              "Each row ablates one design decision; DBMS OLAP scenario, "
              "budget 25 experiments, 5 seeds.");
  Workload workload = MakeDbmsOlapWorkload(1.0);

  TableWriter table({"ablation", "variant", "mean best objective",
                     "mean speedup"});
  auto add = [&](const std::string& ablation, const std::string& variant,
                 const AblationResult& r) {
    table.AddRow({ablation, variant, StrFormat("%.1fs", r.mean_best),
                  StrFormat("%.2fx", r.mean_speedup)});
  };

  // A1: surrogate model family.
  add("A1 surrogate", "GP (iTuned)",
      RunVariant([] { return std::make_unique<ITunedTuner>(); }, workload));
  add("A1 surrogate", "neural net (Rodd)",
      RunVariant([] { return std::make_unique<RoddNnTuner>(); }, workload));
  add("A1 surrogate", "none (random search)",
      RunVariant([] { return std::make_unique<RandomSearchTuner>(); },
                 workload));

  // A2: initialization design.
  {
    ITunedOptions lhs;  // default: maximin LHS
    ITunedOptions tiny;
    tiny.initial_design = 2;  // nearly no design, BO from cold start
    add("A2 init design", "maximin LHS (8 pts)",
        RunVariant([lhs] { return std::make_unique<ITunedTuner>(lhs); },
                   workload));
    add("A2 init design", "cold start (2 pts)",
        RunVariant([tiny] { return std::make_unique<ITunedTuner>(tiny); },
                   workload));
  }

  // A3: acquisition function.
  for (const char* acq : {"ei", "pi", "lcb"}) {
    ITunedOptions options;
    options.acquisition = acq;
    add("A3 acquisition", acq,
        RunVariant(
            [options] { return std::make_unique<ITunedTuner>(options); },
            workload));
  }

  // A4: OtterTune with/without history.
  {
    add("A4 history", "with repository (3 workloads x 15 obs)",
        RunVariant([] { return std::make_unique<OtterTuneTuner>(); },
                   workload));
    // Without history: repository from a single observation of one
    // workload — mapping and ranking starve.
    add("A4 history", "starved repository (1 workload x 2 obs)",
        RunVariant(
            [] {
              auto dbms = MakeDbms(777);
              OtterTuneRepository repo = BuildOtterTuneRepository(
                  dbms.get(),
                  {MakeDbmsOltpWorkload(0.25)}, 2, 777);
              return std::make_unique<OtterTuneTuner>(std::move(repo));
            },
            workload));
  }

  // A6: iTuned early abort of low-utility experiments.
  for (double factor : {0.0, 2.0, 5.0}) {
    ITunedOptions options;
    options.early_abort_factor = factor;
    add("A6 early abort",
        factor == 0.0 ? "off" : StrFormat("abort at %.0fx incumbent", factor),
        RunVariant(
            [options] { return std::make_unique<ITunedTuner>(options); },
            workload));
  }

  // A5: COLT exploration fraction.
  for (double explore : {0.1, 0.3, 0.6}) {
    add("A5 COLT explore", StrFormat("%.0f%%", explore * 100.0),
        RunVariant(
            [explore] {
              return std::make_unique<ColtTuner>(explore, 0.15);
            },
            workload));
  }

  table.WritePretty(std::cout);
  std::printf(
      "\nExpected shapes: GP > NN > random at this budget; LHS init beats a\n"
      "cold start; EI and LCB are comparable with PI greedier; a populated\n"
      "repository beats a starved one; moderate COLT exploration beats both\n"
      "extremes.\n");
  return 0;
}
