// E12 — parallel experiment engine: iTuned §2.4 runs k experiments per
// wall-clock round instead of 1, so a tuning session that spends the same
// budget finishes in ~1/k of the wall-clock time. This harness sweeps the
// four experiment-driven tuners over 8 seeds at parallelism 1/2/4/8 and
// reports:
//
//   * modeled experiment wall-clock: sum over rounds of the round's longest
//     simulated run — the quantity the paper's parallel experiments shrink.
//     (Experiments dominate real campaigns; this figure is deterministic
//     and independent of the host's core count.)
//   * real host wall-clock of the harness itself (thread-pool overhead view;
//     on a single-core host this hovers near 1x by construction),
//   * a bitwise equivalence check: FNV-1a checksum of every parallel trial
//     history against a serial re-execution of the same configurations,
//     plus serial-tuner vs batch-tuner history equality for the baselines,
//   * GP refit cost, full Fit() vs incremental AddObservation(), at
//     n = 30/100/300 observations.
//
// Results are emitted both as console text and as machine-readable JSON in
// BENCH_parallel_engine.json (for CI tracking).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/file_util.h"
#include "common/string_util.h"
#include "core/session.h"
#include "ml/gaussian_process.h"
#include "systems/dbms/dbms_workloads.h"
#include "tuners/experiment/ituned.h"
#include "tuners/experiment/search_baselines.h"

namespace atune {
namespace bench {
namespace {

const size_t kSeeds = SmokeSize(8, 2);
const size_t kBudget = SmokeSize(25, 6);
const size_t kParallelisms[] = {1, 2, 4, 8};

std::unique_ptr<Tuner> MakeTuner(const std::string& name) {
  if (name == "random-search") return std::make_unique<RandomSearchTuner>();
  if (name == "grid-search") return std::make_unique<GridSearchTuner>();
  if (name == "recursive-random") {
    return std::make_unique<RecursiveRandomSearchTuner>();
  }
  ITunedOptions options;
  options.acquisition_candidates = 500;  // keep the 128-session sweep quick
  return std::make_unique<ITunedTuner>(options);
}

// Fnv1a / HistoryChecksum live in bench_common.h, shared with
// bench_robustness's bit-identity checks.

/// Re-executes the history's configurations serially, in order, on a fresh
/// system with the same seed, and checksums the resulting trials. Per-run
/// noise is derived from the run index (DeriveSeed), so this must reproduce
/// the parallel engine's results bit for bit.
uint64_t SerialReplayChecksum(uint64_t system_seed,
                              const std::vector<Trial>& history,
                              const Workload& workload) {
  auto system = MakeDbms(system_seed);
  Evaluator evaluator(system.get(), workload, TuningBudget{history.size()});
  for (const Trial& t : history) {
    auto obj = evaluator.Evaluate(t.config);
    if (!obj.ok()) return 0;  // replay must not fail; 0 breaks the compare
  }
  return HistoryChecksum(evaluator.history());
}

/// Modeled experiment wall-clock: each round's experiments run concurrently,
/// so a round lasts as long as its slowest run; the campaign lasts the sum
/// of rounds.
double ModeledWallClock(const std::vector<Trial>& history) {
  std::map<size_t, double> round_max;
  for (const Trial& t : history) {
    double& m = round_max[t.round];
    m = std::max(m, t.result.runtime_seconds);
  }
  double total = 0.0;
  for (const auto& [round, mx] : round_max) total += mx;
  return total;
}

struct CellResult {
  double modeled_wallclock = 0.0;  // summed over seeds
  double real_seconds = 0.0;       // host time, summed over seeds
  double mean_best = 0.0;
  uint64_t checksum = 0;           // combined over seeds
  bool replay_ok = true;
};

CellResult RunCell(const std::string& tuner_name, size_t parallelism,
                   ThreadPool* pool) {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  struct SeedResult {
    double modeled, real_seconds, best;
    uint64_t checksum;
    bool replay_ok;
  };
  std::vector<SeedResult> per_seed =
      RunSeedReplicates(kSeeds, pool, [&](uint64_t seed) -> SeedResult {
        auto system = MakeDbms(seed + 1);
        std::unique_ptr<Tuner> tuner = MakeTuner(tuner_name);
        tuner->set_parallelism(parallelism);
        SessionOptions options;
        options.budget = TuningBudget{kBudget};
        options.seed = seed + 100;
        options.measure_default = false;
        auto t0 = std::chrono::steady_clock::now();
        auto outcome =
            RunTuningSession(tuner.get(), system.get(), workload, options);
        auto t1 = std::chrono::steady_clock::now();
        if (!outcome.ok()) return {0, 0, 0, 0, false};
        uint64_t checksum = HistoryChecksum(outcome->history);
        uint64_t replay =
            SerialReplayChecksum(seed + 1, outcome->history, workload);
        return {ModeledWallClock(outcome->history),
                std::chrono::duration<double>(t1 - t0).count(),
                outcome->best_objective, checksum, checksum == replay};
      });
  CellResult cell;
  uint64_t combined = 0xcbf29ce484222325ULL;
  for (const SeedResult& r : per_seed) {
    cell.modeled_wallclock += r.modeled;
    cell.real_seconds += r.real_seconds;
    cell.mean_best += r.best / static_cast<double>(kSeeds);
    combined = Fnv1a(combined, &r.checksum, sizeof(r.checksum));
    cell.replay_ok = cell.replay_ok && r.replay_ok;
  }
  cell.checksum = combined;
  return cell;
}

/// Median-of-reps timer (seconds).
template <typename Fn>
double TimeMedian(size_t reps, Fn fn) {
  std::vector<double> times;
  times.reserve(reps);
  for (size_t r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct GpTiming {
  size_t n;
  double full_ms;
  double incremental_ms;
  double ratio;
};

/// E15 — observability overhead: the same serial iTuned session run
/// untraced and then with the full tracing+metrics stack attached. The
/// budgeted claim (EXPERIMENTS.md E15) is that the host-time cost of
/// tracing stays under 2% of the MODELED experiment wall-clock — the
/// quantity a real campaign is made of — so instrumentation is effectively
/// free next to even one real experiment.
struct ObsOverhead {
  double untraced_host_s = 0.0;   // median host seconds per session
  double traced_host_s = 0.0;
  double modeled_wallclock_s = 0.0;
  double overhead_pct = 0.0;      // host delta / modeled wall-clock * 100
  size_t spans = 0;               // spans per traced session
  MetricsSnapshot metrics;        // registry snapshot of the traced run
};

ObsOverhead MeasureObservabilityOverhead() {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  ObsOverhead out;
  const size_t reps = SmokeSize(5, 3);
  auto run_session = [&](Tracer* tracer, MetricsRegistry* metrics) {
    auto system = MakeDbms(1234);
    std::unique_ptr<Tuner> tuner = MakeTuner("ituned");
    SessionOptions options;
    options.budget = TuningBudget{kBudget};
    options.seed = 7;
    options.measure_default = false;
    options.tracer = tracer;
    options.metrics = metrics;
    auto outcome = RunTuningSession(tuner.get(), system.get(), workload,
                                    options);
    if (outcome.ok()) {
      out.modeled_wallclock_s = ModeledWallClock(outcome->history);
    }
  };
  out.untraced_host_s =
      TimeMedian(reps, [&] { run_session(nullptr, nullptr); });
  // Fresh tracer/registry per rep (construction is part of the measured
  // cost); the last rep's snapshot is published.
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<MetricsRegistry> metrics;
  out.traced_host_s = TimeMedian(reps, [&] {
    tracer = std::make_unique<Tracer>();
    metrics = std::make_unique<MetricsRegistry>();
    run_session(tracer.get(), metrics.get());
  });
  out.spans = tracer->span_count();
  out.metrics = metrics->Snapshot();
  out.overhead_pct = 100.0 * (out.traced_host_s - out.untraced_host_s) /
                     std::max(out.modeled_wallclock_s, 1e-9);
  return out;
}

GpTiming TimeGpRefit(size_t n) {
  // Smooth synthetic response over [0,1]^5 — representative of the log
  // objectives the tuners model.
  const size_t dims = 5;
  Rng rng(42);
  std::vector<Vec> xs(n, Vec(dims));
  Vec ys(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      xs[i][d] = rng.Uniform();
      acc += std::sin(3.0 * xs[i][d]) * (1.0 + static_cast<double>(d) * 0.3);
    }
    ys[i] = acc + rng.Normal(0.0, 0.05);
  }
  GpHyperParams params;
  params.lengthscales.assign(dims, 0.4);

  std::vector<Vec> head(xs.begin(), xs.end() - 1);
  Vec head_y(ys.begin(), ys.end() - 1);

  GpTiming out;
  out.n = n;
  out.full_ms = 1e3 * TimeMedian(5, [&] {
    GaussianProcess gp(params);
    (void)gp.Fit(xs, ys);
  });
  // The BO hot path: a model of n-1 points absorbs the n-th observation.
  // Each rep re-fits the n-1 point model outside the timed region.
  {
    std::vector<double> times;
    for (size_t rep = 0; rep < 5; ++rep) {
      GaussianProcess gp(params);
      (void)gp.Fit(head, head_y);
      auto t0 = std::chrono::steady_clock::now();
      (void)gp.AddObservation(xs.back(), ys.back());
      auto t1 = std::chrono::steady_clock::now();
      times.push_back(std::chrono::duration<double>(t1 - t0).count());
    }
    std::sort(times.begin(), times.end());
    out.incremental_ms = 1e3 * times[times.size() / 2];
  }
  out.ratio = out.full_ms / std::max(out.incremental_ms, 1e-9);
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E12: bench_parallel_engine",
              "iTuned §2.4 parallel experiments + incremental GP refits",
              "4 tuners x 8 seeds at parallelism 1/2/4/8; bitwise "
              "serial-equivalence; GP full vs incremental refit timing.");

  const std::vector<std::string> tuner_names = {
      "random-search", "grid-search", "recursive-random", "ituned"};

  // The seed replicates themselves run on a small pool (bench_common's
  // RunSeedReplicates) — each session owns its system/evaluator/rng, so
  // pooling the sweep cannot change any result.
  ThreadPool sweep_pool(4);

  // cells[tuner][parallelism index]
  std::map<std::string, std::map<size_t, CellResult>> cells;
  for (const std::string& name : tuner_names) {
    for (size_t p : kParallelisms) {
      cells[name][p] = RunCell(name, p, &sweep_pool);
    }
  }
  sweep_pool.Shutdown();

  std::printf(
      "\n%-17s %4s  %14s  %9s  %9s  %10s  %6s\n", "tuner", "par",
      "modeled-wall(s)", "speedup", "real(s)", "mean-best", "equiv");
  bool all_replays_ok = true;
  bool baselines_serial_equal = true;
  double serial_modeled_total = 0.0, par8_modeled_total = 0.0;
  double serial_real_total = 0.0, par8_real_total = 0.0;
  for (const std::string& name : tuner_names) {
    const CellResult& serial = cells[name][1];
    serial_modeled_total += serial.modeled_wallclock;
    serial_real_total += serial.real_seconds;
    par8_modeled_total += cells[name][8].modeled_wallclock;
    par8_real_total += cells[name][8].real_seconds;
    for (size_t p : kParallelisms) {
      const CellResult& cell = cells[name][p];
      all_replays_ok = all_replays_ok && cell.replay_ok;
      // The three baselines propose the same configs regardless of batch
      // size, so their whole histories must be bitwise equal to serial.
      // iTuned's constant-liar batching is a different proposal strategy;
      // its equivalence claim is the serial-replay check (equiv column).
      bool serial_equal = cell.checksum == serial.checksum;
      if (name != "ituned" && !serial_equal) baselines_serial_equal = false;
      std::printf("%-17s %4zu  %14.1f  %8.2fx  %9.3f  %10.1f  %6s\n",
                  name.c_str(), p, cell.modeled_wallclock,
                  serial.modeled_wallclock /
                      std::max(cell.modeled_wallclock, 1e-9),
                  cell.real_seconds, cell.mean_best,
                  cell.replay_ok ? "yes" : "NO");
    }
  }
  double modeled_speedup_8 =
      serial_modeled_total / std::max(par8_modeled_total, 1e-9);
  double real_speedup_8 = serial_real_total / std::max(par8_real_total, 1e-9);
  std::printf(
      "\nSweep totals at parallelism 8: modeled experiment wall-clock "
      "%.1fs -> %.1fs (%.2fx);\nharness host time %.3fs -> %.3fs (%.2fx; "
      "bounded by physical cores — the modeled\nfigure is the paper's "
      "claim, the host figure is thread-pool overhead).\n",
      serial_modeled_total, par8_modeled_total, modeled_speedup_8,
      serial_real_total, par8_real_total, real_speedup_8);
  std::printf("Serial-replay equivalence: %s; baseline histories bitwise "
              "equal across batch sizes: %s\n",
              all_replays_ok ? "all 128 sessions bit-identical" : "FAILED",
              baselines_serial_equal ? "yes" : "NO");

  // GP refit cost: full O(n^3) Fit vs O(n^2) AddObservation.
  std::printf("\n%6s  %12s  %16s  %8s\n", "n", "full-fit(ms)",
              "incremental(ms)", "ratio");
  std::vector<GpTiming> gp_timings;
  for (size_t n : {size_t{30}, size_t{100}, size_t{300}}) {
    gp_timings.push_back(TimeGpRefit(n));
    const GpTiming& t = gp_timings.back();
    std::printf("%6zu  %12.3f  %16.3f  %7.1fx\n", t.n, t.full_ms,
                t.incremental_ms, t.ratio);
  }

  // E15: observability overhead of the full tracing+metrics stack.
  ObsOverhead obs = MeasureObservabilityOverhead();
  std::printf(
      "\nObservability overhead (E15, serial ituned, %zu spans/session):\n"
      "  untraced %.4fs -> traced %.4fs host time per session;\n"
      "  delta = %.2f%% of the %.1fs modeled experiment wall-clock "
      "(gate < 2%%)\n",
      obs.spans, obs.untraced_host_s, obs.traced_host_s, obs.overhead_pct,
      obs.modeled_wallclock_s);
  for (const auto& e : obs.metrics.entries) {
    if (e.kind != "histogram" || e.count == 0) continue;
    std::printf("  %-30s n=%llu mean=%.3f p99=%.3f\n", e.name.c_str(),
                static_cast<unsigned long long>(e.count), e.mean, e.p99);
  }

  bool speedup_pass = modeled_speedup_8 >= 2.5;
  bool gp_pass = gp_timings.back().ratio >= 10.0;
  bool obs_pass = obs.overhead_pct < 2.0;
  std::printf("\nacceptance: modeled speedup@8 %.2fx (>=2.5x: %s), "
              "equivalence %s, GP incremental@300 %.1fx (>=10x: %s), "
              "tracing overhead %.2f%% (<2%%: %s)\n",
              modeled_speedup_8, speedup_pass ? "PASS" : "FAIL",
              all_replays_ok && baselines_serial_equal ? "PASS" : "FAIL",
              gp_timings.back().ratio, gp_pass ? "PASS" : "FAIL",
              obs.overhead_pct, obs_pass ? "PASS" : "FAIL");

  // Machine-readable mirror of everything above, published atomically
  // (write-temp-then-rename) so a crash can't leave a torn report.
  FILE* json = std::fopen("BENCH_parallel_engine.json.tmp", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"experiment\": \"bench_parallel_engine\",\n");
    std::fprintf(json, "  \"seeds\": %zu,\n  \"budget\": %zu,\n", kSeeds,
                 kBudget);
    std::fprintf(json, "  \"cells\": [\n");
    bool first = true;
    for (const std::string& name : tuner_names) {
      for (size_t p : kParallelisms) {
        const CellResult& cell = cells[name][p];
        std::fprintf(
            json,
            "%s    {\"tuner\": \"%s\", \"parallelism\": %zu, "
            "\"modeled_wallclock_s\": %.6f, \"real_s\": %.6f, "
            "\"mean_best\": %.6f, \"history_checksum\": \"%016llx\", "
            "\"serial_replay_identical\": %s}",
            first ? "" : ",\n", name.c_str(), p, cell.modeled_wallclock,
            cell.real_seconds, cell.mean_best,
            static_cast<unsigned long long>(cell.checksum),
            cell.replay_ok ? "true" : "false");
        first = false;
      }
    }
    std::fprintf(json, "\n  ],\n");
    std::fprintf(json,
                 "  \"modeled_speedup_at_8\": %.4f,\n"
                 "  \"real_speedup_at_8\": %.4f,\n"
                 "  \"all_serial_replays_identical\": %s,\n"
                 "  \"baseline_histories_equal_across_batch_sizes\": %s,\n",
                 modeled_speedup_8, real_speedup_8,
                 all_replays_ok ? "true" : "false",
                 baselines_serial_equal ? "true" : "false");
    std::fprintf(json, "  \"gp_refit\": [\n");
    for (size_t i = 0; i < gp_timings.size(); ++i) {
      const GpTiming& t = gp_timings[i];
      std::fprintf(json,
                   "    {\"n\": %zu, \"full_fit_ms\": %.4f, "
                   "\"incremental_ms\": %.4f, \"ratio\": %.2f}%s\n",
                   t.n, t.full_ms, t.incremental_ms, t.ratio,
                   i + 1 < gp_timings.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    // E15: host-time cost of the observability layer, plus the traced
    // session's metric histograms (machine-readable mirror of the console
    // block above; "host" metrics vary run to run by design).
    std::fprintf(json,
                 "  \"observability\": {\n"
                 "    \"untraced_host_s\": %.6f,\n"
                 "    \"traced_host_s\": %.6f,\n"
                 "    \"modeled_wallclock_s\": %.4f,\n"
                 "    \"overhead_pct_of_modeled\": %.4f,\n"
                 "    \"spans_per_session\": %zu,\n"
                 "    \"histograms\": [\n",
                 obs.untraced_host_s, obs.traced_host_s,
                 obs.modeled_wallclock_s, obs.overhead_pct, obs.spans);
    {
      bool first_hist = true;
      for (const auto& e : obs.metrics.entries) {
        if (e.kind != "histogram") continue;
        std::fprintf(json,
                     "%s      {\"name\": \"%s\", \"count\": %llu, "
                     "\"mean\": %.6f, \"p50\": %.6f, \"p99\": %.6f, "
                     "\"max\": %.6f}",
                     first_hist ? "" : ",\n", e.name.c_str(),
                     static_cast<unsigned long long>(e.count), e.mean, e.p50,
                     e.p99, e.max);
        first_hist = false;
      }
    }
    std::fprintf(json, "\n    ]\n  },\n");
    std::fprintf(json,
                 "  \"pass\": {\"modeled_speedup_ge_2p5\": %s, "
                 "\"equivalence\": %s, \"gp_incremental_ge_10x\": %s, "
                 "\"tracing_overhead_lt_2pct\": %s}\n}\n",
                 speedup_pass ? "true" : "false",
                 all_replays_ok && baselines_serial_equal ? "true" : "false",
                 gp_pass ? "true" : "false", obs_pass ? "true" : "false");
    if (CommitTempFile(json, "BENCH_parallel_engine.json").ok()) {
      std::printf("wrote BENCH_parallel_engine.json\n");
    }
  }
  return AcceptanceExit(speedup_pass && gp_pass && all_replays_ok &&
                        baselines_serial_equal && obs_pass);
}
