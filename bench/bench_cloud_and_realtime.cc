// E9 — open problems 2 and 3 from Section 2.5: "Cloud computing: decision
// making in resource provisioning and scheduling" and "Real-time analytics:
// ... low-latency response requirements".
//
// Part 1 (cloud): the same Spark SQL workload tuned under three different
// goals — raw runtime, dollar cost with a loose deadline, dollar cost with
// a tight deadline. The chosen resource allocations should differ:
// latency tuning over-provisions; cost tuning right-sizes to the deadline.
//
// Part 2 (real-time): a streaming pipeline tuned for runtime vs for the
// latency SLA. The SLA objective must find a config with zero violations,
// and prefer the smallest such footprint.

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "core/objective.h"
#include "core/session.h"
#include "systems/multi_tenant.h"
#include "tuners/experiment/ituned.h"

namespace atune {
namespace bench {
namespace {

struct GoalResult {
  Configuration config;
  double runtime = 0.0;
  double usd = 0.0;
  double violations = 0.0;
};

GoalResult TuneWithObjective(const Workload& workload,
                             const ObjectiveFunction& objective,
                             uint64_t seed) {
  auto spark = MakeSpark(seed);
  ITunedTuner tuner;
  SessionOptions options;
  options.budget.max_evaluations = SmokeSize(30, 6);
  options.seed = seed;
  options.objective = objective;
  auto outcome = RunTuningSession(&tuner, spark.get(), workload, options);
  GoalResult r;
  if (!outcome.ok()) return r;
  r.config = outcome->best_config;
  // Re-measure noise-free.
  auto clean = MakeSpark(seed + 1);
  clean->set_noise_sigma(0.0);
  auto result = clean->Execute(r.config, workload);
  if (result.ok()) {
    r.runtime = result->runtime_seconds;
    r.usd = ComputeRunCostUsd(CloudPricing{}, clean->name(),
                              clean->Descriptors(), r.config, *result);
    r.violations = result->MetricOr("sla_violation_ratio", 0.0);
  }
  return r;
}

std::string DescribeAllocation(const Configuration& c) {
  return StrFormat("%lldx%lldc/%lldMB",
                   static_cast<long long>(c.IntOr("num_executors", 0)),
                   static_cast<long long>(c.IntOr("executor_cores", 0)),
                   static_cast<long long>(c.IntOr("executor_memory_mb", 0)));
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E9: bench_cloud_and_realtime",
              "Section 2.5 open problems 2 & 3",
              "Tuning the same systems under cloud-cost and latency-SLA "
              "objectives instead of raw runtime.");

  // --- Part 1: cloud provisioning -----------------------------------------
  {
    auto probe = MakeSpark(1);
    Workload w = MakeSparkSqlAggregateWorkload(8.0, 10.0);
    auto descriptors = probe->Descriptors();
    std::printf("\nSpark SQL aggregate, tuned for three goals "
                "(iTuned, 30 runs each):\n");
    TableWriter table({"goal", "allocation", "runtime", "cost/run"});
    GoalResult fastest = TuneWithObjective(w, ObjectiveFunction{}, 301);
    table.AddRow({"fastest (runtime objective)",
                  DescribeAllocation(fastest.config),
                  StrFormat("%.0fs", fastest.runtime),
                  StrFormat("$%.3f", fastest.usd)});
    GoalResult loose = TuneWithObjective(
        w,
        MakeCloudCostObjective(CloudPricing{}, probe->name(), descriptors,
                               /*deadline_s=*/3000.0),
        302);
    table.AddRow({"cheapest, deadline 3000s",
                  DescribeAllocation(loose.config),
                  StrFormat("%.0fs", loose.runtime),
                  StrFormat("$%.3f", loose.usd)});
    GoalResult tight = TuneWithObjective(
        w,
        MakeCloudCostObjective(CloudPricing{}, probe->name(), descriptors,
                               /*deadline_s=*/600.0),
        303);
    table.AddRow({"cheapest, deadline 600s",
                  DescribeAllocation(tight.config),
                  StrFormat("%.0fs", tight.runtime),
                  StrFormat("$%.3f", tight.usd)});
    table.WritePretty(std::cout);
  }

  // --- Part 2: real-time SLA ----------------------------------------------
  {
    auto probe = MakeSpark(2);
    Workload w = MakeSparkStreamingWorkload(128.0, 12.0, /*interval_s=*/8.0);
    std::printf("\nSpark streaming (8s batch SLA), runtime- vs SLA-tuned:\n");
    TableWriter table(
        {"goal", "allocation", "partitions", "mean batch", "SLA violation"});
    GoalResult runtime_tuned = TuneWithObjective(w, ObjectiveFunction{}, 311);
    GoalResult sla_tuned = TuneWithObjective(
        w, MakeLatencySlaObjective(probe->name(), probe->Descriptors()), 312);
    for (const auto& [label, r] :
         {std::pair<const char*, GoalResult&>{"runtime objective",
                                              runtime_tuned},
          std::pair<const char*, GoalResult&>{"latency-SLA objective",
                                              sla_tuned}}) {
      table.AddRow(
          {label, DescribeAllocation(r.config),
           StrFormat("%lld",
                     static_cast<long long>(
                         r.config.IntOr("shuffle_partitions", 0))),
           StrFormat("%.1fs", r.runtime / 12.0),
           StrFormat("%.0f%%", r.violations * 100.0)});
    }
    table.WritePretty(std::cout);
  }

  // --- Part 3: multi-tenant robustness (Tempo [23] setting) ---------------
  {
    std::printf("\nMulti-tenant DBMS (analytics SLO 140s, hot frontend SLO "
                "40s), shared config:\n");
    auto dbms = MakeDbms(4);
    // The frontend runs hot (64 clients, strong skew): configurations tuned
    // for the analytics tenant alone starve it badly (see E12).
    std::vector<Tenant> tenants = {
        {"analytics", MakeDbmsOlapWorkload(0.5), 140.0},
        {"frontend", MakeDbmsOltpWorkload(0.5, 64.0, 0.85), 40.0},
    };
    MultiTenantSystem mt(dbms.get(), tenants);
    TableWriter table({"strategy", "analytics", "frontend", "worst SLO ratio",
                       "violations"});
    auto report = [&](const char* label, const Configuration& config) {
      auto clean_dbms = MakeDbms(5);
      clean_dbms->set_noise_sigma(0.0);
      MultiTenantSystem clean(clean_dbms.get(), tenants);
      auto r = clean.Execute(config, MakeMultiTenantWorkload());
      if (!r.ok()) return;
      table.AddRow({label,
                    StrFormat("%.0fs / %.0fs SLO",
                              r->MetricOr("tenant_0_runtime_s", 0.0), 140.0),
                    StrFormat("%.0fs / %.0fs SLO",
                              r->MetricOr("tenant_1_runtime_s", 0.0), 40.0),
                    StrFormat("%.2f", r->MetricOr("worst_slo_ratio", 0.0)),
                    StrFormat("%.0f", r->MetricOr("slo_violations", 0.0))});
    };
    report("defaults", mt.space().DefaultConfiguration());
    // Selfish: tuned for analytics alone (classic single-tenant tuning).
    {
      auto solo = MakeDbms(6);
      ITunedTuner tuner;
      SessionOptions options;
      options.budget.max_evaluations = SmokeSize(25, 6);
      options.seed = 321;
      auto outcome = RunTuningSession(&tuner, solo.get(),
                                      MakeDbmsOlapWorkload(0.5), options);
      if (outcome.ok()) report("tuned for analytics only", outcome->best_config);
    }
    // Robust: tuned on the multi-tenant system with the minimax objective.
    {
      ITunedTuner tuner;
      SessionOptions options;
      options.budget.max_evaluations = SmokeSize(25, 6);
      options.seed = 322;
      options.objective = MakeRobustSloObjective();
      auto outcome = RunTuningSession(&tuner, &mt, MakeMultiTenantWorkload(),
                                      options);
      if (outcome.ok()) report("robust minimax (Tempo-style)",
                               outcome->best_config);
    }
    table.WritePretty(std::cout);
  }

  std::printf(
      "\nShape check: with a loose deadline the cost objective shrinks the\n"
      "allocation (cheaper, slower); a tight deadline forces it back up to\n"
      "the smallest allocation that still meets the deadline. The SLA\n"
      "objective drives streaming to zero violations with a modest\n"
      "footprint rather than minimizing total runtime.\n");
  return 0;
}
