// E10 — Sections 2.3 and 2.4: the per-platform approach landscapes.
//
// §2.3 surveys "over 40 highly-cited approaches" for Hadoop MapReduce
// (Starfish [13], MRTuner [21], grey-box models [15], ...) and §2.4 "over
// 15 approaches" for Spark (Ernest [25], dynamic partitioning [10], ...).
// This harness runs our implementations of the representative approaches on
// each platform's canonical workloads and reports the per-approach outcome,
// echoing the comparative style of those sections.

#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/session.h"
#include "tuners/adaptive/stage_retuner.h"
#include "tuners/cost_model/cost_model_tuner.h"
#include "tuners/experiment/ituned.h"
#include "tuners/ml_tuners/ernest.h"
#include "tuners/ml_tuners/ottertune.h"
#include "tuners/rule_based/builtin_rules.h"
#include "tuners/rule_based/rule_engine.h"
#include "tuners/simulation/starfish.h"

namespace atune {
namespace bench {
namespace {

const size_t kSeeds = SmokeSize(3, 1);
const size_t kBudget = SmokeSize(20, 6);

struct Entry {
  std::string approach;
  std::string paper_analogue;
  std::function<std::unique_ptr<Tuner>()> make;
};

void RunPlatform(const std::string& title,
                 const std::function<std::unique_ptr<TunableSystem>(uint64_t)>&
                     make_system,
                 const std::vector<std::pair<std::string, Workload>>& workloads,
                 const std::vector<Entry>& entries) {
  std::printf("\n--- %s (budget %zu, %zu seeds) ---\n", title.c_str(),
              kBudget, kSeeds);
  TableWriter table({"approach", "paper analogue", "workload", "speedup",
                     "evals"});
  for (const Entry& entry : entries) {
    for (const auto& [wname, workload] : workloads) {
      RunningStats speedup, evals;
      for (size_t s = 0; s < kSeeds; ++s) {
        auto system = make_system(400 + s);
        auto tuner = entry.make();
        SessionOptions options;
        options.budget.max_evaluations = kBudget;
        options.seed = 600 + s;
        auto outcome =
            RunTuningSession(tuner.get(), system.get(), workload, options);
        if (!outcome.ok()) continue;
        speedup.Add(outcome->speedup_over_default);
        evals.Add(outcome->evaluations_used);
      }
      table.AddRow({entry.approach, entry.paper_analogue, wname,
                    StrFormat("%.2fx", speedup.mean()),
                    StrFormat("%.1f", evals.mean())});
    }
  }
  table.WritePretty(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E10: bench_bigdata_approaches", "Sections 2.3 and 2.4",
              "Representative tuning approaches on each big-data platform's "
              "canonical workloads.");

  RunPlatform(
      "Hadoop MapReduce (Section 2.3)",
      [](uint64_t seed) -> std::unique_ptr<TunableSystem> {
        return MakeMapReduce(seed);
      },
      {{"wordcount 10GB", MakeMrWordCountWorkload(10.0)},
       {"terasort 10GB", MakeMrTeraSortWorkload(10.0)}},
      {
          {"cluster checklists", "vendor guides, [2,14] findings",
           [] {
             return std::make_unique<RuleBasedTuner>("rules",
                                                     MakeMapReduceRules());
           }},
          {"starfish profiler", "Starfish [13], what-if engine [12]",
           [] { return std::make_unique<StarfishTuner>(); }},
          {"white-box model", "MRTuner [21], grey-box [15]",
           [] { return std::make_unique<CostModelTuner>(); }},
          {"bayesian search", "experiment-driven line of [2,3]",
           [] { return std::make_unique<ITunedTuner>(); }},
          {"per-job adaptation", "mrMoulder [4]",
           [] { return std::make_unique<StageRetunerTuner>(); }},
      });

  RunPlatform(
      "Spark (Section 2.4)",
      [](uint64_t seed) -> std::unique_ptr<TunableSystem> {
        return MakeSpark(seed);
      },
      {{"sql aggregate 8GB", MakeSparkSqlAggregateWorkload(8.0, 6.0)},
       {"iterative ML 4GB", MakeSparkIterativeMlWorkload(4.0, 8.0)}},
      {
          {"tuning guide rules", "'Tuning Spark' folklore",
           [] {
             return std::make_unique<RuleBasedTuner>("rules",
                                                     MakeSparkRules());
           }},
          {"scale modeling", "Ernest [25]",
           [] { return std::make_unique<ErnestTuner>(); }},
          {"ml pipeline", "OtterTune-style for Spark [11]",
           [] { return std::make_unique<OtterTuneTuner>(); }},
          {"bayesian search", "experiment-driven Spark tuning [25]-adjacent",
           [] { return std::make_unique<ITunedTuner>(); }},
          {"dynamic partitioning", "Gounaris et al. [10]",
           [] { return std::make_unique<StageRetunerTuner>(); }},
      });

  std::printf(
      "\nShape check vs the paper: on MapReduce the profiler (Starfish) gets\n"
      "most of the experiment-driven quality at a fraction of the runs; on\n"
      "Spark, resource sizing (Ernest) captures the biggest single win while\n"
      "full-space search refines further; adaptive approaches tune within\n"
      "the job itself.\n");
  return 0;
}
