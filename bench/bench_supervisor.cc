// E16 — tuner supervision layer: production tuning services must survive
// tuners that misbehave (non-finite proposals, stuck acquisition loops,
// numerically poisoned models) and systems that punish them (crash cliffs,
// NaN-reporting sensors). This harness points the full tuner registry at
// deliberately hostile systems and measures what the supervision layer
// (core/supervisor.h: sanitization + circuit breaker + failover) buys:
//
//   * hostile completion: every registry tuner that tunes the DBMS
//     fault-free must finish WITHOUT a session-fatal error on each hostile
//     stack (NaN-objective region / crash cliff / ill-conditioned runtimes,
//     each under 15% injected transient faults) when supervised.
//     kAllTrialsFailed is non-fatal (an honest "nothing usable" verdict).
//   * fault-free overhead: on the bare DBMS the supervised session must be
//     within 2% of the unsupervised best objective for the matrix tuners —
//     supervision may not tax healthy sessions (it is in fact bit-identical;
//     the checksum comparison is reported too).
//   * supervised resume: a supervised session on a hostile stack killed
//     mid-run and resumed from its journal must reproduce the uninterrupted
//     session's OutcomeChecksum bit for bit (failover decisions are a pure
//     function of the journaled observations).
//
// Results go to console + BENCH_supervisor.json.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/file_util.h"
#include "common/string_util.h"
#include "core/registry.h"
#include "core/session.h"
#include "core/supervisor.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/fault_injector.h"
#include "tuners/builtin.h"

namespace atune {
namespace bench {
namespace {

const size_t kSeeds = SmokeSize(3, 1);
const size_t kBudget = SmokeSize(20, 8);
const double kFaultRate = 0.15;
/// Fault-free supervised best may regress at most this much vs unsupervised.
const double kMaxOverheadRatio = 1.02;

/// Matrix tuners for the overhead comparison (same set as bench_robustness:
/// one per category that tunes the DBMS unaided).
const char* kMatrixTuners[] = {"random-search",    "grid-search",
                               "recursive-random", "ituned",
                               "sard",             "ottertune"};

/// What a hostile region does to runs landing inside it.
enum class Hostility {
  kNaNObjective,  ///< run "succeeds" but reports a NaN runtime
  kCrashCliff,    ///< run fails hard (config-caused, never retried)
  kOverflow,      ///< runtime ~1e160: poisons GP variance into non-finite
};

const char* HostilityName(Hostility h) {
  switch (h) {
    case Hostility::kNaNObjective: return "nan-region";
    case Hostility::kCrashCliff: return "crash-cliff";
    case Hostility::kOverflow: return "ill-conditioned";
  }
  return "?";
}

/// Decorator that makes a ball of the unit cube hostile. Membership is a
/// pure function of the configuration, so the decorator is deterministic
/// and honors the Clone/SkipRuns batch contract by construction.
class HostileRegionSystem : public IterativeSystem {
 public:
  HostileRegionSystem(std::unique_ptr<TunableSystem> inner, Hostility mode,
                      double center, double radius)
      : owned_(std::move(inner)),
        inner_(owned_.get()),
        mode_(mode),
        center_(center),
        radius_(radius) {}

  std::string name() const override { return inner_->name(); }
  const ParameterSpace& space() const override { return inner_->space(); }
  std::map<std::string, double> Descriptors() const override {
    return inner_->Descriptors();
  }
  std::vector<std::string> MetricNames() const override {
    return inner_->MetricNames();
  }

  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload& workload) override {
    auto result = inner_->Execute(config, workload);
    if (!result.ok() || !InRegion(config)) return result;
    return MakeHostile(*result);
  }

  std::unique_ptr<TunableSystem> Clone(uint64_t runs_ahead) const override {
    auto inner_clone = inner_->Clone(runs_ahead);
    if (inner_clone == nullptr) return nullptr;
    return std::make_unique<HostileRegionSystem>(std::move(inner_clone),
                                                 mode_, center_, radius_);
  }
  void SkipRuns(uint64_t n) override { inner_->SkipRuns(n); }

  IterativeSystem* AsIterative() override {
    return inner_->AsIterative() != nullptr ? this : nullptr;
  }
  size_t NumUnits(const Workload& workload) const override {
    IterativeSystem* it = inner_->AsIterative();
    return it != nullptr ? it->NumUnits(workload) : 0;
  }
  Result<ExecutionResult> ExecuteUnit(const Configuration& config,
                                      const Workload& workload,
                                      size_t unit_index) override {
    IterativeSystem* it = inner_->AsIterative();
    if (it == nullptr) return Status::Unimplemented("not iterative");
    auto result = it->ExecuteUnit(config, workload, unit_index);
    if (!result.ok() || !InRegion(config)) return result;
    return MakeHostile(*result);
  }
  double ReconfigurationCost() const override {
    IterativeSystem* it = inner_->AsIterative();
    return it != nullptr ? it->ReconfigurationCost() : 0.0;
  }

 private:
  bool InRegion(const Configuration& config) const {
    Vec u = inner_->space().ToUnitVector(config);
    double d2 = 0.0;
    for (double v : u) d2 += (v - center_) * (v - center_);
    double dist = std::sqrt(d2 / static_cast<double>(u.empty() ? 1 : u.size()));
    return dist <= radius_;
  }

  ExecutionResult MakeHostile(ExecutionResult result) const {
    switch (mode_) {
      case Hostility::kNaNObjective:
        result.runtime_seconds = std::numeric_limits<double>::quiet_NaN();
        result.failed = false;
        result.censored = false;
        break;
      case Hostility::kCrashCliff:
        result.failed = true;
        result.transient = false;  // config-caused: the breaker's food
        result.censored = false;
        result.runtime_seconds = kFailedRunWallClockSec;
        result.failure_reason = "crash cliff";
        break;
      case Hostility::kOverflow:
        result.runtime_seconds = 1.0e160;  // squares overflow in GP algebra
        result.failed = false;
        result.censored = false;
        break;
    }
    return result;
  }

  std::unique_ptr<TunableSystem> owned_;
  TunableSystem* inner_;
  Hostility mode_;
  double center_;
  double radius_;
};

/// One hostile stack: region decorator over the DBMS, under 15% injected
/// transient faults.
std::unique_ptr<TunableSystem> MakeHostileStack(Hostility mode,
                                                uint64_t seed) {
  auto hostile = std::make_unique<HostileRegionSystem>(
      MakeDbms(seed + 1), mode, /*center=*/0.75, /*radius=*/0.30);
  return std::make_unique<FaultInjectingSystem>(
      std::move(hostile), FaultProfile::FromRate(kFaultRate, seed + 7));
}

struct SessionResult {
  Status status = Status::OK();
  double best = 0.0;
  uint64_t checksum = 0;
  std::string report;
};

SessionResult RunOne(const std::string& tuner_name, bool supervise,
                     TunableSystem* system, uint64_t seed,
                     const std::string& journal = "",
                     bool resume = false, uint64_t kill_after = 0) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  SessionResult out;
  auto created = registry.Create(tuner_name);
  if (!created.ok()) {
    out.status = created.status();
    return out;
  }
  std::unique_ptr<Tuner> tuner = std::move(*created);
  if (supervise) tuner = MakeSupervisedTuner(std::move(tuner));
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = seed + 100;
  options.measure_default = false;
  options.journal_path = journal;
  options.interrupt_after_records = kill_after;
  auto outcome = resume
                     ? ResumeTuningSession(tuner.get(), system,
                                           MakeDbmsOlapWorkload(1.0), options)
                     : RunTuningSession(tuner.get(), system,
                                        MakeDbmsOlapWorkload(1.0), options);
  out.status = outcome.status();
  if (outcome.ok()) {
    out.best = outcome->best_objective;
    out.checksum = OutcomeChecksum(*outcome);
    out.report = outcome->tuner_report;
  }
  return out;
}

/// Session-fatal = any terminal status other than success or the honest
/// "every trial failed" verdict. kAborted would also be fatal here (nothing
/// interrupts these sessions).
bool SessionFatal(const Status& status) {
  return !status.ok() && status.code() != StatusCode::kAllTrialsFailed;
}

struct HostileRow {
  std::string tuner;
  std::string stack;
  bool supervised_ok = false;
  bool unsupervised_ok = false;  // informational: what supervision rescued
  std::string supervised_status;
};

/// Part 1: registry x hostile-stack completion matrix.
std::vector<HostileRow> RunHostileMatrix(bool* pass) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  const Hostility kModes[] = {Hostility::kNaNObjective, Hostility::kCrashCliff,
                              Hostility::kOverflow};
  std::vector<HostileRow> rows;
  *pass = true;
  for (const std::string& name : registry.Names()) {
    // Applicability filter (as in bench_robustness): tuners that cannot
    // tune this system at all are reported but not held against the bar.
    auto bare = MakeDbms(11);
    std::fprintf(stderr, "[hostile] %s: applicability probe\n", name.c_str());
    if (SessionFatal(RunOne(name, /*supervise=*/false, bare.get(), 3).status)) {
      continue;
    }
    for (Hostility mode : kModes) {
      HostileRow row;
      row.tuner = name;
      row.stack = HostilityName(mode);
      bool ok = true;
      for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        std::fprintf(stderr, "[hostile] %s x %s seed %llu\n", name.c_str(),
                     HostilityName(mode),
                     static_cast<unsigned long long>(seed));
        auto stack = MakeHostileStack(mode, seed);
        SessionResult supervised =
            RunOne(name, /*supervise=*/true, stack.get(), seed);
        if (SessionFatal(supervised.status)) {
          ok = false;
          row.supervised_status = supervised.status.ToString();
        }
        if (seed == 0) {
          auto stack2 = MakeHostileStack(mode, seed);
          row.unsupervised_ok = !SessionFatal(
              RunOne(name, /*supervise=*/false, stack2.get(), seed).status);
        }
      }
      row.supervised_ok = ok;
      *pass = *pass && ok;
      rows.push_back(row);
    }
  }
  return rows;
}

struct OverheadRow {
  std::string tuner;
  double unsupervised_best = 0.0;
  double supervised_best = 0.0;
  double ratio = 1.0;
  bool bit_identical = false;
  bool pass = false;
};

/// Part 2: fault-free supervised-vs-unsupervised overhead on the bare DBMS.
std::vector<OverheadRow> RunOverheadMatrix(bool* pass) {
  std::vector<OverheadRow> rows;
  *pass = true;
  for (const char* name : kMatrixTuners) {
    OverheadRow row;
    row.tuner = name;
    row.bit_identical = true;
    bool all_ok = true;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      auto bare_a = MakeDbms(seed + 1);
      SessionResult plain = RunOne(name, /*supervise=*/false, bare_a.get(),
                                   seed);
      auto bare_b = MakeDbms(seed + 1);
      SessionResult supervised = RunOne(name, /*supervise=*/true, bare_b.get(),
                                        seed);
      all_ok = all_ok && plain.status.ok() && supervised.status.ok();
      row.unsupervised_best += plain.best / static_cast<double>(kSeeds);
      row.supervised_best += supervised.best / static_cast<double>(kSeeds);
      row.bit_identical =
          row.bit_identical && plain.checksum == supervised.checksum;
    }
    // Lower objective is better: ratio > 1 means supervision cost quality.
    row.ratio = row.unsupervised_best > 0.0
                    ? row.supervised_best / row.unsupervised_best
                    : 1.0;
    row.pass = all_ok && row.ratio <= kMaxOverheadRatio;
    *pass = *pass && row.pass;
    rows.push_back(row);
  }
  return rows;
}

struct ResumeResult {
  bool ran = false;
  bool identical = false;
  uint64_t full_checksum = 0;
  uint64_t resumed_checksum = 0;
};

/// Part 3: supervised session on the NaN-region stack, killed after a few
/// journal records, resumed, compared bitwise to the uninterrupted run.
ResumeResult RunSupervisedResume() {
  ResumeResult result;
  const std::string journal = "bench_supervisor_resume.journal";
  const uint64_t kill_after = kBudget / 2;

  std::remove(journal.c_str());
  auto full_stack = MakeHostileStack(Hostility::kNaNObjective, /*seed=*/0);
  SessionResult full = RunOne("ituned", /*supervise=*/true, full_stack.get(),
                              /*seed=*/0, journal);
  std::remove(journal.c_str());
  auto killed_stack = MakeHostileStack(Hostility::kNaNObjective, /*seed=*/0);
  SessionResult killed =
      RunOne("ituned", /*supervise=*/true, killed_stack.get(), /*seed=*/0,
             journal, /*resume=*/false, kill_after);
  auto resumed_stack = MakeHostileStack(Hostility::kNaNObjective, /*seed=*/0);
  SessionResult resumed =
      RunOne("ituned", /*supervise=*/true, resumed_stack.get(), /*seed=*/0,
             journal, /*resume=*/true);
  std::remove(journal.c_str());

  result.ran = full.status.ok() &&
               killed.status.code() == StatusCode::kAborted &&
               resumed.status.ok();
  result.full_checksum = full.checksum;
  result.resumed_checksum = resumed.checksum;
  result.identical = result.ran && full.checksum == resumed.checksum;
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E16: bench_supervisor",
              "tuner supervision layer (sanitize + breaker + failover)",
              "registry completion on hostile systems at 15% faults; "
              "fault-free supervised overhead < 2%; supervised kill+resume "
              "bit-identity.");

  bool hostile_pass = false;
  std::vector<HostileRow> hostile = RunHostileMatrix(&hostile_pass);
  std::printf("\nhostile completion (supervised, %zu seeds x %zu budget, "
              "15%% transient faults):\n", kSeeds, kBudget);
  std::printf("%-18s  %-15s  %-10s  %s\n", "tuner", "stack", "supervised",
              "unsupervised");
  size_t rescued = 0;
  for (const HostileRow& row : hostile) {
    if (row.supervised_ok && !row.unsupervised_ok) ++rescued;
    std::printf("%-18s  %-15s  %-10s  %s%s\n", row.tuner.c_str(),
                row.stack.c_str(), row.supervised_ok ? "ok" : "FATAL",
                row.unsupervised_ok ? "ok" : "fatal",
                row.supervised_status.empty()
                    ? ""
                    : ("  (" + row.supervised_status + ")").c_str());
  }
  std::printf("(%zu tuner/stack cells rescued by supervision)\n", rescued);

  bool overhead_pass = false;
  std::vector<OverheadRow> overhead = RunOverheadMatrix(&overhead_pass);
  std::printf("\nfault-free overhead (bare DBMS, lower objective = better):\n");
  std::printf("%-18s  %12s  %12s  %7s  %s\n", "tuner", "unsupervised",
              "supervised", "ratio", "history");
  for (const OverheadRow& row : overhead) {
    std::printf("%-18s  %12.2f  %12.2f  %7.4f  %s%s\n", row.tuner.c_str(),
                row.unsupervised_best, row.supervised_best, row.ratio,
                row.bit_identical ? "bit-identical" : "differs",
                row.pass ? "" : "  FAIL");
  }

  ResumeResult resume = RunSupervisedResume();
  std::printf("\nsupervised resume on nan-region stack: %s (full=%016llx "
              "resumed=%016llx)\n",
              resume.identical ? "bit-identical"
                               : (resume.ran ? "DIFFERS" : "DID NOT RUN"),
              static_cast<unsigned long long>(resume.full_checksum),
              static_cast<unsigned long long>(resume.resumed_checksum));

  bool pass = hostile_pass && overhead_pass && resume.identical;
  std::printf("\nacceptance: hostile completion %s, fault-free overhead "
              "< %.0f%% %s, supervised resume bit-identity %s\n",
              hostile_pass ? "PASS" : "FAIL",
              (kMaxOverheadRatio - 1.0) * 100.0,
              overhead_pass ? "PASS" : "FAIL",
              resume.identical ? "PASS" : "FAIL");

  FILE* json = std::fopen("BENCH_supervisor.json.tmp", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"experiment\": \"bench_supervisor\",\n");
    std::fprintf(json, "  \"seeds\": %zu,\n  \"budget\": %zu,\n", kSeeds,
                 kBudget);
    std::fprintf(json, "  \"fault_rate\": %.2f,\n", kFaultRate);
    std::fprintf(json, "  \"hostile\": [\n");
    for (size_t i = 0; i < hostile.size(); ++i) {
      const HostileRow& row = hostile[i];
      std::fprintf(json,
                   "    {\"tuner\": \"%s\", \"stack\": \"%s\", "
                   "\"supervised_ok\": %s, \"unsupervised_ok\": %s}%s\n",
                   row.tuner.c_str(), row.stack.c_str(),
                   row.supervised_ok ? "true" : "false",
                   row.unsupervised_ok ? "true" : "false",
                   i + 1 < hostile.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"overhead\": [\n");
    for (size_t i = 0; i < overhead.size(); ++i) {
      const OverheadRow& row = overhead[i];
      std::fprintf(json,
                   "    {\"tuner\": \"%s\", \"unsupervised_best\": %.6f, "
                   "\"supervised_best\": %.6f, \"ratio\": %.6f, "
                   "\"bit_identical\": %s}%s\n",
                   row.tuner.c_str(), row.unsupervised_best,
                   row.supervised_best, row.ratio,
                   row.bit_identical ? "true" : "false",
                   i + 1 < overhead.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"resume_bit_identical\": %s,\n",
                 resume.identical ? "true" : "false");
    std::fprintf(json, "  \"rescued_cells\": %zu,\n", rescued);
    std::fprintf(json,
                 "  \"pass\": {\"hostile\": %s, \"overhead\": %s, "
                 "\"resume\": %s}\n}\n",
                 hostile_pass ? "true" : "false",
                 overhead_pass ? "true" : "false",
                 resume.identical ? "true" : "false");
    if (CommitTempFile(json, "BENCH_supervisor.json").ok()) {
      std::printf("wrote BENCH_supervisor.json\n");
    }
  }
  return AcceptanceExit(pass);
}
