// E14 — durability: a tuning campaign on a real cluster is hours long and
// dies for boring reasons (preemption, OOM on the driver, an operator ^C).
// The write-ahead trial journal (core/journal.h) makes every committed
// observation durable before the tuner sees it, and ResumeTuningSession
// reconstructs the session by deterministic replay. This harness is the
// acceptance gate for that guarantee:
//
//   * kill/resume bit-identity: for every registered tuner that tunes the
//     DBMS, at parallelism 1 AND 8, kill the session after 1, n/2, n-1, and
//     a seeded-random number of journaled records, resume, and require the
//     final OutcomeChecksum (history + best + budget + robustness counters)
//     to equal the uninterrupted baseline's, with zero budget leak
//     (|used - sum(trial costs)| < 1e-6).
//   * torn-journal fuzzing: truncate the journal mid-record, flip a byte,
//     append duplicate record bytes, or empty the file entirely; recovery
//     must keep the longest valid prefix without aborting, and the resumed
//     session must still reach the identical outcome (dropped records are
//     simply re-executed — corruption costs wall-clock, never correctness).
//
// Results go to console + BENCH_durability.json + BENCH_durability.csv.
// Unlike the other harnesses this one gates its exit code even under
// ATUNE_SMOKE: durability is a correctness property, not a paper-scale
// number, so the smoke pass must still prove it.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/file_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/journal.h"
#include "core/registry.h"
#include "core/session.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/fault_injector.h"
#include "tuners/builtin.h"

namespace atune {
namespace bench {
namespace {

const size_t kBudget = SmokeSize(14, 6);
const uint64_t kSeed = 5;
const double kFuzzFaultRate = 0.15;

struct RunSpec {
  std::string tuner;
  size_t parallelism = 1;
  std::string journal_path;  // empty = un-journaled
  uint64_t kill_after = 0;   // 0 = run to completion
  bool resume = false;
  double fault_rate = 0.0;
};

struct RunResult {
  Status status = Status::OK();
  bool ok = false;
  uint64_t checksum = 0;
  double used = 0.0;
  double cost_sum = 0.0;
  size_t trials = 0;
  size_t replayed = 0;
};

RunResult RunSession(const RunSpec& spec) {
  RunResult out;
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(spec.tuner);
  if (!tuner.ok()) {
    out.status = tuner.status();
    return out;
  }
  (*tuner)->set_parallelism(spec.parallelism);

  auto dbms = MakeDbms(kSeed + 1);
  TunableSystem* target = dbms.get();
  std::unique_ptr<FaultInjectingSystem> faulty;
  if (spec.fault_rate > 0.0) {
    FaultProfile profile;
    profile.transient_failure_rate = spec.fault_rate;
    faulty = std::make_unique<FaultInjectingSystem>(dbms.get(), profile);
    target = faulty.get();
  }

  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = kSeed + 100;
  options.measure_default = false;
  options.journal_path = spec.journal_path;
  options.interrupt_after_records = spec.kill_after;
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto outcome =
      spec.resume
          ? ResumeTuningSession(tuner->get(), target, workload, options)
          : RunTuningSession(tuner->get(), target, workload, options);
  if (!outcome.ok()) {
    out.status = outcome.status();
    return out;
  }
  out.ok = true;
  out.checksum = OutcomeChecksum(*outcome);
  out.used = outcome->evaluations_used;
  for (const Trial& t : outcome->history) out.cost_sum += t.cost;
  out.trials = outcome->history.size();
  out.replayed = outcome->replayed_records;
  return out;
}

/// Record count of a finished journal (reopens it read-mostly; the file is
/// intact, so recovery returns everything).
uint64_t JournalRecordCount(const std::string& path) {
  auto recovered = TrialJournal::OpenForResume(path);
  if (!recovered.ok()) return 0;
  return recovered->records.size();
}

struct KillCase {
  uint64_t kill_after = 0;
  bool aborted_cleanly = false;
  bool checksum_match = false;
  bool no_leak = false;
  size_t replayed = 0;
};

struct TunerRow {
  std::string tuner;
  size_t parallelism = 1;
  bool applicable = false;
  bool baseline_ok = false;
  uint64_t records = 0;
  uint64_t baseline_checksum = 0;
  std::vector<KillCase> kills;
  bool pass = true;
};

/// Kill the session after `kill_after` journaled records, then resume on a
/// fresh identical system and compare against the uninterrupted baseline.
KillCase RunKillResume(const std::string& tuner, size_t parallelism,
                       uint64_t kill_after, uint64_t baseline_checksum,
                       const std::string& path, double fault_rate) {
  KillCase kc;
  kc.kill_after = kill_after;
  std::remove(path.c_str());

  RunSpec killed;
  killed.tuner = tuner;
  killed.parallelism = parallelism;
  killed.journal_path = path;
  killed.kill_after = kill_after;
  killed.fault_rate = fault_rate;
  RunResult interrupted = RunSession(killed);
  // The kill must surface as a clean kAborted, never a success or a crash.
  kc.aborted_cleanly =
      !interrupted.ok && interrupted.status.code() == StatusCode::kAborted;

  RunSpec resumed = killed;
  resumed.kill_after = 0;
  resumed.resume = true;
  RunResult final = RunSession(resumed);
  kc.checksum_match = final.ok && final.checksum == baseline_checksum;
  kc.no_leak = final.ok && std::abs(final.used - final.cost_sum) < 1e-6;
  kc.replayed = final.replayed;
  std::remove(path.c_str());
  return kc;
}

TunerRow RunTunerMatrix(const std::string& tuner, size_t parallelism) {
  TunerRow row;
  row.tuner = tuner;
  row.parallelism = parallelism;
  const std::string path =
      StrFormat("bench_durability_%s_p%zu.wal", tuner.c_str(), parallelism);

  // Probe: does this tuner tune the DBMS at all (without a journal)?
  RunSpec probe;
  probe.tuner = tuner;
  probe.parallelism = parallelism;
  if (!RunSession(probe).ok) return row;  // wrong platform; not applicable
  row.applicable = true;

  // Uninterrupted journaled baseline.
  std::remove(path.c_str());
  RunSpec base = probe;
  base.journal_path = path;
  RunResult baseline = RunSession(base);
  row.baseline_ok = baseline.ok;
  row.records = JournalRecordCount(path);
  row.baseline_checksum = baseline.checksum;
  std::remove(path.c_str());
  if (!baseline.ok || row.records < 2) {
    // One-shot tuners have no mid-run to kill; the journaled baseline
    // itself passing is the whole durability story for them.
    row.pass = baseline.ok;
    return row;
  }

  std::set<uint64_t> kill_points = {1, row.records / 2, row.records - 1};
  Rng rng(DeriveSeed(kSeed, Fnv1a(kFnvOffsetBasis, tuner.data(),
                                  tuner.size())));
  kill_points.insert(static_cast<uint64_t>(
      rng.UniformInt(1, static_cast<int64_t>(row.records - 1))));
  for (uint64_t kill : kill_points) {
    if (kill == 0 || kill >= row.records) continue;
    KillCase kc = RunKillResume(tuner, parallelism, kill,
                                row.baseline_checksum, path, 0.0);
    row.pass = row.pass && kc.aborted_cleanly && kc.checksum_match &&
               kc.no_leak;
    row.kills.push_back(kc);
  }
  return row;
}

struct FuzzCase {
  std::string name;
  bool recovered = false;  // OpenForResume did not error out
  bool checksum_match = false;
};

/// Corrupt a mid-session journal in byte-level ways a real crash (or a bad
/// disk) produces, then resume: recovery must keep the longest valid prefix
/// without aborting and the final outcome must still match the baseline.
std::vector<FuzzCase> RunFuzz(const std::string& tuner) {
  std::vector<FuzzCase> cases;
  const std::string path =
      StrFormat("bench_durability_fuzz_%s.wal", tuner.c_str());

  // Baseline under fault injection, so robustness counters are live state
  // the journal must carry too.
  std::remove(path.c_str());
  RunSpec base;
  base.tuner = tuner;
  base.journal_path = path;
  base.fault_rate = kFuzzFaultRate;
  RunResult baseline = RunSession(base);
  const uint64_t records = JournalRecordCount(path);
  std::remove(path.c_str());
  if (!baseline.ok || records < 2) return cases;

  // A mid-session journal to corrupt (killed partway through).
  RunSpec killed = base;
  killed.kill_after = std::min<uint64_t>(4, records - 1);
  RunSession(killed);
  std::string victim;
  ReadFileToString(path, &victim);
  std::remove(path.c_str());

  struct Mutation {
    std::string name;
    std::string bytes;
  };
  std::vector<Mutation> mutations;
  Rng rng(DeriveSeed(kSeed, 0xF022));
  if (victim.size() > 16) {
    // Torn tail: the last record was half-written when the machine died.
    size_t cut = victim.size() -
                 static_cast<size_t>(rng.UniformInt(
                     1, static_cast<int64_t>(victim.size() / 2)));
    mutations.push_back({"truncated_mid_record", victim.substr(0, cut)});
    // Bit rot: one byte in a committed record flips.
    std::string flipped = victim;
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
    mutations.push_back({"flipped_byte", flipped});
    // Duplicate tail bytes: a confused writer appended the last frame again
    // (the duplicate seq must be rejected, not replayed twice).
    size_t tail = std::min<size_t>(48, victim.size() / 2);
    mutations.push_back(
        {"duplicated_tail_bytes", victim + victim.substr(victim.size() - tail)});
  }
  // Total loss: the journal file exists but is empty.
  mutations.push_back({"empty_file", ""});

  for (const Mutation& mutation : mutations) {
    FuzzCase fc;
    fc.name = mutation.name;
    std::remove(path.c_str());
    if (!AtomicWriteFile(path, mutation.bytes).ok()) {
      cases.push_back(fc);
      continue;
    }
    // Recovery itself must never abort on corruption.
    auto recovered = TrialJournal::OpenForResume(path);
    fc.recovered = recovered.ok();
    RunSpec resume = base;
    resume.resume = true;
    RunResult final = RunSession(resume);
    fc.checksum_match = final.ok && final.checksum == baseline.checksum;
    cases.push_back(fc);
  }
  std::remove(path.c_str());
  return cases;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E14: bench_durability",
              "write-ahead trial journal + deterministic replay resume",
              "kill/resume bit-identity for every registry tuner at "
              "parallelism 1 and 8; torn-journal fuzzing recovers the "
              "longest valid prefix.");

  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);

  std::vector<TunerRow> rows;
  bool matrix_pass = true;
  size_t applicable = 0;
  std::printf("\nkill/resume bit-identity (budget %zu, kill points "
              "{1, n/2, n-1, random}):\n",
              kBudget);
  std::printf("%-18s %3s  %7s  %5s  %s\n", "tuner", "par", "records",
              "kills", "verdict");
  for (const std::string& name : registry.Names()) {
    for (size_t parallelism : {size_t{1}, size_t{8}}) {
      TunerRow row = RunTunerMatrix(name, parallelism);
      if (!row.applicable) continue;
      if (parallelism == 1) ++applicable;
      matrix_pass = matrix_pass && row.pass;
      std::printf("%-18s %3zu  %7llu  %5zu  %s\n", row.tuner.c_str(),
                  row.parallelism,
                  static_cast<unsigned long long>(row.records),
                  row.kills.size(),
                  row.pass ? "identical" : "DIFFERS/FAILED");
      rows.push_back(std::move(row));
    }
  }
  std::printf("(%zu registered tuners tune this system)\n", applicable);

  std::vector<FuzzCase> fuzz = RunFuzz("ituned");
  bool fuzz_pass = !fuzz.empty();
  std::printf("\ntorn-journal fuzzing (ituned, %.0f%% transient faults):\n",
              kFuzzFaultRate * 100.0);
  for (const FuzzCase& fc : fuzz) {
    bool pass = fc.recovered && fc.checksum_match;
    fuzz_pass = fuzz_pass && pass;
    std::printf("  %-24s recovery %-4s  resumed outcome %s\n",
                fc.name.c_str(), fc.recovered ? "ok" : "FAIL",
                fc.checksum_match ? "identical" : "DIFFERS");
  }

  bool pass = matrix_pass && fuzz_pass;
  std::printf("\nacceptance: kill/resume bit-identity %s, fuzz recovery %s\n",
              matrix_pass ? "PASS" : "FAIL", fuzz_pass ? "PASS" : "FAIL");

  // JSON + CSV artifacts, both published atomically (write-temp-then-
  // rename): a crash mid-report can't leave a torn half-written file.
  std::ostringstream json;
  json << "{\n  \"experiment\": \"bench_durability\",\n";
  json << "  \"budget\": " << kBudget << ",\n  \"matrix\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const TunerRow& row = rows[i];
    json << StrFormat(
        "    {\"tuner\": \"%s\", \"parallelism\": %zu, \"records\": %llu, "
        "\"baseline_checksum\": \"%016llx\", \"kill_cases\": [",
        row.tuner.c_str(), row.parallelism,
        static_cast<unsigned long long>(row.records),
        static_cast<unsigned long long>(row.baseline_checksum));
    for (size_t k = 0; k < row.kills.size(); ++k) {
      const KillCase& kc = row.kills[k];
      json << StrFormat(
          "%s{\"kill_after\": %llu, \"aborted_cleanly\": %s, "
          "\"checksum_match\": %s, \"no_budget_leak\": %s, "
          "\"replayed\": %zu}",
          k > 0 ? ", " : "", static_cast<unsigned long long>(kc.kill_after),
          kc.aborted_cleanly ? "true" : "false",
          kc.checksum_match ? "true" : "false",
          kc.no_leak ? "true" : "false", kc.replayed);
    }
    json << StrFormat("], \"pass\": %s}%s\n", row.pass ? "true" : "false",
                      i + 1 < rows.size() ? "," : "");
  }
  json << "  ],\n  \"fuzz\": [\n";
  for (size_t i = 0; i < fuzz.size(); ++i) {
    json << StrFormat(
        "    {\"case\": \"%s\", \"recovered\": %s, \"checksum_match\": "
        "%s}%s\n",
        fuzz[i].name.c_str(), fuzz[i].recovered ? "true" : "false",
        fuzz[i].checksum_match ? "true" : "false",
        i + 1 < fuzz.size() ? "," : "");
  }
  json << StrFormat(
      "  ],\n  \"pass\": {\"matrix\": %s, \"fuzz\": %s}\n}\n",
      matrix_pass ? "true" : "false", fuzz_pass ? "true" : "false");
  if (AtomicWriteFile("BENCH_durability.json", json.str()).ok()) {
    std::printf("wrote BENCH_durability.json\n");
  }

  TableWriter csv({"tuner", "parallelism", "records", "kill_after",
                   "aborted_cleanly", "checksum_match", "no_budget_leak",
                   "replayed"});
  for (const TunerRow& row : rows) {
    for (const KillCase& kc : row.kills) {
      csv.AddRow({row.tuner, StrFormat("%zu", row.parallelism),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(row.records)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(kc.kill_after)),
                  kc.aborted_cleanly ? "1" : "0",
                  kc.checksum_match ? "1" : "0", kc.no_leak ? "1" : "0",
                  StrFormat("%zu", kc.replayed)});
    }
  }
  if (csv.WriteCsvFile("BENCH_durability.csv").ok()) {
    std::printf("wrote BENCH_durability.csv\n");
  }

  // Deliberately NOT AcceptanceExit(): durability must gate smoke runs too.
  return pass ? 0 : 1;
}
