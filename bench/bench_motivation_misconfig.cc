// E3 — the paper's motivating claim (Section 1): "Improper settings of
// configuration parameters are shown to have detrimental effects on the
// overall system performance and stability" [9, 13, 27], with tuning gains
// "sometimes measured in orders of magnitude" [24].
//
// For every simulated platform this harness samples random legal
// configurations and reports the spread between worst / default / best, the
// hard-failure rate, and the best-vs-worst factor.

#include <algorithm>
#include <functional>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace atune {
namespace bench {
namespace {

struct SpreadResult {
  double best = 0.0;
  double default_runtime = 0.0;
  double worst_ok = 0.0;        // worst non-failed runtime
  double median = 0.0;
  size_t failures = 0;
  size_t samples = 0;
};

SpreadResult MeasureSpread(TunableSystem* system, const Workload& workload,
                           size_t samples, uint64_t seed) {
  SpreadResult out;
  Rng rng(seed);
  std::vector<double> ok_runtimes;
  for (size_t i = 0; i < samples; ++i) {
    Configuration config = system->space().RandomConfiguration(&rng);
    auto result = system->Execute(config, workload);
    if (!result.ok()) continue;
    ++out.samples;
    if (result->failed) {
      ++out.failures;
    } else {
      ok_runtimes.push_back(result->runtime_seconds);
    }
  }
  auto default_run =
      system->Execute(system->space().DefaultConfiguration(), workload);
  out.default_runtime = default_run.ok() ? default_run->runtime_seconds : 0.0;
  if (!ok_runtimes.empty()) {
    out.best = *std::min_element(ok_runtimes.begin(), ok_runtimes.end());
    out.worst_ok = *std::max_element(ok_runtimes.begin(), ok_runtimes.end());
    out.median = Median(ok_runtimes);
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader(
      "E3: bench_motivation_misconfig", "Section 1 motivation claims",
      "Spread of performance over 400 random legal configurations per "
      "scenario: misconfiguration degrades and destabilizes; the best-vs-"
      "worst gap reaches orders of magnitude.");

  TableWriter table({"scenario", "best", "default", "median", "worst(ok)",
                     "worst/best", "default/best", "hard failures"});
  struct Scenario {
    std::string label;
    std::function<std::unique_ptr<TunableSystem>()> make;
    Workload workload;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"DBMS / OLAP", [] { return MakeDbms(3); },
                       MakeDbmsOlapWorkload(1.0)});
  scenarios.push_back({"DBMS / OLTP", [] { return MakeDbms(4); },
                       MakeDbmsOltpWorkload(1.0)});
  scenarios.push_back({"MapReduce / WordCount 10GB",
                       [] { return MakeMapReduce(5); },
                       MakeMrWordCountWorkload(10.0)});
  scenarios.push_back({"MapReduce / TeraSort 10GB",
                       [] { return MakeMapReduce(6); },
                       MakeMrTeraSortWorkload(10.0)});
  scenarios.push_back({"Spark / SQL aggregate 8GB",
                       [] { return MakeSpark(7); },
                       MakeSparkSqlAggregateWorkload(8.0, 10.0)});
  scenarios.push_back({"Spark / iterative ML 4GB",
                       [] { return MakeSpark(8); },
                       MakeSparkIterativeMlWorkload(4.0, 10.0)});

  for (const Scenario& s : scenarios) {
    auto system = s.make();
    SpreadResult r = MeasureSpread(system.get(), s.workload, SmokeSize(400, 40), 999);
    table.AddRow({s.label, StrFormat("%.0fs", r.best),
                  StrFormat("%.0fs", r.default_runtime),
                  StrFormat("%.0fs", r.median),
                  StrFormat("%.0fs", r.worst_ok),
                  StrFormat("%.1fx", r.worst_ok / std::max(r.best, 1e-9)),
                  StrFormat("%.1fx",
                            r.default_runtime / std::max(r.best, 1e-9)),
                  StrFormat("%zu/%zu (%.0f%%)", r.failures, r.samples,
                            100.0 * static_cast<double>(r.failures) /
                                std::max<size_t>(r.samples, 1))});
  }
  table.WritePretty(std::cout);
  std::printf(
      "\nShape check vs the paper: bad-but-legal settings cost multiple-x\n"
      "to orders of magnitude over the best configuration, and a material\n"
      "fraction of random configurations fail outright (instability).\n");
  return 0;
}
