// E18 — crash safety on a hostile filesystem: the durability contract of
// DESIGN.md §12, proven three ways.
//
//   * crash-point sweep: a child process is forked for every mutating I/O
//     operation the reference workload performs (artifact publish + journaled
//     tuning session) and killed with _exit at exactly that op — writes die
//     half-written, so torn frames are part of the sweep. For every crash
//     point: the published artifact is either absent or bit-complete (never
//     torn), journal recovery succeeds, and the resumed session reaches the
//     uninterrupted baseline's OutcomeChecksum with a byte-identical final
//     journal.
//   * fault-schedule matrix: sessions run under FaultInjectingIoEnv with
//     transient storms (EINTR/short-write/EIO — must be absorbed by bounded
//     retries) and hard faults (ENOSPC, persistent EIO, fsync failure —
//     strict policy must abort with a clean kIoError, degrade policy must
//     finish with the un-journaled session's exact outcome and block
//     resumes). Zero session fatals tolerated: every run ends in kOk or
//     kIoError, nothing else.
//   * seam overhead: WriteFully through the IoEnv virtual seam vs a raw
//     ::write loop over the same buffers, best-of-k medians; the seam must
//     cost <= 1.02x.
//
// Results go to console + BENCH_crashsafety.json + BENCH_crashsafety.csv.
// Like bench_durability, the exit code gates even under ATUNE_SMOKE (with a
// reduced >=8-point sweep): crash safety is a correctness property.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/file_util.h"
#include "common/io_env.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/journal.h"
#include "core/registry.h"
#include "core/session.h"
#include "tuners/builtin.h"

namespace atune {
namespace bench {
namespace {

const size_t kBudget = SmokeSize(12, 6);
constexpr uint64_t kSeed = 7;
constexpr char kTuner[] = "ituned";

/// Deterministic multi-KB artifact payload: big enough that a mid-publish
/// crash would visibly tear it if the publish were not atomic.
std::string ArtifactPayload() {
  std::string payload;
  payload.reserve(64 * 1024);
  for (size_t i = 0; payload.size() < 64 * 1024; ++i) {
    payload += StrFormat("artifact line %zu: crash-safety reference\n", i);
  }
  return payload;
}

struct RunResult {
  Status status = Status::OK();
  bool ok = false;
  uint64_t checksum = 0;
  bool degraded = false;
  size_t trials = 0;
};

/// One tuning session. `journal` empty = un-journaled.
RunResult RunSession(const std::string& journal, JournalPolicy policy,
                     bool resume) {
  RunResult out;
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(kTuner);
  if (!tuner.ok()) {
    out.status = tuner.status();
    return out;
  }
  auto dbms = MakeDbms(kSeed + 1);
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = kSeed + 100;
  options.measure_default = false;
  options.journal_path = journal;
  options.journal_policy = policy;
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto outcome =
      resume ? ResumeTuningSession(tuner->get(), dbms.get(), workload, options)
             : RunTuningSession(tuner->get(), dbms.get(), workload, options);
  if (!outcome.ok()) {
    out.status = outcome.status();
    return out;
  }
  out.ok = true;
  out.checksum = OutcomeChecksum(*outcome);
  out.degraded = outcome->journal_degraded;
  out.trials = outcome->history.size();
  return out;
}

/// The reference workload the crash-point sweep interrupts: publish one
/// artifact atomically, then run a full journaled session. Everything here
/// goes through IoEnv::Current(), so every mutating op is a crash point.
void DoCrashWork(const std::string& artifact, const std::string& journal,
                 const std::string& payload) {
  (void)AtomicWriteFile(artifact, payload);
  (void)RunSession(journal, JournalPolicy::kStrict, /*resume=*/false);
}

std::string SlurpOrEmpty(const std::string& path) {
  std::string contents;
  if (!ReadFileToString(path, &contents).ok()) contents.clear();
  return contents;
}

struct CrashPoint {
  uint64_t op = 0;
  bool crashed = false;          // child died at the armed op, exit 42
  bool artifact_intact = false;  // absent or bit-complete, never torn
  bool recovered = false;        // resume reached a final outcome
  bool checksum_match = false;   // ... identical to the uninterrupted run
  bool journal_identical = false;  // final journal bytes == baseline's
};

CrashPoint RunCrashPoint(uint64_t op, const std::string& payload,
                         uint64_t baseline_checksum,
                         const std::string& baseline_journal) {
  CrashPoint cp;
  cp.op = op;
  const std::string artifact = StrFormat("bench_crash_artifact_%llu.dat",
                                         static_cast<unsigned long long>(op));
  const std::string journal = StrFormat("bench_crash_journal_%llu.wal",
                                        static_cast<unsigned long long>(op));
  std::remove(artifact.c_str());
  std::remove((artifact + ".tmp").c_str());
  std::remove(journal.c_str());

  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pid = fork();
  if (pid < 0) return cp;
  if (pid == 0) {
    // Child: mute output, arm the crash point, run the workload. _exit(0)
    // would mean the armed op was never reached — the parent treats that as
    // a sweep failure.
    int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
    SetCrashAtIoOp(op);
    DoCrashWork(artifact, journal, payload);
    ::_exit(0);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  cp.crashed = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == kCrashExitCode;

  // No reader may observe a half-published artifact: the target path holds
  // either nothing or the complete payload. A leftover .tmp is fine — it is
  // not the published name.
  std::string seen = SlurpOrEmpty(artifact);
  cp.artifact_intact = seen.empty() || seen == payload;

  // Longest-valid-prefix recovery + deterministic replay must reproduce the
  // uninterrupted session exactly, whatever state the crash left behind
  // (no journal, a torn header, a half-written frame...).
  RunResult resumed = RunSession(journal, JournalPolicy::kStrict,
                                 /*resume=*/true);
  cp.recovered = resumed.ok;
  cp.checksum_match = resumed.ok && resumed.checksum == baseline_checksum;
  cp.journal_identical = SlurpOrEmpty(journal) == baseline_journal;

  std::remove(artifact.c_str());
  std::remove((artifact + ".tmp").c_str());
  std::remove(journal.c_str());
  return cp;
}

// ----- fault-schedule matrix -------------------------------------------------

struct FaultRow {
  std::string name;
  bool expect_strict_error = false;
  std::string strict_status;
  bool strict_as_expected = false;
  bool degrade_ok = false;
  bool degrade_checksum_match = false;
  bool resume_refused = false;  // only meaningful when degrade degraded
  bool fatal = false;  // any status outside {kOk, kIoError}
  bool pass = false;
};

FaultRow RunFaultSchedule(const std::string& name,
                          const IoFaultSchedule& schedule,
                          bool expect_strict_error,
                          uint64_t unjournaled_checksum) {
  FaultRow row;
  row.name = name;
  row.expect_strict_error = expect_strict_error;
  const std::string path = StrFormat("bench_crash_fault_%s.wal", name.c_str());
  auto is_clean = [](const Status& s) {
    return s.ok() || s.code() == StatusCode::kIoError;
  };

  std::remove(path.c_str());
  std::remove((path + kDegradedSidecarSuffix).c_str());
  RunResult strict;
  {
    FaultInjectingIoEnv env(IoEnv::Default(), schedule);
    ScopedIoEnv install(&env);
    strict = RunSession(path, JournalPolicy::kStrict, /*resume=*/false);
  }
  row.strict_status = StatusCodeToString(strict.status.code());
  row.fatal = !is_clean(strict.status);
  row.strict_as_expected =
      expect_strict_error
          ? strict.status.code() == StatusCode::kIoError
          : strict.ok && strict.checksum == unjournaled_checksum;

  std::remove(path.c_str());
  std::remove((path + kDegradedSidecarSuffix).c_str());
  RunResult degrade;
  {
    FaultInjectingIoEnv env(IoEnv::Default(), schedule);
    ScopedIoEnv install(&env);
    degrade = RunSession(path, JournalPolicy::kDegrade, /*resume=*/false);
  }
  row.fatal = row.fatal || !is_clean(degrade.status);
  // Degrade trades resumability for availability: the session must finish
  // and must compute exactly what the un-journaled session computes.
  row.degrade_ok = degrade.ok && degrade.degraded == expect_strict_error;
  row.degrade_checksum_match =
      degrade.ok && degrade.checksum == unjournaled_checksum;
  if (degrade.ok && degrade.degraded) {
    RunResult resumed = RunSession(path, JournalPolicy::kStrict,
                                   /*resume=*/true);
    row.resume_refused =
        resumed.status.code() == StatusCode::kFailedPrecondition;
  } else {
    row.resume_refused = true;  // nothing degraded, nothing to refuse
  }
  std::remove(path.c_str());
  std::remove((path + kDegradedSidecarSuffix).c_str());

  row.pass = !row.fatal && row.strict_as_expected && row.degrade_ok &&
             row.degrade_checksum_match && row.resume_refused;
  return row;
}

// ----- seam overhead ---------------------------------------------------------

/// One paired overhead measurement: `iters` appends of `buf` through the
/// IoEnv seam (WriteFully) and through bare ::write, interleaved in small
/// alternating slices so frequency drift and page-cache writeback stalls
/// land on both sides alike. Returns true and fills the accumulated seconds
/// per side on success.
bool RunOverheadRep(const std::string& buf, size_t iters, double* seam_out,
                    double* raw_out, std::vector<double>* pair_ratios) {
  IoEnv* env = IoEnv::Default();
  auto seam_file =
      env->OpenWritable("bench_crash_seam.dat", IoEnv::OpenMode::kTruncate);
  if (!seam_file.ok()) return false;
  int raw_fd =
      ::open("bench_crash_raw.dat", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (raw_fd < 0) return false;

  const size_t slices = 50;
  const size_t per_slice = std::max<size_t>(1, iters / slices);
  double seam_s = 0.0, raw_s = 0.0;
  uint32_t crc_sink = 0;  // keeps the checksums from being optimized out
  bool failed = false;
  // Both sides do what a journal append does — CRC the frame, then write it
  // — so the ratio isolates the seam (WriteFully + virtual dispatch + op
  // accounting) against the append's real per-record work.
  auto seam_slice = [&]() {
    auto begin = std::chrono::steady_clock::now();
    for (size_t i = 0; i < per_slice; ++i) {
      crc_sink ^= Crc32(0, buf.data(), buf.size());
      if (!WriteFully(env, seam_file->get(), buf.data(), buf.size()).ok()) {
        failed = true;
        return 0.0;
      }
    }
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - begin).count();
  };
  auto raw_slice = [&]() {
    auto begin = std::chrono::steady_clock::now();
    for (size_t i = 0; i < per_slice; ++i) {
      crc_sink ^= Crc32(0, buf.data(), buf.size());
      size_t done = 0;
      while (done < buf.size()) {
        ssize_t n = ::write(raw_fd, buf.data() + done, buf.size() - done);
        if (n < 0) {
          if (errno == EINTR) continue;
          failed = true;
          return 0.0;
        }
        done += static_cast<size_t>(n);
      }
    }
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - begin).count();
  };
  for (size_t s = 0; s < slices && !failed; ++s) {
    double a, b;
    if (s % 2 == 0) {
      a = seam_slice();
      b = raw_slice();
      seam_s += a;
      raw_s += b;
    } else {
      b = raw_slice();
      a = seam_slice();
      seam_s += a;
      raw_s += b;
    }
    // Each pair is two adjacent ~ms windows, so a writeback stall or
    // preemption lands in at most one pair — the caller's median over all
    // pairs discards it. Summed seconds (above) would smear that stall
    // across the whole rep instead.
    if (!failed && b > 0.0 && pair_ratios != nullptr) {
      pair_ratios->push_back(a / b);
    }
  }
  (void)(*seam_file)->Close();
  ::close(raw_fd);
  if (failed || crc_sink == 0xdeadbeef) return false;
  *seam_out = seam_s;
  *raw_out = raw_s;
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E18: bench_crashsafety",
              "injectable I/O + crash-point harness (DESIGN.md §12)",
              "kill the process at every mutating I/O op and prove recovery; "
              "survive fault schedules with zero session fatals; bound the "
              "IoEnv seam overhead.");
  // The sweep's resumes recover torn journals on purpose; their per-point
  // recovery warnings would swamp the report.
  SetLogLevel(LogLevel::kError);

  const std::string payload = ArtifactPayload();

  // Uninterrupted baseline: checksum, final journal bytes, and the number of
  // mutating I/O ops the whole workload performs (= the sweep domain).
  const std::string base_artifact = "bench_crash_artifact_base.dat";
  const std::string base_journal = "bench_crash_journal_base.wal";
  std::remove(base_artifact.c_str());
  std::remove(base_journal.c_str());
  const uint64_t ops_before = IoOpCount();
  DoCrashWork(base_artifact, base_journal, payload);
  const uint64_t total_ops = IoOpCount() - ops_before;
  RunResult baseline = RunSession(base_journal, JournalPolicy::kStrict,
                                  /*resume=*/true);  // intact: pure replay
  const std::string baseline_journal = SlurpOrEmpty(base_journal);
  std::remove(base_artifact.c_str());
  std::remove(base_journal.c_str());
  if (!baseline.ok || total_ops == 0 || baseline_journal.empty()) {
    std::printf("FAIL: could not establish uninterrupted baseline (%s)\n",
                baseline.status.message().c_str());
    return 1;
  }

  // Crash points: every op in a full run; >=8 evenly spaced ops in smoke.
  std::set<uint64_t> points;
  if (SmokeMode()) {
    const size_t want = 8;
    for (size_t i = 1; i <= want; ++i) {
      points.insert(std::max<uint64_t>(1, i * total_ops / want));
    }
  } else {
    for (uint64_t op = 1; op <= total_ops; ++op) points.insert(op);
  }

  std::printf("\ncrash-point sweep (%zu points over %llu mutating ops, "
              "budget %zu):\n",
              points.size(), static_cast<unsigned long long>(total_ops),
              kBudget);
  std::vector<CrashPoint> sweep;
  bool sweep_pass = true;
  size_t crashed = 0;
  for (uint64_t op : points) {
    CrashPoint cp = RunCrashPoint(op, payload, baseline.checksum,
                                  baseline_journal);
    bool pass = cp.crashed && cp.artifact_intact && cp.recovered &&
                cp.checksum_match && cp.journal_identical;
    if (!pass) {
      std::printf("  op %4llu: crash=%d artifact=%d recovered=%d "
                  "checksum=%d journal=%d  <-- FAIL\n",
                  static_cast<unsigned long long>(cp.op), cp.crashed,
                  cp.artifact_intact, cp.recovered, cp.checksum_match,
                  cp.journal_identical);
    }
    sweep_pass = sweep_pass && pass;
    crashed += cp.crashed ? 1 : 0;
    sweep.push_back(cp);
  }
  std::printf("  %zu/%zu points crashed at the armed op; sweep %s\n", crashed,
              sweep.size(), sweep_pass ? "PASS" : "FAIL");

  // Fault-schedule matrix.
  RunResult unjournaled = RunSession("", JournalPolicy::kStrict,
                                     /*resume=*/false);
  std::vector<FaultRow> faults;
  {
    IoFaultSchedule storm;
    storm.seed = 21;
    storm.eintr_rate = 0.15;
    storm.short_write_rate = 0.15;
    storm.transient_eio_rate = 0.02;
    faults.push_back(RunFaultSchedule("transient_storm", storm,
                                      /*expect_strict_error=*/false,
                                      unjournaled.checksum));
    faults.push_back(RunFaultSchedule(
        "enospc_mid_session",
        IoFaultSchedule::Single(IoOpKind::kWrite, 4, IoFaultKind::kEnospc),
        /*expect_strict_error=*/true, unjournaled.checksum));
    faults.push_back(RunFaultSchedule(
        "persistent_eio",
        IoFaultSchedule::Single(IoOpKind::kWrite, 3,
                                IoFaultKind::kPersistentEio),
        /*expect_strict_error=*/true, unjournaled.checksum));
    faults.push_back(RunFaultSchedule(
        "fsync_failure",
        IoFaultSchedule::Single(IoOpKind::kSync, 3, IoFaultKind::kSyncFail),
        /*expect_strict_error=*/true, unjournaled.checksum));
  }
  bool faults_pass = unjournaled.ok;
  std::printf("\nfault-schedule matrix (strict + degrade per schedule):\n");
  std::printf("  %-20s %-22s %s\n", "schedule", "strict", "degrade");
  for (const FaultRow& row : faults) {
    faults_pass = faults_pass && row.pass;
    std::printf("  %-20s %-22s %s%s\n", row.name.c_str(),
                row.strict_status.c_str(),
                row.degrade_ok && row.degrade_checksum_match
                    ? "identical outcome"
                    : "FAIL",
                row.pass ? "" : "  <-- FAIL");
  }
  std::printf("  zero session fatals: %s\n",
              faults_pass ? "PASS" : "FAIL");

  // Seam overhead: WriteFully through the virtual env vs a raw ::write loop
  // over the same buffers (no fsync either side), at the journal's real
  // append granularity — the buffer is sized to the baseline journal's
  // average bytes per committed record, so the ~ns of per-call seam cost is
  // weighed against the write the journal actually issues. Page-cache
  // writeback and frequency drift dwarf that cost, so: one uncounted warmup
  // pair, alternating run order, and best-of-k (the fastest run is the one
  // least disturbed by the machine).
  // Deliberately NOT reduced under ATUNE_SMOKE: a 2% ratio bound needs a
  // measurement window long enough to average out scheduler noise (a 5k-iter
  // slice swings +/-4% run to run), and the full measurement costs ~2s —
  // cheap enough for the smoke gate to stay a real gate.
  const size_t iters = 50000;
  const size_t reps = 5;
  const size_t frame_bytes = std::max<size_t>(
      512, baseline_journal.size() / std::max<size_t>(1, baseline.trials));
  const std::string buf(frame_bytes, 'j');
  double warm_s = 0.0, warm_r = 0.0;
  (void)RunOverheadRep(buf, iters, &warm_s, &warm_r, nullptr);  // warmup
  std::vector<double> ratios;  // one ratio per adjacent seam/raw slice pair
  double seam_s = -1.0, raw_s = -1.0;
  for (size_t r = 0; r < reps; ++r) {
    double s = 0.0, w = 0.0;
    if (RunOverheadRep(buf, iters, &s, &w, &ratios) && w > 0.0) {
      if (seam_s < 0.0 || s < seam_s) seam_s = s;
      if (raw_s < 0.0 || w < raw_s) raw_s = w;
    }
  }
  std::remove("bench_crash_seam.dat");
  std::remove("bench_crash_raw.dat");
  // Median over every slice pair (reps x slices of them): the seam's true
  // per-append cost is ~0.5% here, while page-cache writeback stalls and
  // preemptions swing any single window by several percent — but each stall
  // lands in at most one pair, so the median across a few hundred pairs
  // discards them. Per-rep summed ratios (the obvious aggregation) smear
  // one stall across a fifth of the sample and flap around a 2% bound.
  std::sort(ratios.begin(), ratios.end());
  const double overhead =
      ratios.empty() ? -1.0 : ratios[ratios.size() / 2];
  bool overhead_pass = overhead > 0.0 && overhead <= 1.02;
  // The 1.02x bound is a statement about the seam's dispatch cost, which an
  // unoptimized build buries under un-inlined Status plumbing and a
  // sanitizer build skews with per-function instrumentation — report the
  // ratio there, but only a plain optimized binary gates on it (like the
  // bench_hotpath speedup gates).
#if defined(NDEBUG) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ATUNE_CRASHSAFETY_ADVISORY_OVERHEAD 1
#endif
#endif
#else
#define ATUNE_CRASHSAFETY_ADVISORY_OVERHEAD 1
#endif
#ifdef ATUNE_CRASHSAFETY_ADVISORY_OVERHEAD
  const bool optimized = false;
  overhead_pass = !ratios.empty();
#else
  const bool optimized = true;
#endif
  std::printf("\nIoEnv seam overhead (%zu x %zuB appends x %zu reps, "
              "median of %zu slice-pair ratios):\n"
              "  seam %.1f MB/s, raw %.1f MB/s, ratio %.4fx (gate <= 1.02x%s) "
              "%s\n",
              iters, buf.size(), reps, ratios.size(),
              iters * buf.size() / seam_s / 1e6,
              iters * buf.size() / raw_s / 1e6, overhead,
              optimized ? "" : ", advisory: unoptimized build",
              overhead_pass ? "PASS" : "FAIL");

  bool pass = sweep_pass && faults_pass && overhead_pass;
  std::printf("\nacceptance: sweep %s, fault matrix %s, overhead %s\n",
              sweep_pass ? "PASS" : "FAIL", faults_pass ? "PASS" : "FAIL",
              overhead_pass ? "PASS" : "FAIL");

  std::ostringstream json;
  json << "{\n  \"experiment\": \"bench_crashsafety\",\n";
  json << StrFormat("  \"budget\": %zu,\n  \"total_ops\": %llu,\n", kBudget,
                    static_cast<unsigned long long>(total_ops));
  json << StrFormat("  \"baseline_checksum\": \"%016llx\",\n  \"sweep\": [\n",
                    static_cast<unsigned long long>(baseline.checksum));
  for (size_t i = 0; i < sweep.size(); ++i) {
    const CrashPoint& cp = sweep[i];
    json << StrFormat(
        "    {\"op\": %llu, \"crashed\": %s, \"artifact_intact\": %s, "
        "\"recovered\": %s, \"checksum_match\": %s, \"journal_identical\": "
        "%s}%s\n",
        static_cast<unsigned long long>(cp.op), cp.crashed ? "true" : "false",
        cp.artifact_intact ? "true" : "false", cp.recovered ? "true" : "false",
        cp.checksum_match ? "true" : "false",
        cp.journal_identical ? "true" : "false",
        i + 1 < sweep.size() ? "," : "");
  }
  json << "  ],\n  \"faults\": [\n";
  for (size_t i = 0; i < faults.size(); ++i) {
    const FaultRow& row = faults[i];
    json << StrFormat(
        "    {\"schedule\": \"%s\", \"strict_status\": \"%s\", "
        "\"strict_as_expected\": %s, \"degrade_identical\": %s, "
        "\"resume_refused\": %s, \"fatal\": %s, \"pass\": %s}%s\n",
        row.name.c_str(), row.strict_status.c_str(),
        row.strict_as_expected ? "true" : "false",
        row.degrade_checksum_match ? "true" : "false",
        row.resume_refused ? "true" : "false", row.fatal ? "true" : "false",
        row.pass ? "true" : "false", i + 1 < faults.size() ? "," : "");
  }
  json << StrFormat(
      "  ],\n  \"overhead\": {\"seam_seconds\": %.6f, \"raw_seconds\": %.6f, "
      "\"ratio\": %.4f, \"optimized_build\": %s},\n",
      seam_s, raw_s, overhead, optimized ? "true" : "false");
  json << StrFormat(
      "  \"pass\": {\"sweep\": %s, \"faults\": %s, \"overhead\": %s}\n}\n",
      sweep_pass ? "true" : "false", faults_pass ? "true" : "false",
      overhead_pass ? "true" : "false");
  if (AtomicWriteFile("BENCH_crashsafety.json", json.str()).ok()) {
    std::printf("wrote BENCH_crashsafety.json\n");
  }

  TableWriter csv({"op", "crashed", "artifact_intact", "recovered",
                   "checksum_match", "journal_identical"});
  for (const CrashPoint& cp : sweep) {
    csv.AddRow({StrFormat("%llu", static_cast<unsigned long long>(cp.op)),
                cp.crashed ? "1" : "0", cp.artifact_intact ? "1" : "0",
                cp.recovered ? "1" : "0", cp.checksum_match ? "1" : "0",
                cp.journal_identical ? "1" : "0"});
  }
  if (csv.WriteCsvFile("BENCH_crashsafety.csv").ok()) {
    std::printf("wrote BENCH_crashsafety.csv\n");
  }

  // Like bench_durability: crash safety gates smoke runs too.
  return pass ? 0 : 1;
}
