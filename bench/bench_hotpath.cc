// E17 — hot-path speed layer (DESIGN.md §11): the blocked math kernels,
// batched GP prediction/acquisition, arena-backed zero-allocation commit
// path, and mmap journal replay must be *faster* and *bit-identical* to the
// scalar paths they replaced. This harness is the acceptance gate:
//
//   * kernels: ns/op for Cholesky at n in {64, 300}, fast (blocked) vs
//     scalar (reference) via the runtime A/B switch; gate >= 2x at n=300.
//   * acquisition: a 1500-candidate EI scan over a 300-point GP, per-point
//     Predict loop vs PredictBatch + ExpectedImprovementBatch; gate >= 3x,
//     with every EI value and the argmax verified bitwise equal.
//   * alloc: steady-state Evaluator commits (journal on, tracing/metrics
//     off, default policy) must report last_commit_allocs() == 0. This
//     binary links the counting operator-new override, so zero is meaningful.
//   * replay: journal recovery MB/s, mmap vs forced streaming, identical
//     records in every mode including the ATUNE_JOURNAL_NO_MMAP env
//     fallback.
//   * identity: whole-registry tuning sessions — serial, batched p=8, and
//     kill/resume — run under fast and scalar kernels must produce equal
//     OutcomeChecksums, structural trace trees, and journal file bytes.
//
// Results go to console + BENCH_hotpath.json. Kernel/acquisition problem
// sizes are constant under ATUNE_SMOKE (they are cheap); only the session
// budget shrinks. The identity/alloc/replay flags gate even at smoke scale
// via tools/run_checks.sh --hotpath (correctness, not paper-scale numbers);
// the speedup gates use the binary's own exit code (advisory under smoke).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/alloc_hook.h"
#include "common/file_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/journal.h"
#include "core/registry.h"
#include "core/session.h"
#include "math/matrix.h"
#include "ml/acquisition.h"
#include "ml/gaussian_process.h"
#include "obs/trace.h"
#include "systems/dbms/dbms_workloads.h"
#include "tuners/builtin.h"

#ifndef ATUNE_BUILD_FLAGS
#define ATUNE_BUILD_FLAGS "(unknown)"
#endif

namespace atune {
namespace bench {
namespace {

const size_t kBudget = SmokeSize(14, 8);
const uint64_t kSeed = 5;
const int kTimingReps = SmokeMode() ? 3 : 7;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Optimizer sink: accumulating results here keeps timed kernels live.
double g_sink = 0.0;

Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix g(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) g.At(i, j) = rng->Uniform() * 2.0 - 1.0;
  }
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) acc += g.At(i, k) * g.At(j, k);
      a.At(i, j) = acc;
    }
    a.At(i, i) += 2.0 + static_cast<double>(n);
  }
  return a;
}

// ---- section 1: blocked kernel timings ------------------------------------

struct KernelTiming {
  size_t n = 0;
  double fast_ns = 0.0;
  double scalar_ns = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

KernelTiming TimeCholesky(size_t n) {
  Rng rng(kSeed + n);
  Matrix a = RandomSpd(n, &rng);
  KernelTiming t;
  t.n = n;
  double best_fast = std::numeric_limits<double>::infinity();
  double best_scalar = best_fast;
  Matrix fast_factor(0, 0);
  Matrix scalar_factor(0, 0);
  // Alternate sides each rep so cache warmth doesn't favor one of them.
  for (int rep = 0; rep < kTimingReps; ++rep) {
    for (bool scalar : {false, true}) {
      SetScalarKernelsForTesting(scalar);
      uint64_t t0 = NowNs();
      auto l = a.Cholesky();
      uint64_t dt = NowNs() - t0;
      SetScalarKernelsForTesting(false);
      if (!l.ok()) return t;
      g_sink += l->At(n - 1, n - 1);
      if (scalar) {
        best_scalar = std::min(best_scalar, static_cast<double>(dt));
        scalar_factor = *std::move(l);
      } else {
        best_fast = std::min(best_fast, static_cast<double>(dt));
        fast_factor = *std::move(l);
      }
    }
  }
  t.fast_ns = best_fast;
  t.scalar_ns = best_scalar;
  t.speedup = best_scalar / best_fast;
  t.identical =
      fast_factor.rows() == scalar_factor.rows() &&
      std::memcmp(fast_factor.data().data(), scalar_factor.data().data(),
                  fast_factor.data().size() * sizeof(double)) == 0;
  return t;
}

// ---- section 2: batched acquisition scan ----------------------------------

struct AcquisitionTiming {
  size_t n = 0;
  size_t m = 0;
  double scalar_ns = 0.0;
  double batched_ns = 0.0;
  double speedup = 0.0;
  bool bitwise_match = false;
};

AcquisitionTiming TimeAcquisitionScan() {
  const size_t n = 300, d = 8, m = 1500;
  AcquisitionTiming t;
  t.n = n;
  t.m = m;
  Rng rng(kSeed + 17);
  std::vector<Vec> xs(n, Vec(d));
  Vec ys(n);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : xs[i]) v = rng.Uniform();
    ys[i] = rng.Uniform() * 4.0 - 2.0;
  }
  GaussianProcess gp(GpHyperParams{KernelType::kMatern52, {}, 1.0, 1e-4});
  if (!gp.Fit(xs, ys).ok()) return t;
  Matrix cands(m, d);
  for (size_t r = 0; r < m; ++r) {
    for (size_t j = 0; j < d; ++j) cands.At(r, j) = rng.Uniform();
  }
  double best = *std::min_element(ys.begin(), ys.end());

  Vec scalar_ei(m), batched_ei;
  GpScratch scratch;
  std::vector<GpPrediction> preds;
  double best_scalar = std::numeric_limits<double>::infinity();
  double best_batched = best_scalar;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    {
      SetScalarKernelsForTesting(true);
      uint64_t t0 = NowNs();
      for (size_t r = 0; r < m; ++r) {
        scalar_ei[r] = ExpectedImprovement(gp.Predict(cands.Row(r)), best);
      }
      best_scalar = std::min(best_scalar, static_cast<double>(NowNs() - t0));
      SetScalarKernelsForTesting(false);
      g_sink += scalar_ei[m - 1];
    }
    {
      uint64_t t0 = NowNs();
      gp.PredictBatch(cands, &scratch, &preds);
      ExpectedImprovementBatch(preds, best, 0.0, &batched_ei);
      best_batched = std::min(best_batched, static_cast<double>(NowNs() - t0));
      g_sink += batched_ei[m - 1];
    }
  }
  t.scalar_ns = best_scalar;
  t.batched_ns = best_batched;
  t.speedup = best_scalar / best_batched;
  size_t scalar_argmax =
      std::max_element(scalar_ei.begin(), scalar_ei.end()) - scalar_ei.begin();
  size_t batched_argmax =
      std::max_element(batched_ei.begin(), batched_ei.end()) -
      batched_ei.begin();
  t.bitwise_match =
      batched_ei.size() == m && scalar_argmax == batched_argmax &&
      std::memcmp(scalar_ei.data(), batched_ei.data(), m * sizeof(double)) ==
          0;
  return t;
}

// ---- section 3: zero-allocation commit ------------------------------------

struct AllocCheck {
  bool hook_live = false;
  uint64_t max_steady_allocs = 0;
  bool pass = false;
};

AllocCheck CheckCommitAllocs() {
  AllocCheck out;
  {
    uint64_t before = SampleAllocCount();
    void* p = ::operator new(64);
    out.hook_live = SampleAllocCount() > before;
    ::operator delete(p);
  }
  auto dbms = MakeDbms(kSeed + 1);
  Evaluator evaluator(dbms.get(), MakeDbmsOlapWorkload(1.0),
                      TuningBudget{24});
  JournalHeader header;
  header.tuner_name = "hotpath-alloc";
  header.max_evaluations = 24;
  std::string path = "BENCH_hotpath_alloc.waljournal.tmp";
  auto journal = TrialJournal::Create(path, header);
  if (!journal.ok()) return out;
  (*journal)->set_sync(false);
  evaluator.set_journal(journal->get());
  Configuration config = dbms->space().DefaultConfiguration();
  // Warmup commits grow history slack and the journal frame buffer to their
  // high-water marks; steady state begins after them.
  for (int i = 0; i < 4; ++i) {
    if (!evaluator.Evaluate(config).ok()) return out;
  }
  bool all_zero = true;
  for (int i = 0; i < 12; ++i) {
    if (!evaluator.Evaluate(config).ok()) return out;
    out.max_steady_allocs =
        std::max(out.max_steady_allocs, evaluator.last_commit_allocs());
    if (evaluator.last_commit_allocs() != 0) all_zero = false;
  }
  std::remove(path.c_str());
  out.pass = out.hook_live && all_zero;
  return out;
}

// ---- section 4: journal replay throughput ---------------------------------

struct ReplayCheck {
  size_t records = 0;
  size_t bytes = 0;
  double mmap_mb_s = 0.0;
  double streaming_mb_s = 0.0;
  bool records_match = false;
  bool fallback_ok = false;
  bool pass = false;
};

uint64_t RecordsFingerprint(const std::vector<JournalRecord>& records) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const JournalRecord& r : records) {
    const std::string cfg = r.config.ToString();
    h = Fnv1a(h, cfg.data(), cfg.size());
    h = Fnv1a(h, &r.seq, sizeof(r.seq));
    h = Fnv1a(h, &r.objective, sizeof(r.objective));
    h = Fnv1a(h, &r.used, sizeof(r.used));
  }
  return h;
}

ReplayCheck CheckReplay() {
  ReplayCheck out;
  const size_t n_records = SmokeSize(4000, 600);
  std::string path = "BENCH_hotpath_replay.waljournal.tmp";
  {
    JournalHeader header;
    header.tuner_name = "hotpath-replay";
    header.max_evaluations = n_records;
    auto journal = TrialJournal::Create(path, header);
    if (!journal.ok()) return out;
    (*journal)->set_sync(false);
    for (size_t i = 0; i < n_records; ++i) {
      JournalRecord rec;
      rec.seq = i;
      rec.config.SetDouble("shared_buffers", 0.001 * static_cast<double>(i));
      rec.config.SetInt("max_connections", static_cast<int64_t>(i % 512));
      rec.config.SetString("wal_level", i % 2 == 0 ? "replica" : "logical");
      rec.result.runtime_seconds = 1.0 + 0.25 * static_cast<double>(i % 17);
      rec.result.metrics = {{"throughput", 1000.0 - static_cast<double>(i)}};
      rec.objective = rec.result.runtime_seconds;
      rec.cost = 1.0;
      rec.system_runs = i + 1;
      rec.used = static_cast<double>(i + 1);
      if (!(*journal)->Append(rec).ok()) return out;
    }
  }
  std::string file;
  if (!ReadFileToString(path, &file).ok()) return out;
  out.bytes = file.size();

  auto time_mode = [&](JournalReplayMode mode, uint64_t* fingerprint,
                       size_t* records) {
    SetJournalReplayModeForTesting(mode);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kTimingReps; ++rep) {
      uint64_t t0 = NowNs();
      auto recovered = TrialJournal::OpenForResume(path);
      uint64_t dt = NowNs() - t0;
      if (!recovered.ok()) return 0.0;
      best = std::min(best, static_cast<double>(dt));
      *fingerprint = RecordsFingerprint(recovered->records);
      *records = recovered->records.size();
    }
    SetJournalReplayModeForTesting(JournalReplayMode::kAuto);
    return static_cast<double>(out.bytes) / (best / 1e9) / 1e6;
  };

  uint64_t mmap_fp = 0, stream_fp = 0, env_fp = 0;
  size_t mmap_n = 0, stream_n = 0, env_n = 0;
  out.mmap_mb_s = time_mode(JournalReplayMode::kMmap, &mmap_fp, &mmap_n);
  out.streaming_mb_s =
      time_mode(JournalReplayMode::kStreaming, &stream_fp, &stream_n);
  // Env fallback: kAuto must degrade to streaming when the env var is set.
  ::setenv("ATUNE_JOURNAL_NO_MMAP", "1", 1);
  double env_mb_s = time_mode(JournalReplayMode::kAuto, &env_fp, &env_n);
  ::unsetenv("ATUNE_JOURNAL_NO_MMAP");
  out.records = mmap_n;
  out.records_match = mmap_n == n_records && stream_n == n_records &&
                      mmap_fp == stream_fp;
  out.fallback_ok = env_n == n_records && env_fp == mmap_fp && env_mb_s > 0.0;
  out.pass = out.records_match && out.fallback_ok && out.mmap_mb_s > 0.0;
  std::remove(path.c_str());
  return out;
}

// ---- section 5: whole-registry fast-vs-scalar identity --------------------

struct SessionResult {
  bool ok = false;
  uint64_t checksum = 0;
  std::string tree;
  std::string journal_bytes;
};

SessionResult RunIdentitySession(const std::string& tuner_name,
                                 size_t parallelism, uint64_t kill_after,
                                 bool scalar, const std::string& journal_path) {
  SessionResult out;
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(tuner_name);
  if (!tuner.ok()) return out;
  (*tuner)->set_parallelism(parallelism);
  auto dbms = MakeDbms(kSeed + 1);
  const Workload workload = MakeDbmsOlapWorkload(1.0);

  SetScalarKernelsForTesting(scalar);
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = kSeed + 100;
  options.measure_default = false;
  options.journal_path = journal_path;
  Tracer tracer;
  if (kill_after > 0) {
    // Kill leg: journal the first `kill_after` records, then abort. The
    // outcome status is irrelevant; the resume leg below is what we compare.
    // Resume uses a freshly created tuner, as a real post-crash process
    // would — replay feeds the journal into pristine tuner state.
    options.interrupt_after_records = kill_after;
    (void)RunTuningSession(tuner->get(), dbms.get(), workload, options);
    auto fresh = registry.Create(tuner_name);
    if (!fresh.ok()) {
      SetScalarKernelsForTesting(false);
      return out;
    }
    (*fresh)->set_parallelism(parallelism);
    options.interrupt_after_records = 0;
    options.tracer = &tracer;
    auto resumed =
        ResumeTuningSession(fresh->get(), dbms.get(), workload, options);
    SetScalarKernelsForTesting(false);
    if (!resumed.ok()) return out;
    out.checksum = OutcomeChecksum(*resumed);
  } else {
    options.tracer = &tracer;
    auto outcome =
        RunTuningSession(tuner->get(), dbms.get(), workload, options);
    SetScalarKernelsForTesting(false);
    if (!outcome.ok()) return out;
    out.checksum = OutcomeChecksum(*outcome);
  }
  out.tree = tracer.StructuralTreeString();
  (void)ReadFileToString(journal_path, &out.journal_bytes);
  std::remove(journal_path.c_str());
  out.ok = true;
  return out;
}

struct IdentityRow {
  std::string tuner;
  bool applicable = false;
  bool serial = false;
  bool batched = false;
  bool kill_resume = false;
  bool pass() const {
    return !applicable || (serial && batched && kill_resume);
  }
};

bool SameSession(const SessionResult& a, const SessionResult& b,
                 const char* label) {
  bool same = a.ok && b.ok && a.checksum == b.checksum && a.tree == b.tree &&
              a.journal_bytes == b.journal_bytes;
  if (!same) {
    // Name the diverging component so a gate failure is actionable without
    // rerunning under a debugger.
    std::printf(
        "  MISMATCH %-28s ok=%d/%d checksum=%d tree=%d journal=%d "
        "(%zu vs %zu bytes)\n",
        label, a.ok, b.ok, a.checksum == b.checksum, a.tree == b.tree,
        a.journal_bytes == b.journal_bytes, a.journal_bytes.size(),
        b.journal_bytes.size());
  }
  return same;
}

std::vector<IdentityRow> RunIdentityMatrix() {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  std::vector<IdentityRow> rows;
  for (const std::string& name : registry.Names()) {
    IdentityRow row;
    row.tuner = name;
    const std::string path = "BENCH_hotpath_identity.waljournal.tmp";
    SessionResult fast_serial = RunIdentitySession(name, 1, 0, false, path);
    // Tuners that cannot drive the DBMS under this budget (wrong system
    // kind, degenerate model) fail identically in both modes; skip them.
    row.applicable = fast_serial.ok;
    if (row.applicable) {
      row.serial = SameSession(
          fast_serial, RunIdentitySession(name, 1, 0, true, path), "serial");
      row.batched = SameSession(RunIdentitySession(name, 8, 0, false, path),
                                RunIdentitySession(name, 8, 0, true, path),
                                "batched");
      row.kill_resume = SameSession(RunIdentitySession(name, 1, 3, false, path),
                                    RunIdentitySession(name, 1, 3, true, path),
                                    "kill_resume");
    }
    std::printf("  %-24s %s serial=%d batched=%d kill_resume=%d\n",
                name.c_str(), row.applicable ? "ok " : "n/a", row.serial,
                row.batched, row.kill_resume);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

int Main() {
  PrintHeader("E17 hot-path speed layer",
              "the paper's iterative-tuning inner loop at interactive speed",
              "blocked kernels, batched acquisition, zero-alloc commit, "
              "mmap replay — speed with bit-identity");

  std::printf("== kernels: blocked Cholesky vs scalar reference ==\n");
  std::vector<KernelTiming> kernels;
  for (size_t n : {size_t{64}, size_t{300}}) {
    KernelTiming t = TimeCholesky(n);
    kernels.push_back(t);
    std::printf("  n=%-4zu fast %8.0f ns  scalar %8.0f ns  speedup %.2fx  "
                "identical=%d\n",
                t.n, t.fast_ns, t.scalar_ns, t.speedup, t.identical);
  }
  bool cholesky_pass = kernels.back().speedup >= 2.0 &&
                       kernels.front().identical && kernels.back().identical;

  std::printf("== acquisition: 1500-candidate EI scan over a 300-point GP ==\n");
  AcquisitionTiming acq = TimeAcquisitionScan();
  std::printf("  scalar %.0f ns  batched %.0f ns  speedup %.2fx  bitwise=%d\n",
              acq.scalar_ns, acq.batched_ns, acq.speedup, acq.bitwise_match);
  bool acquisition_pass = acq.speedup >= 3.0 && acq.bitwise_match;

  std::printf("== alloc: steady-state commit allocations ==\n");
  AllocCheck alloc = CheckCommitAllocs();
  std::printf("  hook_live=%d max_steady_allocs=%llu pass=%d\n",
              alloc.hook_live,
              static_cast<unsigned long long>(alloc.max_steady_allocs),
              alloc.pass);

  std::printf("== replay: journal recovery throughput ==\n");
  ReplayCheck replay = CheckReplay();
  std::printf("  %zu records (%zu bytes): mmap %.1f MB/s, streaming %.1f "
              "MB/s, records_match=%d fallback_ok=%d\n",
              replay.records, replay.bytes, replay.mmap_mb_s,
              replay.streaming_mb_s, replay.records_match, replay.fallback_ok);

  std::printf("== identity: whole-registry fast vs scalar sessions ==\n");
  std::vector<IdentityRow> identity = RunIdentityMatrix();
  bool identity_pass = true;
  size_t applicable = 0;
  for (const IdentityRow& row : identity) {
    if (row.applicable) ++applicable;
    identity_pass = identity_pass && row.pass();
  }
  identity_pass = identity_pass && applicable > 0;

  bool all_pass = cholesky_pass && acquisition_pass && identity_pass &&
                  alloc.pass && replay.pass;

  std::ostringstream json;
  json << "{\n  \"experiment\": \"E17_hotpath\",\n";
  json << StrFormat("  \"smoke\": %s,\n", SmokeMode() ? "true" : "false");
  json << "  \"build_flags\": \"" << ATUNE_BUILD_FLAGS << "\",\n";
  json << "  \"kernels\": [\n";
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelTiming& t = kernels[i];
    json << StrFormat(
        "    {\"kernel\": \"cholesky\", \"n\": %zu, \"fast_ns\": %.0f, "
        "\"scalar_ns\": %.0f, \"speedup\": %.3f, \"identical\": %s}%s\n",
        t.n, t.fast_ns, t.scalar_ns, t.speedup,
        t.identical ? "true" : "false", i + 1 < kernels.size() ? "," : "");
  }
  json << "  ],\n";
  json << StrFormat(
      "  \"acquisition\": {\"n\": %zu, \"m\": %zu, \"scalar_ns\": %.0f, "
      "\"batched_ns\": %.0f, \"speedup\": %.3f, \"bitwise_match\": %s},\n",
      acq.n, acq.m, acq.scalar_ns, acq.batched_ns, acq.speedup,
      acq.bitwise_match ? "true" : "false");
  json << StrFormat(
      "  \"alloc\": {\"hook_live\": %s, \"max_steady_allocs\": %llu},\n",
      alloc.hook_live ? "true" : "false",
      static_cast<unsigned long long>(alloc.max_steady_allocs));
  json << StrFormat(
      "  \"replay\": {\"records\": %zu, \"bytes\": %zu, \"mmap_mb_s\": %.1f, "
      "\"streaming_mb_s\": %.1f, \"records_match\": %s, \"fallback_ok\": "
      "%s},\n",
      replay.records, replay.bytes, replay.mmap_mb_s, replay.streaming_mb_s,
      replay.records_match ? "true" : "false",
      replay.fallback_ok ? "true" : "false");
  json << "  \"identity\": [\n";
  for (size_t i = 0; i < identity.size(); ++i) {
    const IdentityRow& row = identity[i];
    json << StrFormat(
        "    {\"tuner\": \"%s\", \"applicable\": %s, \"serial\": %s, "
        "\"batched\": %s, \"kill_resume\": %s}%s\n",
        row.tuner.c_str(), row.applicable ? "true" : "false",
        row.serial ? "true" : "false", row.batched ? "true" : "false",
        row.kill_resume ? "true" : "false",
        i + 1 < identity.size() ? "," : "");
  }
  json << "  ],\n";
  json << StrFormat(
      "  \"pass\": {\"cholesky\": %s, \"acquisition\": %s, \"identity\": %s, "
      "\"alloc\": %s, \"replay\": %s}\n}\n",
      cholesky_pass ? "true" : "false", acquisition_pass ? "true" : "false",
      identity_pass ? "true" : "false", alloc.pass ? "true" : "false",
      replay.pass ? "true" : "false");
  if (AtomicWriteFile("BENCH_hotpath.json", json.str()).ok()) {
    std::printf("wrote BENCH_hotpath.json\n");
  }

  std::printf("hotpath gates: cholesky=%d acquisition=%d identity=%d "
              "alloc=%d replay=%d\n",
              cholesky_pass, acquisition_pass, identity_pass, alloc.pass,
              replay.pass);
  if (g_sink == 12345.6789) std::printf("(sink)\n");
  return AcceptanceExit(all_pass);
}

}  // namespace bench
}  // namespace atune

int main() { return atune::bench::Main(); }
