// E20 — warm-start transfer learning over the sharded knowledge repository
// (DESIGN.md §14), proven four ways:
//
//   * convergence: a matrix of (tuner × workload × seed) sessions runs cold
//     and warm (WarmStartTuner seeded from a repository built out of
//     completed historic sessions); the median budget a warm session needs
//     to reach within 5% of the cell's best must beat the cold median
//     strictly — transfer learning must pay for its probe trial
//   * ingest durability: single-writer ingest under a 15% short-write/
//     EINTR/transient-EIO storm and an 8-thread concurrent ingest storm on
//     the real filesystem; afterwards every published shard CRC-verifies
//     and LoadAll reports zero corrupt shards
//   * resume: a warmed journaled session killed after 1, n/2, n-1 committed
//     records and resumed against the same pinned snapshot must reach the
//     uninterrupted OutcomeChecksum with byte-identical final journal —
//     the warm schedule is replay-derived, not re-decided
//   * sparse GP: the inducing-point surrogate stays within tolerance of the
//     exact GP at m = 2n/3, and a disabled approximation (the default) is
//     bit-identical to the exact path
//
// Results go to console + BENCH_warmstart.json (published atomically) +
// BENCH_warmstart.csv.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/file_util.h"
#include "common/io_env.h"
#include "common/string_util.h"
#include "core/journal.h"
#include "core/knowledge_repo.h"
#include "core/registry.h"
#include "core/session.h"
#include "ml/gaussian_process.h"
#include "tuners/builtin.h"
#include "tuners/warm_start.h"

namespace atune {
namespace bench {
namespace {

const size_t kBudget = SmokeSize(20, 8);
const size_t kSeeds = SmokeSize(3, 1);
constexpr uint64_t kSystemSeed = 77;
constexpr double kConvergenceSlack = 1.05;  // "within 5% of the cell's best"

std::vector<std::string> BenchTuners() {
  if (SmokeMode()) return {"random-search"};
  return {"random-search", "ituned"};
}

std::vector<Workload> BenchWorkloads() {
  if (SmokeMode()) return {MakeDbmsOlapWorkload(1.0)};
  return {MakeDbmsOlapWorkload(1.0), MakeDbmsOltpWorkload(1.0),
          MakeDbmsOlapWorkload(2.0)};
}

Result<TuningOutcome> RunCell(Tuner* tuner, const Workload& workload,
                              uint64_t seed, const std::string& journal,
                              uint64_t kill_after, bool resume) {
  auto dbms = MakeDbms(kSystemSeed);
  dbms->set_noise_sigma(0.0);  // the comparison isolates the search policy
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = seed;
  options.measure_default = false;
  options.journal_path = journal;
  options.interrupt_after_records = kill_after;
  return resume ? ResumeTuningSession(tuner, dbms.get(), workload, options)
                : RunTuningSession(tuner, dbms.get(), workload, options);
}

/// The knowledge base every warm session maps against: completed historic
/// sessions over the bench workloads, ingested as shards and read back —
/// the same round trip atuned performs.
Status BuildKnowledgeBase(KnowledgeRepository& repo) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto dbms = MakeDbms(kSystemSeed);
  dbms->set_noise_sigma(0.0);
  uint64_t seed = 500;
  for (const Workload& wl : BenchWorkloads()) {
    for (int rep = 0; rep < 2; ++rep) {
      auto tuner = registry.Create("random-search");
      if (!tuner.ok()) return tuner.status();
      SessionOptions options;
      options.budget = TuningBudget{SmokeSize(12, 6)};
      options.seed = seed;
      options.measure_default = false;
      auto outcome = RunTuningSession(tuner->get(), dbms.get(), wl, options);
      if (!outcome.ok()) return outcome.status();
      KnowledgeRecord rec = MakeKnowledgeRecord(
          StrFormat("hist-%llu", static_cast<unsigned long long>(seed)),
          "bench", dbms->name(), dbms->space(), dbms->MetricNames(), wl, seed,
          options.budget.max_evaluations, *outcome);
      Status s = repo.Ingest(rec);
      if (!s.ok()) return s;
      ++seed;
    }
  }
  return Status::OK();
}

/// Budget spent until the convergence curve first reaches
/// kConvergenceSlack × target; budget+1 when it never does.
double CostToReach(const TuningOutcome& outcome, double target) {
  const double threshold = target * kConvergenceSlack;
  for (size_t i = 0; i < outcome.convergence.size(); ++i) {
    if (outcome.convergence[i] <= threshold) {
      return outcome.convergence_cost[i];
    }
  }
  return double(kBudget + 1);
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v.size() % 2 == 1
             ? v[v.size() / 2]
             : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
}

struct Cell {
  std::string tuner;
  std::string workload;
  uint64_t seed = 0;
  double cold_cost = 0.0;
  double warm_cost = 0.0;
  double cold_best = 0.0;
  double warm_best = 0.0;
  size_t warm_evaluations = 0;
  size_t mapped = 0;
};

}  // namespace

int Main() {
  PrintHeader("E20 bench_warmstart",
              "transfer learning across tuning sessions (OtterTune §5)",
              "knowledge-repo warm start: convergence, durable ingest, "
              "bit-identical warm resume, sparse-GP scaling");

  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);

  // ----- knowledge base --------------------------------------------------
  const std::string kb_dir = "bench_warmstart_kb";
  (void)std::system(("rm -rf '" + kb_dir + "'").c_str());
  KnowledgeRepository repo(kb_dir);
  Status kb = BuildKnowledgeBase(repo);
  if (!kb.ok()) {
    std::fprintf(stderr, "knowledge base build failed: %s\n",
                 kb.ToString().c_str());
    return 1;
  }
  size_t kb_corrupt = 0;
  auto snapshot = repo.LoadAll(&kb_corrupt);
  if (!snapshot.ok() || kb_corrupt != 0) {
    std::fprintf(stderr, "knowledge base reload failed\n");
    return 1;
  }
  std::printf("\nknowledge base: %zu shard(s) in %s\n", snapshot->size(),
              kb_dir.c_str());

  // ----- pass 1: cold vs warm convergence --------------------------------
  std::vector<Cell> cells;
  std::vector<double> cold_costs, warm_costs;
  for (const std::string& tuner_name : BenchTuners()) {
    for (const Workload& wl : BenchWorkloads()) {
      for (uint64_t s = 0; s < kSeeds; ++s) {
        const uint64_t seed = 1000 + s;
        Cell cell;
        cell.tuner = tuner_name;
        cell.workload = wl.name + StrFormat("@%.1f", wl.scale);
        cell.seed = seed;

        auto cold_tuner = registry.Create(tuner_name);
        if (!cold_tuner.ok()) continue;
        auto cold = RunCell(cold_tuner->get(), wl, seed, "", 0, false);
        if (!cold.ok()) continue;

        auto warm_tuner =
            MakeWarmStartTuner(registry, tuner_name, *snapshot);
        if (!warm_tuner.ok()) continue;
        auto* warm_ptr = static_cast<WarmStartTuner*>(warm_tuner->get());
        auto warm = RunCell(warm_tuner->get(), wl, seed, "", 0, false);
        if (!warm.ok()) continue;

        const double target =
            std::min(cold->best_objective, warm->best_objective);
        cell.cold_cost = CostToReach(*cold, target);
        cell.warm_cost = CostToReach(*warm, target);
        cell.cold_best = cold->best_objective;
        cell.warm_best = warm->best_objective;
        cell.warm_evaluations = warm_ptr->warm_evaluations();
        cell.mapped = warm_ptr->mapped_sessions().size();
        cold_costs.push_back(cell.cold_cost);
        warm_costs.push_back(cell.warm_cost);
        cells.push_back(cell);
      }
    }
  }
  const double cold_median = Median(cold_costs);
  const double warm_median = Median(warm_costs);
  const bool warm_pass = !cells.empty() && warm_median < cold_median;
  std::printf("\ncold vs warm (budget %zu, %zu cells, cost to within 5%% of "
              "cell best):\n",
              kBudget, cells.size());
  for (const Cell& c : cells) {
    std::printf(
        "  %-14s %-12s seed %llu: cold %5.1f warm %5.1f "
        "(seeded %zu from %zu mapped)\n",
        c.tuner.c_str(), c.workload.c_str(),
        static_cast<unsigned long long>(c.seed), c.cold_cost, c.warm_cost,
        c.warm_evaluations, c.mapped);
  }
  std::printf("  median: cold %.1f, warm %.1f (gate: warm < cold) %s\n",
              cold_median, warm_median, warm_pass ? "PASS" : "FAIL");

  // ----- pass 2: ingest durability ---------------------------------------
  const std::string fault_dir = "bench_warmstart_faults";
  (void)std::system(("rm -rf '" + fault_dir + "'").c_str());
  const size_t kFaultRecords = SmokeSize(30, 10);
  size_t fault_ingested = 0;
  uint64_t injected = 0;
  {
    IoFaultSchedule schedule;
    schedule.seed = 99;
    schedule.short_write_rate = 0.15;
    schedule.eintr_rate = 0.15;
    schedule.transient_eio_rate = 0.15;
    FaultInjectingIoEnv env(IoEnv::Default(), schedule);
    ScopedIoEnv install(&env);
    KnowledgeRepository faulted(fault_dir);
    for (size_t i = 0; i < kFaultRecords; ++i) {
      KnowledgeRecord rec = (*snapshot)[i % snapshot->size()];
      rec.session_id = StrFormat("faulted-%zu", i);
      if (faulted.Ingest(rec).ok()) ++fault_ingested;
    }
    injected = env.injected_total();
  }
  size_t fault_corrupt = 0;
  auto fault_loaded = KnowledgeRepository(fault_dir).LoadAll(&fault_corrupt);
  const bool fault_pass = fault_loaded.ok() && fault_corrupt == 0 &&
                          fault_loaded->size() == fault_ingested &&
                          fault_ingested == kFaultRecords;

  const std::string storm_dir = "bench_warmstart_storm";
  (void)std::system(("rm -rf '" + storm_dir + "'").c_str());
  const size_t kThreads = 8;
  const size_t kPerThread = SmokeSize(25, 5);
  std::atomic<size_t> storm_failures{0};
  {
    KnowledgeRepository storm(storm_dir);
    std::vector<std::thread> writers;
    for (size_t t = 0; t < kThreads; ++t) {
      writers.emplace_back([&storm, &storm_failures, &snapshot, kPerThread,
                            t] {
        for (size_t i = 0; i < kPerThread; ++i) {
          KnowledgeRecord rec = (*snapshot)[(t + i) % snapshot->size()];
          rec.session_id = StrFormat("storm-%zu-%zu", t, i);
          if (!storm.Ingest(rec).ok()) storm_failures.fetch_add(1);
        }
      });
    }
    for (auto& w : writers) w.join();
  }
  size_t storm_corrupt = 0;
  auto storm_loaded = KnowledgeRepository(storm_dir).LoadAll(&storm_corrupt);
  const bool storm_pass = storm_loaded.ok() && storm_corrupt == 0 &&
                          storm_failures.load() == 0 &&
                          storm_loaded->size() == kThreads * kPerThread;
  const bool ingest_pass = fault_pass && storm_pass;
  std::printf(
      "\ningest: 15%%-fault single writer %zu/%zu shards, %llu faults "
      "injected, %zu corrupt %s\n"
      "        %zu-thread storm %zu/%zu shards, %zu corrupt %s\n",
      fault_ingested, kFaultRecords,
      static_cast<unsigned long long>(injected), fault_corrupt,
      fault_pass ? "PASS" : "FAIL", kThreads,
      storm_loaded.ok() ? storm_loaded->size() : 0, kThreads * kPerThread,
      storm_corrupt, storm_pass ? "PASS" : "FAIL");

  // ----- pass 3: warmed kill -> resume bit-identity ----------------------
  bool resume_pass = true;
  {
    const Workload wl = BenchWorkloads().front();
    const std::string journal = "bench_warmstart_resume.wal";
    std::remove(journal.c_str());
    auto baseline_tuner = MakeWarmStartTuner(registry, "random-search",
                                             *snapshot);
    resume_pass = baseline_tuner.ok();
    uint64_t baseline_checksum = 0;
    std::string baseline_journal;
    uint64_t records = 0;
    if (resume_pass) {
      auto baseline = RunCell(baseline_tuner->get(), wl, 2000, journal, 0,
                              false);
      resume_pass = baseline.ok();
      if (resume_pass) {
        baseline_checksum = OutcomeChecksum(*baseline);
        (void)ReadFileToString(journal, &baseline_journal);
        auto recovered = TrialJournal::OpenForResume(journal);
        records = recovered.ok() ? recovered->records.size() : 0;
      }
    }
    std::remove(journal.c_str());
    if (resume_pass && records >= 2) {
      std::set<uint64_t> kills = {1, records / 2, records - 1};
      for (uint64_t kill : kills) {
        if (kill == 0 || kill >= records) continue;
        std::remove(journal.c_str());
        auto killed_tuner = MakeWarmStartTuner(registry, "random-search",
                                               *snapshot);
        auto killed = RunCell((*killed_tuner).get(), wl, 2000, journal, kill,
                              false);
        const bool aborted =
            !killed.ok() && killed.status().code() == StatusCode::kAborted;
        auto resumed_tuner = MakeWarmStartTuner(registry, "random-search",
                                                *snapshot);
        auto resumed = RunCell((*resumed_tuner).get(), wl, 2000, journal, 0,
                               true);
        std::string final_journal;
        (void)ReadFileToString(journal, &final_journal);
        const bool match = resumed.ok() &&
                           OutcomeChecksum(*resumed) == baseline_checksum &&
                           final_journal == baseline_journal;
        std::printf("resume: kill@%llu/%llu aborted=%d checksum+journal %s\n",
                    static_cast<unsigned long long>(kill),
                    static_cast<unsigned long long>(records), aborted ? 1 : 0,
                    match ? "PASS" : "FAIL");
        resume_pass = resume_pass && aborted && match;
        std::remove(journal.c_str());
      }
    } else {
      resume_pass = false;
    }
  }

  // ----- pass 4: sparse GP -----------------------------------------------
  bool sparse_pass = true;
  {
    Rng rng(3);
    const size_t n = SmokeSize(90, 45);
    std::vector<Vec> xs;
    Vec ys;
    for (size_t i = 0; i < n; ++i) {
      Vec x = {rng.Uniform(), rng.Uniform()};
      ys.push_back(std::sin(3.0 * x[0]) + 0.5 * std::cos(2.0 * x[1]));
      xs.push_back(std::move(x));
    }
    GpHyperParams params;
    GaussianProcess exact(params);
    GpHyperParams sparse_params;
    sparse_params.max_exact_points = 2 * n / 3;
    GaussianProcess sparse(sparse_params);
    GpHyperParams lazy_params;
    lazy_params.max_exact_points = 10 * n;  // never triggers
    GaussianProcess lazy(lazy_params);
    sparse_pass = exact.Fit(xs, ys).ok() && sparse.Fit(xs, ys).ok() &&
                  lazy.Fit(xs, ys).ok() && sparse.sparse() && !lazy.sparse();
    double worst = 0.0;
    bool bit_identical = true;
    if (sparse_pass) {
      Rng probe_rng(5);
      for (int i = 0; i < 30; ++i) {
        Vec x = {probe_rng.Uniform(), probe_rng.Uniform()};
        GpPrediction pe = exact.Predict(x);
        GpPrediction ps = sparse.Predict(x);
        GpPrediction pl = lazy.Predict(x);
        worst = std::max(worst, std::fabs(pe.mean - ps.mean));
        sparse_pass = sparse_pass && std::isfinite(ps.mean) &&
                      std::isfinite(ps.variance) && ps.variance >= 0.0;
        bit_identical = bit_identical && pe.mean == pl.mean &&
                        pe.variance == pl.variance;
      }
      sparse_pass = sparse_pass && worst < 0.15 && bit_identical;
    }
    std::printf(
        "\nsparse GP: n=%zu m=%zu worst |mean diff| %.4f (gate < 0.15), "
        "disabled path bit-identical=%d %s\n",
        n, sparse.num_inducing(), worst, bit_identical ? 1 : 0,
        sparse_pass ? "PASS" : "FAIL");
  }

  const bool pass = warm_pass && ingest_pass && resume_pass && sparse_pass;
  std::printf("\nacceptance: warm %s, ingest %s, resume %s, sparse %s\n",
              warm_pass ? "PASS" : "FAIL", ingest_pass ? "PASS" : "FAIL",
              resume_pass ? "PASS" : "FAIL", sparse_pass ? "PASS" : "FAIL");

  std::ostringstream json;
  json << "{\n  \"experiment\": \"bench_warmstart\",\n";
  json << StrFormat("  \"budget\": %zu,\n  \"knowledge_shards\": %zu,\n",
                    kBudget, snapshot->size());
  json << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << StrFormat(
        "    {\"tuner\": \"%s\", \"workload\": \"%s\", \"seed\": %llu, "
        "\"cold_cost\": %.1f, \"warm_cost\": %.1f, \"cold_best\": %.4f, "
        "\"warm_best\": %.4f, \"warm_evaluations\": %zu, \"mapped\": %zu}%s\n",
        c.tuner.c_str(), c.workload.c_str(),
        static_cast<unsigned long long>(c.seed), c.cold_cost, c.warm_cost,
        c.cold_best, c.warm_best, c.warm_evaluations, c.mapped,
        i + 1 < cells.size() ? "," : "");
  }
  json << StrFormat(
      "  ],\n  \"cold_median_cost\": %.1f,\n  \"warm_median_cost\": %.1f,\n",
      cold_median, warm_median);
  json << StrFormat(
      "  \"ingest\": {\"faulted_records\": %zu, \"faults_injected\": %llu, "
      "\"faulted_corrupt\": %zu, \"storm_records\": %zu, "
      "\"storm_corrupt\": %zu},\n",
      fault_ingested, static_cast<unsigned long long>(injected), fault_corrupt,
      storm_loaded.ok() ? storm_loaded->size() : 0, storm_corrupt);
  json << StrFormat(
      "  \"pass\": {\"warm\": %s, \"ingest\": %s, \"resume\": %s, "
      "\"sparse\": %s}\n}\n",
      warm_pass ? "true" : "false", ingest_pass ? "true" : "false",
      resume_pass ? "true" : "false", sparse_pass ? "true" : "false");
  if (AtomicWriteFile("BENCH_warmstart.json", json.str()).ok()) {
    std::printf("wrote BENCH_warmstart.json\n");
  }

  TableWriter csv({"tuner", "workload", "seed", "cold_cost", "warm_cost",
                   "cold_best", "warm_best", "warm_evaluations", "mapped"});
  for (const Cell& c : cells) {
    csv.AddRow({c.tuner, c.workload,
                StrFormat("%llu", static_cast<unsigned long long>(c.seed)),
                StrFormat("%.1f", c.cold_cost),
                StrFormat("%.1f", c.warm_cost),
                StrFormat("%.4f", c.cold_best),
                StrFormat("%.4f", c.warm_best),
                StrFormat("%zu", c.warm_evaluations),
                StrFormat("%zu", c.mapped)});
  }
  if (csv.WriteCsvFile("BENCH_warmstart.csv").ok()) {
    std::printf("wrote BENCH_warmstart.csv\n");
  }

  (void)std::system(("rm -rf '" + kb_dir + "' '" + fault_dir + "' '" +
                     storm_dir + "'")
                        .c_str());
  return AcceptanceExit(pass);
}

}  // namespace bench
}  // namespace atune

int main() { return atune::bench::Main(); }
