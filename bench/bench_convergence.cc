// E11 — convergence curves: best-objective-so-far vs experiment budget for
// each tuning category. The paper has no figures, but Table 1's
// time-consumption prose ("very time consuming", "efficient for
// predicting", "only apply to long-running applications") is exactly a
// statement about the shape of these curves. Emitted as CSV series so they
// can be plotted directly.

#include <memory>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/comparator.h"
#include "tuners/adaptive/adaptive_memory.h"
#include "tuners/cost_model/cost_model_tuner.h"
#include "tuners/experiment/ituned.h"
#include "tuners/experiment/search_baselines.h"
#include "tuners/ml_tuners/ottertune.h"
#include "tuners/rule_based/builtin_rules.h"
#include "tuners/rule_based/rule_engine.h"
#include "tuners/simulation/trace_simulator.h"

namespace atune {
namespace bench {
namespace {

// Interpolates a (cost, best) trace onto integer budget points.
std::vector<double> Resample(const std::vector<std::pair<double, double>>& trace,
                             size_t budget) {
  std::vector<double> out(budget, std::numeric_limits<double>::quiet_NaN());
  double best = std::numeric_limits<double>::quiet_NaN();
  size_t idx = 0;
  for (size_t b = 1; b <= budget; ++b) {
    while (idx < trace.size() && trace[idx].first <= static_cast<double>(b)) {
      best = trace[idx].second;
      ++idx;
    }
    out[b - 1] = best;
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E11: bench_convergence",
              "Table 1 time-consumption prose, as curves",
              "Mean best-objective vs budget per category (DBMS OLAP, 5 "
              "seeds, CSV below).");

  const size_t budget = SmokeSize(30, 8);
  std::vector<std::pair<std::string, std::function<std::unique_ptr<Tuner>()>>>
      tuners = {
          {"rule-based",
           [] {
             return std::make_unique<RuleBasedTuner>("rules", MakeDbmsRules());
           }},
          {"cost-model", [] { return std::make_unique<CostModelTuner>(); }},
          {"trace-simulator",
           [] { return std::make_unique<TraceSimulatorTuner>(); }},
          {"random-search",
           [] { return std::make_unique<RandomSearchTuner>(); }},
          {"ituned", [] { return std::make_unique<ITunedTuner>(); }},
          {"ottertune", [] { return std::make_unique<OtterTuneTuner>(); }},
          {"adaptive-memory",
           [] { return std::make_unique<AdaptiveMemoryTuner>(); }},
      };
  auto report = CompareTuners(
      tuners,
      [](uint64_t seed) -> std::unique_ptr<TunableSystem> {
        return MakeDbms(seed);
      },
      MakeDbmsOlapWorkload(1.0), TuningBudget{budget}, SmokeSize(5, 1),
      "dbms-olap");
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  // CSV: one row per budget point, one column per tuner (mean over seeds).
  std::printf("budget");
  for (const auto& [name, factory] : tuners) {
    (void)factory;
    std::printf(",%s", name.c_str());
  }
  std::printf("\n");
  std::vector<std::vector<double>> curves;  // [tuner][budget]
  for (size_t t = 0; t < tuners.size(); ++t) {
    std::vector<RunningStats> per_budget(budget);
    for (const auto& seed_trace : report->traces[t]) {
      std::vector<double> r = Resample(seed_trace, budget);
      for (size_t b = 0; b < budget; ++b) {
        if (!std::isnan(r[b])) per_budget[b].Add(r[b]);
      }
    }
    std::vector<double> curve(budget);
    for (size_t b = 0; b < budget; ++b) {
      curve[b] = per_budget[b].count() > 0
                     ? per_budget[b].mean()
                     : std::numeric_limits<double>::quiet_NaN();
    }
    curves.push_back(std::move(curve));
  }
  for (size_t b = 0; b < budget; ++b) {
    std::printf("%zu", b + 1);
    for (size_t t = 0; t < tuners.size(); ++t) {
      if (std::isnan(curves[t][b])) {
        std::printf(",");
      } else {
        std::printf(",%.2f", curves[t][b]);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nHow to read it: rule-based/cost-model/trace curves are flat almost\n"
      "immediately (their knowledge is front-loaded); random/iTuned start at\n"
      "the same first measurement but iTuned's GP bends the curve down much\n"
      "faster; the adaptive curve descends inside the payload run.\n");
  return 0;
}
