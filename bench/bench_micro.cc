// E8 — engineering microbenchmarks (google-benchmark): throughput of the
// simulators and the math/ML kernels the tuners are built on. These guard
// the "thousands of what-if evaluations are free" assumption the
// cost-model and simulation-based categories rely on.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "math/doe.h"
#include "math/sampling.h"
#include "ml/gaussian_process.h"
#include "tuners/cost_model/cost_models.h"
#include "tuners/simulation/trace_simulator.h"

namespace atune {
namespace bench {
namespace {

void BM_DbmsExecuteOlap(benchmark::State& state) {
  auto dbms = MakeDbms(1);
  Workload w = MakeDbmsOlapWorkload(1.0);
  Configuration c = dbms->space().DefaultConfiguration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbms->Execute(c, w));
  }
}
BENCHMARK(BM_DbmsExecuteOlap);

void BM_DbmsExecuteOltp(benchmark::State& state) {
  auto dbms = MakeDbms(1);
  Workload w = MakeDbmsOltpWorkload(1.0);
  Configuration c = dbms->space().DefaultConfiguration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbms->Execute(c, w));
  }
}
BENCHMARK(BM_DbmsExecuteOltp);

void BM_MapReduceExecute(benchmark::State& state) {
  auto mr = MakeMapReduce(1);
  Workload w = MakeMrTeraSortWorkload(10.0);
  Configuration c = mr->space().DefaultConfiguration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mr->Execute(c, w));
  }
}
BENCHMARK(BM_MapReduceExecute);

void BM_SparkExecute(benchmark::State& state) {
  auto spark = MakeSpark(1);
  Workload w = MakeSparkSqlAggregateWorkload(8.0, 10.0);
  Configuration c = spark->space().DefaultConfiguration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spark->Execute(c, w));
  }
}
BENCHMARK(BM_SparkExecute);

void BM_CostModelPredict(benchmark::State& state) {
  auto dbms = MakeDbms(1);
  auto model = MakeDbmsCostModel();
  Workload w = MakeDbmsOlapWorkload(1.0);
  auto desc = dbms->Descriptors();
  Configuration c = dbms->space().DefaultConfiguration();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->PredictRuntime(c, w, desc));
  }
}
BENCHMARK(BM_CostModelPredict);

void BM_TraceWhatIf(benchmark::State& state) {
  auto dbms = MakeDbms(1);
  Workload w = MakeDbmsOlapWorkload(1.0);
  Configuration traced = dbms->space().DefaultConfiguration();
  auto trace = dbms->Execute(traced, w);
  auto desc = dbms->Descriptors();
  Rng rng(3);
  Configuration cand = dbms->space().RandomConfiguration(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TraceSimulatorTuner::PredictFromTrace(
        dbms->name(), traced, *trace, cand, desc));
  }
}
BENCHMARK(BM_TraceWhatIf);

void BM_GpFit(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<Vec> xs = LatinHypercubeSamples(n, 12, &rng);
  Vec ys;
  for (const Vec& x : xs) ys.push_back(x[0] * x[0] + 0.5 * x[1]);
  for (auto _ : state) {
    GaussianProcess gp;
    benchmark::DoNotOptimize(gp.Fit(xs, ys));
  }
}
BENCHMARK(BM_GpFit)->Arg(10)->Arg(30)->Arg(60);

void BM_GpPredict(benchmark::State& state) {
  Rng rng(7);
  std::vector<Vec> xs = LatinHypercubeSamples(30, 12, &rng);
  Vec ys;
  for (const Vec& x : xs) ys.push_back(x[0] * x[0] + 0.5 * x[1]);
  GaussianProcess gp;
  (void)gp.Fit(xs, ys);
  Vec probe(12, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.Predict(probe));
  }
}
BENCHMARK(BM_GpPredict);

void BM_LatinHypercube(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LatinHypercubeSamples(30, 14, &rng));
  }
}
BENCHMARK(BM_LatinHypercube);

void BM_PlackettBurman(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlackettBurmanFoldover(14));
  }
}
BENCHMARK(BM_PlackettBurman);

}  // namespace
}  // namespace bench
}  // namespace atune

BENCHMARK_MAIN();
