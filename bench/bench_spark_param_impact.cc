// E5 — Section 2.4's claim: "Spark performance is controlled by over 200
// parameters from which about 30 can have a significant impact on job
// performance."
//
// Reproduction at our simulator's scale: global sensitivity screening of
// the full Spark parameter space (Plackett-Burman main effects + random
// one-at-a-time perturbations), reporting the ranked impact distribution.
// The shape to reproduce: impact is heavily concentrated — a small head of
// knobs owns almost all of the variance, the tail barely matters.

#include <algorithm>
#include <numeric>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "math/doe.h"
#include "tuners/rule_based/spex.h"

namespace atune {
namespace bench {
namespace {

// |main effect| per parameter from a fold-over PB screening, averaged over
// several workloads (a knob matters if it matters for any workload family).
std::vector<double> ScreenEffects(SimulatedSpark* spark,
                                  const std::vector<Workload>& workloads) {
  const ParameterSpace& space = spark->space();
  size_t dims = space.dims();
  std::vector<double> combined(dims, 0.0);
  auto design = PlackettBurmanFoldover(dims);
  if (!design.ok()) return combined;
  // Screening studies pick *feasible* low/high levels (a design point that
  // just gets its allocation denied measures nothing); SPEX-style
  // constraint repair provides that feasibility projection.
  auto constraints = MakeConstraintsForSystem(spark->name());
  auto descriptors = spark->Descriptors();
  for (const Workload& w : workloads) {
    std::vector<double> responses;
    for (const auto& row : design->rows) {
      Vec u(dims);
      for (size_t d = 0; d < dims; ++d) u[d] = row[d] > 0 ? 0.75 : 0.25;
      Configuration config = space.FromUnitVector(u);
      for (const auto& c : constraints) {
        if (c.violated(config, descriptors)) c.repair(&config, descriptors);
      }
      config = space.FromUnitVector(space.ToUnitVector(config));
      auto result = spark->Execute(config, w);
      // Log-scale responses so failure penalties don't drown the rest.
      double obj = result.ok() ? result->runtime_seconds *
                                     (result->failed ? 10.0 : 1.0)
                               : 1e6;
      responses.push_back(std::log(obj));
    }
    auto effects = MainEffects(*design, responses);
    if (!effects.ok()) continue;
    for (size_t d = 0; d < dims; ++d) {
      combined[d] += std::abs((*effects)[d]);
    }
  }
  for (double& e : combined) e /= static_cast<double>(workloads.size());
  return combined;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader(
      "E5: bench_spark_param_impact", "Section 2.4 claim",
      "Global sensitivity screening of the Spark parameter space: impact "
      "concentrates in a small head of knobs (the paper's '~30 of 200').");

  auto spark = MakeSpark(61);
  spark->set_noise_sigma(0.0);
  std::vector<Workload> workloads = {
      MakeSparkSqlAggregateWorkload(8.0, 4.0),
      MakeSparkJoinWorkload(8.0, 64.0),
      MakeSparkIterativeMlWorkload(4.0, 6.0),
      MakeSparkStreamingWorkload(64.0, 8.0, 10.0),
  };
  std::vector<double> effects = ScreenEffects(spark.get(), workloads);
  const ParameterSpace& space = spark->space();

  std::vector<size_t> order = RankByEffect(effects);
  double total = std::accumulate(effects.begin(), effects.end(), 0.0);

  TableWriter table({"rank", "parameter", "|effect| (log-runtime)",
                     "share of total impact", "cumulative"});
  double cumulative = 0.0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    size_t d = order[rank];
    double share = total > 0.0 ? effects[d] / total : 0.0;
    cumulative += share;
    table.AddRow({StrFormat("%zu", rank + 1), space.param(d).name(),
                  StrFormat("%.3f", effects[d]),
                  StrFormat("%.1f%%", share * 100.0),
                  StrFormat("%.1f%%", cumulative * 100.0)});
  }
  table.WritePretty(std::cout);

  // Count how many knobs carry 90% of the impact.
  cumulative = 0.0;
  size_t significant = 0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    cumulative += total > 0.0 ? effects[order[rank]] / total : 0.0;
    ++significant;
    if (cumulative >= 0.9) break;
  }
  std::printf(
      "\nShape check vs the paper: %zu of %zu simulated knobs carry 90%% of\n"
      "the measured impact — the same heavy concentration behind the real\n"
      "Spark's '~30 significant of 200+ parameters'. (Our simulator models\n"
      "the significant subset directly; the untuned long tail of the real\n"
      "system corresponds to the flat bottom of this ranking.)\n",
      significant, space.dims());
  return 0;
}
