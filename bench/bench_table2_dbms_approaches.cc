// E2 — reproduction of Table 2 ("An overview comparison of selected
// parameter tuning approaches for a DBMS").
//
// Every row of the paper's table is exercised as a working implementation
// against the simulated DBMS, each with its own methodology, and the
// "Target Problems" column becomes a measured outcome:
//   SPEX       — error-prone-config detection/repair rates
//   Tianyin    — parameter ranking by one-at-a-time navigation
//   STMM       — cost-benefit memory allocation + resulting speedup
//   Dushyanth  — trace-based what-if prediction error
//   ADDM       — bottleneck diagnosis chain + speedup
//   SARD       — Plackett-Burman parameter ranking
//   Shivnath   — adaptive-sampling tuning speedup
//   iTuned     — LHS + GP + EI tuning speedup
//   Rodd       — neural-network model tuning speedup
//   OtterTune  — repository/GP tuning speedup + knob ranking
//   COLT       — online tuning improvement while the workload runs

#include <functional>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/session.h"
#include "tuners/adaptive/colt.h"
#include "tuners/cost_model/stmm.h"
#include "tuners/experiment/adaptive_sampling.h"
#include "tuners/experiment/ituned.h"
#include "tuners/experiment/sard.h"
#include "tuners/ml_tuners/ottertune.h"
#include "tuners/ml_tuners/rodd_nn.h"
#include "tuners/rule_based/config_navigator.h"
#include "tuners/rule_based/spex.h"
#include "tuners/simulation/addm.h"
#include "tuners/simulation/trace_simulator.h"

namespace atune {
namespace bench {
namespace {

const size_t kBudget = SmokeSize(25, 6);

struct Row {
  std::string approach;
  std::string category;
  std::string methodology;
  std::string target;
  std::string outcome;
};

Row RunTunerRow(const std::string& approach, const std::string& category,
                const std::string& methodology, const std::string& target,
                Tuner* tuner, const Workload& workload) {
  auto dbms = MakeDbms(17);
  SessionOptions options;
  options.budget.max_evaluations = kBudget;
  options.seed = 101;
  auto outcome = RunTuningSession(tuner, dbms.get(), workload, options);
  std::string result =
      outcome.ok()
          ? StrFormat("%.2fx speedup over defaults (%.1f runs)",
                      outcome->speedup_over_default,
                      outcome->evaluations_used)
          : outcome.status().ToString();
  return {approach, category, methodology, target, result};
}

Row RunSpexRow() {
  auto dbms = MakeDbms(23);
  Workload w = MakeDbmsOltpWorkload(1.0);
  auto constraints = MakeConstraintsForSystem(dbms->name());
  auto descriptors = dbms->Descriptors();
  descriptors["expected_clients"] = w.PropertyOr("clients", 32.0);
  Rng rng(3);
  int failures = 0, caught = 0, repaired_ok = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    Configuration config = dbms->space().RandomConfiguration(&rng);
    auto raw = dbms->Execute(config, w);
    if (!raw.ok() || !raw->failed) continue;
    ++failures;
    if (!CheckConstraints(constraints, config, descriptors).empty()) ++caught;
    Configuration fixed = config;
    for (const auto& c : constraints) {
      if (c.violated(fixed, descriptors)) c.repair(&fixed, descriptors);
    }
    fixed = dbms->space().FromUnitVector(dbms->space().ToUnitVector(fixed));
    auto rerun = dbms->Execute(fixed, w);
    if (rerun.ok() && !rerun->failed) ++repaired_ok;
  }
  return {"SPEX [27]", "Rule-based", "Constraint inference",
          "Avoid error-prone configs",
          StrFormat("%d/%d failing configs flagged, %d/%d fixed by repair",
                    caught, failures, repaired_ok, failures)};
}

Row RunNavigatorRow() {
  auto dbms = MakeDbms(29);
  Workload w = MakeDbmsOlapWorkload(1.0);
  ConfigNavigatorTuner tuner(4);
  Evaluator evaluator(dbms.get(), w, TuningBudget{40});
  Rng rng(7);
  Status s = tuner.Tune(&evaluator, &rng);
  std::string top = s.ok() && tuner.ranking().size() >= 3
                        ? tuner.ranking()[0] + " > " + tuner.ranking()[1] +
                              " > " + tuner.ranking()[2]
                        : s.ToString();
  return {"Tianyin [26]", "Rule-based", "Configuration navigation",
          "Ranking the effects of parameters", "impact order: " + top};
}

Row RunTraceRow() {
  auto dbms = MakeDbms(31);
  Workload w = MakeDbmsOlapWorkload(1.0);
  Configuration traced = dbms->space().DefaultConfiguration();
  auto trace = dbms->Execute(traced, w);
  Rng rng(11);
  std::vector<double> errors, predicted, actual_times;
  for (int i = 0; i < 60; ++i) {
    // Trace-based simulators answer local what-if questions ("what if I
    // changed these knobs from the current config?"), so evaluate on
    // perturbations of the traced configuration.
    Configuration cand = dbms->space().Neighbor(traced, 0.15, &rng);
    double pred = TraceSimulatorTuner::PredictFromTrace(
        dbms->name(), traced, *trace, cand, dbms->Descriptors());
    auto actual = dbms->Execute(cand, w);
    if (!actual.ok() || actual->failed) continue;
    errors.push_back(std::abs(pred - actual->runtime_seconds) /
                     actual->runtime_seconds);
    predicted.push_back(pred);
    actual_times.push_back(actual->runtime_seconds);
  }
  return {"Dushyanth [17]", "Simulation-based", "Trace-based simulation",
          "Prediction",
          StrFormat("local what-if: %.0f%% median rel. error, rank corr "
                    "%.2f (%zu configs)",
                    Median(errors) * 100.0,
                    SpearmanCorrelation(predicted, actual_times),
                    errors.size())};
}

Row RunSardRow() {
  auto dbms = MakeDbms(37);
  Workload w = MakeDbmsOlapWorkload(1.0);
  SardTuner tuner;
  Evaluator evaluator(dbms.get(), w, TuningBudget{40});
  Rng rng(13);
  Status s = tuner.Tune(&evaluator, &rng);
  std::string top = s.ok() && tuner.ranking().size() >= 3
                        ? tuner.ranking()[0] + " > " + tuner.ranking()[1] +
                              " > " + tuner.ranking()[2]
                        : s.ToString();
  return {"SARD [7]", "Experiment-driven", "P&B statistical design",
          "Ranking the effects of parameters", "effect order: " + top};
}

Row RunColtRow() {
  auto dbms = MakeDbms(41);
  Workload w = MakeDbmsOltpWorkload(1.0);
  ColtTuner tuner;
  Evaluator evaluator(dbms.get(), w, TuningBudget{kBudget});
  Rng rng(17);
  Status s = tuner.Tune(&evaluator, &rng);
  if (!s.ok()) {
    return {"COLT [20]", "Adaptive", "Cost vs. gain analysis",
            "Profiling, Tuning", s.ToString()};
  }
  double first = evaluator.history().front().objective;
  double last = evaluator.history().back().objective;
  return {"COLT [20]", "Adaptive", "Cost vs. gain analysis",
          "Profiling, Tuning",
          StrFormat("online: pass 1 %.0fs -> final pass %.0fs (%.2fx), %s",
                    first, last, first / last, tuner.Report().c_str())};
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E2: bench_table2_dbms_approaches", "Table 2 of the paper",
              "All 11 selected DBMS tuning approaches implemented and run "
              "against the simulated DBMS (budget 25 runs where applicable).");

  std::vector<Row> rows;
  rows.push_back(RunSpexRow());
  rows.push_back(RunNavigatorRow());
  {
    StmmTuner stmm;
    rows.push_back(RunTunerRow("STMM [22]", "Cost Modeling",
                               "Cost-benefit analysis",
                               "Tuning, Recommendation (memory)", &stmm,
                               MakeDbmsOlapWorkload(1.0)));
  }
  rows.push_back(RunTraceRow());
  {
    AddmTuner addm;
    rows.push_back(RunTunerRow("ADDM [8]", "Simulation-based",
                               "DB-time model & diagnosis",
                               "Profiling, Tuning", &addm,
                               MakeDbmsOltpWorkload(1.0)));
  }
  rows.push_back(RunSardRow());
  {
    AdaptiveSamplingTuner shivnath;
    rows.push_back(RunTunerRow("Shivnath [3]", "Experiment-driven",
                               "Adaptive sampling", "Profiling, Tuning",
                               &shivnath, MakeDbmsOlapWorkload(1.0)));
  }
  {
    ITunedTuner ituned;
    rows.push_back(RunTunerRow("iTuned [9]", "Experiment-driven",
                               "LHS & Gaussian Process", "Profiling, Tuning",
                               &ituned, MakeDbmsOlapWorkload(1.0)));
  }
  {
    RoddNnTuner rodd;
    rows.push_back(RunTunerRow("Rodd [19]", "Machine Learning",
                               "Neural Networks",
                               "Tuning, Recommendation (memory)", &rodd,
                               MakeDbmsOlapWorkload(1.0)));
  }
  {
    OtterTuneTuner ottertune;
    rows.push_back(RunTunerRow("OtterTune [24]", "Machine Learning",
                               "Gaussian Process + history repository",
                               "Tuning, Recommendation", &ottertune,
                               MakeDbmsOlapWorkload(1.0)));
  }
  rows.push_back(RunColtRow());

  TableWriter table(
      {"Approach", "Category", "Methodology", "Target problem", "Measured"});
  for (const Row& row : rows) {
    table.AddRow(
        {row.approach, row.category, row.methodology, row.target, row.outcome});
  }
  table.WritePretty(std::cout);
  return 0;
}
