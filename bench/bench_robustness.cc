// E13 — measurement robustness: real tuning campaigns fight transient run
// failures, stragglers, and hung experiments (the practical barrier the
// cloud-tuning literature highlights; the paper's experiment-driven section
// assumes measurements can be trusted). This harness wraps the DBMS
// simulator in the deterministic fault-injection layer
// (systems/fault_injector.h) and measures how the Evaluator's
// RobustnessPolicy defends the tuners:
//
//   * bit-identity: with the fault layer installed at rate 0, every tuner's
//     trial history must be bitwise identical (FNV-1a checksum) to tuning
//     the bare system — serial AND at parallelism 8 — proving the layer and
//     the robustness plumbing are exact no-ops when nothing goes wrong.
//   * regret degradation: tuner x fault-rate matrix (0/5/15/30%) under a
//     fault-hardened policy (retries + timeout watchdog + MAD outlier
//     re-measurement), reporting mean best objective and how gracefully it
//     degrades as the cluster gets nastier.
//   * graceful completion: every registered tuner that works on the DBMS
//     fault-free must also complete at 15% transient failures under the
//     *default* policy, and must not leak budget: the sum of its trial
//     costs must equal Evaluator::used().
//
// Results go to console + BENCH_robustness.json.

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/file_util.h"
#include "common/string_util.h"
#include "core/registry.h"
#include "core/session.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/fault_injector.h"
#include "tuners/builtin.h"

namespace atune {
namespace bench {
namespace {

const size_t kSeeds = SmokeSize(3, 1);
const size_t kBudget = SmokeSize(20, 6);
const size_t kIdentityParallelism = 8;

/// The matrix tuners: one per category that tunes the DBMS without help,
/// spanning search baselines, BO, SARD's DOE, and OtterTune's ML pipeline.
const char* kMatrixTuners[] = {"random-search",    "grid-search",
                               "recursive-random", "ituned",
                               "sard",             "ottertune"};

std::vector<double> FaultRates() {
  if (SmokeMode()) return {0.0, 0.15};
  return {0.0, 0.05, 0.15, 0.30};
}

/// Fault-hardened policy used for the degradation matrix.
RobustnessPolicy HardenedPolicy() {
  RobustnessPolicy policy;
  policy.max_retries = 2;
  // Above any honest DBMS run (failures cap at kFailedRunWallClockSec) but
  // far below a hang, so only hung runs get censored.
  policy.timeout_seconds = 3600.0;
  policy.outlier_mad_threshold = 3.5;
  return policy;
}

struct SessionStats {
  bool ok = false;
  double best = 0.0;
  uint64_t checksum = 0;
  double used = 0.0;
  double cost_sum = 0.0;
  size_t retried = 0, timed_out = 0, remeasured = 0, censored = 0, failed = 0;
};

SessionStats RunOne(const std::string& tuner_name, TunableSystem* system,
                    uint64_t seed, const RobustnessPolicy& policy,
                    size_t parallelism) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(tuner_name);
  SessionStats stats;
  if (!tuner.ok()) return stats;
  (*tuner)->set_parallelism(parallelism);
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = seed + 100;
  options.robustness = policy;
  options.measure_default = false;
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto outcome = RunTuningSession(tuner->get(), system, workload, options);
  if (!outcome.ok()) return stats;
  stats.ok = true;
  stats.best = outcome->best_objective;
  stats.checksum = HistoryChecksum(outcome->history);
  stats.used = outcome->evaluations_used;
  for (const Trial& t : outcome->history) stats.cost_sum += t.cost;
  stats.retried = outcome->retried_runs;
  stats.timed_out = outcome->timed_out_runs;
  stats.remeasured = outcome->remeasured_runs;
  stats.censored = outcome->censored_runs;
  stats.failed = outcome->failed_runs;
  return stats;
}

struct IdentityRow {
  std::string tuner;
  bool serial_identical = false;
  bool parallel_identical = false;
};

/// Part 1: the fault layer at rate 0 must be invisible, bit for bit.
std::vector<IdentityRow> RunIdentityChecks() {
  std::vector<IdentityRow> rows;
  const RobustnessPolicy policy;  // default: retries armed, nothing to retry
  for (const char* name : kMatrixTuners) {
    IdentityRow row;
    row.tuner = name;
    row.serial_identical = true;
    row.parallel_identical = true;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      // Each comparison holds the parallelism fixed and varies only the
      // rate-0 fault layer: batch-aware tuners (iTuned's constant liar)
      // legitimately produce a different history at k=8 than serially, so
      // the bare reference must be measured at the same k.
      auto bare = MakeDbms(seed + 1);
      SessionStats reference = RunOne(name, bare.get(), seed, policy, 1);
      auto bare_parallel = MakeDbms(seed + 1);
      SessionStats reference_parallel =
          RunOne(name, bare_parallel.get(), seed, policy,
                 kIdentityParallelism);

      auto inner_serial = MakeDbms(seed + 1);
      FaultInjectingSystem faulty_serial(inner_serial.get(),
                                         FaultProfile::FromRate(0.0));
      SessionStats serial = RunOne(name, &faulty_serial, seed, policy, 1);

      auto inner_parallel = MakeDbms(seed + 1);
      FaultInjectingSystem faulty_parallel(inner_parallel.get(),
                                           FaultProfile::FromRate(0.0));
      SessionStats parallel = RunOne(name, &faulty_parallel, seed, policy,
                                     kIdentityParallelism);

      row.serial_identical = row.serial_identical && reference.ok &&
                             serial.ok &&
                             serial.checksum == reference.checksum;
      row.parallel_identical =
          row.parallel_identical && reference_parallel.ok && parallel.ok &&
          parallel.checksum == reference_parallel.checksum;
    }
    rows.push_back(row);
  }
  return rows;
}

struct MatrixCell {
  double mean_best = 0.0;
  double degradation = 1.0;  // mean_best / mean_best at rate 0
  size_t retried = 0, timed_out = 0, remeasured = 0, censored = 0, failed = 0;
  bool all_ok = true;
};

/// Part 2: tuner x fault-rate degradation matrix under the hardened policy.
std::map<std::string, std::map<double, MatrixCell>> RunDegradationMatrix() {
  std::map<std::string, std::map<double, MatrixCell>> matrix;
  for (const char* name : kMatrixTuners) {
    for (double rate : FaultRates()) {
      MatrixCell cell;
      for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        auto inner = MakeDbms(seed + 1);
        FaultInjectingSystem faulty(
            inner.get(), FaultProfile::FromRate(rate, /*seed=*/seed + 7));
        SessionStats stats =
            RunOne(name, &faulty, seed, HardenedPolicy(), 1);
        cell.all_ok = cell.all_ok && stats.ok;
        cell.mean_best += stats.best / static_cast<double>(kSeeds);
        cell.retried += stats.retried;
        cell.timed_out += stats.timed_out;
        cell.remeasured += stats.remeasured;
        cell.censored += stats.censored;
        cell.failed += stats.failed;
      }
      matrix[name][rate] = cell;
    }
    double base = matrix[name][0.0].mean_best;
    for (auto& [rate, cell] : matrix[name]) {
      cell.degradation = base > 0.0 ? cell.mean_best / base : 1.0;
    }
  }
  return matrix;
}

struct CompletionRow {
  std::string tuner;
  bool works_fault_free = false;
  bool completes_at_15 = false;
  bool no_leak = false;
  size_t retried = 0;
  size_t failed = 0;
};

/// Part 3: graceful degradation across the whole registry. Tuners that
/// cannot tune this system at all (wrong platform) are reported but not
/// held against the acceptance bar.
std::vector<CompletionRow> RunCompletionChecks() {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  FaultProfile transient_only;
  transient_only.transient_failure_rate = 0.15;
  std::vector<CompletionRow> rows;
  for (const std::string& name : registry.Names()) {
    CompletionRow row;
    row.tuner = name;
    auto bare = MakeDbms(11);
    row.works_fault_free =
        RunOne(name, bare.get(), /*seed=*/3, RobustnessPolicy(), 1).ok;

    auto inner = MakeDbms(11);
    FaultInjectingSystem faulty(inner.get(), transient_only);
    SessionStats stats =
        RunOne(name, &faulty, /*seed=*/3, RobustnessPolicy(), 1);
    row.completes_at_15 = stats.ok;
    row.no_leak = stats.ok && std::abs(stats.used - stats.cost_sum) < 1e-6;
    row.retried = stats.retried;
    row.failed = stats.failed;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E13: bench_robustness",
              "fault-injection layer + measurement-robust Evaluator",
              "bit-identity at fault rate 0; tuner x fault-rate degradation "
              "matrix; whole-registry graceful completion at 15% transient "
              "failures.");

  // Part 1: rate-0 bit-identity.
  std::vector<IdentityRow> identity = RunIdentityChecks();
  std::printf("\nfault layer at rate 0 (vs bare system, %zu seeds):\n",
              kSeeds);
  std::printf("%-17s  %10s  %14s\n", "tuner", "serial", "parallelism=8");
  bool identity_pass = true;
  for (const IdentityRow& row : identity) {
    identity_pass =
        identity_pass && row.serial_identical && row.parallel_identical;
    std::printf("%-17s  %10s  %14s\n", row.tuner.c_str(),
                row.serial_identical ? "identical" : "DIFFERS",
                row.parallel_identical ? "identical" : "DIFFERS");
  }

  // Part 2: degradation matrix.
  auto matrix = RunDegradationMatrix();
  std::printf(
      "\nmean best objective under faults (hardened policy: retries + "
      "3600s watchdog + MAD 3.5; %zu seeds x %zu budget):\n",
      kSeeds, kBudget);
  std::printf("%-17s", "tuner");
  for (double rate : FaultRates()) std::printf("  %8.0f%%", rate * 100.0);
  std::printf("  %28s\n", "repairs@max-rate (R/T/M/C)");
  bool matrix_pass = true;
  for (const char* name : kMatrixTuners) {
    std::printf("%-17s", name);
    for (double rate : FaultRates()) {
      const MatrixCell& cell = matrix[name][rate];
      matrix_pass = matrix_pass && cell.all_ok;
      std::printf("  %9.1f", cell.mean_best);
    }
    const MatrixCell& worst = matrix[name][FaultRates().back()];
    std::printf("  %10zu/%zu/%zu/%zu\n", worst.retried, worst.timed_out,
                worst.remeasured, worst.censored);
  }

  // Part 3: whole-registry completion + budget-leak check.
  std::vector<CompletionRow> completion = RunCompletionChecks();
  bool completion_pass = true;
  size_t applicable = 0;
  std::printf(
      "\ngraceful completion at 15%% transient failures, default policy "
      "(budget leak = |used - sum(trial costs)| > 1e-6):\n");
  for (const CompletionRow& row : completion) {
    if (!row.works_fault_free) continue;  // wrong platform for this system
    ++applicable;
    bool pass = row.completes_at_15 && row.no_leak;
    completion_pass = completion_pass && pass;
    std::printf("  %-18s %s  (%zu retries, %zu failed trials%s)\n",
                row.tuner.c_str(), pass ? "ok " : "FAIL", row.retried,
                row.failed, row.no_leak ? "" : ", BUDGET LEAK");
  }
  std::printf("  (%zu of %zu registered tuners tune this system)\n",
              applicable, completion.size());

  bool pass = identity_pass && matrix_pass && completion_pass;
  std::printf("\nacceptance: rate-0 bit-identity %s, matrix completion %s, "
              "15%%-transient graceful completion + no budget leak %s\n",
              identity_pass ? "PASS" : "FAIL", matrix_pass ? "PASS" : "FAIL",
              completion_pass ? "PASS" : "FAIL");

  // Published atomically (write-temp-then-rename): a crash mid-report
  // can't leave a torn half-written file.
  FILE* json = std::fopen("BENCH_robustness.json.tmp", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"experiment\": \"bench_robustness\",\n");
    std::fprintf(json, "  \"seeds\": %zu,\n  \"budget\": %zu,\n", kSeeds,
                 kBudget);
    std::fprintf(json, "  \"identity\": [\n");
    for (size_t i = 0; i < identity.size(); ++i) {
      std::fprintf(json,
                   "    {\"tuner\": \"%s\", \"serial_identical\": %s, "
                   "\"parallel8_identical\": %s}%s\n",
                   identity[i].tuner.c_str(),
                   identity[i].serial_identical ? "true" : "false",
                   identity[i].parallel_identical ? "true" : "false",
                   i + 1 < identity.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"matrix\": [\n");
    bool first = true;
    for (const char* name : kMatrixTuners) {
      for (double rate : FaultRates()) {
        const MatrixCell& cell = matrix[name][rate];
        std::fprintf(json,
                     "%s    {\"tuner\": \"%s\", \"fault_rate\": %.2f, "
                     "\"mean_best\": %.6f, \"degradation\": %.4f, "
                     "\"retried\": %zu, \"timed_out\": %zu, "
                     "\"remeasured\": %zu, \"censored\": %zu, "
                     "\"failed\": %zu}",
                     first ? "" : ",\n", name, rate, cell.mean_best,
                     cell.degradation, cell.retried, cell.timed_out,
                     cell.remeasured, cell.censored, cell.failed);
        first = false;
      }
    }
    std::fprintf(json, "\n  ],\n  \"completion\": [\n");
    for (size_t i = 0; i < completion.size(); ++i) {
      const CompletionRow& row = completion[i];
      std::fprintf(json,
                   "    {\"tuner\": \"%s\", \"works_fault_free\": %s, "
                   "\"completes_at_15pct\": %s, \"no_budget_leak\": %s}%s\n",
                   row.tuner.c_str(), row.works_fault_free ? "true" : "false",
                   row.completes_at_15 ? "true" : "false",
                   row.no_leak ? "true" : "false",
                   i + 1 < completion.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"pass\": {\"identity\": %s, \"matrix\": %s, "
                 "\"completion\": %s}\n}\n",
                 identity_pass ? "true" : "false",
                 matrix_pass ? "true" : "false",
                 completion_pass ? "true" : "false");
    if (CommitTempFile(json, "BENCH_robustness.json").ok()) {
      std::printf("wrote BENCH_robustness.json\n");
    }
  }
  return AcceptanceExit(pass);
}
