// E1 — quantitative reproduction of Table 1 ("Strengths and weaknesses of
// the various approaches for automatic parameter tuning").
//
// For every simulated platform (DBMS / Hadoop MapReduce / Spark) one
// representative tuner per taxonomy category runs under an identical
// experiment budget across several seeds. The measured columns are the
// quantitative counterparts of Table 1's prose:
//   speedup        — final config quality ("find good settings")
//   evals_used     — experiments actually consumed ("very time consuming")
//   cost_to_good   — budget until within 10% of the tuner's own best
//                    ("not cost effective for ad-hoc queries")
//   failed_runs    — risky exploration ("risk of performance degradation",
//                    "inappropriate configuration can cause issues")
//   first_trial    — quality of the zero-knowledge first recommendation
//                    (ad-hoc friendliness of the category)

#include "bench/bench_common.h"
#include "core/comparator.h"
#include "tuners/adaptive/adaptive_memory.h"
#include "tuners/adaptive/stage_retuner.h"
#include "tuners/cost_model/cost_model_tuner.h"
#include "tuners/experiment/ituned.h"
#include "tuners/ml_tuners/ottertune.h"
#include "tuners/rule_based/builtin_rules.h"
#include "tuners/rule_based/rule_engine.h"
#include "tuners/simulation/trace_simulator.h"

namespace atune {
namespace bench {
namespace {

std::vector<std::pair<std::string, std::function<std::unique_ptr<Tuner>()>>>
CategoryTuners(const std::string& system_name) {
  std::vector<std::pair<std::string, std::function<std::unique_ptr<Tuner>()>>>
      tuners;
  tuners.emplace_back("rule-based", [system_name] {
    return std::make_unique<RuleBasedTuner>("rules",
                                            MakeRulesForSystem(system_name));
  });
  tuners.emplace_back("cost-model",
                      [] { return std::make_unique<CostModelTuner>(); });
  tuners.emplace_back("simulation(trace)",
                      [] { return std::make_unique<TraceSimulatorTuner>(); });
  tuners.emplace_back("experiment(ituned)",
                      [] { return std::make_unique<ITunedTuner>(); });
  tuners.emplace_back("ml(ottertune)",
                      [] { return std::make_unique<OtterTuneTuner>(); });
  if (system_name == "simulated-dbms") {
    tuners.emplace_back(
        "adaptive(memory)",
        [] { return std::make_unique<AdaptiveMemoryTuner>(); });
  } else {
    tuners.emplace_back(
        "adaptive(stage)",
        [] { return std::make_unique<StageRetunerTuner>(); });
  }
  return tuners;
}

void RunScenario(const std::string& label, const SystemFactory& factory,
                 const Workload& workload, const std::string& system_name) {
  auto report = CompareTuners(CategoryTuners(system_name), factory, workload,
                              TuningBudget{SmokeSize(25, 6)}, SmokeSize(5, 1), label);
  if (!report.ok()) {
    std::fprintf(stderr, "scenario %s failed: %s\n", label.c_str(),
                 report.status().ToString().c_str());
    return;
  }
  std::printf("\n--- %s (budget 25 experiments, 5 seeds) ---\n", label.c_str());
  report->ToTable().WritePretty(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E1: bench_table1_categories", "Table 1 of the paper",
              "Six tuning-approach categories compared quantitatively on all "
              "three simulated platforms.");

  RunScenario(
      "DBMS / TPC-H-like OLAP",
      [](uint64_t seed) -> std::unique_ptr<TunableSystem> {
        return MakeDbms(seed);
      },
      MakeDbmsOlapWorkload(1.0), "simulated-dbms");

  RunScenario(
      "DBMS / TPC-C-like OLTP",
      [](uint64_t seed) -> std::unique_ptr<TunableSystem> {
        return MakeDbms(seed);
      },
      MakeDbmsOltpWorkload(1.0), "simulated-dbms");

  RunScenario(
      "Hadoop MapReduce / TeraSort 10GB",
      [](uint64_t seed) -> std::unique_ptr<TunableSystem> {
        return MakeMapReduce(seed);
      },
      MakeMrTeraSortWorkload(10.0), "simulated-mapreduce");

  RunScenario(
      "Spark / iterative ML 4GB",
      [](uint64_t seed) -> std::unique_ptr<TunableSystem> {
        return MakeSpark(seed);
      },
      MakeSparkIterativeMlWorkload(4.0, 10.0), "simulated-spark");

  std::printf(
      "\nHow to read this against Table 1:\n"
      "  rule-based    — instant (evals~1) but mid-pack speedup: 'easy to\n"
      "                  adjust / higher risk of degradation'.\n"
      "  cost-model    — few real runs, decent speedup where the model's\n"
      "                  assumptions hold: 'efficient / simplified\n"
      "                  assumptions'.\n"
      "  simulation    — 1 trace + validations: 'efficient fine-grained\n"
      "                  prediction / hard to simulate everything'.\n"
      "  experiment    — burns the whole budget but usually the best final\n"
      "                  config: 'real test runs / very time consuming'.\n"
      "  ml            — needs history (repository built offline) plus\n"
      "                  target runs: 'captures complexity / needs large\n"
      "                  training sets'.\n"
      "  adaptive      — tunes inside the payload run with low first-trial\n"
      "                  cost: 'works for ad-hoc, long-running jobs'.\n");
  return 0;
}
