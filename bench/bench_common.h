#ifndef ATUNE_BENCH_BENCH_COMMON_H_
#define ATUNE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/hardware.h"
#include "systems/mapreduce/mr_system.h"
#include "systems/mapreduce/mr_workloads.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"

namespace atune {
namespace bench {

/// Standard reference hardware used by every experiment harness:
/// a 1-node 8-core/16GB box for the centralized DBMS and a 4-node cluster
/// for MapReduce/Spark (and the "parallel DBMS" of E4).
inline NodeSpec ReferenceNode() {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  node.disk_mbps = 200;
  node.disk_iops = 500;
  node.network_mbps = 1000;
  return node;
}

inline std::unique_ptr<SimulatedDbms> MakeDbms(uint64_t seed,
                                               size_t nodes = 1) {
  return std::make_unique<SimulatedDbms>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

inline std::unique_ptr<SimulatedMapReduce> MakeMapReduce(uint64_t seed,
                                                         size_t nodes = 4) {
  return std::make_unique<SimulatedMapReduce>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

inline std::unique_ptr<SimulatedSpark> MakeSpark(uint64_t seed,
                                                 size_t nodes = 4) {
  return std::make_unique<SimulatedSpark>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_artifact,
                        const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — reproduces %s\n", experiment.c_str(),
              paper_artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace atune

#endif  // ATUNE_BENCH_BENCH_COMMON_H_
