#ifndef ATUNE_BENCH_BENCH_COMMON_H_
#define ATUNE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/session.h"
#include "core/tuner.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/hardware.h"
#include "systems/mapreduce/mr_system.h"
#include "systems/mapreduce/mr_workloads.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"

namespace atune {
namespace bench {

/// Standard reference hardware used by every experiment harness:
/// a 1-node 8-core/16GB box for the centralized DBMS and a 4-node cluster
/// for MapReduce/Spark (and the "parallel DBMS" of E4).
inline NodeSpec ReferenceNode() {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  node.disk_mbps = 200;
  node.disk_iops = 500;
  node.network_mbps = 1000;
  return node;
}

inline std::unique_ptr<SimulatedDbms> MakeDbms(uint64_t seed,
                                               size_t nodes = 1) {
  return std::make_unique<SimulatedDbms>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

inline std::unique_ptr<SimulatedMapReduce> MakeMapReduce(uint64_t seed,
                                                         size_t nodes = 4) {
  return std::make_unique<SimulatedMapReduce>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

inline std::unique_ptr<SimulatedSpark> MakeSpark(uint64_t seed,
                                                 size_t nodes = 4) {
  return std::make_unique<SimulatedSpark>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

/// Runs fn(seed) for seeds [0, num_seeds) and returns the results in seed
/// order. With a non-null pool the replicates run concurrently on it — each
/// replicate must be self-contained (own system/evaluator/rng), which every
/// harness here already guarantees, so results are identical to the serial
/// sweep. With pool == nullptr, runs inline.
template <typename Fn>
auto RunSeedReplicates(size_t num_seeds, ThreadPool* pool, Fn fn)
    -> std::vector<decltype(fn(uint64_t{0}))> {
  using R = decltype(fn(uint64_t{0}));
  std::vector<R> out;
  out.reserve(num_seeds);
  if (pool == nullptr) {
    for (uint64_t s = 0; s < num_seeds; ++s) out.push_back(fn(s));
    return out;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(num_seeds);
  for (uint64_t s = 0; s < num_seeds; ++s) {
    futures.push_back(pool->Submit([fn, s]() { return fn(s); }));
  }
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

/// Smoke mode (ATUNE_SMOKE=1, see tools/run_checks.sh --smoke): every bench
/// shrinks its sweep to a seconds-long sanity pass and skips its acceptance
/// exit-code gating — the point is "does the harness still run end to end",
/// not the paper-scale numbers.
inline bool SmokeMode() {
  const char* env = std::getenv("ATUNE_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// `full` normally, `smoke` under ATUNE_SMOKE.
inline size_t SmokeSize(size_t full, size_t smoke) {
  return SmokeMode() ? smoke : full;
}

/// Bench exit code honoring smoke mode: acceptance failures only fail the
/// binary in a full run.
inline int AcceptanceExit(bool pass) {
  return pass || SmokeMode() ? 0 : 1;
}

/// FNV-1a over a byte range, seeded with `h` (offset-basis
/// 0xcbf29ce484222325 for a fresh hash). Used for bitwise history
/// equivalence checks across the bench harnesses.
inline uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/// Checksum of a trial history: config string, objective bits, cost bits.
/// Trial::round is deliberately excluded — it is the one field batching is
/// *supposed* to change.
inline uint64_t HistoryChecksum(const std::vector<Trial>& history) {
  uint64_t h = kFnvOffsetBasis;
  for (const Trial& t : history) {
    std::string cfg = t.config.ToString();
    h = Fnv1a(h, cfg.data(), cfg.size());
    uint64_t bits;
    std::memcpy(&bits, &t.objective, sizeof(bits));
    h = Fnv1a(h, &bits, sizeof(bits));
    std::memcpy(&bits, &t.cost, sizeof(bits));
    h = Fnv1a(h, &bits, sizeof(bits));
  }
  return h;
}

/// Checksum of a whole session outcome: the trial history (as above) plus
/// best config/objective, budget used, and every robustness/failure
/// counter. Two sessions with equal OutcomeChecksums made the same
/// measurements, spent the same budget, and repaired the same faults —
/// the durability harness's definition of "bit-identical resume".
/// TuningOutcome::replayed_records is deliberately excluded: it is the one
/// field resumption is *supposed* to change.
inline uint64_t OutcomeChecksum(const TuningOutcome& outcome) {
  uint64_t h = HistoryChecksum(outcome.history);
  std::string best_cfg = outcome.best_config.ToString();
  h = Fnv1a(h, best_cfg.data(), best_cfg.size());
  auto mix_double = [&h](double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    h = Fnv1a(h, &bits, sizeof(bits));
  };
  mix_double(outcome.best_objective);
  mix_double(outcome.evaluations_used);
  uint64_t counters[] = {outcome.failed_runs,   outcome.censored_runs,
                         outcome.retried_runs,  outcome.timed_out_runs,
                         outcome.remeasured_runs};
  h = Fnv1a(h, counters, sizeof(counters));
  return h;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_artifact,
                        const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — reproduces %s\n", experiment.c_str(),
              paper_artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace atune

#endif  // ATUNE_BENCH_BENCH_COMMON_H_
