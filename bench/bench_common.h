#ifndef ATUNE_BENCH_BENCH_COMMON_H_
#define ATUNE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/outcome_checksum.h"
#include "core/session.h"
#include "core/tuner.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/hardware.h"
#include "systems/mapreduce/mr_system.h"
#include "systems/mapreduce/mr_workloads.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"

namespace atune {
namespace bench {

/// Standard reference hardware used by every experiment harness:
/// a 1-node 8-core/16GB box for the centralized DBMS and a 4-node cluster
/// for MapReduce/Spark (and the "parallel DBMS" of E4).
inline NodeSpec ReferenceNode() {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  node.disk_mbps = 200;
  node.disk_iops = 500;
  node.network_mbps = 1000;
  return node;
}

inline std::unique_ptr<SimulatedDbms> MakeDbms(uint64_t seed,
                                               size_t nodes = 1) {
  return std::make_unique<SimulatedDbms>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

inline std::unique_ptr<SimulatedMapReduce> MakeMapReduce(uint64_t seed,
                                                         size_t nodes = 4) {
  return std::make_unique<SimulatedMapReduce>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

inline std::unique_ptr<SimulatedSpark> MakeSpark(uint64_t seed,
                                                 size_t nodes = 4) {
  return std::make_unique<SimulatedSpark>(
      ClusterSpec::MakeUniform(nodes, ReferenceNode()), seed);
}

/// Runs fn(seed) for seeds [0, num_seeds) and returns the results in seed
/// order. With a non-null pool the replicates run concurrently on it — each
/// replicate must be self-contained (own system/evaluator/rng), which every
/// harness here already guarantees, so results are identical to the serial
/// sweep. With pool == nullptr, runs inline.
template <typename Fn>
auto RunSeedReplicates(size_t num_seeds, ThreadPool* pool, Fn fn)
    -> std::vector<decltype(fn(uint64_t{0}))> {
  using R = decltype(fn(uint64_t{0}));
  std::vector<R> out;
  out.reserve(num_seeds);
  if (pool == nullptr) {
    for (uint64_t s = 0; s < num_seeds; ++s) out.push_back(fn(s));
    return out;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(num_seeds);
  for (uint64_t s = 0; s < num_seeds; ++s) {
    futures.push_back(pool->Submit([fn, s]() { return fn(s); }));
  }
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

/// Smoke mode (ATUNE_SMOKE=1, see tools/run_checks.sh --smoke): every bench
/// shrinks its sweep to a seconds-long sanity pass and skips its acceptance
/// exit-code gating — the point is "does the harness still run end to end",
/// not the paper-scale numbers.
inline bool SmokeMode() {
  const char* env = std::getenv("ATUNE_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// `full` normally, `smoke` under ATUNE_SMOKE.
inline size_t SmokeSize(size_t full, size_t smoke) {
  return SmokeMode() ? smoke : full;
}

/// Bench exit code honoring smoke mode: acceptance failures only fail the
/// binary in a full run.
inline int AcceptanceExit(bool pass) {
  return pass || SmokeMode() ? 0 : 1;
}

// The bitwise-equivalence checksums grew up here but now live in core
// (src/core/outcome_checksum.h) because atuned reports OutcomeChecksum over
// the wire; re-export them so every existing bench keeps compiling
// unchanged against the one shared definition.
using ::atune::Fnv1a;
using ::atune::HistoryChecksum;
using ::atune::kFnvOffsetBasis;
using ::atune::OutcomeChecksum;

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_artifact,
                        const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — reproduces %s\n", experiment.c_str(),
              paper_artifact.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace atune

#endif  // ATUNE_BENCH_BENCH_COMMON_H_
