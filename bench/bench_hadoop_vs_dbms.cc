// E4 — Section 2.3's historical narrative: "Hadoop was slower by a factor
// of 3.1 to 6.5 in executing a variety of data-intensive analytical
// workloads" than parallel database systems [18, 21], and the follow-up
// studies [2, 14] showed that "by carefully tuning these factors and
// parameters, the overall performance of Hadoop can be dramatically
// improved and be more comparable to that of parallel database systems".
//
// Reproduction: scan / aggregate / join tasks over the same input size on
//   (a) the parallel-DBMS simulator with its rule-tuned configuration,
//   (b) MapReduce with stock defaults,
//   (c) MapReduce tuned by an experiment-driven session.

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "core/session.h"
#include "tuners/experiment/ituned.h"
#include "tuners/rule_based/builtin_rules.h"
#include "tuners/rule_based/rule_engine.h"

namespace atune {
namespace bench {
namespace {

double DbmsTaskRuntime(const std::string& op, double data_mb) {
  auto dbms = MakeDbms(51, /*nodes=*/4);  // a 4-node parallel DBMS
  dbms->set_noise_sigma(0.0);
  Workload task = MakeDbmsAnalyticalTask(op, data_mb);
  // The DBMS ships well-tuned by its vendor's rules (that was the world
  // the 2009 comparison measured).
  RuleContext context;
  context.descriptors = dbms->Descriptors();
  context.workload = &task;
  Configuration config =
      ApplyRules(dbms->space(), MakeDbmsRules(), context);
  auto result = dbms->Execute(config, task);
  return result.ok() ? result->runtime_seconds : -1.0;
}

double MrDefaultRuntime(const std::string& op, double data_mb) {
  auto mr = MakeMapReduce(52);
  mr->set_noise_sigma(0.0);
  // The 2009 comparison ran Hadoop with its stock knobs but a sane reducer
  // count (a couple per node), not the pathological 1-reducer default.
  Configuration config = mr->space().DefaultConfiguration();
  config.SetInt("num_reducers",
                static_cast<int64_t>(mr->cluster().num_nodes() * 2));
  auto result = mr->Execute(config, MakeMrAnalyticalTask(op, data_mb));
  return result.ok() ? result->runtime_seconds : -1.0;
}

double MrTunedRuntime(const std::string& op, double data_mb) {
  auto mr = MakeMapReduce(53);
  Workload task = MakeMrAnalyticalTask(op, data_mb);
  ITunedTuner tuner;
  SessionOptions options;
  options.budget.max_evaluations = SmokeSize(30, 6);
  options.seed = 7;
  auto outcome = RunTuningSession(&tuner, mr.get(), task, options);
  if (!outcome.ok()) return -1.0;
  // Re-measure the best config noise-free for a clean comparison.
  auto clean = MakeMapReduce(54);
  clean->set_noise_sigma(0.0);
  auto result = clean->Execute(outcome->best_config, task);
  return result.ok() ? result->runtime_seconds : -1.0;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader(
      "E4: bench_hadoop_vs_dbms", "Section 2.3 (Pavlo et al. narrative)",
      "Parallel DBMS vs untuned vs tuned MapReduce on identical analytical "
      "tasks (20 GB input, 4-node cluster).");

  const double data_mb = 20.0 * 1024.0;
  TableWriter table({"task", "parallel DBMS", "MapReduce (2009 setup)",
                     "MapReduce (tuned, 30 runs)", "untuned gap", "tuned gap"});
  for (const std::string op : {"scan", "aggregate", "join"}) {
    double dbms_s = DbmsTaskRuntime(op, data_mb);
    double mr_default_s = MrDefaultRuntime(op, data_mb);
    double mr_tuned_s = MrTunedRuntime(op, data_mb);
    table.AddRow({op, StrFormat("%.0fs", dbms_s),
                  StrFormat("%.0fs", mr_default_s),
                  StrFormat("%.0fs", mr_tuned_s),
                  StrFormat("%.1fx slower", mr_default_s / dbms_s),
                  StrFormat("%.1fx slower", mr_tuned_s / dbms_s)});
  }
  table.WritePretty(std::cout);
  std::printf(
      "\nShape check vs the paper: stock MapReduce lands roughly 3-6x behind\n"
      "the parallel DBMS (the 3.1-6.5x of Pavlo et al. [18]); tuning the\n"
      "MapReduce knobs closes most of that gap [2, 14].\n");
  return 0;
}
