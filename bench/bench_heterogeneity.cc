// E6 — open problem 1 from Section 2.5 ("Heterogeneity: tuning over
// heterogeneous hardware and software") and Table 1's cost-model weakness
// "Not effective on heterogeneous clusters".
//
// The same tuning approaches run a TeraSort scenario on (a) a uniform
// 8-node cluster and (b) clusters whose node speeds vary by +-25% / +-50%.
// Two effects to reproduce:
//   * model-driven approaches (cost model, trace what-if) degrade with
//     heterogeneity because their models assume uniform nodes, while
//     experiment-driven tuning keeps working (it only trusts real runs);
//   * the straggler mitigation knobs (speculation on Spark) matter only on
//     the heterogeneous clusters.

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/session.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"
#include "tuners/cost_model/cost_model_tuner.h"
#include "tuners/cost_model/cost_models.h"
#include "tuners/experiment/ituned.h"
#include "tuners/simulation/trace_simulator.h"

namespace atune {
namespace bench {
namespace {

const size_t kSeeds = SmokeSize(5, 1);

double MeanSpeedup(Tuner* (*make)(), double spread, uint64_t base_seed) {
  RunningStats speedup;
  for (size_t s = 0; s < kSeeds; ++s) {
    Rng hw_rng(base_seed + s);
    ClusterSpec cluster =
        spread == 0.0
            ? ClusterSpec::MakeUniform(8, ReferenceNode())
            : ClusterSpec::MakeHeterogeneous(8, ReferenceNode(), spread,
                                             &hw_rng);
    SimulatedMapReduce mr(cluster, base_seed + s);
    std::unique_ptr<Tuner> tuner(make());
    SessionOptions options;
    options.budget.max_evaluations = 20;
    options.seed = 500 + s;
    auto outcome = RunTuningSession(tuner.get(), &mr,
                                    MakeMrTeraSortWorkload(10.0), options);
    if (outcome.ok()) speedup.Add(outcome->speedup_over_default);
  }
  return speedup.mean();
}

Tuner* MakeCost() { return new CostModelTuner(); }
Tuner* MakeTrace() { return new TraceSimulatorTuner(); }
Tuner* MakeITuned() { return new ITunedTuner(); }

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E6: bench_heterogeneity", "Section 2.5 open problem 1",
              "Model-driven vs experiment-driven tuning as cluster "
              "heterogeneity grows (MapReduce TeraSort, 8 nodes, 5 seeds).");

  TableWriter table({"approach", "uniform", "+-25% nodes", "+-50% nodes"});
  struct Row {
    const char* name;
    Tuner* (*make)();
  };
  for (const Row& row : {Row{"cost-model (white box)", MakeCost},
                         Row{"trace what-if", MakeTrace},
                         Row{"iTuned (experiments)", MakeITuned}}) {
    table.AddRow({row.name,
                  StrFormat("%.2fx", MeanSpeedup(row.make, 0.0, 71)),
                  StrFormat("%.2fx", MeanSpeedup(row.make, 0.25, 72)),
                  StrFormat("%.2fx", MeanSpeedup(row.make, 0.5, 73))});
  }
  table.WritePretty(std::cout);

  // The crisper signal: the white-box model's prediction error grows with
  // heterogeneity because it assumes uniform nodes.
  std::printf("\nCost-model relative prediction error vs heterogeneity "
              "(60 random configs):\n");
  TableWriter err_table({"cluster", "median |pred-actual|/actual"});
  for (double spread : {0.0, 0.25, 0.5}) {
    Rng hw_rng(61);
    ClusterSpec cluster =
        spread == 0.0
            ? ClusterSpec::MakeUniform(8, ReferenceNode())
            : ClusterSpec::MakeHeterogeneous(8, ReferenceNode(), spread,
                                             &hw_rng);
    SimulatedMapReduce mr(cluster, 62);
    mr.set_noise_sigma(0.0);
    auto model = MakeCostModelForSystem(mr.name());
    auto desc = mr.Descriptors();
    Workload w = MakeMrTeraSortWorkload(10.0);
    Rng rng(63);
    std::vector<double> errors;
    for (int i = 0; i < 60; ++i) {
      Configuration c = mr.space().RandomConfiguration(&rng);
      auto actual = mr.Execute(c, w);
      if (!actual.ok() || actual->failed) continue;
      double pred = model->PredictRuntime(c, w, desc);
      errors.push_back(std::abs(pred - actual->runtime_seconds) /
                       actual->runtime_seconds);
    }
    err_table.AddRow(
        {spread == 0.0 ? "uniform" : StrFormat("+-%.0f%%", spread * 100.0),
         StrFormat("%.0f%%", Median(errors) * 100.0)});
  }
  err_table.WritePretty(std::cout);

  // Speculation ablation on Spark across heterogeneity levels.
  std::printf("\nStraggler mitigation (Spark SQL aggregate, speculation "
              "on/off):\n");
  TableWriter spec_table({"cluster", "speculation off", "speculation on",
                          "benefit"});
  for (double spread : {0.0, 0.25, 0.5}) {
    RunningStats off_stats, on_stats;
    for (size_t s = 0; s < kSeeds; ++s) {
      Rng hw_rng(81 + s);
      ClusterSpec cluster =
          spread == 0.0
              ? ClusterSpec::MakeUniform(4, ReferenceNode())
              : ClusterSpec::MakeHeterogeneous(4, ReferenceNode(), spread,
                                               &hw_rng);
      SimulatedSpark spark(cluster, 90 + s);
      spark.set_noise_sigma(0.0);
      Workload w = MakeSparkSqlAggregateWorkload(8.0, 4.0);
      Configuration base = spark.space().DefaultConfiguration();
      base.SetInt("num_executors", 4);
      base.SetInt("executor_cores", 4);
      base.SetInt("executor_memory_mb", 4096);
      Configuration with_spec = base;
      with_spec.SetBool("speculation", true);
      auto off = spark.Execute(base, w);
      auto on = spark.Execute(with_spec, w);
      if (off.ok() && on.ok()) {
        off_stats.Add(off->runtime_seconds);
        on_stats.Add(on->runtime_seconds);
      }
    }
    spec_table.AddRow(
        {spread == 0.0 ? "uniform" : StrFormat("+-%.0f%%", spread * 100.0),
         StrFormat("%.0fs", off_stats.mean()),
         StrFormat("%.0fs", on_stats.mean()),
         StrFormat("%.1f%%",
                   100.0 * (1.0 - on_stats.mean() /
                                      std::max(off_stats.mean(), 1e-9)))});
  }
  spec_table.WritePretty(std::cout);
  std::printf(
      "\nShape check: tuning matters *more* on heterogeneous clusters\n"
      "(untuned one-wave configs are gated by the slowest node), the\n"
      "white-box model's predictions drift as its uniform-hardware\n"
      "assumption breaks (Table 1's listed weakness — experiment-driven\n"
      "tuning has no such dependency), and speculative execution only pays\n"
      "off once stragglers exist.\n");
  return 0;
}
