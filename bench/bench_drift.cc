// E21 — drift-robust tuning under time-varying workloads (DESIGN.md §15),
// proven three ways:
//
//   * recovery: a mid-serve regime change OOMs the stale incumbent (sorts
//     vanish, concurrency jumps, memory-hungry configs overcommit RAM);
//     the adaptive decorator must get a working configuration back on the
//     air at least 2x faster than an otherwise identical static pipeline
//     whose detector never fires — the staged ladder (evict -> re-probe ->
//     bounded re-tune) must pay for itself (post-shift regret reported too)
//   * containment: a matrix of drift storms (relentless ramp, violent
//     diurnal, repeated shifts) with hair-trigger detectors must never
//     spend a single evaluation past the session budget and never exceed
//     the re-tune cap — capped firings degrade to the free recovery
//   * replay: every registry tuner runs journaled under drift, is killed
//     after 1, n/2, n-1 committed records, and must resume to the
//     uninterrupted OutcomeChecksum with a byte-identical final journal;
//     the adaptive decorator additionally re-derives identical detection /
//     re-probe / re-tune rounds from the replayed commits (live == replay)
//
// Results go to console + BENCH_drift.json (published atomically) +
// BENCH_drift.csv.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/file_util.h"
#include "common/string_util.h"
#include "core/journal.h"
#include "core/registry.h"
#include "core/session.h"
#include "systems/drifting_workload.h"
#include "tuners/adaptive_retune.h"
#include "tuners/builtin.h"

namespace atune {
namespace bench {
namespace {

const size_t kBudget = SmokeSize(60, 20);
const size_t kShiftAt = kBudget * 3 / 5;  // lands inside the serve phase
const size_t kSeeds = SmokeSize(4, 1);
constexpr uint64_t kSystemSeed = 29;
constexpr double kRecoveryGate = 2.0;

/// The recovery pass tunes a sort-dominated, low-concurrency batch: its
/// optimum reliably reserves client*worker*work_mem aggressively (spill
/// avoidance pays), which is exactly what the regime change punishes.
Workload RecoveryBase() {
  Workload base = MakeDbmsOlapWorkload(1.0);
  base.properties["sort_frac"] = 0.85;
  base.properties["seq_fraction"] = 0.9;
  base.properties["clients"] = 2.0;
  return base;
}

/// The E21 regime change: sorts vanish, I/O turns random, and concurrency
/// jumps 5x — the memory-hungry pre-shift optimum now overcommits RAM, so
/// the stale incumbent is not merely slower but catastrophically wrong,
/// while plenty of small-memory configurations from the explored history
/// run the new regime well.
DriftSchedule ShiftSchedule() {
  DriftSchedule schedule = DriftSchedule::PhaseShift(kShiftAt, 1.4);
  schedule.shift_properties["sort_frac"] = 0.1;
  schedule.shift_properties["seq_fraction"] = 0.3;
  schedule.shift_properties["clients"] = 10.0;
  return schedule;
}

TunerFactory InnerFactory(const std::string& name) {
  return [name]() -> std::unique_ptr<Tuner> {
    TunerRegistry registry;
    RegisterBuiltinTuners(&registry);
    auto tuner = registry.Create(name);
    return tuner.ok() ? std::move(*tuner) : nullptr;
  };
}

struct DriftRun {
  bool ok = false;
  TuningOutcome outcome;
  AdaptiveRetuneStats stats;
  uint64_t checksum = 0;
  std::string journal_bytes;
};

DriftRun RunUnderDrift(Tuner* tuner, const DriftSchedule& schedule,
                       uint64_t seed, const Workload& workload,
                       const std::string& journal = "",
                       uint64_t kill_after = 0, bool resume = false) {
  DriftRun run;
  auto dbms = MakeDbms(kSystemSeed);
  DriftingWorkload drifting(dbms.get(), schedule);
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = seed;
  options.measure_default = false;
  options.journal_path = journal;
  options.interrupt_after_records = kill_after;
  auto outcome =
      resume ? ResumeTuningSession(tuner, &drifting, workload, options)
             : RunTuningSession(tuner, &drifting, workload, options);
  if (!outcome.ok()) return run;
  run.ok = true;
  run.outcome = std::move(*outcome);
  run.checksum = OutcomeChecksum(run.outcome);
  if (!journal.empty()) (void)ReadFileToString(journal, &run.journal_bytes);
  return run;
}

/// Cumulative post-shift regret: sum of (objective - oracle) over the trials
/// measured after the regime change, oracle = best post-shift objective any
/// contender found for this seed. Reported for the curves; the gate runs on
/// recovery cost below.
double PostShiftRegret(const TuningOutcome& outcome, double oracle) {
  double regret = 0.0;
  for (size_t i = kShiftAt; i < outcome.history.size(); ++i) {
    regret += outcome.history[i].objective - oracle;
  }
  return regret;
}

double PostShiftBest(const TuningOutcome& outcome) {
  double best = 1e300;
  for (size_t i = kShiftAt; i < outcome.history.size(); ++i) {
    best = std::min(best, outcome.history[i].objective);
  }
  return best;
}

/// Evaluations spent after the shift until the session first measures a
/// non-failing configuration again — the SLA notion of recovery for this
/// scenario, where the regime change OOMs the stale incumbent. The static
/// pipeline keeps serving the doomed incumbent (the 2% serve jitter cannot
/// escape the memory cliff), so it stays down for the whole horizon; the
/// adaptive ladder's re-probe/re-tune measurements are the recovery.
/// horizon+1 when the session never serves successfully again.
double CostToRecover(const TuningOutcome& outcome) {
  for (size_t i = kShiftAt; i < outcome.history.size(); ++i) {
    if (!outcome.history[i].result.failed) {
      return static_cast<double>(i - kShiftAt + 1);
    }
  }
  return static_cast<double>(kBudget - kShiftAt + 1);
}

struct RecoveryCell {
  uint64_t seed = 0;
  double static_cost = 0.0;
  double adaptive_cost = 0.0;
  double static_regret = 0.0;
  double adaptive_regret = 0.0;
  size_t detections = 0;
  size_t reprobes = 0;
  size_t retunes = 0;
};

struct StormCell {
  std::string name;
  size_t budget_used = 0;
  size_t detections = 0;
  size_t retunes = 0;
  size_t retunes_suppressed = 0;
  bool pass = false;
};

struct ResumeRow {
  std::string tuner;
  bool applicable = false;
  uint64_t records = 0;
  size_t kills = 0;
  bool pass = true;
};

}  // namespace

int Main() {
  PrintHeader("E21 bench_drift",
              "adaptive tuning of time-varying workloads (COLT/STMM §4.3, "
              "cloud-survey SLA adaptivity)",
              "drift robustness: post-shift recovery, storm budget "
              "containment, whole-registry kill/resume under drift");

  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);

  // ----- pass 1: post-shift recovery, adaptive vs static ------------------
  // The static contender is the *same* decorator with a detector that can
  // never fire: identical tune/serve loop, zero adaptation — the measured
  // gap is purely the degradation ladder.
  std::vector<RecoveryCell> cells;
  double static_total = 0.0, adaptive_total = 0.0;
  const DriftSchedule shift = ShiftSchedule();
  AdaptiveRetuneOptions recovery_options;
  recovery_options.retune_fraction = 0.1;    // small stage-2 lease
  recovery_options.detector.min_samples = 3;  // fast warm-up
  for (uint64_t s = 0; s < kSeeds; ++s) {
    const uint64_t seed = 100 + s;
    AdaptiveRetuneOptions static_options = recovery_options;
    static_options.detector.threshold = 1e18;  // never fires
    AdaptiveRetuneTuner static_tuner(InnerFactory("random-search"),
                                     "random-search", static_options);
    DriftRun static_run =
        RunUnderDrift(&static_tuner, shift, seed, RecoveryBase());

    AdaptiveRetuneTuner adaptive_tuner(InnerFactory("random-search"),
                                       "random-search", recovery_options);
    DriftRun adaptive_run =
        RunUnderDrift(&adaptive_tuner, shift, seed, RecoveryBase());
    if (!static_run.ok || !adaptive_run.ok) continue;

    const double oracle = std::min(PostShiftBest(static_run.outcome),
                                   PostShiftBest(adaptive_run.outcome));
    RecoveryCell cell;
    cell.seed = seed;
    cell.static_cost = CostToRecover(static_run.outcome);
    cell.adaptive_cost = CostToRecover(adaptive_run.outcome);
    cell.static_regret = PostShiftRegret(static_run.outcome, oracle);
    cell.adaptive_regret = PostShiftRegret(adaptive_run.outcome, oracle);
    cell.detections = adaptive_tuner.stats().detections;
    cell.reprobes = adaptive_tuner.stats().reprobes;
    cell.retunes = adaptive_tuner.stats().retunes;
    static_total += cell.static_cost;
    adaptive_total += cell.adaptive_cost;
    cells.push_back(cell);
  }
  const double ratio =
      adaptive_total > 0.0 ? static_total / adaptive_total : 0.0;
  // Smoke's single short seed cannot reliably strand the incumbent, so the
  // ratio gate only binds in full mode; smoke just demands adaptive is
  // never slower to recover than static.
  const bool recovery_pass =
      !cells.empty() && adaptive_total > 0.0 &&
      (SmokeMode() ? adaptive_total <= static_total : ratio >= kRecoveryGate);
  std::printf("\npost-shift recovery (budget %zu, shift@%zu, horizon %zu, "
              "%zu seed(s), cost until serving succeeds again):\n",
              kBudget, kShiftAt, kBudget - kShiftAt, cells.size());
  for (const RecoveryCell& c : cells) {
    std::printf("  seed %3llu: static cost %4.0f regret %10.1f | adaptive "
                "cost %4.0f regret %10.1f (detections %zu, reprobes %zu, "
                "retunes %zu)\n",
                static_cast<unsigned long long>(c.seed), c.static_cost,
                c.static_regret, c.adaptive_cost, c.adaptive_regret,
                c.detections, c.reprobes, c.retunes);
  }
  std::printf("  total cost: static %.0f, adaptive %.0f, ratio %.2fx "
              "(gate >= %.1fx) %s\n",
              static_total, adaptive_total, ratio, kRecoveryGate,
              recovery_pass ? "PASS" : "FAIL");

  // ----- pass 2: drift storms cannot leak budget --------------------------
  std::vector<StormCell> storms;
  {
    struct StormSpec {
      std::string name;
      DriftSchedule schedule;
    };
    std::vector<StormSpec> specs;
    specs.push_back({"ramp-8x", DriftSchedule::Ramp(8.0, kBudget)});
    specs.push_back({"diurnal-violent", DriftSchedule::Diurnal(0.9, 6)});
    DriftSchedule repeated = DriftSchedule::PhaseShift(kShiftAt / 2, 2.5);
    specs.push_back({"hard-shift", repeated});
    for (const StormSpec& spec : specs) {
      AdaptiveRetuneOptions options;
      options.max_retunes = 1;
      options.detector.threshold = 0.15;  // hair trigger
      options.detector.min_samples = 3;
      AdaptiveRetuneTuner tuner(InnerFactory("random-search"), "random-search",
                                options);
      DriftRun run =
          RunUnderDrift(&tuner, spec.schedule, 7, MakeDbmsOlapWorkload(1.0));
      StormCell cell;
      cell.name = spec.name;
      cell.budget_used = run.ok ? run.outcome.evaluations_used : 0;
      cell.detections = tuner.stats().detections;
      cell.retunes = tuner.stats().retunes;
      cell.retunes_suppressed = tuner.stats().retunes_suppressed;
      cell.pass = run.ok && cell.budget_used <= kBudget &&
                  cell.retunes <= options.max_retunes;
      storms.push_back(cell);
    }
  }
  bool storm_pass = !storms.empty();
  std::printf("\ndrift storms (budget %zu, re-tune cap 1):\n", kBudget);
  for (const StormCell& c : storms) {
    storm_pass = storm_pass && c.pass;
    std::printf("  %-16s used %2zu/%zu  detections %2zu  retunes %zu  "
                "suppressed %2zu  %s\n",
                c.name.c_str(), c.budget_used, kBudget, c.detections,
                c.retunes, c.retunes_suppressed, c.pass ? "PASS" : "FAIL");
  }

  // ----- pass 3: whole-registry kill/resume under drift -------------------
  // Every tuner that tunes the DBMS runs journaled under the phase shift;
  // killed at 1, n/2, n-1 records it must resume to the uninterrupted
  // checksum with byte-identical journal. The adaptive decorator is an
  // extra row whose detection/staging counters must also be re-derived
  // identically from the replayed commits.
  std::vector<ResumeRow> rows;
  std::vector<std::string> contenders = registry.Names();
  if (SmokeMode()) contenders = {"random-search", "ituned", "grid-search"};
  contenders.push_back("adaptive-retune:random-search");
  bool resume_pass = true;
  std::printf("\nkill/resume under drift (journaled, kills at 1, n/2, n-1):\n");
  for (const std::string& name : contenders) {
    const bool adaptive_row = name == "adaptive-retune:random-search";
    auto make = [&]() -> std::unique_ptr<Tuner> {
      if (adaptive_row) {
        return std::make_unique<AdaptiveRetuneTuner>(
            InnerFactory("random-search"), "random-search",
            AdaptiveRetuneOptions());
      }
      auto tuner = registry.Create(name);
      return tuner.ok() ? std::move(*tuner) : nullptr;
    };
    const std::string path = "bench_drift_" + name + ".wal";
    ResumeRow row;
    row.tuner = name;

    // Probe: does this tuner tune the DBMS at all?
    auto probe = make();
    if (probe == nullptr || !RunUnderDrift(probe.get(), shift, 42, MakeDbmsOlapWorkload(1.0)).ok) {
      rows.push_back(row);
      continue;
    }
    row.applicable = true;

    std::remove(path.c_str());
    auto baseline_tuner = make();
    DriftRun baseline =
        RunUnderDrift(baseline_tuner.get(), shift, 42,
                      MakeDbmsOlapWorkload(1.0), path);
    AdaptiveRetuneStats baseline_stats;
    if (adaptive_row) {
      baseline_stats =
          static_cast<AdaptiveRetuneTuner*>(baseline_tuner.get())->stats();
    }
    auto recovered = TrialJournal::OpenForResume(path);
    row.records = recovered.ok() ? recovered->records.size() : 0;
    std::remove(path.c_str());
    if (!baseline.ok || row.records < 2) {
      row.pass = baseline.ok;  // one-shot tuners have no mid-run to kill
      rows.push_back(row);
      continue;
    }

    std::set<uint64_t> kill_points = {1, row.records / 2, row.records - 1};
    for (uint64_t kill : kill_points) {
      if (kill == 0 || kill >= row.records) continue;
      std::remove(path.c_str());
      auto killed_tuner = make();
      DriftRun killed =
          RunUnderDrift(killed_tuner.get(), shift, 42,
                        MakeDbmsOlapWorkload(1.0), path, kill);
      const bool aborted = !killed.ok;  // interrupt is a kAborted session
      auto resumed_tuner = make();
      DriftRun resumed =
          RunUnderDrift(resumed_tuner.get(), shift, 42,
                        MakeDbmsOlapWorkload(1.0), path, 0, /*resume=*/true);
      bool match = aborted && resumed.ok &&
                   resumed.checksum == baseline.checksum &&
                   resumed.journal_bytes == baseline.journal_bytes;
      if (adaptive_row && match) {
        const AdaptiveRetuneStats& rs =
            static_cast<AdaptiveRetuneTuner*>(resumed_tuner.get())->stats();
        match = rs.detections == baseline_stats.detections &&
                rs.reprobes == baseline_stats.reprobes &&
                rs.retunes == baseline_stats.retunes &&
                rs.evicted_observations == baseline_stats.evicted_observations;
      }
      row.pass = row.pass && match;
      ++row.kills;
      std::remove(path.c_str());
    }
    rows.push_back(row);
  }
  size_t applicable = 0;
  for (const ResumeRow& row : rows) {
    if (!row.applicable) continue;
    ++applicable;
    resume_pass = resume_pass && row.pass;
    std::printf("  %-30s %4llu records, %zu kill(s): %s\n", row.tuner.c_str(),
                static_cast<unsigned long long>(row.records), row.kills,
                row.pass ? "identical" : "DIFFERS/FAILED");
  }
  resume_pass = resume_pass && applicable > 0;
  std::printf("  (%zu contender(s) tune this system; adaptive row also "
              "matches detection rounds live vs replay)\n",
              applicable);

  const bool pass = recovery_pass && storm_pass && resume_pass;
  std::printf("\nacceptance: recovery %s, storms %s, resume %s\n",
              recovery_pass ? "PASS" : "FAIL", storm_pass ? "PASS" : "FAIL",
              resume_pass ? "PASS" : "FAIL");

  std::ostringstream json;
  json << "{\n  \"experiment\": \"bench_drift\",\n";
  json << StrFormat(
      "  \"budget\": %zu,\n  \"shift_at\": %zu,\n  \"seeds\": %zu,\n", kBudget,
      kShiftAt, cells.size());
  json << "  \"recovery\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const RecoveryCell& c = cells[i];
    json << StrFormat(
        "    {\"seed\": %llu, \"static_cost\": %.0f, \"adaptive_cost\": %.0f, "
        "\"static_regret\": %.4f, \"adaptive_regret\": %.4f, "
        "\"detections\": %zu, \"reprobes\": %zu, \"retunes\": %zu}%s\n",
        static_cast<unsigned long long>(c.seed), c.static_cost,
        c.adaptive_cost, c.static_regret, c.adaptive_regret, c.detections,
        c.reprobes, c.retunes, i + 1 < cells.size() ? "," : "");
  }
  json << StrFormat(
      "  ],\n  \"regret_ratio\": %.3f,\n  \"recovery_gate\": %.1f,\n", ratio,
      kRecoveryGate);
  json << "  \"storms\": [\n";
  for (size_t i = 0; i < storms.size(); ++i) {
    const StormCell& c = storms[i];
    json << StrFormat(
        "    {\"storm\": \"%s\", \"budget_used\": %zu, \"detections\": %zu, "
        "\"retunes\": %zu, \"retunes_suppressed\": %zu}%s\n", c.name.c_str(),
        c.budget_used, c.detections, c.retunes, c.retunes_suppressed,
        i + 1 < storms.size() ? "," : "");
  }
  json << StrFormat("  ],\n  \"resume_contenders\": %zu,\n", applicable);
  json << StrFormat(
      "  \"pass\": {\"recovery\": %s, \"storms\": %s, \"resume\": %s}\n}\n",
      recovery_pass ? "true" : "false", storm_pass ? "true" : "false",
      resume_pass ? "true" : "false");
  if (AtomicWriteFile("BENCH_drift.json", json.str()).ok()) {
    std::printf("wrote BENCH_drift.json\n");
  }

  TableWriter csv({"seed", "static_cost", "adaptive_cost", "static_regret",
                   "adaptive_regret", "detections", "reprobes", "retunes"});
  for (const RecoveryCell& c : cells) {
    csv.AddRow({StrFormat("%llu", static_cast<unsigned long long>(c.seed)),
                StrFormat("%.0f", c.static_cost),
                StrFormat("%.0f", c.adaptive_cost),
                StrFormat("%.4f", c.static_regret),
                StrFormat("%.4f", c.adaptive_regret),
                StrFormat("%zu", c.detections), StrFormat("%zu", c.reprobes),
                StrFormat("%zu", c.retunes)});
  }
  if (csv.WriteCsvFile("BENCH_drift.csv").ok()) {
    std::printf("wrote BENCH_drift.csv\n");
  }
  return AcceptanceExit(pass);
}

}  // namespace bench
}  // namespace atune

int main() { return atune::bench::Main(); }
