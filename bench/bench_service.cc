// E19 — the atuned tuning service under hostile conditions (DESIGN.md §13):
// the robustness contract of the daemon proven three ways, 1k+ simulated
// tenants in a full run.
//
//   * transport-fault matrix: every tenant's client runs over a
//     FaultInjectingTransport with a 15% mixed fault schedule (EINTR storms,
//     short reads/writes, stalled peers, mid-frame disconnects). Zero
//     session fatals tolerated: every session must end kDone with the full
//     trial count — the framing detects every torn frame, idempotent
//     session ids make every retry safe, and the client heals over
//     reconnects.
//   * kill → restart → resume identity: a forked daemon process is
//     SIGKILLed at several points mid-fleet, restarted over the same
//     journal directory, and every session must finish with the checksum
//     AND journal bytes of an uninterrupted reference run — restart
//     recovery is replay, not approximation.
//   * saturation shedding: a deliberately tiny daemon (2 workers, queue of
//     8) is offered hundreds of tenants at once. The admission verdict
//     (accept or shed) must stay fast — bounded p99 — and every shed client
//     must eventually land via the server's retry_after_ms backoff hints.
//     Load shedding keeps latency bounded; it never loses work.
//
// Results go to console + BENCH_service.json + BENCH_service.csv. Like
// bench_crashsafety, the exit code gates even under ATUNE_SMOKE (with a
// scaled-down fleet): service robustness is a correctness property.

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/transport.h"
#include "net/wire.h"

namespace atune {
namespace bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string SlurpOrEmpty(const std::string& path) {
  std::string contents;
  if (!ReadFileToString(path, &contents).ok()) contents.clear();
  return contents;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[idx];
}

/// Removes a session's durable triple; RemoveStateDir then rmdirs the dir.
void RemoveSessionFiles(const std::string& dir, const std::string& id) {
  std::remove((dir + "/" + id + ".meta").c_str());
  std::remove((dir + "/" + id + ".wal").c_str());
  std::remove((dir + "/" + id + ".result").c_str());
}

void RemoveStateDir(const std::string& dir,
                    const std::vector<std::string>& ids) {
  for (const std::string& id : ids) RemoveSessionFiles(dir, id);
  ::rmdir(dir.c_str());
}

/// An in-process daemon on its own serve thread (fault + saturation gates).
struct LocalDaemon {
  explicit LocalDaemon(DaemonOptions opts) : daemon(std::move(opts)) {}

  bool Start() {
    if (!daemon.Start().ok()) return false;
    serve = std::thread([this] { (void)daemon.Serve(); });
    return true;
  }

  void Stop() {
    daemon.RequestDrain();
    if (serve.joinable()) serve.join();
  }

  TuningDaemon daemon;
  std::thread serve;
};

/// Pings until the daemon at `address` answers (a forked child needs a
/// moment to bind). Returns false after ~5s of silence.
bool WaitForDaemon(const std::string& address) {
  for (int i = 0; i < 250; ++i) {
    TuningClient::Options opts;
    opts.address = address;
    opts.io_timeout_ms = 2000;
    TuningClient client(std::move(opts));
    if (client.Ping().ok()) return true;
    SleepMs(20);
  }
  return false;
}

// ---- gate 1: transport-fault matrix -----------------------------------------

struct FaultGate {
  size_t tenants = 0;
  size_t fatals = 0;       ///< sessions that did not end kDone
  size_t wrong_trials = 0; ///< kDone but with a truncated history
  uint64_t reconnects = 0; ///< connections the clients had to reopen
  bool pass = false;
};

FaultGate RunFaultGate() {
  FaultGate gate;
  gate.tenants = SmokeSize(1200, 48);
  const size_t kThreads = 16;
  const uint64_t kBudget = 3;

  DaemonOptions opts;
  opts.listen = "unix:bench_service_faults.sock";
  opts.journal_dir = "bench_service_faults.state";
  opts.workers = 4;
  opts.max_queue = 64;
  LocalDaemon daemon(opts);
  if (!daemon.Start()) return gate;

  std::vector<size_t> fatals(kThreads, 0), wrong(kThreads, 0);
  std::vector<uint64_t> reconnects(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      TuningClient::Options copts;
      copts.address = opts.listen;
      copts.io_timeout_ms = 10000;
      copts.inject_faults = true;
      copts.faults = NetFaultSchedule::FromRate(0.15, /*seed=*/1000 + t);
      TuningClient client(std::move(copts));
      for (size_t i = t; i < gate.tenants; i += kThreads) {
        StartRequest req;
        req.session_id = StrFormat("fault-%zu", i);
        req.tenant = StrFormat("tenant-%zu", i);
        req.budget = kBudget;
        req.seed = 100 + i;
        auto start = client.RetryStart(req, /*max_attempts=*/64);
        if (!start.ok()) {
          ++fatals[t];
          continue;
        }
        auto done = client.AwaitResult(req.session_id,
                                       /*overall_timeout_ms=*/120000,
                                       /*poll_ms=*/2000);
        if (!done.ok() || done->state != SessionState::kDone) {
          ++fatals[t];
        } else if (done->result.trials != kBudget) {
          ++wrong[t];
        }
      }
      reconnects[t] = client.connects();
    });
  }
  for (auto& th : threads) th.join();
  daemon.Stop();

  for (size_t t = 0; t < kThreads; ++t) {
    gate.fatals += fatals[t];
    gate.wrong_trials += wrong[t];
    gate.reconnects += reconnects[t];
  }
  gate.pass = gate.fatals == 0 && gate.wrong_trials == 0;

  std::vector<std::string> ids;
  for (size_t i = 0; i < gate.tenants; ++i) {
    ids.push_back(StrFormat("fault-%zu", i));
  }
  RemoveStateDir(opts.journal_dir, ids);
  return gate;
}

// ---- gate 2: kill -> restart -> resume identity ------------------------------

struct SessionRef {
  StartRequest spec;
  uint64_t checksum = 0;
  std::string journal;  ///< final journal bytes of the uninterrupted run
};

struct KillPoint {
  uint64_t kill_after_ms = 0;
  bool recovered = false;        ///< restart loaded/resumed every session
  bool checksum_match = false;   ///< all checksums == reference
  bool journal_identical = false;
  uint64_t replayed = 0;  ///< trials replayed from interrupted journals
  bool pass = false;
};

std::vector<StartRequest> ResumeSpecs() {
  const uint64_t budget = SmokeSize(1500, 400);
  std::vector<StartRequest> specs;
  for (int i = 0; i < 3; ++i) {
    StartRequest req;
    req.session_id = StrFormat("res-%d", i);
    req.tenant = StrFormat("tenant-%d", i);
    req.budget = budget;
    req.seed = 40 + i;
    // One session tunes under multi-tenant contention so resume identity
    // covers the MultiTenantSystem substrate too.
    if (i == 2) req.contention = 2;
    specs.push_back(req);
  }
  return specs;
}

DaemonOptions ResumeDaemonOptions(const std::string& sock,
                                  const std::string& state) {
  DaemonOptions opts;
  opts.listen = "unix:" + sock;
  opts.journal_dir = state;
  opts.workers = 2;
  opts.max_queue = 16;
  opts.tenant_budget_quota = 1e12;
  return opts;
}

TuningDaemon* g_child_daemon = nullptr;
void ChildTerm(int) {
  if (g_child_daemon != nullptr) g_child_daemon->RequestDrain();
}

/// Forks a daemon process. The child serves until SIGKILL (the crash under
/// test) or SIGTERM (graceful drain).
pid_t ForkDaemon(const DaemonOptions& opts) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  TuningDaemon daemon(opts);
  g_child_daemon = &daemon;
  ::signal(SIGTERM, ChildTerm);
  if (!daemon.Start().ok()) ::_exit(1);
  (void)daemon.Serve();
  ::_exit(0);
}

/// Uninterrupted reference: the same specs run to completion in-process.
std::vector<SessionRef> RunResumeReference(
    const std::vector<StartRequest>& specs) {
  std::vector<SessionRef> refs;
  const std::string state = "bench_service_ref.state";
  DaemonOptions opts = ResumeDaemonOptions("bench_service_ref.sock", state);
  LocalDaemon daemon(opts);
  if (!daemon.Start()) return refs;
  TuningClient::Options copts;
  copts.address = opts.listen;
  TuningClient client(std::move(copts));
  for (const StartRequest& spec : specs) {
    auto start = client.StartSession(spec);
    if (!start.ok() || start->code != AdmitCode::kAccepted) return refs;
  }
  for (const StartRequest& spec : specs) {
    auto done = client.AwaitResult(spec.session_id, 300000, 2000);
    if (!done.ok() || done->state != SessionState::kDone) return refs;
    SessionRef ref;
    ref.spec = spec;
    ref.checksum = done->result.checksum;
    ref.journal = SlurpOrEmpty(state + "/" + spec.session_id + ".wal");
    refs.push_back(ref);
  }
  daemon.Stop();
  std::vector<std::string> ids;
  for (const auto& ref : refs) ids.push_back(ref.spec.session_id);
  RemoveStateDir(state, ids);
  return refs;
}

KillPoint RunKillPoint(uint64_t kill_after_ms,
                       const std::vector<SessionRef>& refs) {
  KillPoint kp;
  kp.kill_after_ms = kill_after_ms;
  const std::string sock = "bench_service_kill.sock";
  const std::string state = "bench_service_kill.state";
  DaemonOptions opts = ResumeDaemonOptions(sock, state);

  // Phase 1: submit the fleet, then SIGKILL the daemon mid-run.
  pid_t pid = ForkDaemon(opts);
  if (pid < 0) return kp;
  if (!WaitForDaemon(opts.listen)) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return kp;
  }
  {
    TuningClient::Options copts;
    copts.address = opts.listen;
    TuningClient client(std::move(copts));
    for (const SessionRef& ref : refs) {
      auto start = client.StartSession(ref.spec);
      if (!start.ok() || start->code != AdmitCode::kAccepted) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return kp;
      }
    }
    SleepMs(kill_after_ms);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);

  // Phase 2: restart over the same journal dir; every session must finish
  // bit-identically to the uninterrupted reference.
  pid = ForkDaemon(opts);
  if (pid < 0) return kp;
  if (!WaitForDaemon(opts.listen)) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return kp;
  }
  kp.recovered = true;
  kp.checksum_match = true;
  {
    TuningClient::Options copts;
    copts.address = opts.listen;
    TuningClient client(std::move(copts));
    for (const SessionRef& ref : refs) {
      auto done = client.AwaitResult(ref.spec.session_id, 300000, 2000);
      if (!done.ok() || done->state != SessionState::kDone) {
        kp.recovered = false;
        continue;
      }
      kp.checksum_match =
          kp.checksum_match && done->result.checksum == ref.checksum;
      kp.replayed += done->result.replayed;
    }
  }
  // Graceful SIGTERM drain so journals are quiesced before the byte compare.
  ::kill(pid, SIGTERM);
  ::waitpid(pid, nullptr, 0);

  kp.journal_identical = true;
  for (const SessionRef& ref : refs) {
    std::string resumed = SlurpOrEmpty(state + "/" + ref.spec.session_id +
                                       ".wal");
    kp.journal_identical = kp.journal_identical && resumed == ref.journal;
  }
  kp.pass = kp.recovered && kp.checksum_match && kp.journal_identical;

  std::vector<std::string> ids;
  for (const auto& ref : refs) ids.push_back(ref.spec.session_id);
  RemoveStateDir(state, ids);
  std::remove(sock.c_str());
  return kp;
}

// ---- gate 3: saturation shedding ---------------------------------------------

struct AdmissionGate {
  size_t tenants = 0;
  size_t lost = 0;       ///< sessions never admitted or never finished
  uint64_t sheds = 0;    ///< shed verdicts absorbed by backoff retries
  double p50_ms = 0.0;   ///< per-request admission verdict latency
  double p99_ms = 0.0;
  double max_ms = 0.0;
  bool pass = false;
};

AdmissionGate RunAdmissionGate() {
  AdmissionGate gate;
  gate.tenants = SmokeSize(400, 40);
  const size_t kThreads = 16;
  const double kP99BoundMs = 250.0;

  DaemonOptions opts;
  opts.listen = "unix:bench_service_sat.sock";
  opts.journal_dir = "bench_service_sat.state";
  opts.workers = 2;  // deliberately scarce: shedding is the point
  opts.max_queue = 8;
  opts.retry_after_ms = 25;
  LocalDaemon daemon(opts);
  if (!daemon.Start()) return gate;

  std::vector<std::vector<double>> latencies(kThreads);
  std::vector<size_t> lost(kThreads, 0);
  std::vector<uint64_t> sheds(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      TuningClient::Options copts;
      copts.address = opts.listen;
      TuningClient client(std::move(copts));
      for (size_t i = t; i < gate.tenants; i += kThreads) {
        StartRequest req;
        req.session_id = StrFormat("sat-%zu", i);
        req.tenant = StrFormat("tenant-%zu", i);
        req.budget = 2;
        req.seed = 7000 + i;
        // RetryStart's loop, unrolled so each verdict can be timed: every
        // response (accept or shed) must come back fast even at
        // saturation; shed clients sleep the server's hint and retry.
        bool admitted = false;
        uint64_t backoff_ms = 0;
        for (int attempt = 0; attempt < 512 && !admitted; ++attempt) {
          double begin = NowSeconds();
          auto start = client.StartSession(req);
          if (!start.ok()) break;
          latencies[t].push_back((NowSeconds() - begin) * 1e3);
          if (start->code == AdmitCode::kAccepted ||
              start->code == AdmitCode::kAlreadyExists) {
            admitted = true;
            break;
          }
          ++sheds[t];
          uint64_t hint = start->retry_after_ms > 0 ? start->retry_after_ms
                                                    : opts.retry_after_ms;
          backoff_ms = backoff_ms == 0
                           ? hint
                           : std::min<uint64_t>(backoff_ms * 2, 2000);
          SleepMs(backoff_ms);
        }
        if (!admitted) ++lost[t];
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every admitted session must also finish: shedding loses no work.
  {
    TuningClient::Options copts;
    copts.address = opts.listen;
    TuningClient client(std::move(copts));
    for (size_t i = 0; i < gate.tenants; ++i) {
      auto done = client.AwaitResult(StrFormat("sat-%zu", i), 300000, 2000);
      if (!done.ok() || done->state != SessionState::kDone) ++gate.lost;
    }
  }
  daemon.Stop();

  std::vector<double> all;
  for (size_t t = 0; t < kThreads; ++t) {
    gate.lost += lost[t];
    gate.sheds += sheds[t];
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
  }
  gate.p50_ms = Percentile(all, 0.50);
  gate.p99_ms = Percentile(all, 0.99);
  gate.max_ms = all.empty() ? 0.0 : *std::max_element(all.begin(), all.end());
  gate.pass = gate.lost == 0 && gate.p99_ms <= kP99BoundMs && gate.sheds > 0;

  std::vector<std::string> ids;
  for (size_t i = 0; i < gate.tenants; ++i) {
    ids.push_back(StrFormat("sat-%zu", i));
  }
  RemoveStateDir(opts.journal_dir, ids);
  return gate;
}

}  // namespace
}  // namespace bench
}  // namespace atune

int main() {
  using namespace atune;
  using namespace atune::bench;

  PrintHeader("E19: bench_service",
              "atuned robustness gates (DESIGN.md §13)",
              "zero session fatals over a 15% transport-fault schedule; "
              "SIGKILL -> restart -> bit-identical resume; bounded p99 "
              "admission verdicts under saturation with no lost work.");
  IgnoreSigPipe();
  SetLogLevel(LogLevel::kError);

  // Gate 1: transport-fault matrix.
  FaultGate faults = RunFaultGate();
  std::printf("\ntransport-fault matrix (%zu tenants, 15%% fault rate):\n",
              faults.tenants);
  std::printf("  fatals %zu, truncated %zu, client reconnects %llu  %s\n",
              faults.fatals, faults.wrong_trials,
              static_cast<unsigned long long>(faults.reconnects),
              faults.pass ? "PASS" : "FAIL");

  // Gate 2: kill -> restart -> resume identity.
  std::vector<StartRequest> specs = ResumeSpecs();
  std::vector<SessionRef> refs = RunResumeReference(specs);
  std::vector<KillPoint> kills;
  bool resume_pass = refs.size() == specs.size();
  if (!resume_pass) {
    std::printf("\nFAIL: could not establish uninterrupted reference\n");
  } else {
    std::vector<uint64_t> delays =
        SmokeMode() ? std::vector<uint64_t>{80}
                    : std::vector<uint64_t>{60, 180, 350};
    std::printf("\nkill -> restart -> resume (%zu sessions x %zu kill "
                "points, budget %llu):\n",
                specs.size(), delays.size(),
                static_cast<unsigned long long>(specs[0].budget));
    for (uint64_t delay : delays) {
      KillPoint kp = RunKillPoint(delay, refs);
      std::printf("  kill@%3llums: recovered=%d checksum=%d journal=%d "
                  "replayed=%llu  %s\n",
                  static_cast<unsigned long long>(kp.kill_after_ms),
                  kp.recovered, kp.checksum_match, kp.journal_identical,
                  static_cast<unsigned long long>(kp.replayed),
                  kp.pass ? "PASS" : "FAIL");
      resume_pass = resume_pass && kp.pass;
      kills.push_back(kp);
    }
  }

  // Gate 3: saturation shedding.
  AdmissionGate admission = RunAdmissionGate();
  std::printf("\nsaturation shedding (%zu tenants onto 2 workers/queue 8):\n",
              admission.tenants);
  std::printf("  verdict latency p50 %.2fms p99 %.2fms max %.2fms, "
              "sheds %llu, lost %zu  %s\n",
              admission.p50_ms, admission.p99_ms, admission.max_ms,
              static_cast<unsigned long long>(admission.sheds),
              admission.lost, admission.pass ? "PASS" : "FAIL");

  bool pass = faults.pass && resume_pass && admission.pass;
  std::printf("\nacceptance: faults %s, resume %s, admission %s\n",
              faults.pass ? "PASS" : "FAIL", resume_pass ? "PASS" : "FAIL",
              admission.pass ? "PASS" : "FAIL");

  std::ostringstream json;
  json << "{\n  \"experiment\": \"bench_service\",\n";
  json << StrFormat(
      "  \"faults\": {\"tenants\": %zu, \"fatals\": %zu, \"truncated\": %zu, "
      "\"reconnects\": %llu, \"pass\": %s},\n",
      faults.tenants, faults.fatals, faults.wrong_trials,
      static_cast<unsigned long long>(faults.reconnects),
      faults.pass ? "true" : "false");
  json << "  \"resume\": [\n";
  for (size_t i = 0; i < kills.size(); ++i) {
    const KillPoint& kp = kills[i];
    json << StrFormat(
        "    {\"kill_after_ms\": %llu, \"recovered\": %s, "
        "\"checksum_match\": %s, \"journal_identical\": %s, "
        "\"replayed\": %llu, \"pass\": %s}%s\n",
        static_cast<unsigned long long>(kp.kill_after_ms),
        kp.recovered ? "true" : "false", kp.checksum_match ? "true" : "false",
        kp.journal_identical ? "true" : "false",
        static_cast<unsigned long long>(kp.replayed),
        kp.pass ? "true" : "false", i + 1 < kills.size() ? "," : "");
  }
  json << "  ],\n";
  json << StrFormat(
      "  \"admission\": {\"tenants\": %zu, \"lost\": %zu, \"sheds\": %llu, "
      "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f, \"pass\": %s},\n",
      admission.tenants, admission.lost,
      static_cast<unsigned long long>(admission.sheds), admission.p50_ms,
      admission.p99_ms, admission.max_ms, admission.pass ? "true" : "false");
  json << StrFormat(
      "  \"pass\": {\"faults\": %s, \"resume\": %s, \"admission\": %s}\n}\n",
      faults.pass ? "true" : "false", resume_pass ? "true" : "false",
      admission.pass ? "true" : "false");
  if (AtomicWriteFile("BENCH_service.json", json.str()).ok()) {
    std::printf("wrote BENCH_service.json\n");
  }

  TableWriter csv({"gate", "metric", "value"});
  csv.AddRow({"faults", "tenants", StrFormat("%zu", faults.tenants)});
  csv.AddRow({"faults", "fatals", StrFormat("%zu", faults.fatals)});
  csv.AddRow({"faults", "reconnects",
              StrFormat("%llu",
                        static_cast<unsigned long long>(faults.reconnects))});
  for (const KillPoint& kp : kills) {
    csv.AddRow(
        {"resume",
         StrFormat("kill_%llums_pass",
                   static_cast<unsigned long long>(kp.kill_after_ms)),
         kp.pass ? "1" : "0"});
  }
  csv.AddRow({"admission", "p50_ms", StrFormat("%.3f", admission.p50_ms)});
  csv.AddRow({"admission", "p99_ms", StrFormat("%.3f", admission.p99_ms)});
  csv.AddRow({"admission", "sheds",
              StrFormat("%llu",
                        static_cast<unsigned long long>(admission.sheds))});
  if (csv.WriteCsvFile("BENCH_service.csv").ok()) {
    std::printf("wrote BENCH_service.csv\n");
  }

  // Service robustness gates smoke runs too (crashsafety precedent).
  return pass ? 0 : 1;
}
