// Trace-as-oracle metamorphic tests (DESIGN.md §9): a session killed at a
// journal commit boundary and resumed must emit a span tree whose
// StructuralTreeString() is bit-identical to the uninterrupted session's —
// replayed trials synthesize their measure/retry/remeasure children from
// the journal's counter deltas, and the live journal_append and replay
// spans share the structural name "commit". Deterministic metrics (every
// name not containing "host", minus the replay bookkeeping) must survive a
// resume bit-identically too.

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/journal.h"
#include "core/registry.h"
#include "core/session.h"
#include "core/supervisor.h"
#include "core/knowledge_repo.h"
#include "systems/fault_injector.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"
#include "tuners/warm_start.h"

namespace atune {
namespace {

constexpr uint64_t kSeed = 11;
constexpr double kFaultRate = 0.2;

/// Deterministic numerically-unstable primary for supervised-resume cases:
/// evaluates three configs per Tune() pass, then reports kInternal, so the
/// supervisor fails over on a fixed cadence and the kill-point matrix lands
/// inside fallback cooldowns.
class NumericallyFailingTuner : public Tuner {
 public:
  std::string name() const override { return "numerically-failing"; }
  TunerCategory category() const override {
    return TunerCategory::kMachineLearning;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override {
    for (int i = 0; i < 3; ++i) {
      if (evaluator->Exhausted()) return Status::OK();
      Vec u(evaluator->space().dims());
      for (double& v : u) v = rng->Uniform();
      auto obj = evaluator->Evaluate(evaluator->space().FromUnitVector(u));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) {
          return Status::OK();
        }
        return obj.status();
      }
    }
    return Status::Internal("synthetic model collapse");
  }
  std::string Report() const override { return ""; }
};

/// A deterministic knowledge snapshot for the warm-start kill matrix: two
/// completed noise-free historic sessions, rebuilt identically on every
/// call (the same pinned snapshot a daemon restart would reload from its
/// .meta shard list).
const std::vector<KnowledgeRecord>& WarmSnapshot() {
  static const std::vector<KnowledgeRecord>* snapshot = [] {
    auto* records = new std::vector<KnowledgeRecord>();
    TunerRegistry registry;
    RegisterBuiltinTuners(&registry);
    auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/false);
    const Workload workloads[] = {MakeDbmsOlapWorkload(1.0),
                                  MakeDbmsOltpWorkload(1.0)};
    uint64_t seed = 900;
    for (const Workload& wl : workloads) {
      auto tuner = registry.Create("random-search");
      if (!tuner.ok()) continue;
      SessionOptions options;
      options.budget = TuningBudget{5};
      options.seed = seed;
      options.measure_default = false;
      auto outcome = RunTuningSession(tuner->get(), dbms.get(), wl, options);
      if (outcome.ok()) {
        records->push_back(MakeKnowledgeRecord(
            "hist-" + std::to_string(seed), "tenant", dbms->name(),
            dbms->space(), dbms->MetricNames(), wl, seed, 5, *outcome));
      }
      ++seed;
    }
    return records;
  }();
  return *snapshot;
}

/// Resolves a tuner spec: "supervised:failing" is the synthetic unstable
/// primary above under supervision; "supervised:<registry-name>" wraps a
/// registry tuner; "warm:<registry-name>" wraps one in a WarmStartTuner
/// seeded with the deterministic snapshot; anything else is a plain
/// registry lookup.
Result<std::unique_ptr<Tuner>> MakeTunerFor(const std::string& spec) {
  SupervisionPolicy policy;
  policy.failover_cooldown_trials = 3;
  if (spec == "supervised:failing") {
    return MakeSupervisedTuner(std::make_unique<NumericallyFailingTuner>(),
                               nullptr, policy);
  }
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  const std::string prefix = "supervised:";
  if (spec.rfind(prefix, 0) == 0) {
    auto inner = registry.Create(spec.substr(prefix.size()));
    if (!inner.ok()) return inner.status();
    return MakeSupervisedTuner(std::move(*inner), nullptr, policy);
  }
  const std::string warm_prefix = "warm:";
  if (spec.rfind(warm_prefix, 0) == 0) {
    return MakeWarmStartTuner(registry, spec.substr(warm_prefix.size()),
                              WarmSnapshot());
  }
  return registry.Create(spec);
}

std::string JournalPath(const std::string& name) {
  return ::testing::TempDir() + "/trace_resume_" + name + ".wal";
}

struct TracedRun {
  Status status = Status::OK();
  TuningOutcome outcome;
  std::string tree;     ///< StructuralTreeString() of the session's tracer
  size_t span_count = 0;
  bool ok() const { return status.ok(); }
};

// One traced+metered session against a noisy DBMS behind a transient fault
// injector, so replay has real repair spans to reconstruct.
TracedRun RunTraced(const std::string& tuner_name, const std::string& journal,
                    size_t budget, uint64_t kill_after, bool resume,
                    size_t parallelism = 1) {
  TracedRun run;
  auto tuner = MakeTunerFor(tuner_name);
  if (!tuner.ok()) {
    run.status = tuner.status();
    return run;
  }
  (*tuner)->set_parallelism(parallelism);
  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/true);
  FaultProfile profile;
  profile.transient_failure_rate = kFaultRate;
  FaultInjectingSystem faulty(dbms.get(), profile);

  Tracer tracer;
  MetricsRegistry metrics;
  SessionOptions options;
  options.budget = TuningBudget{budget};
  options.seed = kSeed;
  options.measure_default = false;
  options.journal_path = journal;
  options.interrupt_after_records = kill_after;
  options.tracer = &tracer;
  options.metrics = &metrics;
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto outcome =
      resume ? ResumeTuningSession(tuner->get(), &faulty, workload, options)
             : RunTuningSession(tuner->get(), &faulty, workload, options);
  run.tree = tracer.StructuralTreeString();
  run.span_count = tracer.span_count();
  if (!outcome.ok()) {
    run.status = outcome.status();
    return run;
  }
  run.outcome = std::move(*outcome);
  return run;
}

uint64_t RecordCount(const std::string& path) {
  auto recovered = TrialJournal::OpenForResume(path);
  return recovered.ok() ? recovered->records.size() : 0;
}

// The deterministic slice of a metrics snapshot, serialized for exact
// comparison. Excluded by design: names containing "host" (host wall-clock
// varies run to run) and the replay bookkeeping (trial.replayed /
// session.replayed_records), which describe HOW the session got here.
std::map<std::string, std::string> DeterministicMetrics(
    const MetricsSnapshot& snap) {
  std::map<std::string, std::string> out;
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    if (e.name.find("host") != std::string::npos) continue;
    if (e.name == "trial.replayed") continue;
    if (e.name == "session.replayed_records") continue;
    out[e.name] = e.kind + "," + std::to_string(e.count) + "," +
                  TraceDouble(e.value) + "," + TraceDouble(e.sum) + "," +
                  TraceDouble(e.min) + "," + TraceDouble(e.max) + "," +
                  TraceDouble(e.mean) + "," + TraceDouble(e.p50) + "," +
                  TraceDouble(e.p90) + "," + TraceDouble(e.p99);
  }
  return out;
}

void RunMetamorphicCase(const std::string& tuner_name, size_t budget,
                        size_t parallelism) {
  const std::string path = JournalPath(tuner_name + "_p" +
                                       std::to_string(parallelism));
  std::remove(path.c_str());
  TracedRun baseline = RunTraced(tuner_name, path, budget, /*kill_after=*/0,
                                 /*resume=*/false, parallelism);
  ASSERT_TRUE(baseline.ok()) << baseline.status.message();
  ASSERT_GT(baseline.span_count, 0u);
  // The tree is a real session tree, not a degenerate stub.
  EXPECT_EQ(baseline.tree.find("session{"), 0u);
  EXPECT_NE(baseline.tree.find("trial{"), std::string::npos);
  EXPECT_NE(baseline.tree.find("commit"), std::string::npos);
  EXPECT_NE(baseline.tree.find("measure"), std::string::npos);
  const uint64_t records = RecordCount(path);
  std::remove(path.c_str());
  ASSERT_GE(records, 2u);

  for (uint64_t kill : {uint64_t{1}, records / 2, records - 1}) {
    if (kill == 0 || kill >= records) continue;
    SCOPED_TRACE(tuner_name + " killed after " + std::to_string(kill) + "/" +
                 std::to_string(records) + " records");
    std::remove(path.c_str());
    TracedRun interrupted = RunTraced(tuner_name, path, budget, kill,
                                      /*resume=*/false, parallelism);
    ASSERT_FALSE(interrupted.ok());
    EXPECT_EQ(interrupted.status.code(), StatusCode::kAborted);
    // The killed run's tree is a strict prefix in spirit, never larger.
    EXPECT_LT(interrupted.span_count, baseline.span_count);

    TracedRun resumed = RunTraced(tuner_name, path, budget, /*kill_after=*/0,
                                  /*resume=*/true, parallelism);
    ASSERT_TRUE(resumed.ok()) << resumed.status.message();
    // The metamorphic relation: bit-identical structural trees.
    EXPECT_EQ(baseline.tree, resumed.tree);
    EXPECT_EQ(baseline.span_count, resumed.span_count);
    // And bit-identical deterministic metrics.
    EXPECT_EQ(DeterministicMetrics(baseline.outcome.metrics),
              DeterministicMetrics(resumed.outcome.metrics));
    std::remove(path.c_str());
  }
}

TEST(TraceResumeTest, RandomSearchResumesWithIdenticalTrace) {
  RunMetamorphicCase("random-search", /*budget=*/8, /*parallelism=*/1);
}

TEST(TraceResumeTest, ITunedResumesWithIdenticalTrace) {
  // Budget 12 = LHS design 8 + GP iterations, so the tree contains gp_fit
  // and acquisition spans that must recur identically on resume (the tuner
  // re-runs them against replayed observations).
  const std::string path = JournalPath("ituned_probe");
  std::remove(path.c_str());
  TracedRun probe = RunTraced("ituned", path, /*budget=*/12, /*kill_after=*/0,
                              /*resume=*/false);
  ASSERT_TRUE(probe.ok()) << probe.status.message();
  EXPECT_NE(probe.tree.find("gp_fit{"), std::string::npos);
  EXPECT_NE(probe.tree.find("acquisition{"), std::string::npos);
  std::remove(path.c_str());
  RunMetamorphicCase("ituned", /*budget=*/12, /*parallelism=*/1);
}

TEST(TraceResumeTest, BatchedSessionResumesWithIdenticalTrace) {
  // parallelism 2 drives Evaluator::EvaluateBatch: batch spans with lane
  // coordinates, cross-thread measure spans, and mid-batch kill points
  // (recovery may drop a trailing incomplete batch — the tree must still
  // converge to the uninterrupted one).
  const std::string path = JournalPath("batch_probe");
  std::remove(path.c_str());
  TracedRun probe = RunTraced("random-search", path, /*budget=*/8,
                              /*kill_after=*/0, /*resume=*/false,
                              /*parallelism=*/2);
  ASSERT_TRUE(probe.ok()) << probe.status.message();
  EXPECT_NE(probe.tree.find("batch{size="), std::string::npos);
  std::remove(path.c_str());
  RunMetamorphicCase("random-search", /*budget=*/8, /*parallelism=*/2);
}

TEST(TraceResumeTest, ReplayedTreeContainsSynthesizedRepairSpans) {
  // With a 20% transient fault rate and budget 8 the baseline virtually
  // always retries at least once; the resumed tree must contain the same
  // retry spans, synthesized from journal counter deltas rather than
  // re-executed. (If this draw ever changes, the structural equality in
  // RunMetamorphicCase still covers the guarantee; this test just pins the
  // interesting case visibly.)
  const std::string path = JournalPath("repair");
  std::remove(path.c_str());
  TracedRun baseline = RunTraced("grid-search", path, /*budget=*/10,
                                 /*kill_after=*/0, /*resume=*/false);
  ASSERT_TRUE(baseline.ok()) << baseline.status.message();
  if (baseline.outcome.retried_runs == 0) {
    GTEST_SKIP() << "fault draw produced no retries";
  }
  ASSERT_NE(baseline.tree.find("retry"), std::string::npos);
  const uint64_t records = RecordCount(path);
  ASSERT_GE(records, 2u);
  std::remove(path.c_str());
  TracedRun interrupted = RunTraced("grid-search", path, /*budget=*/10,
                                    /*kill_after=*/records - 1,
                                    /*resume=*/false);
  ASSERT_FALSE(interrupted.ok());
  TracedRun resumed = RunTraced("grid-search", path, /*budget=*/10,
                                /*kill_after=*/0, /*resume=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.status.message();
  EXPECT_EQ(baseline.tree, resumed.tree);
  EXPECT_EQ(baseline.outcome.retried_runs, resumed.outcome.retried_runs);
  std::remove(path.c_str());
}

TEST(TraceResumeTest, SupervisedHealthySessionResumesWithIdenticalTrace) {
  // The supervision layer's guard hooks run on both the live and the replay
  // path; on a healthy tuner they must not perturb the span tree at all.
  RunMetamorphicCase("supervised:random-search", /*budget=*/8,
                     /*parallelism=*/1);
}

TEST(TraceResumeTest, SupervisedFailoverResumesWithIdenticalTrace) {
  // The unstable primary collapses every 3 trials, so the session contains
  // several failover episodes and the kill-point matrix {1, n/2, n-1} kills
  // it mid-cooldown (while the fallback holds the lease). Replay must
  // reconstruct the same failover decisions — they are a pure function of
  // the journaled observations — and re-emit an identical tree, failover
  // spans included.
  const std::string path = JournalPath("supervised_failing_probe");
  std::remove(path.c_str());
  TracedRun probe = RunTraced("supervised:failing", path, /*budget=*/10,
                              /*kill_after=*/0, /*resume=*/false);
  ASSERT_TRUE(probe.ok()) << probe.status.message();
  EXPECT_NE(probe.tree.find("failover{"), std::string::npos);
  std::remove(path.c_str());
  RunMetamorphicCase("supervised:failing", /*budget=*/10, /*parallelism=*/1);
}

TEST(TraceResumeTest, WarmStartedSessionResumesWithIdenticalTrace) {
  // The --warm-start kill matrix: the warm phase's probe and seed trials
  // are ordinary journaled evaluations, and the mapping is a pure function
  // of (snapshot, probe metrics), so killing the session during or after
  // the warm phase and resuming against the same pinned snapshot must
  // re-derive the identical warm schedule — and an identical span tree.
  ASSERT_GE(WarmSnapshot().size(), 2u);
  RunMetamorphicCase("warm:random-search", /*budget=*/10, /*parallelism=*/1);
}

TEST(TraceResumeTest, SupervisedBatchedSessionResumesWithIdenticalTrace) {
  // Supervision over the batched evaluation path: admission happens for the
  // whole submitted batch before truncation, so mid-batch kills must still
  // converge to the uninterrupted tree.
  RunMetamorphicCase("supervised:random-search", /*budget=*/8,
                     /*parallelism=*/2);
}

}  // namespace
}  // namespace atune
