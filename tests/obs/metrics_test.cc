// Metrics-registry tests (DESIGN.md §9): concurrent recording must be
// exact, not approximately right — counters and integer-valued gauge/
// histogram sums have no legitimate reason to drop updates. The concurrent
// cases double as the tsan workload for the atomic hot paths
// (tools/run_checks.sh --tsan).

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace atune {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kPerThread = 10000;

TEST(MetricsTest, CounterConcurrentIncrementsAreExact) {
  Counter counter;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (size_t t = 0; t < kThreads; ++t) {
      futures.push_back(pool.Submit([&counter]() {
        for (size_t i = 0; i < kPerThread; ++i) counter.Increment();
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MetricsTest, GaugeConcurrentAddsAreExact) {
  // Integer-valued doubles up to 2^53 add exactly, so the CAS loop must
  // account for every one of the N*M increments.
  Gauge gauge;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (size_t t = 0; t < kThreads; ++t) {
      futures.push_back(pool.Submit([&gauge]() {
        for (size_t i = 0; i < kPerThread; ++i) gauge.Add(1.0);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(gauge.Value(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsTest, GaugeSetOverwrites) {
  Gauge gauge;
  gauge.Add(5.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
}

TEST(MetricsTest, HistogramConcurrentRecordingIsExact) {
  // Each thread records the integers 1..8; count, sum, min and max are all
  // exactly determined regardless of interleaving.
  Histogram hist;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (size_t t = 0; t < kThreads; ++t) {
      futures.push_back(pool.Submit([&hist]() {
        for (size_t i = 0; i < kPerThread; ++i) {
          hist.Record(static_cast<double>(i % 8 + 1));
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // Per thread: kPerThread/8 full cycles of 1+2+...+8 = 36.
  EXPECT_EQ(snap.sum, static_cast<double>(kThreads * (kPerThread / 8) * 36));
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 8.0);
  uint64_t in_buckets = 0;
  for (uint64_t c : snap.buckets) in_buckets += c;
  EXPECT_EQ(in_buckets, snap.count);
}

TEST(MetricsTest, HistogramBucketsByPowerOfTwo) {
  Histogram hist;
  // Bucket i covers [2^(i-20), 2^(i-20+1)): 0.75 lands in [0.5, 1) = 19,
  // 1.0 in [1, 2) = 20, 3.0 in [2, 4) = 21.
  hist.Record(0.75);
  hist.Record(1.0);
  hist.Record(3.0);
  Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.buckets[19], 1u);
  EXPECT_EQ(snap.buckets[20], 1u);
  EXPECT_EQ(snap.buckets[21], 1u);
  EXPECT_EQ(Histogram::Snapshot::BucketBound(19), 1.0);
  EXPECT_EQ(Histogram::Snapshot::BucketBound(20), 2.0);
}

TEST(MetricsTest, HistogramNonPositiveValuesLandInBucketZero) {
  Histogram hist;
  hist.Record(0.0);
  hist.Record(-4.0);
  Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, -4.0);
  EXPECT_EQ(snap.max, 0.0);
}

TEST(MetricsTest, HistogramQuantilesClampToObservedExtremes) {
  Histogram hist;
  hist.Record(10.0);
  Histogram::Snapshot snap = hist.Snap();
  // With one sample, every quantile is that sample — the exact min/max
  // beat the bucket-edge interpolation.
  EXPECT_EQ(snap.Quantile(0.0), 10.0);
  EXPECT_EQ(snap.Quantile(0.5), 10.0);
  EXPECT_EQ(snap.Quantile(1.0), 10.0);
  EXPECT_EQ(snap.mean(), 10.0);
}

TEST(MetricsTest, EmptyHistogramSnapshotIsZeroes) {
  Histogram hist;
  Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("trial.total");
  Histogram* h1 = registry.GetHistogram("trial.latency_seconds");
  Gauge* g1 = registry.GetGauge("budget.used_units");
  // Same name, same pointer — call sites cache them and record lock-free.
  EXPECT_EQ(registry.GetCounter("trial.total"), c1);
  EXPECT_EQ(registry.GetHistogram("trial.latency_seconds"), h1);
  EXPECT_EQ(registry.GetGauge("budget.used_units"), g1);
}

TEST(MetricsTest, RegistryConcurrentGetAndRecord) {
  // Threads race registration of the same names against recording through
  // previously fetched pointers; the total must still be exact.
  MetricsRegistry registry;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (size_t t = 0; t < kThreads; ++t) {
      futures.push_back(pool.Submit([&registry]() {
        Counter* counter = registry.GetCounter("shared.counter");
        Histogram* hist = registry.GetHistogram("shared.hist");
        for (size_t i = 0; i < kPerThread; ++i) {
          counter->Increment();
          hist->Record(1.0);
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.entries[0].name, "shared.counter");
  EXPECT_EQ(snap.entries[0].count, kThreads * kPerThread);
  EXPECT_EQ(snap.entries[1].name, "shared.hist");
  EXPECT_EQ(snap.entries[1].count, kThreads * kPerThread);
  EXPECT_EQ(snap.entries[1].sum, static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsTest, SnapshotIsSortedByNameWithStableJson) {
  MetricsRegistry registry;
  registry.GetGauge("zz.gauge")->Set(1.5);
  registry.GetCounter("aa.counter")->Increment(3);
  registry.GetHistogram("mm.hist")->Record(2.0);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "aa.counter");
  EXPECT_EQ(snap.entries[1].name, "mm.hist");
  EXPECT_EQ(snap.entries[2].name, "zz.gauge");
  const std::string json = snap.ToJson();
  EXPECT_EQ(json,
            "{\n"
            "  \"aa.counter\": {\"kind\": \"counter\", \"count\": 3},\n"
            "  \"mm.hist\": {\"kind\": \"histogram\", \"count\": 1, "
            "\"sum\": 2, \"min\": 2, \"max\": 2, \"mean\": 2, "
            "\"p50\": 2, \"p90\": 2, \"p99\": 2},\n"
            "  \"zz.gauge\": {\"kind\": \"gauge\", \"value\": 1.5}\n"
            "}\n");
  const std::string table = snap.SummaryTable();
  EXPECT_NE(table.find("aa.counter"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
}

TEST(MetricsTest, PublishJsonWritesSnapshotAtomically) {
  MetricsRegistry registry;
  registry.GetCounter("published.counter")->Increment(7);
  const std::string path = ::testing::TempDir() + "/metrics_publish.json";
  std::remove(path.c_str());
  ASSERT_TRUE(registry.PublishJson(path).ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[512];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(contents, registry.Snapshot().ToJson());
  std::remove(path.c_str());
}

TEST(MetricsTest, ScopedMetricsInstallNullKeepsCurrent) {
  MetricsRegistry registry;
  ScopedMetricsInstall outer(&registry);
  EXPECT_EQ(CurrentMetrics(), &registry);
  {
    ScopedMetricsInstall inner(nullptr);
    EXPECT_EQ(CurrentMetrics(), &registry);
  }
  EXPECT_EQ(CurrentMetrics(), &registry);
}

}  // namespace
}  // namespace atune
