// Golden-output tests for the trace exporters. An injected fake clock makes
// timestamps deterministic (1 µs per NowNs() call), so the Chrome
// trace_event JSON, the --trace-summary table, and the structural oracle
// can be compared byte-for-byte. If one of these fails after an intentional
// format change, update the golden here AND bump DESIGN.md §9 — external
// tooling parses these formats.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace atune {
namespace {

// The exemplar tree every exporter golden below is rendered from:
//   session{tuner=demo} > trial{cost=1} > {measure, journal_append}.
// Each NowNs() call advances the fake clock by 1000 ns, so spans get
// timestamps 1000, 2000, ... in construction/destruction order.
void RecordExemplarSession(Tracer* tracer) {
  ScopedSpan session(tracer, "session");
  session.AddArg("tuner", "demo");
  {
    ScopedSpan trial(tracer, "trial", session.id());
    trial.AddArg("cost", TraceDouble(1.0));
    { ScopedSpan measure(tracer, "measure", trial.id()); }
    tracer->RecordSynthetic(trial.id(), "journal_append", "commit", {});
  }
}

TEST(TraceExportTest, ChromeTraceJsonMatchesGolden) {
  uint64_t tick = 0;
  Tracer tracer([&tick]() { return tick += 1000; });
  RecordExemplarSession(&tracer);
  EXPECT_EQ(
      tracer.ChromeTraceJson(),
      "{\"traceEvents\":[\n"
      "{\"name\":\"session\",\"cat\":\"atune\",\"ph\":\"X\",\"ts\":1.000,"
      "\"dur\":6.000,\"pid\":1,\"tid\":0,\"args\":{\"span_id\":1,"
      "\"parent_id\":0,\"tuner\":\"demo\"}},\n"
      "{\"name\":\"trial\",\"cat\":\"atune\",\"ph\":\"X\",\"ts\":2.000,"
      "\"dur\":4.000,\"pid\":1,\"tid\":0,\"args\":{\"span_id\":2,"
      "\"parent_id\":1,\"cost\":\"1\"}},\n"
      "{\"name\":\"measure\",\"cat\":\"atune\",\"ph\":\"X\",\"ts\":3.000,"
      "\"dur\":1.000,\"pid\":1,\"tid\":0,\"args\":{\"span_id\":3,"
      "\"parent_id\":2}},\n"
      "{\"name\":\"journal_append\",\"cat\":\"atune\",\"ph\":\"X\","
      "\"ts\":5.000,\"dur\":0.000,\"pid\":1,\"tid\":0,\"args\":{"
      "\"span_id\":4,\"parent_id\":2}}\n"
      "]}\n");
}

TEST(TraceExportTest, SummaryTableMatchesGolden) {
  uint64_t tick = 0;
  Tracer tracer([&tick]() { return tick += 1000; });
  RecordExemplarSession(&tracer);
  EXPECT_EQ(
      tracer.SummaryTable(),
      "span                count     total-ms      mean-ms       max-ms\n"
      "journal_append          1        0.000        0.000        0.000\n"
      "measure                 1        0.001        0.001        0.001\n"
      "session                 1        0.006        0.006        0.006\n"
      "trial                   1        0.004        0.004        0.004\n");
}

TEST(TraceExportTest, StructuralTreeMatchesGolden) {
  uint64_t tick = 0;
  Tracer tracer([&tick]() { return tick += 1000; });
  RecordExemplarSession(&tracer);
  // No timestamps at all: the live journal_append renders under its
  // structural name "commit", and siblings sort by their rendering.
  EXPECT_EQ(tracer.StructuralTreeString(),
            "session{tuner=demo}\n"
            "  trial{cost=1}\n"
            "    commit\n"
            "    measure\n");
}

TEST(TraceExportTest, WriteChromeTraceIsExactFileImage) {
  uint64_t tick = 0;
  Tracer tracer([&tick]() { return tick += 1000; });
  RecordExemplarSession(&tracer);
  const std::string path = ::testing::TempDir() + "/trace_export_golden.json";
  std::remove(path.c_str());
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[512];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(contents, tracer.ChromeTraceJson());
  std::remove(path.c_str());
}

TEST(TraceExportTest, JsonEscapesSpecialCharactersInArgs) {
  uint64_t tick = 0;
  Tracer tracer([&tick]() { return tick += 1000; });
  tracer.RecordSynthetic(0, "note", nullptr,
                         {{"text", "a\"b\\c\nd\te"}, {"ctl", "\x01"}});
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"text\":\"a\\\"b\\\\c\\nd\\te\""), std::string::npos);
  EXPECT_NE(json.find("\"ctl\":\"\\u0001\""), std::string::npos);
}

TEST(TraceExportTest, TraceDoubleRoundTripsBits) {
  // strtod, not std::stod: stod throws out_of_range on the ERANGE that
  // glibc legitimately sets for subnormals like 5e-324.
  for (double v : {1.0, 0.1, 1.0 / 3.0, 1e300, 5e-324, 139.16999999999999}) {
    EXPECT_EQ(std::strtod(TraceDouble(v).c_str(), nullptr), v)
        << TraceDouble(v);
  }
}

TEST(TraceExportTest, EmptyTracerExportsAreWellFormed) {
  Tracer tracer;
  EXPECT_EQ(tracer.ChromeTraceJson(), "{\"traceEvents\":[\n]}\n");
  EXPECT_EQ(tracer.StructuralTreeString(), "");
  EXPECT_EQ(
      tracer.SummaryTable(),
      "span                count     total-ms      mean-ms       max-ms\n");
  EXPECT_EQ(tracer.span_count(), 0u);
}

}  // namespace
}  // namespace atune
