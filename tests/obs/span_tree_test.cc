// Property tests for the span forest (DESIGN.md §9): whatever a random
// thread-pool workload does — nested scopes, cross-thread lane parents,
// synthetic spans racing from every worker — the recorded spans must form a
// well-formed forest (unique ids, every parent recorded or root, children
// contained in their same-thread parents) and StructuralTreeString() must
// render every span exactly once. These run under the tsan preset too
// (tools/run_checks.sh --tsan), which is the real point of the racy ones.

#include <algorithm>
#include <future>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace atune {
namespace {

// Structural well-formedness of a snapshot: ids unique and nonzero,
// parents either root (0) or some recorded span.
void ExpectWellFormedForest(const std::vector<SpanRecord>& spans) {
  std::set<uint64_t> ids;
  for (const SpanRecord& s : spans) {
    EXPECT_NE(s.id, 0u);
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
    EXPECT_LE(s.start_ns, s.end_ns);
  }
  for (const SpanRecord& s : spans) {
    if (s.parent_id != 0) {
      EXPECT_TRUE(ids.count(s.parent_id))
          << "span " << s.id << " has unrecorded parent " << s.parent_id;
    }
  }
}

TEST(SpanTreeTest, NullTracerScopedSpanIsInert) {
  ScopedSpan span(nullptr, "anything");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.AddArg("key", "value");  // must not crash
}

TEST(SpanTreeTest, ThreadLocalNestingParentsToInnermostOpenSpan) {
  Tracer tracer;
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    ScopedSpan outer(&tracer, "outer");
    outer_id = outer.id();
    {
      ScopedSpan inner(&tracer, "inner");
      inner_id = inner.id();
    }
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  std::map<uint64_t, SpanRecord> by_id;
  for (const SpanRecord& s : spans) by_id[s.id] = s;
  EXPECT_EQ(by_id[outer_id].parent_id, 0u);
  EXPECT_EQ(by_id[inner_id].parent_id, outer_id);
}

TEST(SpanTreeTest, TlsNestingIsPerTracer) {
  // An open span on tracer A must never become the parent of a span on
  // tracer B (the TLS stack is keyed by tracer).
  Tracer a, b;
  {
    ScopedSpan on_a(&a, "a_root");
    ScopedSpan on_b(&b, "b_root");
    ScopedSpan nested_b(&b, "b_child");
  }
  for (const SpanRecord& s : a.Snapshot()) EXPECT_EQ(s.parent_id, 0u);
  auto spans_b = b.Snapshot();
  ASSERT_EQ(spans_b.size(), 2u);
  // b_child (ends first) parents to b_root, which is a root of B's forest.
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& s : spans_b) by_name[s.name] = s;
  EXPECT_EQ(by_name["b_root"].parent_id, 0u);
  EXPECT_EQ(by_name["b_child"].parent_id, by_name["b_root"].id);
}

TEST(SpanTreeTest, ExplicitParentStitchesAcrossThreads) {
  // The batch-lane pattern: the main thread holds a lane span open while a
  // pool worker records a child against it by explicit id.
  Tracer tracer;
  {
    ScopedSpan batch(&tracer, "batch");
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 4; ++i) {
      futures.push_back(pool.Submit([&tracer, parent = batch.id()]() {
        ScopedSpan measure(&tracer, "measure", parent);
      }));
    }
    for (auto& f : futures) f.get();
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  ExpectWellFormedForest(spans);
  uint64_t batch_id = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "batch") batch_id = s.id;
  }
  for (const SpanRecord& s : spans) {
    if (s.name == "measure") {
      EXPECT_EQ(s.parent_id, batch_id);
    }
  }
  // Exactly one line per span, children indented under the batch root.
  std::string tree = tracer.StructuralTreeString();
  EXPECT_EQ(std::count(tree.begin(), tree.end(), '\n'), 5);
  EXPECT_EQ(tree.find("batch\n"), 0u);
}

// The headline property: a randomized thread-pool workload — every task
// opens a random-depth nest of scoped spans with random names/args and
// records synthetic children — always yields a well-formed forest whose
// same-thread children are contained in their parents' intervals.
TEST(SpanTreeTest, RandomThreadPoolWorkloadYieldsWellFormedForest) {
  constexpr int kTasks = 64;
  const char* kNames[] = {"alpha", "beta", "gamma", "delta"};
  for (uint64_t seed : {1u, 7u, 42u}) {
    Tracer tracer;
    {
      ThreadPool pool(4);
      std::vector<std::future<void>> futures;
      for (int t = 0; t < kTasks; ++t) {
        futures.push_back(pool.Submit([&tracer, seed, t, &kNames]() {
          Rng rng(DeriveSeed(seed, static_cast<uint64_t>(t)));
          std::vector<std::unique_ptr<ScopedSpan>> nest;
          size_t depth = static_cast<size_t>(rng.UniformInt(1, 4));
          for (size_t d = 0; d < depth; ++d) {
            nest.push_back(std::make_unique<ScopedSpan>(
                &tracer, kNames[rng.UniformInt(0, 3)]));
            if (rng.Bernoulli(0.5)) {
              nest.back()->AddArg("task", std::to_string(t));
            }
            if (rng.Bernoulli(0.25)) {
              tracer.RecordSynthetic(nest.back()->id(), "synthetic", nullptr,
                                     {{"depth", std::to_string(d)}});
            }
          }
          while (!nest.empty()) nest.pop_back();  // innermost-first
        }));
      }
      for (auto& f : futures) f.get();
    }
    auto spans = tracer.Snapshot();
    ASSERT_GE(spans.size(), static_cast<size_t>(kTasks));
    ExpectWellFormedForest(spans);
    std::map<uint64_t, SpanRecord> by_id;
    for (const SpanRecord& s : spans) by_id[s.id] = s;
    for (const SpanRecord& s : spans) {
      if (s.parent_id == 0) continue;
      const SpanRecord& parent = by_id[s.parent_id];
      // Every parent here is same-thread (TLS nesting or a synthetic child
      // recorded while its parent scope was open), so intervals nest.
      EXPECT_EQ(s.thread_index, parent.thread_index);
      EXPECT_GE(s.start_ns, parent.start_ns);
      EXPECT_LE(s.end_ns, parent.end_ns);
    }
    // The oracle renders each span exactly once.
    std::string tree = tracer.StructuralTreeString();
    EXPECT_EQ(static_cast<size_t>(
                  std::count(tree.begin(), tree.end(), '\n')),
              spans.size());
  }
}

TEST(SpanTreeTest, OrphanedSpansRenderAsRoots) {
  // A span whose parent was never recorded (e.g. still open at snapshot
  // time) must show up in the oracle as a root, not vanish.
  Tracer tracer;
  uint64_t missing_parent = 777;
  tracer.RecordSynthetic(missing_parent, "orphan", nullptr, {});
  std::string tree = tracer.StructuralTreeString();
  EXPECT_EQ(tree, "orphan\n");
}

TEST(SpanTreeTest, StructuralTreeSortsConcurrentSiblingsCanonically) {
  // Two tracers record the same logical children in opposite end orders
  // (as concurrent lanes do); the canonical rendering must be identical.
  auto build = [](bool reversed) {
    auto tracer = std::make_unique<Tracer>();
    ScopedSpan parent(tracer.get(), "parent");
    if (reversed) {
      tracer->RecordSynthetic(parent.id(), "z_lane", nullptr, {});
      tracer->RecordSynthetic(parent.id(), "a_lane", nullptr, {});
    } else {
      tracer->RecordSynthetic(parent.id(), "a_lane", nullptr, {});
      tracer->RecordSynthetic(parent.id(), "z_lane", nullptr, {});
    }
    return tracer;
  };
  auto forward = build(false);
  auto backward = build(true);
  EXPECT_EQ(forward->StructuralTreeString(), backward->StructuralTreeString());
}

TEST(SpanTreeTest, ScopedTracerInstallNullKeepsCurrent) {
  Tracer tracer;
  ScopedTracerInstall outer(&tracer);
  EXPECT_EQ(CurrentTracer(), &tracer);
  {
    // An untraced session starting concurrently must not clobber us.
    ScopedTracerInstall inner(nullptr);
    EXPECT_EQ(CurrentTracer(), &tracer);
  }
  EXPECT_EQ(CurrentTracer(), &tracer);
}

}  // namespace
}  // namespace atune
