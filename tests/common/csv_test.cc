#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace atune {
namespace {

TEST(TableWriterTest, WritesCsvWithEscaping) {
  TableWriter t({"name", "value"});
  t.AddRow({"plain", "1"});
  t.AddRow({"with,comma", "quote\"inside"});
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",\"quote\"\"inside\"\n");
}

TEST(TableWriterTest, RowsPaddedToHeaderWidth) {
  TableWriter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableWriterTest, PrettyAlignsColumns) {
  TableWriter t({"k", "longer"});
  t.AddRow({"wide-cell", "x"});
  std::ostringstream os;
  t.WritePretty(os);
  std::string out = os.str();
  // Box borders present and all lines equal length.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '+');
  size_t first_nl = out.find('\n');
  std::string first = out.substr(0, first_nl);
  size_t pos = 0;
  while (pos < out.size()) {
    size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, first.size());
    pos = nl + 1;
  }
}

}  // namespace
}  // namespace atune
