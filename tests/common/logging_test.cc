#include "common/logging.h"

#include <gtest/gtest.h>

namespace atune {
namespace {

TEST(LoggingTest, LevelThresholdIsGlobal) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingBelowThresholdIsCheapAndSafe) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Disabled messages must not evaluate into output (and must not crash on
  // arbitrary streamed types).
  ATUNE_LOG(Debug) << "invisible " << 42 << " " << 1.5;
  ATUNE_LOG(Info) << "also invisible";
  ATUNE_LOG(Error) << "visible in stderr (expected in test output)";
  SetLogLevel(original);
}

}  // namespace
}  // namespace atune
