#include "common/arena.h"

#include <cstdint>
#include <cstring>

#include "gtest/gtest.h"

namespace atune {
namespace {

TEST(ScratchArena, HandsOutAlignedDistinctStorage) {
  ScratchArena arena;
  double* a = arena.AllocateArray<double>(16);
  double* b = arena.AllocateArray<double>(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(double), 0u);
  // Writable, non-overlapping.
  for (int i = 0; i < 16; ++i) a[i] = i;
  for (int i = 0; i < 16; ++i) b[i] = -i;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], i);
}

TEST(ScratchArena, ResetReusesTheSameBlock) {
  ScratchArena arena;
  void* first = arena.Allocate(256);
  arena.Reset();
  void* second = arena.Allocate(256);
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ScratchArena, OverflowChainsThenCoalescesOnReset) {
  ScratchArena arena(128);
  arena.Allocate(100);
  arena.Allocate(4000);  // outgrows the first block
  EXPECT_GE(arena.block_count(), 2u);
  size_t high_water = arena.capacity();
  arena.Reset();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.capacity(), high_water);
  // Steady state: the same cycle now fits without growing.
  size_t cap = arena.capacity();
  arena.Allocate(100);
  arena.Allocate(4000);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(ScratchArena, UsedTracksBytesAndRewinds) {
  ScratchArena arena;
  EXPECT_EQ(arena.used(), 0u);
  arena.Allocate(64);
  EXPECT_GE(arena.used(), 64u);
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
}

TEST(ScratchArena, ZeroByteAllocationIsValid) {
  ScratchArena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
}

}  // namespace
}  // namespace atune
