#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace atune {
namespace {

TEST(RunningStatsTest, MatchesBatchFormulas) {
  RunningStats s;
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), Variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(b);  // empty other: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // empty this: adopt other
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(StatsTest, EmptyInputsAreSafe) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(Variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(empty, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(empty, empty), 0.0);
}

TEST(StatsTest, QuantileDegenerateInputs) {
  // Seed-era gap: the empty and 1-element paths were only exercised
  // indirectly through the Evaluator. Pin them down directly.
  EXPECT_DOUBLE_EQ(Quantile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 1.0), 0.0);
  std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(Quantile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(Quantile(one, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(Quantile(one, 1.0), 42.0);
  EXPECT_DOUBLE_EQ(Median(one), 42.0);
  // Out-of-range q clamps to the extremes instead of indexing out of
  // bounds.
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.5), 3.0);
}

TEST(StatsTest, UpperMedianIsAnActualSample) {
  // Odd n: the middle element. Even n: the UPPER of the two middle
  // elements — no interpolation (Median() would give 2.5 here).
  std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(UpperMedianInPlace(&odd), 2.0);
  std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(UpperMedianInPlace(&even), 3.0);
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(UpperMedianInPlace(&empty), 0.0);
  std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(UpperMedianInPlace(&one), 7.0);
}

TEST(StatsTest, MadMatchesModifiedZScoreRecipe) {
  // {1,2,3,4,100}: upper median 3, |x-3| = {2,1,0,1,97}, upper median 1.
  MadResult r = Mad({1.0, 2.0, 3.0, 4.0, 100.0});
  EXPECT_DOUBLE_EQ(r.median, 3.0);
  EXPECT_DOUBLE_EQ(r.mad, 1.0);
  // The modified z-score of the outlier: 0.6745 * 97 / 1.
  EXPECT_NEAR(0.6745 * std::abs(100.0 - r.median) / r.mad, 65.4265, 1e-9);
}

TEST(StatsTest, MadDegenerateInputs) {
  MadResult empty = Mad({});
  EXPECT_DOUBLE_EQ(empty.median, 0.0);
  EXPECT_DOUBLE_EQ(empty.mad, 0.0);
  MadResult one = Mad({5.0});
  EXPECT_DOUBLE_EQ(one.median, 5.0);
  EXPECT_DOUBLE_EQ(one.mad, 0.0);
  // Constant history: MAD 0 (the Evaluator floors it before dividing).
  MadResult constant = Mad({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(constant.median, 2.0);
  EXPECT_DOUBLE_EQ(constant.mad, 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSideIsZero) {
  std::vector<double> xs = {1, 2, 3};
  std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, c), 0.0);
}

TEST(StatsTest, SpearmanMonotoneNonlinearIsOne) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, RanksAverageTies) {
  std::vector<double> xs = {10.0, 20.0, 20.0, 30.0};
  std::vector<double> r = Ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(StatsTest, WelchTSeparatesDifferentMeans) {
  std::vector<double> a = {10.0, 10.1, 9.9, 10.05, 9.95};
  std::vector<double> b = {12.0, 12.1, 11.9, 12.05, 11.95};
  EXPECT_LT(WelchT(a, b), -10.0);
  EXPECT_GT(WelchT(b, a), 10.0);
  EXPECT_DOUBLE_EQ(WelchT(a, {1.0}), 0.0);  // too few samples
}

TEST(StatsTest, ConfidenceIntervalShrinksWithN) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.Add(i % 3);
  for (int i = 0; i < 1000; ++i) large.Add(i % 3);
  EXPECT_GT(ConfidenceHalfWidth95(small), ConfidenceHalfWidth95(large));
}

}  // namespace
}  // namespace atune
