// Tests for the injectable I/O environment (common/io_env.h): the
// deterministic fault schedules, the bounded WriteFully retry loop, and the
// previously-dead error branches of file_util's atomic publish — every
// injected fault must surface as a clean Status, never a crash or a torn
// published file.

#include "common/io_env.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/file_util.h"

namespace atune {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::string contents;
  Status s = IoEnv::Default()->ReadFileToString(path, &contents);
  EXPECT_TRUE(s.ok()) << s.message();
  return contents;
}

TEST(IoEnvTest, DefaultRoundTrip) {
  std::string path = TempPath("io_env_roundtrip.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(AtomicWriteFile(path, "hello durable world").ok());
  EXPECT_EQ(Slurp(path), "hello durable world");
  auto size = IoEnv::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 19u);
}

TEST(IoEnvTest, ScopedInstallRestoresPrevious) {
  FaultInjectingIoEnv env(IoEnv::Default(), IoFaultSchedule{});
  EXPECT_EQ(IoEnv::Current(), IoEnv::Default());
  {
    ScopedIoEnv install(&env);
    EXPECT_EQ(IoEnv::Current(), &env);
  }
  EXPECT_EQ(IoEnv::Current(), IoEnv::Default());
}

TEST(IoEnvTest, WriteFullyReassemblesShortWrites) {
  IoFaultSchedule schedule;
  // Every write is short until the rules run out: the frame goes out in
  // halves and WriteFully must stitch it together without burning retries.
  schedule.rules.push_back({IoOpKind::kWrite, 0, IoFaultKind::kShortWrite, 3});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);

  std::string path = TempPath("io_env_short.txt");
  std::remove(path.c_str());
  std::string payload(1000, 'x');
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  EXPECT_EQ(Slurp(path), payload);
  EXPECT_EQ(env.injected(IoFaultKind::kShortWrite), 3u);
}

TEST(IoEnvTest, WriteFullyRetriesEintrStorm) {
  IoFaultSchedule schedule;
  schedule.rules.push_back({IoOpKind::kWrite, 0, IoFaultKind::kEintr, 3});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);

  std::string path = TempPath("io_env_eintr.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(AtomicWriteFile(path, "survives the storm").ok());
  EXPECT_EQ(Slurp(path), "survives the storm");
  EXPECT_EQ(env.injected(IoFaultKind::kEintr), 3u);
  EXPECT_EQ(env.backoffs(), 3u);
}

TEST(IoEnvTest, WriteFullyExhaustsBoundedRetries) {
  IoFaultSchedule schedule;
  // A storm longer than any retry budget: the loop must stay bounded and
  // surface kIoError instead of spinning.
  schedule.rules.push_back({IoOpKind::kWrite, 0, IoFaultKind::kEintr, 100});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);

  std::string path = TempPath("io_env_exhaust.txt");
  std::remove(path.c_str());
  Status s = AtomicWriteFile(path, "never lands");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_LE(env.injected(IoFaultKind::kEintr),
            env.retry_policy().max_attempts);
  // The publish failed cleanly: no target, no leaked temp file.
  EXPECT_EQ(IoEnv::Default()->FileSize(path).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(IoEnv::Default()->FileSize(path + ".tmp").status().code(),
            StatusCode::kNotFound);
}

TEST(IoEnvTest, EnospcIsNotRetried) {
  IoFaultSchedule schedule;
  schedule.rules.push_back({IoOpKind::kWrite, 0, IoFaultKind::kEnospc, 1});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);

  std::string path = TempPath("io_env_enospc.txt");
  std::remove(path.c_str());
  Status s = AtomicWriteFile(path, "no space for this");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(env.injected(IoFaultKind::kEnospc), 1u);
  EXPECT_EQ(env.backoffs(), 0u);  // non-transient: zero retries
}

TEST(IoEnvTest, RenameFailureLeavesOldContentsIntact) {
  std::string path = TempPath("io_env_rename.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(AtomicWriteFile(path, "old contents").ok());

  IoFaultSchedule schedule;
  schedule.rules.push_back({IoOpKind::kRename, 0, IoFaultKind::kRenameFail,
                            1});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);
  Status s = AtomicWriteFile(path, "new contents");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // A failed publish is invisible to readers: the old file is untouched.
  EXPECT_EQ(Slurp(path), "old contents");
}

TEST(IoEnvTest, SyncFailureDropsUnsyncedBytes) {
  IoFaultSchedule schedule;
  schedule.rules.push_back({IoOpKind::kSync, 0, IoFaultKind::kSyncFail, 1});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);

  std::string path = TempPath("io_env_syncfail.txt");
  std::remove(path.c_str());
  Status s = AtomicWriteFile(path, "vanishes with the page cache");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // fsyncgate semantics: the write "succeeded" into the page cache, the
  // fsync failed, and the bytes are gone — the temp never got published.
  EXPECT_EQ(IoEnv::Default()->FileSize(path).status().code(),
            StatusCode::kNotFound);
}

TEST(IoEnvTest, StatShrinkLiesLowByOneByte) {
  std::string path = TempPath("io_env_stat.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(AtomicWriteFile(path, "1234567890").ok());

  IoFaultSchedule schedule;
  schedule.rules.push_back({IoOpKind::kStat, 0, IoFaultKind::kStatShrink, 1});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  auto lied = env.FileSize(path);
  ASSERT_TRUE(lied.ok());
  EXPECT_EQ(*lied, 9u);
  auto honest = env.FileSize(path);  // rule consumed: next stat is honest
  ASSERT_TRUE(honest.ok());
  EXPECT_EQ(*honest, 10u);
}

TEST(IoEnvTest, RateBasedFaultsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    IoFaultSchedule schedule;
    schedule.seed = seed;
    schedule.eintr_rate = 0.3;
    schedule.short_write_rate = 0.2;
    FaultInjectingIoEnv env(IoEnv::Default(), schedule);
    ScopedIoEnv install(&env);
    std::string path = TempPath("io_env_rate.txt");
    std::remove(path.c_str());
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(AtomicWriteFile(path, std::string(100 + i, 'y')).ok());
    }
    return std::make_pair(env.injected(IoFaultKind::kEintr),
                          env.injected(IoFaultKind::kShortWrite));
  };
  auto a = run(7);
  auto b = run(7);
  auto c = run(8);
  EXPECT_EQ(a, b);           // same seed, same op sequence -> same faults
  EXPECT_GT(a.first + a.second, 0u);  // the rates actually fire
  EXPECT_NE(a, c);           // different seed -> different draws (w.h.p.)
}

TEST(IoEnvTest, CommitTempFilePublishesThroughEnv) {
  std::string path = TempPath("io_env_commit.txt");
  std::string tmp = path + ".tmp";
  std::remove(path.c_str());

  IoFaultSchedule schedule;
  schedule.rules.push_back({IoOpKind::kRename, 0, IoFaultKind::kRenameFail,
                            1});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("streamed report", f);
  Status s = CommitTempFile(f, path);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(IoEnv::Default()->FileSize(path).status().code(),
            StatusCode::kNotFound);

  // And with the fault spent, the publish completes.
  f = std::fopen(tmp.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("streamed report", f);
  ASSERT_TRUE(CommitTempFile(f, path).ok());
  EXPECT_EQ(Slurp(path), "streamed report");
}

}  // namespace
}  // namespace atune
