#include "common/string_util.h"

#include <gtest/gtest.h>

namespace atune {
namespace {

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f s=%s", 3, 2.5, "hi"), "x=3 y=2.5 s=hi");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyTokens) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, ","), "a,bb,ccc");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim("nowhitespace"), "nowhitespace");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("buffer_pool_mb", "buffer"));
  EXPECT_FALSE(StartsWith("buf", "buffer"));
  EXPECT_TRUE(EndsWith("buffer_pool_mb", "_mb"));
  EXPECT_FALSE(EndsWith("mb", "_mb"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD-123"), "mixed-123");
}

TEST(StringUtilTest, DoubleToStringCompacts) {
  EXPECT_EQ(DoubleToString(64.0), "64");
  EXPECT_EQ(DoubleToString(0.75), "0.75");
  EXPECT_EQ(DoubleToString(-3.0), "-3");
}

TEST(StringUtilTest, BytesToStringPicksUnits) {
  EXPECT_EQ(BytesToString(512.0), "512 B");
  EXPECT_EQ(BytesToString(1024.0), "1.0 KB");
  EXPECT_EQ(BytesToString(64.0 * 1024 * 1024), "64.0 MB");
  EXPECT_EQ(BytesToString(1.5 * 1024 * 1024 * 1024), "1.5 GB");
}

}  // namespace
}  // namespace atune
