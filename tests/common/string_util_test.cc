#include "common/string_util.h"

#include <gtest/gtest.h>

namespace atune {
namespace {

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f s=%s", 3, 2.5, "hi"), "x=3 y=2.5 s=hi");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyTokens) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, ","), "a,bb,ccc");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim("nowhitespace"), "nowhitespace");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("buffer_pool_mb", "buffer"));
  EXPECT_FALSE(StartsWith("buf", "buffer"));
  EXPECT_TRUE(EndsWith("buffer_pool_mb", "_mb"));
  EXPECT_FALSE(EndsWith("mb", "_mb"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD-123"), "mixed-123");
}

TEST(StringUtilTest, DoubleToStringCompacts) {
  EXPECT_EQ(DoubleToString(64.0), "64");
  EXPECT_EQ(DoubleToString(0.75), "0.75");
  EXPECT_EQ(DoubleToString(-3.0), "-3");
}

TEST(StringUtilTest, BytesToStringPicksUnits) {
  EXPECT_EQ(BytesToString(512.0), "512 B");
  EXPECT_EQ(BytesToString(1024.0), "1.0 KB");
  EXPECT_EQ(BytesToString(64.0 * 1024 * 1024), "64.0 MB");
  EXPECT_EQ(BytesToString(1.5 * 1024 * 1024 * 1024), "1.5 GB");
}

TEST(StringUtilTest, StrFormatGrowsPastInternalBuffer) {
  // Seed-era gap: nothing exercised the second vsnprintf pass for results
  // longer than the stack buffer.
  std::string big(1000, 'x');
  std::string out = StrFormat("[%s]", big.c_str());
  EXPECT_EQ(out.size(), big.size() + 2);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
  EXPECT_EQ(out.substr(1, big.size()), big);
}

TEST(StringUtilTest, SplitDelimiterAtEnds) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, TrimEmptyAndInterior) {
  EXPECT_EQ(Trim(""), "");
  // Interior whitespace survives; only the edges are stripped.
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\r\na\r\n"), "a");
}

TEST(StringUtilTest, StartsEndsWithEmptyAffixes) {
  EXPECT_TRUE(StartsWith("anything", ""));
  EXPECT_TRUE(EndsWith("anything", ""));
  EXPECT_TRUE(StartsWith("", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_FALSE(EndsWith("", "x"));
  // Exact match counts as both prefix and suffix.
  EXPECT_TRUE(StartsWith("exact", "exact"));
  EXPECT_TRUE(EndsWith("exact", "exact"));
}

TEST(StringUtilTest, DoubleToStringEdgeValues) {
  EXPECT_EQ(DoubleToString(0.0), "0");
  EXPECT_EQ(DoubleToString(-0.75), "-0.75");
  // Max 6 significant decimals, trailing zeros trimmed.
  EXPECT_EQ(DoubleToString(0.1), "0.1");
  EXPECT_EQ(DoubleToString(1.0 / 3.0), "0.333333");
}

TEST(StringUtilTest, ToLowerLeavesNonAsciiAloneAndIsIdempotent) {
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("ALL_CAPS_123"), "all_caps_123");
  EXPECT_EQ(ToLower(ToLower("MiXeD")), ToLower("MiXeD"));
}

}  // namespace
}  // namespace atune
