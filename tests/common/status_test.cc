#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace atune {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  ATUNE_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  ATUNE_RETURN_IF_ERROR(fail ? Status::Aborted("stop") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace atune
