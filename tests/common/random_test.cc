#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace atune {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(123);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  const int64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) {
    int64_t r = rng.Zipf(n, 1.0);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, n);
    counts[r]++;
  }
  // Rank 0 should dominate rank 50 heavily under theta=1.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(RngTest, ZipfThetaZeroIsRoughlyUniform) {
  Rng rng(19);
  const int64_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(n, 0.0)]++;
  for (int64_t r = 0; r < n; ++r) {
    EXPECT_NEAR(counts[r] / 20000.0, 0.1, 0.02);
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_NEAR(counts[1] / 10000.0, 0.75, 0.03);
  EXPECT_EQ(counts[2], 0);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsZero) {
  Rng rng(29);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), 0u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(31);
  b.Next();  // consume the draw used to create the fork
  EXPECT_NE(child.Next(), b.Next());
}

TEST(RngTest, LogNormalMatchesMedian) {
  Rng rng(41);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.LogNormal(1.0, 0.5));
  std::sort(xs.begin(), xs.end());
  // Median of lognormal(mu, sigma) is e^mu.
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

}  // namespace
}  // namespace atune
