#ifndef ATUNE_TESTS_TESTING_UTIL_H_
#define ATUNE_TESTS_TESTING_UTIL_H_

#include <memory>

#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/hardware.h"
#include "systems/mapreduce/mr_system.h"
#include "systems/mapreduce/mr_workloads.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"

namespace atune {
namespace testing_util {

/// Small, fast system instances for tests. Noise is disabled so tests are
/// exactly reproducible; noisy behavior is covered by dedicated tests.

inline std::unique_ptr<SimulatedDbms> MakeTestDbms(uint64_t seed = 1,
                                                   bool noise = false) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  auto dbms = std::make_unique<SimulatedDbms>(ClusterSpec::MakeUniform(1, node),
                                              seed);
  if (!noise) dbms->set_noise_sigma(0.0);
  return dbms;
}

inline std::unique_ptr<SimulatedMapReduce> MakeTestMapReduce(
    uint64_t seed = 1, bool noise = false, size_t nodes = 4) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 8192;
  auto mr = std::make_unique<SimulatedMapReduce>(
      ClusterSpec::MakeUniform(nodes, node), seed);
  if (!noise) mr->set_noise_sigma(0.0);
  return mr;
}

inline std::unique_ptr<SimulatedSpark> MakeTestSpark(uint64_t seed = 1,
                                                     bool noise = false,
                                                     size_t nodes = 4) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  auto spark = std::make_unique<SimulatedSpark>(
      ClusterSpec::MakeUniform(nodes, node), seed);
  if (!noise) spark->set_noise_sigma(0.0);
  return spark;
}

/// A small OLAP workload that runs fast in tests.
inline Workload SmallOlap() { return MakeDbmsOlapWorkload(0.25); }
inline Workload SmallOltp() { return MakeDbmsOltpWorkload(0.25); }

}  // namespace testing_util
}  // namespace atune

#endif  // ATUNE_TESTS_TESTING_UTIL_H_
