#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace atune {
namespace {

StartRequest SampleStart() {
  StartRequest req;
  req.session_id = "tenant-a.session_01";
  req.tenant = "tenant-a";
  req.tuner = "ituned";
  req.system = "spark";
  req.workload = "iterative_ml";
  req.scale = 0.3333333333333333;  // must round-trip bit-exactly
  req.budget = 77;
  req.seed = 0xdeadbeefcafef00dULL;
  req.deadline_ms = 15000;
  req.contention = 3;
  return req;
}

TEST(WireTest, FrameRoundTrip) {
  std::string payload = EncodeStartRequest(SampleStart());
  std::string buffer;
  AppendFrame(payload, &buffer);
  EXPECT_EQ(buffer.size(), kFrameHeaderBytes + payload.size());

  std::string out;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(buffer.data(), buffer.size(), &out, &consumed).ok());
  EXPECT_EQ(consumed, buffer.size());
  EXPECT_EQ(out, payload);
}

TEST(WireTest, IncompleteFrameAsksForMoreBytes) {
  std::string payload = EncodeStartRequest(SampleStart());
  std::string buffer;
  AppendFrame(payload, &buffer);
  // Every strict prefix — including a torn header — is "need more", not an
  // error: short reads must never kill a healthy stream.
  for (size_t n = 0; n < buffer.size(); ++n) {
    std::string out;
    size_t consumed = 99;
    Status s = ExtractFrame(buffer.data(), n, &out, &consumed);
    ASSERT_TRUE(s.ok()) << "prefix " << n << ": " << s.ToString();
    EXPECT_EQ(consumed, 0u) << "prefix " << n;
  }
}

TEST(WireTest, CorruptedPayloadFailsCrc) {
  std::string payload = EncodePing();
  std::string buffer;
  AppendFrame(payload, &buffer);
  buffer[kFrameHeaderBytes] ^= 0x01;  // flip one payload bit
  std::string out;
  size_t consumed = 0;
  Status s = ExtractFrame(buffer.data(), buffer.size(), &out, &consumed);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, OversizedLengthIsRejectedBeforeBuffering) {
  // A hostile length prefix must fail immediately — the receiver must not
  // wait for (or allocate) 4GB.
  std::string buffer;
  uint32_t len = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) buffer.push_back(static_cast<char>(len >> (8 * i)));
  buffer.append(4, '\0');  // CRC placeholder
  std::string out;
  size_t consumed = 0;
  Status s = ExtractFrame(buffer.data(), buffer.size(), &out, &consumed);
  EXPECT_FALSE(s.ok());
}

TEST(WireTest, TwoFramesExtractInOrder) {
  std::string buffer;
  AppendFrame(EncodePing(), &buffer);
  AppendFrame(EncodePong(), &buffer);
  std::string out;
  size_t consumed = 0;
  ASSERT_TRUE(ExtractFrame(buffer.data(), buffer.size(), &out, &consumed).ok());
  EXPECT_EQ(*PeekType(out), MsgType::kPingReq);
  buffer.erase(0, consumed);
  ASSERT_TRUE(ExtractFrame(buffer.data(), buffer.size(), &out, &consumed).ok());
  EXPECT_EQ(*PeekType(out), MsgType::kPongResp);
  EXPECT_EQ(buffer.size(), consumed);
}

TEST(WireTest, StartRequestRoundTrip) {
  StartRequest req = SampleStart();
  auto parsed = ParseStartRequest(EncodeStartRequest(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->session_id, req.session_id);
  EXPECT_EQ(parsed->tenant, req.tenant);
  EXPECT_EQ(parsed->tuner, req.tuner);
  EXPECT_EQ(parsed->system, req.system);
  EXPECT_EQ(parsed->workload, req.workload);
  EXPECT_EQ(parsed->scale, req.scale);  // bit-exact, not approximate
  EXPECT_EQ(parsed->budget, req.budget);
  EXPECT_EQ(parsed->seed, req.seed);
  EXPECT_EQ(parsed->deadline_ms, req.deadline_ms);
  EXPECT_EQ(parsed->contention, req.contention);
}

TEST(WireTest, StartResponseRoundTrip) {
  StartResponse resp;
  resp.code = AdmitCode::kShedTenantQuota;
  resp.retry_after_ms = 125;
  resp.state = SessionState::kRunning;
  auto parsed = ParseStartResponse(EncodeStartResponse(resp));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->code, resp.code);
  EXPECT_EQ(parsed->retry_after_ms, resp.retry_after_ms);
  EXPECT_EQ(parsed->state, resp.state);
}

TEST(WireTest, AttachRoundTrip) {
  AttachRequest req;
  req.session_id = "s1";
  req.wait_ms = 30000;
  auto parsed_req = ParseAttachRequest(EncodeAttachRequest(req));
  ASSERT_TRUE(parsed_req.ok());
  EXPECT_EQ(parsed_req->session_id, "s1");
  EXPECT_EQ(parsed_req->wait_ms, 30000u);

  AttachResponse resp;
  resp.state = SessionState::kDone;
  resp.result.status_code = 6;
  resp.result.message = "ok";
  resp.result.best_objective = 17.25;
  resp.result.checksum = 0x8128108e3cc94f6eULL;
  resp.result.trials = 40;
  resp.result.replayed = 13;
  auto parsed = ParseAttachResponse(EncodeAttachResponse(resp));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->state, SessionState::kDone);
  EXPECT_EQ(parsed->result.status_code, 6);
  EXPECT_EQ(parsed->result.message, "ok");
  EXPECT_EQ(parsed->result.best_objective, 17.25);
  EXPECT_EQ(parsed->result.checksum, resp.result.checksum);
  EXPECT_EQ(parsed->result.trials, 40u);
  EXPECT_EQ(parsed->result.replayed, 13u);
}

TEST(WireTest, CancelAndStatsAndErrorRoundTrip) {
  CancelRequest creq;
  creq.session_id = "x";
  auto pc = ParseCancelRequest(EncodeCancelRequest(creq));
  ASSERT_TRUE(pc.ok());
  EXPECT_EQ(pc->session_id, "x");

  CancelResponse cresp;
  cresp.found = true;
  auto pcr = ParseCancelResponse(EncodeCancelResponse(cresp));
  ASSERT_TRUE(pcr.ok());
  EXPECT_TRUE(pcr->found);

  StatsResponse stats;
  stats.admitted = 1;
  stats.reattached = 2;
  stats.shed_queue_full = 3;
  stats.shed_tenant_quota = 4;
  stats.shed_draining = 5;
  stats.completed = 6;
  stats.failed = 7;
  stats.cancelled = 8;
  stats.deadline_exceeded = 9;
  stats.recovered = 10;
  stats.quarantined = 13;
  stats.active = 11;
  stats.queued = 12;
  auto ps = ParseStatsResponse(EncodeStatsResponse(stats));
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps->admitted, 1u);
  EXPECT_EQ(ps->reattached, 2u);
  EXPECT_EQ(ps->shed_queue_full, 3u);
  EXPECT_EQ(ps->shed_tenant_quota, 4u);
  EXPECT_EQ(ps->shed_draining, 5u);
  EXPECT_EQ(ps->completed, 6u);
  EXPECT_EQ(ps->failed, 7u);
  EXPECT_EQ(ps->cancelled, 8u);
  EXPECT_EQ(ps->deadline_exceeded, 9u);
  EXPECT_EQ(ps->recovered, 10u);
  EXPECT_EQ(ps->quarantined, 13u);
  EXPECT_EQ(ps->active, 11u);
  EXPECT_EQ(ps->queued, 12u);

  ErrorResponse err;
  err.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
  err.message = "bad";
  auto pe = ParseErrorResponse(EncodeErrorResponse(err));
  ASSERT_TRUE(pe.ok());
  EXPECT_EQ(pe->status_code, err.status_code);
  EXPECT_EQ(pe->message, "bad");
}

TEST(WireTest, ShortPayloadIsRejected) {
  std::string payload = EncodeStartRequest(SampleStart());
  // Every truncation of the body must fail to parse — never read past the
  // end, never accept a half-message.
  for (size_t n = 1; n < payload.size(); ++n) {
    EXPECT_FALSE(ParseStartRequest(payload.substr(0, n)).ok()) << n;
  }
}

TEST(WireTest, TrailingGarbageIsRejected) {
  std::string payload = EncodeStartRequest(SampleStart());
  payload.push_back('\0');
  EXPECT_FALSE(ParseStartRequest(payload).ok());
}

TEST(WireTest, WrongTypeByteIsRejectedByParsers) {
  std::string payload = EncodePing();
  EXPECT_FALSE(ParseStartRequest(payload).ok());
  EXPECT_FALSE(ParseAttachResponse(payload).ok());
}

TEST(WireTest, PeekTypeRejectsEmptyAndUnknown) {
  EXPECT_FALSE(PeekType("").ok());
  std::string unknown(1, static_cast<char>(0x7f));
  EXPECT_FALSE(PeekType(unknown).ok());
  EXPECT_EQ(*PeekType(EncodePing()), MsgType::kPingReq);
}

TEST(WireTest, ValidSessionIdRules) {
  EXPECT_TRUE(ValidSessionId("tenant-a.session_01"));
  EXPECT_TRUE(ValidSessionId("A"));
  EXPECT_TRUE(ValidSessionId(std::string(128, 'x')));
  EXPECT_FALSE(ValidSessionId(""));
  EXPECT_FALSE(ValidSessionId(std::string(129, 'x')));
  EXPECT_FALSE(ValidSessionId("has space"));
  EXPECT_FALSE(ValidSessionId("has/slash"));
  EXPECT_FALSE(ValidSessionId("../escape"));
  EXPECT_FALSE(ValidSessionId("."));
  EXPECT_FALSE(ValidSessionId(".."));
  EXPECT_FALSE(ValidSessionId(std::string("null\0byte", 9)));
}

}  // namespace
}  // namespace atune
