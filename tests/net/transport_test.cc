#include "net/transport.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include "common/io_env.h"

namespace atune {
namespace {

// A torn-peer write must surface as EPIPE through Status, not kill the test
// binary — the same process-wide contract atuned and atune_cli install.
const bool kSigPipeIgnored = [] {
  IgnoreSigPipe();
  return true;
}();

/// A connected socket pair: `a` and `b` are FdTransports over its ends.
struct Pair {
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;
};

Pair MakePair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Pair p;
  p.a = std::make_unique<FdTransport>(fds[0]);
  p.b = std::make_unique<FdTransport>(fds[1]);
  return p;
}

TEST(TransportTest, ReadWriteRoundTrip) {
  Pair p = MakePair();
  const std::string msg = "hello, tuning daemon";
  ASSERT_TRUE(WriteFully(p.a.get(), msg.data(), msg.size()).ok());
  std::string got(msg.size(), '\0');
  ASSERT_TRUE(ReadFully(p.b.get(), &got[0], got.size()).ok());
  EXPECT_EQ(got, msg);
}

TEST(TransportTest, CleanEofIsZeroBytesOk) {
  Pair p = MakePair();
  ASSERT_TRUE(p.a->Close().ok());
  char buf[8];
  size_t nread = 99;
  bool transient = true;
  Status s = p.b->Read(buf, sizeof(buf), &nread, &transient);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(nread, 0u);
}

TEST(TransportTest, EofMidBufferIsNotRetried) {
  Pair p = MakePair();
  ASSERT_TRUE(WriteFully(p.a.get(), "abc", 3).ok());
  ASSERT_TRUE(p.a->Close().ok());
  char buf[8];
  Status s = ReadFully(p.b.get(), buf, sizeof(buf));
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("peer closed mid-frame"), std::string::npos);
}

// ---- the EINTR-storm regression (shared retry bounds) -----------------------
//
// The transport's ReadFully/WriteFully must be driven by the SAME
// IoRetryPolicy struct and defaults as the filesystem seam's WriteFully
// (common/io_env.h) — these tests pin the boundary at exactly
// policy.max_attempts, so any drift between duplicated constants fails.

TEST(TransportTest, EintrStormWithinBoundSucceeds) {
  const IoRetryPolicy policy;  // the one shared default
  Pair p = MakePair();
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::move(p.a), NetFaultSchedule::Single(NetOpKind::kWrite, 0,
                                               NetFaultKind::kEintr,
                                               policy.max_attempts - 1));
  const std::string msg = "storm survivor";
  ASSERT_TRUE(WriteFully(faulty.get(), msg.data(), msg.size()).ok());
  EXPECT_EQ(faulty->injected(NetFaultKind::kEintr), policy.max_attempts - 1);
  EXPECT_EQ(faulty->backoffs(), policy.max_attempts - 1);
  std::string got(msg.size(), '\0');
  ASSERT_TRUE(ReadFully(p.b.get(), &got[0], got.size()).ok());
  EXPECT_EQ(got, msg);
}

TEST(TransportTest, EintrStormBeyondBoundExhaustsTheRetryBudget) {
  const IoRetryPolicy policy;
  Pair p = MakePair();
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::move(p.a), NetFaultSchedule::Single(NetOpKind::kWrite, 0,
                                               NetFaultKind::kEintr,
                                               policy.max_attempts));
  Status s = WriteFully(faulty.get(), "doomed", 6);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("transient-error retries"), std::string::npos);
}

TEST(TransportTest, EintrStormOnReadSideSameBoundary) {
  const IoRetryPolicy policy;
  {
    Pair p = MakePair();
    ASSERT_TRUE(WriteFully(p.a.get(), "payload!", 8).ok());
    auto faulty = std::make_unique<FaultInjectingTransport>(
        std::move(p.b), NetFaultSchedule::Single(NetOpKind::kRead, 0,
                                                 NetFaultKind::kEintr,
                                                 policy.max_attempts - 1));
    char buf[8];
    EXPECT_TRUE(ReadFully(faulty.get(), buf, sizeof(buf)).ok());
  }
  {
    Pair p = MakePair();
    ASSERT_TRUE(WriteFully(p.a.get(), "payload!", 8).ok());
    auto faulty = std::make_unique<FaultInjectingTransport>(
        std::move(p.b), NetFaultSchedule::Single(NetOpKind::kRead, 0,
                                                 NetFaultKind::kEintr,
                                                 policy.max_attempts));
    char buf[8];
    EXPECT_FALSE(ReadFully(faulty.get(), buf, sizeof(buf)).ok());
  }
}

TEST(TransportTest, CustomPolicyBoundIsHonored) {
  Pair p = MakePair();
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::move(p.a),
      NetFaultSchedule::Single(NetOpKind::kWrite, 0, NetFaultKind::kEintr, 2));
  IoRetryPolicy tight;
  tight.max_attempts = 2;
  tight.backoff_base_us = 0;
  EXPECT_FALSE(WriteFully(faulty.get(), "x", 1, tight).ok());

  Pair q = MakePair();
  auto faulty2 = std::make_unique<FaultInjectingTransport>(
      std::move(q.a),
      NetFaultSchedule::Single(NetOpKind::kWrite, 0, NetFaultKind::kEintr, 2));
  IoRetryPolicy loose;
  loose.max_attempts = 3;
  loose.backoff_base_us = 0;
  EXPECT_TRUE(WriteFully(faulty2.get(), "x", 1, loose).ok());
}

TEST(TransportTest, ProgressResetsTheRetryBudget) {
  const IoRetryPolicy policy;
  // max_attempts-1 EINTRs, one byte of progress, then max_attempts-1 more:
  // 2*(max_attempts-1) transient errors total, but never max_attempts in a
  // row, so the write must succeed (same semantics as io_env's WriteFully).
  NetFaultSchedule schedule;
  schedule.rules.push_back({NetOpKind::kWrite, 0, NetFaultKind::kEintr,
                            policy.max_attempts - 1});
  schedule.rules.push_back({NetOpKind::kWrite, policy.max_attempts,
                            NetFaultKind::kShortWrite, 1});
  schedule.rules.push_back({NetOpKind::kWrite, policy.max_attempts + 1,
                            NetFaultKind::kEintr, policy.max_attempts - 1});
  Pair p = MakePair();
  auto faulty = std::make_unique<FaultInjectingTransport>(std::move(p.a),
                                                          schedule);
  const std::string msg = "0123456789";
  ASSERT_TRUE(WriteFully(faulty.get(), msg.data(), msg.size()).ok());
  std::string got(msg.size(), '\0');
  ASSERT_TRUE(ReadFully(p.b.get(), &got[0], got.size()).ok());
  EXPECT_EQ(got, msg);
}

// ---- short ops, stalls, disconnects ------------------------------------------

TEST(TransportTest, ShortReadsReassemble) {
  Pair p = MakePair();
  const std::string msg(64, 'r');
  ASSERT_TRUE(WriteFully(p.a.get(), msg.data(), msg.size()).ok());
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::move(p.b), NetFaultSchedule::Single(NetOpKind::kRead, 0,
                                               NetFaultKind::kShortRead, 4));
  std::string got(msg.size(), '\0');
  ASSERT_TRUE(ReadFully(faulty.get(), &got[0], got.size()).ok());
  EXPECT_EQ(got, msg);
  EXPECT_EQ(faulty->injected(NetFaultKind::kShortRead), 4u);
  // Short ops make progress: no retry budget spent, no backoffs.
  EXPECT_EQ(faulty->backoffs(), 0u);
}

TEST(TransportTest, ShortWritesReassemble) {
  Pair p = MakePair();
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::move(p.a), NetFaultSchedule::Single(NetOpKind::kWrite, 0,
                                               NetFaultKind::kShortWrite, 4));
  const std::string msg(64, 'w');
  ASSERT_TRUE(WriteFully(faulty.get(), msg.data(), msg.size()).ok());
  std::string got(msg.size(), '\0');
  ASSERT_TRUE(ReadFully(p.b.get(), &got[0], got.size()).ok());
  EXPECT_EQ(got, msg);
}

TEST(TransportTest, StallTicksAreBoundedTransients) {
  Pair p = MakePair();
  ASSERT_TRUE(WriteFully(p.a.get(), "late", 4).ok());
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::move(p.b), NetFaultSchedule::Single(NetOpKind::kRead, 0,
                                               NetFaultKind::kStallTick, 2));
  char buf[4];
  ASSERT_TRUE(ReadFully(faulty.get(), buf, sizeof(buf)).ok());
  EXPECT_EQ(faulty->injected(NetFaultKind::kStallTick), 2u);
  EXPECT_EQ(faulty->backoffs(), 2u);
}

TEST(TransportTest, MidFrameDisconnectReallyTearsTheStream) {
  Pair p = MakePair();
  auto faulty = std::make_unique<FaultInjectingTransport>(
      std::move(p.a), NetFaultSchedule::Single(NetOpKind::kWrite, 0,
                                               NetFaultKind::kDisconnect));
  const std::string msg(32, 'd');
  Status s = WriteFully(faulty.get(), msg.data(), msg.size());
  EXPECT_FALSE(s.ok());  // non-transient: the Fully loop must NOT mask it

  // The peer sees exactly half the frame, then EOF — a torn frame, not a
  // clean close with a whole message.
  std::string got(msg.size(), '\0');
  Status peer = ReadFully(p.b.get(), &got[0], got.size());
  EXPECT_FALSE(peer.ok());
  EXPECT_NE(peer.message().find("peer closed mid-frame"), std::string::npos);
  EXPECT_NE(peer.message().find("16/32"), std::string::npos);
}

TEST(TransportTest, RateScheduleIsDeterministic) {
  NetFaultSchedule schedule = NetFaultSchedule::FromRate(0.5, 1234);
  uint64_t counts[2][kNumNetFaultKinds];
  for (int run = 0; run < 2; ++run) {
    Pair p = MakePair();
    auto faulty = std::make_unique<FaultInjectingTransport>(std::move(p.a),
                                                            schedule);
    char byte = 'x';
    for (int i = 0; i < 200; ++i) {
      size_t moved = 0;
      bool transient = false;
      (void)faulty->Write(&byte, 1, &moved, &transient);
    }
    for (size_t k = 0; k < kNumNetFaultKinds; ++k) {
      counts[run][k] = faulty->injected(static_cast<NetFaultKind>(k));
    }
    EXPECT_GT(faulty->injected_total(), 0u);
  }
  for (size_t k = 0; k < kNumNetFaultKinds; ++k) {
    EXPECT_EQ(counts[0][k], counts[1][k]) << NetFaultKindToString(
        static_cast<NetFaultKind>(k));
  }
}

// ---- address parsing ----------------------------------------------------------

TEST(TransportTest, ParseAddressGrammar) {
  auto unix_addr = ParseAddress("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_addr.ok());
  EXPECT_TRUE(unix_addr->is_unix);
  EXPECT_EQ(unix_addr->path, "/tmp/x.sock");

  auto bare = ParseAddress("/tmp/y.sock");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->is_unix);
  EXPECT_EQ(bare->path, "/tmp/y.sock");

  auto tcp = ParseAddress("tcp:127.0.0.1:8088");
  ASSERT_TRUE(tcp.ok());
  EXPECT_FALSE(tcp->is_unix);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 8088);

  EXPECT_FALSE(ParseAddress("unix:").ok());
  EXPECT_FALSE(ParseAddress("tcp:127.0.0.1").ok());
  EXPECT_FALSE(ParseAddress("tcp::123").ok());
  EXPECT_FALSE(ParseAddress("tcp:1.2.3.4:99999").ok());
  EXPECT_FALSE(ParseAddress("unix:" + std::string(200, 'p')).ok());
}

TEST(TransportTest, ConnectToMissingSocketFailsCleanly) {
  auto t = ConnectTransport("unix:/tmp/definitely-not-listening.sock", 100);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIoError);
}

TEST(TransportTest, WriteToDeadPeerIsEpipeNotSigpipe) {
  Pair p = MakePair();
  ASSERT_TRUE(p.b->Close().ok());
  // Fill until the kernel notices the dead peer. With SIGPIPE ignored this
  // must surface as a clean non-transient Status, not kill the process.
  std::string chunk(4096, 'z');
  Status s = Status::OK();
  for (int i = 0; i < 1000 && s.ok(); ++i) {
    s = WriteFully(p.a.get(), chunk.data(), chunk.size());
  }
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace atune
