#include "net/reactor.h"

#include <gtest/gtest.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/daemon.h"
#include "net/transport.h"
#include "net/wire.h"

namespace atune {
namespace {

const bool kSigPipeIgnored = [] {
  IgnoreSigPipe();
  return true;
}();

// ---- reactor unit tests ------------------------------------------------------

TEST(ReactorUnitTest, PostRunsOnLoopAndTimersFireInOrder) {
  Reactor r;
  ASSERT_TRUE(r.ok());
  std::thread loop([&] { r.Run(); });

  std::atomic<int> posted{0};
  std::vector<int> order;  // only touched on the loop thread
  r.Post([&] {
    posted = 1;
    uint64_t now = Reactor::NowMs();
    r.AddTimer(now + 30, [&] { order.push_back(2); });
    r.AddTimer(now + 10, [&] { order.push_back(1); });
    uint64_t cancelled = r.AddTimer(now + 20, [&] { order.push_back(99); });
    r.CancelTimer(cancelled);
    r.AddTimer(now + 60, [&] { r.Stop(); });
  });
  loop.join();

  EXPECT_EQ(posted, 1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ReactorUnitTest, StopIsIdempotentAndPostAfterRunStillDrains) {
  Reactor r;
  ASSERT_TRUE(r.ok());
  r.Stop();
  r.Stop();
  r.Run();  // must return immediately
  EXPECT_TRUE(r.stopped());
}

// ---- daemon loopback tests ---------------------------------------------------

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/atuneXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    StopDaemon();
    std::string cmd = "rm -rf " + dir_;
    (void)::system(cmd.c_str());
  }

  /// Starts a daemon on a fresh unix socket under the test dir. `state`
  /// names the journal dir (reused across daemons for recovery tests).
  void StartDaemon(DaemonOptions opts = DaemonOptions(),
                   const std::string& state = "state") {
    static int counter = 0;
    address_ = "unix:" + dir_ + "/s" + std::to_string(++counter) + ".sock";
    opts.listen = address_;
    opts.journal_dir = dir_ + "/" + state;
    daemon_ = std::make_unique<TuningDaemon>(opts);
    ASSERT_TRUE(daemon_->Start().ok()) << address_;
    serve_ = std::thread([this] { (void)daemon_->Serve(); });
  }

  void StopDaemon() {
    if (daemon_ != nullptr) daemon_->RequestDrain();
    if (serve_.joinable()) serve_.join();
    daemon_.reset();
  }

  TuningClient MakeClient() {
    TuningClient::Options copts;
    copts.address = address_;
    copts.io_timeout_ms = 10000;
    return TuningClient(std::move(copts));
  }

  /// Options admitting sessions whose budget exceeds the default tenant
  /// quota (the deadline/cancel/drain tests run deliberately huge budgets).
  static DaemonOptions BigBudgetOptions() {
    DaemonOptions opts;
    opts.tenant_budget_quota = 1e12;
    return opts;
  }

  static StartRequest QuickSession(const std::string& id, uint64_t budget = 8,
                                   uint64_t seed = 3) {
    StartRequest req;
    req.session_id = id;
    req.tenant = "test";
    req.tuner = "random-search";
    req.system = "dbms";
    req.budget = budget;
    req.seed = seed;
    return req;
  }

  std::string dir_;
  std::string address_;
  std::unique_ptr<TuningDaemon> daemon_;
  std::thread serve_;
};

TEST_F(DaemonTest, PingAndStats) {
  StartDaemon();
  TuningClient client = MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->admitted, 0u);
  EXPECT_EQ(stats->active, 0u);
}

TEST_F(DaemonTest, SessionRoundTripAndIdempotentResubmit) {
  StartDaemon();
  TuningClient client = MakeClient();

  StartRequest req = QuickSession("rt1");
  auto start = client.StartSession(req);
  ASSERT_TRUE(start.ok()) << start.status().ToString();
  EXPECT_EQ(start->code, AdmitCode::kAccepted);

  auto done = client.AwaitResult("rt1", /*overall_timeout_ms=*/30000,
                                 /*poll_ms=*/500);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_EQ(done->state, SessionState::kDone);
  EXPECT_EQ(done->result.trials, req.budget);
  EXPECT_NE(done->result.checksum, 0u);
  EXPECT_GT(done->result.best_objective, 0.0);

  // Re-submitting the same id must reattach, never double-start.
  auto again = client.StartSession(req);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->code, AdmitCode::kAlreadyExists);
  EXPECT_EQ(again->state, SessionState::kDone);

  // A second client sees the identical durable result.
  TuningClient other = MakeClient();
  auto attach = other.Attach("rt1", /*wait_ms=*/0);
  ASSERT_TRUE(attach.ok());
  EXPECT_EQ(attach->state, SessionState::kDone);
  EXPECT_EQ(attach->result.checksum, done->result.checksum);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->admitted, 1u);
  EXPECT_EQ(stats->completed, 1u);
  EXPECT_EQ(stats->reattached, 1u);
}

TEST_F(DaemonTest, ContentionSessionsUseTheMultiTenantSubstrate) {
  StartDaemon();
  TuningClient client = MakeClient();
  StartRequest req = QuickSession("mt1", /*budget=*/6);
  req.contention = 2;
  auto start = client.StartSession(req);
  ASSERT_TRUE(start.ok()) << start.status().ToString();
  ASSERT_EQ(start->code, AdmitCode::kAccepted);
  auto done = client.AwaitResult("mt1", 30000, 500);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, SessionState::kDone);
  EXPECT_EQ(done->result.trials, req.budget);
}

TEST_F(DaemonTest, MalformedRequestsGetErrorsNotSessions) {
  StartDaemon();
  TuningClient client = MakeClient();

  StartRequest bad = QuickSession("has/slash");
  auto start = client.StartSession(bad);
  EXPECT_FALSE(start.ok());  // ErrorResp surfaces as a Status

  StartRequest bad_tuner = QuickSession("bt1");
  bad_tuner.tuner = "no-such-tuner";
  // Admission validates the tuner up front: an ErrorResp, not a session
  // that is doomed to fail after consuming a worker.
  EXPECT_FALSE(client.StartSession(bad_tuner).ok());

  auto unknown = client.Attach("never-started", 0);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->state, SessionState::kUnknown);

  auto cancel = client.Cancel("never-started");
  ASSERT_TRUE(cancel.ok());
  EXPECT_FALSE(cancel->found);
}

TEST_F(DaemonTest, DeadlineExceededCancelsCleanly) {
  StartDaemon(BigBudgetOptions());
  TuningClient client = MakeClient();
  StartRequest req = QuickSession("dl1", /*budget=*/2000000);
  req.deadline_ms = 60;
  auto start = client.StartSession(req);
  ASSERT_TRUE(start.ok());
  ASSERT_EQ(start->code, AdmitCode::kAccepted);
  auto done = client.AwaitResult("dl1", 30000, 200);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, SessionState::kDeadlineExceeded);
  // The cancel landed at an evaluation boundary with the checkpoint
  // journaled: every committed trial is on disk, available for resume.
  struct stat st;
  std::string wal = dir_ + "/state/dl1.wal";
  ASSERT_EQ(::stat(wal.c_str(), &st), 0) << wal;
  EXPECT_GT(st.st_size, 0);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->deadline_exceeded, 1u);
}

TEST_F(DaemonTest, ClientCancelStopsARunningSession) {
  StartDaemon(BigBudgetOptions());
  TuningClient client = MakeClient();
  auto start = client.StartSession(QuickSession("cx1", 2000000));
  ASSERT_TRUE(start.ok());
  ASSERT_EQ(start->code, AdmitCode::kAccepted);
  auto cancel = client.Cancel("cx1");
  ASSERT_TRUE(cancel.ok());
  EXPECT_TRUE(cancel->found);
  auto done = client.AwaitResult("cx1", 30000, 200);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, SessionState::kCancelled);
}

TEST_F(DaemonTest, QueueFullShedsWithRetryAfter) {
  DaemonOptions opts;
  opts.workers = 1;
  opts.max_queue = 1;
  opts.tenant_budget_quota = 1e12;  // quota out of the picture
  StartDaemon(opts);
  TuningClient client = MakeClient();

  ASSERT_TRUE(client.StartSession(QuickSession("q1", 2000000)).ok());
  ASSERT_TRUE(client.StartSession(QuickSession("q2", 2000000)).ok());
  auto shed = client.StartSession(QuickSession("q3", 2000000));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->code, AdmitCode::kShedQueueFull);
  EXPECT_GT(shed->retry_after_ms, 0u);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shed_queue_full, 1u);
  EXPECT_EQ(stats->active + stats->queued, 2u);
}

TEST_F(DaemonTest, TenantQuotaShedsTheNoisyTenantOnly) {
  DaemonOptions opts;
  opts.workers = 1;
  opts.max_queue = 8;
  opts.tenant_budget_quota = 50.0;
  StartDaemon(opts);
  TuningClient client = MakeClient();

  StartRequest a = QuickSession("t1", /*budget=*/40);
  a.tenant = "noisy";
  ASSERT_TRUE(client.StartSession(a).ok());

  StartRequest b = QuickSession("t2", /*budget=*/40);
  b.tenant = "noisy";
  auto shed = client.StartSession(b);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->code, AdmitCode::kShedTenantQuota);
  EXPECT_GT(shed->retry_after_ms, 0u);

  StartRequest c = QuickSession("t3", /*budget=*/40);
  c.tenant = "polite";
  auto admitted = client.StartSession(c);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->code, AdmitCode::kAccepted);

  // Once the noisy tenant's session finishes, its quota frees up and the
  // shed submit succeeds via the client's RetryStart loop.
  auto retried = client.RetryStart(b, /*max_attempts=*/64);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->code, AdmitCode::kAccepted);
}

TEST_F(DaemonTest, DrainShedsNewWorkAndInterruptsRunningSessions) {
  StartDaemon(BigBudgetOptions());
  TuningClient client = MakeClient();
  auto start = client.StartSession(QuickSession("dr1", 2000000));
  ASSERT_TRUE(start.ok());
  ASSERT_EQ(start->code, AdmitCode::kAccepted);
  daemon_->RequestDrain();
  serve_.join();
  daemon_.reset();
  // The daemon exited: the long session must have checkpointed, not run to
  // completion (budget 2M would take minutes).
  SUCCEED();
}

TEST_F(DaemonTest, RestartRecoveryResumesBitIdentically) {
  // Reference: the same spec run to completion with no interruption.
  StartRequest spec = QuickSession("rec1", /*budget=*/300, /*seed=*/9);
  uint64_t ref_checksum = 0;
  double ref_best = 0.0;
  {
    StartDaemon(BigBudgetOptions(), "ref-state");
    TuningClient client = MakeClient();
    auto start = client.StartSession(spec);
    ASSERT_TRUE(start.ok());
    ASSERT_EQ(start->code, AdmitCode::kAccepted);
    auto done = client.AwaitResult("rec1", 60000, 200);
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done->state, SessionState::kDone);
    ref_checksum = done->result.checksum;
    ref_best = done->result.best_objective;
    StopDaemon();
  }
  ASSERT_NE(ref_checksum, 0u);

  // Interrupted run: drain lands mid-session (300 fsynced trials take far
  // longer than the immediate drain), so the daemon exits with the session
  // kInterrupted and a partial journal on disk.
  {
    StartDaemon(BigBudgetOptions(), "live-state");
    TuningClient client = MakeClient();
    auto start = client.StartSession(spec);
    ASSERT_TRUE(start.ok());
    ASSERT_EQ(start->code, AdmitCode::kAccepted);
    StopDaemon();
  }

  // Restart over the same journal dir: recovery re-queues the interrupted
  // session, replays its journal, and finishes with the identical outcome.
  {
    StartDaemon(BigBudgetOptions(), "live-state");
    TuningClient client = MakeClient();
    auto done = client.AwaitResult("rec1", 60000, 200);
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    ASSERT_EQ(done->state, SessionState::kDone);
    EXPECT_EQ(done->result.checksum, ref_checksum);
    EXPECT_EQ(done->result.best_objective, ref_best);  // bit-exact
    EXPECT_EQ(done->result.trials, spec.budget);

    auto stats = client.Stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->recovered, 1u);
    StopDaemon();
  }
}

TEST_F(DaemonTest, CrashLoopingSessionIsQuarantinedAfterMaxResumeAttempts) {
  // Each cycle runs one daemon lifetime over the shared journal dir inside
  // a forked child and ends it with _exit — a hard crash: no drain, no
  // destructors, no durable result. The first cycle admits a session whose
  // budget (2M trials) guarantees it can never finish before the crash;
  // every later cycle just restarts, which makes Recover() re-queue the
  // session and durably bump its resume-attempt counter before dying again.
  const std::string state = "crash-state";
  auto crash_cycle = [&](int cycle, bool submit) {
    pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      DaemonOptions opts;
      opts.listen =
          "unix:" + dir_ + "/crash" + std::to_string(cycle) + ".sock";
      opts.journal_dir = dir_ + "/" + state;
      opts.tenant_budget_quota = 1e12;
      TuningDaemon daemon(opts);
      if (!daemon.Start().ok()) ::_exit(2);  // Recover() has run by now
      if (submit) {
        std::thread serve([&daemon] { (void)daemon.Serve(); });
        serve.detach();
        TuningClient::Options copts;
        copts.address = opts.listen;
        copts.io_timeout_ms = 10000;
        TuningClient client(std::move(copts));
        // Meta is durable before the client hears "accepted", so the
        // crash below cannot lose the admission.
        auto start = client.StartSession(QuickSession("loop1", 2000000));
        if (!start.ok() || start->code != AdmitCode::kAccepted) ::_exit(3);
      }
      ::_exit(0);  // the crash
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << wstatus;
    ASSERT_EQ(WEXITSTATUS(wstatus), 0);
  };

  crash_cycle(0, /*submit=*/true);   // admitted, resume_attempts=0
  crash_cycle(1, /*submit=*/false);  // recovery bumps to 1, crashes
  crash_cycle(2, /*submit=*/false);  // -> 2
  crash_cycle(3, /*submit=*/false);  // -> 3 == max_resume_attempts

  // The surviving daemon quarantines the crash-looper at startup instead of
  // re-queueing it a fourth time: terminal kFailed/kInternal with a durable
  // result, and the daemon itself stays up for everyone else.
  StartDaemon(BigBudgetOptions(), state);
  TuningClient client = MakeClient();
  auto attach = client.Attach("loop1", /*wait_ms=*/0);
  ASSERT_TRUE(attach.ok());
  EXPECT_EQ(attach->state, SessionState::kFailed);
  EXPECT_EQ(attach->result.status_code,
            static_cast<uint8_t>(StatusCode::kInternal));
  EXPECT_NE(attach->result.message.find("quarantined"), std::string::npos)
      << attach->result.message;
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->quarantined, 1u);
  EXPECT_EQ(stats->recovered, 0u);

  // Still serving: a fresh session on the same daemon runs to completion.
  ASSERT_TRUE(client.StartSession(QuickSession("after-q", 8)).ok());
  auto done = client.AwaitResult("after-q", 30000, 200);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, SessionState::kDone);
  StopDaemon();

  // The quarantine verdict is durable: another restart loads it as a
  // terminal result (no re-run, no second quarantine count).
  StartDaemon(BigBudgetOptions(), state);
  TuningClient again = MakeClient();
  auto reattach = again.Attach("loop1", 0);
  ASSERT_TRUE(reattach.ok());
  EXPECT_EQ(reattach->state, SessionState::kFailed);
  auto stats2 = again.Stats();
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->quarantined, 0u);
}

TEST_F(DaemonTest, FaultyTransportClientStillCompletesSessions) {
  StartDaemon();
  TuningClient::Options copts;
  copts.address = address_;
  copts.io_timeout_ms = 10000;
  copts.inject_faults = true;
  copts.faults = NetFaultSchedule::FromRate(0.15, /*seed=*/77);
  TuningClient client(std::move(copts));

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Ping().ok()) << "ping " << i;
  }
  auto start = client.RetryStart(QuickSession("f1", 10));
  ASSERT_TRUE(start.ok()) << start.status().ToString();
  auto done = client.AwaitResult("f1", 30000, 200);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done->state, SessionState::kDone);
  // The schedule injected faults and the client healed over them.
  EXPECT_GE(client.connects(), 1u);
}

TEST_F(DaemonTest, LongPollAttachReturnsWhenTheSessionFinishes) {
  StartDaemon();
  TuningClient client = MakeClient();
  ASSERT_TRUE(client.StartSession(QuickSession("lp1", /*budget=*/60)).ok());
  // One long-poll attach should ride out the whole session (no re-poll):
  // the daemon parks the waiter and answers on completion.
  auto done = client.Attach("lp1", /*wait_ms=*/30000);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, SessionState::kDone);
}

}  // namespace
}  // namespace atune
