#include "ml/gaussian_process.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace atune {
namespace {

std::vector<Vec> Grid1d(size_t n) {
  std::vector<Vec> xs;
  for (size_t i = 0; i < n; ++i) {
    xs.push_back({static_cast<double>(i) / static_cast<double>(n - 1)});
  }
  return xs;
}

// Property: with low noise, the posterior interpolates training targets and
// is far more certain there than away from data — for both kernels.
class GpInterpolationTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(GpInterpolationTest, PosteriorInterpolatesTrainingPoints) {
  std::vector<Vec> xs = {{0.1}, {0.35}, {0.6}, {0.9}};
  Vec ys = {1.0, -0.5, 0.25, 2.0};
  GpHyperParams params;
  params.kernel = GetParam();
  params.lengthscales = {0.2};
  params.noise_variance = 1e-8;
  GaussianProcess gp(params);
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  for (size_t i = 0; i < xs.size(); ++i) {
    GpPrediction p = gp.Predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-3);
    EXPECT_LT(p.variance, 1e-4);
  }
  GpPrediction far = gp.Predict({0.225});
  GpPrediction at = gp.Predict({0.1});
  EXPECT_GT(far.variance, at.variance * 10.0);
}

INSTANTIATE_TEST_SUITE_P(Kernels, GpInterpolationTest,
                         ::testing::Values(KernelType::kSquaredExponential,
                                           KernelType::kMatern52));

TEST(GpTest, RevertsToPriorMeanFarFromData) {
  std::vector<Vec> xs = {{0.5}};
  Vec ys = {3.0};
  GpHyperParams params;
  params.lengthscales = {0.05};
  GaussianProcess gp(params);
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  // Far away, mean -> y_mean (= 3.0 since single point) and variance ->
  // signal variance.
  GpPrediction p = gp.Predict({0.0});
  EXPECT_NEAR(p.variance, params.signal_variance, 1e-3);
}

TEST(GpTest, RejectsBadInput) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.1}}, {1.0, 2.0}).ok());
  EXPECT_DOUBLE_EQ(gp.Predict({0.1}).mean, 0.0);  // unfitted
}

TEST(GpTest, HyperSearchRejectsDegenerateDesign) {
  // All-duplicate points with non-finite targets: every hyper candidate's
  // log marginal likelihood comes out NaN. Fitting defaults anyway would
  // hand callers a model built on garbage — the search must surface
  // kInternal instead (the supervision layer's failover trigger).
  std::vector<Vec> xs(5, Vec{0.5, 0.5});
  Vec ys(5, std::numeric_limits<double>::quiet_NaN());
  GaussianProcess gp;
  Rng rng(3);
  Status fit = gp.FitWithHyperSearch(xs, ys, 10, &rng);
  EXPECT_EQ(fit.code(), StatusCode::kInternal);
}

TEST(GpTest, HandlesDuplicateInputsViaJitter) {
  std::vector<Vec> xs = {{0.5}, {0.5}, {0.5}};
  Vec ys = {1.0, 1.2, 0.8};
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  GpPrediction p = gp.Predict({0.5});
  EXPECT_NEAR(p.mean, 1.0, 0.2);
}

TEST(GpTest, HyperSearchImprovesMarginalLikelihood) {
  // A wiggly function: lengthscale matters a lot.
  std::vector<Vec> xs = Grid1d(15);
  Vec ys;
  for (const Vec& x : xs) ys.push_back(std::sin(12.0 * x[0]));

  GpHyperParams fixed;
  fixed.lengthscales = {2.0};  // far too smooth
  fixed.noise_variance = 1e-4;
  GaussianProcess bad(fixed);
  ASSERT_TRUE(bad.Fit(xs, ys).ok());

  GaussianProcess tuned;
  Rng rng(5);
  ASSERT_TRUE(tuned.FitWithHyperSearch(xs, ys, 40, &rng).ok());
  EXPECT_GT(tuned.LogMarginalLikelihood(), bad.LogMarginalLikelihood());

  // And it should predict held-out structure reasonably.
  GpPrediction p = tuned.Predict({0.5 + 0.5 / 14.0});
  double truth = std::sin(12.0 * (0.5 + 0.5 / 14.0));
  EXPECT_NEAR(p.mean, truth, 0.35);
}

TEST(GpTest, ConstantTargetsAreHandled) {
  std::vector<Vec> xs = Grid1d(6);
  Vec ys(6, 5.0);
  GaussianProcess gp;
  Rng rng(3);
  ASSERT_TRUE(gp.FitWithHyperSearch(xs, ys, 10, &rng).ok());
  EXPECT_NEAR(gp.Predict({0.37}).mean, 5.0, 0.1);
}

TEST(GpTest, MultiDimensionalArdLengthscales) {
  // y depends only on dim 0; ARD should still fit well.
  std::vector<Vec> xs;
  Vec ys;
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    Vec x = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    ys.push_back(x[0] * x[0]);
    xs.push_back(std::move(x));
  }
  GaussianProcess gp;
  ASSERT_TRUE(gp.FitWithHyperSearch(xs, ys, 40, &rng).ok());
  double err = 0.0;
  for (int i = 0; i < 20; ++i) {
    Vec x = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    err += std::abs(gp.Predict(x).mean - x[0] * x[0]);
  }
  EXPECT_LT(err / 20.0, 0.15);
}

}  // namespace
}  // namespace atune
