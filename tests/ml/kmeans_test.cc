#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <set>

namespace atune {
namespace {

// Three well-separated blobs in 2D.
std::vector<Vec> ThreeBlobs(Rng* rng, size_t per_blob = 20) {
  std::vector<Vec> pts;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      pts.push_back({centers[b][0] + rng->Normal(0.0, 0.3),
                     centers[b][1] + rng->Normal(0.0, 0.3)});
    }
  }
  return pts;
}

TEST(KMeansTest, SeparatesObviousClusters) {
  Rng rng(1);
  auto pts = ThreeBlobs(&rng);
  auto result = KMeans(pts, 3, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 3u);
  // All points of a blob share an assignment, and blobs differ.
  std::set<size_t> blob_clusters;
  for (int b = 0; b < 3; ++b) {
    size_t first = result->assignments[b * 20];
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(result->assignments[b * 20 + i], first);
    }
    blob_clusters.insert(first);
  }
  EXPECT_EQ(blob_clusters.size(), 3u);
  EXPECT_LT(result->inertia, 60.0 * 0.3 * 0.3 * 4.0);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Rng rng(2);
  std::vector<Vec> pts = {{0.0}, {1.0}, {2.0}, {5.0}};
  auto result = KMeans(pts, 4, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, RejectsBadArguments) {
  Rng rng(3);
  EXPECT_FALSE(KMeans({}, 1, &rng).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 0, &rng).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 2, &rng).ok());
}

TEST(KMeansTest, NearestCentroid) {
  std::vector<Vec> centroids = {{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_EQ(NearestCentroid(centroids, {1.0, 1.0}), 0u);
  EXPECT_EQ(NearestCentroid(centroids, {9.0, 9.0}), 1u);
}

TEST(KMeansAutoKTest, FindsRoughlyThreeForThreeBlobs) {
  Rng rng(5);
  auto pts = ThreeBlobs(&rng, 30);
  auto result = KMeansAutoK(pts, 8, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->centroids.size(), 2u);
  EXPECT_LE(result->centroids.size(), 4u);
}

TEST(KMeansAutoKTest, SingleTightBlobPicksOne) {
  Rng rng(7);
  std::vector<Vec> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.Normal(5.0, 0.05), rng.Normal(5.0, 0.05)});
  }
  auto result = KMeansAutoK(pts, 5, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->centroids.size(), 2u);
}

}  // namespace
}  // namespace atune
