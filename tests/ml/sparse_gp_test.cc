// Inducing-point sparse GP (DTC/SoR) contract:
//
//   * max_exact_points = 0 (the default) leaves the exact path's arithmetic
//     untouched — bit-identical posteriors, the honesty contract that lets
//     every existing surrogate keep its replay guarantees
//   * with the inducing set equal to the training set (threshold = n-1 but
//     farthest-point selection keeping all n... pinned instead via m >= n)
//     the DTC predictive equals the exact GP analytically; with m < n it
//     stays within tolerance on smooth data
//   * a degenerate inducing set (non-finite inputs, collapsed points) is
//     reported as kInternal with the model left unfitted — never a NaN
//     posterior leaking into acquisition
//   * AddObservation across the sparse threshold refits instead of silently
//     growing the exact factor; FitWithHyperSearch candidates inherit the
//     sparsity setting rather than resetting it to exact

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/gaussian_process.h"

namespace atune {
namespace {

// Smooth deterministic test function on [0,1]^2.
double Smooth(const Vec& x) {
  return std::sin(3.0 * x[0]) + 0.5 * std::cos(2.0 * x[1]) + 0.1 * x[0] * x[1];
}

void MakeData(size_t n, std::vector<Vec>* xs, Vec* ys) {
  Rng rng(7);
  xs->clear();
  ys->clear();
  for (size_t i = 0; i < n; ++i) {
    Vec x = {rng.Uniform(), rng.Uniform()};
    ys->push_back(Smooth(x));
    xs->push_back(std::move(x));
  }
}

std::vector<Vec> TestPoints() {
  std::vector<Vec> pts;
  Rng rng(13);
  for (int i = 0; i < 20; ++i) pts.push_back({rng.Uniform(), rng.Uniform()});
  return pts;
}

TEST(SparseGpTest, DisabledPathIsBitIdenticalToExact) {
  std::vector<Vec> xs;
  Vec ys;
  MakeData(40, &xs, &ys);

  GpHyperParams exact_params;
  GaussianProcess exact(exact_params);
  ASSERT_TRUE(exact.Fit(xs, ys).ok());
  ASSERT_FALSE(exact.sparse());

  // A threshold the data never crosses must not perturb a single bit: the
  // dispatch happens before any arithmetic.
  GpHyperParams lazy_params;
  lazy_params.max_exact_points = 1000;
  GaussianProcess lazy(lazy_params);
  ASSERT_TRUE(lazy.Fit(xs, ys).ok());
  ASSERT_FALSE(lazy.sparse());

  EXPECT_EQ(exact.LogMarginalLikelihood(), lazy.LogMarginalLikelihood());
  for (const Vec& x : TestPoints()) {
    GpPrediction pe = exact.Predict(x);
    GpPrediction pl = lazy.Predict(x);
    EXPECT_EQ(pe.mean, pl.mean);          // bitwise
    EXPECT_EQ(pe.variance, pl.variance);  // bitwise
  }
}

// With n points, m = n inducing points, and noise-free smooth data the DTC
// predictive mean/variance equal the exact GP analytically (SoR with Z = X
// is the exact model). Farthest-point selection keeps all n distinct points
// when the threshold forces m = n... which it can't (m <= threshold < n),
// so pin the equality with m just below n on easy data and a loose-but-
// meaningful tolerance.
TEST(SparseGpTest, SparsePredictionsTrackExactWithinTolerance) {
  std::vector<Vec> xs;
  Vec ys;
  MakeData(60, &xs, &ys);

  GpHyperParams params;
  params.noise_variance = 1e-4;
  GaussianProcess exact(params);
  ASSERT_TRUE(exact.Fit(xs, ys).ok());

  GpHyperParams sparse_params = params;
  sparse_params.max_exact_points = 40;  // forces m = 40 inducing of n = 60
  GaussianProcess sparse(sparse_params);
  ASSERT_TRUE(sparse.Fit(xs, ys).ok());
  ASSERT_TRUE(sparse.sparse());
  EXPECT_EQ(sparse.num_inducing(), 40u);
  EXPECT_EQ(sparse.num_points(), 60u);

  double worst_mean_err = 0.0;
  for (const Vec& x : TestPoints()) {
    GpPrediction pe = exact.Predict(x);
    GpPrediction ps = sparse.Predict(x);
    EXPECT_TRUE(std::isfinite(ps.mean));
    EXPECT_TRUE(std::isfinite(ps.variance));
    EXPECT_GE(ps.variance, 0.0);
    worst_mean_err = std::max(worst_mean_err, std::fabs(pe.mean - ps.mean));
    // DTC variance is conservative (>= exact - tolerance): it discards
    // information, never invents it.
    EXPECT_GE(ps.variance, pe.variance - 1e-6);
  }
  // 2/3 of the points retained on a smooth function: the approximation
  // must stay close in absolute terms (function range is ~2.5).
  EXPECT_LT(worst_mean_err, 0.15);
}

TEST(SparseGpTest, SparseFitInterpolatesTrainingDataAtInducingPoints) {
  std::vector<Vec> xs;
  Vec ys;
  MakeData(50, &xs, &ys);
  GpHyperParams params;
  params.max_exact_points = 25;
  params.noise_variance = 1e-6;
  GaussianProcess gp(params);
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  ASSERT_TRUE(gp.sparse());
  // At retained training points the DTC posterior must reproduce the
  // observations closely (they are inducing points, where DTC is exact).
  size_t close = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (std::fabs(gp.Predict(xs[i]).mean - ys[i]) < 0.05) ++close;
  }
  EXPECT_GE(close, xs.size() / 2);
}

TEST(SparseGpTest, DegenerateInducingSetReturnsInternalNotNaN) {
  GpHyperParams params;
  params.max_exact_points = 2;
  {
    // Non-finite coordinates poison the kernel matrix.
    GaussianProcess gp(params);
    std::vector<Vec> xs = {{0.1, 0.1}, {0.5, 0.5},
                           {std::nan(""), 0.9}, {0.9, 0.2}};
    Vec ys = {1.0, 2.0, 3.0, 4.0};
    Status s = gp.Fit(xs, ys);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInternal);
    EXPECT_FALSE(gp.fitted());  // no NaN posterior can leak out
  }
  {
    // Every point identical: farthest-point selection collapses to one
    // inducing point; the fit must still either succeed finitely or
    // refuse — never emit NaN.
    GaussianProcess gp(params);
    std::vector<Vec> xs(6, Vec{0.5, 0.5});
    Vec ys = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
    Status s = gp.Fit(xs, ys);
    if (s.ok()) {
      GpPrediction p = gp.Predict({0.5, 0.5});
      EXPECT_TRUE(std::isfinite(p.mean));
      EXPECT_TRUE(std::isfinite(p.variance));
    } else {
      EXPECT_EQ(s.code(), StatusCode::kInternal);
      EXPECT_FALSE(gp.fitted());
    }
  }
}

TEST(SparseGpTest, AddObservationCrossingThresholdSwitchesToSparse) {
  GpHyperParams params;
  params.max_exact_points = 10;
  GaussianProcess gp(params);
  std::vector<Vec> xs;
  Vec ys;
  MakeData(10, &xs, &ys);
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  EXPECT_FALSE(gp.sparse());  // exactly at the threshold: still exact

  Rng rng(21);
  Vec extra = {rng.Uniform(), rng.Uniform()};
  ASSERT_TRUE(gp.AddObservation(extra, Smooth(extra)).ok());
  EXPECT_TRUE(gp.sparse());  // crossing it refits sparse
  EXPECT_EQ(gp.num_points(), 11u);

  // Further incremental growth keeps working in sparse mode.
  Vec extra2 = {rng.Uniform(), rng.Uniform()};
  ASSERT_TRUE(gp.AddObservation(extra2, Smooth(extra2)).ok());
  EXPECT_TRUE(gp.sparse());
  EXPECT_EQ(gp.num_points(), 12u);
  GpPrediction p = gp.Predict(extra2);
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_GE(p.variance, 0.0);
}

TEST(SparseGpTest, HyperSearchPreservesSparsitySetting) {
  std::vector<Vec> xs;
  Vec ys;
  MakeData(30, &xs, &ys);
  GpHyperParams params;
  params.max_exact_points = 20;
  GaussianProcess gp(params);
  Rng rng(5);
  ASSERT_TRUE(gp.FitWithHyperSearch(xs, ys, 8, &rng).ok());
  // The winning candidate must not have silently reset max_exact_points —
  // the refit stays sparse.
  EXPECT_TRUE(gp.sparse());
  EXPECT_EQ(gp.params().max_exact_points, 20u);
  for (const Vec& x : TestPoints()) {
    GpPrediction p = gp.Predict(x);
    EXPECT_TRUE(std::isfinite(p.mean));
    EXPECT_TRUE(std::isfinite(p.variance));
    EXPECT_GE(p.variance, 0.0);
  }
}

TEST(SparseGpTest, PredictBatchMatchesPredictInSparseMode) {
  std::vector<Vec> xs;
  Vec ys;
  MakeData(50, &xs, &ys);
  GpHyperParams params;
  params.max_exact_points = 30;
  GaussianProcess gp(params);
  ASSERT_TRUE(gp.Fit(xs, ys).ok());
  ASSERT_TRUE(gp.sparse());

  std::vector<Vec> pts = TestPoints();
  Matrix candidates(pts.size(), 2);
  for (size_t r = 0; r < pts.size(); ++r) {
    candidates.At(r, 0) = pts[r][0];
    candidates.At(r, 1) = pts[r][1];
  }
  GpScratch scratch;
  std::vector<GpPrediction> batch;
  gp.PredictBatch(candidates, &scratch, &batch);
  ASSERT_EQ(batch.size(), pts.size());
  for (size_t r = 0; r < pts.size(); ++r) {
    GpPrediction p = gp.Predict(pts[r]);
    EXPECT_EQ(batch[r].mean, p.mean);          // bitwise: same code path
    EXPECT_EQ(batch[r].variance, p.variance);  // bitwise
  }
}

}  // namespace
}  // namespace atune
