#include "ml/acquisition.h"

#include <gtest/gtest.h>

#include <cmath>

namespace atune {
namespace {

TEST(AcquisitionTest, NormalPdfCdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(AcquisitionTest, EiZeroVarianceReducesToPlainImprovement) {
  GpPrediction certain{2.0, 0.0};
  EXPECT_DOUBLE_EQ(ExpectedImprovement(certain, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedImprovement(certain, 1.0), 0.0);
}

TEST(AcquisitionTest, EiIncreasesWithUncertainty) {
  GpPrediction narrow{5.0, 0.01};
  GpPrediction wide{5.0, 1.0};
  double best = 4.0;  // both means are worse than best
  EXPECT_GT(ExpectedImprovement(wide, best),
            ExpectedImprovement(narrow, best));
}

TEST(AcquisitionTest, EiDecreasesWithWorseMean) {
  GpPrediction good{3.0, 0.5};
  GpPrediction bad{6.0, 0.5};
  EXPECT_GT(ExpectedImprovement(good, 4.0), ExpectedImprovement(bad, 4.0));
}

TEST(AcquisitionTest, EiAlwaysNonNegative) {
  for (double mean : {-2.0, 0.0, 5.0, 100.0}) {
    for (double var : {0.0, 0.1, 10.0}) {
      EXPECT_GE(ExpectedImprovement({mean, var}, 1.0), 0.0);
    }
  }
}

TEST(AcquisitionTest, PiIsProbability) {
  GpPrediction p{5.0, 4.0};
  double pi = ProbabilityOfImprovement(p, 5.0);
  EXPECT_NEAR(pi, 0.5, 1e-9);  // mean == best: 50/50
  EXPECT_GE(ProbabilityOfImprovement(p, -100.0), 0.0);
  EXPECT_LE(ProbabilityOfImprovement(p, 1000.0), 1.0);
  GpPrediction certain{2.0, 0.0};
  EXPECT_DOUBLE_EQ(ProbabilityOfImprovement(certain, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityOfImprovement(certain, 1.0), 0.0);
}

TEST(AcquisitionTest, LcbPrefersLowMeanAndHighVariance) {
  EXPECT_GT(LowerConfidenceBound({1.0, 1.0}), LowerConfidenceBound({2.0, 1.0}));
  EXPECT_GT(LowerConfidenceBound({1.0, 4.0}), LowerConfidenceBound({1.0, 1.0}));
}

}  // namespace
}  // namespace atune
