#include "ml/nnls.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace atune {
namespace {

TEST(NnlsTest, RecoversNonNegativeSolution) {
  // b = A x with x = (2, 0.5) >= 0: NNLS should recover it exactly.
  Matrix a({{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}});
  Vec x_true = {2.0, 0.5};
  Vec b = a.MultiplyVec(x_true);
  auto x = SolveNnls(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-4);
  EXPECT_NEAR((*x)[1], 0.5, 1e-4);
}

TEST(NnlsTest, ClampsNegativeComponents) {
  // Unconstrained least squares would want a negative coefficient; NNLS
  // must return 0 for it.
  Matrix a({{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}});
  Vec b = {3.0, 2.0, 1.0};  // decreasing in the 2nd feature
  auto x = SolveNnls(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_GE((*x)[0], 0.0);
  EXPECT_NEAR((*x)[1], 0.0, 1e-6);
}

TEST(NnlsTest, ErnestShapedFit) {
  // time(m) = 5 + 20/m + 0.1*m sampled at several machine counts.
  std::vector<double> machines = {1, 2, 4, 8, 16, 32};
  Matrix a(machines.size(), 3);
  Vec b(machines.size());
  for (size_t i = 0; i < machines.size(); ++i) {
    double m = machines[i];
    a.At(i, 0) = 1.0;
    a.At(i, 1) = 1.0 / m;
    a.At(i, 2) = m;
    b[i] = 5.0 + 20.0 / m + 0.1 * m;
  }
  auto x = SolveNnls(a, b, 200000, 1e-12);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 5.0, 0.2);
  EXPECT_NEAR((*x)[1], 20.0, 0.3);
  EXPECT_NEAR((*x)[2], 0.1, 0.02);
}

TEST(NnlsTest, RejectsBadShapes) {
  Matrix a(2, 2);
  EXPECT_FALSE(SolveNnls(a, {1.0}).ok());
  EXPECT_FALSE(SolveNnls(Matrix(), {}).ok());
}

}  // namespace
}  // namespace atune
