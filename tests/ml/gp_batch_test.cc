// Bit-identity tests for the batched GP paths of DESIGN.md §11:
// PredictBatch vs per-point Predict, BuildKernelRows vs the KernelValue
// loop, the batch acquisition wrappers vs their scalar forms, and the
// fast-vs-scalar A/B switch over a full Fit/AddObservation/Predict cycle.

#include <cstring>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "ml/acquisition.h"
#include "ml/gaussian_process.h"

namespace atune {
namespace {

using std::mt19937_64;

std::vector<Vec> RandomPoints(size_t n, size_t d, mt19937_64* gen) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<Vec> xs(n, Vec(d));
  for (auto& x : xs) {
    for (double& v : x) v = u(*gen);
  }
  return xs;
}

Vec RandomTargets(size_t n, mt19937_64* gen) {
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  Vec ys(n);
  for (double& y : ys) y = u(*gen);
  return ys;
}

Matrix RandomCandidates(size_t m, size_t d, mt19937_64* gen) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Matrix c(m, d);
  for (size_t r = 0; r < m; ++r) {
    for (size_t j = 0; j < d; ++j) c.At(r, j) = u(*gen);
  }
  return c;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(GpBatch, PredictBatchBitIdenticalToPredict) {
  mt19937_64 gen(3);
  for (KernelType kernel :
       {KernelType::kMatern52, KernelType::kSquaredExponential}) {
    for (size_t n : {1, 4, 17, 60}) {
      for (size_t m : {1, 3, 7, 8, 9, 16, 33}) {
        size_t d = 5;
        GaussianProcess gp(GpHyperParams{kernel, {}, 1.0, 1e-4});
        ASSERT_TRUE(gp.Fit(RandomPoints(n, d, &gen), RandomTargets(n, &gen))
                        .ok());
        Matrix cands = RandomCandidates(m, d, &gen);
        GpScratch scratch;
        std::vector<GpPrediction> batch;
        gp.PredictBatch(cands, &scratch, &batch);
        ASSERT_EQ(batch.size(), m);
        for (size_t r = 0; r < m; ++r) {
          GpPrediction p = gp.Predict(cands.Row(r));
          EXPECT_TRUE(SameBits(batch[r].mean, p.mean))
              << "n=" << n << " m=" << m << " r=" << r;
          EXPECT_TRUE(SameBits(batch[r].variance, p.variance))
              << "n=" << n << " m=" << m << " r=" << r;
        }
      }
    }
  }
}

TEST(GpBatch, PredictBatchUnfittedReturnsDefaults) {
  GaussianProcess gp;
  GpScratch scratch;
  std::vector<GpPrediction> batch;
  mt19937_64 gen(5);
  gp.PredictBatch(RandomCandidates(6, 3, &gen), &scratch, &batch);
  ASSERT_EQ(batch.size(), 6u);
  for (const auto& p : batch) {
    EXPECT_EQ(p.mean, 0.0);
    EXPECT_EQ(p.variance, 0.0);
  }
}

TEST(GpBatch, PredictBatchWrongColumnCountFallsBackToPredict) {
  mt19937_64 gen(7);
  size_t n = 12, d = 4;
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(RandomPoints(n, d, &gen), RandomTargets(n, &gen)).ok());
  // Candidates with the wrong dimensionality route through per-point
  // Predict, which itself falls back to KernelValue on ragged input.
  Matrix cands = RandomCandidates(5, d + 2, &gen);
  GpScratch scratch;
  std::vector<GpPrediction> batch;
  gp.PredictBatch(cands, &scratch, &batch);
  ASSERT_EQ(batch.size(), 5u);
  for (size_t r = 0; r < 5; ++r) {
    GpPrediction p = gp.Predict(cands.Row(r));
    EXPECT_TRUE(SameBits(batch[r].mean, p.mean));
    EXPECT_TRUE(SameBits(batch[r].variance, p.variance));
  }
}

TEST(GpBatch, PredictBatchNullScratchFallsBack) {
  mt19937_64 gen(9);
  size_t n = 10, d = 3;
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(RandomPoints(n, d, &gen), RandomTargets(n, &gen)).ok());
  Matrix cands = RandomCandidates(9, d, &gen);
  std::vector<GpPrediction> batch;
  gp.PredictBatch(cands, nullptr, &batch);
  ASSERT_EQ(batch.size(), 9u);
  for (size_t r = 0; r < 9; ++r) {
    GpPrediction p = gp.Predict(cands.Row(r));
    EXPECT_TRUE(SameBits(batch[r].mean, p.mean));
    EXPECT_TRUE(SameBits(batch[r].variance, p.variance));
  }
}

TEST(GpBatch, BuildKernelRowsMatchesPerPointAndReusesStorage) {
  mt19937_64 gen(11);
  size_t n = 21, d = 6, m = 13;
  GaussianProcess gp(
      GpHyperParams{KernelType::kSquaredExponential, {}, 1.3, 1e-4});
  std::vector<Vec> xs = RandomPoints(n, d, &gen);
  ASSERT_TRUE(gp.Fit(xs, RandomTargets(n, &gen)).ok());
  Matrix cands = RandomCandidates(m, d, &gen);
  Matrix rows;
  gp.BuildKernelRows(cands, &rows);
  ASSERT_EQ(rows.rows(), m);
  ASSERT_EQ(rows.cols(), n);
  // Reference via the scalar switch (KernelValue path).
  SetScalarKernelsForTesting(true);
  Matrix ref;
  gp.BuildKernelRows(cands, &ref);
  SetScalarKernelsForTesting(false);
  for (size_t r = 0; r < m; ++r) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(SameBits(rows.At(r, i), ref.At(r, i)))
          << "(" << r << "," << i << ")";
    }
  }
  // Same-shape call must not reallocate the caller's buffer.
  const double* storage = rows.RowPtr(0);
  gp.BuildKernelRows(cands, &rows);
  EXPECT_EQ(rows.RowPtr(0), storage);
}

TEST(GpBatch, ScalarSwitchWholeCycleBitIdentical) {
  // Fit + AddObservation + Predict under the fast kernels must equal the
  // same cycle under the scalar (pre-speed-layer) kernels bit for bit.
  auto run = [](bool scalar) {
    SetScalarKernelsForTesting(scalar);
    mt19937_64 gen(13);
    size_t d = 4;
    GaussianProcess gp(GpHyperParams{KernelType::kMatern52, {}, 1.0, 1e-4});
    std::vector<Vec> xs = RandomPoints(20, d, &gen);
    Vec ys = RandomTargets(20, &gen);
    EXPECT_TRUE(gp.Fit(xs, ys).ok());
    std::vector<Vec> extra = RandomPoints(5, d, &gen);
    for (size_t i = 0; i < extra.size(); ++i) {
      EXPECT_TRUE(gp.AddObservation(extra[i], 0.1 * i).ok());
    }
    Matrix probes = RandomCandidates(11, d, &gen);
    std::vector<GpPrediction> preds(probes.rows());
    for (size_t r = 0; r < probes.rows(); ++r) {
      preds[r] = gp.Predict(probes.Row(r));
    }
    SetScalarKernelsForTesting(false);
    return preds;
  };
  std::vector<GpPrediction> fast = run(false);
  std::vector<GpPrediction> scalar = run(true);
  ASSERT_EQ(fast.size(), scalar.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_TRUE(SameBits(fast[i].mean, scalar[i].mean)) << i;
    EXPECT_TRUE(SameBits(fast[i].variance, scalar[i].variance)) << i;
  }
}

TEST(GpBatch, AcquisitionBatchMatchesScalar) {
  mt19937_64 gen(17);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  std::vector<GpPrediction> preds(37);
  for (auto& p : preds) {
    p.mean = u(gen);
    p.variance = std::fabs(u(gen));
  }
  preds[3].variance = 0.0;  // exercise the degenerate-sigma branch
  double best = 0.4;
  Vec ei, pi, lcb;
  ExpectedImprovementBatch(preds, best, 0.0, &ei);
  ProbabilityOfImprovementBatch(preds, best, 0.0, &pi);
  LowerConfidenceBoundBatch(preds, 2.0, &lcb);
  ASSERT_EQ(ei.size(), preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    EXPECT_TRUE(SameBits(ei[i], ExpectedImprovement(preds[i], best))) << i;
    EXPECT_TRUE(SameBits(pi[i], ProbabilityOfImprovement(preds[i], best)))
        << i;
    EXPECT_TRUE(SameBits(lcb[i], LowerConfidenceBound(preds[i], 2.0))) << i;
  }
}

}  // namespace
}  // namespace atune
