#include "ml/linear_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"

namespace atune {
namespace {

TEST(StandardScalerTest, TransformsToZeroMeanUnitVar) {
  std::vector<Vec> xs = {{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}};
  StandardScaler scaler;
  scaler.Fit(xs);
  auto zs = scaler.TransformAll(xs);
  for (size_t d = 0; d < 2; ++d) {
    double mean = 0.0, var = 0.0;
    for (const Vec& z : zs) mean += z[d];
    mean /= 3.0;
    for (const Vec& z : zs) var += (z[d] - mean) * (z[d] - mean);
    var /= 3.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(StandardScalerTest, ConstantColumnMapsToZeroAndBack) {
  std::vector<Vec> xs = {{5.0, 1.0}, {5.0, 2.0}};
  StandardScaler scaler;
  scaler.Fit(xs);
  Vec z = scaler.Transform({5.0, 1.5});
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  Vec back = scaler.InverseTransform(z);
  EXPECT_DOUBLE_EQ(back[0], 5.0);
  EXPECT_NEAR(back[1], 1.5, 1e-12);
}

TEST(RidgeTest, RecoversLinearFunction) {
  Rng rng(3);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 50; ++i) {
    Vec x = {rng.Uniform(), rng.Uniform()};
    ys.push_back(3.0 * x[0] - 2.0 * x[1] + 1.0);
    xs.push_back(std::move(x));
  }
  RidgeRegression ridge(1e-6);
  ASSERT_TRUE(ridge.Fit(xs, ys).ok());
  EXPECT_NEAR(ridge.weights()[0], 3.0, 1e-3);
  EXPECT_NEAR(ridge.weights()[1], -2.0, 1e-3);
  EXPECT_NEAR(ridge.intercept(), 1.0, 1e-3);
  EXPECT_NEAR(ridge.Predict({0.5, 0.5}), 1.5, 1e-3);
}

TEST(RidgeTest, RejectsBadData) {
  RidgeRegression ridge;
  EXPECT_FALSE(ridge.Fit({}, {}).ok());
  EXPECT_FALSE(ridge.Fit({{1.0}}, {1.0, 2.0}).ok());
}

TEST(LassoTest, ShrinksIrrelevantFeaturesToZero) {
  Rng rng(7);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 80; ++i) {
    Vec x(6);
    for (double& v : x) v = rng.Uniform(-1.0, 1.0);
    // Only features 1 and 4 matter.
    ys.push_back(5.0 * x[1] - 4.0 * x[4] + rng.Normal(0.0, 0.01));
    xs.push_back(std::move(x));
  }
  LassoRegression lasso(0.1);
  ASSERT_TRUE(lasso.Fit(xs, ys).ok());
  EXPECT_GT(std::abs(lasso.weights()[1]), 0.5);
  EXPECT_GT(std::abs(lasso.weights()[4]), 0.5);
  for (size_t d : {0u, 2u, 3u, 5u}) {
    EXPECT_LT(std::abs(lasso.weights()[d]), 0.05) << "feature " << d;
  }
  EXPECT_LE(lasso.NumNonZero(0.05), 2u);
}

TEST(LassoTest, LargeLambdaKillsAllWeights) {
  Rng rng(9);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 30; ++i) {
    Vec x = {rng.Uniform(), rng.Uniform()};
    ys.push_back(x[0]);
    xs.push_back(std::move(x));
  }
  LassoRegression lasso(1e6);
  ASSERT_TRUE(lasso.Fit(xs, ys).ok());
  EXPECT_EQ(lasso.NumNonZero(), 0u);
  // Prediction falls back to the mean.
  EXPECT_NEAR(lasso.Predict({0.5, 0.5}), Mean(ys), 0.2);
}

TEST(LassoPathTest, RanksStrongFeaturesFirst) {
  Rng rng(11);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 100; ++i) {
    Vec x(5);
    for (double& v : x) v = rng.Uniform(-1.0, 1.0);
    // Effect sizes: x2 >> x0 >> others(0).
    ys.push_back(10.0 * x[2] + 2.0 * x[0] + rng.Normal(0.0, 0.05));
    xs.push_back(std::move(x));
  }
  auto ranking = LassoPathRanking(xs, ys);
  ASSERT_TRUE(ranking.ok());
  ASSERT_EQ(ranking->size(), 5u);
  EXPECT_EQ((*ranking)[0], 2u);
  EXPECT_EQ((*ranking)[1], 0u);
}

TEST(LassoPathTest, RejectsBadData) {
  EXPECT_FALSE(LassoPathRanking({}, {}).ok());
}

}  // namespace
}  // namespace atune
