#include "ml/neural_net.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace atune {
namespace {

TEST(MlpTest, RejectsBadData) {
  Mlp mlp;
  EXPECT_FALSE(mlp.Fit({}, {}).ok());
  EXPECT_FALSE(mlp.Fit({{1.0}}, {1.0, 2.0}).ok());
  EXPECT_DOUBLE_EQ(mlp.Predict({1.0}), 0.0);  // unfitted
}

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(1);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 60; ++i) {
    Vec x = {rng.Uniform(), rng.Uniform()};
    ys.push_back(2.0 * x[0] - x[1]);
    xs.push_back(std::move(x));
  }
  MlpOptions opts;
  opts.hidden_layers = {8};
  opts.epochs = 300;
  Mlp mlp(opts);
  ASSERT_TRUE(mlp.Fit(xs, ys).ok());
  double err = 0.0;
  for (int i = 0; i < 30; ++i) {
    Vec x = {rng.Uniform(), rng.Uniform()};
    err += std::abs(mlp.Predict(x) - (2.0 * x[0] - x[1]));
  }
  EXPECT_LT(err / 30.0, 0.12);
}

TEST(MlpTest, LearnsNonlinearFunction) {
  Rng rng(2);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 120; ++i) {
    Vec x = {rng.Uniform(-1.0, 1.0)};
    ys.push_back(x[0] * x[0]);  // parabola: not linearly representable
    xs.push_back(std::move(x));
  }
  MlpOptions opts;
  opts.hidden_layers = {16, 16};
  opts.epochs = 600;
  Mlp mlp(opts);
  ASSERT_TRUE(mlp.Fit(xs, ys).ok());
  EXPECT_LT(mlp.final_loss(), 0.05);
  EXPECT_NEAR(mlp.Predict({0.0}), 0.0, 0.12);
  EXPECT_NEAR(mlp.Predict({0.8}), 0.64, 0.15);
  EXPECT_NEAR(mlp.Predict({-0.8}), 0.64, 0.15);
}

TEST(MlpTest, DeterministicPerSeed) {
  std::vector<Vec> xs = {{0.1}, {0.5}, {0.9}};
  Vec ys = {1.0, 2.0, 3.0};
  MlpOptions opts;
  opts.epochs = 50;
  opts.seed = 99;
  Mlp a(opts), b(opts);
  ASSERT_TRUE(a.Fit(xs, ys).ok());
  ASSERT_TRUE(b.Fit(xs, ys).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.3}), b.Predict({0.3}));
}

TEST(MlpTest, ConstantTargetsPredictConstant) {
  std::vector<Vec> xs = {{0.0}, {0.5}, {1.0}};
  Vec ys = {4.0, 4.0, 4.0};
  MlpOptions opts;
  opts.epochs = 50;
  Mlp mlp(opts);
  ASSERT_TRUE(mlp.Fit(xs, ys).ok());
  EXPECT_NEAR(mlp.Predict({0.25}), 4.0, 0.5);
}

}  // namespace
}  // namespace atune
