// GaussianProcess::AddObservation must agree with a from-scratch Fit on the
// extended data: CholeskyAppendRow performs exactly the arithmetic of the
// full factorization's last row, so predictions should match far below the
// 1e-9 tolerance demanded here.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/gaussian_process.h"

namespace atune {
namespace {

constexpr size_t kDims = 4;

double Response(const Vec& x) {
  double acc = 0.0;
  for (size_t d = 0; d < kDims; ++d) {
    acc += std::sin(2.5 * x[d]) + 0.4 * x[d] * x[d];
  }
  return acc;
}

Vec RandomPoint(Rng* rng) {
  Vec x(kDims);
  for (double& v : x) v = rng->Uniform();
  return x;
}

GpHyperParams TestParams() {
  GpHyperParams params;
  params.kernel = KernelType::kMatern52;
  params.lengthscales.assign(kDims, 0.5);
  params.signal_variance = 1.3;
  params.noise_variance = 1e-5;
  return params;
}

TEST(GpIncrementalTest, AddObservationMatchesFullFitOver50Points) {
  Rng rng(99);
  std::vector<Vec> xs;
  Vec ys;
  for (size_t i = 0; i < 5; ++i) {
    xs.push_back(RandomPoint(&rng));
    ys.push_back(Response(xs.back()));
  }
  std::vector<Vec> probes;
  for (size_t i = 0; i < 8; ++i) probes.push_back(RandomPoint(&rng));

  GaussianProcess incremental(TestParams());
  ASSERT_TRUE(incremental.Fit(xs, ys).ok());

  for (size_t i = 0; i < 50; ++i) {
    Vec x = RandomPoint(&rng);
    double y = Response(x) + rng.Normal(0.0, 0.01);
    xs.push_back(x);
    ys.push_back(y);
    ASSERT_TRUE(incremental.AddObservation(x, y).ok()) << "append " << i;

    GaussianProcess full(TestParams());
    ASSERT_TRUE(full.Fit(xs, ys).ok()) << "refit " << i;
    ASSERT_EQ(incremental.num_points(), full.num_points());
    EXPECT_NEAR(incremental.LogMarginalLikelihood(),
                full.LogMarginalLikelihood(), 1e-9)
        << "append " << i;
    for (const Vec& probe : probes) {
      GpPrediction a = incremental.Predict(probe);
      GpPrediction b = full.Predict(probe);
      EXPECT_NEAR(a.mean, b.mean, 1e-9) << "append " << i;
      EXPECT_NEAR(a.variance, b.variance, 1e-9) << "append " << i;
    }
  }
}

TEST(GpIncrementalTest, AddObservationOnUnfittedModelActsAsFit) {
  GaussianProcess gp(TestParams());
  Rng rng(3);
  Vec x = RandomPoint(&rng);
  ASSERT_TRUE(gp.AddObservation(x, 2.0).ok());
  EXPECT_TRUE(gp.fitted());
  EXPECT_EQ(gp.num_points(), 1u);
  // A single observation's posterior mean at the observed point is ~y.
  EXPECT_NEAR(gp.Predict(x).mean, 2.0, 1e-3);
}

TEST(GpIncrementalTest, DuplicatePointFallsBackToFullRefit) {
  // Appending an exact duplicate makes the bordered kernel matrix (nearly)
  // singular; AddObservation must recover via the full-refit fallback and
  // still agree with Fit on the same data.
  Rng rng(17);
  std::vector<Vec> xs;
  Vec ys;
  for (size_t i = 0; i < 6; ++i) {
    xs.push_back(RandomPoint(&rng));
    ys.push_back(Response(xs.back()));
  }
  GaussianProcess incremental(TestParams());
  ASSERT_TRUE(incremental.Fit(xs, ys).ok());

  Vec dup = xs[2];
  double dup_y = ys[2] + 0.05;
  xs.push_back(dup);
  ys.push_back(dup_y);
  ASSERT_TRUE(incremental.AddObservation(dup, dup_y).ok());

  GaussianProcess full(TestParams());
  ASSERT_TRUE(full.Fit(xs, ys).ok());
  Vec probe = RandomPoint(&rng);
  EXPECT_NEAR(incremental.Predict(probe).mean, full.Predict(probe).mean,
              1e-9);
  EXPECT_NEAR(incremental.Predict(probe).variance,
              full.Predict(probe).variance, 1e-9);
}

TEST(GpIncrementalTest, RejectsDimensionMismatch) {
  GaussianProcess gp(TestParams());
  Rng rng(5);
  ASSERT_TRUE(gp.Fit({RandomPoint(&rng), RandomPoint(&rng)}, {1.0, 2.0}).ok());
  Vec wrong(kDims + 2, 0.5);
  EXPECT_FALSE(gp.AddObservation(wrong, 1.0).ok());
}

}  // namespace
}  // namespace atune
