#include "core/configuration.h"

#include <gtest/gtest.h>

namespace atune {
namespace {

TEST(ConfigurationTest, TypedSetGet) {
  Configuration c;
  c.SetInt("a", 5);
  c.SetDouble("b", 2.5);
  c.SetBool("c", true);
  c.SetString("d", "kryo");
  EXPECT_EQ(*c.GetInt("a"), 5);
  EXPECT_DOUBLE_EQ(*c.GetDouble("b"), 2.5);
  EXPECT_EQ(*c.GetBool("c"), true);
  EXPECT_EQ(*c.GetString("d"), "kryo");
  EXPECT_EQ(c.size(), 4u);
}

TEST(ConfigurationTest, NumericCoercion) {
  Configuration c;
  c.SetInt("i", 5);
  c.SetDouble("d", 2.9);
  EXPECT_DOUBLE_EQ(*c.GetDouble("i"), 5.0);
  EXPECT_EQ(*c.GetInt("d"), 2);  // truncation
  EXPECT_FALSE(c.GetBool("i").ok());
  EXPECT_FALSE(c.GetString("d").ok());
}

TEST(ConfigurationTest, MissingKeyIsNotFound) {
  Configuration c;
  EXPECT_EQ(c.Get("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(c.IntOr("nope", 9), 9);
  EXPECT_DOUBLE_EQ(c.DoubleOr("nope", 1.5), 1.5);
  EXPECT_EQ(c.BoolOr("nope", true), true);
  EXPECT_EQ(c.StringOr("nope", "x"), "x");
}

TEST(ConfigurationTest, DiffFindsChangedAndMissing) {
  Configuration a, b;
  a.SetInt("same", 1);
  b.SetInt("same", 1);
  a.SetInt("changed", 1);
  b.SetInt("changed", 2);
  a.SetInt("only_a", 1);
  b.SetInt("only_b", 1);
  auto diff = Configuration::Diff(a, b);
  std::sort(diff.begin(), diff.end());
  EXPECT_EQ(diff, (std::vector<std::string>{"changed", "only_a", "only_b"}));
  EXPECT_TRUE(Configuration::Diff(a, a).empty());
}

TEST(ConfigurationTest, ToStringSortedAndEquality) {
  Configuration a;
  a.SetInt("z", 1);
  a.SetBool("a", true);
  EXPECT_EQ(a.ToString(), "a=true z=1");
  Configuration b = a;
  EXPECT_TRUE(a == b);
  b.SetInt("z", 2);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace atune
