#include <cmath>

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "tests/core/mock_system.h"

namespace atune {
namespace {

using testing_util::MockWorkload;
using testing_util::ScriptedSystem;

Configuration DefaultOf(const TunableSystem& system) {
  return system.space().DefaultConfiguration();
}

double CostSum(const Evaluator& evaluator) {
  double sum = 0.0;
  for (const Trial& t : evaluator.history()) sum += t.cost;
  return sum;
}

TEST(RobustnessPolicyTest, RetriesTransientFailureAndChargesExtra) {
  ScriptedSystem system;
  system.Fails(300.0, /*transient=*/true).Runs(10.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  auto obj = evaluator.Evaluate(DefaultOf(system));
  ASSERT_TRUE(obj.ok());
  // The tuner sees the clean re-measurement, not the fault.
  EXPECT_DOUBLE_EQ(*obj, 10.0);
  EXPECT_FALSE(evaluator.history().back().result.failed);
  EXPECT_EQ(evaluator.retried_runs(), 1u);
  EXPECT_EQ(system.executions(), 2u);
  // 1 full run + 0.3 for the superseded attempt, all on the one trial.
  EXPECT_DOUBLE_EQ(evaluator.used(), 1.3);
  EXPECT_DOUBLE_EQ(evaluator.history().back().cost, 1.3);
  EXPECT_DOUBLE_EQ(CostSum(evaluator), evaluator.used());
}

TEST(RobustnessPolicyTest, RetriesAreBounded) {
  ScriptedSystem system;
  // Script never recovers; the last transient failure repeats forever.
  system.Fails(300.0, /*transient=*/true);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  auto obj = evaluator.Evaluate(DefaultOf(system));
  ASSERT_TRUE(obj.ok());
  // Degrades gracefully: the failed measurement is committed, not an error.
  EXPECT_TRUE(evaluator.history().back().result.failed);
  EXPECT_EQ(evaluator.retried_runs(), 2u);  // default max_retries
  EXPECT_EQ(system.executions(), 3u);       // 1 original + 2 retries
  EXPECT_DOUBLE_EQ(evaluator.used(), 1.6);
  EXPECT_DOUBLE_EQ(CostSum(evaluator), evaluator.used());
}

TEST(RobustnessPolicyTest, ConfigCausedFailureIsNeverRetried) {
  ScriptedSystem system;
  system.Fails(300.0, /*transient=*/false).Runs(10.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  auto obj = evaluator.Evaluate(DefaultOf(system));
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(evaluator.history().back().result.failed);
  EXPECT_EQ(evaluator.retried_runs(), 0u);
  EXPECT_EQ(system.executions(), 1u);
  EXPECT_DOUBLE_EQ(evaluator.used(), 1.0);
}

TEST(RobustnessPolicyTest, RetryRespectsRemainingBudget) {
  ScriptedSystem system;
  system.Fails(300.0, /*transient=*/true).Runs(10.0);
  // Budget of exactly 1: the base run fits, the 0.3 retry does not.
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{1});
  auto obj = evaluator.Evaluate(DefaultOf(system));
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(evaluator.history().back().result.failed);
  EXPECT_EQ(evaluator.retried_runs(), 0u);
  EXPECT_DOUBLE_EQ(evaluator.used(), 1.0);  // never overspends
}

TEST(RobustnessPolicyTest, DisabledRetriesPassFaultsThrough) {
  ScriptedSystem system;
  system.Fails(300.0, /*transient=*/true).Runs(10.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  RobustnessPolicy policy;
  policy.max_retries = 0;
  evaluator.set_robustness_policy(policy);
  auto obj = evaluator.Evaluate(DefaultOf(system));
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(evaluator.history().back().result.failed);
  EXPECT_TRUE(evaluator.history().back().result.transient);
  EXPECT_EQ(system.executions(), 1u);
}

TEST(RobustnessPolicyTest, TimeoutWatchdogCensorsHungRun) {
  ScriptedSystem system;
  system.Runs(1.0e6).Runs(10.0);  // a hang, then a healthy run
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  RobustnessPolicy policy;
  policy.timeout_seconds = 50.0;
  evaluator.set_robustness_policy(policy);

  auto hung = evaluator.Evaluate(DefaultOf(system));
  ASSERT_TRUE(hung.ok());
  const Trial& trial = evaluator.history().back();
  EXPECT_TRUE(trial.result.censored);
  EXPECT_FALSE(trial.result.failed);
  EXPECT_DOUBLE_EQ(trial.result.runtime_seconds, 50.0);
  EXPECT_EQ(evaluator.timed_out_runs(), 1u);
  // Watched for 50s of a 1e6s run: cost floors at 0.05 of a budget unit.
  EXPECT_DOUBLE_EQ(trial.cost, 0.05);
  // Censored lower bounds never become the incumbent.
  EXPECT_EQ(evaluator.best(), nullptr);

  auto healthy = evaluator.Evaluate(DefaultOf(system));
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(evaluator.history().back().result.censored);
  ASSERT_NE(evaluator.best(), nullptr);
  EXPECT_DOUBLE_EQ(evaluator.best()->objective, 10.0);
  EXPECT_DOUBLE_EQ(CostSum(evaluator), evaluator.used());
}

TEST(RobustnessPolicyTest, TimeoutChargesObservedFraction) {
  ScriptedSystem system;
  system.Runs(200.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  RobustnessPolicy policy;
  policy.timeout_seconds = 50.0;
  evaluator.set_robustness_policy(policy);
  ASSERT_TRUE(evaluator.Evaluate(DefaultOf(system)).ok());
  // 50 of 200 seconds observed -> a quarter of a budget unit.
  EXPECT_DOUBLE_EQ(evaluator.history().back().cost, 0.25);
  EXPECT_EQ(evaluator.timed_out_runs(), 1u);
}

TEST(RobustnessPolicyTest, OutlierIsRemeasuredAndMedianCommitted) {
  ScriptedSystem system;
  // Six-run history near 10s, then a 1000s straggler whose re-measurements
  // come back at 10.5s and 11s.
  system.Runs(10.0).Runs(10.2).Runs(9.8).Runs(10.1).Runs(9.9).Runs(10.3);
  system.Runs(1000.0).Runs(10.5).Runs(11.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{12});
  RobustnessPolicy policy;
  policy.outlier_mad_threshold = 3.5;
  evaluator.set_robustness_policy(policy);
  Configuration config = DefaultOf(system);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(evaluator.Evaluate(config).ok());
  EXPECT_EQ(evaluator.remeasured_runs(), 0u);

  auto obj = evaluator.Evaluate(config);
  ASSERT_TRUE(obj.ok());
  // Median of {1000, 10.5, 11} is 11: the straggler measurement is gone.
  EXPECT_DOUBLE_EQ(*obj, 11.0);
  EXPECT_EQ(evaluator.remeasured_runs(), 2u);
  // The suspicious trial carried its two extra full-cost measurements.
  EXPECT_DOUBLE_EQ(evaluator.history().back().cost, 3.0);
  EXPECT_DOUBLE_EQ(evaluator.used(), 9.0);
  EXPECT_DOUBLE_EQ(CostSum(evaluator), evaluator.used());
}

TEST(RobustnessPolicyTest, OutlierDetectionNeedsHistory) {
  ScriptedSystem system;
  system.Runs(10.0).Runs(1000.0).Runs(10.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{10});
  RobustnessPolicy policy;
  policy.outlier_mad_threshold = 3.5;  // default min history of 6 not met
  evaluator.set_robustness_policy(policy);
  Configuration config = DefaultOf(system);
  ASSERT_TRUE(evaluator.Evaluate(config).ok());
  ASSERT_TRUE(evaluator.Evaluate(config).ok());
  EXPECT_EQ(evaluator.remeasured_runs(), 0u);
  EXPECT_DOUBLE_EQ(evaluator.used(), 2.0);
}

TEST(RobustnessPolicyTest, SessionSurfacesRobustnessCounters) {
  ScriptedSystem system;
  system.Fails(300.0, /*transient=*/true).Runs(1.0e6).Runs(10.0).Runs(12.0);
  // No tuner needed: drive the evaluator directly as a session would.
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{6});
  RobustnessPolicy policy;
  policy.timeout_seconds = 100.0;
  evaluator.set_robustness_policy(policy);
  Configuration config = DefaultOf(system);
  // Run 1: transient fault, retried into the hung run, watchdog-censored.
  ASSERT_TRUE(evaluator.Evaluate(config).ok());
  // Runs 2-3: healthy.
  ASSERT_TRUE(evaluator.Evaluate(config).ok());
  ASSERT_TRUE(evaluator.Evaluate(config).ok());
  EXPECT_EQ(evaluator.retried_runs(), 1u);
  EXPECT_EQ(evaluator.timed_out_runs(), 1u);
  EXPECT_DOUBLE_EQ(CostSum(evaluator), evaluator.used());
  size_t censored = 0;
  for (const Trial& t : evaluator.history()) {
    if (t.result.censored) ++censored;
  }
  EXPECT_EQ(censored, 1u);
}

TEST(RobustnessPolicyTest, ResetSessionCountersClearsRepairActivity) {
  // Regression: an Evaluator reused across sessions used to carry one
  // session's repair counters into the next session's outcome.
  // RunTuningSession now calls ResetSessionCounters() at session start.
  ScriptedSystem system;
  system.Fails(300.0, /*transient=*/true).Runs(1.0e6).Runs(10.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{6});
  RobustnessPolicy policy;
  policy.timeout_seconds = 100.0;
  evaluator.set_robustness_policy(policy);
  ASSERT_TRUE(evaluator.Evaluate(DefaultOf(system)).ok());
  ASSERT_EQ(evaluator.retried_runs(), 1u);
  ASSERT_EQ(evaluator.timed_out_runs(), 1u);

  evaluator.ResetSessionCounters();
  EXPECT_EQ(evaluator.retried_runs(), 0u);
  EXPECT_EQ(evaluator.timed_out_runs(), 0u);
  EXPECT_EQ(evaluator.remeasured_runs(), 0u);
  // Only the session counters reset — history, budget and best survive.
  EXPECT_EQ(evaluator.history().size(), 1u);
  EXPECT_GT(evaluator.used(), 0.0);

  // A fresh measurement after the reset counts from zero.
  ASSERT_TRUE(evaluator.Evaluate(DefaultOf(system)).ok());
  EXPECT_EQ(evaluator.retried_runs(), 0u);
  EXPECT_EQ(evaluator.timed_out_runs(), 0u);
}

}  // namespace
}  // namespace atune
