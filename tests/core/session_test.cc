#include "core/session.h"

#include <gtest/gtest.h>

#include "tests/core/mock_system.h"

namespace atune {
namespace {

using testing_util::MockWorkload;
using testing_util::QuadraticSystem;

// A tiny tuner: evaluates defaults, then walks toward the optimum.
class GreedyProbe : public Tuner {
 public:
  std::string name() const override { return "greedy-probe"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override {
    const ParameterSpace& space = evaluator->space();
    auto first = evaluator->Evaluate(space.DefaultConfiguration());
    if (!first.ok()) return first.status();
    while (!evaluator->Exhausted()) {
      Configuration c =
          space.Neighbor(evaluator->best()->config, 0.2, rng);
      auto obj = evaluator->Evaluate(c);
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
    }
    return Status::OK();
  }
  std::string Report() const override { return "probed"; }
};

TEST(SessionTest, PackagesOutcome) {
  QuadraticSystem system;
  GreedyProbe tuner;
  SessionOptions options;
  options.budget.max_evaluations = 12;
  options.seed = 5;
  auto outcome = RunTuningSession(&tuner, &system, MockWorkload(), options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->tuner_name, "greedy-probe");
  EXPECT_EQ(outcome->category, TunerCategory::kExperimentDriven);
  EXPECT_EQ(outcome->history.size(), 12u);
  EXPECT_DOUBLE_EQ(outcome->evaluations_used, 12.0);
  EXPECT_EQ(outcome->tuner_report, "probed");
  EXPECT_GT(outcome->default_objective, 0.0);
  // The greedy walk must not end worse than the defaults it started from.
  EXPECT_LE(outcome->best_objective, outcome->default_objective * 1.01);
  EXPECT_GE(outcome->speedup_over_default, 0.99);
}

TEST(SessionTest, ConvergenceIsMonotoneNonIncreasing) {
  QuadraticSystem system;
  GreedyProbe tuner;
  SessionOptions options;
  options.budget.max_evaluations = 15;
  auto outcome = RunTuningSession(&tuner, &system, MockWorkload(), options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->convergence.size(), outcome->history.size());
  for (size_t i = 1; i < outcome->convergence.size(); ++i) {
    EXPECT_LE(outcome->convergence[i], outcome->convergence[i - 1]);
    EXPECT_GT(outcome->convergence_cost[i], outcome->convergence_cost[i - 1]);
  }
  EXPECT_DOUBLE_EQ(outcome->convergence.back(), outcome->best_objective);
}

TEST(SessionTest, NullArgumentsRejected) {
  QuadraticSystem system;
  GreedyProbe tuner;
  SessionOptions options;
  EXPECT_FALSE(RunTuningSession(nullptr, &system, MockWorkload(), options).ok());
  EXPECT_FALSE(RunTuningSession(&tuner, nullptr, MockWorkload(), options).ok());
}

TEST(SessionTest, ReproducibleForSameSeed) {
  SessionOptions options;
  options.budget.max_evaluations = 10;
  options.seed = 77;
  QuadraticSystem s1, s2;
  GreedyProbe t1, t2;
  auto a = RunTuningSession(&t1, &s1, MockWorkload(), options);
  auto b = RunTuningSession(&t2, &s2, MockWorkload(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->best_objective, b->best_objective);
  EXPECT_TRUE(a->best_config == b->best_config);
}

// Blindly evaluates distinct configurations until the budget runs out,
// ignoring each trial's outcome — the shape of tuner that used to make a
// session of 100% failed runs report best_objective = NaN with kOk.
class BlindSweep : public Tuner {
 public:
  std::string name() const override { return "blind-sweep"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override {
    const ParameterSpace& space = evaluator->space();
    while (!evaluator->Exhausted()) {
      Vec u(space.dims());
      for (double& v : u) v = rng->Uniform();
      Configuration c = space.FromUnitVector(u);
      auto obj = evaluator->Evaluate(c);
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
    }
    return Status::OK();
  }
  std::string Report() const override { return ""; }
};

TEST(SessionTest, AllTrialsFailedIsReportedNotNaN) {
  // Every run fails with a config-caused (non-retryable) failure: there is
  // no usable recommendation, and the session must say so with a distinct
  // status instead of returning kOk with best_objective = NaN.
  testing_util::ScriptedSystem system;
  system.Fails(50.0, /*transient=*/false);
  BlindSweep tuner;
  SessionOptions options;
  options.budget.max_evaluations = 4;
  options.seed = 5;
  options.measure_default = false;
  auto outcome = RunTuningSession(&tuner, &system, MockWorkload(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kAllTrialsFailed);
}

TEST(SessionTest, PartialFailuresStillProduceARecommendation) {
  // One good run among the failures: the session recommends it normally.
  testing_util::ScriptedSystem system;
  system.Fails(50.0, /*transient=*/false)
      .Fails(50.0, /*transient=*/false)
      .Runs(12.0);
  BlindSweep tuner;
  SessionOptions options;
  options.budget.max_evaluations = 3;
  options.seed = 5;
  options.measure_default = false;
  auto outcome = RunTuningSession(&tuner, &system, MockWorkload(), options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->best_objective, 12.0);
}

}  // namespace
}  // namespace atune
