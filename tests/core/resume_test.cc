// Resume-equivalence tests for the write-ahead trial journal (DESIGN.md §8):
// a session interrupted after k journaled records and resumed must reach an
// outcome bit-identical to the uninterrupted session — same history, same
// best, same budget, same robustness counters — for every registered tuner,
// with measurement noise on and transient faults injected.

#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/journal.h"
#include "core/registry.h"
#include "core/session.h"
#include "systems/fault_injector.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"

namespace atune {
namespace {

constexpr size_t kBudget = 8;
constexpr uint64_t kSeed = 11;
constexpr double kFaultRate = 0.15;

std::string JournalPath(const std::string& name) {
  return ::testing::TempDir() + "/resume_" + name + ".wal";
}

struct SessionRun {
  Status status = Status::OK();
  TuningOutcome outcome;
  bool ok() const { return status.ok(); }
};

// One full session against a freshly built noisy DBMS behind a transient
// fault injector, so the journal has to carry live robustness state.
SessionRun RunOnce(const std::string& tuner_name, const std::string& journal,
                   uint64_t kill_after, bool resume) {
  SessionRun run;
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(tuner_name);
  if (!tuner.ok()) {
    run.status = tuner.status();
    return run;
  }
  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/true);
  FaultProfile profile;
  profile.transient_failure_rate = kFaultRate;
  FaultInjectingSystem faulty(dbms.get(), profile);

  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = kSeed;
  options.measure_default = false;
  options.journal_path = journal;
  options.interrupt_after_records = kill_after;
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto outcome =
      resume ? ResumeTuningSession(tuner->get(), &faulty, workload, options)
             : RunTuningSession(tuner->get(), &faulty, workload, options);
  if (!outcome.ok()) {
    run.status = outcome.status();
    return run;
  }
  run.outcome = std::move(*outcome);
  return run;
}

// Exact (bitwise, not approximate) outcome equality. replayed_records and
// recovery_warnings are deliberately not compared: they describe HOW the
// session got here, not WHERE it ended up.
void ExpectOutcomeEq(const TuningOutcome& want, const TuningOutcome& got,
                     const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(want.history.size(), got.history.size());
  for (size_t i = 0; i < want.history.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    const Trial& a = want.history[i];
    const Trial& b = got.history[i];
    EXPECT_TRUE(a.config == b.config);
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.scaled, b.scaled);
    EXPECT_EQ(a.result.runtime_seconds, b.result.runtime_seconds);
    EXPECT_EQ(a.result.failed, b.result.failed);
    EXPECT_EQ(a.result.censored, b.result.censored);
    EXPECT_EQ(a.result.failure_reason, b.result.failure_reason);
    EXPECT_EQ(a.result.metrics, b.result.metrics);
  }
  EXPECT_TRUE(want.best_config == got.best_config);
  EXPECT_EQ(want.best_objective, got.best_objective);
  EXPECT_EQ(want.evaluations_used, got.evaluations_used);
  EXPECT_EQ(want.failed_runs, got.failed_runs);
  EXPECT_EQ(want.censored_runs, got.censored_runs);
  EXPECT_EQ(want.retried_runs, got.retried_runs);
  EXPECT_EQ(want.timed_out_runs, got.timed_out_runs);
  EXPECT_EQ(want.remeasured_runs, got.remeasured_runs);
}

uint64_t RecordCount(const std::string& path) {
  auto recovered = TrialJournal::OpenForResume(path);
  return recovered.ok() ? recovered->records.size() : 0;
}

// The headline guarantee, for every tuner the registry can aim at the DBMS:
// kill after 1, n/2, and n-1 journaled records, resume, compare everything.
TEST(ResumeTest, EveryRegistryTunerResumesBitIdentical) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  size_t applicable = 0;
  for (const std::string& name : registry.Names()) {
    const std::string path = JournalPath(name);
    std::remove(path.c_str());
    SessionRun baseline = RunOnce(name, path, /*kill_after=*/0,
                                  /*resume=*/false);
    if (!baseline.ok()) continue;  // tuner does not target this platform
    ++applicable;
    const uint64_t records = RecordCount(path);
    std::remove(path.c_str());
    if (records < 2) continue;  // one-shot: no mid-run to interrupt

    std::set<uint64_t> kill_points = {1, records / 2, records - 1};
    for (uint64_t kill : kill_points) {
      if (kill == 0 || kill >= records) continue;
      SCOPED_TRACE(name + " killed after " + std::to_string(kill) + "/" +
                   std::to_string(records) + " records");
      std::remove(path.c_str());
      SessionRun interrupted = RunOnce(name, path, kill, /*resume=*/false);
      // The interrupt must surface as kAborted, never success or a crash.
      ASSERT_FALSE(interrupted.ok());
      EXPECT_EQ(interrupted.status.code(), StatusCode::kAborted);
      // Recovery may drop a trailing incomplete batch, so the durable
      // prefix can be shorter than the kill point — never longer.
      const uint64_t durable = RecordCount(path);
      EXPECT_LE(durable, kill);

      SessionRun resumed = RunOnce(name, path, /*kill_after=*/0,
                                   /*resume=*/true);
      ASSERT_TRUE(resumed.ok()) << resumed.status.message();
      EXPECT_EQ(resumed.outcome.replayed_records, durable);
      ExpectOutcomeEq(baseline.outcome, resumed.outcome, name);
      std::remove(path.c_str());
    }
  }
  // The registry ships experiment-driven, model-based, and rule-based
  // tuners for this system; a refactor that silently un-registers them
  // would otherwise make this test pass vacuously.
  EXPECT_GE(applicable, 10u);
}

TEST(ResumeTest, ResumingACompletedSessionReplaysEverything) {
  const std::string path = JournalPath("completed");
  std::remove(path.c_str());
  SessionRun baseline =
      RunOnce("random-search", path, /*kill_after=*/0, /*resume=*/false);
  ASSERT_TRUE(baseline.ok());
  const uint64_t records = RecordCount(path);
  ASSERT_GT(records, 0u);

  SessionRun resumed =
      RunOnce("random-search", path, /*kill_after=*/0, /*resume=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.status.message();
  EXPECT_EQ(resumed.outcome.replayed_records, records);
  ExpectOutcomeEq(baseline.outcome, resumed.outcome, "completed");
  std::remove(path.c_str());
}

TEST(ResumeTest, ResumeWithoutJournalFileStartsFresh) {
  const std::string path = JournalPath("fresh_base");
  std::remove(path.c_str());
  SessionRun baseline =
      RunOnce("random-search", path, /*kill_after=*/0, /*resume=*/false);
  ASSERT_TRUE(baseline.ok());
  std::remove(path.c_str());

  // "Always resume" must be a safe operating mode: with no journal on disk
  // it degrades to a fresh (and identical) session.
  const std::string missing = JournalPath("fresh_missing");
  std::remove(missing.c_str());
  SessionRun resumed =
      RunOnce("random-search", missing, /*kill_after=*/0, /*resume=*/true);
  ASSERT_TRUE(resumed.ok()) << resumed.status.message();
  EXPECT_EQ(resumed.outcome.replayed_records, 0u);
  ExpectOutcomeEq(baseline.outcome, resumed.outcome, "fresh");
  std::remove(missing.c_str());
}

TEST(ResumeTest, MismatchedSessionParametersRefuseToResume) {
  const std::string path = JournalPath("mismatch");
  std::remove(path.c_str());
  SessionRun interrupted =
      RunOnce("random-search", path, /*kill_after=*/2, /*resume=*/false);
  ASSERT_FALSE(interrupted.ok());

  // Same journal, different seed: replay would silently diverge, so the
  // header check must reject it up front.
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create("random-search");
  ASSERT_TRUE(tuner.ok());
  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/true);
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = kSeed + 1;
  options.measure_default = false;
  options.journal_path = path;
  auto outcome = ResumeTuningSession(tuner->get(), dbms.get(),
                                     MakeDbmsOlapWorkload(1.0), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ResumeTest, InterruptCheckCallbackAbortsBetweenTrials) {
  const std::string path = JournalPath("signal");
  std::remove(path.c_str());
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create("random-search");
  ASSERT_TRUE(tuner.ok());
  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/true);
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = kSeed;
  options.measure_default = false;
  options.journal_path = path;
  // Models a SIGINT flag that goes up while trial 3 is in flight.
  size_t polls = 0;
  options.interrupt_check = [&polls]() { return ++polls > 3; };
  auto outcome = RunTuningSession(tuner->get(), dbms.get(),
                                  MakeDbmsOlapWorkload(1.0), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kAborted);
  // Whatever was committed before the signal is durable and resumable.
  EXPECT_GT(RecordCount(path), 0u);
  EXPECT_LT(RecordCount(path), kBudget);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace atune
