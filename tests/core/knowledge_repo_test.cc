// Knowledge repository (DESIGN.md §14) store-level guarantees:
//
//   * shard encode/decode is a lossless round trip; any truncation, bit
//     flip, or foreign file is rejected with kIoError, never a partial record
//   * concurrent multi-writer ingest never tears a shard — after an N-thread
//     storm every published shard CRC-verifies and LoadAll sees every record
//   * a crash at EVERY mutating I/O op of an ingest leaves the store
//     readable: prior shards intact, the in-flight shard absent or complete
//   * a corrupt shard is skipped (and counted), never fatal to LoadAll
//   * workload mapping is a pure function of the queried record set — a
//     long-lived multi-tenant process carries no normalization state across
//     queries (regression companion to the PR-4 counter-leak test)

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/io_env.h"
#include "core/knowledge_repo.h"

namespace atune {
namespace {

std::string TempDirFor(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  // Start from an empty directory: tests re-run in the same TempDir.
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  return dir;
}

KnowledgeRecord TestRecord(const std::string& id, double shift = 0.0) {
  KnowledgeRecord rec;
  rec.session_id = id;
  rec.tenant = "tenant-a";
  rec.tuner = "bayesian-gp";
  rec.system = "simulated-dbms";
  rec.workload = "olap";
  rec.workload_kind = "dbms";
  rec.scale = 1.0;
  rec.seed = 42;
  rec.budget = 20;
  rec.metric_names = {"throughput", "latency_p99", "cpu_util"};
  rec.fingerprint = {100.0 + shift, 5.0 + shift, 0.5 + shift * 0.01};
  rec.configs = {{0.25, 0.5, 0.75}, {0.1, 0.9, 0.3}};
  rec.objectives = {12.5 + shift, 14.0 + shift};
  return rec;
}

TEST(KnowledgeRepoTest, EncodeDecodeRoundTrip) {
  KnowledgeRecord rec = TestRecord("sess-rt", 3.0);
  auto decoded = DecodeKnowledgeRecord(EncodeKnowledgeRecord(rec));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->session_id, rec.session_id);
  EXPECT_EQ(decoded->tenant, rec.tenant);
  EXPECT_EQ(decoded->tuner, rec.tuner);
  EXPECT_EQ(decoded->system, rec.system);
  EXPECT_EQ(decoded->workload, rec.workload);
  EXPECT_EQ(decoded->workload_kind, rec.workload_kind);
  EXPECT_EQ(decoded->scale, rec.scale);
  EXPECT_EQ(decoded->seed, rec.seed);
  EXPECT_EQ(decoded->budget, rec.budget);
  EXPECT_EQ(decoded->metric_names, rec.metric_names);
  EXPECT_EQ(decoded->fingerprint, rec.fingerprint);  // bitwise
  EXPECT_EQ(decoded->configs, rec.configs);
  EXPECT_EQ(decoded->objectives, rec.objectives);
}

TEST(KnowledgeRepoTest, DecodeRejectsEveryCorruption) {
  std::string good = EncodeKnowledgeRecord(TestRecord("sess-corrupt"));
  ASSERT_TRUE(DecodeKnowledgeRecord(good).ok());

  // Truncation at every prefix length must fail closed (never crash, never
  // a partially-filled record).
  for (size_t len = 0; len < good.size(); ++len) {
    auto r = DecodeKnowledgeRecord(good.substr(0, len));
    ASSERT_FALSE(r.ok()) << "accepted truncation at " << len;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  // Single-bit flips across the whole shard: header flips break the frame,
  // payload flips break the CRC.
  for (size_t pos = 0; pos < good.size(); pos += 7) {
    std::string bad = good;
    bad[pos] = char(bad[pos] ^ 0x40);
    auto r = DecodeKnowledgeRecord(bad);
    ASSERT_FALSE(r.ok()) << "accepted bit flip at " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  // Trailing garbage breaks the length framing.
  EXPECT_FALSE(DecodeKnowledgeRecord(good + "x").ok());
  // A foreign file is not a shard.
  EXPECT_FALSE(DecodeKnowledgeRecord("not a knowledge shard at all").ok());
}

TEST(KnowledgeRepoTest, IngestLoadAllRoundTrip) {
  KnowledgeRepository repo(TempDirFor("krs_roundtrip"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        repo.Ingest(TestRecord("sess-" + std::to_string(i), double(i))).ok());
  }
  size_t skipped = 99;
  auto all = repo.LoadAll(&skipped);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(repo.ListShards().size(), 3u);
}

TEST(KnowledgeRepoTest, ReingestSameIdIsIdempotentAtomicReplace) {
  KnowledgeRepository repo(TempDirFor("krs_reingest"));
  ASSERT_TRUE(repo.Ingest(TestRecord("sess-x", 1.0)).ok());
  ASSERT_TRUE(repo.Ingest(TestRecord("sess-x", 2.0)).ok());
  auto all = repo.LoadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);  // same shard path, replaced not duplicated
  EXPECT_EQ((*all)[0].fingerprint[0], 102.0);  // latest write wins
}

TEST(KnowledgeRepoTest, InvalidSessionIdIsRejected) {
  KnowledgeRepository repo(TempDirFor("krs_badid"));
  KnowledgeRecord rec = TestRecord("ok");
  rec.session_id = "../escape";
  EXPECT_EQ(repo.Ingest(rec).code(), StatusCode::kInvalidArgument);
  rec.session_id = "";
  EXPECT_EQ(repo.Ingest(rec).code(), StatusCode::kInvalidArgument);
  rec.session_id = std::string(200, 'a');
  EXPECT_EQ(repo.Ingest(rec).code(), StatusCode::kInvalidArgument);
}

// The multi-writer contract: distinct session ids never contend (distinct
// shard paths), so an N-thread ingest storm must land every record with
// every shard CRC-verifying — no torn or interleaved writes.
TEST(KnowledgeRepoTest, ConcurrentIngestStormNeverTearsShards) {
  const size_t kThreads = 8;
  const size_t kPerThread = 16;
  KnowledgeRepository repo(TempDirFor("krs_storm"));

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  std::atomic<size_t> failures{0};
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&repo, &failures, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        KnowledgeRecord rec =
            TestRecord("t" + std::to_string(t) + "-s" + std::to_string(i),
                       double(t * 100 + i));
        if (!repo.Ingest(rec).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0u);

  // Every shard decodes (DecodeKnowledgeRecord re-verifies the CRC) and the
  // store holds exactly the records written.
  size_t skipped = 99;
  auto all = repo.LoadAll(&skipped);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(all->size(), kThreads * kPerThread);
  for (const std::string& shard : repo.ListShards()) {
    std::string bytes;
    ASSERT_TRUE(IoEnv::Default()
                    ->ReadFileToString(repo.dir() + "/" + shard, &bytes)
                    .ok());
    EXPECT_TRUE(DecodeKnowledgeRecord(bytes).ok()) << shard;
  }
}

// Crash-at-every-mutating-io-op: a forked child arms SetCrashAtIoOp(op) and
// ingests one record into a pre-populated store. Whatever op the crash
// lands on — tmp open, payload write, fsync, rename, dir fsync — the parent
// must find the store readable with zero corrupt shards: the two prior
// records intact and the in-flight one either absent or bit-complete.
TEST(KnowledgeRepoTest, CrashAtEveryIngestIoOpLeavesStoreReadable) {
  const std::string dir = TempDirFor("krs_crash");
  KnowledgeRepository repo(dir);
  ASSERT_TRUE(repo.Ingest(TestRecord("pre-0", 0.0)).ok());
  ASSERT_TRUE(repo.Ingest(TestRecord("pre-1", 1.0)).ok());
  const std::string expected_new =
      EncodeKnowledgeRecord(TestRecord("crashed", 7.0));

  bool saw_crash = false;
  bool child_completed = false;
  // An uninterrupted single-record publish performs ~6 mutating ops (open,
  // write, sync, close, rename, dir sync); sweep well past that so the last
  // probes run to completion and prove the sweep covered every op.
  for (uint64_t op = 1; op <= 12; ++op) {
    std::fflush(stdout);
    std::fflush(stderr);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::dup2(devnull, STDERR_FILENO);
        ::close(devnull);
      }
      SetCrashAtIoOp(op);
      KnowledgeRepository child_repo(dir);
      (void)child_repo.Ingest(TestRecord("crashed", 7.0));
      ::_exit(0);
    }
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    ASSERT_TRUE(WIFEXITED(wstatus));
    if (WEXITSTATUS(wstatus) == kCrashExitCode) {
      saw_crash = true;
    } else {
      ASSERT_EQ(WEXITSTATUS(wstatus), 0);
      child_completed = true;
    }

    size_t skipped = 99;
    auto all = repo.LoadAll(&skipped);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(skipped, 0u) << "corrupt shard after crash at op " << op;
    ASSERT_GE(all->size(), 2u) << "lost a pre-existing shard at op " << op;
    bool found_new = false;
    for (const KnowledgeRecord& rec : *all) {
      if (rec.session_id == "crashed") {
        found_new = true;
        // If published at all, the shard is bit-complete.
        std::string bytes;
        ASSERT_TRUE(IoEnv::Default()
                        ->ReadFileToString(
                            dir + "/" + repo.ShardName("crashed"), &bytes)
                        .ok());
        EXPECT_EQ(bytes, expected_new);
      }
    }
    EXPECT_EQ(all->size(), found_new ? 3u : 2u);
    // Reset for the next crash point.
    (void)IoEnv::Default()->Unlink(dir + "/" + repo.ShardName("crashed"));
  }
  EXPECT_TRUE(saw_crash);        // the sweep hit real crash points...
  EXPECT_TRUE(child_completed);  // ...and ran past the last mutating op
}

TEST(KnowledgeRepoTest, CorruptShardIsSkippedNotFatal) {
  KnowledgeRepository repo(TempDirFor("krs_corrupt"));
  ASSERT_TRUE(repo.Ingest(TestRecord("good-0", 0.0)).ok());
  ASSERT_TRUE(repo.Ingest(TestRecord("bad-1", 1.0)).ok());

  // Stomp one shard with garbage (a partial overwrite from a buggy writer).
  {
    std::ofstream out(repo.dir() + "/" + repo.ShardName("bad-1"),
                      std::ios::binary | std::ios::trunc);
    out << "ATUNEKRS garbage after the magic";
  }
  auto bad = repo.LoadShard(repo.ShardName("bad-1"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);

  size_t skipped = 0;
  auto all = repo.LoadAll(&skipped);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].session_id, "good-0");
}

TEST(KnowledgeRepoTest, LoadShardsPinnedListSkipsMissingEntries) {
  KnowledgeRepository repo(TempDirFor("krs_pinned"));
  ASSERT_TRUE(repo.Ingest(TestRecord("keep", 0.0)).ok());
  size_t skipped = 0;
  auto loaded = repo.LoadShards(
      {repo.ShardName("keep"), repo.ShardName("never-written")}, &skipped);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ((*loaded)[0].session_id, "keep");
}

TEST(KnowledgeRepoTest, InFlightTempFilesAreNeverListed) {
  KnowledgeRepository repo(TempDirFor("krs_tmp"));
  ASSERT_TRUE(repo.Ingest(TestRecord("visible", 0.0)).ok());
  {
    std::ofstream out(repo.dir() + "/s0-inflight.krs.tmp", std::ios::binary);
    out << "half-written";
  }
  std::vector<std::string> shards = repo.ListShards();
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], repo.ShardName("visible"));
}

// Latest-wins compaction: a repository reopened with a different bucket
// count leaves records stranded under stale bucket prefixes. Compact must
// unlink a stale file only when its canonical twin exists and decodes
// (every Ingest writes the canonical name, so the twin is the newer
// record), move a sole stale record to its canonical name instead of
// dropping knowledge, and converge to a pass that changes nothing.
TEST(KnowledgeRepoTest, CompactReconcilesStaleBucketsLatestWins) {
  const std::string dir = TempDirFor("krs_compact");
  KnowledgeRepository old_repo(dir, 16);
  KnowledgeRepository new_repo(dir, 4);
  // Ids sorted by how their bucket behaves across the reopen: two that
  // move, one that stays put.
  std::string moved_dup, moved_sole, stable;
  for (int i = 0; moved_dup.empty() || moved_sole.empty() || stable.empty();
       ++i) {
    std::string id = "sess-" + std::to_string(i);
    if (old_repo.ShardName(id) != new_repo.ShardName(id)) {
      (moved_dup.empty() ? moved_dup : moved_sole) = id;
    } else if (stable.empty()) {
      stable = id;
    }
  }
  ASSERT_TRUE(old_repo.Ingest(TestRecord(moved_dup, 1.0)).ok());
  ASSERT_TRUE(old_repo.Ingest(TestRecord(moved_sole, 2.0)).ok());
  ASSERT_TRUE(old_repo.Ingest(TestRecord(stable, 3.0)).ok());
  // Re-ingest after the reopen: the updated record publishes under the new
  // canonical name, leaving the 16-bucket file as a stale duplicate.
  ASSERT_TRUE(new_repo.Ingest(TestRecord(moved_dup, 10.0)).ok());
  ASSERT_EQ(new_repo.ListShards().size(), 4u);  // the duplicate is visible

  KnowledgeRepository::CompactionStats stats;
  ASSERT_TRUE(new_repo.Compact(&stats).ok());
  EXPECT_EQ(stats.superseded, 2u);
  EXPECT_EQ(stats.removed, 1u);   // moved_dup's stale twin
  EXPECT_EQ(stats.renamed, 1u);   // moved_sole's sole copy
  EXPECT_EQ(stats.corrupt_kept, 0u);

  // Every survivor sits under its current canonical name...
  std::vector<std::string> shards = new_repo.ListShards();
  ASSERT_EQ(shards.size(), 3u);
  for (const std::string& id : {moved_dup, moved_sole, stable}) {
    EXPECT_NE(std::find(shards.begin(), shards.end(), new_repo.ShardName(id)),
              shards.end())
        << id;
  }
  // ...the duplicate resolved latest-wins...
  auto dup = new_repo.LoadShard(new_repo.ShardName(moved_dup));
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->fingerprint[0], 110.0);  // the re-ingested record
  // ...and the sole stale record was moved, not dropped.
  auto sole = new_repo.LoadShard(new_repo.ShardName(moved_sole));
  ASSERT_TRUE(sole.ok());
  EXPECT_EQ(sole->fingerprint[0], 102.0);

  // A second pass finds nothing to do (idempotent fixed point).
  ASSERT_TRUE(new_repo.Compact(&stats).ok());
  EXPECT_EQ(stats.superseded, 0u);
  EXPECT_EQ(new_repo.ListShards().size(), 3u);
}

// The corrupt-skip contract extends to compaction: an undecodable file is
// never unlinked or moved, and a corrupt canonical twin shields its stale
// duplicate (deleting the only readable copy would destroy evidence).
TEST(KnowledgeRepoTest, CompactNeverTouchesCorruptShards) {
  const std::string dir = TempDirFor("krs_compact_corrupt");
  KnowledgeRepository old_repo(dir, 16);
  KnowledgeRepository new_repo(dir, 4);
  std::string dup, sole;
  for (int i = 0; dup.empty() || sole.empty(); ++i) {
    std::string id = "sess-" + std::to_string(i);
    if (old_repo.ShardName(id) != new_repo.ShardName(id)) {
      (dup.empty() ? dup : sole) = id;
    }
  }
  ASSERT_TRUE(old_repo.Ingest(TestRecord(dup, 1.0)).ok());
  ASSERT_TRUE(old_repo.Ingest(TestRecord(sole, 2.0)).ok());
  ASSERT_TRUE(new_repo.Ingest(TestRecord(dup, 10.0)).ok());
  // Corrupt the canonical twin and the sole stale record.
  for (const std::string& name :
       {new_repo.ShardName(dup), old_repo.ShardName(sole)}) {
    std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
    out << "ATUNEKRS stomped";
  }

  KnowledgeRepository::CompactionStats stats;
  ASSERT_TRUE(new_repo.Compact(&stats).ok());
  EXPECT_EQ(stats.superseded, 2u);
  EXPECT_EQ(stats.removed, 0u);
  EXPECT_EQ(stats.renamed, 0u);
  EXPECT_EQ(stats.corrupt_kept, 2u);
  // All three files are still exactly where they were.
  EXPECT_EQ(new_repo.ListShards().size(), 3u);
  // The readable stale copy of `dup` still loads (knowledge preserved).
  auto kept = new_repo.LoadShard(old_repo.ShardName(dup));
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->fingerprint[0], 101.0);
}

// Compaction runs concurrently with an 8-thread ingest storm: writers to
// distinct session ids never contend with the pass (distinct paths), so
// every ingest lands, every pre-existing stale record is reconciled, and
// the final store decodes clean.
TEST(KnowledgeRepoTest, EightThreadIngestWhileCompacting) {
  const std::string dir = TempDirFor("krs_compact_storm");
  {
    KnowledgeRepository old_repo(dir, 16);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(
          old_repo.Ingest(TestRecord("pre-" + std::to_string(i), double(i)))
              .ok());
    }
  }
  KnowledgeRepository repo(dir, 4);  // reopened: some pre-records are stale

  const size_t kThreads = 8;
  const size_t kPerThread = 16;
  std::atomic<size_t> failures{0};
  std::atomic<size_t> writers_left{kThreads};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&repo, &failures, &writers_left, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        KnowledgeRecord rec =
            TestRecord("t" + std::to_string(t) + "-s" + std::to_string(i),
                       double(t * 100 + i));
        if (!repo.Ingest(rec).ok()) failures.fetch_add(1);
      }
      writers_left.fetch_sub(1);
    });
  }
  // Chew through the stale pre-records while the storm is in flight.
  size_t passes = 0;
  while (writers_left.load() > 0) {
    EXPECT_TRUE(repo.Compact().ok());
    ++passes;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(passes, 1u);

  // One quiescent pass reaches the fixed point, then everything decodes.
  KnowledgeRepository::CompactionStats stats;
  ASSERT_TRUE(repo.Compact(&stats).ok());
  ASSERT_TRUE(repo.Compact(&stats).ok());
  EXPECT_EQ(stats.superseded, 0u);
  size_t skipped = 99;
  auto all = repo.LoadAll(&skipped);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(all->size(), 32u + kThreads * kPerThread);
  // Every survivor sits under its current canonical name.
  for (const std::string& shard : repo.ListShards()) {
    auto rec = repo.LoadShard(shard);
    ASSERT_TRUE(rec.ok()) << shard;
    EXPECT_EQ(shard, repo.ShardName(rec->session_id));
  }
}

// Regression companion to the PR-4 daemon counter-leak test: serving tenant
// A's mapping query must not perturb tenant B's. All pruning, deciles, and
// k-means statistics are computed per call from the queried record set, so
// the same query returns bitwise-identical results no matter what other
// tenants the process served before it — the repository object itself holds
// no normalization state to leak.
TEST(KnowledgeRepoTest, MappingCarriesNoStateAcrossTenantQueries) {
  const std::string dir = TempDirFor("krs_tenants");
  KnowledgeRepository repo(dir);
  // Tenant A: huge metric magnitudes. Tenant B: tiny ones. If any
  // normalization statistic survived a query, A's scales would shift B's
  // deciles or pruning.
  for (int i = 0; i < 5; ++i) {
    KnowledgeRecord a = TestRecord("a-" + std::to_string(i));
    a.tenant = "tenant-a";
    a.fingerprint = {1e9 + i * 1e8, 5e7 - i * 1e6, double(i)};
    ASSERT_TRUE(repo.Ingest(a).ok());
    KnowledgeRecord b = TestRecord("b-" + std::to_string(i));
    b.tenant = "tenant-b";
    b.fingerprint = {1e-3 + i * 1e-4, 2e-3 - i * 1e-4, double(i) * 1e-5};
    ASSERT_TRUE(repo.Ingest(b).ok());
  }
  auto all = repo.LoadAll();
  ASSERT_TRUE(all.ok());
  std::vector<KnowledgeRecord> a_records, b_records;
  for (const KnowledgeRecord& rec : *all) {
    (rec.tenant == "tenant-a" ? a_records : b_records).push_back(rec);
  }
  ASSERT_EQ(a_records.size(), 5u);
  ASSERT_EQ(b_records.size(), 5u);

  const Vec b_target = {1.5e-3, 1.7e-3, 2.5e-5};
  // Baseline: B's mapping in a process that never saw tenant A.
  WorkloadMapping baseline = MapWorkloadKnn(b_records, b_target, 3);
  ASSERT_FALSE(baseline.neighbors.empty());

  // Interleave A queries through the same repository object, re-running B's
  // query after each. Every rerun must be bitwise identical to the baseline.
  for (int round = 0; round < 3; ++round) {
    WorkloadMapping a_map =
        MapWorkloadKnn(a_records, {1.2e9, 4.9e7, 2.0}, 3);
    ASSERT_FALSE(a_map.neighbors.empty());
    WorkloadMapping again = MapWorkloadKnn(b_records, b_target, 3);
    EXPECT_EQ(again.metric_idx, baseline.metric_idx);
    EXPECT_EQ(again.neighbors, baseline.neighbors);
    EXPECT_EQ(again.distances, baseline.distances);  // bitwise
  }
}

TEST(KnowledgeRepoTest, SelectWarmConfigsIsRoundRobinBestFirstDeduped) {
  std::vector<KnowledgeRecord> records(2);
  records[0].session_id = "near";
  records[0].configs = {{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}};
  records[0].objectives = {3.0, 1.0, 2.0};  // best: (0.9,0.9)
  records[1].session_id = "far";
  records[1].configs = {{0.9, 0.9}, {0.2, 0.2}};
  records[1].objectives = {5.0, 4.0};  // best: (0.2,0.2)

  std::vector<Vec> picks = SelectWarmConfigs(records, {0, 1}, 2, 4);
  // Round-robin nearest first, best objective per neighbor, duplicates
  // ((0.9,0.9) appears in both) collapse.
  ASSERT_EQ(picks.size(), 4u);
  EXPECT_EQ(picks[0], (Vec{0.9, 0.9}));
  EXPECT_EQ(picks[1], (Vec{0.2, 0.2}));
  EXPECT_EQ(picks[2], (Vec{0.5, 0.5}));
  EXPECT_EQ(picks[3], (Vec{0.1, 0.1}));

  // Dimensionality mismatches are skipped entirely.
  EXPECT_TRUE(SelectWarmConfigs(records, {0, 1}, 3, 4).empty());
}

}  // namespace
}  // namespace atune
