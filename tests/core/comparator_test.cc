#include "core/comparator.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "tests/core/mock_system.h"

namespace atune {
namespace {

using testing_util::MockWorkload;
using testing_util::QuadraticSystem;

class FixedTuner : public Tuner {
 public:
  explicit FixedTuner(double x) : x_(x) {}
  std::string name() const override { return "fixed"; }
  TunerCategory category() const override { return TunerCategory::kRuleBased; }
  Status Tune(Evaluator* evaluator, Rng*) override {
    Configuration c;
    c.SetDouble("x", x_);
    c.SetDouble("y", 0.3);
    return evaluator->Evaluate(c).ok() ? Status::OK() : Status::OK();
  }

 private:
  double x_;
};

TEST(ComparatorTest, RanksTunersByQuality) {
  std::vector<std::pair<std::string, std::function<std::unique_ptr<Tuner>()>>>
      tuners = {
          {"near-optimal", [] { return std::make_unique<FixedTuner>(0.7); }},
          {"far-off", [] { return std::make_unique<FixedTuner>(0.0); }},
      };
  auto report = CompareTuners(
      tuners, [](uint64_t) { return std::make_unique<QuadraticSystem>(); },
      MockWorkload(), TuningBudget{3}, /*seeds=*/3, "quadratic");
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->rows.size(), 2u);
  EXPECT_LT(report->rows[0].mean_best_objective,
            report->rows[1].mean_best_objective);
  EXPECT_GT(report->rows[0].mean_speedup, report->rows[1].mean_speedup);
  EXPECT_EQ(report->rows[0].seeds, 3u);
  // Traces populated per seed.
  ASSERT_EQ(report->traces.size(), 2u);
  EXPECT_EQ(report->traces[0].size(), 3u);
}

TEST(ComparatorTest, TableRendering) {
  std::vector<std::pair<std::string, std::function<std::unique_ptr<Tuner>()>>>
      tuners = {
          {"t", [] { return std::make_unique<FixedTuner>(0.5); }},
      };
  auto report = CompareTuners(
      tuners, [](uint64_t) { return std::make_unique<QuadraticSystem>(); },
      MockWorkload(), TuningBudget{2}, 2, "quadratic");
  ASSERT_TRUE(report.ok());
  std::ostringstream os;
  report->ToTable().WritePretty(os);
  EXPECT_NE(os.str().find("tuner"), std::string::npos);
  EXPECT_NE(os.str().find("t"), std::string::npos);
}

TEST(ComparatorTest, RejectsEmptyInput) {
  EXPECT_FALSE(CompareTuners({},
                             [](uint64_t) {
                               return std::make_unique<QuadraticSystem>();
                             },
                             MockWorkload(), TuningBudget{2}, 1, "x")
                   .ok());
}

}  // namespace
}  // namespace atune
