#include "core/supervisor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "core/registry.h"
#include "core/session.h"
#include "systems/fault_injector.h"
#include "tests/core/mock_system.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"

namespace atune {
namespace {

using testing_util::MockWorkload;
using testing_util::QuadraticSystem;
using testing_util::ScriptedSystem;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Configuration XY(double x, double y) {
  Configuration c;
  c.Set("x", x);
  c.Set("y", y);
  return c;
}

Trial MakeTrial(const Configuration& config, bool failed) {
  Trial t;
  t.config = config;
  t.result.failed = failed;
  t.result.runtime_seconds = failed ? 1800.0 : 10.0;
  t.objective = failed ? 18000.0 : 10.0;
  return t;
}

bool IsFiniteAndInBounds(const ParameterSpace& space,
                         const Configuration& config) {
  if (!space.ValidateConfiguration(config).ok()) return false;
  for (const auto& [name, value] : config.values()) {
    if (std::holds_alternative<double>(value) &&
        !std::isfinite(std::get<double>(value))) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// SupervisorGuard: sanitization.

TEST(SupervisorGuardTest, RepairsNonFiniteAndOutOfRangeValues) {
  QuadraticSystem system;
  SupervisionPolicy policy;
  SupervisorGuard guard(policy, &system.space());

  Configuration admitted = guard.Admit(XY(kNaN, 7.5));
  EXPECT_TRUE(IsFiniteAndInBounds(system.space(), admitted));
  EXPECT_DOUBLE_EQ(admitted.DoubleOr("x", -1.0), 0.0);  // default for x
  EXPECT_DOUBLE_EQ(admitted.DoubleOr("y", -1.0), 1.0);  // clamped to max
  EXPECT_EQ(guard.stats().sanitized_configs, 1u);
  EXPECT_EQ(guard.stats().sanitized_values, 2u);
}

TEST(SupervisorGuardTest, FillsMissingAndDropsUnknownKeys) {
  QuadraticSystem system;
  SupervisionPolicy policy;
  SupervisorGuard guard(policy, &system.space());

  Configuration proposed;
  proposed.Set("x", 0.4);
  proposed.Set("bogus_knob", 123.0);  // not in the space
  Configuration admitted = guard.Admit(proposed);
  EXPECT_TRUE(IsFiniteAndInBounds(system.space(), admitted));
  EXPECT_EQ(admitted.size(), system.space().dims());
  EXPECT_DOUBLE_EQ(admitted.DoubleOr("x", -1.0), 0.4);
  EXPECT_GE(guard.stats().sanitized_configs, 1u);
}

TEST(SupervisorGuardTest, WellFormedProposalsPassThroughUntouched) {
  QuadraticSystem system;
  SupervisionPolicy policy;
  SupervisorGuard guard(policy, &system.space());

  Configuration proposed = XY(0.25, 0.75);
  Configuration admitted = guard.Admit(proposed);
  EXPECT_TRUE(admitted == proposed);
  EXPECT_EQ(guard.stats().sanitized_configs, 0u);
}

// ---------------------------------------------------------------------------
// SupervisorGuard: duplicate-livelock substitution.

TEST(SupervisorGuardTest, BreaksDuplicateLivelockDeterministically) {
  QuadraticSystem system;
  SupervisionPolicy policy;
  policy.duplicate_limit = 3;
  SupervisorGuard guard(policy, &system.space());

  Configuration stuck = XY(0.5, 0.5);
  // The first duplicate_limit proposals pass through (re-measuring a
  // config a few times is legitimate)...
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(guard.Admit(stuck) == stuck) << "proposal " << i;
  }
  // ...then the guard starts substituting LHS draws.
  Configuration substituted = guard.Admit(stuck);
  EXPECT_FALSE(substituted == stuck);
  EXPECT_TRUE(IsFiniteAndInBounds(system.space(), substituted));
  EXPECT_GE(guard.stats().duplicates_broken, 1u);

  // Determinism: a fresh guard with the same policy substitutes the same
  // configuration at the same point in the sequence.
  SupervisorGuard replay(policy, &system.space());
  for (int i = 0; i < 3; ++i) (void)replay.Admit(stuck);
  EXPECT_TRUE(replay.Admit(stuck) == substituted);
}

// ---------------------------------------------------------------------------
// SupervisorGuard: crash-region circuit breaker.

TEST(SupervisorGuardTest, BreakerOpensVetoesAndRecovers) {
  QuadraticSystem system;
  SupervisionPolicy policy;
  policy.breaker_failure_threshold = 3;
  policy.breaker_cooldown_trials = 4;
  policy.breaker_radius = 0.12;
  SupervisorGuard guard(policy, &system.space());

  const Configuration cliff = XY(0.9, 0.9);
  const Configuration safe = XY(0.1, 0.1);

  // Three failures in the same region open its breaker.
  for (int i = 0; i < 3; ++i) guard.Observe(MakeTrial(cliff, /*failed=*/true));
  EXPECT_EQ(guard.stats().breaker_opened, 1u);
  EXPECT_EQ(guard.open_regions(), 1u);

  // A proposal inside the open region is vetoed and substituted outside it.
  Configuration admitted = guard.Admit(cliff);
  EXPECT_FALSE(admitted == cliff);
  EXPECT_EQ(guard.stats().vetoes, 1u);
  // Proposals away from the region are untouched.
  EXPECT_TRUE(guard.Admit(safe) == safe);

  // After the cooldown elapses (counted in observed trials) the breaker
  // half-opens and lets a probe through.
  for (int i = 0; i < 4; ++i) guard.Observe(MakeTrial(safe, /*failed=*/false));
  EXPECT_TRUE(guard.Admit(cliff) == cliff);

  // A successful probe closes the breaker for good.
  guard.Observe(MakeTrial(cliff, /*failed=*/false));
  EXPECT_EQ(guard.stats().breaker_closed, 1u);
  EXPECT_EQ(guard.open_regions(), 0u);
  EXPECT_TRUE(guard.Admit(cliff) == cliff);
}

TEST(SupervisorGuardTest, FailedProbeReopensBreaker) {
  QuadraticSystem system;
  SupervisionPolicy policy;
  policy.breaker_failure_threshold = 2;
  policy.breaker_cooldown_trials = 3;
  SupervisorGuard guard(policy, &system.space());

  const Configuration cliff = XY(0.9, 0.9);
  const Configuration safe = XY(0.1, 0.1);
  for (int i = 0; i < 2; ++i) guard.Observe(MakeTrial(cliff, /*failed=*/true));
  EXPECT_EQ(guard.open_regions(), 1u);
  for (int i = 0; i < 3; ++i) guard.Observe(MakeTrial(safe, /*failed=*/false));
  // Half-open probe admitted...
  EXPECT_TRUE(guard.Admit(cliff) == cliff);
  // ...but it fails: the breaker reopens with a fresh cooldown.
  guard.Observe(MakeTrial(cliff, /*failed=*/true));
  EXPECT_EQ(guard.stats().breaker_reopened, 1u);
  EXPECT_EQ(guard.open_regions(), 1u);
  EXPECT_FALSE(guard.Admit(cliff) == cliff);
}

// ---------------------------------------------------------------------------
// SupervisedTuner: numerical-failure failover.

/// Primary that evaluates `evals_before_failure` trials, then reports a
/// numerical failure (kInternal) — per Tune() pass.
class FailingPrimary : public Tuner {
 public:
  explicit FailingPrimary(size_t evals_before_failure)
      : evals_(evals_before_failure) {}
  std::string name() const override { return "failing-primary"; }
  TunerCategory category() const override {
    return TunerCategory::kMachineLearning;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override {
    ++passes_;
    for (size_t i = 0; i < evals_; ++i) {
      if (evaluator->Exhausted()) return Status::OK();
      Vec u(evaluator->space().dims());
      for (double& v : u) v = rng->Uniform();
      auto obj = evaluator->Evaluate(evaluator->space().FromUnitVector(u));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) {
          return Status::OK();
        }
        return obj.status();
      }
    }
    return Status::Internal("synthetic numerical failure");
  }
  std::string Report() const override { return ""; }
  size_t passes() const { return passes_; }

 private:
  size_t evals_;
  size_t passes_ = 0;
};

TEST(SupervisedTunerTest, FailsOverAndSpendsTheWholeBudget) {
  QuadraticSystem system;
  SupervisionPolicy policy;
  policy.failover_cooldown_trials = 3;
  auto primary = std::make_unique<FailingPrimary>(2);
  FailingPrimary* primary_raw = primary.get();
  SupervisedTuner tuner(std::move(primary), nullptr, policy);

  SessionOptions options;
  options.budget.max_evaluations = 12;
  options.seed = 9;
  options.measure_default = false;
  auto outcome = RunTuningSession(&tuner, &system, MockWorkload(), options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The primary failed, the fallback covered its cooldown, and the primary
  // was probed again — repeatedly — until the budget was gone.
  EXPECT_GE(tuner.stats().failovers, 1u);
  EXPECT_GE(primary_raw->passes(), 2u);
  EXPECT_DOUBLE_EQ(outcome->evaluations_used, 12.0);
  EXPECT_TRUE(std::isfinite(outcome->best_objective));
}

TEST(SupervisedTunerTest, TerminalAfterMaxEpisodesStillFinishesOk) {
  QuadraticSystem system;
  SupervisionPolicy policy;
  policy.failover_cooldown_trials = 2;
  policy.max_failover_episodes = 2;
  // Fails without ever evaluating: every probe is an immediate failure.
  SupervisedTuner tuner(std::make_unique<FailingPrimary>(0), nullptr, policy);

  SessionOptions options;
  options.budget.max_evaluations = 10;
  options.seed = 9;
  options.measure_default = false;
  auto outcome = RunTuningSession(&tuner, &system, MockWorkload(), options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Episode cap reached: the terminal episode hands the fallback the rest
  // of the budget instead of probing a hopeless primary forever.
  EXPECT_EQ(tuner.stats().failovers, 2u);
  EXPECT_DOUBLE_EQ(outcome->evaluations_used, 10.0);
}

TEST(SupervisedTunerTest, FractionalLeaseRemainderStillTerminates) {
  // Censored/scaled trials can leave a lease with 0 < Remaining() < 1,
  // where every full-unit request is refused without the lease itself
  // being "spent". The lease-scoped refusal latch must make Exhausted()
  // true so `while (!Exhausted())` fallback tuners wind down instead of
  // spinning, and ClearLease() must reset it so the session continues.
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{6}, 10.0);
  evaluator.SetLease(0.5);
  EXPECT_FALSE(evaluator.Exhausted());
  auto refused = evaluator.Evaluate(system.space().DefaultConfiguration());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(evaluator.Exhausted());
  evaluator.ClearLease();
  EXPECT_FALSE(evaluator.Exhausted());
  EXPECT_TRUE(evaluator.Evaluate(system.space().DefaultConfiguration()).ok());
}

TEST(SupervisedTunerTest, NonNumericalErrorsPropagate) {
  // kInternal means "my math broke" and is recoverable by failover;
  // anything else (here: an invalid-argument error) must propagate.
  class BrokenTuner : public Tuner {
   public:
    std::string name() const override { return "broken"; }
    TunerCategory category() const override {
      return TunerCategory::kMachineLearning;
    }
    Status Tune(Evaluator*, Rng*) override {
      return Status::InvalidArgument("bad tuner");
    }
    std::string Report() const override { return ""; }
  };
  QuadraticSystem system;
  SupervisedTuner tuner(std::make_unique<BrokenTuner>());
  SessionOptions options;
  options.budget.max_evaluations = 4;
  options.measure_default = false;
  auto outcome = RunTuningSession(&tuner, &system, MockWorkload(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(SupervisedTunerTest, SupervisionIsANoOpOnHealthySessions) {
  // A well-behaved tuner on a well-behaved system: the supervised history
  // must be identical to the unsupervised one, trial for trial.
  auto run = [](bool supervise) {
    TunerRegistry registry;
    RegisterBuiltinTuners(&registry);
    auto tuner = registry.Create("random-search");
    EXPECT_TRUE(tuner.ok());
    std::unique_ptr<Tuner> t = std::move(*tuner);
    if (supervise) t = MakeSupervisedTuner(std::move(t));
    auto system = testing_util::MakeTestDbms(3);
    SessionOptions options;
    options.budget.max_evaluations = 8;
    options.seed = 21;
    options.measure_default = false;
    auto outcome = RunTuningSession(t.get(), system.get(),
                                    testing_util::SmallOlap(), options);
    EXPECT_TRUE(outcome.ok());
    return outcome.ok() ? outcome->history : std::vector<Trial>{};
  };
  std::vector<Trial> plain = run(false);
  std::vector<Trial> supervised = run(true);
  ASSERT_EQ(plain.size(), supervised.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_TRUE(plain[i].config == supervised[i].config) << "trial " << i;
    EXPECT_DOUBLE_EQ(plain[i].objective, supervised[i].objective);
  }
}

// ---------------------------------------------------------------------------
// Registry-wide property: under supervision, every tuner proposes only
// finite, in-bounds configurations — even at 15% injected faults.

TEST(SupervisorPropertyTest, RegistryProposesOnlyFiniteInBoundsConfigs) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  // 200 committed trials spread across the registry keeps this tsan/asan
  // friendly while still exercising every tuner's proposal path under
  // faults and supervision.
  const size_t kBudgetPerTuner = 200 / registry.Names().size() + 2;
  for (const std::string& name : registry.Names()) {
    auto created = registry.Create(name);
    ASSERT_TRUE(created.ok());
    auto tuner = MakeSupervisedTuner(std::move(*created));
    auto inner = testing_util::MakeTestDbms(17);
    {
      // Applicability probe: some tuners refuse this system class outright
      // (e.g. starfish wants MapReduce). Supervision is not expected to
      // paper over a kFailedPrecondition, so skip those tuners.
      auto probe_tuner = registry.Create(name);
      ASSERT_TRUE(probe_tuner.ok());
      SessionOptions probe;
      probe.budget.max_evaluations = 2;
      probe.seed = 29;
      probe.measure_default = false;
      auto sane = RunTuningSession(probe_tuner->get(), inner.get(),
                                   testing_util::SmallOlap(), probe);
      if (!sane.ok() &&
          sane.status().code() == StatusCode::kFailedPrecondition) {
        continue;
      }
    }
    FaultInjectingSystem faulty(inner.get(),
                                FaultProfile::FromRate(0.15, /*seed=*/23));
    SessionOptions options;
    options.budget.max_evaluations = kBudgetPerTuner;
    options.seed = 29;
    options.measure_default = false;
    auto outcome =
        RunTuningSession(tuner.get(), &faulty, testing_util::SmallOlap(),
                         options);
    if (!outcome.ok()) {
      // Honest "nothing usable" is acceptable; a crash/error status is not.
      EXPECT_EQ(outcome.status().code(), StatusCode::kAllTrialsFailed)
          << name << ": " << outcome.status().ToString();
      continue;
    }
    for (const Trial& t : outcome->history) {
      EXPECT_TRUE(IsFiniteAndInBounds(faulty.space(), t.config))
          << name << " proposed " << t.config.ToString();
    }
  }
}

}  // namespace
}  // namespace atune
