#ifndef ATUNE_TESTS_CORE_MOCK_SYSTEM_H_
#define ATUNE_TESTS_CORE_MOCK_SYSTEM_H_

#include <cmath>
#include <deque>
#include <string>
#include <utility>

#include "core/system.h"

namespace atune {
namespace testing_util {

/// Deterministic toy system for core/tuner tests: runtime is a quadratic
/// bowl over two knobs with its optimum at (x=0.7, y=0.3) and a floor of
/// `floor_seconds`. Iterative with 4 units. Counts executions.
class QuadraticSystem : public IterativeSystem {
 public:
  explicit QuadraticSystem(double floor_seconds = 10.0)
      : floor_(floor_seconds) {
    Status s = space_.Add(ParameterDef::Double("x", 0.0, 1.0, 0.0));
    s = space_.Add(ParameterDef::Double("y", 0.0, 1.0, 1.0));
    (void)s;
  }

  std::string name() const override { return "quadratic"; }
  const ParameterSpace& space() const override { return space_; }

  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload& workload) override {
    ++executions_;
    return Eval(config, workload, 1.0);
  }

  std::map<std::string, double> Descriptors() const override {
    return {{"total_ram_mb", 1024.0}};
  }
  std::vector<std::string> MetricNames() const override {
    return {"distance"};
  }

  size_t NumUnits(const Workload&) const override { return 4; }
  Result<ExecutionResult> ExecuteUnit(const Configuration& config,
                                      const Workload& workload,
                                      size_t) override {
    ++unit_executions_;
    return Eval(config, workload, 0.25);
  }
  double ReconfigurationCost() const override { return 0.1; }

  size_t executions() const { return executions_; }
  size_t unit_executions() const { return unit_executions_; }

  /// The known-optimal objective value.
  double optimum() const { return floor_; }

 private:
  Result<ExecutionResult> Eval(const Configuration& config,
                               const Workload& workload, double fraction) {
    double x = config.DoubleOr("x", 0.0);
    double y = config.DoubleOr("y", 1.0);
    double d2 = (x - 0.7) * (x - 0.7) + (y - 0.3) * (y - 0.3);
    ExecutionResult r;
    r.runtime_seconds = (floor_ + 100.0 * d2) * fraction * workload.scale;
    r.metrics["distance"] = std::sqrt(d2);
    return r;
  }

  ParameterSpace space_;
  double floor_;
  size_t executions_ = 0;
  size_t unit_executions_ = 0;
};

/// Replays a scripted sequence of ExecutionResults, one per Execute() call
/// (the last result repeats once the script runs dry). Gives robustness
/// tests exact control over failures, transience, and runtimes. Shares
/// QuadraticSystem's two-knob space so real configurations validate.
class ScriptedSystem : public TunableSystem {
 public:
  ScriptedSystem() {
    Status s = space_.Add(ParameterDef::Double("x", 0.0, 1.0, 0.0));
    s = space_.Add(ParameterDef::Double("y", 0.0, 1.0, 1.0));
    (void)s;
  }

  /// Appends a successful run of the given runtime to the script.
  ScriptedSystem& Runs(double runtime_seconds) {
    ExecutionResult r;
    r.runtime_seconds = runtime_seconds;
    script_.push_back(std::move(r));
    return *this;
  }

  /// Appends a failed run; `transient` marks it retryable.
  ScriptedSystem& Fails(double runtime_seconds, bool transient) {
    ExecutionResult r;
    r.runtime_seconds = runtime_seconds;
    r.failed = true;
    r.transient = transient;
    r.failure_reason = transient ? "scripted transient fault"
                                 : "scripted config failure";
    script_.push_back(std::move(r));
    return *this;
  }

  std::string name() const override { return "scripted"; }
  const ParameterSpace& space() const override { return space_; }

  Result<ExecutionResult> Execute(const Configuration&,
                                  const Workload&) override {
    ++executions_;
    if (script_.empty()) {
      ExecutionResult r;
      r.runtime_seconds = 1.0;
      return r;
    }
    ExecutionResult r = script_.front();
    if (script_.size() > 1) script_.pop_front();
    return r;
  }

  size_t executions() const { return executions_; }

 private:
  ParameterSpace space_;
  std::deque<ExecutionResult> script_;
  size_t executions_ = 0;
};

inline Workload MockWorkload() {
  Workload w;
  w.name = "mock";
  w.kind = "mock";
  return w;
}

}  // namespace testing_util
}  // namespace atune

#endif  // ATUNE_TESTS_CORE_MOCK_SYSTEM_H_
