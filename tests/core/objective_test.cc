#include "core/objective.h"

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "tests/core/mock_system.h"
#include "tests/testing_util.h"

namespace atune {
namespace {

using testing_util::MakeTestSpark;
using testing_util::MockWorkload;
using testing_util::QuadraticSystem;

TEST(CloudCostTest, SparkCostFollowsReservation) {
  CloudPricing pricing;
  auto spark = MakeTestSpark();
  Workload w = MakeSparkSqlAggregateWorkload(2.0, 2.0);
  Configuration small = spark->space().DefaultConfiguration();
  Configuration big = small;
  big.SetInt("num_executors", 16);
  big.SetInt("executor_cores", 2);
  big.SetInt("executor_memory_mb", 2048);
  ExecutionResult result;
  result.runtime_seconds = 3600.0;  // one hour
  double cost_small = ComputeRunCostUsd(pricing, spark->name(),
                                        spark->Descriptors(), small, result);
  double cost_big = ComputeRunCostUsd(pricing, spark->name(),
                                      spark->Descriptors(), big, result);
  EXPECT_GT(cost_big, cost_small * 4.0);
  // Known value: 2 executors x 1 core x 1h = 0.08 + 2GB x 1h = 0.01 + fixed.
  EXPECT_NEAR(cost_small, 0.01 + 2 * 0.04 + 2.0 * 0.005, 1e-9);
}

TEST(CloudCostTest, NonElasticSystemsPayForWholeCluster) {
  CloudPricing pricing;
  QuadraticSystem system;
  ExecutionResult result;
  result.runtime_seconds = 3600.0;
  Configuration c = system.space().DefaultConfiguration();
  // Descriptors: total_ram_mb=1024 (1 GB), default cores 8.
  double cost = ComputeRunCostUsd(pricing, system.name(),
                                  system.Descriptors(), c, result);
  EXPECT_NEAR(cost, 0.01 + 8.0 * 0.04 + 1.0 * 0.005, 1e-9);
}

TEST(CloudCostTest, ObjectivePenalizesDeadlineMissAndFailure) {
  CloudPricing pricing;
  auto spark = MakeTestSpark();
  ObjectiveFunction obj = MakeCloudCostObjective(
      pricing, spark->name(), spark->Descriptors(), /*deadline_s=*/100.0);
  Configuration c = spark->space().DefaultConfiguration();
  ExecutionResult in_time;
  in_time.runtime_seconds = 80.0;
  ExecutionResult late;
  late.runtime_seconds = 200.0;
  ExecutionResult crashed;
  crashed.runtime_seconds = 80.0;
  crashed.failed = true;
  EXPECT_LT(obj(c, in_time), obj(c, late));
  EXPECT_LT(obj(c, in_time), obj(c, crashed));
  // The deadline penalty must be disproportionate: a 2x-late run costs far
  // more than 2x the resource-seconds it consumed.
  ExecutionResult just_in_time;
  just_in_time.runtime_seconds = 99.0;
  EXPECT_GT(obj(c, late), obj(c, just_in_time) * 5.0);
}

TEST(SlaObjectiveTest, ViolationsDominateFootprint) {
  auto spark = MakeTestSpark();
  ObjectiveFunction obj =
      MakeLatencySlaObjective(spark->name(), spark->Descriptors());
  Configuration small = spark->space().DefaultConfiguration();
  Configuration big = small;
  big.SetInt("num_executors", 16);
  ExecutionResult meets;
  meets.metrics["sla_violation_ratio"] = 0.0;
  ExecutionResult violates;
  violates.metrics["sla_violation_ratio"] = 0.5;
  // Meeting the SLA with more resources beats violating it with fewer.
  EXPECT_LT(obj(big, meets), obj(small, violates));
  // Among SLA-meeting configs, the smaller footprint wins.
  EXPECT_LT(obj(small, meets), obj(big, meets));
  // Failure dominates everything.
  ExecutionResult crashed;
  crashed.failed = true;
  EXPECT_GT(obj(small, crashed), obj(small, violates));
}

TEST(SlaObjectiveTest, FallsBackToRuntimeWithoutMetric) {
  auto spark = MakeTestSpark();
  ObjectiveFunction obj =
      MakeLatencySlaObjective(spark->name(), spark->Descriptors());
  Configuration c = spark->space().DefaultConfiguration();
  ExecutionResult r;
  r.runtime_seconds = 123.0;
  EXPECT_DOUBLE_EQ(obj(c, r), 123.0);
}

TEST(EvaluatorObjectiveTest, CustomObjectiveDrivesBestTracking) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{4});
  // Invert the problem: prefer configurations with LARGE distance metric.
  evaluator.set_objective(
      [](const Configuration&, const ExecutionResult& result) {
        return -result.MetricOr("distance", 0.0);
      });
  Configuration near_opt;
  near_opt.SetDouble("x", 0.7);
  near_opt.SetDouble("y", 0.3);
  Configuration far;
  far.SetDouble("x", 0.0);
  far.SetDouble("y", 1.0);
  ASSERT_TRUE(evaluator.Evaluate(near_opt).ok());
  ASSERT_TRUE(evaluator.Evaluate(far).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  EXPECT_TRUE(evaluator.best()->config == far);
}

}  // namespace
}  // namespace atune
