// Replay-mode parity tests for the zero-copy (mmap) journal recovery path
// of DESIGN.md §11: every mode must recover identical records, warnings, and
// on-disk truncation from intact and damaged journals, and AppendRef must
// produce byte-identical files to Append.

#include "core/journal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/file_util.h"

namespace atune {
namespace {

JournalHeader TestHeader() {
  JournalHeader h;
  h.tuner_name = "mmap-tuner";
  h.system_name = "sys";
  h.workload_name = "wl";
  h.workload_kind = "mock";
  h.seed = 7;
  h.max_evaluations = 12;
  return h;
}

JournalRecord TestRecord(uint64_t seq) {
  JournalRecord r;
  r.seq = seq;
  r.config.SetDouble("x", 0.25 * static_cast<double>(seq));
  r.config.SetInt("workers", static_cast<int64_t>(seq) + 2);
  r.config.SetString("mode", seq % 2 == 0 ? "fast" : "safe");
  r.result.runtime_seconds = 5.0 + static_cast<double>(seq);
  r.result.metrics = {{"throughput", 200.0 - seq}};
  r.objective = r.result.runtime_seconds;
  r.cost = 1.0;
  r.round = seq;
  r.system_runs = seq + 1;
  r.used = static_cast<double>(seq + 1);
  return r;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteJournal(const std::string& path, size_t records) {
  auto journal = TrialJournal::Create(path, TestHeader());
  ASSERT_TRUE(journal.ok());
  (*journal)->set_sync(false);
  for (size_t i = 0; i < records; ++i) {
    ASSERT_TRUE((*journal)->Append(TestRecord(i)).ok());
  }
}

void ExpectSameRecovery(const TrialJournal::Recovered& a,
                        const TrialJournal::Recovered& b) {
  EXPECT_EQ(a.header_valid, b.header_valid);
  EXPECT_EQ(a.header, b.header);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].seq, b.records[i].seq);
    EXPECT_EQ(a.records[i].config.ToString(), b.records[i].config.ToString());
    EXPECT_EQ(a.records[i].result.runtime_seconds,
              b.records[i].result.runtime_seconds);
    EXPECT_EQ(a.records[i].objective, b.records[i].objective);
    EXPECT_EQ(a.records[i].used, b.records[i].used);
  }
  EXPECT_EQ(a.warnings, b.warnings);
}

class ReplayModeGuard {
 public:
  ~ReplayModeGuard() {
    SetJournalReplayModeForTesting(JournalReplayMode::kAuto);
  }
};

TEST(JournalMmap, IntactJournalRecoversIdenticallyInEveryMode) {
  ReplayModeGuard guard;
  std::string path = TempPath("mmap_intact.waljournal");
  WriteJournal(path, 9);
  std::string original;
  ASSERT_TRUE(ReadFileToString(path, &original).ok());

  SetJournalReplayModeForTesting(JournalReplayMode::kMmap);
  auto via_mmap = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(via_mmap.ok());
  // Recovery must not rewrite an intact file.
  std::string after;
  ASSERT_TRUE(ReadFileToString(path, &after).ok());
  EXPECT_EQ(after, original);

  SetJournalReplayModeForTesting(JournalReplayMode::kStreaming);
  auto via_stream = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(via_stream.ok());
  ExpectSameRecovery(*via_mmap, *via_stream);
  EXPECT_EQ(via_mmap->records.size(), 9u);
}

TEST(JournalMmap, TornTailTruncatesIdenticallyInEveryMode) {
  ReplayModeGuard guard;
  for (JournalReplayMode mode :
       {JournalReplayMode::kMmap, JournalReplayMode::kStreaming}) {
    std::string path = TempPath("mmap_torn.waljournal");
    WriteJournal(path, 6);
    // Tear the last frame: chop off its final 5 bytes.
    std::string file;
    ASSERT_TRUE(ReadFileToString(path, &file).ok());
    ASSERT_TRUE(AtomicWriteFile(path, file.substr(0, file.size() - 5)).ok());

    SetJournalReplayModeForTesting(mode);
    auto recovered = TrialJournal::OpenForResume(path);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->records.size(), 5u);
    ASSERT_EQ(recovered->warnings.size(), 1u);
    EXPECT_NE(recovered->warnings[0].find("corrupt or torn frame"),
              std::string::npos);
    // The mmap path must release its mapping before truncating, and the
    // truncated file must then recover cleanly (appendable, no warnings).
    recovered->journal.reset();
    auto again = TrialJournal::OpenForResume(path);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->records.size(), 5u);
    EXPECT_TRUE(again->warnings.empty());
  }
}

TEST(JournalMmap, MissingFileIsNotFoundInEveryMode) {
  ReplayModeGuard guard;
  std::string path = TempPath("mmap_missing.waljournal");
  for (JournalReplayMode mode :
       {JournalReplayMode::kAuto, JournalReplayMode::kMmap,
        JournalReplayMode::kStreaming}) {
    SetJournalReplayModeForTesting(mode);
    auto recovered = TrialJournal::OpenForResume(path);
    ASSERT_FALSE(recovered.ok());
    EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
  }
}

TEST(JournalMmap, GarbageFileDiscardsInEveryMode) {
  ReplayModeGuard guard;
  for (JournalReplayMode mode :
       {JournalReplayMode::kMmap, JournalReplayMode::kStreaming}) {
    std::string path = TempPath("mmap_garbage.waljournal");
    ASSERT_TRUE(AtomicWriteFile(path, "not a journal at all").ok());
    SetJournalReplayModeForTesting(mode);
    auto recovered = TrialJournal::OpenForResume(path);
    ASSERT_TRUE(recovered.ok());
    EXPECT_FALSE(recovered->header_valid);
    EXPECT_EQ(recovered->journal, nullptr);
    ASSERT_EQ(recovered->warnings.size(), 1u);
    EXPECT_NE(recovered->warnings[0].find("unreadable magic/header"),
              std::string::npos);
  }
}

TEST(JournalMmap, AppendRefFileByteIdenticalToAppend) {
  std::string via_append_path = TempPath("mmap_append.waljournal");
  std::string via_ref_path = TempPath("mmap_appendref.waljournal");
  {
    auto journal = TrialJournal::Create(via_append_path, TestHeader());
    ASSERT_TRUE(journal.ok());
    (*journal)->set_sync(false);
    for (uint64_t i = 0; i < 7; ++i) {
      ASSERT_TRUE((*journal)->Append(TestRecord(i)).ok());
    }
  }
  {
    auto journal = TrialJournal::Create(via_ref_path, TestHeader());
    ASSERT_TRUE(journal.ok());
    (*journal)->set_sync(false);
    for (uint64_t i = 0; i < 7; ++i) {
      JournalRecord rec = TestRecord(i);
      JournalRecordRef ref;
      ref.kind = rec.kind;
      ref.seq = rec.seq;
      ref.config = &rec.config;
      ref.result = &rec.result;
      ref.objective = rec.objective;
      ref.cost = rec.cost;
      ref.scaled = rec.scaled;
      ref.round = rec.round;
      ref.batch_size = rec.batch_size;
      ref.lane = rec.lane;
      ref.unit_index = rec.unit_index;
      ref.system_runs = rec.system_runs;
      ref.used = rec.used;
      ref.retried_runs = rec.retried_runs;
      ref.timed_out_runs = rec.timed_out_runs;
      ref.remeasured_runs = rec.remeasured_runs;
      ASSERT_TRUE((*journal)->AppendRef(ref).ok());
    }
  }
  std::string a, b;
  ASSERT_TRUE(ReadFileToString(via_append_path, &a).ok());
  ASSERT_TRUE(ReadFileToString(via_ref_path, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(JournalMmap, AppendAfterMmapRecoveryWorks) {
  ReplayModeGuard guard;
  std::string path = TempPath("mmap_append_after.waljournal");
  WriteJournal(path, 3);
  SetJournalReplayModeForTesting(JournalReplayMode::kMmap);
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  ASSERT_NE(recovered->journal, nullptr);
  recovered->journal->set_sync(false);
  EXPECT_EQ(recovered->journal->next_seq(), 3u);
  ASSERT_TRUE(recovered->journal->Append(TestRecord(3)).ok());
  recovered->journal.reset();
  auto again = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records.size(), 4u);
}

}  // namespace
}  // namespace atune
