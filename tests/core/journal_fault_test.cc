// Journal behavior on a hostile filesystem: every fault FaultInjectingIoEnv
// can produce — short writes mid-record, ENOSPC mid-header, fsync failure on
// the final record (fsyncgate: the cached bytes are GONE), mmap/stat races —
// must surface as a clean Status and leave the on-disk journal the longest
// valid record prefix. Session level: --journal-policy strict aborts with
// kIoError, degrade finishes un-journaled and refuses later resumes.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/io_env.h"
#include "core/journal.h"
#include "core/registry.h"
#include "core/session.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"

namespace atune {
namespace {

JournalHeader TestHeader() {
  JournalHeader h;
  h.tuner_name = "test-tuner";
  h.system_name = "test-system";
  h.workload_name = "wl";
  h.workload_kind = "mock";
  h.seed = 42;
  h.max_evaluations = 20;
  h.failure_penalty = 10.0;
  return h;
}

JournalRecord TestRecord(uint64_t seq) {
  JournalRecord r;
  r.seq = seq;
  r.config.SetDouble("x", 0.25 * static_cast<double>(seq));
  r.config.SetInt("workers", static_cast<int64_t>(seq) + 1);
  r.result.runtime_seconds = 10.0 + static_cast<double>(seq);
  r.result.metrics = {{"throughput", 100.0 - seq}};
  r.objective = r.result.runtime_seconds;
  r.cost = 1.0;
  r.round = seq;
  r.system_runs = seq + 1;
  r.used = static_cast<double>(seq + 1);
  return r;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

uint64_t RecoveredCount(const std::string& path) {
  auto recovered = TrialJournal::OpenForResume(path);
  EXPECT_TRUE(recovered.ok()) << recovered.status().message();
  return recovered.ok() ? recovered->records.size() : 0;
}

// RAII restore for the process-wide replay-mode override.
class ScopedReplayMode {
 public:
  explicit ScopedReplayMode(JournalReplayMode mode)
      : previous_(JournalReplayModeForTesting()) {
    SetJournalReplayModeForTesting(mode);
  }
  ~ScopedReplayMode() { SetJournalReplayModeForTesting(previous_); }

 private:
  JournalReplayMode previous_;
};

// Op-index map for a journal lifetime under FaultInjectingIoEnv (per-kind
// indices): Create = write#0 (preamble) + sync#0; the i-th Append (0-based)
// = write#(i+1) + sync#(i+1). Targeted rules below are derived from this.

TEST(JournalFaultTest, ShortWriteMidRecordIsReassembled) {
  std::string path = TempPath("journal_fault_short.wal");
  std::remove(path.c_str());
  IoFaultSchedule schedule;
  schedule.rules.push_back(
      {IoOpKind::kWrite, 3, IoFaultKind::kShortWrite, 1});  // 3rd append
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  {
    ScopedIoEnv install(&env);
    auto journal = TrialJournal::Create(path, TestHeader());
    ASSERT_TRUE(journal.ok()) << journal.status().message();
    for (uint64_t i = 0; i < 5; ++i) {
      Status s = (*journal)->Append(TestRecord(i));
      EXPECT_TRUE(s.ok()) << "append " << i << ": " << s.message();
    }
    EXPECT_EQ(env.injected(IoFaultKind::kShortWrite), 1u);
    EXPECT_EQ((*journal)->short_writes(), 1u);
    EXPECT_EQ((*journal)->write_retries(), 0u);  // short != retry
  }
  // The stitched-together frame is indistinguishable from a clean one.
  EXPECT_EQ(RecoveredCount(path), 5u);
}

TEST(JournalFaultTest, EnospcMidHeaderFailsCreateCleanly) {
  std::string path = TempPath("journal_fault_enospc.wal");
  std::remove(path.c_str());
  IoFaultSchedule schedule;
  schedule.rules.push_back(
      {IoOpKind::kWrite, 0, IoFaultKind::kEnospc, 1});  // preamble write
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);
  auto journal = TrialJournal::Create(path, TestHeader());
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kIoError);
}

TEST(JournalFaultTest, TransientEioDuringAppendIsRetried) {
  std::string path = TempPath("journal_fault_transient.wal");
  std::remove(path.c_str());
  IoFaultSchedule schedule;
  schedule.rules.push_back(
      {IoOpKind::kWrite, 2, IoFaultKind::kTransientEio, 2});  // 2nd append
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  {
    ScopedIoEnv install(&env);
    auto journal = TrialJournal::Create(path, TestHeader());
    ASSERT_TRUE(journal.ok());
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)->Append(TestRecord(i)).ok());
    }
    EXPECT_EQ((*journal)->write_retries(), 2u);
  }
  EXPECT_EQ(RecoveredCount(path), 3u);
}

// fsyncgate: the fsync of the final record fails and the page cache drops
// the unsynced frame. The append must report kIoError, the journal must
// re-verify its durable tail, and a later append must land cleanly after it.
TEST(JournalFaultTest, SyncFailureOnFinalRecordKeepsDurablePrefix) {
  std::string path = TempPath("journal_fault_syncgate.wal");
  std::remove(path.c_str());
  IoFaultSchedule schedule;
  schedule.rules.push_back(
      {IoOpKind::kSync, 5, IoFaultKind::kSyncFail, 1});  // 5th append's fsync
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  {
    ScopedIoEnv install(&env);
    auto journal = TrialJournal::Create(path, TestHeader());
    ASSERT_TRUE(journal.ok());
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE((*journal)->Append(TestRecord(i)).ok());
    }
    Status failed = (*journal)->Append(TestRecord(4));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_EQ(env.injected(IoFaultKind::kSyncFail), 1u);
    // next_seq must not advance past a record that never became durable.
    EXPECT_EQ((*journal)->next_seq(), 4u);
    // ReverifyTail re-opened the journal on the durable prefix: the retried
    // append goes through and stays sequence-dense.
    ASSERT_TRUE((*journal)->Append(TestRecord(4)).ok());
    EXPECT_EQ((*journal)->next_seq(), 5u);
  }
  EXPECT_EQ(RecoveredCount(path), 5u);
}

TEST(JournalFaultTest, PersistentEioMidRecordKeepsJournalAppendable) {
  std::string path = TempPath("journal_fault_eio.wal");
  std::remove(path.c_str());
  IoFaultSchedule schedule;
  schedule.rules.push_back(
      {IoOpKind::kWrite, 2, IoFaultKind::kPersistentEio, 1});  // 2nd append
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  {
    ScopedIoEnv install(&env);
    auto journal = TrialJournal::Create(path, TestHeader());
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append(TestRecord(0)).ok());
    Status failed = (*journal)->Append(TestRecord(1));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIoError);
    ASSERT_TRUE((*journal)->Append(TestRecord(1)).ok());
  }
  EXPECT_EQ(RecoveredCount(path), 2u);
}

TEST(JournalFaultTest, MapFailureFallsBackToStreamingRecovery) {
  std::string path = TempPath("journal_fault_mapfail.wal");
  std::remove(path.c_str());
  {
    auto journal = TrialJournal::Create(path, TestHeader());
    ASSERT_TRUE(journal.ok());
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE((*journal)->Append(TestRecord(i)).ok());
    }
  }
  IoFaultSchedule schedule;
  schedule.rules.push_back({IoOpKind::kRead, 0, IoFaultKind::kMapFail, 1});
  FaultInjectingIoEnv env(IoEnv::Default(), schedule);
  ScopedIoEnv install(&env);
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_FALSE(recovered->used_mmap);
  EXPECT_EQ(recovered->records.size(), 4u);
  EXPECT_EQ(env.injected(IoFaultKind::kMapFail), 1u);
}

// A concurrent truncation between mmap() and the post-map size check must
// divert recovery to the streaming reader instead of risking a SIGBUS on
// the mapped pages.
TEST(JournalFaultTest, StatSizeMismatchTripsTruncationGuard) {
  std::string path = TempPath("journal_fault_statrace.wal");
  std::remove(path.c_str());
  {
    auto journal = TrialJournal::Create(path, TestHeader());
    ASSERT_TRUE(journal.ok());
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)->Append(TestRecord(i)).ok());
    }
  }
  {
    IoFaultSchedule schedule;
    schedule.rules.push_back(
        {IoOpKind::kStat, 0, IoFaultKind::kStatShrink, 1});
    FaultInjectingIoEnv env(IoEnv::Default(), schedule);
    ScopedIoEnv install(&env);
    auto recovered = TrialJournal::OpenForResume(path);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    EXPECT_FALSE(recovered->used_mmap);
    EXPECT_EQ(recovered->records.size(), 3u);
  }
  {
    // Under kMmap the guard cannot fall back, so it must surface the race.
    ScopedReplayMode force_mmap(JournalReplayMode::kMmap);
    IoFaultSchedule schedule;
    schedule.rules.push_back(
        {IoOpKind::kStat, 0, IoFaultKind::kStatShrink, 1});
    FaultInjectingIoEnv env(IoEnv::Default(), schedule);
    ScopedIoEnv install(&env);
    auto recovered = TrialJournal::OpenForResume(path);
    ASSERT_FALSE(recovered.ok());
    EXPECT_EQ(recovered.status().code(), StatusCode::kIoError);
  }
  // Untouched file, honest stat: the mmap path works and agrees.
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records.size(), 3u);
}

TEST(JournalFaultTest, CreateRemovesStaleDegradedSidecar) {
  std::string path = TempPath("journal_fault_sidecar.wal");
  std::string sidecar = path + kDegradedSidecarSuffix;
  std::remove(path.c_str());
  {
    std::ofstream out(sidecar);
    out << "journal degraded: stale marker from a previous session\n";
  }
  auto journal = TrialJournal::Create(path, TestHeader());
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(IoEnv::Default()->FileSize(sidecar).status().code(),
            StatusCode::kNotFound);
}

// ----- Session-level policy tests -------------------------------------------

struct SessionRun {
  Status status = Status::OK();
  TuningOutcome outcome;
  bool ok() const { return status.ok(); }
};

SessionRun RunFaultedSession(const std::string& journal,
                             JournalPolicy policy) {
  SessionRun run;
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create("random-search");
  if (!tuner.ok()) {
    run.status = tuner.status();
    return run;
  }
  auto dbms = testing_util::MakeTestDbms(/*seed=*/11, /*noise=*/true);
  SessionOptions options;
  options.budget = TuningBudget{6};
  options.seed = 11;
  options.measure_default = false;
  options.journal_path = journal;
  options.journal_policy = policy;
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto outcome =
      RunTuningSession(tuner->get(), dbms.get(), workload, options);
  if (!outcome.ok()) {
    run.status = outcome.status();
    return run;
  }
  run.outcome = std::move(*outcome);
  return run;
}

// The schedule that breaks journaling mid-session: the 3rd trial's append
// (write#3; write#0 is the preamble) hits a persistent EIO.
IoFaultSchedule MidSessionEio() {
  IoFaultSchedule schedule;
  schedule.rules.push_back(
      {IoOpKind::kWrite, 3, IoFaultKind::kPersistentEio, 1});
  return schedule;
}

TEST(JournalFaultTest, StrictPolicySessionAbortsWithIoError) {
  std::string path = TempPath("journal_fault_strict.wal");
  std::remove(path.c_str());
  FaultInjectingIoEnv env(IoEnv::Default(), MidSessionEio());
  SessionRun run;
  {
    ScopedIoEnv install(&env);
    run = RunFaultedSession(path, JournalPolicy::kStrict);
  }
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kIoError);
  // Committed trials before the failure are durable and recoverable.
  EXPECT_EQ(RecoveredCount(path), 2u);
}

TEST(JournalFaultTest, DegradePolicySessionFinishesAndBlocksResume) {
  std::string path = TempPath("journal_fault_degrade.wal");
  std::string sidecar = path + kDegradedSidecarSuffix;
  std::remove(path.c_str());
  std::remove(sidecar.c_str());

  // Baseline: the same session with no journal at all.
  SessionRun baseline = RunFaultedSession("", JournalPolicy::kStrict);
  ASSERT_TRUE(baseline.ok()) << baseline.status.message();

  FaultInjectingIoEnv env(IoEnv::Default(), MidSessionEio());
  SessionRun degraded;
  {
    ScopedIoEnv install(&env);
    degraded = RunFaultedSession(path, JournalPolicy::kDegrade);
  }
  ASSERT_TRUE(degraded.ok()) << degraded.status.message();
  EXPECT_TRUE(degraded.outcome.journal_degraded);
  EXPECT_TRUE(IoEnv::Default()->FileSize(sidecar).ok());

  // Degrading must not change what the tuner computed: the outcome matches
  // the un-journaled session bit for bit.
  ASSERT_EQ(degraded.outcome.history.size(), baseline.outcome.history.size());
  for (size_t i = 0; i < baseline.outcome.history.size(); ++i) {
    EXPECT_TRUE(degraded.outcome.history[i].config ==
                baseline.outcome.history[i].config);
    EXPECT_EQ(degraded.outcome.history[i].objective,
              baseline.outcome.history[i].objective);
  }
  EXPECT_TRUE(degraded.outcome.best_config == baseline.outcome.best_config);
  EXPECT_EQ(degraded.outcome.best_objective, baseline.outcome.best_objective);
  EXPECT_EQ(degraded.outcome.evaluations_used,
            baseline.outcome.evaluations_used);

  // The sidecar blocks resume: the journal is an incomplete record.
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create("random-search");
  ASSERT_TRUE(tuner.ok());
  auto dbms = testing_util::MakeTestDbms(/*seed=*/11, /*noise=*/true);
  SessionOptions options;
  options.budget = TuningBudget{6};
  options.seed = 11;
  options.measure_default = false;
  options.journal_path = path;
  auto resumed = ResumeTuningSession(tuner->get(), dbms.get(),
                                     MakeDbmsOlapWorkload(1.0), options);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace atune
