// Determinism contract of Evaluator::EvaluateBatch (DESIGN.md §6): a batch
// of k configurations must commit exactly the trials the serial loop would
// have — bit-identical configs, objectives, runtimes, costs, budget — with
// only Trial::round differing (the whole batch is one wall-clock round).

#include <vector>

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/hardware.h"
#include "tests/core/mock_system.h"

namespace atune {
namespace {

std::unique_ptr<SimulatedDbms> MakeDbms(uint64_t seed) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  return std::make_unique<SimulatedDbms>(ClusterSpec::MakeUniform(1, node),
                                         seed);
}

std::vector<Configuration> SampleConfigs(const ParameterSpace& space,
                                         size_t n) {
  Rng rng(7);
  std::vector<Configuration> configs;
  configs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    configs.push_back(space.RandomConfiguration(&rng));
  }
  return configs;
}

// Everything except `round` must match bitwise; EXPECT_EQ on doubles is
// deliberate — the contract is bit-identity, not tolerance.
void ExpectTrialsIdentical(const std::vector<Trial>& serial,
                           const std::vector<Trial>& batched) {
  ASSERT_EQ(serial.size(), batched.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].config == batched[i].config) << "trial " << i;
    EXPECT_EQ(serial[i].objective, batched[i].objective) << "trial " << i;
    EXPECT_EQ(serial[i].result.runtime_seconds,
              batched[i].result.runtime_seconds)
        << "trial " << i;
    EXPECT_EQ(serial[i].result.failed, batched[i].result.failed)
        << "trial " << i;
    EXPECT_EQ(serial[i].cost, batched[i].cost) << "trial " << i;
    EXPECT_EQ(serial[i].scaled, batched[i].scaled) << "trial " << i;
  }
}

TEST(EvaluatorBatchTest, BatchIdenticalToSerialLoop) {
  auto serial_system = MakeDbms(11);
  auto batch_system = MakeDbms(11);
  Workload workload = MakeDbmsOlapWorkload(0.5);
  std::vector<Configuration> configs =
      SampleConfigs(serial_system->space(), 7);

  Evaluator serial(serial_system.get(), workload, TuningBudget{10});
  for (const Configuration& c : configs) {
    ASSERT_TRUE(serial.Evaluate(c).ok());
  }

  Evaluator batched(batch_system.get(), workload, TuningBudget{10});
  auto objs = batched.EvaluateBatch(configs, /*parallelism=*/4);
  ASSERT_TRUE(objs.ok()) << objs.status().ToString();
  ASSERT_EQ(objs->size(), configs.size());

  ExpectTrialsIdentical(serial.history(), batched.history());
  EXPECT_EQ(serial.used(), batched.used());
  ASSERT_NE(serial.best(), nullptr);
  ASSERT_NE(batched.best(), nullptr);
  EXPECT_EQ(serial.best()->objective, batched.best()->objective);
  EXPECT_TRUE(serial.best()->config == batched.best()->config);
  for (size_t i = 0; i < objs->size(); ++i) {
    EXPECT_EQ((*objs)[i], serial.history()[i].objective);
  }
  // The one allowed difference: the batch was a single round.
  EXPECT_EQ(batched.history().front().round, batched.history().back().round);
  EXPECT_NE(serial.history().front().round, serial.history().back().round);
}

TEST(EvaluatorBatchTest, InterleavedBatchesMatchSerial) {
  // Serial singles and batches interleave on the same evaluator; the clone
  // run-index bookkeeping (Clone + SkipRuns) must keep the noise stream
  // aligned with a pure-serial evaluator throughout.
  auto serial_system = MakeDbms(23);
  auto batch_system = MakeDbms(23);
  Workload workload = MakeDbmsOlapWorkload(0.5);
  std::vector<Configuration> configs =
      SampleConfigs(serial_system->space(), 8);

  Evaluator serial(serial_system.get(), workload, TuningBudget{10});
  for (const Configuration& c : configs) {
    ASSERT_TRUE(serial.Evaluate(c).ok());
  }

  Evaluator mixed(batch_system.get(), workload, TuningBudget{10});
  ASSERT_TRUE(mixed.Evaluate(configs[0]).ok());
  ASSERT_TRUE(mixed
                  .EvaluateBatch({configs[1], configs[2], configs[3]},
                                 /*parallelism=*/3)
                  .ok());
  ASSERT_TRUE(mixed.Evaluate(configs[4]).ok());
  ASSERT_TRUE(mixed
                  .EvaluateBatch({configs[5], configs[6], configs[7]},
                                 /*parallelism=*/2)
                  .ok());

  ExpectTrialsIdentical(serial.history(), mixed.history());
  EXPECT_EQ(serial.used(), mixed.used());
}

TEST(EvaluatorBatchTest, BudgetExhaustionTruncatesDeterministically) {
  auto serial_system = MakeDbms(31);
  auto batch_system = MakeDbms(31);
  Workload workload = MakeDbmsOlapWorkload(0.5);
  std::vector<Configuration> configs =
      SampleConfigs(serial_system->space(), 6);

  // Serial reference under the same budget of 5: evaluates 5, then fails.
  Evaluator serial(serial_system.get(), workload, TuningBudget{5});
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(serial.Evaluate(configs[i]).ok());
  }

  Evaluator batched(batch_system.get(), workload, TuningBudget{5});
  ASSERT_TRUE(batched.Evaluate(configs[0]).ok());
  ASSERT_TRUE(batched.Evaluate(configs[1]).ok());
  // 3 budget units remain; a batch of 4 must truncate to exactly 3.
  auto objs = batched.EvaluateBatch(
      {configs[2], configs[3], configs[4], configs[5]}, /*parallelism=*/4);
  ASSERT_TRUE(objs.ok()) << objs.status().ToString();
  EXPECT_EQ(objs->size(), 3u);
  EXPECT_TRUE(batched.Exhausted());
  EXPECT_DOUBLE_EQ(batched.used(), 5.0);
  ExpectTrialsIdentical(serial.history(), batched.history());

  // With no whole unit left, a further batch is refused outright.
  auto over = batched.EvaluateBatch({configs[5]}, /*parallelism=*/2);
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(batched.history().size(), 5u);
}

TEST(EvaluatorBatchTest, ValidatesWholeBatchUpFront) {
  auto system = MakeDbms(5);
  Workload workload = MakeDbmsOlapWorkload(0.5);
  std::vector<Configuration> configs = SampleConfigs(system->space(), 2);
  Configuration bad;
  bad.SetDouble("nonexistent_knob", 1.0);

  Evaluator evaluator(system.get(), workload, TuningBudget{10});
  auto objs =
      evaluator.EvaluateBatch({configs[0], bad, configs[1]}, 2);
  EXPECT_FALSE(objs.ok());
  // Nothing ran, nothing was charged: all-or-nothing validation.
  EXPECT_TRUE(evaluator.history().empty());
  EXPECT_DOUBLE_EQ(evaluator.used(), 0.0);
}

TEST(EvaluatorBatchTest, NonClonableSystemFallsBackToSerial) {
  // The mock system does not override Clone(); the batch must still run
  // (serially, on the parent) with identical accounting.
  testing_util::QuadraticSystem system;
  Evaluator evaluator(&system, testing_util::MockWorkload(), TuningBudget{4});
  Configuration c = system.space().DefaultConfiguration();
  auto objs = evaluator.EvaluateBatch({c, c, c}, /*parallelism=*/4);
  ASSERT_TRUE(objs.ok());
  EXPECT_EQ(objs->size(), 3u);
  EXPECT_EQ(system.executions(), 3u);
  EXPECT_DOUBLE_EQ(evaluator.used(), 3.0);
  EXPECT_EQ(evaluator.history()[0].round, evaluator.history()[2].round);
}

}  // namespace
}  // namespace atune
