#include "core/tuner.h"

#include <gtest/gtest.h>

#include "tests/core/mock_system.h"

namespace atune {
namespace {

using testing_util::MockWorkload;
using testing_util::QuadraticSystem;
using testing_util::ScriptedSystem;

TEST(EvaluatorTest, EnforcesBudget) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{3});
  Configuration c = system.space().DefaultConfiguration();
  EXPECT_TRUE(evaluator.Evaluate(c).ok());
  EXPECT_TRUE(evaluator.Evaluate(c).ok());
  EXPECT_FALSE(evaluator.Exhausted());
  EXPECT_TRUE(evaluator.Evaluate(c).ok());
  EXPECT_TRUE(evaluator.Exhausted());
  auto over = evaluator.Evaluate(c);
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(system.executions(), 3u);
  EXPECT_DOUBLE_EQ(evaluator.used(), 3.0);
}

TEST(EvaluatorTest, RejectsInvalidConfiguration) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  Configuration bad;
  bad.SetDouble("x", 0.5);  // missing "y"
  EXPECT_FALSE(evaluator.Evaluate(bad).ok());
  EXPECT_EQ(system.executions(), 0u);  // never reached the system
  EXPECT_DOUBLE_EQ(evaluator.used(), 0.0);  // invalid configs cost nothing
}

TEST(EvaluatorTest, TracksBestTrial) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  Configuration good;
  good.SetDouble("x", 0.7);
  good.SetDouble("y", 0.3);
  Configuration bad;
  bad.SetDouble("x", 0.0);
  bad.SetDouble("y", 1.0);
  ASSERT_TRUE(evaluator.Evaluate(bad).ok());
  ASSERT_TRUE(evaluator.Evaluate(good).ok());
  ASSERT_TRUE(evaluator.Evaluate(bad).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  EXPECT_TRUE(evaluator.best()->config == good);
  EXPECT_NEAR(evaluator.best()->objective, system.optimum(), 1e-9);
  EXPECT_EQ(evaluator.history().size(), 3u);
}

TEST(EvaluatorTest, FailurePenaltyApplied) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5},
                      /*failure_penalty=*/10.0);
  Configuration c = system.space().DefaultConfiguration();
  ExecutionResult failed;
  failed.runtime_seconds = 7.0;
  failed.failed = true;
  EXPECT_DOUBLE_EQ(evaluator.ObjectiveOf(c, failed), 70.0);
  ExecutionResult ok_run;
  ok_run.runtime_seconds = 7.0;
  EXPECT_DOUBLE_EQ(evaluator.ObjectiveOf(c, ok_run), 7.0);
}

TEST(EvaluatorTest, UnitExecutionCostsFraction) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{2});
  Configuration c = system.space().DefaultConfiguration();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(evaluator.EvaluateUnit(c, i).ok()) << i;
  }
  EXPECT_DOUBLE_EQ(evaluator.used(), 1.0);  // 4 units of a 4-unit system
  EXPECT_EQ(system.unit_executions(), 4u);
  EXPECT_FALSE(evaluator.Exhausted());
}

TEST(EvaluatorTest, ScaledEvaluationCostsFractionAndSkipsBest) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{4});
  Configuration c = system.space().DefaultConfiguration();
  // Scaled run: cheap objective but must not become "best".
  auto scaled = evaluator.EvaluateScaled(c, 0.25);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(evaluator.best(), nullptr);
  EXPECT_DOUBLE_EQ(evaluator.used(), 0.25);
  auto full = evaluator.Evaluate(c);
  ASSERT_TRUE(full.ok());
  ASSERT_NE(evaluator.best(), nullptr);
  EXPECT_GT(evaluator.best()->objective, *scaled);
  EXPECT_TRUE(evaluator.history().front().scaled);
  EXPECT_FALSE(evaluator.history().back().scaled);
  EXPECT_FALSE(evaluator.EvaluateScaled(c, 0.0).ok());
  EXPECT_FALSE(evaluator.EvaluateScaled(c, 1.5).ok());
}

TEST(EvaluatorTest, CompositeTrialsRecorded) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{4});
  Configuration c = system.space().DefaultConfiguration();
  ExecutionResult aggregate;
  aggregate.runtime_seconds = 42.0;
  evaluator.RecordCompositeTrial(c, aggregate, 0.5);
  ASSERT_NE(evaluator.best(), nullptr);
  EXPECT_DOUBLE_EQ(evaluator.best()->objective, 42.0);
  EXPECT_DOUBLE_EQ(evaluator.history().back().cost, 0.5);
  // Composite trials do not consume budget by themselves.
  EXPECT_DOUBLE_EQ(evaluator.used(), 0.0);
}

TEST(EvaluatorTest, EarlyAbortCensorsAndChargesFraction) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  Configuration good;
  good.SetDouble("x", 0.7);
  good.SetDouble("y", 0.3);
  Configuration bad;
  bad.SetDouble("x", 0.0);
  bad.SetDouble("y", 1.0);  // runtime 10 + 100*(0.49+0.49) = 108
  bool aborted = false;
  // Threshold below the bad config's runtime: censored, fractional cost.
  auto obj = evaluator.EvaluateWithEarlyAbort(bad, 20.0, &aborted);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(aborted);
  EXPECT_DOUBLE_EQ(*obj, 20.0);
  EXPECT_LT(evaluator.used(), 0.5);
  EXPECT_EQ(evaluator.best(), nullptr);  // censored runs never become best
  EXPECT_TRUE(evaluator.history().back().scaled);
  // A run under the threshold completes normally at full cost.
  double used_before = evaluator.used();
  auto full = evaluator.EvaluateWithEarlyAbort(good, 20.0, &aborted);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(aborted);
  EXPECT_NEAR(*full, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(evaluator.used(), used_before + 1.0);
  ASSERT_NE(evaluator.best(), nullptr);
  EXPECT_FALSE(evaluator.EvaluateWithEarlyAbort(good, 0.0, &aborted).ok());
}

TEST(EvaluatorTest, EarlyAbortThresholdAtRuntimeRunsToCompletion) {
  // Threshold exactly equal to (and above) the runtime: the run finishes,
  // is never censored, and pays full cost.
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  Configuration good;
  good.SetDouble("x", 0.7);
  good.SetDouble("y", 0.3);  // runtime exactly 10.0
  bool aborted = true;
  auto at = evaluator.EvaluateWithEarlyAbort(good, 10.0, &aborted);
  ASSERT_TRUE(at.ok());
  EXPECT_FALSE(aborted);
  EXPECT_NEAR(*at, 10.0, 1e-9);
  EXPECT_FALSE(evaluator.history().back().result.censored);
  EXPECT_DOUBLE_EQ(evaluator.used(), 1.0);

  aborted = true;
  auto above = evaluator.EvaluateWithEarlyAbort(good, 1.0e9, &aborted);
  ASSERT_TRUE(above.ok());
  EXPECT_FALSE(aborted);
  EXPECT_DOUBLE_EQ(evaluator.used(), 2.0);
}

TEST(EvaluatorTest, EarlyAbortDoesNotCensorFailedRuns) {
  // A run that already failed is not "aborted early" — the failure's
  // wall-clock charge stands in full and the trial stays uncensored, so
  // crashing never masquerades as a cheap censored measurement.
  ScriptedSystem system;
  system.Fails(300.0, /*transient=*/false);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  bool aborted = true;
  auto obj = evaluator.EvaluateWithEarlyAbort(
      system.space().DefaultConfiguration(), 20.0, &aborted);
  ASSERT_TRUE(obj.ok());
  EXPECT_FALSE(aborted);
  const Trial& trial = evaluator.history().back();
  EXPECT_TRUE(trial.result.failed);
  EXPECT_FALSE(trial.result.censored);
  EXPECT_DOUBLE_EQ(trial.result.runtime_seconds, 300.0);
  EXPECT_DOUBLE_EQ(evaluator.used(), 1.0);
}

TEST(EvaluatorTest, EarlyAbortCostFloorsNearExhaustion) {
  // Even an abort at a tiny observed fraction charges at least 0.05 of a
  // budget unit: detecting "this config is bad" is never free, and the
  // floor keeps a pathological tuner from probing forever on fumes.
  ScriptedSystem system;
  system.Runs(10000.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{1});
  bool aborted = false;
  auto obj = evaluator.EvaluateWithEarlyAbort(
      system.space().DefaultConfiguration(), 20.0, &aborted);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(aborted);
  // Observed fraction 20/10000 = 0.002 floors at 0.05.
  EXPECT_DOUBLE_EQ(evaluator.used(), 0.05);
  EXPECT_DOUBLE_EQ(evaluator.history().back().cost, 0.05);
  EXPECT_FALSE(evaluator.Exhausted());
}

TEST(EvaluatorTest, BudgetRefusalIsTerminal) {
  // Censored trials can strand a fractional budget remnant where a full
  // run no longer fits. The first refused evaluation must flip
  // Exhausted() — otherwise a tuner looping `while (!Exhausted())` around
  // a refusing Evaluate() livelocks on the remnant.
  ScriptedSystem system;
  system.Runs(10000.0);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{1});
  bool aborted = false;
  ASSERT_TRUE(evaluator
                  .EvaluateWithEarlyAbort(system.space().DefaultConfiguration(),
                                          20.0, &aborted)
                  .ok());
  ASSERT_TRUE(aborted);
  EXPECT_FALSE(evaluator.Exhausted());  // 0.95 of a unit still unspent
  auto refused = evaluator.Evaluate(system.space().DefaultConfiguration());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(evaluator.Exhausted());  // refusal is terminal
}

TEST(TunerCategoryTest, Names) {
  EXPECT_STREQ(TunerCategoryToString(TunerCategory::kRuleBased),
               "rule-based");
  EXPECT_STREQ(TunerCategoryToString(TunerCategory::kCostModeling),
               "cost-modeling");
  EXPECT_STREQ(TunerCategoryToString(TunerCategory::kSimulationBased),
               "simulation-based");
  EXPECT_STREQ(TunerCategoryToString(TunerCategory::kExperimentDriven),
               "experiment-driven");
  EXPECT_STREQ(TunerCategoryToString(TunerCategory::kMachineLearning),
               "machine-learning");
  EXPECT_STREQ(TunerCategoryToString(TunerCategory::kAdaptive), "adaptive");
}

}  // namespace
}  // namespace atune
