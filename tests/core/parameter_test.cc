#include "core/parameter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace atune {
namespace {

TEST(ParameterDefTest, IntValidateAndRange) {
  ParameterDef p = ParameterDef::Int("knob", 10, 100, 50);
  EXPECT_TRUE(p.Validate(ParamValue{int64_t{10}}).ok());
  EXPECT_TRUE(p.Validate(ParamValue{int64_t{100}}).ok());
  EXPECT_EQ(p.Validate(ParamValue{int64_t{9}}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(p.Validate(ParamValue{int64_t{101}}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(p.Validate(ParamValue{2.5}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(p.Cardinality(), 91u);
}

TEST(ParameterDefTest, LinearNormalizeRoundTrip) {
  ParameterDef p = ParameterDef::Int("knob", 0, 100, 50);
  EXPECT_DOUBLE_EQ(p.Normalize(ParamValue{int64_t{0}}), 0.0);
  EXPECT_DOUBLE_EQ(p.Normalize(ParamValue{int64_t{100}}), 1.0);
  EXPECT_DOUBLE_EQ(p.Normalize(ParamValue{int64_t{50}}), 0.5);
  EXPECT_EQ(std::get<int64_t>(p.Denormalize(0.5)), 50);
  EXPECT_EQ(std::get<int64_t>(p.Denormalize(-1.0)), 0);   // clamped
  EXPECT_EQ(std::get<int64_t>(p.Denormalize(2.0)), 100);  // clamped
}

TEST(ParameterDefTest, LogScaleNormalizeIsGeometric) {
  ParameterDef p = ParameterDef::Int("mb", 1, 1024, 32, "", /*log=*/true);
  // Midpoint of the log range of [1, 1024] is 32.
  EXPECT_EQ(std::get<int64_t>(p.Denormalize(0.5)), 32);
  EXPECT_NEAR(p.Normalize(ParamValue{int64_t{32}}), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(p.Normalize(ParamValue{int64_t{1}}), 0.0);
  EXPECT_DOUBLE_EQ(p.Normalize(ParamValue{int64_t{1024}}), 1.0);
}

TEST(ParameterDefTest, DoubleRoundTripAcrossGrid) {
  ParameterDef p = ParameterDef::Double("frac", 0.1, 0.9, 0.5);
  for (double u = 0.0; u <= 1.0; u += 0.125) {
    ParamValue v = p.Denormalize(u);
    EXPECT_TRUE(p.Validate(v).ok());
    EXPECT_NEAR(p.Normalize(v), u, 1e-12);
  }
}

TEST(ParameterDefTest, BoolBehavior) {
  ParameterDef p = ParameterDef::Bool("flag", true);
  EXPECT_EQ(std::get<bool>(p.default_value()), true);
  EXPECT_DOUBLE_EQ(p.Normalize(ParamValue{false}), 0.0);
  EXPECT_DOUBLE_EQ(p.Normalize(ParamValue{true}), 1.0);
  EXPECT_EQ(std::get<bool>(p.Denormalize(0.49)), false);
  EXPECT_EQ(std::get<bool>(p.Denormalize(0.51)), true);
  EXPECT_EQ(p.Cardinality(), 2u);
}

TEST(ParameterDefTest, CategoricalBehavior) {
  ParameterDef p =
      ParameterDef::Categorical("codec", {"none", "lz4", "zlib"}, 1);
  EXPECT_EQ(std::get<std::string>(p.default_value()), "lz4");
  EXPECT_TRUE(p.Validate(ParamValue{std::string("zlib")}).ok());
  EXPECT_EQ(p.Validate(ParamValue{std::string("gzip")}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(std::get<std::string>(p.Denormalize(0.0)), "none");
  EXPECT_EQ(std::get<std::string>(p.Denormalize(0.5)), "lz4");
  EXPECT_EQ(std::get<std::string>(p.Denormalize(1.0)), "zlib");
  EXPECT_DOUBLE_EQ(p.Normalize(ParamValue{std::string("zlib")}), 1.0);
  EXPECT_EQ(p.Cardinality(), 3u);
}

TEST(ParameterDefTest, NanDoubleRejected) {
  ParameterDef p = ParameterDef::Double("x", 0.0, 1.0, 0.5);
  EXPECT_FALSE(p.Validate(ParamValue{std::nan("")}).ok());
}

TEST(ParamValueTest, ToString) {
  EXPECT_EQ(ParamValueToString(ParamValue{int64_t{42}}), "42");
  EXPECT_EQ(ParamValueToString(ParamValue{0.75}), "0.75");
  EXPECT_EQ(ParamValueToString(ParamValue{true}), "true");
  EXPECT_EQ(ParamValueToString(ParamValue{false}), "false");
  EXPECT_EQ(ParamValueToString(ParamValue{std::string("kryo")}), "kryo");
}

TEST(ParamTypeTest, Names) {
  EXPECT_STREQ(ParamTypeToString(ParamType::kInt), "int");
  EXPECT_STREQ(ParamTypeToString(ParamType::kDouble), "double");
  EXPECT_STREQ(ParamTypeToString(ParamType::kBool), "bool");
  EXPECT_STREQ(ParamTypeToString(ParamType::kCategorical), "categorical");
}

}  // namespace
}  // namespace atune
