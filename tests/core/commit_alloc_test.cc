// Verifies the zero-allocation commit contract of DESIGN.md §11: in steady
// state — history reserved, journal frame buffer at its high-water mark,
// tracing and metrics off, default robustness policy — the Evaluator's
// commit path (CommitTrial through the journal append) performs no heap
// allocations. This binary links common/alloc_hook_override.cc, which
// replaces operator new/delete with counting versions and installs the
// counter into the alloc hook; the library itself never pays for counting.

#include <gtest/gtest.h>

#include <string>

#include "common/alloc_hook.h"
#include "core/journal.h"
#include "core/tuner.h"
#include "tests/core/mock_system.h"

namespace atune {
namespace {

using testing_util::MockWorkload;
using testing_util::QuadraticSystem;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CommitAlloc, HookIsInstalledInThisBinary) {
  uint64_t before = SampleAllocCount();
  // Direct operator-new call: unlike a new-expression, it cannot be elided
  // by the paired-allocation optimization.
  void* p = ::operator new(64);
  EXPECT_GT(SampleAllocCount(), before);
  ::operator delete(p);
}

TEST(CommitAlloc, SteadyStateCommitAllocatesNothing) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{24});
  JournalHeader header;
  header.tuner_name = "alloc-test";
  header.max_evaluations = 24;
  auto journal = TrialJournal::Create(TempPath("alloc.waljournal"), header);
  ASSERT_TRUE(journal.ok());
  (*journal)->set_sync(false);
  evaluator.set_journal(journal->get());

  Configuration c;
  c.SetDouble("x", 0.5);
  c.SetDouble("y", 0.5);
  // Warmup: first commits grow the history vector slack and the journal
  // frame buffer to their high-water marks.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(evaluator.Evaluate(c).ok());
  // Steady state: every commit from here on must be allocation-free.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(evaluator.Evaluate(c).ok());
    EXPECT_EQ(evaluator.last_commit_allocs(), 0u) << "trial " << i;
  }
}

TEST(CommitAlloc, SteadyStateCommitWithoutJournalAllocatesNothing) {
  QuadraticSystem system;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{16});
  Configuration c;
  c.SetDouble("x", 0.25);
  c.SetDouble("y", 0.75);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(evaluator.Evaluate(c).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(evaluator.Evaluate(c).ok());
    EXPECT_EQ(evaluator.last_commit_allocs(), 0u) << "trial " << i;
  }
}

}  // namespace
}  // namespace atune
