#include "core/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "tuners/builtin.h"

namespace atune {
namespace {

class NoopTuner : public Tuner {
 public:
  std::string name() const override { return "noop"; }
  TunerCategory category() const override { return TunerCategory::kRuleBased; }
  Status Tune(Evaluator*, Rng*) override { return Status::OK(); }
};

TEST(RegistryTest, AddCreateNames) {
  TunerRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  registry.Add("noop", [] { return std::make_unique<NoopTuner>(); });
  EXPECT_TRUE(registry.Contains("noop"));
  auto tuner = registry.Create("noop");
  ASSERT_TRUE(tuner.ok());
  EXPECT_EQ((*tuner)->name(), "noop");
  EXPECT_EQ(registry.Create("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"noop"});
}

TEST(RegistryTest, BuiltinTunersAllRegisteredAndInstantiable) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  // All six taxonomy categories must be represented.
  EXPECT_GE(registry.size(), 20u);
  std::set<TunerCategory> categories;
  for (const std::string& name : registry.Names()) {
    auto tuner = registry.Create(name);
    ASSERT_TRUE(tuner.ok()) << name;
    categories.insert((*tuner)->category());
  }
  EXPECT_EQ(categories.size(), 6u);
}

TEST(RegistryTest, CategoryRepresentativesPerSystem) {
  for (const char* system :
       {"simulated-dbms", "simulated-mapreduce", "simulated-spark"}) {
    TunerRegistry registry;
    RegisterCategoryRepresentatives(&registry, system);
    EXPECT_EQ(registry.size(), 6u) << system;
    std::set<TunerCategory> categories;
    for (const std::string& name : registry.Names()) {
      auto tuner = registry.Create(name);
      ASSERT_TRUE(tuner.ok());
      categories.insert((*tuner)->category());
    }
    EXPECT_EQ(categories.size(), 6u) << system;
  }
}

}  // namespace
}  // namespace atune
