#include "core/parameter_space.h"

#include <gtest/gtest.h>

namespace atune {
namespace {

ParameterSpace MakeSpace() {
  ParameterSpace space;
  EXPECT_TRUE(space.Add(ParameterDef::Int("mem_mb", 1, 1024, 64, "", true)).ok());
  EXPECT_TRUE(space.Add(ParameterDef::Double("frac", 0.0, 1.0, 0.5)).ok());
  EXPECT_TRUE(space.Add(ParameterDef::Bool("flag", false)).ok());
  EXPECT_TRUE(
      space.Add(ParameterDef::Categorical("codec", {"a", "b", "c"}, 0)).ok());
  return space;
}

TEST(ParameterSpaceTest, AddRejectsDuplicates) {
  ParameterSpace space;
  ASSERT_TRUE(space.Add(ParameterDef::Int("x", 0, 1, 0)).ok());
  EXPECT_EQ(space.Add(ParameterDef::Int("x", 0, 5, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ParameterSpaceTest, FindAndIndexOf) {
  ParameterSpace space = MakeSpace();
  EXPECT_EQ(space.dims(), 4u);
  auto def = space.Find("frac");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ((*def)->name(), "frac");
  EXPECT_EQ(*space.IndexOf("flag"), 2u);
  EXPECT_EQ(space.Find("missing").status().code(), StatusCode::kNotFound);
}

TEST(ParameterSpaceTest, DefaultConfigurationValidates) {
  ParameterSpace space = MakeSpace();
  Configuration defaults = space.DefaultConfiguration();
  EXPECT_TRUE(space.ValidateConfiguration(defaults).ok());
  EXPECT_EQ(*defaults.GetInt("mem_mb"), 64);
  EXPECT_EQ(*defaults.GetString("codec"), "a");
}

TEST(ParameterSpaceTest, ValidateCatchesProblems) {
  ParameterSpace space = MakeSpace();
  Configuration c = space.DefaultConfiguration();
  c.SetInt("mem_mb", 5000);  // out of range
  EXPECT_EQ(space.ValidateConfiguration(c).code(), StatusCode::kOutOfRange);
  c = space.DefaultConfiguration();
  c.SetInt("unknown", 1);
  EXPECT_EQ(space.ValidateConfiguration(c).code(),
            StatusCode::kInvalidArgument);
  Configuration partial;
  partial.SetInt("mem_mb", 64);
  EXPECT_EQ(space.ValidateConfiguration(partial).code(),
            StatusCode::kNotFound);
}

TEST(ParameterSpaceTest, UnitVectorRoundTrip) {
  ParameterSpace space = MakeSpace();
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    Configuration c = space.RandomConfiguration(&rng);
    ASSERT_TRUE(space.ValidateConfiguration(c).ok());
    Vec u = space.ToUnitVector(c);
    ASSERT_EQ(u.size(), 4u);
    Configuration back = space.FromUnitVector(u);
    EXPECT_TRUE(c == back) << c.ToString() << " vs " << back.ToString();
  }
}

TEST(ParameterSpaceTest, MissingParamsEncodeAsDefault) {
  ParameterSpace space = MakeSpace();
  Configuration empty;
  Vec u = space.ToUnitVector(empty);
  Configuration back = space.FromUnitVector(u);
  EXPECT_TRUE(back == space.DefaultConfiguration());
}

TEST(ParameterSpaceTest, NeighborStaysValidAndClose) {
  ParameterSpace space = MakeSpace();
  Rng rng(23);
  Configuration base = space.DefaultConfiguration();
  Vec base_u = space.ToUnitVector(base);
  for (int i = 0; i < 30; ++i) {
    Configuration n = space.Neighbor(base, 0.05, &rng);
    ASSERT_TRUE(space.ValidateConfiguration(n).ok());
    Vec u = space.ToUnitVector(n);
    for (size_t d = 0; d < u.size(); ++d) {
      EXPECT_GE(u[d], 0.0);
      EXPECT_LE(u[d], 1.0);
    }
  }
  // Large sigma should actually move points.
  Configuration far = space.Neighbor(base, 0.5, &rng);
  EXPECT_FALSE(Configuration::Diff(base, far).empty());
}

TEST(ParameterSpaceTest, SubspaceSelectsAndOrders) {
  ParameterSpace space = MakeSpace();
  auto sub = space.Subspace({"codec", "mem_mb"});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->dims(), 2u);
  EXPECT_EQ(sub->param(0).name(), "codec");
  EXPECT_EQ(sub->param(1).name(), "mem_mb");
  EXPECT_FALSE(space.Subspace({"nope"}).ok());
}

TEST(ParameterSpaceTest, RandomConfigurationCoversSpace) {
  ParameterSpace space = MakeSpace();
  Rng rng(29);
  bool flag_true = false, flag_false = false;
  std::set<std::string> codecs;
  for (int i = 0; i < 200; ++i) {
    Configuration c = space.RandomConfiguration(&rng);
    flag_true |= *c.GetBool("flag");
    flag_false |= !*c.GetBool("flag");
    codecs.insert(*c.GetString("codec"));
  }
  EXPECT_TRUE(flag_true);
  EXPECT_TRUE(flag_false);
  EXPECT_EQ(codecs.size(), 3u);
}

}  // namespace
}  // namespace atune
