// DriftDetector (DESIGN.md §15) contracts:
//
//   * pure function of the Observe() sequence — two detectors fed the same
//     values agree on every firing, statistic, and counter, bitwise
//   * fires on a sustained regime change, stays quiet on a stationary
//     stream with bounded noise, and ignores one-off spikes below delta
//   * scale-invariant: the same relative degradation fires at the same
//     observation regardless of absolute magnitude (log-objective statistic)
//   * only degradations fire (one-sided: improvements never do)
//   * a firing restarts the window, so the same evidence never fires twice

#include "core/drift_detector.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace atune {
namespace {

// Firing positions for a value sequence — the whole observable behavior.
std::vector<size_t> FiringRounds(DriftDetector* d,
                                 const std::vector<double>& values) {
  std::vector<size_t> rounds;
  for (size_t i = 0; i < values.size(); ++i) {
    if (d->Observe(values[i])) rounds.push_back(i);
  }
  return rounds;
}

std::vector<double> StationaryThenShift(double base, double factor,
                                        size_t shift_at, size_t total,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    double level = i < shift_at ? base : base * factor;
    values.push_back(level * (1.0 + rng.Uniform(-0.005, 0.005)));
  }
  return values;
}

TEST(DriftDetectorTest, PureFunctionOfTheObserveSequence) {
  const std::vector<double> values =
      StationaryThenShift(40.0, 1.8, 12, 40, /*seed=*/7);
  DriftDetector a;
  DriftDetector b;
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(a.Observe(values[i]), b.Observe(values[i])) << "round " << i;
    EXPECT_EQ(a.statistic(), b.statistic()) << "round " << i;  // bitwise
    EXPECT_EQ(a.firings(), b.firings());
    EXPECT_EQ(a.window_count(), b.window_count());
  }
  EXPECT_EQ(a.observed(), values.size());
}

TEST(DriftDetectorTest, FiresOnShiftStaysQuietWhenStationary) {
  DriftDetector quiet;
  auto no_fire =
      FiringRounds(&quiet, StationaryThenShift(40.0, 1.0, 0, 60, /*seed=*/3));
  EXPECT_TRUE(no_fire.empty());
  EXPECT_EQ(quiet.firings(), 0u);

  DriftDetector fires;
  auto rounds =
      FiringRounds(&fires, StationaryThenShift(40.0, 1.8, 12, 40, /*seed=*/3));
  ASSERT_EQ(rounds.size(), 1u);  // one regime change, one firing
  EXPECT_GE(rounds[0], 12u);     // never before the shift
  EXPECT_LE(rounds[0], 12u + 8u);  // and within a handful of observations
  EXPECT_EQ(fires.firings(), 1u);
}

TEST(DriftDetectorTest, ScaleInvariantFiringRound) {
  // The same relative degradation at 1000x the magnitude must fire at the
  // identical observation: the statistic runs on log-objectives.
  DriftDetector small;
  DriftDetector large;
  std::vector<double> base = StationaryThenShift(0.04, 1.8, 12, 40, /*seed=*/9);
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(v * 1000.0);
  EXPECT_EQ(FiringRounds(&small, base), FiringRounds(&large, scaled));
}

TEST(DriftDetectorTest, OneSidedImprovementsNeverFire) {
  DriftDetector d;
  // A 2x *speedup* is a regime change too, but a welcome one.
  auto rounds = FiringRounds(&d, StationaryThenShift(40.0, 0.5, 12, 40, 5));
  EXPECT_TRUE(rounds.empty());
}

TEST(DriftDetectorTest, MinSamplesGatesFiringAndResetRestartsWindow) {
  DriftDetectorOptions options;
  options.min_samples = 6;
  DriftDetector d(options);
  // A huge jump right away: the warm-up gate must hold until min_samples.
  std::vector<double> values(12, 400.0);
  values[0] = 40.0;  // mean seeds low, everything after is "drift"
  auto rounds = FiringRounds(&d, values);
  ASSERT_FALSE(rounds.empty());
  EXPECT_GE(rounds[0] + 1, options.min_samples);

  // After the firing the window restarted: the stream is now stationary at
  // the new level, so the same evidence never fires twice.
  EXPECT_EQ(rounds.size(), 1u);
  EXPECT_LT(d.window_count(), d.observed());

  // Reset preserves lifetime counters but clears the window.
  size_t fired = d.firings();
  d.Reset();
  EXPECT_EQ(d.window_count(), 0u);
  EXPECT_EQ(d.statistic(), 0.0);
  EXPECT_EQ(d.firings(), fired);
}

TEST(DriftDetectorTest, DeltaAbsorbsSubThresholdNoise) {
  DriftDetectorOptions options;
  options.delta = 0.05;  // generous margin
  DriftDetector d(options);
  // ±1% wobble sits far below delta in log space: never fires.
  auto rounds = FiringRounds(&d, StationaryThenShift(40.0, 1.0, 0, 200, 11));
  EXPECT_TRUE(rounds.empty());
}

TEST(DriftDetectorTest, FloorClampsNonPositiveObjectives) {
  DriftDetector d;
  // Zeros must not poison the statistic with -inf.
  EXPECT_FALSE(d.Observe(0.0));
  EXPECT_FALSE(d.Observe(0.0));
  for (int i = 0; i < 10; ++i) (void)d.Observe(1.0);
  EXPECT_TRUE(std::isfinite(d.statistic()));
}

}  // namespace
}  // namespace atune
