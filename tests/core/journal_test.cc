#include "core/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/file_util.h"

namespace atune {
namespace {

JournalHeader TestHeader() {
  JournalHeader h;
  h.tuner_name = "test-tuner";
  h.system_name = "test-system";
  h.workload_name = "wl";
  h.workload_kind = "mock";
  h.workload_scale = 2.0;
  h.workload_properties = {{"clients", 32.0}, {"read_fraction", 0.6}};
  h.seed = 42;
  h.max_evaluations = 20;
  h.failure_penalty = 10.0;
  h.max_retries = 2;
  h.retry_cost_fraction = 0.5;
  h.timeout_seconds = 30.0;
  h.outlier_mad_threshold = 3.5;
  h.outlier_min_history = 5;
  h.remeasure_runs = 1;
  return h;
}

JournalRecord TestRecord(uint64_t seq) {
  JournalRecord r;
  r.kind = JournalRecordKind::kTrial;
  r.seq = seq;
  r.config.SetDouble("x", 0.125 * static_cast<double>(seq));
  r.config.SetBool("cache_on", seq % 2 == 0);
  r.config.SetInt("workers", static_cast<int64_t>(seq) + 1);
  r.config.SetString("mode", "fast");
  r.result.runtime_seconds = 10.0 + static_cast<double>(seq);
  r.result.failed = seq == 3;
  r.result.transient = seq == 3;
  r.result.failure_reason = seq == 3 ? "injected" : "";
  r.result.metrics = {{"throughput", 100.0 - seq}, {"p99", 0.5 * seq}};
  r.objective = r.result.runtime_seconds;
  r.cost = 1.0;
  r.round = seq;
  r.system_runs = seq + 1;
  r.used = static_cast<double>(seq + 1);
  r.retried_runs = seq == 3 ? 1 : 0;
  return r;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Writes a journal with `n` records and returns its path.
std::string WriteJournal(const std::string& name, size_t n) {
  std::string path = TempPath(name);
  std::remove(path.c_str());
  auto journal = TrialJournal::Create(path, TestHeader());
  EXPECT_TRUE(journal.ok()) << journal.status().message();
  for (size_t i = 0; i < n; ++i) {
    Status s = (*journal)->Append(TestRecord(i));
    EXPECT_TRUE(s.ok()) << s.message();
  }
  return path;
}

std::string Slurp(const std::string& path) {
  std::string contents;
  Status s = ReadFileToString(path, &contents);
  EXPECT_TRUE(s.ok()) << s.message();
  return contents;
}

void Overwrite(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(out.good());
}

TEST(JournalTest, RoundTripPreservesHeaderAndRecords) {
  std::string path = WriteJournal("journal_roundtrip.wal", 5);
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_TRUE(recovered->header_valid);
  EXPECT_EQ(recovered->header, TestHeader());
  EXPECT_TRUE(recovered->warnings.empty());
  ASSERT_EQ(recovered->records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    const JournalRecord& rec = recovered->records[i];
    JournalRecord want = TestRecord(i);
    EXPECT_EQ(rec.seq, want.seq);
    EXPECT_EQ(rec.kind, want.kind);
    EXPECT_TRUE(rec.config == want.config);
    EXPECT_DOUBLE_EQ(rec.result.runtime_seconds, want.result.runtime_seconds);
    EXPECT_EQ(rec.result.failed, want.result.failed);
    EXPECT_EQ(rec.result.failure_reason, want.result.failure_reason);
    EXPECT_EQ(rec.result.metrics, want.result.metrics);
    EXPECT_DOUBLE_EQ(rec.objective, want.objective);
    EXPECT_DOUBLE_EQ(rec.used, want.used);
    EXPECT_EQ(rec.system_runs, want.system_runs);
    EXPECT_EQ(rec.retried_runs, want.retried_runs);
  }
  // The recovered journal continues the sequence.
  ASSERT_NE(recovered->journal, nullptr);
  EXPECT_EQ(recovered->journal->next_seq(), 5u);
}

TEST(JournalTest, AppendAfterResumeExtendsThePrefix) {
  std::string path = WriteJournal("journal_extend.wal", 3);
  {
    auto recovered = TrialJournal::OpenForResume(path);
    ASSERT_TRUE(recovered.ok());
    ASSERT_NE(recovered->journal, nullptr);
    JournalRecord next = TestRecord(recovered->journal->next_seq());
    ASSERT_TRUE(recovered->journal->Append(next).ok());
  }
  auto again = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records.size(), 4u);
}

TEST(JournalTest, MissingFileIsNotFound) {
  auto recovered = TrialJournal::OpenForResume(TempPath("journal_absent.wal"));
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST(JournalTest, TruncatedRecordRecoversLongestPrefix) {
  std::string path = WriteJournal("journal_trunc.wal", 4);
  std::string full = Slurp(path);
  // Chop into the last record: every cut point inside the final frame must
  // recover exactly the first 3 records.
  std::string three = Slurp(WriteJournal("journal_trunc3.wal", 3));
  for (size_t cut = three.size() + 1; cut < full.size(); cut += 7) {
    Overwrite(path, full.substr(0, cut));
    auto recovered = TrialJournal::OpenForResume(path);
    ASSERT_TRUE(recovered.ok()) << "cut=" << cut;
    EXPECT_TRUE(recovered->header_valid);
    EXPECT_EQ(recovered->records.size(), 3u) << "cut=" << cut;
    EXPECT_FALSE(recovered->warnings.empty()) << "cut=" << cut;
  }
}

TEST(JournalTest, TruncationIsPhysical) {
  std::string path = WriteJournal("journal_physical.wal", 4);
  std::string full = Slurp(path);
  Overwrite(path, full.substr(0, full.size() - 3));
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records.size(), 3u);
  recovered->journal.reset();  // close before re-reading
  // The damaged tail was removed from disk, so a second recovery is clean.
  auto again = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records.size(), 3u);
  EXPECT_TRUE(again->warnings.empty());
}

TEST(JournalTest, FlippedByteStopsAtTheTornRecord) {
  std::string base = WriteJournal("journal_flip_base.wal", 5);
  std::string full = Slurp(base);
  std::string two = Slurp(WriteJournal("journal_flip2.wal", 2));
  // Corrupt a byte inside record 2's frame: records 0-1 must survive, the
  // CRC must reject record 2, and nothing after it may be trusted.
  std::string path = TempPath("journal_flip.wal");
  std::string damaged = full;
  damaged[two.size() + 12] ^= 0x40;
  Overwrite(path, damaged);
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->header_valid);
  EXPECT_EQ(recovered->records.size(), 2u);
  EXPECT_FALSE(recovered->warnings.empty());
}

TEST(JournalTest, DuplicateSeqIsRejectedAtTheDuplicate) {
  std::string path = TempPath("journal_dup.wal");
  std::remove(path.c_str());
  auto journal = TrialJournal::Create(path, TestHeader());
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(TestRecord(0)).ok());
  ASSERT_TRUE((*journal)->Append(TestRecord(1)).ok());
  // A crash-and-blind-retry could append the same trial twice; the frame is
  // well-formed (valid CRC) but its seq repeats. Recovery must keep only the
  // first occurrence.
  ASSERT_TRUE((*journal)->Append(TestRecord(1)).ok());
  journal->reset();
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->records.size(), 2u);
  EXPECT_EQ(recovered->records[1].seq, 1u);
  EXPECT_FALSE(recovered->warnings.empty());
}

TEST(JournalTest, SeqGapIsRejectedAtTheGap) {
  std::string path = TempPath("journal_gap.wal");
  std::remove(path.c_str());
  auto journal = TrialJournal::Create(path, TestHeader());
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(TestRecord(0)).ok());
  ASSERT_TRUE((*journal)->Append(TestRecord(2)).ok());  // skips seq 1
  journal->reset();
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records.size(), 1u);
}

TEST(JournalTest, EmptyFileRecoversToFreshJournal) {
  std::string path = TempPath("journal_empty.wal");
  Overwrite(path, "");
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->header_valid);
  EXPECT_TRUE(recovered->records.empty());
  EXPECT_EQ(recovered->journal, nullptr);
}

TEST(JournalTest, GarbageHeaderRecoversToFreshJournal) {
  std::string path = TempPath("journal_garbage.wal");
  Overwrite(path, "this is not a journal at all, not even close");
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->header_valid);
  EXPECT_TRUE(recovered->records.empty());
}

TEST(JournalTest, TrailingIncompleteBatchIsDropped) {
  std::string path = TempPath("journal_batch.wal");
  std::remove(path.c_str());
  auto journal = TrialJournal::Create(path, TestHeader());
  ASSERT_TRUE(journal.ok());
  // A complete 2-lane wave, then only 2 of a 4-lane wave (crash mid-commit).
  for (uint64_t i = 0; i < 2; ++i) {
    JournalRecord r = TestRecord(i);
    r.batch_size = 2;
    r.lane = i;
    ASSERT_TRUE((*journal)->Append(r).ok());
  }
  for (uint64_t i = 0; i < 2; ++i) {
    JournalRecord r = TestRecord(2 + i);
    r.batch_size = 4;
    r.lane = i;
    ASSERT_TRUE((*journal)->Append(r).ok());
  }
  journal->reset();
  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  // The half-committed wave re-executes on resume; replay must never hand a
  // batch tuner a partial wave.
  EXPECT_EQ(recovered->records.size(), 2u);
  EXPECT_FALSE(recovered->warnings.empty());
  ASSERT_NE(recovered->journal, nullptr);
  EXPECT_EQ(recovered->journal->next_seq(), 2u);
}

TEST(JournalTest, HeaderMismatchIsDetectedByDiff) {
  JournalHeader a = TestHeader();
  JournalHeader b = TestHeader();
  EXPECT_EQ(a, b);
  b.seed = 43;
  b.max_retries = 7;
  EXPECT_NE(a, b);
  std::string diff = a.DiffString(b);
  EXPECT_NE(diff.find("seed"), std::string::npos);
  EXPECT_NE(diff.find("robustness policy"), std::string::npos);
}

}  // namespace
}  // namespace atune
