#include <gtest/gtest.h>

#include "tests/core/mock_system.h"
#include "tests/testing_util.h"
#include "tuners/adaptive/adaptive_memory.h"
#include "tuners/adaptive/colt.h"
#include "tuners/adaptive/stage_retuner.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestMapReduce;
using testing_util::MakeTestSpark;
using testing_util::MockWorkload;
using testing_util::QuadraticSystem;

// A TunableSystem that is *not* iterative, for precondition tests.
class OneShotSystem : public TunableSystem {
 public:
  OneShotSystem() {
    Status s = space_.Add(ParameterDef::Double("x", 0.0, 1.0, 0.5));
    (void)s;
  }
  std::string name() const override { return "one-shot"; }
  const ParameterSpace& space() const override { return space_; }
  Result<ExecutionResult> Execute(const Configuration&,
                                  const Workload&) override {
    ExecutionResult r;
    r.runtime_seconds = 1.0;
    return r;
  }

 private:
  ParameterSpace space_;
};

TEST(ColtTest, RequiresIterativeSystem) {
  OneShotSystem system;
  ColtTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  Rng rng(1);
  EXPECT_EQ(tuner.Tune(&evaluator, &rng).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ColtTest, ImprovesWhileRunning) {
  QuadraticSystem system;
  ColtTuner tuner(/*explore_fraction=*/0.35, /*perturb_sigma=*/0.2);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{30});
  Rng rng(2);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_GE(evaluator.history().size(), 2u);
  // Composite per-pass trials: the last pass should be no worse than the
  // first (online convergence), and the report should show adoptions.
  double first = evaluator.history().front().objective;
  double last = evaluator.history().back().objective;
  EXPECT_LE(last, first * 1.05);
  EXPECT_LT(evaluator.best()->objective, first * 1.01);
  EXPECT_NE(tuner.Report().find("adoptions"), std::string::npos);
  EXPECT_LE(evaluator.used(), 30.0 + 1e-9);
}

TEST(ColtTest, AllTrialsAreCompositePasses) {
  QuadraticSystem system;
  ColtTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{10});
  Rng rng(3);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  for (const Trial& trial : evaluator.history()) {
    EXPECT_LE(trial.cost, 1.0 + 1e-9);
    EXPECT_GT(trial.cost, 0.0);
  }
}

TEST(AdaptiveMemoryTest, RequiresDbms) {
  auto spark = MakeTestSpark();
  AdaptiveMemoryTuner tuner;
  Evaluator evaluator(spark.get(), MakeSparkSqlAggregateWorkload(2.0, 2.0),
                      TuningBudget{3});
  Rng rng(4);
  EXPECT_EQ(tuner.Tune(&evaluator, &rng).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdaptiveMemoryTest, GrowsStarvedConsumersOnline) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);  // spills at default work_mem
  AdaptiveMemoryTuner tuner;
  Evaluator evaluator(dbms.get(), w, TuningBudget{6});
  Rng rng(5);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  const Configuration& final_config = evaluator.history().back().config;
  // Online cost-benefit must have grown work_mem (spills) and buffer pool
  // (misses) from the stock defaults.
  EXPECT_GT(final_config.IntOr("work_mem_mb", 0), 4);
  EXPECT_GT(final_config.IntOr("buffer_pool_mb", 0), 512);
  // Later passes beat the first (defaults) pass.
  EXPECT_LT(evaluator.history().back().objective,
            evaluator.history().front().objective);
}

TEST(AdaptiveMemoryTest, BacksOffUnderPressure) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(0.25, /*clients=*/8.0);
  AdaptiveMemoryTuner tuner;
  Evaluator evaluator(dbms.get(), w, TuningBudget{5});
  Rng rng(6);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  // Whatever it grew, the final configuration must not OOM.
  const Configuration& final_config = evaluator.history().back().config;
  auto result = dbms->Execute(final_config, w);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->failed);
}

TEST(StageRetunerTest, RequiresIterativeSystem) {
  OneShotSystem system;
  StageRetunerTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{5});
  Rng rng(7);
  EXPECT_EQ(tuner.Tune(&evaluator, &rng).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StageRetunerTest, AdaptsMrChainBetweenJobs) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrPageRankWorkload(4.0, 8);
  StageRetunerTuner tuner;
  Evaluator evaluator(mr.get(), w, TuningBudget{6});
  Rng rng(8);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_GE(evaluator.history().size(), 2u);
  EXPECT_LT(evaluator.history().back().objective,
            evaluator.history().front().objective);
  EXPECT_NE(tuner.Report().find("stage adaptations"), std::string::npos);
}

TEST(StageRetunerTest, AdaptsSparkIterations) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkIterativeMlWorkload(4.0, 10.0);
  StageRetunerTuner tuner;
  Evaluator evaluator(spark.get(), w, TuningBudget{6});
  Rng rng(9);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LE(evaluator.history().back().objective,
            evaluator.history().front().objective * 1.02);
}

}  // namespace
}  // namespace atune
