#include <gtest/gtest.h>

#include "tests/testing_util.h"
#include "tuners/adaptive/adaptive_memory.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;

TEST(DiurnalWorkloadTest, UnitsVaryWithPhase) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(0.5, /*clients=*/32.0);
  w.properties["diurnal_amplitude"] = 0.6;
  Configuration c = dbms->space().DefaultConfiguration();
  size_t units = dbms->NumUnits(w);
  ASSERT_GE(units, 4u);
  // Peak (quarter cycle) vs trough (three-quarter cycle).
  auto peak = dbms->ExecuteUnit(c, w, units / 4);
  auto trough = dbms->ExecuteUnit(c, w, 3 * units / 4);
  ASSERT_TRUE(peak.ok());
  ASSERT_TRUE(trough.ok());
  EXPECT_GT(peak->runtime_seconds, trough->runtime_seconds * 1.3);
}

TEST(DiurnalWorkloadTest, FullRunSeesTheAverage) {
  auto dbms = MakeTestDbms();
  Workload flat = MakeDbmsOltpWorkload(0.5);
  Workload wavy = flat;
  wavy.properties["diurnal_amplitude"] = 0.6;
  Configuration c = dbms->space().DefaultConfiguration();
  // Execute() is phase-blind: identical for flat and wavy declarations.
  EXPECT_DOUBLE_EQ(dbms->Execute(c, flat)->runtime_seconds,
                   dbms->Execute(c, wavy)->runtime_seconds);
}

TEST(DiurnalWorkloadTest, AdaptiveTunerRidesTheWave) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(0.5, /*clients=*/32.0);
  w.properties["diurnal_amplitude"] = 0.5;
  AdaptiveMemoryTuner tuner;
  Evaluator evaluator(dbms.get(), w, TuningBudget{6});
  Rng rng(3);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  // Later passes (adapted) beat the first pass (defaults) even though the
  // load keeps swinging underneath.
  ASSERT_GE(evaluator.history().size(), 2u);
  EXPECT_LT(evaluator.history().back().objective,
            evaluator.history().front().objective);
}

}  // namespace
}  // namespace atune
