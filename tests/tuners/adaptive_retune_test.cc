// AdaptiveRetuneTuner (DESIGN.md §15) contracts:
//
//   * on a phase shift mid-serve the degradation ladder engages: the
//     detector fires, stale surrogate observations are evicted, and a
//     stage-1 re-probe runs — all within the session budget
//   * a drift storm cannot leak budget: stage-2 re-tunes are capped by
//     max_retunes, further firings degrade to the free recent-best
//     recovery, and the session never spends past its budget
//   * kill/resume is bit-identical under drift: the detector and every
//     staging decision are pure functions of the committed trial sequence,
//     so a resumed session recomputes identical detection rounds
//   * composes under SupervisedTuner and over any registry tuner
//     (warm-start included) like a plain tuner

#include "tuners/adaptive_retune.h"

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/journal.h"
#include "core/registry.h"
#include "core/session.h"
#include "core/supervisor.h"
#include "systems/drifting_workload.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"

namespace atune {
namespace {

constexpr uint64_t kSeed = 17;

std::string JournalPath(const std::string& name) {
  return ::testing::TempDir() + "/adaptive_" + name + ".wal";
}

TunerFactory RandomSearchFactory() {
  return []() -> std::unique_ptr<Tuner> {
    TunerRegistry registry;
    RegisterBuiltinTuners(&registry);
    auto tuner = registry.Create("random-search");
    return tuner.ok() ? std::move(*tuner) : nullptr;
  };
}

struct AdaptiveRun {
  Status status = Status::OK();
  TuningOutcome outcome;
  AdaptiveRetuneStats stats;
  bool ok() const { return status.ok(); }
};

AdaptiveRun RunAdaptive(const DriftSchedule& schedule, size_t budget,
                        AdaptiveRetuneOptions options,
                        const std::string& journal = "",
                        uint64_t kill_after = 0, bool resume = false) {
  AdaptiveRun run;
  AdaptiveRetuneTuner tuner(RandomSearchFactory(), "random-search", options);
  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/true);
  DriftingWorkload drifting(dbms.get(), schedule);
  SessionOptions session;
  session.budget = TuningBudget{budget};
  session.seed = kSeed;
  session.measure_default = false;
  session.journal_path = journal;
  session.interrupt_after_records = kill_after;
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto outcome = resume
                     ? ResumeTuningSession(&tuner, &drifting, workload, session)
                     : RunTuningSession(&tuner, &drifting, workload, session);
  run.stats = tuner.stats();
  if (!outcome.ok()) {
    run.status = outcome.status();
    return run;
  }
  run.outcome = std::move(*outcome);
  return run;
}

void ExpectOutcomeEq(const TuningOutcome& want, const TuningOutcome& got,
                     const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(want.history.size(), got.history.size());
  for (size_t i = 0; i < want.history.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    EXPECT_TRUE(want.history[i].config == got.history[i].config);
    EXPECT_EQ(want.history[i].objective, got.history[i].objective);
    EXPECT_EQ(want.history[i].result.metrics, got.history[i].result.metrics);
  }
  EXPECT_TRUE(want.best_config == got.best_config);
  EXPECT_EQ(want.best_objective, got.best_objective);
  EXPECT_EQ(want.evaluations_used, got.evaluations_used);
}

TEST(AdaptiveRetuneTest, PhaseShiftEngagesTheDegradationLadder) {
  // Shift lands inside the serve phase (explore leases ~half of 30).
  AdaptiveRun run = RunAdaptive(DriftSchedule::PhaseShift(18, 1.6), 30,
                                AdaptiveRetuneOptions());
  ASSERT_TRUE(run.ok()) << run.status.message();
  EXPECT_GE(run.stats.detections, 1u);
  EXPECT_GE(run.stats.reprobes, 1u);          // stage 1 ran...
  EXPECT_GT(run.stats.evicted_observations, 0u);  // ...and evicted history
  EXPECT_LE(run.outcome.evaluations_used, 30u);
}

TEST(AdaptiveRetuneTest, StationaryWorkloadNeverFires) {
  AdaptiveRun run = RunAdaptive(DriftSchedule(), 30, AdaptiveRetuneOptions());
  ASSERT_TRUE(run.ok()) << run.status.message();
  EXPECT_EQ(run.stats.detections, 0u);
  EXPECT_EQ(run.stats.reprobes, 0u);
  EXPECT_EQ(run.stats.retunes, 0u);
}

TEST(AdaptiveRetuneTest, DriftStormCannotLeakBudget) {
  // A relentless ramp keeps degrading: re-probes can never recover (the
  // regime only worsens), so every second firing asks for a full re-tune.
  // With the cap at zero those requests must all degrade to the free
  // recent-best recovery and the session must never spend past its budget.
  DriftSchedule storm = DriftSchedule::Ramp(8.0, 50);
  AdaptiveRetuneOptions options;
  options.max_retunes = 0;
  options.detector.threshold = 0.15;
  options.detector.min_samples = 3;
  const size_t kBudget = 60;
  AdaptiveRun run = RunAdaptive(storm, kBudget, options);
  ASSERT_TRUE(run.ok()) << run.status.message();
  EXPECT_GE(run.stats.detections, 3u);          // the storm kept firing
  EXPECT_EQ(run.stats.retunes, 0u);             // the cap held
  EXPECT_GE(run.stats.retunes_suppressed, 1u);  // capped firings were free
  EXPECT_LE(run.outcome.evaluations_used, kBudget);
}

// The replay-determinism gate: kill a journaled adaptive session under
// drift after 1, n/2, n-1 records; the resume must reconstruct the same
// trial history AND the same detection rounds — the detector state is
// re-derived from the replayed commits, not journaled.
TEST(AdaptiveRetuneTest, KillResumeBitIdenticalIncludingDetections) {
  const DriftSchedule schedule = DriftSchedule::PhaseShift(18, 1.6);
  AdaptiveRetuneOptions options;
  const size_t kBudget = 30;
  const std::string path = JournalPath("resume");
  std::remove(path.c_str());

  AdaptiveRun baseline = RunAdaptive(schedule, kBudget, options, path);
  ASSERT_TRUE(baseline.ok()) << baseline.status.message();
  ASSERT_GE(baseline.stats.detections, 1u);  // drift actually happened

  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  const uint64_t records = recovered->records.size();
  ASSERT_GE(records, 2u);
  std::remove(path.c_str());

  std::set<uint64_t> kill_points = {1, records / 2, records - 1};
  for (uint64_t kill : kill_points) {
    if (kill == 0 || kill >= records) continue;
    SCOPED_TRACE("killed after " + std::to_string(kill) + "/" +
                 std::to_string(records));
    std::remove(path.c_str());
    AdaptiveRun interrupted =
        RunAdaptive(schedule, kBudget, options, path, kill);
    ASSERT_FALSE(interrupted.ok());
    EXPECT_EQ(interrupted.status.code(), StatusCode::kAborted);

    AdaptiveRun resumed = RunAdaptive(schedule, kBudget, options, path,
                                      /*kill_after=*/0, /*resume=*/true);
    ASSERT_TRUE(resumed.ok()) << resumed.status.message();
    ExpectOutcomeEq(baseline.outcome, resumed.outcome, "resume");
    // Live == replay, decision for decision.
    EXPECT_EQ(resumed.stats.detections, baseline.stats.detections);
    EXPECT_EQ(resumed.stats.reprobes, baseline.stats.reprobes);
    EXPECT_EQ(resumed.stats.retunes, baseline.stats.retunes);
    EXPECT_EQ(resumed.stats.evicted_observations,
              baseline.stats.evicted_observations);
    EXPECT_EQ(resumed.stats.incumbent_switches,
              baseline.stats.incumbent_switches);
    std::remove(path.c_str());
  }
}

TEST(AdaptiveRetuneTest, ComposesUnderSupervisorAndOverRegistryTuners) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);

  // supervise(adaptive(random-search)): the serve loop's jittered probes
  // must not trip the duplicate-livelock guard.
  auto adaptive = MakeAdaptiveRetuneTuner(registry, "random-search");
  ASSERT_TRUE(adaptive.ok());
  SupervisedTuner supervised(std::move(*adaptive));
  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/true);
  DriftingWorkload drifting(dbms.get(), DriftSchedule::PhaseShift(18, 1.6));
  SessionOptions session;
  session.budget = TuningBudget{30};
  session.seed = kSeed;
  session.measure_default = false;
  auto outcome = RunTuningSession(&supervised, &drifting,
                                  MakeDbmsOlapWorkload(1.0), session);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_LE(outcome->evaluations_used, 30u);

  // adaptive over a GP tuner from the registry, for the category contract.
  auto over_gp = MakeAdaptiveRetuneTuner(registry, "ituned");
  ASSERT_TRUE(over_gp.ok());
  EXPECT_EQ((*over_gp)->name(), "adaptive-retune:ituned");
  EXPECT_EQ((*over_gp)->category(), TunerCategory::kAdaptive);
}

TEST(AdaptiveRetuneTest, RegistryFactoryValidatesTheInnerName) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto missing = MakeAdaptiveRetuneTuner(registry, "no-such-tuner");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace atune
