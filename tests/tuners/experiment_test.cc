#include <gtest/gtest.h>

#include "tests/core/mock_system.h"
#include "tests/testing_util.h"
#include "tuners/experiment/adaptive_sampling.h"
#include "tuners/experiment/ituned.h"
#include "tuners/experiment/sard.h"
#include "tuners/experiment/search_baselines.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MockWorkload;
using testing_util::QuadraticSystem;

// A mock with one dominant knob, one weak knob, two dead knobs — for
// screening/ranking tests.
class RankedEffectSystem : public TunableSystem {
 public:
  RankedEffectSystem() {
    Status s = space_.Add(ParameterDef::Double("dominant", 0.0, 1.0, 0.5));
    s = space_.Add(ParameterDef::Double("weak", 0.0, 1.0, 0.5));
    s = space_.Add(ParameterDef::Double("dead1", 0.0, 1.0, 0.5));
    s = space_.Add(ParameterDef::Double("dead2", 0.0, 1.0, 0.5));
    (void)s;
  }
  std::string name() const override { return "ranked-effects"; }
  const ParameterSpace& space() const override { return space_; }
  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload&) override {
    ExecutionResult r;
    r.runtime_seconds = 100.0 - 50.0 * config.DoubleOr("dominant", 0.5) -
                        5.0 * config.DoubleOr("weak", 0.5);
    return r;
  }

 private:
  ParameterSpace space_;
};

TEST(RandomSearchTest, NeverWorseThanDefaultAndSpendsBudget) {
  QuadraticSystem system;
  RandomSearchTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{20});
  Rng rng(1);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_DOUBLE_EQ(evaluator.used(), 20.0);
  EXPECT_LE(evaluator.best()->objective,
            evaluator.history().front().objective);
}

TEST(GridSearchTest, SnapsToLatticeLevels) {
  QuadraticSystem system;
  GridSearchTuner tuner(/*levels=*/3);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{15});
  Rng rng(2);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  for (const Trial& trial : evaluator.history()) {
    double x = trial.config.DoubleOr("x", -1.0);
    EXPECT_TRUE(std::abs(x) < 1e-9 || std::abs(x - 0.5) < 1e-9 ||
                std::abs(x - 1.0) < 1e-9)
        << x;
  }
}

TEST(RecursiveRandomTest, ConvergesTowardOptimum) {
  QuadraticSystem system;
  RecursiveRandomSearchTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{40});
  Rng rng(3);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  // Optimum is 10.0; RRS with 40 probes should land close.
  EXPECT_LT(evaluator.best()->objective, 11.5);
  EXPECT_NE(tuner.Report().find("shrink"), std::string::npos);
}

TEST(SardTest, RanksEffectsCorrectly) {
  RankedEffectSystem system;
  SardTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{30});
  Rng rng(4);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_EQ(tuner.ranking().size(), 4u);
  EXPECT_EQ(tuner.ranking()[0], "dominant");
  EXPECT_EQ(tuner.ranking()[1], "weak");
  // Effects have the right sign: raising "dominant" lowers runtime.
  auto idx = system.space().IndexOf("dominant");
  EXPECT_LT(tuner.effects()[*idx], 0.0);
}

TEST(SardTest, RefinementImprovesOnScreening) {
  RankedEffectSystem system;
  SardTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{25});
  Rng rng(5);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  // Best possible is 100-50-5 = 45 at (1,1); screening high level is 0.85.
  EXPECT_LT(evaluator.best()->objective, 52.0);
}

TEST(SardTest, TinyBudgetDegradesGracefully) {
  RankedEffectSystem system;
  SardTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{3});
  Rng rng(6);
  EXPECT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LE(evaluator.used(), 3.0);
}

TEST(AdaptiveSamplingTest, ImprovesOverDefault) {
  QuadraticSystem system;
  AdaptiveSamplingTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{25});
  Rng rng(7);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LT(evaluator.best()->objective,
            evaluator.history().front().objective);
  EXPECT_LT(evaluator.best()->objective, 13.0);
  EXPECT_NE(tuner.Report().find("exploit"), std::string::npos);
}

TEST(ITunedTest, FindsNearOptimumOnQuadratic) {
  QuadraticSystem system;
  ITunedTuner tuner;
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{25});
  Rng rng(8);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  // GP+EI should land within ~10% of the optimum (10.0) in 25 runs.
  EXPECT_LT(evaluator.best()->objective, 11.0);
  EXPECT_NE(tuner.Report().find("GP/ei"), std::string::npos);
}

TEST(ITunedTest, BeatsRandomSearchOnAverage) {
  double ituned_sum = 0.0, random_sum = 0.0;
  const int reps = 5;
  for (int rep = 0; rep < reps; ++rep) {
    {
      QuadraticSystem system;
      ITunedTuner tuner;
      Evaluator evaluator(&system, MockWorkload(), TuningBudget{18});
      Rng rng(100 + rep);
      ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
      ituned_sum += evaluator.best()->objective;
    }
    {
      QuadraticSystem system;
      RandomSearchTuner tuner;
      Evaluator evaluator(&system, MockWorkload(), TuningBudget{18});
      Rng rng(100 + rep);
      ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
      random_sum += evaluator.best()->objective;
    }
  }
  EXPECT_LE(ituned_sum, random_sum);
}

TEST(ITunedTest, AlternativeAcquisitions) {
  for (const char* acq : {"pi", "lcb"}) {
    QuadraticSystem system;
    ITunedOptions options;
    options.acquisition = acq;
    ITunedTuner tuner(options);
    Evaluator evaluator(&system, MockWorkload(), TuningBudget{18});
    Rng rng(9);
    ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok()) << acq;
    EXPECT_LT(evaluator.best()->objective, 14.0) << acq;
  }
}

TEST(ITunedTest, EarlyAbortStretchesTheBudget) {
  // With early abort, bad experiments cost a fraction of a run, so the
  // tuner fits more experiments into the same budget.
  size_t with_abort_trials = 0, without_trials = 0;
  {
    QuadraticSystem system;
    ITunedOptions options;
    options.early_abort_factor = 1.5;
    ITunedTuner tuner(options);
    Evaluator evaluator(&system, MockWorkload(), TuningBudget{15});
    Rng rng(77);
    ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
    with_abort_trials = evaluator.history().size();
    EXPECT_LE(evaluator.used(), 15.0 + 1e-9);
    EXPECT_LT(evaluator.best()->objective, 12.0);
  }
  {
    QuadraticSystem system;
    ITunedTuner tuner;
    Evaluator evaluator(&system, MockWorkload(), TuningBudget{15});
    Rng rng(77);
    ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
    without_trials = evaluator.history().size();
  }
  EXPECT_GE(with_abort_trials, without_trials);
}

TEST(ITunedTest, RealDbmsWorkloadEndToEnd) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  ITunedTuner tuner;
  Evaluator evaluator(dbms.get(), w, TuningBudget{20});
  Rng rng(10);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  double default_obj = evaluator.history().front().objective;
  EXPECT_LT(evaluator.best()->objective, default_obj / 2.0);
}

}  // namespace
}  // namespace atune
