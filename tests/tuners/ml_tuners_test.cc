#include <gtest/gtest.h>

#include "tests/core/mock_system.h"
#include "tests/testing_util.h"
#include "tuners/ml_tuners/ernest.h"
#include "tuners/ml_tuners/grey_box.h"
#include "tuners/ml_tuners/ottertune.h"
#include "tuners/ml_tuners/rodd_nn.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestSpark;
using testing_util::MockWorkload;
using testing_util::QuadraticSystem;

TEST(OtterTuneRepositoryTest, BuildCollectsObservations) {
  auto dbms = MakeTestDbms();
  auto workloads = DefaultHistoryWorkloads("simulated-dbms", "olap");
  ASSERT_FALSE(workloads.empty());
  for (const Workload& w : workloads) EXPECT_NE(w.kind, "olap");
  OtterTuneRepository repo =
      BuildOtterTuneRepository(dbms.get(), workloads, 6, 42);
  EXPECT_EQ(repo.sessions.size(), workloads.size());
  EXPECT_GE(repo.TotalObservations(), workloads.size() * 6);
  EXPECT_EQ(repo.metric_names, dbms->MetricNames());
  for (const auto& session : repo.sessions) {
    ASSERT_FALSE(session.configs.empty());
    EXPECT_EQ(session.configs.size(), session.metrics.size());
    EXPECT_EQ(session.configs.size(), session.objectives.size());
  }
}

TEST(OtterTuneTest, TunesDbmsUsingHistory) {
  auto dbms = MakeTestDbms();
  Workload target = MakeDbmsOlapWorkload(0.5);
  OtterTuneRepository repo = BuildOtterTuneRepository(
      dbms.get(), DefaultHistoryWorkloads("simulated-dbms", target.kind), 12,
      7);
  OtterTuneTuner tuner(std::move(repo), /*target_observations=*/4,
                       /*top_knobs=*/6);
  Evaluator evaluator(dbms.get(), target, TuningBudget{15});
  Rng rng(11);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  double default_obj = evaluator.history().front().objective;
  EXPECT_LT(evaluator.best()->objective, default_obj);
  EXPECT_EQ(tuner.knob_ranking().size(), dbms->space().dims());
  EXPECT_NE(tuner.Report().find("mapped to"), std::string::npos);
  EXPECT_LE(evaluator.used(), 15.0);
}

TEST(OtterTuneTest, BuildsDefaultRepositoryWhenEmpty) {
  auto dbms = MakeTestDbms();
  OtterTuneTuner tuner;  // empty repository
  Evaluator evaluator(dbms.get(), MakeDbmsOltpWorkload(0.25), TuningBudget{8});
  Rng rng(12);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_NE(evaluator.best(), nullptr);
}

TEST(RoddNnTest, LearnsQuadraticBowl) {
  QuadraticSystem system;
  MlpOptions mlp;
  mlp.epochs = 250;
  mlp.hidden_layers = {12, 12};
  RoddNnTuner tuner(mlp);
  Evaluator evaluator(&system, MockWorkload(), TuningBudget{25});
  Rng rng(13);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LT(evaluator.best()->objective,
            evaluator.history().front().objective);
  EXPECT_LT(evaluator.best()->objective, 14.0);
  EXPECT_NE(tuner.Report().find("training samples"), std::string::npos);
}

TEST(ErnestTest, SizesSparkExecutors) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkSqlAggregateWorkload(8.0, 6.0);
  ErnestTuner tuner(/*sample_fraction=*/0.125, /*training_points=*/5);
  Evaluator evaluator(spark.get(), w, TuningBudget{8});
  Rng rng(14);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  // Training runs must be scaled samples, cheaper than full runs.
  size_t scaled = 0;
  for (const Trial& t : evaluator.history()) scaled += t.scaled ? 1 : 0;
  EXPECT_GE(scaled, 4u);
  EXPECT_LE(evaluator.used(), 8.0);
  // The 2-executor default underuses a 32-core cluster; Ernest must pick
  // more parallelism and beat it.
  EXPECT_GT(evaluator.best()->config.IntOr("num_executors", 0), 2);
  EXPECT_NE(tuner.Report().find("fit time(m)"), std::string::npos);
  // The report also validates the default at full scale, so best <= default.
  double default_obj = -1.0;
  for (const Trial& t : evaluator.history()) {
    if (!t.scaled && t.config.IntOr("num_executors", 0) == 2) {
      default_obj = t.objective;
    }
  }
  if (default_obj > 0.0) {
    EXPECT_LE(evaluator.best()->objective, default_obj);
  }
}

TEST(ErnestTest, WorksOnDbmsParallelism) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5, /*clients=*/1.0);
  ErnestTuner tuner;
  Evaluator evaluator(dbms.get(), w, TuningBudget{8});
  Rng rng(15);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_NE(evaluator.best(), nullptr);
}

TEST(GreyBoxTest, CorrectsModelAndImproves) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  GreyBoxTuner tuner(/*initial_samples=*/5, /*search_size=*/1200);
  Evaluator evaluator(dbms.get(), w, TuningBudget{15});
  Rng rng(17);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  double default_obj = evaluator.history().front().objective;
  EXPECT_LT(evaluator.best()->objective, default_obj);
  EXPECT_LE(evaluator.used(), 15.0);
  EXPECT_NE(tuner.Report().find("grey-box"), std::string::npos);
}

TEST(GreyBoxTest, WorksOnMapReduceAndSpark) {
  Rng rng(18);
  {
    auto mr = testing_util::MakeTestMapReduce();
    GreyBoxTuner tuner(4, 800);
    Evaluator evaluator(mr.get(), MakeMrTeraSortWorkload(5.0),
                        TuningBudget{10});
    ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
    EXPECT_LT(evaluator.best()->objective,
              evaluator.history().front().objective);
  }
  {
    auto spark = MakeTestSpark();
    GreyBoxTuner tuner(4, 800);
    Evaluator evaluator(spark.get(), MakeSparkSqlAggregateWorkload(4.0, 4.0),
                        TuningBudget{10});
    ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
    EXPECT_NE(evaluator.best(), nullptr);
  }
}

TEST(ErnestTest, TinyBudgetFallsBackGracefully) {
  auto spark = MakeTestSpark();
  ErnestTuner tuner(0.5, 5);  // samples cost 0.5/1.0 each
  Evaluator evaluator(spark.get(), MakeSparkSqlAggregateWorkload(4.0, 2.0),
                      TuningBudget{1});
  Rng rng(16);
  EXPECT_TRUE(tuner.Tune(&evaluator, &rng).ok());
}

}  // namespace
}  // namespace atune
