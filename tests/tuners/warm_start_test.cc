// WarmStartTuner / workload-mapping metamorphic contracts (DESIGN.md §14):
//
//   * the workload fingerprint is *bitwise* invariant under any permutation
//     of the trial history (sorted-addends mean)
//   * k-NN mapping is invariant under record duplication: deciles and
//     pruning are computed over distinct fingerprints, so re-ingesting a
//     session N times cannot drag the neighborhood toward it
//   * an empty snapshot makes the decorator a bitwise pass-through
//   * a populated snapshot measurably changes the search (seeded-vs-
//     unseeded divergence) while warm evaluations stay within the
//     half-the-budget cap
//   * a warm-started journaled session killed mid-run resumes bit-identical
//     — the warm schedule is a pure function of (snapshot, probe), so
//     replay re-derives it exactly

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/journal.h"
#include "core/knowledge_repo.h"
#include "core/registry.h"
#include "core/session.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"
#include "tuners/warm_start.h"

namespace atune {
namespace {

constexpr uint64_t kSeed = 17;
constexpr size_t kBudget = 10;

std::string JournalPath(const std::string& name) {
  return ::testing::TempDir() + "/warm_" + name + ".wal";
}

// One completed historic session to harvest knowledge records from.
TuningOutcome RunHistoric(const std::string& tuner_name, uint64_t seed,
                          const Workload& workload, SimulatedDbms* dbms) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(tuner_name);
  EXPECT_TRUE(tuner.ok());
  SessionOptions options;
  options.budget = TuningBudget{6};
  options.seed = seed;
  options.measure_default = false;
  auto outcome = RunTuningSession(tuner->get(), dbms, workload, options);
  EXPECT_TRUE(outcome.ok()) << outcome.status().message();
  return outcome.ok() ? std::move(*outcome) : TuningOutcome{};
}

std::vector<KnowledgeRecord> BuildSnapshot(SimulatedDbms* dbms) {
  std::vector<KnowledgeRecord> snapshot;
  const Workload workloads[] = {MakeDbmsOlapWorkload(1.0),
                                MakeDbmsOltpWorkload(1.0),
                                MakeDbmsOlapWorkload(2.0)};
  uint64_t seed = 100;
  for (const Workload& wl : workloads) {
    TuningOutcome outcome = RunHistoric("random-search", seed, wl, dbms);
    snapshot.push_back(MakeKnowledgeRecord(
        "hist-" + std::to_string(seed), "tenant", dbms->name(), dbms->space(),
        dbms->MetricNames(), wl, seed, 6, outcome));
    ++seed;
  }
  return snapshot;
}

struct WarmRun {
  Status status = Status::OK();
  TuningOutcome outcome;
  size_t warm_evaluations = 0;
  std::vector<std::string> mapped_sessions;
  bool ok() const { return status.ok(); }
};

WarmRun RunWarm(const std::vector<KnowledgeRecord>& snapshot,
                const std::string& journal, uint64_t kill_after, bool resume) {
  WarmRun run;
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto inner = registry.Create("random-search");
  EXPECT_TRUE(inner.ok());
  auto warm = std::make_unique<WarmStartTuner>(std::move(*inner), snapshot);
  WarmStartTuner* warm_ptr = warm.get();

  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/true);
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = kSeed;
  options.measure_default = false;
  options.journal_path = journal;
  options.interrupt_after_records = kill_after;
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto outcome =
      resume ? ResumeTuningSession(warm.get(), dbms.get(), workload, options)
             : RunTuningSession(warm.get(), dbms.get(), workload, options);
  run.warm_evaluations = warm_ptr->warm_evaluations();
  run.mapped_sessions = warm_ptr->mapped_sessions();
  if (!outcome.ok()) {
    run.status = outcome.status();
    return run;
  }
  run.outcome = std::move(*outcome);
  return run;
}

void ExpectOutcomeEq(const TuningOutcome& want, const TuningOutcome& got,
                     const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(want.history.size(), got.history.size());
  for (size_t i = 0; i < want.history.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    EXPECT_TRUE(want.history[i].config == got.history[i].config);
    EXPECT_EQ(want.history[i].objective, got.history[i].objective);
    EXPECT_EQ(want.history[i].round, got.history[i].round);
    EXPECT_EQ(want.history[i].result.metrics, got.history[i].result.metrics);
  }
  EXPECT_TRUE(want.best_config == got.best_config);
  EXPECT_EQ(want.best_objective, got.best_objective);
  EXPECT_EQ(want.evaluations_used, got.evaluations_used);
}

TEST(WarmStartTest, FingerprintIsBitwisePermutationInvariant) {
  auto dbms = testing_util::MakeTestDbms(3, /*noise=*/true);
  const Workload wl = MakeDbmsOlapWorkload(1.0);
  TuningOutcome outcome = RunHistoric("random-search", 31, wl, dbms.get());
  ASSERT_GE(outcome.history.size(), 3u);

  KnowledgeRecord base =
      MakeKnowledgeRecord("perm", "t", dbms->name(), dbms->space(),
                          dbms->MetricNames(), wl, 31, 6, outcome);

  // Reversal and every rotation of the history: identical fingerprints,
  // bit for bit — summation order is canonicalized by sorting the addends.
  TuningOutcome reversed = outcome;
  std::reverse(reversed.history.begin(), reversed.history.end());
  KnowledgeRecord rev =
      MakeKnowledgeRecord("perm", "t", dbms->name(), dbms->space(),
                          dbms->MetricNames(), wl, 31, 6, reversed);
  EXPECT_EQ(base.fingerprint, rev.fingerprint);

  for (size_t shift = 1; shift < outcome.history.size(); ++shift) {
    TuningOutcome rotated = outcome;
    std::rotate(rotated.history.begin(), rotated.history.begin() + shift,
                rotated.history.end());
    KnowledgeRecord rot =
        MakeKnowledgeRecord("perm", "t", dbms->name(), dbms->space(),
                            dbms->MetricNames(), wl, 31, 6, rotated);
    EXPECT_EQ(base.fingerprint, rot.fingerprint) << "rotation " << shift;
  }
}

TEST(WarmStartTest, MappingIsInvariantUnderRecordDuplication) {
  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/false);
  std::vector<KnowledgeRecord> snapshot = BuildSnapshot(dbms.get());
  ASSERT_EQ(snapshot.size(), 3u);
  const Vec target = snapshot[0].fingerprint;

  WorkloadMapping base = MapWorkloadKnn(snapshot, target, 2);
  ASSERT_FALSE(base.neighbors.empty());
  std::vector<std::string> base_ids;
  for (size_t idx : base.neighbors) base_ids.push_back(snapshot[idx].session_id);

  // Duplicate the *last* record five times: the statistics (pruning,
  // deciles) come from distinct fingerprints, so neither the selected
  // metrics nor the neighbor ids nor the distances may move.
  std::vector<KnowledgeRecord> stuffed = snapshot;
  for (int i = 0; i < 5; ++i) stuffed.push_back(snapshot.back());
  WorkloadMapping dup = MapWorkloadKnn(stuffed, target, 2);
  std::vector<std::string> dup_ids;
  for (size_t idx : dup.neighbors) dup_ids.push_back(stuffed[idx].session_id);

  EXPECT_EQ(dup.metric_idx, base.metric_idx);
  EXPECT_EQ(dup_ids, base_ids);
  EXPECT_EQ(dup.distances, base.distances);  // bitwise
}

TEST(WarmStartTest, EmptySnapshotIsBitwisePassThrough) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto plain = registry.Create("random-search");
  ASSERT_TRUE(plain.ok());
  auto dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/true);
  SessionOptions options;
  options.budget = TuningBudget{kBudget};
  options.seed = kSeed;
  options.measure_default = false;
  auto cold = RunTuningSession(plain->get(), dbms.get(),
                               MakeDbmsOlapWorkload(1.0), options);
  ASSERT_TRUE(cold.ok());

  WarmRun warm = RunWarm({}, /*journal=*/"", /*kill_after=*/0,
                         /*resume=*/false);
  ASSERT_TRUE(warm.ok()) << warm.status.message();
  EXPECT_EQ(warm.warm_evaluations, 0u);
  EXPECT_TRUE(warm.mapped_sessions.empty());
  ExpectOutcomeEq(*cold, warm.outcome, "pass-through");
}

TEST(WarmStartTest, PopulatedSnapshotSeedsAndDiverges) {
  auto historic_dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/false);
  std::vector<KnowledgeRecord> snapshot = BuildSnapshot(historic_dbms.get());

  WarmRun cold = RunWarm({}, "", 0, false);
  ASSERT_TRUE(cold.ok());
  WarmRun warm = RunWarm(snapshot, "", 0, false);
  ASSERT_TRUE(warm.ok()) << warm.status.message();

  // The warm phase actually ran: mapped sessions, seeded evaluations, and
  // the inner tuner kept at least half the budget.
  EXPECT_FALSE(warm.mapped_sessions.empty());
  EXPECT_GT(warm.warm_evaluations, 0u);
  EXPECT_LE(warm.warm_evaluations, kBudget / 2);
  EXPECT_EQ(warm.outcome.evaluations_used, cold.outcome.evaluations_used);

  // Seeded-vs-unseeded divergence: same seed, same budget, different
  // history — the snapshot is the only difference.
  bool diverged = warm.outcome.history.size() != cold.outcome.history.size();
  for (size_t i = 0;
       !diverged && i < warm.outcome.history.size(); ++i) {
    diverged = !(warm.outcome.history[i].config == cold.outcome.history[i].config);
  }
  EXPECT_TRUE(diverged);
}

// The replay guarantee the daemon's --warm-start path rests on: kill a
// journaled warm session after 1, n/2, n-1 records; a resume with the same
// pinned snapshot must re-derive the identical warm schedule and land on a
// bit-identical outcome.
TEST(WarmStartTest, WarmSessionResumesBitIdentical) {
  auto historic_dbms = testing_util::MakeTestDbms(kSeed, /*noise=*/false);
  std::vector<KnowledgeRecord> snapshot = BuildSnapshot(historic_dbms.get());

  const std::string path = JournalPath("resume");
  std::remove(path.c_str());
  WarmRun baseline = RunWarm(snapshot, path, /*kill_after=*/0,
                             /*resume=*/false);
  ASSERT_TRUE(baseline.ok()) << baseline.status.message();
  ASSERT_GT(baseline.warm_evaluations, 0u);

  auto recovered = TrialJournal::OpenForResume(path);
  ASSERT_TRUE(recovered.ok());
  const uint64_t records = recovered->records.size();
  ASSERT_GE(records, 2u);
  std::remove(path.c_str());

  std::set<uint64_t> kill_points = {1, records / 2, records - 1};
  for (uint64_t kill : kill_points) {
    if (kill == 0 || kill >= records) continue;
    SCOPED_TRACE("killed after " + std::to_string(kill) + "/" +
                 std::to_string(records));
    std::remove(path.c_str());
    WarmRun interrupted = RunWarm(snapshot, path, kill, /*resume=*/false);
    ASSERT_FALSE(interrupted.ok());
    EXPECT_EQ(interrupted.status.code(), StatusCode::kAborted);

    WarmRun resumed = RunWarm(snapshot, path, /*kill_after=*/0,
                              /*resume=*/true);
    ASSERT_TRUE(resumed.ok()) << resumed.status.message();
    ExpectOutcomeEq(baseline.outcome, resumed.outcome, "resume");
    // The re-derived warm schedule matches, not just the trial history.
    EXPECT_EQ(resumed.mapped_sessions, baseline.mapped_sessions);
    std::remove(path.c_str());
  }
}

TEST(WarmStartTest, RegistryFactoryWrapsAndNames) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto warm = MakeWarmStartTuner(registry, "random-search", {});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ((*warm)->name(), "warm-start:random-search");
  auto missing = MakeWarmStartTuner(registry, "no-such-tuner", {});
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace atune
