#include <gtest/gtest.h>

#include <cstdio>

#include "tests/testing_util.h"
#include "tuners/ml_tuners/ottertune.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;

class RepositoryIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "atune_repo_test.txt";
};

TEST_F(RepositoryIoTest, SaveLoadRoundTrip) {
  auto dbms = MakeTestDbms();
  OtterTuneRepository original = BuildOtterTuneRepository(
      dbms.get(), DefaultHistoryWorkloads("simulated-dbms", "olap"), 5, 42);
  ASSERT_FALSE(original.sessions.empty());

  ASSERT_TRUE(SaveOtterTuneRepository(original, path_).ok());
  auto loaded = LoadOtterTuneRepository(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->metric_names, original.metric_names);
  ASSERT_EQ(loaded->sessions.size(), original.sessions.size());
  EXPECT_EQ(loaded->TotalObservations(), original.TotalObservations());
  for (size_t s = 0; s < original.sessions.size(); ++s) {
    const auto& a = original.sessions[s];
    const auto& b = loaded->sessions[s];
    EXPECT_EQ(a.workload_name, b.workload_name);
    ASSERT_EQ(a.configs.size(), b.configs.size());
    for (size_t i = 0; i < a.configs.size(); ++i) {
      for (size_t d = 0; d < a.configs[i].size(); ++d) {
        EXPECT_DOUBLE_EQ(a.configs[i][d], b.configs[i][d]);
      }
      for (size_t m = 0; m < a.metrics[i].size(); ++m) {
        EXPECT_DOUBLE_EQ(a.metrics[i][m], b.metrics[i][m]);
      }
      EXPECT_DOUBLE_EQ(a.objectives[i], b.objectives[i]);
    }
  }
}

TEST_F(RepositoryIoTest, LoadedRepositoryDrivesTuning) {
  auto dbms = MakeTestDbms();
  Workload target = MakeDbmsOlapWorkload(0.25);
  OtterTuneRepository repo = BuildOtterTuneRepository(
      dbms.get(), DefaultHistoryWorkloads("simulated-dbms", target.kind), 8,
      7);
  ASSERT_TRUE(SaveOtterTuneRepository(repo, path_).ok());
  auto loaded = LoadOtterTuneRepository(path_);
  ASSERT_TRUE(loaded.ok());

  OtterTuneTuner tuner(std::move(*loaded), 3, 6);
  Evaluator evaluator(dbms.get(), target, TuningBudget{8});
  Rng rng(9);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LT(evaluator.best()->objective,
            evaluator.history().front().objective);
}

TEST_F(RepositoryIoTest, RejectsMissingAndCorruptFiles) {
  EXPECT_EQ(LoadOtterTuneRepository("/nonexistent/repo.txt").status().code(),
            StatusCode::kNotFound);
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a repository at all\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadOtterTuneRepository(path_).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace atune
