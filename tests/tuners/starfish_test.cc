#include "tuners/simulation/starfish.h"

#include <gtest/gtest.h>

#include "tests/testing_util.h"
#include "tuners/cost_model/cost_models.h"

namespace atune {
namespace {

using testing_util::MakeTestMapReduce;

TEST(StarfishTest, RejectsNonMapReduceSystems) {
  auto dbms = testing_util::MakeTestDbms();
  StarfishTuner tuner;
  Evaluator evaluator(dbms.get(), MakeDbmsOlapWorkload(0.25), TuningBudget{5});
  Rng rng(1);
  EXPECT_EQ(tuner.Tune(&evaluator, &rng).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StarfishTest, ProfileRecoversJobStatistics) {
  auto mr = MakeTestMapReduce();
  Workload truth = MakeMrWordCountWorkload(5.0);
  Configuration defaults = mr->space().DefaultConfiguration();
  auto run = mr->Execute(defaults, truth);
  ASSERT_TRUE(run.ok());

  // Hand the extractor a *wrong* declared workload: only input size and
  // job count may be trusted; everything else must come from measurement.
  Workload declared = truth;
  declared.properties["map_selectivity"] = 0.123;
  declared.properties["map_cpu_s_per_mb"] = 0.5;
  declared.properties["reduce_cpu_s_per_mb"] = 0.5;
  declared.properties["reducer_skew"] = 9.0;

  Workload profile = StarfishTuner::ExtractProfile(declared, defaults, *run);
  EXPECT_NEAR(profile.PropertyOr("map_selectivity", 0.0),
              truth.PropertyOr("map_selectivity", 0.0), 0.05);
  EXPECT_NEAR(profile.PropertyOr("map_cpu_s_per_mb", 0.0),
              truth.PropertyOr("map_cpu_s_per_mb", 0.0), 0.001);
  EXPECT_NEAR(profile.PropertyOr("reduce_cpu_s_per_mb", 0.0),
              truth.PropertyOr("reduce_cpu_s_per_mb", 0.0), 0.001);
  EXPECT_NEAR(profile.PropertyOr("reducer_skew", 0.0),
              truth.PropertyOr("reducer_skew", 0.0), 0.05);
}

TEST(StarfishTest, ProfileUndoesCompression) {
  auto mr = MakeTestMapReduce();
  Workload truth = MakeMrTeraSortWorkload(5.0);
  Configuration compressed = mr->space().DefaultConfiguration();
  compressed.SetBool("compress_map_output", true);
  compressed.SetString("compress_codec", "lz4");
  auto run = mr->Execute(compressed, truth);
  ASSERT_TRUE(run.ok());
  Workload profile = StarfishTuner::ExtractProfile(truth, compressed, *run);
  EXPECT_NEAR(profile.PropertyOr("map_selectivity", 0.0), 1.0, 0.05);
}

TEST(StarfishTest, CalibratedModelBeatsAssumedModel) {
  // The point of profiling: a model fed measured statistics predicts much
  // better than the same model fed a wrong workload guess.
  auto mr = MakeTestMapReduce();
  Workload truth = MakeMrWordCountWorkload(8.0);
  Configuration defaults = mr->space().DefaultConfiguration();
  auto run = mr->Execute(defaults, truth);
  ASSERT_TRUE(run.ok());
  Workload wrong_guess = truth;
  wrong_guess.properties["map_selectivity"] = 0.05;  // grep-like guess
  wrong_guess.properties["map_cpu_s_per_mb"] = 0.001;
  Workload profile = StarfishTuner::ExtractProfile(wrong_guess, defaults, *run);

  auto model = MakeMapReduceCostModel();
  auto desc = mr->Descriptors();
  Rng rng(5);
  double err_calibrated = 0.0, err_guess = 0.0;
  int n = 0;
  for (int i = 0; i < 150 && n < 20; ++i) {
    Configuration c = mr->space().RandomConfiguration(&rng);
    auto actual = mr->Execute(c, truth);
    ASSERT_TRUE(actual.ok());
    if (actual->failed) continue;  // random MR configs fail often (see E3)
    double pred_cal = model->PredictRuntime(c, profile, desc);
    double pred_guess = model->PredictRuntime(c, wrong_guess, desc);
    // 1e6 is the model's infeasibility sentinel, not a time prediction.
    if (pred_cal >= 1e6 || pred_guess >= 1e6) continue;
    err_calibrated +=
        std::abs(pred_cal - actual->runtime_seconds) / actual->runtime_seconds;
    err_guess += std::abs(pred_guess - actual->runtime_seconds) /
                 actual->runtime_seconds;
    ++n;
  }
  ASSERT_GT(n, 10);
  EXPECT_LT(err_calibrated, err_guess * 0.7);
}

TEST(StarfishTest, TunesTeraSortWithFewRuns) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrTeraSortWorkload(10.0);
  StarfishTuner tuner(/*whatif_search_size=*/1500, /*validation_runs=*/3);
  Evaluator evaluator(mr.get(), w, TuningBudget{6});
  Rng rng(7);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LE(evaluator.used(), 6.0);
  double default_obj = evaluator.history().front().objective;
  EXPECT_LT(evaluator.best()->objective, default_obj / 2.0);
  EXPECT_NE(tuner.Report().find("profile:"), std::string::npos);
}

}  // namespace
}  // namespace atune
