#include <gtest/gtest.h>

#include "tests/testing_util.h"
#include "tuners/simulation/addm.h"
#include "tuners/simulation/trace_simulator.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestMapReduce;
using testing_util::MakeTestSpark;

TEST(TraceSimulatorTest, WhatIfPredictsBufferPoolBenefit) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  Configuration traced = dbms->space().DefaultConfiguration();
  auto trace = dbms->Execute(traced, w);
  ASSERT_TRUE(trace.ok());
  Configuration bigger = traced;
  bigger.SetInt("buffer_pool_mb", 8192);
  double pred_same = TraceSimulatorTuner::PredictFromTrace(
      "simulated-dbms", traced, *trace, traced, dbms->Descriptors());
  double pred_big = TraceSimulatorTuner::PredictFromTrace(
      "simulated-dbms", traced, *trace, bigger, dbms->Descriptors());
  EXPECT_LT(pred_big, pred_same);
  // Self-prediction should be near the observed runtime.
  EXPECT_NEAR(pred_same, trace->runtime_seconds,
              trace->runtime_seconds * 0.3);
}

TEST(TraceSimulatorTest, WhatIfPredictsReducerBenefitForMr) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrTeraSortWorkload(10.0);
  Configuration traced = mr->space().DefaultConfiguration();
  auto trace = mr->Execute(traced, w);
  ASSERT_TRUE(trace.ok());
  Configuration more_reducers = traced;
  more_reducers.SetInt("num_reducers", 16);
  EXPECT_LT(TraceSimulatorTuner::PredictFromTrace(
                "simulated-mapreduce", traced, *trace, more_reducers,
                mr->Descriptors()),
            TraceSimulatorTuner::PredictFromTrace(
                "simulated-mapreduce", traced, *trace, traced,
                mr->Descriptors()));
}

TEST(TraceSimulatorTest, TunerImprovesOverDefault) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  TraceSimulatorTuner tuner(/*whatif_search_size=*/800, /*validation_runs=*/4);
  Evaluator evaluator(dbms.get(), w, TuningBudget{6});
  Rng rng(8);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  double default_obj = evaluator.history().front().objective;
  EXPECT_LT(evaluator.best()->objective, default_obj);
  EXPECT_LE(evaluator.used(), 6.0);
  EXPECT_NE(tuner.Report().find("what-if"), std::string::npos);
}

TEST(AddmTest, DiagnosesIoBoundDbms) {
  auto dbms = MakeTestDbms();
  Configuration current = dbms->space().DefaultConfiguration();
  ExecutionResult profile;
  profile.runtime_seconds = 100.0;
  profile.metrics = {{"io_time_s", 80.0},     {"cpu_time_s", 10.0},
                     {"lock_wait_s", 0.0},    {"commit_wait_s", 1.0},
                     {"checkpoint_io_mb", 0}, {"buffer_hit_ratio", 0.4},
                     {"spill_mb", 0.0},       {"swap_penalty", 1.0}};
  Configuration fixed;
  std::string finding = AddmTuner::DiagnoseAndFix(
      "simulated-dbms", profile, dbms->space(), current, &fixed);
  EXPECT_EQ(finding, "io:buffer-misses");
  EXPECT_GT(fixed.IntOr("buffer_pool_mb", 0), current.IntOr("buffer_pool_mb", 0));
}

TEST(AddmTest, DiagnosesSpillVsMisses) {
  auto dbms = MakeTestDbms();
  Configuration current = dbms->space().DefaultConfiguration();
  ExecutionResult profile;
  profile.runtime_seconds = 100.0;
  profile.metrics = {{"io_time_s", 80.0},  {"cpu_time_s", 10.0},
                     {"spill_mb", 5000.0}, {"buffer_hit_ratio", 0.95},
                     {"swap_penalty", 1.0}};
  Configuration fixed;
  std::string finding = AddmTuner::DiagnoseAndFix(
      "simulated-dbms", profile, dbms->space(), current, &fixed);
  EXPECT_EQ(finding, "io:spill");
  EXPECT_GT(fixed.IntOr("work_mem_mb", 0), current.IntOr("work_mem_mb", 0));
}

TEST(AddmTest, DiagnosesMemoryPressureFirst) {
  auto dbms = MakeTestDbms();
  Configuration current = dbms->space().DefaultConfiguration();
  current.SetInt("buffer_pool_mb", 8192);
  ExecutionResult profile;
  profile.runtime_seconds = 100.0;
  profile.metrics = {{"io_time_s", 90.0}, {"swap_penalty", 3.0}};
  Configuration fixed;
  std::string finding = AddmTuner::DiagnoseAndFix(
      "simulated-dbms", profile, dbms->space(), current, &fixed);
  EXPECT_EQ(finding, "memory-pressure");
  EXPECT_LT(fixed.IntOr("buffer_pool_mb", 0), 8192);
}

TEST(AddmTest, DiagnosesSparkGcAndOverhead) {
  auto spark = MakeTestSpark();
  Configuration current = spark->space().DefaultConfiguration();
  ExecutionResult gc_bound;
  gc_bound.runtime_seconds = 100.0;
  gc_bound.metrics = {{"gc_time_s", 40.0}, {"scheduling_overhead_s", 2.0}};
  Configuration fixed;
  EXPECT_EQ(AddmTuner::DiagnoseAndFix("simulated-spark", gc_bound,
                                      spark->space(), current, &fixed),
            "gc-pressure");
  EXPECT_EQ(fixed.StringOr("serializer", ""), "kryo");

  ExecutionResult overhead_bound;
  overhead_bound.runtime_seconds = 100.0;
  overhead_bound.metrics = {{"gc_time_s", 2.0},
                            {"scheduling_overhead_s", 40.0}};
  EXPECT_EQ(AddmTuner::DiagnoseAndFix("simulated-spark", overhead_bound,
                                      spark->space(), current, &fixed),
            "task-overhead");
  EXPECT_LT(fixed.IntOr("shuffle_partitions", 0),
            current.IntOr("shuffle_partitions", 0));
}

TEST(AddmTest, DiagnosesMrShuffle) {
  auto mr = MakeTestMapReduce();
  Configuration current = mr->space().DefaultConfiguration();
  ExecutionResult profile;
  profile.runtime_seconds = 100.0;
  profile.metrics = {{"map_time_s", 20.0},
                     {"shuffle_time_s", 60.0},
                     {"reduce_time_s", 15.0}};
  Configuration fixed;
  EXPECT_EQ(AddmTuner::DiagnoseAndFix("simulated-mapreduce", profile,
                                      mr->space(), current, &fixed),
            "shuffle");
  EXPECT_TRUE(fixed.BoolOr("compress_map_output", false));
}

TEST(AddmTest, IterativeTuningImprovesDbms) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  AddmTuner tuner(/*max_iterations=*/8);
  Evaluator evaluator(dbms.get(), w, TuningBudget{10});
  Rng rng(9);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  double default_obj = evaluator.history().front().objective;
  EXPECT_LT(evaluator.best()->objective, default_obj);
  EXPECT_NE(tuner.Report().find("diagnosis chain"), std::string::npos);
}

TEST(AddmTest, IterativeTuningImprovesMr) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrTeraSortWorkload(10.0);
  AddmTuner tuner(8);
  Evaluator evaluator(mr.get(), w, TuningBudget{10});
  Rng rng(10);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LT(evaluator.best()->objective,
            evaluator.history().front().objective);
}

}  // namespace
}  // namespace atune
