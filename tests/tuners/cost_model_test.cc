#include <gtest/gtest.h>

#include "common/stats.h"
#include "tests/testing_util.h"
#include "tuners/cost_model/cost_model_tuner.h"
#include "tuners/cost_model/cost_models.h"
#include "tuners/cost_model/stmm.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestMapReduce;
using testing_util::MakeTestSpark;

TEST(CostModelsTest, FactoryDispatch) {
  EXPECT_EQ(MakeCostModelForSystem("simulated-dbms")->name(),
            "dbms-cost-model");
  EXPECT_EQ(MakeCostModelForSystem("simulated-mapreduce")->name(),
            "mapreduce-cost-model");
  EXPECT_EQ(MakeCostModelForSystem("simulated-spark")->name(),
            "spark-cost-model");
}

TEST(CostModelsTest, DbmsModelRanksBufferPoolCorrectly) {
  auto dbms = MakeTestDbms();
  auto model = MakeDbmsCostModel();
  Workload w = MakeDbmsOlapWorkload(1.0);
  auto desc = dbms->Descriptors();
  Configuration small = dbms->space().DefaultConfiguration();
  small.SetInt("buffer_pool_mb", 128);
  Configuration big = dbms->space().DefaultConfiguration();
  big.SetInt("buffer_pool_mb", 8192);
  EXPECT_GT(model->PredictRuntime(small, w, desc),
            model->PredictRuntime(big, w, desc));
}

// The model must rank configurations in roughly the same order as the real
// system — that is what makes cost-model tuning work on basic scenarios.
TEST(CostModelsTest, RankCorrelationWithSimulatorIsPositive) {
  auto dbms = MakeTestDbms();
  auto model = MakeDbmsCostModel();
  Workload w = MakeDbmsOlapWorkload(0.5);
  auto desc = dbms->Descriptors();
  Rng rng(3);
  std::vector<double> predicted, actual;
  for (int i = 0; i < 40; ++i) {
    Configuration c = dbms->space().RandomConfiguration(&rng);
    auto real = dbms->Execute(c, w);
    ASSERT_TRUE(real.ok());
    if (real->failed) continue;  // the model doesn't predict failures
    predicted.push_back(model->PredictRuntime(c, w, desc));
    actual.push_back(real->runtime_seconds);
  }
  ASSERT_GT(predicted.size(), 15u);
  EXPECT_GT(SpearmanCorrelation(predicted, actual), 0.4);
}

TEST(CostModelTunerTest, FindsGoodConfigWithFewRealRuns) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  CostModelTuner tuner(/*model_search_size=*/1500, /*validation_runs=*/3);
  Evaluator evaluator(dbms.get(), w, TuningBudget{5});
  Rng rng(4);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LE(evaluator.used(), 3.0);  // validation runs only
  Configuration dbms_defaults = dbms->space().DefaultConfiguration();
  double default_obj =
      evaluator.ObjectiveOf(dbms_defaults, *dbms->Execute(dbms_defaults, w));
  EXPECT_LT(evaluator.best()->objective, default_obj);
  EXPECT_NE(tuner.Report().find("validated"), std::string::npos);
}

TEST(CostModelTunerTest, WorksOnAllThreeSystems) {
  Rng rng(5);
  {
    auto mr = MakeTestMapReduce();
    CostModelTuner tuner(800, 2);
    Evaluator evaluator(mr.get(), MakeMrTeraSortWorkload(5.0),
                        TuningBudget{3});
    ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
    EXPECT_NE(evaluator.best(), nullptr);
  }
  {
    auto spark = MakeTestSpark();
    CostModelTuner tuner(800, 2);
    Evaluator evaluator(spark.get(), MakeSparkSqlAggregateWorkload(4.0, 4.0),
                        TuningBudget{3});
    ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
    EXPECT_NE(evaluator.best(), nullptr);
  }
}

TEST(StmmTest, RejectsNonDbmsSystems) {
  auto spark = MakeTestSpark();
  StmmTuner tuner;
  Evaluator evaluator(spark.get(), MakeSparkSqlAggregateWorkload(2.0, 2.0),
                      TuningBudget{3});
  Rng rng(6);
  EXPECT_EQ(tuner.Tune(&evaluator, &rng).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StmmTest, RedistributesMemoryAndImproves) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  StmmTuner tuner(0.8);
  Evaluator evaluator(dbms.get(), w, TuningBudget{2});
  Rng rng(7);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  Configuration dbms_defaults = dbms->space().DefaultConfiguration();
  double default_obj =
      evaluator.ObjectiveOf(dbms_defaults, *dbms->Execute(dbms_defaults, w));
  EXPECT_LT(evaluator.best()->objective, default_obj);
  EXPECT_NE(tuner.Report().find("equilibrium"), std::string::npos);
  // The recommendation must respect the memory budget (no OOM).
  EXPECT_FALSE(evaluator.best()->result.failed);
  // Analytical work memory should have grown from the spill-inducing 4 MB
  // default for this sort-heavy workload.
  EXPECT_GT(evaluator.best()->config.IntOr("work_mem_mb", 0), 4);
}

}  // namespace
}  // namespace atune
