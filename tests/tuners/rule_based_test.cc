#include <gtest/gtest.h>

#include "tests/core/mock_system.h"
#include "tests/testing_util.h"
#include "tuners/rule_based/builtin_rules.h"
#include "tuners/rule_based/config_navigator.h"
#include "tuners/rule_based/rule_engine.h"
#include "tuners/rule_based/spex.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestMapReduce;
using testing_util::MakeTestSpark;

TEST(RuleEngineTest, AppliesOnlyApplicableRules) {
  ParameterSpace space;
  ASSERT_TRUE(space.Add(ParameterDef::Int("a", 0, 100, 10)).ok());
  ASSERT_TRUE(space.Add(ParameterDef::Int("b", 0, 100, 10)).ok());
  std::vector<TuningRule> rules;
  rules.push_back({"always", "", [](const RuleContext&) { return true; },
                   [](Configuration* c, const RuleContext&) {
                     c->SetInt("a", 50);
                   }});
  rules.push_back({"never", "", [](const RuleContext&) { return false; },
                   [](Configuration* c, const RuleContext&) {
                     c->SetInt("b", 99);
                   }});
  RuleContext context;
  std::vector<std::string> fired;
  Configuration config = ApplyRules(space, rules, context, &fired);
  EXPECT_EQ(*config.GetInt("a"), 50);
  EXPECT_EQ(*config.GetInt("b"), 10);  // untouched default
  EXPECT_EQ(fired, std::vector<std::string>{"always"});
}

TEST(RuleEngineTest, OutOfRangeRuleOutputIsClamped) {
  ParameterSpace space;
  ASSERT_TRUE(space.Add(ParameterDef::Int("a", 0, 100, 10)).ok());
  std::vector<TuningRule> rules = {
      {"overshoot", "", [](const RuleContext&) { return true; },
       [](Configuration* c, const RuleContext&) { c->SetInt("a", 5000); }}};
  Configuration config = ApplyRules(space, rules, RuleContext{});
  EXPECT_EQ(*config.GetInt("a"), 100);
  EXPECT_TRUE(space.ValidateConfiguration(config).ok());
}

// The built-in rule sets must improve on the stock defaults for their
// system's flagship workloads — that is the entire point of a runbook.
TEST(BuiltinRulesTest, DbmsRulesBeatDefaultsOnOlap) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  RuleBasedTuner tuner("rules-dbms", MakeDbmsRules());
  Evaluator evaluator(dbms.get(), w, TuningBudget{2});
  Rng rng(1);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  double rule_obj = evaluator.best()->objective;
  Configuration dbms_defaults = dbms->space().DefaultConfiguration();
  double default_obj =
      evaluator.ObjectiveOf(dbms_defaults, *dbms->Execute(dbms_defaults, w));
  EXPECT_LT(rule_obj, default_obj);
  EXPECT_LE(evaluator.used(), 1.0);  // one shot, no experiments
  EXPECT_NE(tuner.Report().find("rules fired"), std::string::npos);
}

TEST(BuiltinRulesTest, MapReduceRulesBeatDefaultsOnTeraSort) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrTeraSortWorkload(10.0);
  RuleBasedTuner tuner("rules-mapreduce", MakeMapReduceRules());
  Evaluator evaluator(mr.get(), w, TuningBudget{2});
  Rng rng(1);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  Configuration mr_defaults = mr->space().DefaultConfiguration();
  double default_obj =
      evaluator.ObjectiveOf(mr_defaults, *mr->Execute(mr_defaults, w));
  EXPECT_LT(evaluator.best()->objective, default_obj / 2.0);
}

TEST(BuiltinRulesTest, SparkRulesBeatDefaultsOnIterativeMl) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkIterativeMlWorkload(4.0, 6.0);
  RuleBasedTuner tuner("rules-spark", MakeSparkRules());
  Evaluator evaluator(spark.get(), w, TuningBudget{2});
  Rng rng(1);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  Configuration spark_defaults = spark->space().DefaultConfiguration();
  double default_obj =
      evaluator.ObjectiveOf(spark_defaults, *spark->Execute(spark_defaults, w));
  EXPECT_LT(evaluator.best()->objective, default_obj);
  EXPECT_FALSE(evaluator.best()->result.failed);
}

TEST(BuiltinRulesTest, RulesForSystemDispatch) {
  EXPECT_FALSE(MakeRulesForSystem("simulated-dbms").empty());
  EXPECT_FALSE(MakeRulesForSystem("simulated-mapreduce").empty());
  EXPECT_FALSE(MakeRulesForSystem("simulated-spark").empty());
}

TEST(SpexTest, ConstraintsCatchKnownBadConfigs) {
  auto mr = MakeTestMapReduce();
  auto constraints = MakeConstraintsForSystem("simulated-mapreduce");
  Configuration bad = mr->space().DefaultConfiguration();
  bad.SetInt("io_sort_mb", 2048);
  bad.SetInt("task_memory_mb", 512);
  auto violations =
      CheckConstraints(constraints, bad, mr->Descriptors());
  EXPECT_FALSE(violations.empty());
  Configuration good = mr->space().DefaultConfiguration();
  good.SetInt("num_reducers", 8);
  EXPECT_TRUE(CheckConstraints(constraints, good, mr->Descriptors()).empty());
}

TEST(SpexTest, RepairsFailingCandidateIntoWorkingConfig) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrWordCountWorkload(2.0);
  Configuration doomed = mr->space().DefaultConfiguration();
  doomed.SetInt("io_sort_mb", 2048);
  doomed.SetInt("task_memory_mb", 512);
  // Sanity: the candidate really fails.
  ASSERT_TRUE(mr->Execute(doomed, w)->failed);
  SpexTuner tuner(doomed);
  Evaluator evaluator(mr.get(), w, TuningBudget{2});
  Rng rng(1);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  EXPECT_FALSE(evaluator.best()->result.failed);
  EXPECT_NE(tuner.Report().find("after repair"), std::string::npos);
}

TEST(SpexTest, DbmsMemoryConstraintRepair) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(0.25);
  Configuration doomed = dbms->space().DefaultConfiguration();
  doomed.SetInt("buffer_pool_mb", 14000);
  doomed.SetInt("work_mem_mb", 2048);
  ASSERT_TRUE(dbms->Execute(doomed, w)->failed);
  SpexTuner tuner(doomed);
  Evaluator evaluator(dbms.get(), w, TuningBudget{2});
  Rng rng(1);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_FALSE(evaluator.best()->result.failed);
}

TEST(ConfigNavigatorTest, RanksAndRefinesWithinBudget) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.25);
  ConfigNavigatorTuner tuner(/*top_k=*/3);
  Evaluator evaluator(dbms.get(), w, TuningBudget{40});
  Rng rng(2);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  EXPECT_LE(evaluator.used(), 40.0);
  EXPECT_EQ(tuner.ranking().size(), dbms->space().dims());
  // It measured the default first, so the best can only be <= default.
  double default_obj = evaluator.history().front().objective;
  EXPECT_LE(evaluator.best()->objective, default_obj);
  // On OLAP, memory/IO knobs must outrank the OLTP-only checkpoint knob.
  size_t checkpoint_rank = 0;
  for (size_t i = 0; i < tuner.ranking().size(); ++i) {
    if (tuner.ranking()[i] == "checkpoint_interval_s") checkpoint_rank = i;
  }
  EXPECT_GT(checkpoint_rank, 2u);
}

}  // namespace
}  // namespace atune
