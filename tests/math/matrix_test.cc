#include "math/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace atune {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  m(1, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(1, 0), 7.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 2), 0.0);
  Matrix d = Matrix::Diagonal({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, MultiplyAgainstKnownProduct) {
  Matrix a({{1, 2, 3}, {4, 5, 6}});
  Matrix b({{7, 8}, {9, 10}, {11, 12}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix a({{1, 2, 3}, {4, 5, 6}});
  Matrix att = a.Transpose().Transpose();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
  }
}

TEST(MatrixTest, MultiplyVec) {
  Matrix a({{1, 2}, {3, 4}});
  Vec v = a.MultiplyVec({1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, CholeskyReconstructs) {
  // SPD matrix A = B B^T + n I.
  Matrix a({{4.0, 2.0, 0.6}, {2.0, 5.0, 1.0}, {0.6, 1.0, 3.0}});
  auto l = a.Cholesky();
  ASSERT_TRUE(l.ok());
  Matrix rec = l->Multiply(l->Transpose());
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(rec(r, c), a(r, c), 1e-10);
  }
}

TEST(MatrixTest, CholeskyRejectsNonSpd) {
  Matrix notspd({{1.0, 2.0}, {2.0, 1.0}});  // indefinite
  EXPECT_FALSE(notspd.Cholesky().ok());
  Matrix notsquare(2, 3);
  EXPECT_FALSE(notsquare.Cholesky().ok());
}

TEST(MatrixTest, SolveSpdMatchesDirect) {
  Matrix a({{4.0, 1.0}, {1.0, 3.0}});
  Vec b = {1.0, 2.0};
  auto x = a.SolveSpd(b);
  ASSERT_TRUE(x.ok());
  Vec ax = a.MultiplyVec(*x);
  EXPECT_NEAR(ax[0], b[0], 1e-10);
  EXPECT_NEAR(ax[1], b[1], 1e-10);
}

TEST(MatrixTest, ForwardBackwardSolveRoundTrip) {
  Matrix a({{9.0, 3.0, 1.0}, {3.0, 8.0, 2.0}, {1.0, 2.0, 7.0}});
  auto l = a.Cholesky();
  ASSERT_TRUE(l.ok());
  Vec b = {1.0, -2.0, 0.5};
  Vec y = Matrix::ForwardSolve(*l, b);
  Vec x = Matrix::BackwardSolveTranspose(*l, y);
  Vec ax = a.MultiplyVec(x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(MatrixTest, LogDetMatchesDirect) {
  Matrix a({{4.0, 0.0}, {0.0, 9.0}});
  auto l = a.Cholesky();
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(Matrix::LogDetFromCholesky(*l), std::log(36.0), 1e-10);
}

TEST(MatrixTest, LeastSquaresRecoversLine) {
  // y = 2x + 1 with exact data.
  Matrix a(5, 2);
  Vec b(5);
  for (int i = 0; i < 5; ++i) {
    a.At(i, 0) = i;
    a.At(i, 1) = 1.0;
    b[i] = 2.0 * i + 1.0;
  }
  auto x = Matrix::LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-8);
  EXPECT_NEAR((*x)[1], 1.0, 1e-8);
}

TEST(MatrixTest, LeastSquaresRankDeficientFallsBackToRidge) {
  // Duplicate column: unregularized normal equations are singular.
  Matrix a(4, 2);
  Vec b(4);
  for (int i = 0; i < 4; ++i) {
    a.At(i, 0) = i;
    a.At(i, 1) = i;
    b[i] = 3.0 * i;
  }
  auto x = Matrix::LeastSquares(a, b, 0.0);
  ASSERT_TRUE(x.ok());
  // Any solution with x0 + x1 = 3 fits; check the fit, not the coords.
  Vec ax = a.MultiplyVec(*x);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(ax[i], b[i], 1e-4);
}

TEST(VecOpsTest, DotNormAxpyDistance) {
  Vec a = {1.0, 2.0, 2.0};
  Vec b = {2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 3.0);
  Vec c = Axpy(a, 2.0, b);
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 1.0 + 4.0 + 1.0);
}

TEST(MatrixTest, AddSubtractScaleAddDiagonal) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{4, 3}, {2, 1}});
  Matrix s = a.Add(b);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  Matrix d = a.Subtract(b);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  Matrix sc = a.Scale(2.0);
  EXPECT_DOUBLE_EQ(sc(1, 0), 6.0);
  a.AddDiagonal(10.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
}

}  // namespace
}  // namespace atune
