#include "math/doe.h"

#include <gtest/gtest.h>

#include <cmath>

namespace atune {
namespace {

// Property: every PB design must be balanced (each column has equal +1/-1
// counts) and orthogonal (any two columns' elementwise products sum to 0).
class PbOrthogonalityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PbOrthogonalityTest, BalancedAndOrthogonal) {
  size_t factors = GetParam();
  auto design = PlackettBurman(factors);
  ASSERT_TRUE(design.ok()) << design.status().ToString();
  ASSERT_EQ(design->num_factors, factors);
  size_t runs = design->rows.size();
  EXPECT_GT(runs, factors);
  EXPECT_EQ(runs % 4, 0u);
  for (size_t c = 0; c < factors; ++c) {
    int sum = 0;
    for (const auto& row : design->rows) sum += row[c];
    EXPECT_EQ(sum, 0) << "column " << c << " unbalanced";
  }
  for (size_t c1 = 0; c1 < factors; ++c1) {
    for (size_t c2 = c1 + 1; c2 < factors; ++c2) {
      int dot = 0;
      for (const auto& row : design->rows) dot += row[c1] * row[c2];
      EXPECT_EQ(dot, 0) << "columns " << c1 << "," << c2 << " correlated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PbOrthogonalityTest,
                         ::testing::Values<size_t>(2, 3, 5, 7, 11, 12, 14, 19,
                                                   23, 30, 47, 63, 100));

TEST(DoeTest, PlackettBurmanRejectsDegenerate) {
  EXPECT_FALSE(PlackettBurman(0).ok());
  EXPECT_FALSE(PlackettBurman(512).ok());
}

TEST(DoeTest, FoldoverDoublesRunsAndMirrors) {
  auto design = PlackettBurmanFoldover(10);
  ASSERT_TRUE(design.ok());
  size_t half = design->rows.size() / 2;
  for (size_t r = 0; r < half; ++r) {
    for (size_t c = 0; c < design->num_factors; ++c) {
      EXPECT_EQ(design->rows[r][c], -design->rows[r + half][c]);
    }
  }
}

TEST(DoeTest, FullFactorialEnumeratesAll) {
  auto design = FullFactorial(3);
  ASSERT_TRUE(design.ok());
  EXPECT_EQ(design->rows.size(), 8u);
  // All rows distinct.
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = i + 1; j < 8; ++j) {
      EXPECT_NE(design->rows[i], design->rows[j]);
    }
  }
  EXPECT_FALSE(FullFactorial(0).ok());
  EXPECT_FALSE(FullFactorial(21).ok());
}

TEST(DoeTest, MainEffectsRecoverAdditiveModel) {
  // Response = 10 + 3*x0 - 5*x2 (x in {-1,+1}): effects are 2*coef.
  auto design = PlackettBurman(4);
  ASSERT_TRUE(design.ok());
  std::vector<double> responses;
  for (const auto& row : design->rows) {
    responses.push_back(10.0 + 3.0 * row[0] - 5.0 * row[2]);
  }
  auto effects = MainEffects(*design, responses);
  ASSERT_TRUE(effects.ok());
  EXPECT_NEAR((*effects)[0], 6.0, 1e-9);
  EXPECT_NEAR((*effects)[1], 0.0, 1e-9);
  EXPECT_NEAR((*effects)[2], -10.0, 1e-9);
  EXPECT_NEAR((*effects)[3], 0.0, 1e-9);

  auto ranking = RankByEffect(*effects);
  EXPECT_EQ(ranking[0], 2u);
  EXPECT_EQ(ranking[1], 0u);
}

TEST(DoeTest, MainEffectsSizeMismatchRejected) {
  auto design = PlackettBurman(3);
  ASSERT_TRUE(design.ok());
  EXPECT_FALSE(MainEffects(*design, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace atune
