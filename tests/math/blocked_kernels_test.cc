// Property tests for the blocked fast-path kernels of math/matrix.cc against
// the naive references in math/reference_kernels.h (DESIGN.md §11). The
// contract is *bit-identity* — memcmp-level equality of the output doubles —
// except for CholeskyRank1Update, which is a different algorithm and is held
// to a numerical tolerance against full refactorization.

#include <cmath>
#include <cstring>
#include <random>

#include "gtest/gtest.h"
#include "math/matrix.h"
#include "math/reference_kernels.h"

namespace atune {
namespace {

using std::mt19937_64;

/// Random SPD matrix A = G Gᵀ + d·I with entries from `gen`; `diag_boost`
/// near 0 makes it ill-conditioned.
Matrix RandomSpd(size_t n, mt19937_64* gen, double diag_boost) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix g(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) g.At(i, j) = u(*gen);
  }
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) acc += g.At(i, k) * g.At(j, k);
      a.At(i, j) = acc;
    }
  }
  for (size_t i = 0; i < n; ++i) a.At(i, i) += diag_boost;
  return a;
}

Vec RandomVec(size_t n, mt19937_64* gen) {
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  Vec v(n);
  for (double& x : v) x = u(*gen);
  return v;
}

::testing::AssertionResult BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data().data(), b.data().data(),
                  a.data().size() * sizeof(double)) != 0) {
    for (size_t i = 0; i < a.rows(); ++i) {
      for (size_t j = 0; j < a.cols(); ++j) {
        double av = a.At(i, j);
        double bv = b.At(i, j);
        if (std::memcmp(&av, &bv, sizeof(double)) != 0) {
          return ::testing::AssertionFailure()
                 << "first differing element (" << i << "," << j << "): " << av
                 << " vs " << bv;
        }
      }
    }
    return ::testing::AssertionFailure() << "bytes differ";
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitIdentical(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first differing element [" << i << "]: " << a[i] << " vs "
               << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(BlockedKernels, CholeskyBitIdenticalAcrossSizes) {
  mt19937_64 gen(7);
  // Sizes straddle every blocking boundary (n % 4 in {0,1,2,3}) including
  // degenerate 0/1 and a "large" case.
  for (size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64, 97}) {
    Matrix a = RandomSpd(n, &gen, 1.0 + static_cast<double>(n));
    auto fast = a.Cholesky();
    auto ref = reference::Cholesky(a);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(BitIdentical(*fast, *ref)) << "n=" << n;
  }
}

TEST(BlockedKernels, CholeskyIllConditionedBitIdentical) {
  mt19937_64 gen(11);
  for (size_t n : {8, 33, 50}) {
    Matrix a = RandomSpd(n, &gen, 1e-9);
    auto fast = a.Cholesky();
    auto ref = reference::Cholesky(a);
    ASSERT_EQ(fast.ok(), ref.ok()) << "n=" << n;
    if (fast.ok()) EXPECT_TRUE(BitIdentical(*fast, *ref)) << "n=" << n;
  }
}

TEST(BlockedKernels, CholeskyNotPositiveDefiniteSameError) {
  Matrix a({{1.0, 2.0}, {2.0, 1.0}});  // indefinite
  auto fast = a.Cholesky();
  auto ref = reference::Cholesky(a);
  ASSERT_FALSE(fast.ok());
  ASSERT_FALSE(ref.ok());
  EXPECT_EQ(fast.status().message(), ref.status().message());
}

TEST(BlockedKernels, ForwardSolveBitIdentical) {
  mt19937_64 gen(13);
  for (size_t n : {1, 2, 3, 4, 5, 8, 13, 27, 64, 101}) {
    Matrix a = RandomSpd(n, &gen, 2.0);
    auto l = a.Cholesky();
    ASSERT_TRUE(l.ok());
    Vec b = RandomVec(n, &gen);
    EXPECT_TRUE(BitIdentical(Matrix::ForwardSolve(*l, b),
                             reference::ForwardSolve(*l, b)))
        << "n=" << n;
  }
}

TEST(BlockedKernels, ForwardSolveIntoMatchesAndAllowsAliasing) {
  mt19937_64 gen(17);
  size_t n = 37;
  Matrix a = RandomSpd(n, &gen, 2.0);
  auto l = a.Cholesky();
  ASSERT_TRUE(l.ok());
  Vec b = RandomVec(n, &gen);
  Vec expect = reference::ForwardSolve(*l, b);
  Vec out(n, 0.0);
  Matrix::ForwardSolveInto(*l, b.data(), out.data());
  EXPECT_TRUE(BitIdentical(out, expect));
  Vec in_place = b;  // y == b aliasing
  Matrix::ForwardSolveInto(*l, in_place.data(), in_place.data());
  EXPECT_TRUE(BitIdentical(in_place, expect));
}

TEST(BlockedKernels, ForwardSolveMultiEachColumnBitIdentical) {
  mt19937_64 gen(19);
  for (size_t n : {1, 5, 16, 40}) {
    // Column counts straddle the 8-lane panel boundary.
    for (size_t m : {1, 3, 7, 8, 9, 17, 24}) {
      Matrix a = RandomSpd(n, &gen, 2.0);
      auto l = a.Cholesky();
      ASSERT_TRUE(l.ok());
      Matrix b(n, m);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < m; ++j) {
          b.At(i, j) = std::sin(static_cast<double>(i * m + j));
        }
      }
      Matrix y = Matrix::ForwardSolveMulti(*l, b);
      for (size_t j = 0; j < m; ++j) {
        EXPECT_TRUE(
            BitIdentical(y.Col(j), reference::ForwardSolve(*l, b.Col(j))))
            << "n=" << n << " m=" << m << " col=" << j;
      }
    }
  }
}

TEST(BlockedKernels, MultiplyBitIdenticalIncludingZeroSkip) {
  mt19937_64 gen(23);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (auto [r, k, c] : {std::array<size_t, 3>{1, 1, 1},
                         {3, 4, 5},
                         {8, 8, 8},
                         {13, 7, 21}}) {
    Matrix a(r, k);
    Matrix b(k, c);
    for (size_t i = 0; i < r; ++i) {
      for (size_t j = 0; j < k; ++j) {
        // Sprinkle exact zeros so the zero-skip path is exercised.
        a.At(i, j) = ((i + j) % 3 == 0) ? 0.0 : u(gen);
      }
    }
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < c; ++j) b.At(i, j) = u(gen);
    }
    EXPECT_TRUE(BitIdentical(a.Multiply(b), reference::Multiply(a, b)));
  }
}

TEST(BlockedKernels, AppendRowBitIdenticalToFullRefactorization) {
  mt19937_64 gen(29);
  // Grow a factor one bordered row at a time from 0 to 40 points; at every
  // step it must equal the from-scratch factorization byte for byte (this
  // covers the in-place relayout across all stride transitions).
  size_t target = 40;
  Matrix a = RandomSpd(target, &gen, 4.0 + target);
  Matrix incremental(0, 0);
  for (size_t n = 0; n < target; ++n) {
    Vec row(n + 1);
    for (size_t j = 0; j <= n; ++j) row[j] = a.At(n, j);
    ASSERT_TRUE(incremental.CholeskyAppendRow(row).ok()) << "n=" << n;
    Matrix head(n + 1, n + 1);
    for (size_t i = 0; i <= n; ++i) {
      for (size_t j = 0; j <= n; ++j) head.At(i, j) = a.At(i, j);
    }
    auto full = head.Cholesky();
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(BitIdentical(incremental, *full)) << "n=" << n;
  }
}

TEST(BlockedKernels, AppendRowRejectsIndefiniteBorderUnchanged) {
  Matrix l(0, 0);
  ASSERT_TRUE(l.CholeskyAppendRow({4.0}).ok());
  // Border that makes the matrix indefinite: cross term too large.
  Status s = l.CholeskyAppendRow({10.0, 1.0});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(l.rows(), 1u);
  EXPECT_EQ(l.At(0, 0), 2.0);
}

TEST(BlockedKernels, Rank1UpdateMatchesRefactorizationNumerically) {
  mt19937_64 gen(31);
  for (size_t n : {1, 4, 9, 25, 50}) {
    Matrix a = RandomSpd(n, &gen, 2.0 + n);
    Vec v = RandomVec(n, &gen);
    auto l = a.Cholesky();
    ASSERT_TRUE(l.ok());
    ASSERT_TRUE(l->CholeskyRank1Update(v).ok());
    Matrix updated = a;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) updated.At(i, j) += v[i] * v[j];
    }
    auto full = updated.Cholesky();
    ASSERT_TRUE(full.ok());
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        EXPECT_NEAR(l->At(i, j), full->At(i, j),
                    1e-9 * (1.0 + std::fabs(full->At(i, j))))
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(BlockedKernels, ScalarSwitchRoutesToReference) {
  mt19937_64 gen(37);
  Matrix a = RandomSpd(12, &gen, 3.0);
  Vec b = RandomVec(12, &gen);
  ASSERT_FALSE(ScalarKernelsForTesting());
  auto fast = a.Cholesky();
  SetScalarKernelsForTesting(true);
  auto scalar = a.Cholesky();
  Vec scalar_solve = Matrix::ForwardSolve(*scalar, b);
  SetScalarKernelsForTesting(false);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(scalar.ok());
  // Scalar and fast agree bit-for-bit — that is the whole point — so the
  // switch is observable only through timing; identity is what we assert.
  EXPECT_TRUE(BitIdentical(*fast, *scalar));
  EXPECT_TRUE(BitIdentical(Matrix::ForwardSolve(*fast, b), scalar_solve));
}

TEST(BlockedKernels, DotSpanMatchesDot) {
  mt19937_64 gen(41);
  Vec a = RandomVec(19, &gen);
  Vec b = RandomVec(19, &gen);
  double d1 = Dot(a, b);
  double d2 = DotSpan(a.data(), b.data(), a.size());
  EXPECT_TRUE(std::memcmp(&d1, &d2, sizeof(double)) == 0);
}

}  // namespace
}  // namespace atune
