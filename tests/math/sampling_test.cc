#include "math/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace atune {
namespace {

TEST(SamplingTest, UniformSamplesShapeAndRange) {
  Rng rng(1);
  auto pts = UniformSamples(50, 4, &rng);
  ASSERT_EQ(pts.size(), 50u);
  for (const Vec& p : pts) {
    ASSERT_EQ(p.size(), 4u);
    for (double x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

// Property: LHS puts exactly one sample in each of the n strata, per dim.
class LhsStratificationTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(LhsStratificationTest, EveryStratumHitOnce) {
  auto [count, dims] = GetParam();
  Rng rng(42 + count * 13 + dims);
  auto pts = LatinHypercubeSamples(count, dims, &rng);
  ASSERT_EQ(pts.size(), count);
  for (size_t d = 0; d < dims; ++d) {
    std::vector<int> hits(count, 0);
    for (const Vec& p : pts) {
      size_t stratum = std::min<size_t>(
          static_cast<size_t>(p[d] * static_cast<double>(count)), count - 1);
      hits[stratum]++;
    }
    for (size_t s = 0; s < count; ++s) {
      EXPECT_EQ(hits[s], 1) << "dim " << d << " stratum " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LhsStratificationTest,
    ::testing::Combine(::testing::Values<size_t>(2, 5, 16, 40),
                       ::testing::Values<size_t>(1, 3, 8, 12)));

TEST(SamplingTest, MaximinLhsAtLeastAsSpreadAsSingle) {
  Rng rng1(7), rng2(7);
  auto single = LatinHypercubeSamples(12, 3, &rng1);
  auto maximin = MaximinLatinHypercube(12, 3, 20, &rng2);
  EXPECT_GE(MinPairwiseDistance(maximin) + 1e-12,
            MinPairwiseDistance(single));
}

TEST(SamplingTest, GridSamplesEnumerateLattice) {
  auto pts = GridSamples(3, 2);
  EXPECT_EQ(pts.size(), 9u);
  // All coordinates on {0, 0.5, 1}.
  for (const Vec& p : pts) {
    for (double x : p) {
      EXPECT_TRUE(x == 0.0 || x == 0.5 || x == 1.0) << x;
    }
  }
  // All distinct.
  std::sort(pts.begin(), pts.end());
  EXPECT_EQ(std::unique(pts.begin(), pts.end()), pts.end());
}

TEST(SamplingTest, GridSinglePointIsCenter) {
  auto pts = GridSamples(1, 3);
  ASSERT_EQ(pts.size(), 1u);
  for (double x : pts[0]) EXPECT_DOUBLE_EQ(x, 0.5);
}

TEST(SamplingTest, HaltonDeterministicAndInRange) {
  auto a = HaltonSamples(20, 5);
  auto b = HaltonSamples(20, 5);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a, b);  // deterministic
  for (const Vec& p : a) {
    for (double x : p) {
      EXPECT_GT(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(SamplingTest, HaltonFirstDimensionIsVanDerCorputBase2) {
  auto pts = HaltonSamples(4, 1);
  EXPECT_DOUBLE_EQ(pts[0][0], 0.5);    // 1 -> 0.1b
  EXPECT_DOUBLE_EQ(pts[1][0], 0.25);   // 2 -> 0.01b
  EXPECT_DOUBLE_EQ(pts[2][0], 0.75);   // 3 -> 0.11b
  EXPECT_DOUBLE_EQ(pts[3][0], 0.125);  // 4 -> 0.001b
}

TEST(SamplingTest, MinPairwiseDistanceKnownValue) {
  std::vector<Vec> pts = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 0.5}};
  EXPECT_DOUBLE_EQ(MinPairwiseDistance(pts), 0.5);
  EXPECT_DOUBLE_EQ(MinPairwiseDistance({{1.0}}), 0.0);
}

}  // namespace
}  // namespace atune
