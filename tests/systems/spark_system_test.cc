#include "systems/spark/spark_system.h"

#include <gtest/gtest.h>

#include "systems/spark/spark_model.h"
#include "systems/spark/spark_workloads.h"
#include "tests/testing_util.h"

namespace atune {
namespace {

using testing_util::MakeTestSpark;

TEST(SparkModelTest, MemoryPlanAccounting) {
  SparkMemoryPlan plan = ComputeMemoryPlan(4096.0, 0.6, 0.5, 4);
  EXPECT_NEAR(plan.unified_mb, (4096.0 - 300.0) * 0.6, 1e-9);
  EXPECT_NEAR(plan.storage_mb, plan.unified_mb * 0.5, 1e-9);
  EXPECT_NEAR(plan.execution_mb + plan.storage_mb, plan.unified_mb, 1e-9);
  EXPECT_NEAR(plan.per_task_execution_mb, plan.execution_mb / 4.0, 1e-9);
}

TEST(SparkModelTest, SerializerAndGc) {
  SerializerProfile java = GetSerializerProfile("java");
  SerializerProfile kryo = GetSerializerProfile("kryo");
  EXPECT_GT(java.memory_expansion, kryo.memory_expansion);
  EXPECT_GT(java.ser_cpu_s_per_mb, kryo.ser_cpu_s_per_mb);
  EXPECT_GT(GcOverheadFraction(1.0, false), GcOverheadFraction(1.0, true));
  EXPECT_GT(GcOverheadFraction(2.0, true), GcOverheadFraction(0.2, true));
}

TEST(SparkModelTest, SpillAndOom) {
  EXPECT_DOUBLE_EQ(ExecutionSpillFactor(100.0, 200.0), 0.0);
  EXPECT_GT(ExecutionSpillFactor(400.0, 200.0), 0.0);
  EXPECT_FALSE(TaskOom(700.0, 200.0));
  EXPECT_TRUE(TaskOom(900.0, 200.0));
}

TEST(SimulatedSparkTest, SpaceAndExecution) {
  auto spark = MakeTestSpark();
  EXPECT_EQ(spark->space().dims(), 12u);
  auto r = spark->Execute(spark->space().DefaultConfiguration(),
                          MakeSparkSqlAggregateWorkload(2.0, 4.0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->failed) << r->failure_reason;
  EXPECT_GT(r->runtime_seconds, 0.0);
}

TEST(SimulatedSparkTest, OverAllocationIsDenied) {
  auto spark = MakeTestSpark();  // 4 nodes x 16 GB, 32 cores
  Configuration greedy = spark->space().DefaultConfiguration();
  greedy.SetInt("num_executors", 64);
  greedy.SetInt("executor_memory_mb", 16384);
  auto r = spark->Execute(greedy, MakeSparkSqlAggregateWorkload(2.0, 2.0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->failed);
  EXPECT_NE(r->failure_reason.find("resource request denied"),
            std::string::npos);
}

TEST(SimulatedSparkTest, MoreExecutorsSpeedUpBigJobs) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkSqlAggregateWorkload(8.0, 4.0);
  Configuration small = spark->space().DefaultConfiguration();
  Configuration big = small;
  big.SetInt("num_executors", 8);
  big.SetInt("executor_cores", 4);
  big.SetInt("executor_memory_mb", 4096);
  EXPECT_GT(spark->Execute(small, w)->runtime_seconds,
            spark->Execute(big, w)->runtime_seconds);
}

TEST(SimulatedSparkTest, PartitionCountIsUShapedForStreaming) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkStreamingWorkload(64.0, 6.0, 30.0);
  auto runtime = [&](int64_t parts) {
    Configuration c = spark->space().DefaultConfiguration();
    c.SetInt("num_executors", 8);
    c.SetInt("executor_cores", 4);
    c.SetInt("executor_memory_mb", 2048);
    c.SetInt("shuffle_partitions", parts);
    auto r = spark->Execute(c, w);
    EXPECT_TRUE(r.ok());
    return r->runtime_seconds;
  };
  double tiny = runtime(8);
  double right = runtime(64);
  double huge = runtime(2000);
  EXPECT_GT(huge, right);  // task-launch overhead dominates
  EXPECT_GE(tiny, right * 0.8);  // too-few partitions at least not better
}

TEST(SimulatedSparkTest, KryoBeatsJavaSerializer) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkIterativeMlWorkload(4.0, 5.0);
  Configuration java = spark->space().DefaultConfiguration();
  java.SetInt("num_executors", 8);
  java.SetInt("executor_memory_mb", 4096);
  Configuration kryo = java;
  kryo.SetString("serializer", "kryo");
  EXPECT_GT(spark->Execute(java, w)->runtime_seconds,
            spark->Execute(kryo, w)->runtime_seconds);
}

TEST(SimulatedSparkTest, CachingNeedsStorageMemory) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkIterativeMlWorkload(4.0, 8.0);
  Configuration starved = spark->space().DefaultConfiguration();
  starved.SetInt("num_executors", 8);
  starved.SetInt("executor_memory_mb", 1024);
  starved.SetDouble("storage_fraction", 0.1);
  Configuration cached = starved;
  cached.SetInt("executor_memory_mb", 6144);
  cached.SetDouble("storage_fraction", 0.6);
  auto r_starved = spark->Execute(starved, w);
  auto r_cached = spark->Execute(cached, w);
  EXPECT_LT(r_starved->MetricOr("cache_hit_ratio", 1.0),
            r_cached->MetricOr("cache_hit_ratio", 0.0));
  EXPECT_GT(r_starved->runtime_seconds, r_cached->runtime_seconds);
}

TEST(SimulatedSparkTest, BroadcastJoinCliff) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkJoinWorkload(8.0, /*small_table_mb=*/128.0);
  Configuration base = spark->space().DefaultConfiguration();
  base.SetInt("num_executors", 8);
  base.SetInt("executor_cores", 4);
  base.SetInt("executor_memory_mb", 6144);
  // Below threshold: shuffle join.
  Configuration shuffle_join = base;
  shuffle_join.SetInt("broadcast_threshold_mb", 10);
  // Above table size: broadcast join, much less shuffle.
  Configuration bcast_join = base;
  bcast_join.SetInt("broadcast_threshold_mb", 256);
  auto rs = spark->Execute(shuffle_join, w);
  auto rb = spark->Execute(bcast_join, w);
  ASSERT_FALSE(rb->failed) << rb->failure_reason;
  EXPECT_GT(rs->MetricOr("shuffle_write_mb", 0.0),
            rb->MetricOr("shuffle_write_mb", 0.0));
  EXPECT_GT(rs->runtime_seconds, rb->runtime_seconds);
  // Broadcasting into tiny executors OOMs.
  Configuration tiny = bcast_join;
  tiny.SetInt("executor_memory_mb", 512);
  tiny.SetInt("num_executors", 4);
  auto oom = spark->Execute(tiny, w);
  EXPECT_TRUE(oom->failed);
}

TEST(SimulatedSparkTest, StreamingBacklogFails) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkStreamingWorkload(512.0, 5.0, /*interval_s=*/1.0);
  Configuration weak = spark->space().DefaultConfiguration();  // 2 executors
  auto r = spark->Execute(weak, w);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->failed);
  EXPECT_NE(r->failure_reason.find("backlog"), std::string::npos);
}

TEST(SimulatedSparkTest, IterativeUnitsColdThenWarm) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkIterativeMlWorkload(4.0, 6.0);
  Configuration c = spark->space().DefaultConfiguration();
  c.SetInt("num_executors", 8);
  c.SetInt("executor_memory_mb", 6144);
  c.SetDouble("storage_fraction", 0.6);
  auto cold = spark->ExecuteUnit(c, w, 0);
  auto warm = spark->ExecuteUnit(c, w, 3);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(cold->runtime_seconds, warm->runtime_seconds);
}

TEST(SimulatedSparkTest, SpeculationMitigatesHeterogeneity) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  Rng rng(9);
  SimulatedSpark spark(ClusterSpec::MakeHeterogeneous(6, node, 0.5, &rng), 1);
  spark.set_noise_sigma(0.0);
  Workload w = MakeSparkSqlAggregateWorkload(8.0, 4.0);
  Configuration base = spark.space().DefaultConfiguration();
  base.SetInt("num_executors", 6);
  base.SetInt("executor_cores", 4);
  base.SetInt("executor_memory_mb", 4096);
  Configuration spec = base;
  spec.SetBool("speculation", true);
  EXPECT_GT(spark.Execute(base, w)->runtime_seconds,
            spark.Execute(spec, w)->runtime_seconds);
}

}  // namespace
}  // namespace atune
