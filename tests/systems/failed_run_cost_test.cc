// Every simulator must honor the kFailedRunWallClockSec partial-attempt
// contract (core/system.h): a failed run wastes real wall-clock — scaled to
// the fraction of the workload it attempted — so that crashing is never
// cheaper than finishing. These tests pin the contract for all three
// platforms, including runs executed on clones inside a parallel batch.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/hardware.h"
#include "systems/mapreduce/mr_system.h"
#include "systems/mapreduce/mr_workloads.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"

namespace atune {
namespace {

NodeSpec TestNode() {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  return node;
}

TEST(FailedRunCostTest, DbmsOomChargesFullWallClock) {
  SimulatedDbms dbms(ClusterSpec::MakeUniform(1, TestNode()), /*seed=*/7);
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  Configuration config = dbms.space().DefaultConfiguration();
  config.SetInt("work_mem_mb", 2048);
  config.SetInt("max_workers", 64);  // clients x workers x work_mem >> RAM
  auto result = dbms.Execute(config, workload);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->failed) << result->failure_reason;
  // A full-run OOM wastes the whole watchdog window.
  EXPECT_DOUBLE_EQ(result->runtime_seconds, kFailedRunWallClockSec);
}

TEST(FailedRunCostTest, DbmsUnitFailureChargesUnitFraction) {
  SimulatedDbms dbms(ClusterSpec::MakeUniform(1, TestNode()), /*seed=*/7);
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  Configuration config = dbms.space().DefaultConfiguration();
  config.SetInt("work_mem_mb", 2048);
  config.SetInt("max_workers", 64);
  const size_t units = dbms.NumUnits(workload);
  ASSERT_GT(units, 1u);
  auto result = dbms.ExecuteUnit(config, workload, 0);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->failed);
  EXPECT_DOUBLE_EQ(result->runtime_seconds,
                   kFailedRunWallClockSec / static_cast<double>(units));
}

TEST(FailedRunCostTest, MapReduceOversubscriptionChargesPerJob) {
  SimulatedMapReduce mr(ClusterSpec::MakeUniform(4, TestNode()), /*seed=*/7);
  const Workload workload = MakeMrWordCountWorkload(10.0);
  Configuration config = mr.space().DefaultConfiguration();
  config.SetInt("map_slots_per_node", 16);
  config.SetInt("reduce_slots_per_node", 16);
  config.SetInt("task_memory_mb", 4096);  // 32 x 4 GB heaps per 16 GB node
  auto result = mr.Execute(config, workload);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->failed) << result->failure_reason;
  const double num_jobs = workload.PropertyOr("num_jobs", 1.0);
  EXPECT_DOUBLE_EQ(result->runtime_seconds,
                   kFailedRunWallClockSec / num_jobs);
}

TEST(FailedRunCostTest, MapReduceMultiJobWorkloadSplitsTheCharge) {
  SimulatedMapReduce mr(ClusterSpec::MakeUniform(4, TestNode()), /*seed=*/7);
  const Workload workload = MakeMrPageRankWorkload(5.0, /*iterations=*/8);
  Configuration config = mr.space().DefaultConfiguration();
  config.SetInt("map_slots_per_node", 16);
  config.SetInt("reduce_slots_per_node", 16);
  config.SetInt("task_memory_mb", 4096);
  auto result = mr.Execute(config, workload);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->failed);
  EXPECT_DOUBLE_EQ(result->runtime_seconds, kFailedRunWallClockSec / 8.0);
}

TEST(FailedRunCostTest, SparkResourceDenialChargesPerUnit) {
  SimulatedSpark spark(ClusterSpec::MakeUniform(4, TestNode()), /*seed=*/7);
  const Workload workload = MakeSparkSqlAggregateWorkload(8.0);
  Configuration config = spark.space().DefaultConfiguration();
  config.SetInt("num_executors", 64);
  config.SetInt("executor_cores", 8);       // 512 cores on a 32-core cluster
  config.SetInt("executor_memory_mb", 16384);
  auto result = spark.Execute(config, workload);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->failed) << result->failure_reason;
  const double units =
      static_cast<double>(std::max<size_t>(spark.NumUnits(workload), 1));
  // The failed unit charges its wall-clock fraction; the flat 4 s driver/app
  // startup was also genuinely spent before the denial.
  EXPECT_DOUBLE_EQ(result->runtime_seconds,
                   kFailedRunWallClockSec / units + 4.0);
}

TEST(FailedRunCostTest, CloneChargesFailuresIdentically) {
  // The partial-attempt contract must survive Clone(): a failed run on a
  // batch clone charges the same wall-clock as the same run executed
  // serially on the parent — for every platform.
  const Workload dbms_workload = MakeDbmsOlapWorkload(1.0);
  const Workload mr_workload = MakeMrWordCountWorkload(10.0);
  const Workload spark_workload = MakeSparkSqlAggregateWorkload(8.0);

  SimulatedDbms dbms(ClusterSpec::MakeUniform(1, TestNode()), /*seed=*/7);
  SimulatedMapReduce mr(ClusterSpec::MakeUniform(4, TestNode()), /*seed=*/7);
  SimulatedSpark spark(ClusterSpec::MakeUniform(4, TestNode()), /*seed=*/7);

  Configuration dbms_bad = dbms.space().DefaultConfiguration();
  dbms_bad.SetInt("work_mem_mb", 2048);
  dbms_bad.SetInt("max_workers", 64);
  Configuration mr_bad = mr.space().DefaultConfiguration();
  mr_bad.SetInt("map_slots_per_node", 16);
  mr_bad.SetInt("reduce_slots_per_node", 16);
  mr_bad.SetInt("task_memory_mb", 4096);
  Configuration spark_bad = spark.space().DefaultConfiguration();
  spark_bad.SetInt("num_executors", 64);
  spark_bad.SetInt("executor_cores", 8);
  spark_bad.SetInt("executor_memory_mb", 16384);

  struct Case {
    TunableSystem* system;
    const Workload* workload;
    const Configuration* config;
  };
  for (const Case& c :
       {Case{&dbms, &dbms_workload, &dbms_bad},
        Case{&mr, &mr_workload, &mr_bad},
        Case{&spark, &spark_workload, &spark_bad}}) {
    auto clone = c.system->Clone(0);
    ASSERT_NE(clone, nullptr) << c.system->name();
    auto on_clone = clone->Execute(*c.config, *c.workload);
    auto on_parent = c.system->Execute(*c.config, *c.workload);
    ASSERT_TRUE(on_clone.ok() && on_parent.ok()) << c.system->name();
    EXPECT_TRUE(on_clone->failed) << c.system->name();
    EXPECT_DOUBLE_EQ(on_clone->runtime_seconds, on_parent->runtime_seconds)
        << c.system->name();
  }
}

TEST(FailedRunCostTest, BatchOfFailuresMatchesSerialCharging) {
  // Failed runs inside EvaluateBatch (clone path) must land in the history
  // with exactly the serial objective/cost: failures carry their wall-clock
  // charge through the parallel engine too.
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  Configuration bad;
  {
    SimulatedDbms probe(ClusterSpec::MakeUniform(1, TestNode()), /*seed=*/7);
    bad = probe.space().DefaultConfiguration();
    bad.SetInt("work_mem_mb", 2048);
    bad.SetInt("max_workers", 64);
  }
  std::vector<Configuration> configs(4, bad);

  SimulatedDbms serial_dbms(ClusterSpec::MakeUniform(1, TestNode()),
                            /*seed=*/7);
  Evaluator serial(&serial_dbms, workload, TuningBudget{4});
  for (const Configuration& c : configs) {
    ASSERT_TRUE(serial.Evaluate(c).ok());
  }

  SimulatedDbms batch_dbms(ClusterSpec::MakeUniform(1, TestNode()),
                           /*seed=*/7);
  Evaluator batch(&batch_dbms, workload, TuningBudget{4});
  ASSERT_TRUE(batch.EvaluateBatch(configs, /*parallelism=*/4).ok());

  ASSERT_EQ(serial.history().size(), batch.history().size());
  for (size_t i = 0; i < serial.history().size(); ++i) {
    EXPECT_TRUE(batch.history()[i].result.failed) << i;
    EXPECT_DOUBLE_EQ(serial.history()[i].objective,
                     batch.history()[i].objective)
        << i;
    EXPECT_DOUBLE_EQ(serial.history()[i].cost, batch.history()[i].cost) << i;
    EXPECT_DOUBLE_EQ(serial.history()[i].result.runtime_seconds,
                     batch.history()[i].result.runtime_seconds)
        << i;
  }
  EXPECT_DOUBLE_EQ(serial.used(), batch.used());
}

}  // namespace
}  // namespace atune
