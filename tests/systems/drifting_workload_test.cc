// DriftingWorkload (DESIGN.md §15) determinism contracts:
//
//   * a drift schedule is a pure function of (schedule, base, run index) —
//     bitwise, including the per-run jitter draw
//   * kNone is an exact pass-through
//   * Clone(runs_ahead)/SkipRuns reproduce the serial metric stream bitwise
//     for every schedule family, jitter included
//   * composition with FaultInjectingSystem is bit-identical in either
//     nesting order to its own serial reference
//   * the CLI spec parser round-trips good specs and rejects bad ones with
//     kInvalidArgument

#include "systems/drifting_workload.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/fault_injector.h"
#include "systems/hardware.h"

namespace atune {
namespace {

std::unique_ptr<SimulatedDbms> MakeDbms(uint64_t seed) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  return std::make_unique<SimulatedDbms>(ClusterSpec::MakeUniform(1, node),
                                         seed);
}

bool SameResult(const ExecutionResult& a, const ExecutionResult& b) {
  return a.runtime_seconds == b.runtime_seconds && a.failed == b.failed &&
         a.transient == b.transient && a.censored == b.censored &&
         a.metrics == b.metrics;
}

TEST(DriftScheduleTest, ApplyIsPureAndShapesMatchTheFamilies) {
  const Workload base = MakeDbmsOlapWorkload(1.0);

  // Pure: same inputs, bitwise-identical outputs — jitter included.
  DriftSchedule jittered = DriftSchedule::Diurnal(0.4, 32);
  jittered.scale_jitter = 0.1;
  for (uint64_t i = 0; i < 20; ++i) {
    Workload a = jittered.Apply(base, i);
    Workload b = jittered.Apply(base, i);
    EXPECT_EQ(a.scale, b.scale) << "run " << i;  // bitwise
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.properties, b.properties);
  }

  // kNone touches nothing.
  DriftSchedule none;
  Workload same = none.Apply(base, 7);
  EXPECT_EQ(same.scale, base.scale);
  EXPECT_EQ(same.kind, base.kind);
  EXPECT_EQ(same.properties, base.properties);

  // Ramp: 1x at run 0, the full factor at ramp_runs, held afterwards.
  DriftSchedule ramp = DriftSchedule::Ramp(3.0, 10);
  EXPECT_DOUBLE_EQ(ramp.Apply(base, 0).scale, base.scale);
  EXPECT_DOUBLE_EQ(ramp.Apply(base, 10).scale, base.scale * 3.0);
  EXPECT_DOUBLE_EQ(ramp.Apply(base, 100).scale, base.scale * 3.0);

  // Phase shift: pass-through before the boundary; scale, kind, and
  // property overlay after it.
  DriftSchedule shift = DriftSchedule::PhaseShift(5, 1.5, "oltp");
  shift.shift_properties["skew"] = 0.9;
  Workload before = shift.Apply(base, 4);
  EXPECT_EQ(before.scale, base.scale);
  EXPECT_EQ(before.kind, base.kind);
  Workload after = shift.Apply(base, 5);
  EXPECT_DOUBLE_EQ(after.scale, base.scale * 1.5);
  EXPECT_EQ(after.kind, "oltp");
  EXPECT_DOUBLE_EQ(after.PropertyOr("skew", 0.0), 0.9);

  // Diurnal: back to the base scale after a full period.
  DriftSchedule diurnal = DriftSchedule::Diurnal(0.4, 8);
  EXPECT_DOUBLE_EQ(diurnal.Apply(base, 0).scale, base.scale);
  EXPECT_GT(diurnal.Apply(base, 2).scale, base.scale);   // peak
  EXPECT_LT(diurnal.Apply(base, 6).scale, base.scale);   // trough
  EXPECT_NEAR(diurnal.Apply(base, 8).scale, base.scale, 1e-12);
}

TEST(DriftingWorkloadTest, NoneScheduleIsExactPassthrough) {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto bare = MakeDbms(5);
  auto inner = MakeDbms(5);
  DriftingWorkload drifting(inner.get(), DriftSchedule());
  Configuration config = bare->space().DefaultConfiguration();
  for (int i = 0; i < 6; ++i) {
    auto a = bare->Execute(config, workload);
    auto b = drifting.Execute(config, workload);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(SameResult(*a, *b)) << "run " << i;
  }
}

// The §6 contract, per schedule family: a wave of clones at offsets
// 0..3 plus SkipRuns(4) on the parent reproduces the serial stream bitwise.
TEST(DriftingWorkloadTest, CloneSkipRunsReproducesSerialStreamAllSchedules) {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  std::vector<DriftSchedule> schedules;
  schedules.push_back(DriftSchedule::Ramp(2.5, 6));
  schedules.push_back(DriftSchedule::PhaseShift(3, 1.8, "oltp"));
  schedules.push_back(DriftSchedule::Diurnal(0.5, 5));
  schedules.back().scale_jitter = 0.1;  // jittered diurnal: hardest case

  for (size_t s = 0; s < schedules.size(); ++s) {
    const DriftSchedule& schedule = schedules[s];

    auto serial_inner = MakeDbms(5);
    DriftingWorkload serial(serial_inner.get(), schedule);
    Configuration config = serial.space().DefaultConfiguration();
    std::vector<ExecutionResult> reference;
    for (int i = 0; i < 8; ++i) {
      auto r = serial.Execute(config, workload);
      ASSERT_TRUE(r.ok());
      reference.push_back(*r);
    }

    auto wave_inner = MakeDbms(5);
    DriftingWorkload wave(wave_inner.get(), schedule);
    std::vector<std::unique_ptr<TunableSystem>> clones;
    for (uint64_t i = 0; i < 4; ++i) {
      clones.push_back(wave.Clone(i));
      ASSERT_NE(clones.back(), nullptr);
    }
    std::vector<ExecutionResult> results;
    for (uint64_t i = 0; i < 4; ++i) {
      auto r = clones[i]->Execute(config, workload);
      ASSERT_TRUE(r.ok());
      results.push_back(*r);
    }
    wave.SkipRuns(4);
    for (int i = 0; i < 4; ++i) {
      auto r = wave.Execute(config, workload);
      ASSERT_TRUE(r.ok());
      results.push_back(*r);
    }

    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(SameResult(reference[i], results[i]))
          << "schedule " << s << " run " << i;
    }
  }
}

// Drift and fault injection each keep their own per-execution clock, so the
// composed decorator stack must satisfy the same serial-equivalence no
// matter which wraps which.
TEST(DriftingWorkloadTest, ComposesWithFaultInjectorInEitherNestingOrder) {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  DriftSchedule schedule = DriftSchedule::PhaseShift(3, 1.7);
  schedule.scale_jitter = 0.05;
  const FaultProfile profile = FaultProfile::FromRate(0.3, /*seed=*/17);

  for (int order = 0; order < 2; ++order) {
    auto build = [&](std::unique_ptr<SimulatedDbms>* holder)
        -> std::unique_ptr<TunableSystem> {
      *holder = MakeDbms(5);
      if (order == 0) {
        // fault(drift(dbms)): faults hit the drifted runs.
        auto drift = std::make_unique<DriftingWorkload>(holder->get(), schedule);
        return std::make_unique<FaultInjectingSystem>(std::move(drift),
                                                      profile);
      }
      // drift(fault(dbms)): the drifted workload feeds the faulty system.
      auto faulty =
          std::make_unique<FaultInjectingSystem>(holder->get(), profile);
      return std::make_unique<DriftingWorkload>(std::move(faulty), schedule);
    };

    std::unique_ptr<SimulatedDbms> serial_holder;
    std::unique_ptr<TunableSystem> serial = build(&serial_holder);
    Configuration config = serial->space().DefaultConfiguration();
    std::vector<ExecutionResult> reference;
    for (int i = 0; i < 8; ++i) {
      auto r = serial->Execute(config, workload);
      ASSERT_TRUE(r.ok());
      reference.push_back(*r);
    }

    std::unique_ptr<SimulatedDbms> wave_holder;
    std::unique_ptr<TunableSystem> wave = build(&wave_holder);
    std::vector<std::unique_ptr<TunableSystem>> clones;
    for (uint64_t i = 0; i < 4; ++i) {
      clones.push_back(wave->Clone(i));
      ASSERT_NE(clones.back(), nullptr);
    }
    std::vector<ExecutionResult> results;
    for (uint64_t i = 0; i < 4; ++i) {
      auto r = clones[i]->Execute(config, workload);
      ASSERT_TRUE(r.ok());
      results.push_back(*r);
    }
    wave->SkipRuns(4);
    for (int i = 0; i < 4; ++i) {
      auto r = wave->Execute(config, workload);
      ASSERT_TRUE(r.ok());
      results.push_back(*r);
    }

    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(SameResult(reference[i], results[i]))
          << "order " << order << " run " << i;
    }
  }
}

TEST(DriftScheduleTest, ParseAcceptsSpecsAndRejectsBadOnes) {
  auto ramp = DriftSchedule::Parse("ramp:factor=3.0,runs=10");
  ASSERT_TRUE(ramp.ok());
  EXPECT_EQ(ramp->kind, DriftSchedule::Kind::kRamp);
  EXPECT_DOUBLE_EQ(ramp->ramp_factor, 3.0);
  EXPECT_EQ(ramp->ramp_runs, 10u);

  auto shift = DriftSchedule::Parse("shift:at=25,factor=1.6,kind=olap");
  ASSERT_TRUE(shift.ok());
  EXPECT_EQ(shift->kind, DriftSchedule::Kind::kPhaseShift);
  EXPECT_EQ(shift->shift_at_run, 25u);
  EXPECT_DOUBLE_EQ(shift->shift_factor, 1.6);
  EXPECT_EQ(shift->shift_kind, "olap");

  auto diurnal =
      DriftSchedule::Parse("diurnal:amplitude=0.3,period=16,jitter=0.05,seed=7");
  ASSERT_TRUE(diurnal.ok());
  EXPECT_EQ(diurnal->kind, DriftSchedule::Kind::kDiurnal);
  EXPECT_DOUBLE_EQ(diurnal->diurnal_amplitude, 0.3);
  EXPECT_EQ(diurnal->diurnal_period, 16u);
  EXPECT_DOUBLE_EQ(diurnal->scale_jitter, 0.05);
  EXPECT_EQ(diurnal->seed, 7u);

  auto bare = DriftSchedule::Parse("ramp");
  ASSERT_TRUE(bare.ok());  // defaults apply
  EXPECT_EQ(bare->kind, DriftSchedule::Kind::kRamp);

  for (const char* bad :
       {"sawtooth", "ramp:factor=", "ramp:factor=abc", "ramp:runs=0",
        "diurnal:period=0", "shift:at", "ramp:bogus=1"}) {
    auto r = DriftSchedule::Parse(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

}  // namespace
}  // namespace atune
