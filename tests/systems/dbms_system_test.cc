#include "systems/dbms/dbms_system.h"

#include <gtest/gtest.h>

#include "systems/dbms/dbms_workloads.h"
#include "tests/testing_util.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;

TEST(SimulatedDbmsTest, SpaceAndDescriptors) {
  auto dbms = MakeTestDbms();
  EXPECT_EQ(dbms->name(), "simulated-dbms");
  EXPECT_EQ(dbms->space().dims(), 12u);
  auto desc = dbms->Descriptors();
  EXPECT_DOUBLE_EQ(desc["total_ram_mb"], 16384.0);
  EXPECT_DOUBLE_EQ(desc["total_cores"], 8.0);
  EXPECT_FALSE(dbms->MetricNames().empty());
}

TEST(SimulatedDbmsTest, DeterministicWithoutNoise) {
  auto a = MakeTestDbms(1);
  auto b = MakeTestDbms(2);  // different seed but noise off
  Workload w = MakeDbmsOlapWorkload(0.25);
  Configuration c = a->space().DefaultConfiguration();
  auto ra = a->Execute(c, w);
  auto rb = b->Execute(c, w);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->runtime_seconds, rb->runtime_seconds);
}

TEST(SimulatedDbmsTest, NoiseVariesRunsButSeedReproduces) {
  auto a = MakeTestDbms(7, /*noise=*/true);
  auto b = MakeTestDbms(7, /*noise=*/true);
  Workload w = MakeDbmsOlapWorkload(0.25);
  Configuration c = a->space().DefaultConfiguration();
  double a1 = a->Execute(c, w)->runtime_seconds;
  double a2 = a->Execute(c, w)->runtime_seconds;
  EXPECT_NE(a1, a2);  // run-to-run variance
  double b1 = b->Execute(c, w)->runtime_seconds;
  EXPECT_DOUBLE_EQ(a1, b1);  // same seed, same stream
}

TEST(SimulatedDbmsTest, RejectsInvalidConfig) {
  auto dbms = MakeTestDbms();
  Configuration c = dbms->space().DefaultConfiguration();
  c.SetInt("buffer_pool_mb", 1);  // below minimum
  EXPECT_FALSE(dbms->Execute(c, MakeDbmsOlapWorkload(0.25)).ok());
}

TEST(SimulatedDbmsTest, BiggerBufferPoolSpeedsUpOlap) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  Configuration small = dbms->space().DefaultConfiguration();
  small.SetInt("buffer_pool_mb", 128);
  Configuration big = dbms->space().DefaultConfiguration();
  big.SetInt("buffer_pool_mb", 8192);
  EXPECT_GT(dbms->Execute(small, w)->runtime_seconds,
            dbms->Execute(big, w)->runtime_seconds);
}

TEST(SimulatedDbmsTest, WorkMemRemovesSpill) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  Configuration tiny = dbms->space().DefaultConfiguration();
  tiny.SetInt("work_mem_mb", 1);
  Configuration ample = dbms->space().DefaultConfiguration();
  ample.SetInt("work_mem_mb", 1024);
  auto spilled = dbms->Execute(tiny, w);
  auto fits = dbms->Execute(ample, w);
  EXPECT_GT(spilled->MetricOr("spill_mb", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fits->MetricOr("spill_mb", -1.0), 0.0);
  EXPECT_GT(spilled->runtime_seconds, fits->runtime_seconds);
}

TEST(SimulatedDbmsTest, MemoryOversubscriptionFailsOom) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5, /*clients=*/8.0);
  Configuration hog = dbms->space().DefaultConfiguration();
  hog.SetInt("buffer_pool_mb", 14000);
  hog.SetInt("work_mem_mb", 2048);
  hog.SetInt("max_workers", 8);
  auto r = dbms->Execute(hog, w);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->failed);
  EXPECT_NE(r->failure_reason.find("memory"), std::string::npos);
  // Failures cost watchdog wall-clock, not a cheap crash.
  EXPECT_GE(r->runtime_seconds, 1000.0);
}

TEST(SimulatedDbmsTest, TinyDeadlockTimeoutCausesAbortStorm) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(0.5, /*clients=*/64.0, /*skew=*/0.9);
  Configuration hasty = dbms->space().DefaultConfiguration();
  hasty.SetInt("deadlock_timeout_ms", 10);
  auto r = dbms->Execute(hasty, w);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->failed);
  EXPECT_NE(r->failure_reason.find("abort storm"), std::string::npos);
  Configuration sane = dbms->space().DefaultConfiguration();
  EXPECT_FALSE(dbms->Execute(sane, w)->failed);
}

TEST(SimulatedDbmsTest, DeadlockTimeoutUShapedRuntime) {
  auto dbms = MakeTestDbms();
  // Contention high enough to matter but below the storm cliff.
  Workload w = MakeDbmsOltpWorkload(0.5, /*clients=*/48.0, /*skew=*/0.7);
  auto runtime = [&](int64_t timeout_ms) {
    Configuration c = dbms->space().DefaultConfiguration();
    c.SetInt("deadlock_timeout_ms", timeout_ms);
    auto r = dbms->Execute(c, w);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r->failed) << r->failure_reason;
    return r->runtime_seconds;
  };
  double hasty = runtime(10);
  double moderate = runtime(300);
  double lax = runtime(10000);
  EXPECT_LT(moderate, hasty);
  EXPECT_LT(moderate, lax);
}

TEST(SimulatedDbmsTest, GroupCommitHelpsOltp) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(0.5, 64.0);
  Configuration imm = dbms->space().DefaultConfiguration();
  imm.SetString("log_flush", "immediate");
  Configuration grp = dbms->space().DefaultConfiguration();
  grp.SetString("log_flush", "group");
  EXPECT_GT(dbms->Execute(imm, w)->MetricOr("commit_wait_s", 0.0),
            dbms->Execute(grp, w)->MetricOr("commit_wait_s", 0.0));
}

TEST(SimulatedDbmsTest, CheckpointIntervalIsUShaped) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(1.0, 32.0);
  auto runtime = [&](int64_t interval) {
    Configuration c = dbms->space().DefaultConfiguration();
    c.SetInt("checkpoint_interval_s", interval);
    return dbms->Execute(c, w)->runtime_seconds;
  };
  double frantic = runtime(30);
  double moderate = runtime(600);
  EXPECT_GT(frantic, moderate);
}

TEST(SimulatedDbmsTest, CompressionHelpsIoBoundHurtsCpuBound) {
  auto dbms = MakeTestDbms();
  // IO-bound: tiny buffer pool, big scans.
  Workload io_bound = MakeDbmsOlapWorkload(1.0);
  Configuration none = dbms->space().DefaultConfiguration();
  none.SetInt("buffer_pool_mb", 64);
  Configuration lz4 = none;
  lz4.SetString("page_compression", "lz4");
  EXPECT_GT(dbms->Execute(none, io_bound)->runtime_seconds,
            dbms->Execute(lz4, io_bound)->runtime_seconds);
}

TEST(SimulatedDbmsTest, UnitExecutionApproximatesFullRun) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(0.5);
  Configuration c = dbms->space().DefaultConfiguration();
  size_t units = dbms->NumUnits(w);
  ASSERT_GT(units, 1u);
  double total_units = 0.0;
  for (size_t u = 0; u < units; ++u) {
    auto r = dbms->ExecuteUnit(c, w, u);
    ASSERT_TRUE(r.ok());
    total_units += r->runtime_seconds;
  }
  double full = dbms->Execute(c, w)->runtime_seconds;
  // Units should roughly tile the full run (within 35%: per-unit overheads
  // and nonlinear terms differ).
  EXPECT_NEAR(total_units / full, 1.0, 0.35);
}

TEST(SimulatedDbmsTest, MixedWorkloadCombinesBoth) {
  auto dbms = MakeTestDbms();
  Workload mixed = MakeDbmsMixedWorkload(0.5);
  auto r = dbms->Execute(dbms->space().DefaultConfiguration(), mixed);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->runtime_seconds, 0.0);
  EXPECT_GT(r->MetricOr("wal_mb", 0.0), 0.0);        // OLTP part present
  EXPECT_GT(r->MetricOr("io_read_mb", 0.0), 0.0);    // OLAP part present
}

TEST(SimulatedDbmsTest, AnalyticalTasksRank) {
  auto dbms = MakeTestDbms();
  Configuration c = dbms->space().DefaultConfiguration();
  double scan =
      dbms->Execute(c, MakeDbmsAnalyticalTask("scan", 4096.0))->runtime_seconds;
  double join =
      dbms->Execute(c, MakeDbmsAnalyticalTask("join", 4096.0))->runtime_seconds;
  EXPECT_GT(join, scan);  // joins do strictly more work
}

}  // namespace
}  // namespace atune
