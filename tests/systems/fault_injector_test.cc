#include "systems/fault_injector.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/hardware.h"
#include "tests/core/mock_system.h"

namespace atune {
namespace {

using testing_util::MockWorkload;
using testing_util::QuadraticSystem;
using testing_util::ScriptedSystem;

std::unique_ptr<SimulatedDbms> MakeDbms(uint64_t seed) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  return std::make_unique<SimulatedDbms>(ClusterSpec::MakeUniform(1, node),
                                         seed);
}

bool SameResult(const ExecutionResult& a, const ExecutionResult& b) {
  return a.runtime_seconds == b.runtime_seconds && a.failed == b.failed &&
         a.transient == b.transient && a.censored == b.censored &&
         a.metrics == b.metrics;
}

TEST(FaultInjectorTest, RateZeroIsExactPassthrough) {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  auto bare = MakeDbms(5);
  auto inner = MakeDbms(5);
  FaultInjectingSystem injected(inner.get(), FaultProfile::FromRate(0.0));
  Configuration config = bare->space().DefaultConfiguration();
  for (int i = 0; i < 6; ++i) {
    auto a = bare->Execute(config, workload);
    auto b = injected.Execute(config, workload);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(SameResult(*a, *b)) << "run " << i;
  }
}

TEST(FaultInjectorTest, FaultStreamIsDeterministic) {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  FaultProfile profile = FaultProfile::FromRate(0.3, /*seed=*/99);
  auto inner_a = MakeDbms(5);
  auto inner_b = MakeDbms(5);
  FaultInjectingSystem a(inner_a.get(), profile);
  FaultInjectingSystem b(inner_b.get(), profile);
  Configuration config = a.space().DefaultConfiguration();
  for (int i = 0; i < 12; ++i) {
    auto ra = a.Execute(config, workload);
    auto rb = b.Execute(config, workload);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_TRUE(SameResult(*ra, *rb)) << "run " << i;
  }
}

TEST(FaultInjectorTest, TransientFailureIsFlaggedAndPartial) {
  ScriptedSystem inner;
  inner.Runs(100.0);
  FaultProfile profile;
  profile.transient_failure_rate = 1.0;
  FaultInjectingSystem injected(&inner, profile);
  auto result = injected.Execute(inner.space().DefaultConfiguration(),
                                 MockWorkload());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->failed);
  EXPECT_TRUE(result->transient);
  // The run died partway through: it wasted real but partial wall-clock.
  EXPECT_GT(result->runtime_seconds, 0.0);
  EXPECT_LT(result->runtime_seconds, 100.0);
}

TEST(FaultInjectorTest, HangAndStragglerShapes) {
  ScriptedSystem inner_hang;
  inner_hang.Runs(100.0);
  FaultProfile hang_profile;
  hang_profile.hang_rate = 1.0;
  FaultInjectingSystem hung(&inner_hang, hang_profile);
  auto hung_result = hung.Execute(inner_hang.space().DefaultConfiguration(),
                                  MockWorkload());
  ASSERT_TRUE(hung_result.ok());
  EXPECT_FALSE(hung_result->failed);
  EXPECT_DOUBLE_EQ(hung_result->runtime_seconds,
                   hang_profile.hang_runtime_seconds);

  ScriptedSystem inner_straggle;
  inner_straggle.Runs(100.0);
  FaultProfile straggler_profile;
  straggler_profile.straggler_rate = 1.0;
  FaultInjectingSystem straggling(&inner_straggle, straggler_profile);
  auto slow = straggling.Execute(
      inner_straggle.space().DefaultConfiguration(), MockWorkload());
  ASSERT_TRUE(slow.ok());
  EXPECT_FALSE(slow->failed);
  EXPECT_GE(slow->runtime_seconds,
            100.0 * straggler_profile.straggler_multiplier_min);
  EXPECT_LE(slow->runtime_seconds,
            100.0 * straggler_profile.straggler_multiplier_max);
}

TEST(FaultInjectorTest, ConfigCausedFailureIsNotMasked) {
  ScriptedSystem inner;
  inner.Fails(300.0, /*transient=*/false);
  FaultProfile profile;
  profile.transient_failure_rate = 1.0;  // would fire on a healthy run
  FaultInjectingSystem injected(&inner, profile);
  auto result = injected.Execute(inner.space().DefaultConfiguration(),
                                 MockWorkload());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->failed);
  EXPECT_FALSE(result->transient);  // the config's own failure survives
  EXPECT_EQ(result->failure_reason, "scripted config failure");
}

TEST(FaultInjectorTest, CloneSkipRunsReproducesSerialFaultStream) {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  const FaultProfile profile = FaultProfile::FromRate(0.3, /*seed=*/17);
  Configuration config;

  // Serial reference: 8 straight executions.
  auto serial_inner = MakeDbms(5);
  FaultInjectingSystem serial(serial_inner.get(), profile);
  config = serial.space().DefaultConfiguration();
  std::vector<ExecutionResult> reference;
  for (int i = 0; i < 8; ++i) {
    auto r = serial.Execute(config, workload);
    ASSERT_TRUE(r.ok());
    reference.push_back(*r);
  }

  // Wave of 4 over clones, SkipRuns(4), then 4 more on the parent.
  auto wave_inner = MakeDbms(5);
  FaultInjectingSystem wave(wave_inner.get(), profile);
  std::vector<ExecutionResult> results;
  std::vector<std::unique_ptr<TunableSystem>> clones;
  for (uint64_t i = 0; i < 4; ++i) {
    clones.push_back(wave.Clone(i));
    ASSERT_NE(clones.back(), nullptr);
  }
  for (uint64_t i = 0; i < 4; ++i) {
    auto r = clones[i]->Execute(config, workload);
    ASSERT_TRUE(r.ok());
    results.push_back(*r);
  }
  wave.SkipRuns(4);
  for (int i = 0; i < 4; ++i) {
    auto r = wave.Execute(config, workload);
    ASSERT_TRUE(r.ok());
    results.push_back(*r);
  }

  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(SameResult(reference[i], results[i])) << "run " << i;
  }
}

TEST(FaultInjectorTest, BatchMatchesSerialWithRepairsDisabled) {
  // With retries off (and faults flowing through untouched) a parallel
  // batch over the fault layer must be bit-identical to serial evaluation,
  // even at a high fault rate: faults are part of the deterministic stream.
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  const FaultProfile profile = FaultProfile::FromRate(0.4, /*seed=*/23);
  RobustnessPolicy no_repair;
  no_repair.max_retries = 0;

  auto serial_inner = MakeDbms(5);
  FaultInjectingSystem serial_system(serial_inner.get(), profile);
  Evaluator serial(&serial_system, workload, TuningBudget{8});
  serial.set_robustness_policy(no_repair);

  auto batch_inner = MakeDbms(5);
  FaultInjectingSystem batch_system(batch_inner.get(), profile);
  Evaluator batch(&batch_system, workload, TuningBudget{8});
  batch.set_robustness_policy(no_repair);

  std::vector<Configuration> configs;
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    configs.push_back(serial_system.space().RandomConfiguration(&rng));
  }
  for (const Configuration& c : configs) {
    ASSERT_TRUE(serial.Evaluate(c).ok());
  }
  std::vector<Configuration> first(configs.begin(), configs.begin() + 4);
  std::vector<Configuration> second(configs.begin() + 4, configs.end());
  ASSERT_TRUE(batch.EvaluateBatch(first, /*parallelism=*/4).ok());
  ASSERT_TRUE(batch.EvaluateBatch(second, /*parallelism=*/4).ok());

  ASSERT_EQ(serial.history().size(), batch.history().size());
  for (size_t i = 0; i < serial.history().size(); ++i) {
    const Trial& a = serial.history()[i];
    const Trial& b = batch.history()[i];
    EXPECT_EQ(a.objective, b.objective) << "trial " << i;
    EXPECT_EQ(a.cost, b.cost) << "trial " << i;
    EXPECT_TRUE(SameResult(a.result, b.result)) << "trial " << i;
  }
}

TEST(FaultInjectorTest, IterativenessFollowsInnerSystem) {
  ScriptedSystem flat;
  FaultInjectingSystem over_flat(&flat, FaultProfile::FromRate(0.0));
  EXPECT_EQ(over_flat.AsIterative(), nullptr);

  QuadraticSystem iterative;
  FaultInjectingSystem over_iterative(&iterative,
                                      FaultProfile::FromRate(0.0));
  IterativeSystem* as_iterative = over_iterative.AsIterative();
  ASSERT_NE(as_iterative, nullptr);
  EXPECT_EQ(as_iterative->NumUnits(MockWorkload()), 4u);
  auto unit = as_iterative->ExecuteUnit(
      iterative.space().DefaultConfiguration(), MockWorkload(), 0);
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(iterative.unit_executions(), 1u);
}

TEST(FaultInjectorTest, MetricDropoutDamagesMetricsDeterministically) {
  const Workload workload = MakeDbmsOlapWorkload(1.0);
  FaultProfile profile;
  profile.metric_dropout_rate = 1.0;
  auto bare = MakeDbms(5);
  auto inner = MakeDbms(5);
  auto inner_twin = MakeDbms(5);
  FaultInjectingSystem injected(inner.get(), profile);
  FaultInjectingSystem twin(inner_twin.get(), profile);
  Configuration config = bare->space().DefaultConfiguration();
  auto clean = bare->Execute(config, workload);
  auto damaged = injected.Execute(config, workload);
  auto damaged_twin = twin.Execute(config, workload);
  ASSERT_TRUE(clean.ok() && damaged.ok() && damaged_twin.ok());
  // Runtime is untouched; the metric vector is what the glitch hits.
  EXPECT_DOUBLE_EQ(clean->runtime_seconds, damaged->runtime_seconds);
  EXPECT_LT(damaged->metrics.size(), clean->metrics.size());
  EXPECT_TRUE(SameResult(*damaged, *damaged_twin));
}

}  // namespace
}  // namespace atune
