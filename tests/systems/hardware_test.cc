#include "systems/hardware.h"

#include <gtest/gtest.h>

namespace atune {
namespace {

TEST(ClusterSpecTest, UniformAggregates) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  node.disk_mbps = 200;
  node.network_mbps = 1000;
  ClusterSpec cluster = ClusterSpec::MakeUniform(4, node);
  EXPECT_EQ(cluster.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(cluster.TotalCores(), 32.0);
  EXPECT_DOUBLE_EQ(cluster.TotalRamMb(), 65536.0);
  EXPECT_DOUBLE_EQ(cluster.TotalDiskMbps(), 800.0);
  EXPECT_DOUBLE_EQ(cluster.TotalNetworkMbps(), 4000.0);
  EXPECT_DOUBLE_EQ(cluster.SlowestNodeFactor(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.MeanNode().cores, 8.0);
}

TEST(ClusterSpecTest, HeterogeneousSpreadsWithinBounds) {
  NodeSpec base;
  Rng rng(3);
  ClusterSpec cluster = ClusterSpec::MakeHeterogeneous(16, base, 0.4, &rng);
  EXPECT_EQ(cluster.num_nodes(), 16u);
  bool varied = false;
  for (const NodeSpec& n : cluster.nodes()) {
    EXPECT_GE(n.cpu_speed, base.cpu_speed * 0.6 - 1e-9);
    EXPECT_LE(n.cpu_speed, base.cpu_speed * 1.4 + 1e-9);
    varied |= n.cpu_speed != base.cpu_speed;
  }
  EXPECT_TRUE(varied);
  EXPECT_GT(cluster.SlowestNodeFactor(), 1.0);
}

TEST(ClusterSpecTest, EmptyClusterIsSafe) {
  ClusterSpec cluster;
  EXPECT_DOUBLE_EQ(cluster.TotalCores(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.SlowestNodeFactor(), 1.0);
}

}  // namespace
}  // namespace atune
