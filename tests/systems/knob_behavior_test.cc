#include <gtest/gtest.h>

#include "tests/testing_util.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestMapReduce;
using testing_util::MakeTestSpark;

// Finer-grained knob semantics than the monotonicity sweep: interactions,
// conditional effects, and second-order behaviors the tuners exploit.

TEST(DbmsKnobTest, TempCompressionOnlyMattersWhenSpilling) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.5);
  // Spilling config: temp compression reduces spill bytes.
  Configuration spilling = dbms->space().DefaultConfiguration();
  spilling.SetInt("work_mem_mb", 1);
  Configuration spilling_compressed = spilling;
  spilling_compressed.SetBool("temp_compression", true);
  double plain = dbms->Execute(spilling, w)->runtime_seconds;
  double compressed =
      dbms->Execute(spilling_compressed, w)->runtime_seconds;
  EXPECT_LT(compressed, plain);
  // Non-spilling config: the knob is inert.
  Configuration ample = dbms->space().DefaultConfiguration();
  ample.SetInt("work_mem_mb", 1024);
  Configuration ample_compressed = ample;
  ample_compressed.SetBool("temp_compression", true);
  EXPECT_DOUBLE_EQ(dbms->Execute(ample, w)->runtime_seconds,
                   dbms->Execute(ample_compressed, w)->runtime_seconds);
}

TEST(DbmsKnobTest, WalBufferMattersUnderImmediateCommitOnly) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOltpWorkload(0.5, /*clients=*/64.0);
  auto commit_wait = [&](const std::string& flush, int64_t wal) {
    Configuration c = dbms->space().DefaultConfiguration();
    c.SetString("log_flush", flush);
    c.SetInt("wal_buffer_mb", wal);
    return dbms->Execute(c, w)->MetricOr("commit_wait_s", 0.0);
  };
  // Tiny WAL buffer stalls immediate commits...
  EXPECT_GT(commit_wait("immediate", 1), commit_wait("immediate", 64));
  // ...while group commit amortizes the fsyncs regardless.
  EXPECT_LT(commit_wait("group", 1), commit_wait("immediate", 64));
}

TEST(DbmsKnobTest, PlanQualityMultiplierAppearsInMetrics) {
  auto dbms = MakeTestDbms();
  Workload w = MakeDbmsOlapWorkload(0.25);
  Configuration sparse = dbms->space().DefaultConfiguration();
  sparse.SetInt("stats_target", 10);
  Configuration rich = dbms->space().DefaultConfiguration();
  rich.SetInt("stats_target", 1000);
  EXPECT_GT(dbms->Execute(sparse, w)->MetricOr("plan_multiplier", 0.0),
            dbms->Execute(rich, w)->MetricOr("plan_multiplier", 10.0));
}

TEST(MrKnobTest, SortFactorReducesMergePassesForTinyBuffers) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrTeraSortWorkload(20.0);
  Configuration narrow = mr->space().DefaultConfiguration();
  narrow.SetInt("num_reducers", 16);
  narrow.SetInt("dfs_block_mb", 512);  // large splits...
  narrow.SetInt("io_sort_mb", 32);     // ...tiny buffer: ~20 spills per map
  narrow.SetInt("io_sort_factor", 10);
  Configuration wide = narrow;
  wide.SetInt("io_sort_factor", 150);
  auto narrow_run = mr->Execute(narrow, w);
  auto wide_run = mr->Execute(wide, w);
  EXPECT_GT(narrow_run->MetricOr("spill_io_mb", 0.0),
            wide_run->MetricOr("spill_io_mb", 0.0));
  EXPECT_GT(narrow_run->runtime_seconds, wide_run->runtime_seconds);
}

TEST(MrKnobTest, SpillPercentShiftsSpillCount) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrTeraSortWorkload(10.0);
  Configuration low = mr->space().DefaultConfiguration();
  low.SetInt("io_sort_mb", 64);
  low.SetDouble("io_sort_spill_percent", 0.5);
  Configuration high = low;
  high.SetDouble("io_sort_spill_percent", 0.95);
  EXPECT_GE(mr->Execute(low, w)->MetricOr("spill_count", 0.0),
            mr->Execute(high, w)->MetricOr("spill_count", 0.0));
}

TEST(MrKnobTest, SlowstartOverlapsShuffleWithMaps) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrTeraSortWorkload(20.0);
  Configuration eager = mr->space().DefaultConfiguration();
  eager.SetInt("num_reducers", 16);
  eager.SetInt("dfs_block_mb", 32);  // several map waves to overlap with
  eager.SetDouble("slowstart", 0.05);
  Configuration lazy = eager;
  lazy.SetDouble("slowstart", 1.0);
  EXPECT_LT(mr->Execute(eager, w)->MetricOr("shuffle_time_s", 1e9),
            mr->Execute(lazy, w)->MetricOr("shuffle_time_s", 0.0));
}

TEST(SparkKnobTest, LocalityWaitTradesIdlenessForLocality) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkSqlAggregateWorkload(8.0, 4.0);
  w.properties["locality"] = 0.3;  // poor locality: the knob matters
  Configuration base = spark->space().DefaultConfiguration();
  base.SetInt("num_executors", 8);
  base.SetInt("executor_cores", 4);
  base.SetInt("executor_memory_mb", 4096);
  Configuration no_wait = base;
  no_wait.SetDouble("locality_wait_s", 0.0);
  Configuration long_wait = base;
  long_wait.SetDouble("locality_wait_s", 10.0);
  // With poor locality, long waits burn time on every non-local task.
  EXPECT_LT(spark->Execute(no_wait, w)->runtime_seconds,
            spark->Execute(long_wait, w)->runtime_seconds);
}

TEST(SparkKnobTest, RddCompressionStretchesCacheCapacity) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkIterativeMlWorkload(6.0, 6.0);
  Configuration tight = spark->space().DefaultConfiguration();
  tight.SetInt("num_executors", 8);
  tight.SetInt("executor_memory_mb", 2048);
  tight.SetDouble("storage_fraction", 0.5);
  Configuration compressed = tight;
  compressed.SetBool("rdd_compress", true);
  EXPECT_GT(spark->Execute(compressed, w)->MetricOr("cache_hit_ratio", 0.0),
            spark->Execute(tight, w)->MetricOr("cache_hit_ratio", 1.0));
}

TEST(SparkKnobTest, ShuffleCompressionTradesNetworkForCpu) {
  auto spark = MakeTestSpark();
  Workload w = MakeSparkSqlAggregateWorkload(16.0, 4.0);
  Configuration base = spark->space().DefaultConfiguration();
  base.SetInt("num_executors", 8);
  base.SetInt("executor_cores", 4);
  base.SetInt("executor_memory_mb", 4096);
  Configuration off = base;
  off.SetBool("shuffle_compress", false);
  // Shuffle-heavy job on modest network: compression wins.
  EXPECT_LT(spark->Execute(base, w)->runtime_seconds,
            spark->Execute(off, w)->runtime_seconds);
}

}  // namespace
}  // namespace atune
