#include "systems/mapreduce/mr_system.h"

#include <gtest/gtest.h>

#include "systems/mapreduce/mr_model.h"
#include "systems/mapreduce/mr_workloads.h"
#include "tests/testing_util.h"

namespace atune {
namespace {

using testing_util::MakeTestMapReduce;

TEST(MrModelTest, SpillProfileBasics) {
  SpillProfile none = ComputeMapSpill(50.0, 100.0, 0.8, 10);
  EXPECT_DOUBLE_EQ(none.spill_count, 1.0);
  EXPECT_DOUBLE_EQ(none.disk_read_mb, 0.0);  // single spill, no merge reread

  SpillProfile many = ComputeMapSpill(1000.0, 50.0, 0.8, 10);
  EXPECT_GT(many.spill_count, 10.0);
  EXPECT_GT(many.merge_passes, 0.0);
  EXPECT_GT(many.disk_write_mb, 1000.0);

  // Bigger fan-in means fewer merge passes.
  SpillProfile wide = ComputeMapSpill(1000.0, 50.0, 0.8, 100);
  EXPECT_LE(wide.merge_passes, many.merge_passes);
}

TEST(MrModelTest, ReduceMergeAndWaves) {
  EXPECT_DOUBLE_EQ(ComputeReduceMerge(100.0, 512.0, 10).disk_write_mb, 0.0);
  EXPECT_GT(ComputeReduceMerge(5000.0, 512.0, 10).disk_write_mb, 0.0);
  EXPECT_DOUBLE_EQ(Waves(100.0, 16.0), 7.0);
  EXPECT_DOUBLE_EQ(Waves(16.0, 16.0), 1.0);
}

TEST(MrModelTest, ShuffleThroughputSaturates) {
  double few = ShuffleThroughputMbps(4000.0, 4.0, 5);
  double many = ShuffleThroughputMbps(4000.0, 64.0, 5);
  EXPECT_GT(many, few);
  EXPECT_LE(many, 4000.0);
  EXPECT_LE(ShuffleThroughputMbps(4000.0, 1000.0, 100), 4000.0);
}

TEST(SimulatedMrTest, SpaceAndExecution) {
  auto mr = MakeTestMapReduce();
  EXPECT_EQ(mr->space().dims(), 14u);
  auto r = mr->Execute(mr->space().DefaultConfiguration(),
                       MakeMrWordCountWorkload(2.0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->failed);
  EXPECT_GT(r->runtime_seconds, 0.0);
  EXPECT_GT(r->MetricOr("map_time_s", 0.0), 0.0);
  EXPECT_GT(r->MetricOr("shuffle_mb", 0.0), 0.0);
}

TEST(SimulatedMrTest, SingleReducerDefaultIsACatastrophe) {
  auto mr = MakeTestMapReduce();
  Workload w = MakeMrTeraSortWorkload(10.0);
  Configuration one = mr->space().DefaultConfiguration();
  ASSERT_EQ(one.IntOr("num_reducers", 0), 1);  // the classic bad default
  Configuration many = one;
  many.SetInt("num_reducers", 24);
  double t1 = mr->Execute(one, w)->runtime_seconds;
  double t24 = mr->Execute(many, w)->runtime_seconds;
  EXPECT_GT(t1, t24 * 3.0);  // at least 3x from this one knob
}

TEST(SimulatedMrTest, CombinerHelpsWordCountNotTeraSort) {
  auto mr = MakeTestMapReduce();
  Configuration base = mr->space().DefaultConfiguration();
  base.SetInt("num_reducers", 16);
  Configuration combined = base;
  combined.SetBool("combiner", true);
  Workload wc = MakeMrWordCountWorkload(10.0);
  EXPECT_GT(mr->Execute(base, wc)->runtime_seconds,
            mr->Execute(combined, wc)->runtime_seconds);
  Workload ts = MakeMrTeraSortWorkload(10.0);
  // TeraSort gains nothing (combiner_reduction = 1): only CPU cost remains,
  // so runtimes should be within a whisker.
  EXPECT_NEAR(mr->Execute(base, ts)->runtime_seconds /
                  mr->Execute(combined, ts)->runtime_seconds,
              1.0, 0.05);
}

TEST(SimulatedMrTest, SortBufferBeyondHeapFails) {
  auto mr = MakeTestMapReduce();
  Configuration bad = mr->space().DefaultConfiguration();
  bad.SetInt("io_sort_mb", 1024);
  bad.SetInt("task_memory_mb", 512);
  auto r = mr->Execute(bad, MakeMrWordCountWorkload(2.0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->failed);
  EXPECT_NE(r->failure_reason.find("io.sort.mb"), std::string::npos);
}

TEST(SimulatedMrTest, SlotMemoryOversubscriptionFails) {
  auto mr = MakeTestMapReduce();
  Configuration bad = mr->space().DefaultConfiguration();
  bad.SetInt("map_slots_per_node", 16);
  bad.SetInt("reduce_slots_per_node", 16);
  bad.SetInt("task_memory_mb", 1024);  // 32 GB of heap on 8 GB nodes
  auto r = mr->Execute(bad, MakeMrWordCountWorkload(2.0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->failed);
}

TEST(SimulatedMrTest, CompressionHelpsShuffleHeavyJobs) {
  auto mr = MakeTestMapReduce();
  Workload ts = MakeMrTeraSortWorkload(20.0);
  Configuration base = mr->space().DefaultConfiguration();
  base.SetInt("num_reducers", 16);
  Configuration compressed = base;
  compressed.SetBool("compress_map_output", true);
  compressed.SetString("compress_codec", "lz4");
  EXPECT_GT(mr->Execute(base, ts)->runtime_seconds,
            mr->Execute(compressed, ts)->runtime_seconds);
}

TEST(SimulatedMrTest, JvmReuseCutsStartupForManySmallTasks) {
  auto mr = MakeTestMapReduce();
  Workload grep = MakeMrGrepWorkload(20.0);
  Configuration base = mr->space().DefaultConfiguration();
  base.SetInt("dfs_block_mb", 32);  // many small tasks
  Configuration reuse = base;
  reuse.SetBool("jvm_reuse", true);
  EXPECT_GT(mr->Execute(base, grep)->runtime_seconds,
            mr->Execute(reuse, grep)->runtime_seconds);
}

TEST(SimulatedMrTest, HeterogeneityCausesStragglers) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 8192;
  Rng rng(5);
  SimulatedMapReduce uniform(ClusterSpec::MakeUniform(8, node), 1);
  SimulatedMapReduce skewed(
      ClusterSpec::MakeHeterogeneous(8, node, 0.5, &rng), 1);
  uniform.set_noise_sigma(0.0);
  skewed.set_noise_sigma(0.0);
  Workload w = MakeMrTeraSortWorkload(10.0);
  Configuration c = uniform.space().DefaultConfiguration();
  auto ru = uniform.Execute(c, w);
  auto rs = skewed.Execute(c, w);
  EXPECT_GT(rs->MetricOr("straggler_factor", 1.0),
            ru->MetricOr("straggler_factor", 1.0));
  EXPECT_GT(rs->runtime_seconds, ru->runtime_seconds);
}

TEST(SimulatedMrTest, PageRankRunsAsChainedUnits) {
  auto mr = MakeTestMapReduce();
  Workload pr = MakeMrPageRankWorkload(2.0, 6);
  EXPECT_EQ(mr->NumUnits(pr), 6u);
  Configuration c = mr->space().DefaultConfiguration();
  auto unit = mr->ExecuteUnit(c, pr, 0);
  ASSERT_TRUE(unit.ok());
  auto full = mr->Execute(c, pr);
  ASSERT_TRUE(full.ok());
  EXPECT_NEAR(full->runtime_seconds / unit->runtime_seconds, 6.0, 1.0);
}

}  // namespace
}  // namespace atune
