#include "systems/dbms/dbms_model.h"

#include <gtest/gtest.h>

namespace atune {
namespace {

TEST(BufferHitRatioTest, MonotoneInPoolSize) {
  double prev = -1.0;
  for (double pool : {64.0, 128.0, 512.0, 1024.0, 2048.0}) {
    double hit = BufferHitRatio(pool, 2048.0, 0.5);
    EXPECT_GT(hit, prev);
    EXPECT_GE(hit, 0.0);
    EXPECT_LE(hit, 1.0);
    prev = hit;
  }
  EXPECT_DOUBLE_EQ(BufferHitRatio(2048.0, 2048.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BufferHitRatio(4096.0, 2048.0, 0.5), 1.0);
}

TEST(BufferHitRatioTest, SkewMakesSmallCachesMoreEffective) {
  double uniform = BufferHitRatio(256.0, 2048.0, 0.0);
  double skewed = BufferHitRatio(256.0, 2048.0, 0.8);
  EXPECT_GT(skewed, uniform);
}

TEST(ScanBandwidthTest, PrefetchAndConcurrencyHelp) {
  NodeSpec node;
  ClusterSpec cluster = ClusterSpec::MakeUniform(1, node);
  double base = EffectiveScanBandwidthMbps(cluster, 0.5, 1, 0);
  double prefetched = EffectiveScanBandwidthMbps(cluster, 0.5, 1, 16);
  double concurrent = EffectiveScanBandwidthMbps(cluster, 0.5, 16, 0);
  EXPECT_GT(prefetched, base);
  EXPECT_GT(concurrent, base);
  // Sequential mix is faster than random.
  EXPECT_GT(EffectiveScanBandwidthMbps(cluster, 1.0, 4, 8),
            EffectiveScanBandwidthMbps(cluster, 0.0, 4, 8));
}

TEST(CompressionProfileTest, Tradeoffs) {
  CompressionProfile none = GetCompressionProfile("none");
  CompressionProfile lz4 = GetCompressionProfile("lz4");
  CompressionProfile zlib = GetCompressionProfile("zlib");
  EXPECT_DOUBLE_EQ(none.ratio, 1.0);
  EXPECT_DOUBLE_EQ(none.compress_cpu_s_per_mb, 0.0);
  EXPECT_LT(zlib.ratio, lz4.ratio);              // zlib compresses better
  EXPECT_GT(zlib.compress_cpu_s_per_mb,
            lz4.compress_cpu_s_per_mb);          // but costs more CPU
  EXPECT_DOUBLE_EQ(GetCompressionProfile("bogus").ratio, 1.0);
}

TEST(SpillTest, NoSpillWhenFits) {
  EXPECT_DOUBLE_EQ(SpillExtraIoMb(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(SpillExtraIoMb(100.0, 200.0), 0.0);
}

TEST(SpillTest, SpillGrowsWithShortfallAndPasses) {
  double mild = SpillExtraIoMb(200.0, 100.0);    // 1 pass
  EXPECT_DOUBLE_EQ(mild, 2.0 * 200.0);
  double severe = SpillExtraIoMb(3200.0, 10.0);  // needs multiple passes
  EXPECT_GT(severe, 2.0 * 3200.0);
}

TEST(ParallelSpeedupTest, AmdahlProperties) {
  EXPECT_DOUBLE_EQ(ParallelSpeedup(1, 8, 0.1), 1.0);
  double s4 = ParallelSpeedup(4, 8, 0.1);
  double s8 = ParallelSpeedup(8, 8, 0.1);
  EXPECT_GT(s4, 1.0);
  EXPECT_GT(s8, s4);
  EXPECT_LT(s8, 8.0);                              // sub-linear
  EXPECT_DOUBLE_EQ(ParallelSpeedup(64, 8, 0.1), s8);  // capped by cores
  EXPECT_LT(ParallelSpeedup(1e9, 1e9, 0.1), 10.0 + 1e-9);  // serial limit
}

TEST(LockModelTest, NoContentionCases) {
  LockOutcome single = ComputeLockOutcome(1.0, 0.9, 1000.0, 1e5);
  EXPECT_DOUBLE_EQ(single.total_wait_s, 0.0);
  LockOutcome none = ComputeLockOutcome(32.0, 0.5, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(none.total_wait_s, 0.0);
}

TEST(LockModelTest, ShortTimeoutCausesAborts) {
  LockOutcome hasty = ComputeLockOutcome(64.0, 0.8, 10.0, 1e5);
  LockOutcome patient = ComputeLockOutcome(64.0, 0.8, 5000.0, 1e5);
  EXPECT_GT(hasty.abort_fraction, patient.abort_fraction * 5.0);
  EXPECT_GT(patient.total_wait_s, 0.0);
}

TEST(LockModelTest, TimeoutTradeoffIsUShaped) {
  // Short timeouts abort healthy waiters (retry storms and redone work);
  // long timeouts make deadlock victims wait forever. Moderate wins.
  LockOutcome t10 = ComputeLockOutcome(64.0, 0.8, 10.0, 1e5);
  LockOutcome t300 = ComputeLockOutcome(64.0, 0.8, 300.0, 1e5);
  LockOutcome t10k = ComputeLockOutcome(64.0, 0.8, 10000.0, 1e5);
  EXPECT_GT(t10.abort_fraction, t300.abort_fraction);
  EXPECT_GE(t300.abort_fraction, t10k.abort_fraction);
  EXPECT_GT(t10.extra_work_fraction, t300.extra_work_fraction);
  EXPECT_GT(t10.total_wait_s, t300.total_wait_s);   // retry re-waits
  EXPECT_GT(t10k.total_wait_s, t300.total_wait_s);  // deadlock stalls
  EXPECT_GT(t10k.deadlocks, 0.0);
}

TEST(SwapTest, PenaltyAndOom) {
  EXPECT_DOUBLE_EQ(SwapPenalty(1000.0, 2000.0), 1.0);
  EXPECT_DOUBLE_EQ(SwapPenalty(2000.0, 2000.0), 1.0);
  EXPECT_GT(SwapPenalty(2200.0, 2000.0), 1.0);
  EXPECT_GT(SwapPenalty(2600.0, 2000.0), SwapPenalty(2200.0, 2000.0));
  EXPECT_FALSE(OutOfMemory(2400.0, 2000.0));
  EXPECT_TRUE(OutOfMemory(2600.0, 2000.0));
}

TEST(PlanQualityTest, StatisticsImproveComplexPlans) {
  double sparse = PlanQualityMultiplier(10.0, 1.0);
  double rich = PlanQualityMultiplier(1000.0, 1.0);
  EXPECT_GT(sparse, rich);
  EXPECT_GE(rich, 1.0);
  // Simple queries don't care about statistics.
  EXPECT_NEAR(PlanQualityMultiplier(10.0, 0.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace atune
