#include "systems/multi_tenant.h"

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "tests/testing_util.h"
#include "tuners/experiment/ituned.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;

std::vector<Tenant> TwoTenants() {
  // SLOs are deliberately tight: the stock defaults violate the analytics
  // SLO, and only a configuration balancing both tenants satisfies both.
  return {
      {"analytics", MakeDbmsOlapWorkload(0.25), /*slo_seconds=*/70.0},
      {"frontend", MakeDbmsOltpWorkload(0.25, /*clients=*/32.0),
       /*slo_seconds=*/18.0},
  };
}

TEST(MultiTenantTest, AggregatesPerTenantMetrics) {
  auto dbms = MakeTestDbms();
  MultiTenantSystem mt(dbms.get(), TwoTenants());
  EXPECT_EQ(mt.name(), "simulated-dbms-multitenant");
  EXPECT_EQ(mt.space().dims(), dbms->space().dims());
  auto r = mt.Execute(mt.space().DefaultConfiguration(),
                      MakeMultiTenantWorkload());
  ASSERT_TRUE(r.ok());
  double t0 = r->MetricOr("tenant_0_runtime_s", -1.0);
  double t1 = r->MetricOr("tenant_1_runtime_s", -1.0);
  EXPECT_GT(t0, 0.0);
  EXPECT_GT(t1, 0.0);
  EXPECT_NEAR(r->runtime_seconds, t0 + t1, 1e-9);
  double worst = r->MetricOr("worst_slo_ratio", -1.0);
  EXPECT_GE(worst, r->MetricOr("tenant_0_slo_ratio", 0.0));
  EXPECT_GE(worst, r->MetricOr("tenant_1_slo_ratio", 0.0));
}

TEST(MultiTenantTest, TenantFailurePropagates) {
  auto dbms = MakeTestDbms();
  MultiTenantSystem mt(dbms.get(), TwoTenants());
  Configuration hog = mt.space().DefaultConfiguration();
  hog.SetInt("buffer_pool_mb", 14000);
  hog.SetInt("work_mem_mb", 2048);
  hog.SetInt("max_workers", 8);
  auto r = mt.Execute(hog, MakeMultiTenantWorkload());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->failed);
  EXPECT_NE(r->failure_reason.find("tenant"), std::string::npos);
  EXPECT_GE(r->MetricOr("worst_slo_ratio", 0.0), 10.0);
}

TEST(MultiTenantTest, RobustObjectivePrefersFairness) {
  ObjectiveFunction obj = MakeRobustSloObjective();
  Configuration c;
  ExecutionResult fair;
  fair.runtime_seconds = 200.0;
  fair.metrics["worst_slo_ratio"] = 0.9;  // everyone satisfied
  ExecutionResult skewed;
  skewed.runtime_seconds = 100.0;  // faster in total...
  skewed.metrics["worst_slo_ratio"] = 2.5;  // ...but one tenant starves
  EXPECT_LT(obj(c, fair), obj(c, skewed));
}

TEST(MultiTenantTest, TuningTheSharedConfigSatisfiesBothSlos) {
  auto dbms = MakeTestDbms();
  MultiTenantSystem mt(dbms.get(), TwoTenants());
  Evaluator evaluator(&mt, MakeMultiTenantWorkload(), TuningBudget{20});
  evaluator.set_objective(MakeRobustSloObjective());
  ITunedTuner tuner;
  Rng rng(21);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  // The defaults violate at least one SLO; the robust-tuned config must
  // bring the worst tenant at or below its SLO.
  auto defaults_run = mt.Execute(mt.space().DefaultConfiguration(),
                                 MakeMultiTenantWorkload());
  ASSERT_TRUE(defaults_run.ok());
  EXPECT_GT(defaults_run->MetricOr("worst_slo_ratio", 0.0), 1.0);
  EXPECT_LE(evaluator.best()->result.MetricOr("worst_slo_ratio", 10.0), 1.0);
}

}  // namespace
}  // namespace atune
