#include "systems/multi_tenant.h"

#include <gtest/gtest.h>

#include "core/tuner.h"
#include "tests/testing_util.h"
#include "tuners/experiment/ituned.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;

std::vector<Tenant> TwoTenants() {
  // SLOs are deliberately tight: the stock defaults violate the analytics
  // SLO, and only a configuration balancing both tenants satisfies both.
  return {
      {"analytics", MakeDbmsOlapWorkload(0.25), /*slo_seconds=*/70.0},
      {"frontend", MakeDbmsOltpWorkload(0.25, /*clients=*/32.0),
       /*slo_seconds=*/18.0},
  };
}

TEST(MultiTenantTest, AggregatesPerTenantMetrics) {
  auto dbms = MakeTestDbms();
  MultiTenantSystem mt(dbms.get(), TwoTenants());
  EXPECT_EQ(mt.name(), "simulated-dbms-multitenant");
  EXPECT_EQ(mt.space().dims(), dbms->space().dims());
  auto r = mt.Execute(mt.space().DefaultConfiguration(),
                      MakeMultiTenantWorkload());
  ASSERT_TRUE(r.ok());
  double t0 = r->MetricOr("tenant_0_runtime_s", -1.0);
  double t1 = r->MetricOr("tenant_1_runtime_s", -1.0);
  EXPECT_GT(t0, 0.0);
  EXPECT_GT(t1, 0.0);
  EXPECT_NEAR(r->runtime_seconds, t0 + t1, 1e-9);
  double worst = r->MetricOr("worst_slo_ratio", -1.0);
  EXPECT_GE(worst, r->MetricOr("tenant_0_slo_ratio", 0.0));
  EXPECT_GE(worst, r->MetricOr("tenant_1_slo_ratio", 0.0));
}

TEST(MultiTenantTest, TenantFailurePropagates) {
  auto dbms = MakeTestDbms();
  MultiTenantSystem mt(dbms.get(), TwoTenants());
  Configuration hog = mt.space().DefaultConfiguration();
  hog.SetInt("buffer_pool_mb", 14000);
  hog.SetInt("work_mem_mb", 2048);
  hog.SetInt("max_workers", 8);
  auto r = mt.Execute(hog, MakeMultiTenantWorkload());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->failed);
  EXPECT_NE(r->failure_reason.find("tenant"), std::string::npos);
  EXPECT_GE(r->MetricOr("worst_slo_ratio", 0.0), 10.0);
}

TEST(MultiTenantTest, RobustObjectivePrefersFairness) {
  ObjectiveFunction obj = MakeRobustSloObjective();
  Configuration c;
  ExecutionResult fair;
  fair.runtime_seconds = 200.0;
  fair.metrics["worst_slo_ratio"] = 0.9;  // everyone satisfied
  ExecutionResult skewed;
  skewed.runtime_seconds = 100.0;  // faster in total...
  skewed.metrics["worst_slo_ratio"] = 2.5;  // ...but one tenant starves
  EXPECT_LT(obj(c, fair), obj(c, skewed));
}

// One wrapper Execute() is tenants() base executions, so Clone(runs_ahead)
// must advance the cloned base runs_ahead * tenants() base-runs and
// SkipRuns(n) must skip n * tenants(). These tests pin that multiplier with
// noise ON (the multiplier is invisible with noise disabled).
TEST(MultiTenantTest, CloneMatchesSerialExecutionWithNoise) {
  auto dbms = MakeTestDbms(/*seed=*/42, /*noise=*/true);
  MultiTenantSystem mt(dbms.get(), TwoTenants());
  Configuration config = mt.space().DefaultConfiguration();
  Workload w = MakeMultiTenantWorkload();

  // Clones created BEFORE the parent runs, one per future wrapper run.
  auto clone0 = mt.Clone(0);
  auto clone1 = mt.Clone(1);
  ASSERT_NE(clone0, nullptr);
  ASSERT_NE(clone1, nullptr);

  auto serial0 = mt.Execute(config, w);
  auto serial1 = mt.Execute(config, w);
  ASSERT_TRUE(serial0.ok());
  ASSERT_TRUE(serial1.ok());
  // Noise is per-run: two serial wrapper runs must differ (sanity that the
  // equality checks below are not vacuous).
  EXPECT_NE(serial0->runtime_seconds, serial1->runtime_seconds);

  auto fanned0 = clone0->Execute(config, w);
  auto fanned1 = clone1->Execute(config, w);
  ASSERT_TRUE(fanned0.ok());
  ASSERT_TRUE(fanned1.ok());
  EXPECT_EQ(fanned0->runtime_seconds, serial0->runtime_seconds);
  EXPECT_EQ(fanned1->runtime_seconds, serial1->runtime_seconds);
  for (const auto& [name, value] : serial1->metrics) {
    EXPECT_EQ(fanned1->metrics.at(name), value) << name;
  }
}

TEST(MultiTenantTest, SkipRunsRealignsTheNoiseStream) {
  auto a = MakeTestDbms(/*seed=*/42, /*noise=*/true);
  MultiTenantSystem mt_a(a.get(), TwoTenants());
  auto b = MakeTestDbms(/*seed=*/42, /*noise=*/true);
  MultiTenantSystem mt_b(b.get(), TwoTenants());
  Configuration config = mt_a.space().DefaultConfiguration();
  Workload w = MakeMultiTenantWorkload();

  // A executes twice for real; B skips two wrapper runs instead. Their
  // third executions must be bit-identical.
  ASSERT_TRUE(mt_a.Execute(config, w).ok());
  ASSERT_TRUE(mt_a.Execute(config, w).ok());
  mt_b.SkipRuns(2);
  auto third_a = mt_a.Execute(config, w);
  auto third_b = mt_b.Execute(config, w);
  ASSERT_TRUE(third_a.ok());
  ASSERT_TRUE(third_b.ok());
  EXPECT_EQ(third_a->runtime_seconds, third_b->runtime_seconds);
}

TEST(MultiTenantTest, CloneOwnsItsBase) {
  // The clone must stay valid after the source wrapper and its base die
  // (Evaluator::EvaluateBatch hands clones to worker threads).
  std::unique_ptr<TunableSystem> clone;
  Configuration config;
  {
    auto dbms = MakeTestDbms(/*seed=*/7, /*noise=*/true);
    MultiTenantSystem mt(dbms.get(), TwoTenants());
    config = mt.space().DefaultConfiguration();
    clone = mt.Clone(0);
    ASSERT_NE(clone, nullptr);
  }
  auto r = clone->Execute(config, MakeMultiTenantWorkload());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->runtime_seconds, 0.0);
}

TEST(MultiTenantTest, TuningTheSharedConfigSatisfiesBothSlos) {
  auto dbms = MakeTestDbms();
  MultiTenantSystem mt(dbms.get(), TwoTenants());
  Evaluator evaluator(&mt, MakeMultiTenantWorkload(), TuningBudget{20});
  evaluator.set_objective(MakeRobustSloObjective());
  ITunedTuner tuner;
  Rng rng(21);
  ASSERT_TRUE(tuner.Tune(&evaluator, &rng).ok());
  ASSERT_NE(evaluator.best(), nullptr);
  // The defaults violate at least one SLO; the robust-tuned config must
  // bring the worst tenant at or below its SLO.
  auto defaults_run = mt.Execute(mt.space().DefaultConfiguration(),
                                 MakeMultiTenantWorkload());
  ASSERT_TRUE(defaults_run.ok());
  EXPECT_GT(defaults_run->MetricOr("worst_slo_ratio", 0.0), 1.0);
  EXPECT_LE(evaluator.best()->result.MetricOr("worst_slo_ratio", 10.0), 1.0);
}

}  // namespace
}  // namespace atune
