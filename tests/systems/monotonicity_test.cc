#include <gtest/gtest.h>

#include <memory>

#include "tests/testing_util.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestMapReduce;
using testing_util::MakeTestSpark;

/// Documented directional responses of the simulators: for each (system,
/// workload, knob) triple, moving the knob from `worse` to `better` while
/// everything else stays at defaults must not slow the run down. These
/// encode the knob semantics the tuning literature takes as ground truth;
/// any simulator regression that flips one of these breaks the whole
/// reproduction.
struct Direction {
  std::string label;
  std::string system;   // "dbms" | "mr" | "spark"
  std::string workload; // per-system workload key
  std::string knob;
  ParamValue worse;
  ParamValue better;
};

class MonotonicityTest : public ::testing::TestWithParam<Direction> {};

std::unique_ptr<TunableSystem> MakeSystemFor(const std::string& key) {
  if (key == "mr") return MakeTestMapReduce();
  if (key == "spark") return MakeTestSpark();
  return MakeTestDbms();
}

Workload WorkloadFor(const std::string& system, const std::string& key) {
  if (system == "mr") {
    if (key == "wordcount") return MakeMrWordCountWorkload(10.0);
    return MakeMrTeraSortWorkload(10.0);
  }
  if (system == "spark") {
    if (key == "ml") return MakeSparkIterativeMlWorkload(4.0, 6.0);
    return MakeSparkSqlAggregateWorkload(8.0, 4.0);
  }
  if (key == "oltp") return MakeDbmsOltpWorkload(0.5);
  return MakeDbmsOlapWorkload(0.5);
}

TEST_P(MonotonicityTest, BetterSettingIsNotSlower) {
  const Direction& d = GetParam();
  auto system = MakeSystemFor(d.system);
  Workload workload = WorkloadFor(d.system, d.workload);
  Configuration worse_config = system->space().DefaultConfiguration();
  worse_config.Set(d.knob, d.worse);
  Configuration better_config = system->space().DefaultConfiguration();
  better_config.Set(d.knob, d.better);
  auto worse_run = system->Execute(worse_config, workload);
  auto better_run = system->Execute(better_config, workload);
  ASSERT_TRUE(worse_run.ok());
  ASSERT_TRUE(better_run.ok());
  ASSERT_FALSE(better_run->failed) << better_run->failure_reason;
  double worse_obj =
      worse_run->runtime_seconds * (worse_run->failed ? 10.0 : 1.0);
  EXPECT_GE(worse_obj, better_run->runtime_seconds * 0.999) << d.label;
}

INSTANTIATE_TEST_SUITE_P(
    KnobDirections, MonotonicityTest,
    ::testing::Values(
        Direction{"dbms_buffer_pool_olap", "dbms", "olap", "buffer_pool_mb",
                  int64_t{64}, int64_t{8192}},
        Direction{"dbms_buffer_pool_oltp", "dbms", "oltp", "buffer_pool_mb",
                  int64_t{64}, int64_t{4096}},
        Direction{"dbms_work_mem_olap", "dbms", "olap", "work_mem_mb",
                  int64_t{1}, int64_t{512}},
        Direction{"dbms_workers_olap", "dbms", "olap", "max_workers",
                  int64_t{1}, int64_t{8}},
        Direction{"dbms_prefetch_olap", "dbms", "olap", "prefetch_depth",
                  int64_t{0}, int64_t{32}},
        Direction{"dbms_group_commit_oltp", "dbms", "oltp", "log_flush",
                  std::string("immediate"), std::string("group")},
        Direction{"dbms_stats_olap", "dbms", "olap", "stats_target",
                  int64_t{10}, int64_t{800}},
        Direction{"mr_reducers_terasort", "mr", "terasort", "num_reducers",
                  int64_t{1}, int64_t{24}},
        Direction{"mr_combiner_wordcount", "mr", "wordcount", "combiner",
                  false, true},
        Direction{"mr_jvm_reuse_terasort", "mr", "terasort", "jvm_reuse",
                  false, true},
        Direction{"mr_compress_terasort", "mr", "terasort",
                  "compress_map_output", false, true},
        Direction{"spark_kryo_ml", "spark", "ml", "serializer",
                  std::string("java"), std::string("kryo")},
        Direction{"spark_executors_sql", "spark", "sql", "num_executors",
                  int64_t{1}, int64_t{8}}),
    [](const ::testing::TestParamInfo<Direction>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace atune
