#include <gtest/gtest.h>

#include "tests/testing_util.h"
#include "tuners/rule_based/spex.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestMapReduce;
using testing_util::MakeTestSpark;

/// Property (the paper's motivation): random configurations fail or degrade
/// at a substantial rate, and SPEX-style constraint repair eliminates most
/// of those failures. This is the unit-test-sized version of E3.
class MisconfigurationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MisconfigurationTest, ConstraintRepairPreventsFailures) {
  const std::string& which = GetParam();
  std::unique_ptr<TunableSystem> system;
  Workload workload;
  if (which == "mapreduce") {
    system = MakeTestMapReduce();
    workload = MakeMrWordCountWorkload(2.0);
  } else if (which == "spark") {
    system = MakeTestSpark();
    workload = MakeSparkSqlAggregateWorkload(2.0, 2.0);
  } else {
    system = MakeTestDbms();
    workload = MakeDbmsOltpWorkload(0.25);
  }
  auto constraints = MakeConstraintsForSystem(system->name());
  auto descriptors = system->Descriptors();
  descriptors["expected_clients"] = workload.PropertyOr("clients", 16.0);

  Rng rng(99);
  int raw_failures = 0, repaired_failures = 0, flagged = 0;
  const int trials = 120;
  for (int i = 0; i < trials; ++i) {
    Configuration config = system->space().RandomConfiguration(&rng);
    auto raw = system->Execute(config, workload);
    ASSERT_TRUE(raw.ok());
    bool raw_failed = raw->failed;
    raw_failures += raw_failed ? 1 : 0;
    bool was_flagged =
        !CheckConstraints(constraints, config, descriptors).empty();
    flagged += was_flagged ? 1 : 0;
    // Repair and re-run.
    Configuration repaired = config;
    for (const auto& c : constraints) {
      if (c.violated(repaired, descriptors)) c.repair(&repaired, descriptors);
    }
    repaired = system->space().FromUnitVector(
        system->space().ToUnitVector(repaired));
    auto fixed = system->Execute(repaired, workload);
    ASSERT_TRUE(fixed.ok());
    repaired_failures += fixed->failed ? 1 : 0;
  }
  // Misconfiguration is a real hazard...
  EXPECT_GT(raw_failures, trials / 20) << which;
  // ...constraints notice risky configs...
  EXPECT_GT(flagged, 0) << which;
  // ...and repair removes at least half of the failures.
  EXPECT_LT(repaired_failures, raw_failures / 2 + 1) << which;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, MisconfigurationTest,
                         ::testing::Values("dbms", "mapreduce", "spark"));

}  // namespace
}  // namespace atune
