#include <gtest/gtest.h>

#include <memory>

#include "core/session.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;

/// Reproducibility contract: the whole stack is seeded, so re-running a
/// session with the same seed on a fresh system must yield bit-identical
/// histories — the property every experiment in EXPERIMENTS.md rests on.
class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, IdenticalSessionsForIdenticalSeeds) {
  const std::string& tuner_name = GetParam();
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);

  auto run_once = [&]() -> Result<TuningOutcome> {
    auto tuner = registry.Create(tuner_name);
    if (!tuner.ok()) return tuner.status();
    auto dbms = MakeTestDbms(42, /*noise=*/true);
    SessionOptions options;
    options.budget.max_evaluations = 10;
    options.seed = 1234;
    return RunTuningSession(tuner->get(), dbms.get(),
                            MakeDbmsOlapWorkload(0.25), options);
  };

  auto a = run_once();
  auto b = run_once();
  if (!a.ok()) {
    // DBMS-incompatible tuners refuse identically both times.
    EXPECT_EQ(a.status().code(), b.status().code());
    return;
  }
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->history.size(), b->history.size()) << tuner_name;
  for (size_t i = 0; i < a->history.size(); ++i) {
    EXPECT_TRUE(a->history[i].config == b->history[i].config)
        << tuner_name << " trial " << i;
    EXPECT_DOUBLE_EQ(a->history[i].objective, b->history[i].objective)
        << tuner_name << " trial " << i;
  }
  EXPECT_TRUE(a->best_config == b->best_config) << tuner_name;
}

std::vector<std::string> AllTunerNames() {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  return registry.Names();
}

std::string SafeName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllTuners, DeterminismTest,
                         ::testing::ValuesIn(AllTunerNames()), SafeName);

}  // namespace
}  // namespace atune
