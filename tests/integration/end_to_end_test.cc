#include <gtest/gtest.h>

#include <memory>

#include "core/session.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;
using testing_util::MakeTestMapReduce;
using testing_util::MakeTestSpark;

struct Scenario {
  std::string system;
  std::string tuner;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  std::string name = info.param.system + "_" + info.param.tuner;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

std::unique_ptr<TunableSystem> MakeSystem(const std::string& name,
                                          uint64_t seed) {
  if (name == "mapreduce") return MakeTestMapReduce(seed, /*noise=*/true);
  if (name == "spark") return MakeTestSpark(seed, /*noise=*/true);
  return MakeTestDbms(seed, /*noise=*/true);
}

Workload MakeWorkloadFor(const std::string& system) {
  if (system == "mapreduce") return MakeMrPageRankWorkload(2.0, 6);
  if (system == "spark") return MakeSparkIterativeMlWorkload(2.0, 6.0);
  return MakeDbmsOlapWorkload(0.25);
}

/// Contract test: every builtin tuner completes a session on every system
/// it supports, stays within budget, and returns a valid configuration.
class TunerSystemMatrixTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(TunerSystemMatrixTest, SessionCompletesWithinBudget) {
  const Scenario& scenario = GetParam();
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(scenario.tuner);
  ASSERT_TRUE(tuner.ok());

  auto system = MakeSystem(scenario.system, 11);
  Workload workload = MakeWorkloadFor(scenario.system);
  SessionOptions options;
  options.budget.max_evaluations = 12;
  options.seed = 23;

  auto outcome =
      RunTuningSession(tuner->get(), system.get(), workload, options);
  // DBMS-only / iterative-only tuners legitimately refuse some systems,
  // and a tiny probe budget can honestly end with every trial failed.
  if (!outcome.ok()) {
    EXPECT_TRUE(outcome.status().code() == StatusCode::kFailedPrecondition ||
                outcome.status().code() == StatusCode::kAllTrialsFailed)
        << outcome.status().ToString();
    return;
  }
  EXPECT_LE(outcome->evaluations_used, 12.0 + 1e-9);
  if (!outcome->history.empty()) {
    EXPECT_TRUE(
        system->space().ValidateConfiguration(outcome->best_config).ok());
    EXPECT_GT(outcome->best_objective, 0.0);
  }
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  for (const char* system : {"dbms", "mapreduce", "spark"}) {
    for (const std::string& tuner : registry.Names()) {
      scenarios.push_back({system, tuner});
    }
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(AllTunersAllSystems, TunerSystemMatrixTest,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

/// Stronger property for the tuners that measure the defaults first: the
/// session must never end *worse* than the defaults.
class ImprovesOverDefaultTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ImprovesOverDefaultTest, BestIsAtMostDefault) {
  const Scenario& scenario = GetParam();
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(scenario.tuner);
  ASSERT_TRUE(tuner.ok());
  auto system = MakeSystem(scenario.system, 5);
  Workload workload = MakeWorkloadFor(scenario.system);
  SessionOptions options;
  options.budget.max_evaluations = 15;
  options.seed = 31;
  auto outcome =
      RunTuningSession(tuner->get(), system.get(), workload, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_FALSE(outcome->history.empty());
  // First trial is the measured default for these tuners.
  EXPECT_LE(outcome->best_objective, outcome->history.front().objective);
}

std::vector<Scenario> DefaultFirstScenarios() {
  std::vector<Scenario> scenarios;
  for (const char* system : {"dbms", "mapreduce", "spark"}) {
    for (const char* tuner :
         {"random-search", "recursive-random", "adaptive-sampling", "ituned",
          "addm", "trace-simulator", "config-navigator"}) {
      scenarios.push_back({system, tuner});
    }
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(DefaultFirstTuners, ImprovesOverDefaultTest,
                         ::testing::ValuesIn(DefaultFirstScenarios()),
                         ScenarioName);

}  // namespace
}  // namespace atune
