#include <gtest/gtest.h>

#include <memory>

#include "core/session.h"
#include "tests/testing_util.h"
#include "tuners/builtin.h"

namespace atune {
namespace {

using testing_util::MakeTestDbms;

/// Robustness sweep: every tuner must degrade gracefully when the budget is
/// absurdly small (1–3 runs) — finish without crashing, never overspend,
/// and still return something valid. This guards every tuner's
/// budget-exhaustion handling paths.
class TinyBudgetTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(TinyBudgetTest, GracefulUnderStarvation) {
  auto [tuner_name, budget] = GetParam();
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  auto tuner = registry.Create(tuner_name);
  ASSERT_TRUE(tuner.ok());
  auto dbms = MakeTestDbms(3, /*noise=*/true);
  SessionOptions options;
  options.budget.max_evaluations = budget;
  options.seed = 17;
  auto outcome = RunTuningSession(tuner->get(), dbms.get(),
                                  MakeDbmsOlapWorkload(0.25), options);
  if (!outcome.ok()) {
    // Refusing an unsupported system, or honestly reporting that the only
    // trials the starvation budget allowed all failed, are both graceful.
    EXPECT_TRUE(outcome.status().code() == StatusCode::kFailedPrecondition ||
                outcome.status().code() == StatusCode::kAllTrialsFailed)
        << outcome.status().ToString();
    return;
  }
  EXPECT_LE(outcome->evaluations_used, static_cast<double>(budget) + 1e-9);
  if (!outcome->history.empty()) {
    EXPECT_TRUE(
        dbms->space().ValidateConfiguration(outcome->best_config).ok());
  }
}

std::vector<std::tuple<std::string, size_t>> TinyBudgetCases() {
  std::vector<std::tuple<std::string, size_t>> cases;
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);
  for (const std::string& name : registry.Names()) {
    for (size_t budget : {1, 3}) {
      cases.emplace_back(name, budget);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTuners, TinyBudgetTest, ::testing::ValuesIn(TinyBudgetCases()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, size_t>>& info) {
      std::string name = std::get<0>(info.param) + "_b" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace atune
