// Spark resource & shuffle tuning: OtterTune-style ML tuning vs
// Ernest-style resource sizing on a shuffle-heavy SQL workload.
//
// Also demonstrates the broadcast-join threshold cliff on a star join —
// the kind of single-knob decision that dominates SQL performance.

#include <cstdio>

#include "core/session.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"
#include "tuners/ml_tuners/ernest.h"
#include "tuners/ml_tuners/ottertune.h"

int main() {
  using namespace atune;
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  ClusterSpec cluster = ClusterSpec::MakeUniform(4, node);

  // --- Part 1: executor sizing with Ernest -------------------------------
  {
    std::printf("== Ernest: how many executors for an 8GB SQL aggregation? ==\n");
    SimulatedSpark spark(cluster, 5);
    Workload w = MakeSparkSqlAggregateWorkload(8.0, 10.0);
    ErnestTuner ernest;
    SessionOptions options;
    options.budget.max_evaluations = 8;
    auto outcome = RunTuningSession(&ernest, &spark, w, options);
    if (outcome.ok()) {
      std::printf("  %s\n", outcome->tuner_report.c_str());
      std::printf("  chosen config runtime: %.0fs (defaults: %.0fs)\n\n",
                  outcome->best_objective, outcome->default_objective);
    }
  }

  // --- Part 2: full-knob ML tuning with OtterTune ------------------------
  {
    std::printf("== OtterTune: full configuration for the same workload ==\n");
    SimulatedSpark spark(cluster, 5);
    Workload w = MakeSparkSqlAggregateWorkload(8.0, 10.0);
    OtterTuneTuner ottertune;
    SessionOptions options;
    options.budget.max_evaluations = 20;
    auto outcome = RunTuningSession(&ottertune, &spark, w, options);
    if (outcome.ok()) {
      std::printf("  %.2fx speedup over defaults in %.0f runs\n",
                  outcome->speedup_over_default, outcome->evaluations_used);
      std::printf("  %s\n\n", outcome->tuner_report.c_str());
    }
  }

  // --- Part 3: the broadcast threshold cliff -----------------------------
  {
    std::printf("== Star join, 8GB fact x 96MB dimension: broadcast or not? ==\n");
    SimulatedSpark spark(cluster, 5);
    spark.set_noise_sigma(0.0);
    Workload join = MakeSparkJoinWorkload(8.0, /*small_table_mb=*/96.0);
    Configuration base = spark.space().DefaultConfiguration();
    base.SetInt("num_executors", 8);
    base.SetInt("executor_cores", 4);
    base.SetInt("executor_memory_mb", 6144);
    for (int64_t threshold : {10, 64, 128, 512}) {
      Configuration c = base;
      c.SetInt("broadcast_threshold_mb", threshold);
      auto r = spark.Execute(c, join);
      if (r.ok() && !r->failed) {
        std::printf("  threshold %4lld MB -> %6.0fs  (%s join, %5.0f MB shuffled)\n",
                    static_cast<long long>(threshold), r->runtime_seconds,
                    threshold >= 96 ? "broadcast" : "shuffle  ",
                    r->MetricOr("shuffle_write_mb", 0.0));
      } else if (r.ok()) {
        std::printf("  threshold %4lld MB -> FAILED: %s\n",
                    static_cast<long long>(threshold),
                    r->failure_reason.c_str());
      }
    }
  }
  return 0;
}
