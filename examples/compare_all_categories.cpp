// Runs every registered tuner (all six taxonomy categories, 21 approaches)
// on one scenario and prints a ranked report — the library's "kitchen sink"
// demo and a handy regression snapshot.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/csv.h"
#include "common/string_util.h"
#include "core/registry.h"
#include "core/session.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "tuners/builtin.h"

int main() {
  using namespace atune;
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  Workload workload = MakeDbmsOlapWorkload(1.0);

  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);

  struct RowData {
    std::string name;
    std::string category;
    double speedup;
    double best;
    double evals;
    std::string note;
  };
  std::vector<RowData> rows;

  for (const std::string& name : registry.Names()) {
    auto tuner = registry.Create(name);
    if (!tuner.ok()) continue;
    SimulatedDbms dbms(ClusterSpec::MakeUniform(1, node), 13);
    SessionOptions options;
    options.budget.max_evaluations = 25;
    options.seed = 37;
    auto outcome =
        RunTuningSession(tuner->get(), &dbms, workload, options);
    if (!outcome.ok()) {
      rows.push_back({name, TunerCategoryToString((*tuner)->category()), 0.0,
                      0.0, 0.0, outcome.status().ToString()});
      continue;
    }
    rows.push_back({name, TunerCategoryToString(outcome->category),
                    outcome->speedup_over_default, outcome->best_objective,
                    outcome->evaluations_used, ""});
  }

  std::sort(rows.begin(), rows.end(), [](const RowData& a, const RowData& b) {
    return a.speedup > b.speedup;
  });

  std::printf("All %zu builtin tuners on DBMS / TPC-H-like OLAP "
              "(budget 25, seed 37):\n\n", rows.size());
  TableWriter table({"tuner", "category", "speedup", "best", "evals", "note"});
  for (const RowData& r : rows) {
    table.AddRow({r.name, r.category,
                  r.speedup > 0 ? StrFormat("%.2fx", r.speedup) : "-",
                  r.best > 0 ? StrFormat("%.0fs", r.best) : "-",
                  StrFormat("%.1f", r.evals), r.note});
  }
  table.WritePretty(std::cout);
  return 0;
}
