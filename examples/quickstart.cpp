// Quickstart: tune a simulated DBMS for a TPC-H-like analytical workload
// with iTuned (GP + Expected Improvement) in a few lines of API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/session.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "tuners/experiment/ituned.h"

int main() {
  using namespace atune;

  // 1. The system under tuning: a single-node DBMS on 8 cores / 16 GB.
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  SimulatedDbms dbms(ClusterSpec::MakeUniform(1, node), /*seed=*/42);

  // 2. The workload: a TPC-H-like analytical batch.
  Workload workload = MakeDbmsOlapWorkload(/*scale=*/1.0);

  // 3. The tuner: iTuned = LHS design + Gaussian process + EI.
  ITunedTuner tuner;

  // 4. Run a 30-experiment tuning session.
  SessionOptions options;
  options.budget.max_evaluations = 30;
  options.seed = 7;
  auto outcome = RunTuningSession(&tuner, &dbms, workload, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  // 5. Inspect the result.
  std::printf("workload:        %s\n", workload.name.c_str());
  std::printf("default runtime: %.2f s\n", outcome->default_objective);
  std::printf("tuned runtime:   %.2f s\n", outcome->best_objective);
  std::printf("speedup:         %.2fx\n", outcome->speedup_over_default);
  std::printf("experiments:     %.0f\n", outcome->evaluations_used);
  std::printf("best config:     %s\n", outcome->best_config.ToString().c_str());
  std::printf("tuner report:    %s\n", outcome->tuner_report.c_str());

  std::printf("\nconvergence (budget spent -> best objective):\n");
  for (size_t i = 0; i < outcome->convergence.size(); i += 5) {
    std::printf("  %5.1f -> %.2f s\n", outcome->convergence_cost[i],
                outcome->convergence[i]);
  }
  return 0;
}
