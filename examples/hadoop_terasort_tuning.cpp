// Tuning a Hadoop TeraSort job: the canonical MapReduce tuning story.
//
// Walks the same knob journey the Hadoop tuning literature documents:
//   defaults (1 reducer!) -> rule-of-thumb config -> ADDM-style diagnosis ->
//   full experiment-driven search; prints what each level of effort buys.

#include <cstdio>

#include "core/session.h"
#include "systems/mapreduce/mr_system.h"
#include "systems/mapreduce/mr_workloads.h"
#include "tuners/experiment/ituned.h"
#include "tuners/rule_based/builtin_rules.h"
#include "tuners/rule_based/rule_engine.h"
#include "tuners/simulation/addm.h"

int main() {
  using namespace atune;
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 8192;
  ClusterSpec cluster = ClusterSpec::MakeUniform(8, node);
  Workload terasort = MakeMrTeraSortWorkload(50.0);  // 50 GB

  std::printf("TeraSort 50GB on 8 nodes x 8 cores\n\n");

  // Level 0: stock defaults.
  {
    SimulatedMapReduce mr(cluster, 3);
    mr.set_noise_sigma(0.0);
    auto r = mr.Execute(mr.space().DefaultConfiguration(), terasort);
    std::printf("defaults:              %7.0fs   (mapred.reduce.tasks=1!)\n",
                r->runtime_seconds);
  }

  // Level 1: the cluster-tuning checklist.
  {
    SimulatedMapReduce mr(cluster, 3);
    mr.set_noise_sigma(0.0);
    RuleContext context;
    context.descriptors = mr.Descriptors();
    context.workload = &terasort;
    std::vector<std::string> fired;
    Configuration config =
        ApplyRules(mr.space(), MakeMapReduceRules(), context, &fired);
    auto r = mr.Execute(config, terasort);
    std::printf("rule-of-thumb config:  %7.0fs   (%zu rules fired)\n",
                r->runtime_seconds, fired.size());
  }

  // Level 2: a few diagnose-and-fix iterations.
  {
    SimulatedMapReduce mr(cluster, 3);
    AddmTuner addm(6);
    SessionOptions options;
    options.budget.max_evaluations = 8;
    auto outcome = RunTuningSession(&addm, &mr, terasort, options);
    if (outcome.ok()) {
      std::printf("diagnosis (8 runs):    %7.0fs   [%s]\n",
                  outcome->best_objective, outcome->tuner_report.c_str());
    }
  }

  // Level 3: full experiment-driven tuning.
  {
    SimulatedMapReduce mr(cluster, 3);
    ITunedTuner ituned;
    SessionOptions options;
    options.budget.max_evaluations = 40;
    auto outcome = RunTuningSession(&ituned, &mr, terasort, options);
    if (outcome.ok()) {
      std::printf("iTuned (40 runs):      %7.0fs\n", outcome->best_objective);
      std::printf("\nbest configuration found:\n  %s\n",
                  outcome->best_config.ToString().c_str());
    }
  }
  return 0;
}
