// DBMS memory advisor: STMM-style cost-benefit memory distribution, both
// offline (cost-model equilibrium) and online (adaptive redistribution
// while the workload runs), under a shifting OLTP/OLAP mix.
//
// Mirrors the DB2 STMM scenario from Table 2 of the paper: the right
// buffer-pool/work-mem split depends on the workload, and an online tuner
// keeps up when the workload changes.

#include <cstdio>

#include "core/session.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "tuners/adaptive/adaptive_memory.h"
#include "tuners/cost_model/stmm.h"

namespace {

void RunAdvisor(const char* label, atune::Workload workload) {
  using namespace atune;
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;

  std::printf("\n== %s ==\n", label);

  // Offline: STMM equilibrium from the cost model (no experiments).
  {
    SimulatedDbms dbms(ClusterSpec::MakeUniform(1, node), 11);
    StmmTuner stmm;
    SessionOptions options;
    options.budget.max_evaluations = 2;
    auto outcome = RunTuningSession(&stmm, &dbms, workload, options);
    if (outcome.ok()) {
      std::printf("  offline STMM:    %.2fx speedup — %s\n",
                  outcome->speedup_over_default,
                  outcome->tuner_report.c_str());
    }
  }

  // Online: adaptive redistribution between workload segments.
  {
    SimulatedDbms dbms(ClusterSpec::MakeUniform(1, node), 11);
    AdaptiveMemoryTuner online;
    SessionOptions options;
    options.budget.max_evaluations = 6;
    auto outcome = RunTuningSession(&online, &dbms, workload, options);
    if (outcome.ok()) {
      std::printf("  online adaptive: %.2fx speedup — %s\n",
                  outcome->speedup_over_default,
                  outcome->tuner_report.c_str());
      std::printf("  pass-by-pass best objective:");
      for (size_t i = 0; i < outcome->convergence.size(); ++i) {
        std::printf(" %.0fs", outcome->convergence[i]);
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  std::printf("DBMS memory advisor (STMM offline vs adaptive online)\n");
  RunAdvisor("sort/join heavy OLAP (wants big work_mem)",
             atune::MakeDbmsOlapWorkload(1.0));
  RunAdvisor("point-access OLTP (wants big buffer pool)",
             atune::MakeDbmsOltpWorkload(1.0));
  RunAdvisor("HTAP mix (balanced split)", atune::MakeDbmsMixedWorkload(1.0));
  return 0;
}
