// Workload shift: why the adaptive category exists (Table 1: "able to
// adjust to dynamic runtime status", "work well for ad-hoc
// queries/applications").
//
// A long-running DBMS application runs an OLTP phase and then shifts to an
// analytical phase. Three strategies are compared *end-to-end*, charging
// every second the system actually spends:
//   defaults   — no tuning at all;
//   static     — an experiment-driven tuner optimizes phase 1 offline
//                (those 25 experiment runs are real time too!) and the
//                result is frozen for both phases;
//   adaptive   — the online memory tuner adapts inside the payload run and
//                carries its state across the shift. No offline runs.

#include <cstdio>

#include "core/tuner.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "tuners/adaptive/adaptive_memory.h"
#include "tuners/experiment/ituned.h"

int main() {
  using namespace atune;
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;

  Workload phase1 = MakeDbmsOltpWorkload(0.5);
  Workload phase2 = MakeDbmsOlapWorkload(0.5);
  const size_t passes_per_phase = 2;  // each pass = 8 workload units

  auto phase_time = [&](SimulatedDbms* dbms, const Configuration& config,
                        const Workload& phase) {
    double total = 0.0;
    size_t units = dbms->NumUnits(phase);
    for (size_t p = 0; p < passes_per_phase; ++p) {
      for (size_t u = 0; u < units; ++u) {
        auto r = dbms->ExecuteUnit(config, phase, u);
        total += r->runtime_seconds;  // wall clock; failures already cost
                                      // their watchdog time
      }
    }
    return total;
  };

  // --- defaults -----------------------------------------------------------
  double default_total = 0.0;
  {
    SimulatedDbms dbms(ClusterSpec::MakeUniform(1, node), 9);
    dbms.set_noise_sigma(0.0);
    Configuration defaults = dbms.space().DefaultConfiguration();
    default_total =
        phase_time(&dbms, defaults, phase1) + phase_time(&dbms, defaults, phase2);
  }

  // --- static: offline iTuned on phase 1, then frozen ---------------------
  double static_payload = 0.0, static_tuning_cost = 0.0;
  {
    SimulatedDbms dbms(ClusterSpec::MakeUniform(1, node), 7);
    ITunedTuner ituned;
    Evaluator evaluator(&dbms, phase1, TuningBudget{25});
    Rng rng(1);
    (void)ituned.Tune(&evaluator, &rng);
    Configuration static_config = evaluator.best()->config;
    for (const Trial& t : evaluator.history()) {
      static_tuning_cost += t.result.runtime_seconds;
    }
    SimulatedDbms fresh(ClusterSpec::MakeUniform(1, node), 9);
    fresh.set_noise_sigma(0.0);
    static_payload = phase_time(&fresh, static_config, phase1) +
                     phase_time(&fresh, static_config, phase2);
    std::printf("static config (phase-1 optimal): %s\n\n",
                static_config.ToString().c_str());
  }

  // --- adaptive: online, state carried across the shift -------------------
  double adaptive_total = 0.0;
  Configuration adaptive_final;
  {
    SimulatedDbms dbms(ClusterSpec::MakeUniform(1, node), 9);
    dbms.set_noise_sigma(0.0);
    Rng rng(2);
    AdaptiveMemoryTuner online1;
    Evaluator ev1(&dbms, phase1, TuningBudget{passes_per_phase});
    (void)online1.Tune(&ev1, &rng);
    for (const Trial& t : ev1.history()) {
      adaptive_total += t.result.runtime_seconds * t.cost;
    }
    AdaptiveMemoryTuner online2;
    online2.set_initial_config(ev1.history().back().config);
    Evaluator ev2(&dbms, phase2, TuningBudget{passes_per_phase});
    (void)online2.Tune(&ev2, &rng);
    for (const Trial& t : ev2.history()) {
      adaptive_total += t.result.runtime_seconds * t.cost;
    }
    adaptive_final = ev2.history().back().config;
  }

  std::printf("OLTP -> OLAP shift, %zu passes per phase, end-to-end cost:\n",
              passes_per_phase);
  std::printf("  defaults:                     %7.0fs payload\n",
              default_total);
  std::printf("  static (iTuned on phase 1):   %7.0fs payload + %7.0fs "
              "offline tuning = %7.0fs\n",
              static_payload, static_tuning_cost,
              static_payload + static_tuning_cost);
  std::printf("  adaptive (online, no setup):  %7.0fs payload (tuning "
              "happens inside the run)\n\n",
              adaptive_total);
  std::printf("adaptive final config: %s\n\n", adaptive_final.ToString().c_str());
  std::printf(
      "Table 1's tradeoff, measured: the experiment-driven config is the\n"
      "best *per pass* but needs 25 offline runs to get there — for an\n"
      "ad-hoc or shifting workload the adaptive tuner wins end-to-end\n"
      "because its learning cost is folded into useful work.\n");
  return 0;
}
