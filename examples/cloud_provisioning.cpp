// Cloud provisioning with custom objectives (the §2.5 open problems as
// library API): the same Spark job tuned for speed, for dollars under a
// deadline, and — as a multi-tenant DBMS — for SLO fairness.
//
// Demonstrates `SessionOptions::objective` and the helpers in
// core/objective.h.

#include <cstdio>

#include "core/objective.h"
#include "core/session.h"
#include "systems/multi_tenant.h"
#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"
#include "tuners/experiment/ituned.h"

int main() {
  using namespace atune;
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  ClusterSpec cluster = ClusterSpec::MakeUniform(4, node);

  // --- 1. Speed vs dollars ------------------------------------------------
  {
    Workload job = MakeSparkSqlAggregateWorkload(8.0, 10.0);
    std::printf("Spark SQL job, two goals:\n");
    for (bool cost_aware : {false, true}) {
      SimulatedSpark spark(cluster, 11);
      ITunedTuner tuner;
      SessionOptions options;
      options.budget.max_evaluations = 40;
      options.seed = 9;
      if (cost_aware) {
        options.objective = MakeCloudCostObjective(
            CloudPricing{}, spark.name(), spark.Descriptors(),
            /*deadline_s=*/1200.0);
      }
      auto outcome = RunTuningSession(&tuner, &spark, job, options);
      if (!outcome.ok()) continue;
      SimulatedSpark probe(cluster, 12);
      probe.set_noise_sigma(0.0);
      auto run = probe.Execute(outcome->best_config, job);
      double usd = ComputeRunCostUsd(CloudPricing{}, probe.name(),
                                     probe.Descriptors(),
                                     outcome->best_config, *run);
      std::printf("  %-22s -> %2lld executors, %4.0fs, $%.3f/run\n",
                  cost_aware ? "cheapest under 1200s" : "fastest",
                  static_cast<long long>(
                      outcome->best_config.IntOr("num_executors", 0)),
                  run->runtime_seconds, usd);
    }
  }

  // --- 2. Multi-tenant fairness -------------------------------------------
  {
    std::printf("\nMulti-tenant DBMS, robust minimax objective:\n");
    SimulatedDbms dbms(ClusterSpec::MakeUniform(1, node), 21);
    std::vector<Tenant> tenants = {
        {"analytics", MakeDbmsOlapWorkload(0.5), /*slo=*/140.0},
        {"frontend", MakeDbmsOltpWorkload(0.5, 64.0, 0.85), /*slo=*/40.0},
    };
    MultiTenantSystem shared(&dbms, tenants);
    ITunedTuner tuner;
    SessionOptions options;
    options.budget.max_evaluations = 25;
    options.seed = 7;
    options.objective = MakeRobustSloObjective();
    auto outcome =
        RunTuningSession(&tuner, &shared, MakeMultiTenantWorkload(), options);
    if (outcome.ok()) {
      const ExecutionResult& r = outcome->history.back().result;
      std::printf("  worst tenant SLO ratio: %.2f (violations: %.0f)\n",
                  outcome->best_objective,
                  r.MetricOr("slo_violations", -1.0));
      std::printf("  config: %s\n", outcome->best_config.ToString().c_str());
    }
  }
  return 0;
}
