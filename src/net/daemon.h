#ifndef ATUNE_NET_DAEMON_H_
#define ATUNE_NET_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/registry.h"
#include "net/reactor.h"
#include "net/wire.h"

namespace atune {

/// Options for TuningDaemon (atuned's --flags map onto these).
struct DaemonOptions {
  /// Listen address: "unix:<path>" or "tcp:<dotted-quad>:<port>"
  /// (port 0 = ephemeral; bound_address() reports the real one).
  std::string listen = "unix:atuned.sock";
  /// Directory holding one <session-id>.meta / .wal / .result triple per
  /// session — the daemon's entire durable state. Restart recovery is a
  /// rescan of this directory. Created if missing.
  std::string journal_dir = "atuned-state";
  /// Worker threads executing tuning sessions (the existing ThreadPool).
  size_t workers = 4;
  /// Bounded queue of admitted-but-not-running sessions. Admissions beyond
  /// it are shed with kShedQueueFull + retry_after_ms — the daemon's memory
  /// and latency stay bounded no matter the offered load.
  size_t max_queue = 64;
  /// Per-tenant admission quota: the sum of budgets (evaluations) of a
  /// tenant's queued+running sessions may not exceed this. Keeps one noisy
  /// tenant from monopolizing the worker pool.
  double tenant_budget_quota = 256.0;
  /// Backoff hint returned with every shed response.
  uint64_t retry_after_ms = 50;
  /// Connections idle this long with an unfinished frame in either buffer
  /// (a stalled peer, half a frame then silence) are reaped. 0 disables.
  uint64_t idle_timeout_ms = 30000;
  /// Cap on AttachRequest::wait_ms (per-request deadline ceiling).
  uint64_t max_wait_ms = 60000;
  /// Rescan journal_dir at startup and resume interrupted sessions.
  bool recover = true;
  /// Crash-loop quarantine: an interrupted session is re-queued at most
  /// this many times across restarts (the attempt counter is persisted in
  /// its .meta). A session that keeps taking the daemon down with it —
  /// however it manages that — is quarantined on the attempt after the
  /// limit: marked terminally kFailed with StatusCode::kInternal and a
  /// durable .result, while the daemon keeps serving everything else.
  /// 0 disables the quarantine (unbounded re-queues, the pre-quarantine
  /// behavior).
  size_t max_resume_attempts = 3;
  /// Knowledge repository directory (DESIGN.md §14): every session that
  /// completes kDone is ingested as an immutable shard, and sessions
  /// started with warm_start map against it. Empty = the default
  /// "<journal_dir>/knowledge".
  std::string knowledge_dir;
};

/// The atuned tuning service (DESIGN.md §13): a single-threaded epoll
/// reactor multiplexing the wire protocol over many client connections,
/// executing tuning sessions on a ThreadPool, with:
///
///   * admission control — per-tenant budget quotas and a bounded session
///     queue; everything over quota/capacity is shed with RETRY_AFTER
///   * deadline propagation — per-session deadlines cancel cleanly at the
///     next evaluation boundary with the checkpoint journaled; per-request
///     deadlines bound long-poll attaches
///   * graceful drain — RequestDrain() (SIGTERM) stops admitting, cancels
///     running sessions at their next evaluation boundary (the journal
///     already holds every committed trial), then exits
///   * restart recovery — Start() rescans journal_dir and re-queues every
///     interrupted session; replay-based resume makes the finished outcome
///     bit-identical to a never-interrupted run
///
/// All mutable state is owned by the reactor thread. Workers communicate
/// only through Reactor::Post and per-session atomic cancel flags.
class TuningDaemon {
 public:
  explicit TuningDaemon(DaemonOptions options);
  ~TuningDaemon();
  TuningDaemon(const TuningDaemon&) = delete;
  TuningDaemon& operator=(const TuningDaemon&) = delete;

  /// Binds the listener, recovers journal_dir, starts the worker pool.
  Status Start();

  /// Start() if needed, then runs the reactor loop until a drain completes.
  /// Returns OK after a clean drain.
  Status Serve();

  /// Thread-safe: begin a graceful drain (see class comment). Serve()
  /// returns once in-flight sessions have checkpointed.
  void RequestDrain();

  /// An eventfd the daemon watches; writing 8 bytes to it triggers
  /// RequestDrain. write() is async-signal-safe, so this is how atuned's
  /// SIGTERM handler requests the drain. -1 before Start().
  int drain_eventfd() const { return drain_fd_; }

  /// Actual listen address after Start() (resolves tcp port 0).
  const std::string& bound_address() const { return bound_address_; }

 private:
  struct Conn;

  enum class CancelReason : uint8_t { kNone, kDeadline, kClient, kDrain };

  /// A long-poll attach waiting for a session to finish (or its per-request
  /// deadline to expire).
  struct Waiter {
    int fd = -1;
    uint64_t conn_gen = 0;
    uint64_t timer_id = 0;
  };

  struct SessionEntry {
    StartRequest spec;
    SessionState state = SessionState::kQueued;
    SessionResult result;
    bool resume = false;  ///< recovered with an existing journal
    CancelReason cancel_reason = CancelReason::kNone;
    /// Polled by the session's Evaluator before every evaluation (the
    /// worker's only view of this entry).
    std::shared_ptr<std::atomic<bool>> cancel;
    uint64_t deadline_timer = 0;
    std::vector<Waiter> waiters;
    /// Warm-start snapshot, pinned as an explicit shard list at admission
    /// and persisted in .meta. Shards are immutable, so a restarted daemon
    /// re-maps against byte-identical history and the resumed session
    /// replays bit-identically even if the repository grew meanwhile.
    std::vector<std::string> warm_shards;
  };

  // ---- reactor-thread handlers ----
  void OnListenerReadable();
  void OnConnEvent(int fd, uint32_t events);
  void ProcessConn(Conn* conn);
  /// Returns false when the frame destroyed the connection.
  bool HandleFrame(Conn* conn, const std::string& payload);
  void HandleStart(Conn* conn, const StartRequest& req);
  void HandleAttach(Conn* conn, const AttachRequest& req);
  void HandleCancel(Conn* conn, const CancelRequest& req);
  void SendPayload(Conn* conn, const std::string& payload);
  void FlushConn(Conn* conn);
  void DestroyConn(int fd);
  void ReapIdleConns();

  // ---- session machinery (reactor thread) ----
  AdmitCode Admit(const StartRequest& req, uint64_t* retry_after_ms);
  void EnqueueSession(const std::string& id);
  void DispatchQueued();
  void OnSessionDone(const std::string& id, Status status,
                     SessionResult result);
  void FinishSession(SessionEntry* entry, const std::string& id,
                     SessionState state);
  void ArmDeadline(const std::string& id, SessionEntry* entry);
  void NotifyWaiters(const std::string& id, SessionEntry* entry);
  AttachResponse MakeAttachResponse(const SessionEntry& entry) const;
  void BeginDrain();
  void MaybeFinishDrain();

  // ---- durable state ----
  std::string MetaPath(const std::string& id) const;
  std::string WalPath(const std::string& id) const;
  std::string ResultPath(const std::string& id) const;
  /// Resolved knowledge repository directory (see DaemonOptions).
  std::string KnowledgeDir() const;
  Status WriteMeta(const std::string& id, const StartRequest& spec,
                   const std::vector<std::string>& warm_shards,
                   uint64_t resume_attempts = 0) const;
  Status WriteResult(const std::string& id, const SessionEntry& entry) const;
  Status Recover();

  Status BindListener();

  DaemonOptions options_;
  Reactor reactor_;
  TunerRegistry registry_;
  std::unique_ptr<ThreadPool> pool_;
  int listen_fd_ = -1;
  int drain_fd_ = -1;
  std::string bound_address_;
  std::string unix_path_;  ///< unlinked on clean exit
  bool started_ = false;
  bool draining_ = false;

  std::map<int, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_gen_ = 1;

  std::map<std::string, SessionEntry> sessions_;
  std::deque<std::string> queue_;  ///< admitted, waiting for a worker
  size_t active_ = 0;              ///< sessions running on the pool
  std::map<std::string, double> tenant_inflight_budget_;

  StatsResponse stats_;
};

}  // namespace atune

#endif  // ATUNE_NET_DAEMON_H_
