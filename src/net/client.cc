#include "net/client.h"

#include <time.h>

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace atune {
namespace {

/// Little-endian u32 at `p` (the frame length prefix).
uint32_t LoadU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | static_cast<uint32_t>(u[1]) << 8 |
         static_cast<uint32_t>(u[2]) << 16 | static_cast<uint32_t>(u[3]) << 24;
}

/// Bounded exponential sleep with the shared IoRetryPolicy shape
/// (base << (attempt-1), capped) — the reconnect-level sibling of
/// DefaultIoEnv::Backoff and FdTransport::Backoff.
void SleepBackoff(const IoRetryPolicy& policy, size_t attempt) {
  if (attempt == 0) attempt = 1;
  uint64_t us = policy.backoff_base_us;
  for (size_t i = 1; i < attempt && us < policy.backoff_cap_us; ++i) us <<= 1;
  us = std::min(us, policy.backoff_cap_us);
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(us / 1000000);
  ts.tv_nsec = static_cast<long>((us % 1000000) * 1000);
  ::nanosleep(&ts, nullptr);
}

void SleepMs(uint64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  ::nanosleep(&ts, nullptr);
}

uint64_t NowMsMonotonic() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000;
}

}  // namespace

Status TuningClient::EnsureConnected() {
  if (transport_ != nullptr) return Status::OK();
  Status last = Status::OK();
  for (size_t attempt = 1; attempt <= options_.retry.max_attempts; ++attempt) {
    auto transport =
        ConnectTransport(options_.address, options_.io_timeout_ms);
    if (transport.ok()) {
      connects_++;
      if (options_.inject_faults) {
        NetFaultSchedule schedule = options_.faults;
        // Perturb the seed per connection so reconnects replay different —
        // but still reproducible — fault positions.
        schedule.seed = schedule.seed * 1000003 + connects_;
        transport_ = std::make_unique<FaultInjectingTransport>(
            std::move(transport).value(), schedule);
      } else {
        transport_ = std::move(transport).value();
      }
      return Status::OK();
    }
    last = transport.status();
    if (attempt < options_.retry.max_attempts) {
      SleepBackoff(options_.retry, attempt);
    }
  }
  return Status::IoError("connect to " + options_.address + " failed after " +
                         std::to_string(options_.retry.max_attempts) +
                         " attempts: " + last.message());
}

void TuningClient::Disconnect() {
  if (transport_ != nullptr) {
    (void)transport_->Close();
    transport_.reset();
  }
}

Result<std::string> TuningClient::Exchange(const std::string& payload) {
  std::string frame;
  AppendFrame(payload, &frame);
  ATUNE_RETURN_IF_ERROR(
      WriteFully(transport_.get(), frame.data(), frame.size(), options_.retry));

  // Response: header first (length + CRC), then the payload, then the CRC
  // check via the same ExtractFrame the server uses.
  char header[kFrameHeaderBytes];
  ATUNE_RETURN_IF_ERROR(
      ReadFully(transport_.get(), header, sizeof(header), options_.retry));
  uint32_t len = LoadU32(header);
  if (len == 0 || len > kMaxFramePayload) {
    return Status::InvalidArgument("bad response frame length " +
                                   std::to_string(len));
  }
  std::string buffer(header, sizeof(header));
  buffer.resize(sizeof(header) + len);
  ATUNE_RETURN_IF_ERROR(
      ReadFully(transport_.get(), &buffer[sizeof(header)], len, options_.retry));
  std::string response;
  size_t consumed = 0;
  ATUNE_RETURN_IF_ERROR(
      ExtractFrame(buffer.data(), buffer.size(), &response, &consumed));
  if (consumed != buffer.size()) {
    return Status::Internal("frame extraction consumed " +
                            std::to_string(consumed) + " of " +
                            std::to_string(buffer.size()) + " bytes");
  }
  return response;
}

Result<std::string> TuningClient::Call(const std::string& payload) {
  Status last = Status::OK();
  for (size_t attempt = 1; attempt <= options_.retry.max_attempts; ++attempt) {
    Status status = EnsureConnected();
    if (status.ok()) {
      auto response = Exchange(payload);
      if (response.ok()) {
        // Server-reported errors ride a healthy stream: surface them
        // without retrying (the request itself was rejected).
        auto type = PeekType(*response);
        if (type.ok() && *type == MsgType::kErrorResp) {
          auto err = ParseErrorResponse(*response);
          if (!err.ok()) return err.status();
          return Status(static_cast<StatusCode>(err->status_code),
                        err->message);
        }
        return response;
      }
      status = response.status();
    }
    // Torn connection (mid-frame EOF, reset, exhausted stall retries):
    // drop it and retry the whole exchange on a fresh one. Safe because
    // every request is idempotent.
    last = status;
    Disconnect();
    if (attempt < options_.retry.max_attempts) {
      retried_exchanges_++;
      SleepBackoff(options_.retry, attempt);
    }
  }
  return Status::IoError("exchange with " + options_.address +
                         " failed after " +
                         std::to_string(options_.retry.max_attempts) +
                         " attempts: " + last.message());
}

Status TuningClient::Ping() {
  ATUNE_ASSIGN_OR_RETURN(std::string response, Call(EncodePing()));
  ATUNE_ASSIGN_OR_RETURN(MsgType type, PeekType(response));
  if (type != MsgType::kPongResp) {
    return Status::Internal("unexpected response to ping");
  }
  return Status::OK();
}

Result<StartResponse> TuningClient::StartSession(const StartRequest& request) {
  ATUNE_ASSIGN_OR_RETURN(std::string response,
                         Call(EncodeStartRequest(request)));
  return ParseStartResponse(response);
}

Result<StartResponse> TuningClient::RetryStart(const StartRequest& request,
                                               size_t max_attempts) {
  Result<StartResponse> last = Status::Internal("RetryStart: zero attempts");
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    last = StartSession(request);
    if (!last.ok()) return last;
    switch (last->code) {
      case AdmitCode::kAccepted:
      case AdmitCode::kAlreadyExists:
      case AdmitCode::kDraining:  // this daemon is going away; don't spin
        return last;
      case AdmitCode::kShedQueueFull:
      case AdmitCode::kShedTenantQuota: {
        if (attempt == max_attempts) return last;
        // Honor the server's hint, growing it on consecutive sheds so a
        // saturated daemon isn't hammered in lockstep.
        uint64_t hint = std::max<uint64_t>(1, last->retry_after_ms);
        uint64_t wait = hint << std::min<size_t>(attempt - 1, 6);
        SleepMs(std::min<uint64_t>(wait, 2000));
        break;
      }
    }
  }
  return last;
}

Result<AttachResponse> TuningClient::Attach(const std::string& session_id,
                                            uint64_t wait_ms) {
  AttachRequest request;
  request.session_id = session_id;
  request.wait_ms = wait_ms;
  ATUNE_ASSIGN_OR_RETURN(std::string response,
                         Call(EncodeAttachRequest(request)));
  return ParseAttachResponse(response);
}

Result<AttachResponse> TuningClient::AwaitResult(const std::string& session_id,
                                                 uint64_t overall_timeout_ms,
                                                 uint64_t poll_ms) {
  uint64_t start = NowMsMonotonic();
  while (true) {
    uint64_t wait = poll_ms;
    if (overall_timeout_ms > 0) {
      uint64_t elapsed = NowMsMonotonic() - start;
      if (elapsed >= overall_timeout_ms) wait = 0;  // final instant poll
      else wait = std::min(wait, overall_timeout_ms - elapsed);
    }
    ATUNE_ASSIGN_OR_RETURN(AttachResponse response,
                           Attach(session_id, wait));
    if (SessionStateTerminal(response.state) ||
        response.state == SessionState::kUnknown) {
      return response;
    }
    if (overall_timeout_ms > 0 &&
        NowMsMonotonic() - start >= overall_timeout_ms) {
      return response;  // non-terminal: caller sees the timeout
    }
  }
}

Result<CancelResponse> TuningClient::Cancel(const std::string& session_id) {
  CancelRequest request;
  request.session_id = session_id;
  ATUNE_ASSIGN_OR_RETURN(std::string response,
                         Call(EncodeCancelRequest(request)));
  return ParseCancelResponse(response);
}

Result<StatsResponse> TuningClient::Stats() {
  ATUNE_ASSIGN_OR_RETURN(std::string response, Call(EncodeStatsRequest()));
  return ParseStatsResponse(response);
}

}  // namespace atune
