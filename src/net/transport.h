#ifndef ATUNE_NET_TRANSPORT_H_
#define ATUNE_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io_env.h"  // IoRetryPolicy: shared retry/backoff bounds
#include "common/random.h"
#include "common/status.h"

namespace atune {

/// Byte-stream transport abstraction over a connected socket — the network
/// sibling of IoFile (common/io_env.h), with the same one-attempt contract:
///
///  * Read()/Write() are ONE syscall attempt and may move fewer bytes than
///    asked (short read/write). On failure *transient says whether the error
///    is worth a bounded retry (EINTR, EAGAIN on a blocking socket with a
///    receive timeout counts as a stall tick); ECONNRESET/EPIPE/EOF are not
///    transient — the peer is gone.
///  * ReadFully()/WriteFully() are the bounded deterministic retry loops
///    everything uses, parameterized by the SAME IoRetryPolicy struct (and
///    defaults) as the filesystem seam's WriteFully — one set of retry/
///    backoff bound constants for the whole codebase, not a duplicate.
///  * Read() returning OK with *nread == 0 is clean EOF (peer closed).
///
/// SIGPIPE note: atuned and atune_cli ignore SIGPIPE process-wide, so a
/// write to a dead peer surfaces here as a clean EPIPE Status instead of
/// killing the process mid-journal-append.
class Transport {
 public:
  virtual ~Transport() = default;

  /// ONE read attempt. OK + *nread == 0 means EOF.
  virtual Status Read(void* buf, size_t n, size_t* nread, bool* transient) = 0;

  /// ONE write attempt; *written may be < n (short write).
  virtual Status Write(const void* buf, size_t n, size_t* written,
                       bool* transient) = 0;

  /// Backoff before retry `attempt` (1-based) of a transient error. The
  /// real transport sleeps (bounded exponential); the fault-injecting
  /// transport counts and returns, keeping faulted runs deterministic.
  virtual void Backoff(size_t attempt) = 0;

  virtual Status Close() = 0;
};

/// Reads exactly `n` bytes: reassembles short reads (no retry budget spent —
/// progress was made), retries transient errors up to policy.max_attempts
/// with t->Backoff between attempts, and surfaces EOF mid-buffer as a
/// non-transient kIoError ("peer closed mid-frame"). Mirrors
/// atune::WriteFully (common/io_env.cc) exactly — same policy struct, same
/// bounds, same exhaustion semantics.
Status ReadFully(Transport* t, void* buf, size_t n,
                 const IoRetryPolicy& policy = IoRetryPolicy());

/// Writes exactly `n` bytes with the same loop as ReadFully.
Status WriteFully(Transport* t, const void* buf, size_t n,
                  const IoRetryPolicy& policy = IoRetryPolicy());

/// Transport over a connected file descriptor (socket or pipe). Blocking
/// unless the fd is O_NONBLOCK (the client uses blocking fds with a receive
/// timeout; the reactor uses nonblocking fds and its own event loop instead
/// of the Fully loops). Owns the fd.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override { (void)Close(); }

  Status Read(void* buf, size_t n, size_t* nread, bool* transient) override;
  Status Write(const void* buf, size_t n, size_t* written,
               bool* transient) override;
  void Backoff(size_t attempt) override;
  Status Close() override;

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// ---- deterministic network fault injection ---------------------------------

/// What an injected network fault does. Deterministic functions of
/// (schedule, op sequence), like IoFaultKind — a faulted exchange replays
/// bit-identically.
enum class NetFaultKind : uint8_t {
  kEintr = 0,    ///< fails with a retryable EINTR (storm via count)
  kShortRead,    ///< delivers at most half the requested bytes (min 1)
  kShortWrite,   ///< accepts at most half the buffer (min 1 byte)
  kStallTick,    ///< retryable timeout tick (stalled peer); a storm longer
                 ///< than the retry bound exhausts the caller's loop
  kDisconnect,   ///< non-transient ECONNRESET; the underlying transport is
                 ///< closed, so a mid-frame write really tears the frame
};
inline constexpr size_t kNumNetFaultKinds = 5;
const char* NetFaultKindToString(NetFaultKind kind);

/// Which direction an op rule targets.
enum class NetOpKind : uint8_t { kRead = 0, kWrite = 1 };
inline constexpr size_t kNumNetOpKinds = 2;

/// Deterministic per-op fault schedule, the network sibling of
/// IoFaultSchedule: targeted rules key on the index of the op within its
/// direction (the 3rd read, the 1st write, ...) counted from transport
/// construction; rate-based faults draw from a seeded Rng once per op.
struct NetFaultSchedule {
  struct Rule {
    NetOpKind op = NetOpKind::kWrite;
    uint64_t at = 0;  ///< 0-based index within that direction
    NetFaultKind fault = NetFaultKind::kEintr;
    uint64_t count = 1;  ///< consecutive ops affected (EINTR/stall storms)
  };
  std::vector<Rule> rules;

  uint64_t seed = 0;            ///< seeds the rate-based draws
  double eintr_rate = 0.0;      ///< P(EINTR) per op
  double short_rate = 0.0;      ///< P(short read/write) per op
  double stall_rate = 0.0;      ///< P(stall tick) per op
  double disconnect_rate = 0.0; ///< P(mid-frame disconnect) per op

  /// Convenience: one rule.
  static NetFaultSchedule Single(NetOpKind op, uint64_t at, NetFaultKind fault,
                                 uint64_t count = 1);

  /// A mixed hostile-network schedule whose per-op fault probability sums
  /// to `rate` (the bench's "15% transport-fault schedule" is FromRate(.15)):
  /// EINTR at rate/2, short ops at rate/4, stalls at rate/8, mid-frame
  /// disconnects at rate/8.
  static NetFaultSchedule FromRate(double rate, uint64_t seed);
};

/// Transport decorator injecting the schedule's faults — the network
/// sibling of FaultInjectingIoEnv. Backoff is a counted no-op so faulted
/// exchanges stay deterministic and fast. Not thread-safe (client-side and
/// test use only).
class FaultInjectingTransport : public Transport {
 public:
  /// Takes ownership of `base`.
  FaultInjectingTransport(std::unique_ptr<Transport> base,
                          NetFaultSchedule schedule);

  Status Read(void* buf, size_t n, size_t* nread, bool* transient) override;
  Status Write(const void* buf, size_t n, size_t* written,
               bool* transient) override;
  void Backoff(size_t attempt) override { backoffs_ += attempt > 0 ? 1 : 0; }
  Status Close() override { return base_->Close(); }

  uint64_t ops(NetOpKind kind) const {
    return op_counts_[static_cast<size_t>(kind)];
  }
  uint64_t injected(NetFaultKind fault) const {
    return injected_[static_cast<size_t>(fault)];
  }
  uint64_t injected_total() const;
  uint64_t backoffs() const { return backoffs_; }

 private:
  /// Advances the per-direction op counter and returns the fault (if any)
  /// the schedule assigns to this occurrence.
  bool NextFault(NetOpKind kind, NetFaultKind* fault);

  std::unique_ptr<Transport> base_;
  NetFaultSchedule schedule_;
  Rng rng_;
  uint64_t op_counts_[kNumNetOpKinds] = {};
  uint64_t injected_[kNumNetFaultKinds] = {};
  uint64_t backoffs_ = 0;
};

// ---- connect helpers --------------------------------------------------------

/// Address grammar shared by atuned, the client, and the CLI:
///   "unix:<path>"          Unix-domain stream socket (the default idiom)
///   "tcp:<host>:<port>"    IPv4 TCP (host must be a dotted quad)
/// A bare string with no prefix is treated as a unix path.
struct ParsedAddress {
  bool is_unix = true;
  std::string path;  ///< unix socket path
  std::string host;  ///< tcp host
  uint16_t port = 0;
};
Result<ParsedAddress> ParseAddress(const std::string& address);

/// Connects a blocking stream socket to `address` with a receive/send
/// timeout of `io_timeout_ms` (0 = no timeout) so a stalled peer surfaces
/// as transient timeout ticks instead of hanging forever.
Result<std::unique_ptr<Transport>> ConnectTransport(const std::string& address,
                                                    uint64_t io_timeout_ms);

/// Ignores SIGPIPE process-wide. Both atuned and atune_cli call this at
/// startup so a broken pipe (dead client, closed stdout) surfaces as EPIPE
/// through the Status path instead of killing the process mid-journal-append.
void IgnoreSigPipe();

}  // namespace atune

#endif  // ATUNE_NET_TRANSPORT_H_
