#include "net/reactor.h"

#include <errno.h>
#include <cstring>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <utility>

#include "common/string_util.h"

namespace atune {

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ok()) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
  }
}

Reactor::~Reactor() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status Reactor::Add(int fd, uint32_t events, FdCallback callback) {
  if (!ok()) return Status::FailedPrecondition("reactor failed to construct");
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IoError(StrFormat("epoll_ctl(ADD): %s",
                                     std::strerror(errno)));
  }
  fd_callbacks_[fd] = std::move(callback);
  return Status::OK();
}

Status Reactor::Modify(int fd, uint32_t events) {
  if (!ok()) return Status::FailedPrecondition("reactor failed to construct");
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IoError(StrFormat("epoll_ctl(MOD): %s",
                                     std::strerror(errno)));
  }
  return Status::OK();
}

void Reactor::Remove(int fd) {
  if (epoll_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  fd_callbacks_.erase(fd);
}

uint64_t Reactor::NowMs() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000;
}

uint64_t Reactor::AddTimer(uint64_t at_ms, std::function<void()> callback) {
  uint64_t id = next_timer_id_++;
  timers_.push(Timer{at_ms, id});
  timer_callbacks_[id] = std::move(callback);
  return id;
}

void Reactor::CancelTimer(uint64_t id) {
  // Lazy cancellation: the heap entry stays and is skipped when it pops.
  timer_callbacks_.erase(id);
}

void Reactor::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void Reactor::Stop() {
  stop_requested_ = true;
  Wake();
}

void Reactor::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void Reactor::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

int Reactor::RunTimers() {
  uint64_t now = NowMs();
  while (!timers_.empty()) {
    Timer top = timers_.top();
    auto it = timer_callbacks_.find(top.id);
    if (it == timer_callbacks_.end()) {
      timers_.pop();  // cancelled
      continue;
    }
    if (top.at_ms > now) {
      uint64_t delta = top.at_ms - now;
      return delta > 60000 ? 60000 : static_cast<int>(delta);
    }
    timers_.pop();
    std::function<void()> cb = std::move(it->second);
    timer_callbacks_.erase(it);
    cb();
    now = NowMs();
  }
  return -1;
}

void Reactor::Run() {
  if (!ok()) return;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_requested_) {
    DrainPosted();
    int timeout = RunTimers();
    if (stop_requested_) break;
    {
      // A Post that raced the drain above must not sleep a full timeout.
      std::lock_guard<std::mutex> lock(posted_mu_);
      if (!posted_.empty()) timeout = 0;
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure; Serve() observes stop
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = fd_callbacks_.find(fd);
      if (it == fd_callbacks_.end()) continue;  // removed by earlier callback
      // Copy: the callback may Remove(fd) and invalidate the iterator.
      FdCallback cb = it->second;
      cb(events[i].events);
    }
  }
  DrainPosted();
}

}  // namespace atune
