#include "net/daemon.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/file_util.h"
#include "common/logging.h"
#include "core/journal.h"
#include "core/knowledge_repo.h"
#include "core/outcome_checksum.h"
#include "core/session.h"
#include "net/transport.h"
#include "systems/multi_tenant.h"
#include "systems/system_factory.h"
#include "tuners/builtin.h"
#include "tuners/warm_start.h"

namespace atune {
namespace {

constexpr size_t kReadChunk = 64 * 1024;
constexpr int kListenBacklog = 128;
constexpr size_t kMaxErrorMessage = 512;

std::string Truncate(const std::string& s) {
  return s.size() <= kMaxErrorMessage ? s : s.substr(0, kMaxErrorMessage);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// key=value serialization for the .meta/.result sidecars. Values are
/// newline-free by construction (ids/tenants are [A-Za-z0-9._-]; numbers are
/// formatted; messages are sanitized), so one line per key is unambiguous.
std::string SanitizeLine(const std::string& s) {
  std::string out = Truncate(s);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::map<std::string, std::string> ParseKeyValueFile(const std::string& text) {
  std::map<std::string, std::string> kv;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

uint64_t ParseU64(const std::map<std::string, std::string>& kv,
                  const std::string& key, uint64_t fallback) {
  auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 0);
}

std::string GetStr(const std::map<std::string, std::string>& kv,
                   const std::string& key) {
  auto it = kv.find(key);
  return it == kv.end() ? std::string() : it->second;
}

/// Doubles travel through the sidecars as hex bit patterns, like the wire:
/// the recovery path must rebuild the *identical* session spec (the journal
/// header is compared for equality) and the result checksums are compared
/// bit-exactly by the bench gates.
uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Outcome of one tuning job, handed from the worker back to the reactor.
struct JobResult {
  Status status = Status::OK();
  SessionResult result;
};

/// Runs one tuning session on a worker thread. Everything here is built
/// deterministically from the durable StartRequest, so a restarted daemon
/// reconstructs the exact same tuner/system/workload/objective and replay
/// produces a bit-identical outcome. Always resumes: a missing journal
/// starts fresh, so one code path serves fresh, reconnected, and recovered
/// sessions alike.
JobResult RunSessionJob(const StartRequest& spec, const std::string& wal_path,
                        const TunerRegistry* registry,
                        std::shared_ptr<std::atomic<bool>> cancel,
                        const std::string& knowledge_dir,
                        const std::vector<std::string>& warm_shards) {
  JobResult job;
  auto tuner = registry->Create(spec.tuner);
  if (!tuner.ok()) {
    job.status = tuner.status();
    return job;
  }
  std::unique_ptr<Tuner> session_tuner = std::move(*tuner);
  if (spec.warm_start) {
    // The snapshot is exactly the shard list pinned at admission: shards
    // are immutable files, so fresh run, reattach, and post-restart resume
    // all map against byte-identical history (missing/corrupt shards are
    // skipped deterministically by filename).
    KnowledgeRepository repo(knowledge_dir);
    size_t skipped = 0;
    auto snapshot = repo.LoadShards(warm_shards, &skipped);
    if (skipped > 0) {
      ATUNE_LOG(Warning) << "session " << spec.session_id << ": " << skipped
                         << " pinned knowledge shard(s) unreadable, mapping "
                            "against the remainder";
    }
    session_tuner = std::make_unique<WarmStartTuner>(std::move(session_tuner),
                                                     std::move(*snapshot));
  }
  auto base = MakeSystemByName(spec.system, /*nodes=*/0, spec.seed);
  if (!base.ok()) {
    job.status = base.status();
    return job;
  }
  auto primary = WorkloadByName(spec.system, spec.workload, spec.scale);
  if (!primary.ok()) {
    job.status = primary.status();
    return job;
  }

  SessionOptions options;
  options.budget.max_evaluations = static_cast<size_t>(spec.budget);
  options.seed = spec.seed;
  options.journal_path = wal_path;
  options.journal_policy = JournalPolicy::kStrict;
  // The daemon charges exactly `budget` evaluations against the tenant's
  // quota; the out-of-budget default measurement would break that contract
  // (and is uninteresting for a service — clients compare checksums).
  options.measure_default = false;
  options.interrupt_check = [cancel]() {
    return cancel->load(std::memory_order_relaxed);
  };

  TunableSystem* system = base->get();
  Workload workload = *primary;
  std::unique_ptr<MultiTenantSystem> shared;
  if (spec.contention > 0) {
    // Multi-tenant contention substrate: this tenant's workload plus
    // `contention` background tenants cycled deterministically from the
    // system's catalog, tuned with the Tempo-style minimax SLO objective.
    std::vector<Tenant> tenants;
    tenants.push_back(Tenant{spec.tenant.empty() ? "primary" : spec.tenant,
                             workload, /*slo_seconds=*/120.0});
    auto catalog = WorkloadsForSystem(spec.system, spec.scale);
    std::vector<std::pair<std::string, Workload>> entries(catalog.begin(),
                                                          catalog.end());
    for (uint64_t i = 0; i < spec.contention; ++i) {
      const auto& entry = entries[i % entries.size()];
      tenants.push_back(Tenant{"bg_" + std::to_string(i), entry.second,
                               /*slo_seconds=*/90.0 + 30.0 * (i % 3)});
    }
    shared = std::make_unique<MultiTenantSystem>(base->get(),
                                                 std::move(tenants));
    options.objective = MakeRobustSloObjective();
    workload = MakeMultiTenantWorkload(spec.scale);
    system = shared.get();
  }

  // Resume when a journal exists (restart recovery, reattach after a
  // daemon crash); otherwise run fresh. ResumeTuningSession would handle a
  // missing journal too, but warns — and fresh sessions are the common case.
  auto outcome = FileExists(wal_path)
                     ? ResumeTuningSession(session_tuner.get(), system,
                                           workload, options)
                     : RunTuningSession(session_tuner.get(), system, workload,
                                        options);
  if (!outcome.ok()) {
    job.status = outcome.status();
    return job;
  }
  job.result.status_code = static_cast<uint8_t>(StatusCode::kOk);
  job.result.best_objective = outcome->best_objective;
  job.result.checksum = OutcomeChecksum(*outcome);
  job.result.trials = outcome->history.size();
  job.result.replayed = outcome->replayed_records;

  // Every completed session feeds the knowledge repository. Ingest is an
  // atomic publish to a per-session path, so concurrent workers never
  // contend and a crash mid-ingest leaves no torn shard; re-running the
  // same session id is an idempotent replace. Failure to ingest never
  // fails the session — the result is already computed and durable.
  if (!knowledge_dir.empty()) {
    KnowledgeRecord rec = MakeKnowledgeRecord(
        spec.session_id, spec.tenant, system->name(), system->space(),
        system->MetricNames(), workload, spec.seed, spec.budget, *outcome);
    Status ingested = KnowledgeRepository(knowledge_dir).Ingest(rec);
    if (!ingested.ok()) {
      ATUNE_LOG(Warning) << "session " << spec.session_id
                         << ": knowledge ingest failed: "
                         << ingested.ToString();
    }
  }
  return job;
}

}  // namespace

/// Per-connection state, owned by the reactor thread. `in` accumulates
/// received bytes until ExtractFrame peels complete frames off; `out`
/// buffers responses until EPOLLOUT drains them (writes happen only from
/// the event handler, so a frame handler can never free the connection it
/// is running on).
struct TuningDaemon::Conn {
  int fd = -1;
  uint64_t gen = 0;
  std::string in;
  std::string out;
  bool want_write = false;
  /// A long-poll Attach is outstanding: frame processing is deferred until
  /// it is answered (requests on one connection are strictly ordered).
  bool waiting = false;
  std::string attached_session;
  uint64_t last_activity_ms = 0;
};

TuningDaemon::TuningDaemon(DaemonOptions options)
    : options_(std::move(options)) {
  RegisterBuiltinTuners(&registry_);
}

TuningDaemon::~TuningDaemon() {
  for (auto& [fd, conn] : conns_) {
    reactor_.Remove(fd);
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    reactor_.Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (drain_fd_ >= 0) {
    reactor_.Remove(drain_fd_);
    ::close(drain_fd_);
    drain_fd_ = -1;
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

// ---- startup ----------------------------------------------------------------

Status TuningDaemon::Start() {
  if (started_) return Status::OK();
  if (!reactor_.ok()) {
    return Status::Internal("reactor construction failed (epoll/eventfd)");
  }
  if (::mkdir(options_.journal_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir(" + options_.journal_dir +
                           "): " + std::strerror(errno));
  }
  ATUNE_RETURN_IF_ERROR(BindListener());

  drain_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (drain_fd_ < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  ATUNE_RETURN_IF_ERROR(reactor_.Add(drain_fd_, EPOLLIN, [this](uint32_t) {
    uint64_t count = 0;
    while (::read(drain_fd_, &count, sizeof(count)) > 0) {
    }
    BeginDrain();
  }));
  ATUNE_RETURN_IF_ERROR(reactor_.Add(
      listen_fd_, EPOLLIN, [this](uint32_t) { OnListenerReadable(); }));

  pool_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.workers));

  if (options_.recover) ATUNE_RETURN_IF_ERROR(Recover());

  if (options_.idle_timeout_ms > 0) {
    uint64_t interval = std::max<uint64_t>(100, options_.idle_timeout_ms / 2);
    // Self-rearming reap timer.
    struct Rearm {
      TuningDaemon* daemon;
      uint64_t interval;
      void operator()() const {
        daemon->ReapIdleConns();
        if (!daemon->reactor_.stopped()) {
          daemon->reactor_.AddTimer(Reactor::NowMs() + interval, Rearm{*this});
        }
      }
    };
    reactor_.AddTimer(Reactor::NowMs() + interval,
                      Rearm{this, interval});
  }

  started_ = true;
  ATUNE_LOG(Info) << "atuned listening on " << bound_address_ << " ("
                  << options_.workers << " workers, queue "
                  << options_.max_queue << ", quota "
                  << options_.tenant_budget_quota << ")";
  DispatchQueued();
  return Status::OK();
}

Status TuningDaemon::BindListener() {
  ATUNE_ASSIGN_OR_RETURN(ParsedAddress addr, ParseAddress(options_.listen));
  if (addr.is_unix) {
    struct sockaddr_un sun;
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sun.sun_path)) {
      return Status::InvalidArgument("unix path too long: " + addr.path);
    }
    std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size() + 1);
    ::unlink(addr.path.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&sun), sizeof(sun)) !=
        0) {
      Status status = Status::IoError("bind(" + addr.path +
                                      "): " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (::listen(fd, kListenBacklog) != 0) {
      Status status =
          Status::IoError(std::string("listen: ") + std::strerror(errno));
      ::close(fd);
      return status;
    }
    listen_fd_ = fd;
    unix_path_ = addr.path;
    bound_address_ = "unix:" + addr.path;
    return Status::OK();
  }

  struct sockaddr_in sin;
  std::memset(&sin, 0, sizeof(sin));
  sin.sin_family = AF_INET;
  sin.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sin.sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp host: " + addr.host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&sin), sizeof(sin)) != 0) {
    Status status = Status::IoError("bind(" + options_.listen +
                                    "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, kListenBacklog) != 0) {
    Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len);
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
  listen_fd_ = fd;
  bound_address_ =
      "tcp:" + std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));
  return Status::OK();
}

Status TuningDaemon::Serve() {
  ATUNE_RETURN_IF_ERROR(Start());
  reactor_.Run();
  // Drain finished: every worker job has posted its completion (active_ is
  // only decremented on the loop thread), so the pool is idle.
  pool_->Shutdown();
  ATUNE_LOG(Info) << "atuned drained: " << stats_.completed << " done, "
                  << stats_.failed << " failed, " << stats_.cancelled
                  << " cancelled, " << stats_.deadline_exceeded
                  << " deadline-exceeded";
  return Status::OK();
}

void TuningDaemon::RequestDrain() {
  if (drain_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t rc = ::write(drain_fd_, &one, sizeof(one));
    (void)rc;
  } else {
    reactor_.Post([this]() { BeginDrain(); });
  }
}

// ---- recovery ---------------------------------------------------------------

std::string TuningDaemon::MetaPath(const std::string& id) const {
  return options_.journal_dir + "/" + id + ".meta";
}
std::string TuningDaemon::WalPath(const std::string& id) const {
  return options_.journal_dir + "/" + id + ".wal";
}
std::string TuningDaemon::ResultPath(const std::string& id) const {
  return options_.journal_dir + "/" + id + ".result";
}
std::string TuningDaemon::KnowledgeDir() const {
  return options_.knowledge_dir.empty()
             ? options_.journal_dir + "/knowledge"
             : options_.knowledge_dir;
}

Status TuningDaemon::WriteMeta(
    const std::string& id, const StartRequest& spec,
    const std::vector<std::string>& warm_shards,
    uint64_t resume_attempts) const {
  std::ostringstream out;
  out << "tenant=" << SanitizeLine(spec.tenant) << "\n"
      << "tuner=" << SanitizeLine(spec.tuner) << "\n"
      << "system=" << SanitizeLine(spec.system) << "\n"
      << "workload=" << SanitizeLine(spec.workload) << "\n"
      << "scale_bits=0x" << std::hex << DoubleBits(spec.scale) << std::dec
      << "\n"
      << "budget=" << spec.budget << "\n"
      << "seed=" << spec.seed << "\n"
      << "deadline_ms=" << spec.deadline_ms << "\n"
      << "contention=" << spec.contention << "\n"
      << "warm_start=" << (spec.warm_start ? 1 : 0) << "\n"
      << "resume_attempts=" << resume_attempts << "\n";
  if (!warm_shards.empty()) {
    // Shard filenames are [A-Za-z0-9._-] by construction, so the comma
    // join is unambiguous.
    out << "warm_shards=";
    for (size_t i = 0; i < warm_shards.size(); ++i) {
      if (i > 0) out << ",";
      out << warm_shards[i];
    }
    out << "\n";
  }
  return AtomicWriteFile(MetaPath(id), out.str());
}

Status TuningDaemon::WriteResult(const std::string& id,
                                 const SessionEntry& entry) const {
  std::ostringstream out;
  out << "state=" << static_cast<int>(entry.state) << "\n"
      << "status_code=" << static_cast<int>(entry.result.status_code) << "\n"
      << "message=" << SanitizeLine(entry.result.message) << "\n"
      << "best_objective_bits=0x" << std::hex
      << DoubleBits(entry.result.best_objective) << "\n"
      << "checksum=0x" << entry.result.checksum << std::dec << "\n"
      << "trials=" << entry.result.trials << "\n"
      << "replayed=" << entry.result.replayed << "\n";
  return AtomicWriteFile(ResultPath(id), out.str());
}

Status TuningDaemon::Recover() {
  DIR* dir = ::opendir(options_.journal_dir.c_str());
  if (dir == nullptr) {
    return Status::IoError("opendir(" + options_.journal_dir +
                           "): " + std::strerror(errno));
  }
  std::vector<std::string> ids;
  while (struct dirent* ent = ::readdir(dir)) {
    std::string name = ent->d_name;
    constexpr const char kSuffix[] = ".meta";
    constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
    if (name.size() <= kSuffixLen ||
        name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
      continue;
    }
    ids.push_back(name.substr(0, name.size() - kSuffixLen));
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());

  for (const std::string& id : ids) {
    if (!ValidSessionId(id)) continue;
    std::string text;
    Status status = ReadFileToString(MetaPath(id), &text);
    if (!status.ok()) {
      ATUNE_LOG(Warning) << "recovery: skipping " << id << ": "
                         << status.ToString();
      continue;
    }
    auto kv = ParseKeyValueFile(text);
    StartRequest spec;
    spec.session_id = id;
    spec.tenant = GetStr(kv, "tenant");
    spec.tuner = GetStr(kv, "tuner");
    spec.system = GetStr(kv, "system");
    spec.workload = GetStr(kv, "workload");
    spec.scale = BitsToDouble(ParseU64(kv, "scale_bits", DoubleBits(1.0)));
    spec.budget = ParseU64(kv, "budget", 30);
    spec.seed = ParseU64(kv, "seed", 1);
    spec.deadline_ms = ParseU64(kv, "deadline_ms", 0);
    spec.contention = ParseU64(kv, "contention", 0);
    spec.warm_start = ParseU64(kv, "warm_start", 0) != 0;

    SessionEntry& entry = sessions_[id];
    entry.spec = spec;
    entry.cancel = std::make_shared<std::atomic<bool>>(false);
    // Re-pin the admission-time shard list: resume must map against the
    // exact snapshot the interrupted run used, not today's repository.
    std::string shards = GetStr(kv, "warm_shards");
    size_t start = 0;
    while (start < shards.size()) {
      size_t comma = shards.find(',', start);
      if (comma == std::string::npos) comma = shards.size();
      if (comma > start) {
        entry.warm_shards.push_back(shards.substr(start, comma - start));
      }
      start = comma + 1;
    }

    std::string result_text;
    if (ReadFileToString(ResultPath(id), &result_text).ok()) {
      // Terminal before the restart: load the durable result so reattaching
      // clients get the same answer; nothing to re-run.
      auto rkv = ParseKeyValueFile(result_text);
      entry.state = static_cast<SessionState>(ParseU64(rkv, "state", 0));
      if (!SessionStateTerminal(entry.state)) entry.state = SessionState::kFailed;
      entry.result.status_code =
          static_cast<uint8_t>(ParseU64(rkv, "status_code", 0));
      entry.result.message = GetStr(rkv, "message");
      entry.result.best_objective =
          BitsToDouble(ParseU64(rkv, "best_objective_bits", 0));
      entry.result.checksum = ParseU64(rkv, "checksum", 0);
      entry.result.trials = ParseU64(rkv, "trials", 0);
      entry.result.replayed = ParseU64(rkv, "replayed", 0);
      continue;
    }

    // Interrupted (or admitted-but-never-run). A session that was already
    // re-queued max_resume_attempts times and still never reached a durable
    // result is a crash-looper — deterministically killing the daemon (or
    // the machine) every time it runs. Quarantine it: terminal kFailed with
    // kInternal and a durable .result, so restarts stop re-running it and
    // reattaching clients get a clean error; the daemon stays up for
    // everyone else. Operators can clear the .result (and .meta counter)
    // to retry after a fix.
    const uint64_t attempts = ParseU64(kv, "resume_attempts", 0);
    if (options_.max_resume_attempts > 0 &&
        attempts >= options_.max_resume_attempts) {
      entry.state = SessionState::kFailed;
      entry.result.status_code = static_cast<uint8_t>(StatusCode::kInternal);
      entry.result.message =
          "quarantined: " + std::to_string(attempts) +
          " resume attempts without a durable result (crash loop)";
      stats_.quarantined++;
      Status written = WriteResult(id, entry);
      if (!written.ok()) {
        ATUNE_LOG(Warning) << "recovery: quarantine result for " << id
                           << " not durable: " << written.ToString();
      }
      ATUNE_LOG(Warning) << "recovery: quarantined session " << id
                         << " after " << attempts << " failed resume attempts";
      continue;
    }
    // Persist the incremented attempt counter BEFORE the session can run
    // again: if this run also takes the daemon down, the next restart sees
    // the attempt. A failed rewrite is not fatal — the session still
    // resumes, the counter just does not advance on a hostile filesystem.
    Status counted = WriteMeta(id, spec, entry.warm_shards, attempts + 1);
    if (!counted.ok()) {
      ATUNE_LOG(Warning) << "recovery: resume-attempt counter for " << id
                         << " not durable: " << counted.ToString();
    }
    entry.state = SessionState::kQueued;
    entry.resume = FileExists(WalPath(id));
    stats_.recovered++;
    EnqueueSession(id);
    ATUNE_LOG(Info) << "recovery: re-queued session " << id << " (attempt "
                    << (attempts + 1) << ")"
                    << (entry.resume ? " (journal present, will resume)"
                                     : " (no journal, fresh start)");
  }
  return Status::OK();
}

// ---- connections ------------------------------------------------------------

void TuningDaemon::OnListenerReadable() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: wait for next event
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->gen = next_conn_gen_++;
    conn->last_activity_ms = Reactor::NowMs();
    Status status = reactor_.Add(
        fd, EPOLLIN, [this, fd](uint32_t ev) { OnConnEvent(fd, ev); });
    if (!status.ok()) {
      ::close(fd);
      continue;
    }
    conns_[fd] = std::move(conn);
  }
}

void TuningDaemon::OnConnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    DestroyConn(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushConn(conn);
    it = conns_.find(fd);
    if (it == conns_.end()) return;
    conn = it->second.get();
  }
  if ((events & EPOLLIN) != 0) {
    char buf[kReadChunk];
    while (true) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        conn->last_activity_ms = Reactor::NowMs();
        if (static_cast<size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {  // peer closed; any buffered partial frame dies with it
        DestroyConn(fd);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      DestroyConn(fd);
      return;
    }
    ProcessConn(conn);
  }
}

void TuningDaemon::ProcessConn(Conn* conn) {
  // Peel complete frames. A long-poll Attach pauses processing (`waiting`)
  // until its response is sent; remaining buffered frames keep their order.
  while (!conn->waiting && !conn->in.empty()) {
    std::string payload;
    size_t consumed = 0;
    Status status =
        ExtractFrame(conn->in.data(), conn->in.size(), &payload, &consumed);
    if (!status.ok()) {
      // Framing violated (oversize/CRC): nothing later on this stream can
      // be trusted — drop the connection. Sessions are unaffected.
      ATUNE_LOG(Warning) << "dropping connection: " << status.message();
      DestroyConn(conn->fd);
      return;
    }
    if (consumed == 0) return;  // incomplete frame: wait for more bytes
    conn->in.erase(0, consumed);
    if (!HandleFrame(conn, payload)) return;  // connection destroyed
  }
}

bool TuningDaemon::HandleFrame(Conn* conn, const std::string& payload) {
  auto type = PeekType(payload);
  if (!type.ok()) {
    // Well-framed but unknown type: the stream is fine, the request is not.
    ErrorResponse err;
    err.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
    err.message = Truncate(type.status().message());
    SendPayload(conn, EncodeErrorResponse(err));
    return true;
  }
  switch (*type) {
    case MsgType::kPingReq:
      SendPayload(conn, EncodePong());
      return true;
    case MsgType::kStartReq: {
      auto req = ParseStartRequest(payload);
      if (!req.ok()) break;
      HandleStart(conn, *req);
      return true;
    }
    case MsgType::kAttachReq: {
      auto req = ParseAttachRequest(payload);
      if (!req.ok()) break;
      HandleAttach(conn, *req);
      return true;
    }
    case MsgType::kCancelReq: {
      auto req = ParseCancelRequest(payload);
      if (!req.ok()) break;
      HandleCancel(conn, *req);
      return true;
    }
    case MsgType::kStatsReq: {
      StatsResponse stats = stats_;
      stats.active = active_;
      stats.queued = queue_.size();
      SendPayload(conn, EncodeStatsResponse(stats));
      return true;
    }
    default: {
      ErrorResponse err;
      err.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
      err.message = "unexpected message type";
      SendPayload(conn, EncodeErrorResponse(err));
      return true;
    }
  }
  // A well-framed payload whose body does not parse means the sender's
  // serializer disagrees with ours — framing can no longer be trusted.
  ATUNE_LOG(Warning) << "dropping connection: malformed message body";
  DestroyConn(conn->fd);
  return false;
}

void TuningDaemon::SendPayload(Conn* conn, const std::string& payload) {
  AppendFrame(payload, &conn->out);
  conn->last_activity_ms = Reactor::NowMs();
  if (!conn->want_write) {
    conn->want_write = true;
    // Level-triggered EPOLLOUT fires on the next loop iteration while the
    // socket is writable; all writes happen in the event handler so frame
    // handlers never have to survive their own connection being torn down.
    (void)reactor_.Modify(conn->fd, EPOLLIN | EPOLLOUT);
  }
}

void TuningDaemon::FlushConn(Conn* conn) {
  while (!conn->out.empty()) {
    ssize_t n = ::send(conn->fd, conn->out.data(), conn->out.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      conn->last_activity_ms = Reactor::NowMs();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    DestroyConn(conn->fd);  // EPIPE/ECONNRESET: peer is gone
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    (void)reactor_.Modify(conn->fd, EPOLLIN);
  }
}

void TuningDaemon::DestroyConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  if (conn->waiting && !conn->attached_session.empty()) {
    auto sit = sessions_.find(conn->attached_session);
    if (sit != sessions_.end()) {
      auto& waiters = sit->second.waiters;
      for (size_t i = 0; i < waiters.size(); ++i) {
        if (waiters[i].fd == fd && waiters[i].conn_gen == conn->gen) {
          reactor_.CancelTimer(waiters[i].timer_id);
          waiters.erase(waiters.begin() + i);
          break;
        }
      }
    }
  }
  reactor_.Remove(fd);
  ::close(fd);
  conns_.erase(it);
}

void TuningDaemon::ReapIdleConns() {
  if (options_.idle_timeout_ms == 0) return;
  uint64_t now = Reactor::NowMs();
  std::vector<int> stale;
  for (auto& [fd, conn] : conns_) {
    // Only peers stuck mid-exchange are reaped: unread request bytes (half
    // a frame then silence) or undeliverable response bytes. An idle but
    // clean connection — including a parked long-poll — costs nothing and
    // is left alone.
    bool mid_exchange = !conn->in.empty() || !conn->out.empty();
    if (mid_exchange && now - conn->last_activity_ms > options_.idle_timeout_ms) {
      stale.push_back(fd);
    }
  }
  for (int fd : stale) {
    ATUNE_LOG(Info) << "reaping stalled connection (fd " << fd << ")";
    DestroyConn(fd);
  }
}

// ---- admission & sessions ---------------------------------------------------

void TuningDaemon::HandleStart(Conn* conn, const StartRequest& req) {
  // Validate before admitting: bad ids/names are the *request's* fault
  // (kErrorResp), not a shed.
  std::string error;
  if (!ValidSessionId(req.session_id)) {
    error = "invalid session id (want [A-Za-z0-9._-], <= 128 chars)";
  } else if (!req.tenant.empty() && !ValidSessionId(req.tenant)) {
    error = "invalid tenant name (want [A-Za-z0-9._-], <= 128 chars)";
  } else if (!registry_.Contains(req.tuner)) {
    error = "unknown tuner '" + req.tuner + "'";
  } else if (req.budget == 0) {
    error = "budget must be positive";
  } else {
    auto system = MakeSystemByName(req.system, 0, req.seed);
    if (!system.ok()) {
      error = system.status().message();
    } else {
      auto workload = WorkloadByName(req.system, req.workload, req.scale);
      if (!workload.ok()) error = workload.status().message();
    }
  }
  if (!error.empty()) {
    ErrorResponse err;
    err.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
    err.message = Truncate(error);
    SendPayload(conn, EncodeErrorResponse(err));
    return;
  }

  StartResponse resp;

  auto existing = sessions_.find(req.session_id);
  if (existing != sessions_.end()) {
    // Idempotent re-submit (client retry after a torn connection): report
    // the session's current state; never double-start.
    stats_.reattached++;
    resp.code = AdmitCode::kAlreadyExists;
    resp.state = existing->second.state;
    SendPayload(conn, EncodeStartResponse(resp));
    return;
  }

  uint64_t retry_after = 0;
  AdmitCode code = Admit(req, &retry_after);
  resp.code = code;
  resp.retry_after_ms = retry_after;
  if (code != AdmitCode::kAccepted) {
    SendPayload(conn, EncodeStartResponse(resp));
    return;
  }

  // Warm-start snapshot pinning: the shard list is frozen at admission and
  // persisted with the meta, so however often this session is resumed it
  // maps against the same immutable files.
  std::vector<std::string> warm_shards;
  if (req.warm_start) {
    warm_shards = KnowledgeRepository(KnowledgeDir()).ListShards();
  }

  // Durable admission: the meta sidecar is on disk *before* the client
  // hears "accepted", so an accepted session survives any daemon crash.
  Status status = WriteMeta(req.session_id, req, warm_shards);
  if (!status.ok()) {
    ErrorResponse err;
    err.status_code = static_cast<uint8_t>(status.code());
    err.message = Truncate(status.message());
    SendPayload(conn, EncodeErrorResponse(err));
    return;
  }

  SessionEntry& entry = sessions_[req.session_id];
  entry.spec = req;
  entry.state = SessionState::kQueued;
  entry.cancel = std::make_shared<std::atomic<bool>>(false);
  entry.warm_shards = std::move(warm_shards);
  stats_.admitted++;
  EnqueueSession(req.session_id);
  DispatchQueued();
  resp.state = sessions_[req.session_id].state;
  SendPayload(conn, EncodeStartResponse(resp));
}

AdmitCode TuningDaemon::Admit(const StartRequest& req,
                              uint64_t* retry_after_ms) {
  *retry_after_ms = options_.retry_after_ms;
  if (draining_) {
    stats_.shed_draining++;
    return AdmitCode::kDraining;
  }
  if (queue_.size() >= options_.max_queue) {
    stats_.shed_queue_full++;
    return AdmitCode::kShedQueueFull;
  }
  double inflight = 0.0;
  auto it = tenant_inflight_budget_.find(req.tenant);
  if (it != tenant_inflight_budget_.end()) inflight = it->second;
  if (inflight + static_cast<double>(req.budget) >
      options_.tenant_budget_quota) {
    stats_.shed_tenant_quota++;
    return AdmitCode::kShedTenantQuota;
  }
  *retry_after_ms = 0;
  return AdmitCode::kAccepted;
}

void TuningDaemon::EnqueueSession(const std::string& id) {
  SessionEntry& entry = sessions_[id];
  tenant_inflight_budget_[entry.spec.tenant] +=
      static_cast<double>(entry.spec.budget);
  queue_.push_back(id);
  ArmDeadline(id, &entry);
}

void TuningDaemon::ArmDeadline(const std::string& id, SessionEntry* entry) {
  if (entry->spec.deadline_ms == 0) return;
  // The deadline clock starts at admission and covers queue wait too: a
  // session that never reaches a worker before its deadline is answered
  // kDeadlineExceeded just like one cancelled mid-run. (After a restart the
  // full deadline is re-armed from recovery time.)
  entry->deadline_timer = reactor_.AddTimer(
      Reactor::NowMs() + entry->spec.deadline_ms, [this, id]() {
        auto it = sessions_.find(id);
        if (it == sessions_.end()) return;
        SessionEntry& entry = it->second;
        entry.deadline_timer = 0;
        if (SessionStateTerminal(entry.state)) return;
        if (entry.state == SessionState::kQueued) {
          queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                       queue_.end());
          entry.cancel_reason = CancelReason::kDeadline;
          entry.result.status_code = static_cast<uint8_t>(StatusCode::kAborted);
          entry.result.message = "deadline exceeded before start";
          stats_.deadline_exceeded++;
          FinishSession(&entry, id, SessionState::kDeadlineExceeded);
          MaybeFinishDrain();
          return;
        }
        // Running: flag the worker; the session aborts at its next
        // evaluation boundary with the checkpoint journaled, and
        // OnSessionDone maps the kAborted by this reason.
        entry.cancel_reason = CancelReason::kDeadline;
        entry.cancel->store(true, std::memory_order_relaxed);
      });
}

void TuningDaemon::DispatchQueued() {
  while (active_ < std::max<size_t>(1, options_.workers) && !queue_.empty()) {
    std::string id = queue_.front();
    queue_.pop_front();
    SessionEntry& entry = sessions_[id];
    entry.state = SessionState::kRunning;
    active_++;
    StartRequest spec = entry.spec;
    std::string wal = WalPath(id);
    auto cancel = entry.cancel;
    std::string knowledge = KnowledgeDir();
    std::vector<std::string> shards = entry.warm_shards;
    const TunerRegistry* registry = &registry_;
    Reactor* reactor = &reactor_;
    TuningDaemon* daemon = this;
    (void)pool_->Submit([daemon, reactor, registry, spec, wal, cancel, id,
                         knowledge, shards]() {
      JobResult job =
          RunSessionJob(spec, wal, registry, cancel, knowledge, shards);
      reactor->Post([daemon, id, job]() {
        daemon->OnSessionDone(id, job.status, job.result);
      });
    });
  }
}

void TuningDaemon::OnSessionDone(const std::string& id, Status status,
                                 SessionResult result) {
  active_--;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    DispatchQueued();
    MaybeFinishDrain();
    return;
  }
  SessionEntry& entry = it->second;
  if (entry.deadline_timer != 0) {
    reactor_.CancelTimer(entry.deadline_timer);
    entry.deadline_timer = 0;
  }

  SessionState state;
  if (status.ok()) {
    state = SessionState::kDone;
    entry.result = result;
    stats_.completed++;
  } else if (status.code() == StatusCode::kAborted) {
    entry.result.status_code = static_cast<uint8_t>(status.code());
    entry.result.message = Truncate(status.message());
    switch (entry.cancel_reason) {
      case CancelReason::kDeadline:
        state = SessionState::kDeadlineExceeded;
        stats_.deadline_exceeded++;
        break;
      case CancelReason::kClient:
        state = SessionState::kCancelled;
        stats_.cancelled++;
        break;
      default:
        // Drain (or an abort nobody asked for): the journal holds the
        // checkpoint; no .result file is written so a restart resumes it.
        state = SessionState::kInterrupted;
        break;
    }
  } else {
    state = SessionState::kFailed;
    entry.result.status_code = static_cast<uint8_t>(status.code());
    entry.result.message = Truncate(status.message());
    stats_.failed++;
  }

  FinishSession(&entry, id, state);
  DispatchQueued();
  MaybeFinishDrain();
}

void TuningDaemon::FinishSession(SessionEntry* entry, const std::string& id,
                                 SessionState state) {
  entry->state = state;
  if (entry->deadline_timer != 0) {
    reactor_.CancelTimer(entry->deadline_timer);
    entry->deadline_timer = 0;
  }
  auto it = tenant_inflight_budget_.find(entry->spec.tenant);
  if (it != tenant_inflight_budget_.end()) {
    it->second -= static_cast<double>(entry->spec.budget);
    if (it->second <= 0.0) tenant_inflight_budget_.erase(it);
  }
  if (state != SessionState::kInterrupted) {
    // kInterrupted deliberately leaves no .result sidecar: meta + journal
    // with no result is exactly what recovery re-queues.
    Status status = WriteResult(id, *entry);
    if (!status.ok()) {
      ATUNE_LOG(Warning) << "failed to persist result for " << id << ": "
                         << status.ToString();
    }
  }
  NotifyWaiters(id, entry);
}

AttachResponse TuningDaemon::MakeAttachResponse(
    const SessionEntry& entry) const {
  AttachResponse resp;
  resp.state = entry.state;
  if (SessionStateTerminal(entry.state)) resp.result = entry.result;
  return resp;
}

void TuningDaemon::NotifyWaiters(const std::string& id, SessionEntry* entry) {
  (void)id;
  if (entry->waiters.empty()) return;
  std::vector<Waiter> waiters;
  waiters.swap(entry->waiters);
  for (const Waiter& w : waiters) {
    reactor_.CancelTimer(w.timer_id);
    auto it = conns_.find(w.fd);
    if (it == conns_.end() || it->second->gen != w.conn_gen) continue;
    Conn* conn = it->second.get();
    conn->waiting = false;
    conn->attached_session.clear();
    SendPayload(conn, EncodeAttachResponse(MakeAttachResponse(*entry)));
    ProcessConn(conn);  // resume any frames buffered behind the long-poll
  }
}

void TuningDaemon::HandleAttach(Conn* conn, const AttachRequest& req) {
  auto it = sessions_.find(req.session_id);
  if (it == sessions_.end()) {
    AttachResponse resp;
    resp.state = SessionState::kUnknown;
    SendPayload(conn, EncodeAttachResponse(resp));
    return;
  }
  SessionEntry& entry = it->second;
  if (SessionStateTerminal(entry.state) || req.wait_ms == 0) {
    SendPayload(conn, EncodeAttachResponse(MakeAttachResponse(entry)));
    return;
  }
  // Long-poll: park the request until the session reaches a terminal state
  // or the per-request deadline fires, whichever is first.
  uint64_t wait = std::min<uint64_t>(req.wait_ms, options_.max_wait_ms);
  int fd = conn->fd;
  uint64_t gen = conn->gen;
  std::string id = req.session_id;
  uint64_t timer = reactor_.AddTimer(
      Reactor::NowMs() + wait, [this, fd, gen, id]() {
        auto sit = sessions_.find(id);
        auto cit = conns_.find(fd);
        if (cit == conns_.end() || cit->second->gen != gen) {
          // Connection replaced/destroyed; waiter entry (if any) will be
          // scrubbed with it.
          return;
        }
        Conn* waiter_conn = cit->second.get();
        if (sit != sessions_.end()) {
          auto& waiters = sit->second.waiters;
          for (size_t i = 0; i < waiters.size(); ++i) {
            if (waiters[i].fd == fd && waiters[i].conn_gen == gen) {
              waiters.erase(waiters.begin() + i);
              break;
            }
          }
        }
        waiter_conn->waiting = false;
        waiter_conn->attached_session.clear();
        // Per-request deadline expired: answer with the *current* state
        // (non-terminal); the client may re-attach.
        AttachResponse resp;
        resp.state = sit == sessions_.end() ? SessionState::kUnknown
                                            : sit->second.state;
        SendPayload(waiter_conn, EncodeAttachResponse(resp));
        ProcessConn(waiter_conn);
      });
  conn->waiting = true;
  conn->attached_session = id;
  entry.waiters.push_back(Waiter{fd, gen, timer});
}

void TuningDaemon::HandleCancel(Conn* conn, const CancelRequest& req) {
  CancelResponse resp;
  auto it = sessions_.find(req.session_id);
  if (it == sessions_.end()) {
    SendPayload(conn, EncodeCancelResponse(resp));
    return;
  }
  resp.found = true;
  SessionEntry& entry = it->second;
  if (SessionStateTerminal(entry.state)) {
    SendPayload(conn, EncodeCancelResponse(resp));
    return;
  }
  if (entry.state == SessionState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), req.session_id),
                 queue_.end());
    entry.cancel_reason = CancelReason::kClient;
    entry.result.status_code = static_cast<uint8_t>(StatusCode::kAborted);
    entry.result.message = "cancelled before start";
    stats_.cancelled++;
    FinishSession(&entry, req.session_id, SessionState::kCancelled);
    MaybeFinishDrain();
  } else {
    entry.cancel_reason = CancelReason::kClient;
    entry.cancel->store(true, std::memory_order_relaxed);
  }
  SendPayload(conn, EncodeCancelResponse(resp));
}

// ---- drain ------------------------------------------------------------------

void TuningDaemon::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  ATUNE_LOG(Info) << "drain requested: " << queue_.size() << " queued, "
                  << active_ << " running";
  // Queued sessions never started: leave meta (+ any recovered journal) in
  // place and mark them interrupted — the next daemon picks them up.
  std::deque<std::string> queued;
  queued.swap(queue_);
  for (const std::string& id : queued) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    it->second.cancel_reason = CancelReason::kDrain;
    FinishSession(&it->second, id, SessionState::kInterrupted);
  }
  // Running sessions checkpoint at their next evaluation boundary.
  for (auto& [id, entry] : sessions_) {
    if (entry.state == SessionState::kRunning) {
      entry.cancel_reason = CancelReason::kDrain;
      entry.cancel->store(true, std::memory_order_relaxed);
    }
  }
  MaybeFinishDrain();
}

void TuningDaemon::MaybeFinishDrain() {
  if (!draining_ || active_ != 0 || !queue_.empty()) return;
  ATUNE_LOG(Info) << "drain complete";
  reactor_.Stop();
}

}  // namespace atune
