#ifndef ATUNE_NET_CLIENT_H_
#define ATUNE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/io_env.h"  // IoRetryPolicy: shared retry/backoff bounds
#include "common/status.h"
#include "net/transport.h"
#include "net/wire.h"

namespace atune {

/// Client for the atuned wire protocol (DESIGN.md §13). One synchronous
/// request/response exchange at a time; every request is idempotent at the
/// protocol level (StartSession by client-chosen session id, Attach/Cancel/
/// Stats by nature), so the client retries any exchange that dies on a torn
/// connection with bounded exponential backoff and a fresh connection —
/// after a reconnect a retried StartSession simply *reattaches*
/// (kAlreadyExists), it never double-starts a session.
///
/// Not thread-safe: one TuningClient per thread.
class TuningClient {
 public:
  struct Options {
    /// "unix:<path>" or "tcp:<host>:<port>" (see ParseAddress).
    std::string address;
    /// Socket receive/send timeout: a stalled daemon surfaces as transient
    /// timeout ticks bounded by `retry`, not a hang. 0 = no timeout.
    uint64_t io_timeout_ms = 10000;
    /// Retry/backoff bounds for connects, reconnects, and full exchanges —
    /// the SAME policy struct (and defaults) as the filesystem seam's
    /// WriteFully and the transport's ReadFully/WriteFully.
    IoRetryPolicy retry;
    /// Deterministic transport fault injection (tests and bench_service):
    /// every connection is wrapped in a FaultInjectingTransport running
    /// `faults` with the seed perturbed by the connection ordinal, so
    /// reconnects see different (but reproducible) fault positions.
    bool inject_faults = false;
    NetFaultSchedule faults;
  };

  explicit TuningClient(Options options) : options_(std::move(options)) {}
  ~TuningClient() { Disconnect(); }
  TuningClient(const TuningClient&) = delete;
  TuningClient& operator=(const TuningClient&) = delete;

  Status Ping();

  /// Submits a session. kAccepted and kAlreadyExists are both success (the
  /// latter means an earlier attempt already landed); shed codes come back
  /// in the response for the caller's retry loop (RetryStart below).
  Result<StartResponse> StartSession(const StartRequest& request);

  /// StartSession with shed handling: on kShedQueueFull/kShedTenantQuota
  /// the client sleeps the server's retry_after_ms hint (bounded
  /// exponential on repeat sheds) and resubmits, up to `max_attempts`.
  /// kDraining is returned to the caller immediately (this daemon is going
  /// away; retrying at it is pointless).
  Result<StartResponse> RetryStart(const StartRequest& request,
                                   size_t max_attempts = 16);

  /// Polls a session. wait_ms > 0 long-polls on the server.
  Result<AttachResponse> Attach(const std::string& session_id,
                                uint64_t wait_ms);

  /// Long-polls until the session is terminal or `overall_timeout_ms`
  /// elapses (0 = wait forever). A non-terminal state in the returned
  /// response means the timeout fired first.
  Result<AttachResponse> AwaitResult(const std::string& session_id,
                                     uint64_t overall_timeout_ms,
                                     uint64_t poll_ms = 2000);

  Result<CancelResponse> Cancel(const std::string& session_id);
  Result<StatsResponse> Stats();

  /// Connections opened over this client's lifetime (reconnect visibility).
  uint64_t connects() const { return connects_; }
  /// Exchanges that died on a torn connection and were retried.
  uint64_t retried_exchanges() const { return retried_exchanges_; }

 private:
  Status EnsureConnected();
  void Disconnect();
  /// One framed request/response over the current connection (no retry).
  Result<std::string> Exchange(const std::string& payload);
  /// Exchange with bounded reconnect-and-retry; `payload` must be
  /// idempotent (every protocol request is).
  Result<std::string> Call(const std::string& payload);

  Options options_;
  std::unique_ptr<Transport> transport_;
  uint64_t connects_ = 0;
  uint64_t retried_exchanges_ = 0;
};

}  // namespace atune

#endif  // ATUNE_NET_CLIENT_H_
