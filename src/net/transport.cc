#include "net/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <signal.h>
#include <cstring>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace atune {
namespace {

Status Errno(const char* op) {
  return Status::IoError(StrFormat("%s: %s", op, std::strerror(errno)));
}

/// The one retry loop, shared by ReadFully and WriteFully: `step` performs
/// one attempt over the not-yet-moved suffix and reports (moved, transient,
/// status). Bounds and exhaustion semantics mirror atune::WriteFully in
/// common/io_env.cc — the policy struct IS the shared constant set.
template <typename Step>
Status FullyLoop(Transport* t, size_t n, const IoRetryPolicy& policy,
                 const char* what, Step step) {
  size_t done = 0;
  size_t attempts = 0;
  const size_t max_attempts = std::max<size_t>(1, policy.max_attempts);
  while (done < n) {
    size_t moved = 0;
    bool transient = false;
    Status status = step(done, &moved, &transient);
    if (status.ok() && moved > 0) {
      done += moved;
      attempts = 0;  // progress resets the retry budget
      continue;
    }
    if (status.ok()) {
      // Zero bytes without an error: EOF on read, a no-progress write.
      // Neither is retryable — the peer is gone or the socket is broken.
      return Status::IoError(StrFormat("%s: peer closed mid-frame after "
                                       "%zu/%zu bytes",
                                       what, done, n));
    }
    if (!transient) return status;
    ++attempts;
    if (attempts >= max_attempts) {
      return Status::IoError(
          StrFormat("%s failed after %zu transient-error retries: %s", what,
                    attempts, status.message().c_str()));
    }
    t->Backoff(attempts);
  }
  return Status::OK();
}

}  // namespace

Status ReadFully(Transport* t, void* buf, size_t n,
                 const IoRetryPolicy& policy) {
  char* p = static_cast<char*>(buf);
  return FullyLoop(t, n, policy, "read",
                   [t, p, n](size_t done, size_t* moved, bool* transient) {
                     return t->Read(p + done, n - done, moved, transient);
                   });
}

Status WriteFully(Transport* t, const void* buf, size_t n,
                  const IoRetryPolicy& policy) {
  const char* p = static_cast<const char*>(buf);
  return FullyLoop(t, n, policy, "write",
                   [t, p, n](size_t done, size_t* moved, bool* transient) {
                     return t->Write(p + done, n - done, moved, transient);
                   });
}

// ---- FdTransport ------------------------------------------------------------

Status FdTransport::Read(void* buf, size_t n, size_t* nread, bool* transient) {
  *nread = 0;
  *transient = false;
  if (fd_ < 0) return Status::IoError("read on closed transport");
  ssize_t r = ::read(fd_, buf, n);
  if (r >= 0) {
    *nread = static_cast<size_t>(r);
    return Status::OK();  // r == 0 is EOF
  }
  // EAGAIN on a blocking socket means the receive timeout fired: a stalled
  // peer. One tick is transient; a storm longer than the retry bound
  // exhausts the caller's loop — exactly the bounded-patience contract.
  *transient = errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
  return Errno("read");
}

Status FdTransport::Write(const void* buf, size_t n, size_t* written,
                          bool* transient) {
  *written = 0;
  *transient = false;
  if (fd_ < 0) return Status::IoError("write on closed transport");
  ssize_t r = ::write(fd_, buf, n);
  if (r >= 0) {
    *written = static_cast<size_t>(r);
    return Status::OK();
  }
  *transient = errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
  return Errno("write");
}

void FdTransport::Backoff(size_t attempt) {
  // Same bounded exponential shape as DefaultIoEnv::Backoff, in the same
  // units, driven by the same IoRetryPolicy defaults.
  IoRetryPolicy policy;
  if (policy.backoff_base_us == 0 || attempt == 0) return;
  uint64_t shift = std::min<size_t>(attempt - 1, 16);
  uint64_t us = std::min(policy.backoff_base_us << shift,
                         policy.backoff_cap_us);
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(us / 1000000);
  ts.tv_nsec = static_cast<long>((us % 1000000) * 1000);
  ::nanosleep(&ts, nullptr);
}

Status FdTransport::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close");
  return Status::OK();
}

// ---- fault injection ---------------------------------------------------------

const char* NetFaultKindToString(NetFaultKind kind) {
  switch (kind) {
    case NetFaultKind::kEintr: return "eintr";
    case NetFaultKind::kShortRead: return "short-read";
    case NetFaultKind::kShortWrite: return "short-write";
    case NetFaultKind::kStallTick: return "stall";
    case NetFaultKind::kDisconnect: return "disconnect";
  }
  return "unknown";
}

NetFaultSchedule NetFaultSchedule::Single(NetOpKind op, uint64_t at,
                                          NetFaultKind fault, uint64_t count) {
  NetFaultSchedule s;
  s.rules.push_back(Rule{op, at, fault, count});
  return s;
}

NetFaultSchedule NetFaultSchedule::FromRate(double rate, uint64_t seed) {
  NetFaultSchedule s;
  s.seed = seed;
  s.eintr_rate = rate / 2;
  s.short_rate = rate / 4;
  s.stall_rate = rate / 8;
  s.disconnect_rate = rate / 8;
  return s;
}

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> base, NetFaultSchedule schedule)
    : base_(std::move(base)),
      schedule_(std::move(schedule)),
      rng_(schedule_.seed) {}

uint64_t FaultInjectingTransport::injected_total() const {
  uint64_t total = 0;
  for (uint64_t count : injected_) total += count;
  return total;
}

bool FaultInjectingTransport::NextFault(NetOpKind kind, NetFaultKind* fault) {
  uint64_t index = op_counts_[static_cast<size_t>(kind)]++;
  for (const NetFaultSchedule::Rule& rule : schedule_.rules) {
    if (rule.op != kind) continue;
    if (index >= rule.at && index < rule.at + rule.count) {
      *fault = rule.fault;
      return true;
    }
  }
  // Rate-based draws: one uniform per fault class per op, in a fixed order,
  // so identical op sequences see identical faults.
  if (schedule_.eintr_rate > 0.0 &&
      rng_.Uniform() < schedule_.eintr_rate) {
    *fault = NetFaultKind::kEintr;
    return true;
  }
  if (schedule_.short_rate > 0.0 && rng_.Uniform() < schedule_.short_rate) {
    *fault = kind == NetOpKind::kRead ? NetFaultKind::kShortRead
                                      : NetFaultKind::kShortWrite;
    return true;
  }
  if (schedule_.stall_rate > 0.0 && rng_.Uniform() < schedule_.stall_rate) {
    *fault = NetFaultKind::kStallTick;
    return true;
  }
  if (schedule_.disconnect_rate > 0.0 &&
      rng_.Uniform() < schedule_.disconnect_rate) {
    *fault = NetFaultKind::kDisconnect;
    return true;
  }
  return false;
}

Status FaultInjectingTransport::Read(void* buf, size_t n, size_t* nread,
                                     bool* transient) {
  *nread = 0;
  *transient = false;
  NetFaultKind fault;
  if (NextFault(NetOpKind::kRead, &fault)) {
    switch (fault) {
      case NetFaultKind::kEintr:
        ++injected_[static_cast<size_t>(fault)];
        *transient = true;
        return Status::IoError("injected EINTR (read)");
      case NetFaultKind::kStallTick:
        ++injected_[static_cast<size_t>(fault)];
        *transient = true;
        return Status::IoError("injected stall tick (read)");
      case NetFaultKind::kDisconnect:
        ++injected_[static_cast<size_t>(fault)];
        (void)base_->Close();  // the peer really is gone mid-frame
        return Status::IoError("injected disconnect (read)");
      case NetFaultKind::kShortRead: {
        ++injected_[static_cast<size_t>(fault)];
        size_t limit = std::max<size_t>(1, n / 2);
        return base_->Read(buf, limit, nread, transient);
      }
      case NetFaultKind::kShortWrite:
        break;  // not a read fault; fall through to clean read
    }
  }
  return base_->Read(buf, n, nread, transient);
}

Status FaultInjectingTransport::Write(const void* buf, size_t n,
                                      size_t* written, bool* transient) {
  *written = 0;
  *transient = false;
  NetFaultKind fault;
  if (NextFault(NetOpKind::kWrite, &fault)) {
    switch (fault) {
      case NetFaultKind::kEintr:
        ++injected_[static_cast<size_t>(fault)];
        *transient = true;
        return Status::IoError("injected EINTR (write)");
      case NetFaultKind::kStallTick:
        ++injected_[static_cast<size_t>(fault)];
        *transient = true;
        return Status::IoError("injected stall tick (write)");
      case NetFaultKind::kDisconnect: {
        // Tear the frame for real: push a deterministic prefix through,
        // then close — the peer sees half a frame followed by EOF.
        ++injected_[static_cast<size_t>(fault)];
        size_t prefix = n / 2;
        if (prefix > 0) {
          size_t moved = 0;
          bool t = false;
          (void)base_->Write(buf, prefix, &moved, &t);
        }
        (void)base_->Close();
        return Status::IoError("injected disconnect (write)");
      }
      case NetFaultKind::kShortWrite: {
        ++injected_[static_cast<size_t>(fault)];
        size_t limit = std::max<size_t>(1, n / 2);
        return base_->Write(buf, limit, written, transient);
      }
      case NetFaultKind::kShortRead:
        break;  // not a write fault; fall through to clean write
    }
  }
  return base_->Write(buf, n, written, transient);
}

// ---- connect helpers ---------------------------------------------------------

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress parsed;
  if (StartsWith(address, "unix:")) {
    parsed.is_unix = true;
    parsed.path = address.substr(5);
  } else if (StartsWith(address, "tcp:")) {
    std::string rest = address.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      return Status::InvalidArgument("tcp address must be tcp:host:port");
    }
    parsed.is_unix = false;
    parsed.host = rest.substr(0, colon);
    unsigned long port = std::strtoul(rest.c_str() + colon + 1, nullptr, 10);
    if (port > 65535) {
      return Status::InvalidArgument("tcp port out of range");
    }
    parsed.port = static_cast<uint16_t>(port);
  } else {
    parsed.is_unix = true;
    parsed.path = address;
  }
  if (parsed.is_unix) {
    if (parsed.path.empty()) {
      return Status::InvalidArgument("empty unix socket path");
    }
    if (parsed.path.size() >= sizeof(sockaddr_un::sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
  }
  return parsed;
}

Result<std::unique_ptr<Transport>> ConnectTransport(const std::string& address,
                                                    uint64_t io_timeout_ms) {
  ATUNE_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
  int fd = -1;
  if (parsed.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, parsed.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status s = Errno("connect");
      ::close(fd);
      return s;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(parsed.port);
    if (::inet_pton(AF_INET, parsed.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument("tcp host must be a dotted quad");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status s = Errno("connect");
      ::close(fd);
      return s;
    }
  }
  if (io_timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(io_timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return std::unique_ptr<Transport>(new FdTransport(fd));
}

void IgnoreSigPipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace atune
