#include "net/wire.h"

#include <cstring>

#include "common/file_util.h"
#include "common/string_util.h"

namespace atune {
namespace {

// ---- primitive writers (little-endian, journal idiom) ----------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// ---- bounds-checked reader --------------------------------------------------

/// Cursor over a payload. Every Get sets `ok_ = false` on underflow instead
/// of reading past the end; parsers check Done() (consumed exactly the whole
/// payload, no trailing garbage) at the end.
class Reader {
 public:
  explicit Reader(const std::string& payload) : data_(payload) {}

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double GetF64() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetString() {
    uint32_t len = GetU32();
    if (!Need(len)) return std::string();
    std::string s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  bool Done() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(StrFormat("malformed %s payload", what));
}

}  // namespace

const char* AdmitCodeToString(AdmitCode code) {
  switch (code) {
    case AdmitCode::kAccepted: return "accepted";
    case AdmitCode::kAlreadyExists: return "already-exists";
    case AdmitCode::kShedQueueFull: return "shed-queue-full";
    case AdmitCode::kShedTenantQuota: return "shed-tenant-quota";
    case AdmitCode::kDraining: return "draining";
  }
  return "unknown";
}

const char* SessionStateToString(SessionState state) {
  switch (state) {
    case SessionState::kUnknown: return "unknown";
    case SessionState::kQueued: return "queued";
    case SessionState::kRunning: return "running";
    case SessionState::kDone: return "done";
    case SessionState::kFailed: return "failed";
    case SessionState::kCancelled: return "cancelled";
    case SessionState::kDeadlineExceeded: return "deadline-exceeded";
    case SessionState::kInterrupted: return "interrupted";
  }
  return "unknown";
}

bool SessionStateTerminal(SessionState state) {
  switch (state) {
    case SessionState::kDone:
    case SessionState::kFailed:
    case SessionState::kCancelled:
    case SessionState::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

void AppendFrame(const std::string& payload, std::string* out) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(0, payload.data(), payload.size()));
  out->append(payload);
}

Status ExtractFrame(const char* data, size_t n, std::string* payload,
                    size_t* consumed) {
  *consumed = 0;
  if (n < kFrameHeaderBytes) return Status::OK();  // need more bytes
  auto read_u32 = [data](size_t at) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data[at + i]))
           << (8 * i);
    }
    return v;
  };
  uint32_t len = read_u32(0);
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("frame payload length %u exceeds limit %u", len,
                  kMaxFramePayload));
  }
  if (n < kFrameHeaderBytes + len) return Status::OK();  // incomplete frame
  uint32_t crc = read_u32(4);
  if (Crc32(0, data + kFrameHeaderBytes, len) != crc) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  payload->assign(data + kFrameHeaderBytes, len);
  *consumed = kFrameHeaderBytes + len;
  return Status::OK();
}

std::string EncodePing() {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kPingReq));
  return p;
}

std::string EncodePong() {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kPongResp));
  return p;
}

std::string EncodeStartRequest(const StartRequest& req) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kStartReq));
  PutString(&p, req.session_id);
  PutString(&p, req.tenant);
  PutString(&p, req.tuner);
  PutString(&p, req.system);
  PutString(&p, req.workload);
  PutF64(&p, req.scale);
  PutU64(&p, req.budget);
  PutU64(&p, req.seed);
  PutU64(&p, req.deadline_ms);
  PutU64(&p, req.contention);
  PutU8(&p, req.warm_start ? 1 : 0);
  return p;
}

std::string EncodeStartResponse(const StartResponse& resp) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kStartResp));
  PutU8(&p, static_cast<uint8_t>(resp.code));
  PutU64(&p, resp.retry_after_ms);
  PutU8(&p, static_cast<uint8_t>(resp.state));
  return p;
}

std::string EncodeAttachRequest(const AttachRequest& req) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kAttachReq));
  PutString(&p, req.session_id);
  PutU64(&p, req.wait_ms);
  return p;
}

std::string EncodeAttachResponse(const AttachResponse& resp) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kAttachResp));
  PutU8(&p, static_cast<uint8_t>(resp.state));
  PutU8(&p, resp.result.status_code);
  PutString(&p, resp.result.message);
  PutF64(&p, resp.result.best_objective);
  PutU64(&p, resp.result.checksum);
  PutU64(&p, resp.result.trials);
  PutU64(&p, resp.result.replayed);
  return p;
}

std::string EncodeCancelRequest(const CancelRequest& req) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kCancelReq));
  PutString(&p, req.session_id);
  return p;
}

std::string EncodeCancelResponse(const CancelResponse& resp) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kCancelResp));
  PutU8(&p, resp.found ? 1 : 0);
  return p;
}

std::string EncodeStatsRequest() {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kStatsReq));
  return p;
}

std::string EncodeStatsResponse(const StatsResponse& resp) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kStatsResp));
  PutU64(&p, resp.admitted);
  PutU64(&p, resp.reattached);
  PutU64(&p, resp.shed_queue_full);
  PutU64(&p, resp.shed_tenant_quota);
  PutU64(&p, resp.shed_draining);
  PutU64(&p, resp.completed);
  PutU64(&p, resp.failed);
  PutU64(&p, resp.cancelled);
  PutU64(&p, resp.deadline_exceeded);
  PutU64(&p, resp.recovered);
  PutU64(&p, resp.quarantined);
  PutU64(&p, resp.active);
  PutU64(&p, resp.queued);
  return p;
}

std::string EncodeErrorResponse(const ErrorResponse& resp) {
  std::string p;
  PutU8(&p, static_cast<uint8_t>(MsgType::kErrorResp));
  PutU8(&p, resp.status_code);
  PutString(&p, resp.message);
  return p;
}

Result<MsgType> PeekType(const std::string& payload) {
  if (payload.empty()) return Status::InvalidArgument("empty payload");
  uint8_t t = static_cast<uint8_t>(payload[0]);
  if (t < static_cast<uint8_t>(MsgType::kPingReq) ||
      t > static_cast<uint8_t>(MsgType::kErrorResp)) {
    return Status::InvalidArgument(StrFormat("unknown message type %u", t));
  }
  return static_cast<MsgType>(t);
}

Result<StartRequest> ParseStartRequest(const std::string& payload) {
  Reader r(payload);
  if (r.GetU8() != static_cast<uint8_t>(MsgType::kStartReq)) {
    return Malformed("StartRequest");
  }
  StartRequest req;
  req.session_id = r.GetString();
  req.tenant = r.GetString();
  req.tuner = r.GetString();
  req.system = r.GetString();
  req.workload = r.GetString();
  req.scale = r.GetF64();
  req.budget = r.GetU64();
  req.seed = r.GetU64();
  req.deadline_ms = r.GetU64();
  req.contention = r.GetU64();
  req.warm_start = r.GetU8() != 0;
  if (!r.Done()) return Malformed("StartRequest");
  return req;
}

Result<StartResponse> ParseStartResponse(const std::string& payload) {
  Reader r(payload);
  if (r.GetU8() != static_cast<uint8_t>(MsgType::kStartResp)) {
    return Malformed("StartResponse");
  }
  StartResponse resp;
  uint8_t code = r.GetU8();
  if (code > static_cast<uint8_t>(AdmitCode::kDraining)) {
    return Malformed("StartResponse");
  }
  resp.code = static_cast<AdmitCode>(code);
  resp.retry_after_ms = r.GetU64();
  uint8_t state = r.GetU8();
  if (state > static_cast<uint8_t>(SessionState::kInterrupted)) {
    return Malformed("StartResponse");
  }
  resp.state = static_cast<SessionState>(state);
  if (!r.Done()) return Malformed("StartResponse");
  return resp;
}

Result<AttachRequest> ParseAttachRequest(const std::string& payload) {
  Reader r(payload);
  if (r.GetU8() != static_cast<uint8_t>(MsgType::kAttachReq)) {
    return Malformed("AttachRequest");
  }
  AttachRequest req;
  req.session_id = r.GetString();
  req.wait_ms = r.GetU64();
  if (!r.Done()) return Malformed("AttachRequest");
  return req;
}

Result<AttachResponse> ParseAttachResponse(const std::string& payload) {
  Reader r(payload);
  if (r.GetU8() != static_cast<uint8_t>(MsgType::kAttachResp)) {
    return Malformed("AttachResponse");
  }
  AttachResponse resp;
  uint8_t state = r.GetU8();
  if (state > static_cast<uint8_t>(SessionState::kInterrupted)) {
    return Malformed("AttachResponse");
  }
  resp.state = static_cast<SessionState>(state);
  resp.result.status_code = r.GetU8();
  resp.result.message = r.GetString();
  resp.result.best_objective = r.GetF64();
  resp.result.checksum = r.GetU64();
  resp.result.trials = r.GetU64();
  resp.result.replayed = r.GetU64();
  if (!r.Done()) return Malformed("AttachResponse");
  return resp;
}

Result<CancelRequest> ParseCancelRequest(const std::string& payload) {
  Reader r(payload);
  if (r.GetU8() != static_cast<uint8_t>(MsgType::kCancelReq)) {
    return Malformed("CancelRequest");
  }
  CancelRequest req;
  req.session_id = r.GetString();
  if (!r.Done()) return Malformed("CancelRequest");
  return req;
}

Result<CancelResponse> ParseCancelResponse(const std::string& payload) {
  Reader r(payload);
  if (r.GetU8() != static_cast<uint8_t>(MsgType::kCancelResp)) {
    return Malformed("CancelResponse");
  }
  CancelResponse resp;
  resp.found = r.GetU8() != 0;
  if (!r.Done()) return Malformed("CancelResponse");
  return resp;
}

Result<StatsResponse> ParseStatsResponse(const std::string& payload) {
  Reader r(payload);
  if (r.GetU8() != static_cast<uint8_t>(MsgType::kStatsResp)) {
    return Malformed("StatsResponse");
  }
  StatsResponse resp;
  resp.admitted = r.GetU64();
  resp.reattached = r.GetU64();
  resp.shed_queue_full = r.GetU64();
  resp.shed_tenant_quota = r.GetU64();
  resp.shed_draining = r.GetU64();
  resp.completed = r.GetU64();
  resp.failed = r.GetU64();
  resp.cancelled = r.GetU64();
  resp.deadline_exceeded = r.GetU64();
  resp.recovered = r.GetU64();
  resp.quarantined = r.GetU64();
  resp.active = r.GetU64();
  resp.queued = r.GetU64();
  if (!r.Done()) return Malformed("StatsResponse");
  return resp;
}

Result<ErrorResponse> ParseErrorResponse(const std::string& payload) {
  Reader r(payload);
  if (r.GetU8() != static_cast<uint8_t>(MsgType::kErrorResp)) {
    return Malformed("ErrorResponse");
  }
  ErrorResponse resp;
  resp.status_code = r.GetU8();
  resp.message = r.GetString();
  if (!r.Done()) return Malformed("ErrorResponse");
  return resp;
}

bool ValidSessionId(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  // "." / ".." would escape into directory semantics.
  return id != "." && id != "..";
}

}  // namespace atune
