#ifndef ATUNE_NET_WIRE_H_
#define ATUNE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace atune {

/// The atuned wire protocol (DESIGN.md §13): length-prefixed, CRC-framed
/// binary messages — the same framing idiom as the trial journal, so a torn
/// or corrupted frame is detected, never parsed.
///
///   frame := payload_len u32 | crc32(payload) u32 | payload
///   payload := msg_type u8 | body (message-specific fields)
///
/// All integers are little-endian. Strings are u32 length + bytes. Doubles
/// travel as their IEEE-754 bit pattern in a u64, so a checksum or objective
/// crosses the wire bit-exactly (the service's resume-identity gates compare
/// these for equality, not approximately).
///
/// A receiver that sees a frame whose CRC does not match, whose length
/// exceeds kMaxFramePayload, or whose payload is shorter than its fields
/// must treat the *stream* as broken and drop the connection: after framing
/// is violated nothing later on the stream can be trusted. A well-framed
/// message with an unknown type is answered with kErrorResp — the stream is
/// fine, the request is not.

/// Upper bound on a frame payload. Requests and responses are all small
/// (strings plus a few scalars); anything larger is garbage or an attack.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

/// Bytes of frame overhead preceding every payload (length + CRC).
inline constexpr size_t kFrameHeaderBytes = 8;

enum class MsgType : uint8_t {
  kPingReq = 1,
  kPongResp = 2,
  kStartReq = 3,
  kStartResp = 4,
  kAttachReq = 5,
  kAttachResp = 6,
  kCancelReq = 7,
  kCancelResp = 8,
  kStatsReq = 9,
  kStatsResp = 10,
  kErrorResp = 11,
};

/// Admission verdict for a StartSession request. Everything except
/// kAccepted / kAlreadyExists is a *shed*: the server is telling the client
/// to come back after retry_after_ms — admission is refused cheaply instead
/// of queueing unboundedly (load shedding, DESIGN.md §13).
enum class AdmitCode : uint8_t {
  kAccepted = 0,       ///< session admitted and queued/running
  kAlreadyExists = 1,  ///< idempotent re-submit: reattached, not restarted
  kShedQueueFull = 2,  ///< bounded session queue is full
  kShedTenantQuota = 3,  ///< tenant's in-flight budget quota exhausted
  kDraining = 4,         ///< daemon is draining (SIGTERM); not admitting
};
const char* AdmitCodeToString(AdmitCode code);

/// Lifecycle of a session as reported by AttachResp.
enum class SessionState : uint8_t {
  kUnknown = 0,   ///< no such session
  kQueued = 1,
  kRunning = 2,
  kDone = 3,      ///< terminal: result fields valid
  kFailed = 4,    ///< terminal: tuning failed (status in result fields)
  kCancelled = 5,          ///< terminal: cancelled; checkpoint journaled
  kDeadlineExceeded = 6,   ///< terminal: deadline hit; checkpoint journaled
  kInterrupted = 7,  ///< daemon stopped mid-session; resumes on restart
};
const char* SessionStateToString(SessionState state);
bool SessionStateTerminal(SessionState state);

/// StartSession request body. `session_id` is chosen by the client and is
/// the idempotency key: re-submitting the same id (after a disconnect, a
/// retry, a crashed client) reattaches to the existing session instead of
/// double-starting it. Ids become journal file names, so they are
/// restricted to [A-Za-z0-9._-] (validated at admission).
struct StartRequest {
  std::string session_id;
  std::string tenant;
  std::string tuner = "random-search";
  std::string system = "dbms";
  std::string workload;  ///< empty = system's first workload
  double scale = 1.0;
  uint64_t budget = 30;
  uint64_t seed = 1;
  /// Session deadline in milliseconds from admission; 0 = none. A session
  /// past its deadline is cancelled at the next evaluation boundary with
  /// its checkpoint journaled (state kDeadlineExceeded).
  uint64_t deadline_ms = 0;
  /// Number of background tenants sharing the system (the multi-tenant
  /// contention substrate): 0 tunes the bare system; k > 0 wraps it in a
  /// MultiTenantSystem with this tenant's workload plus k background
  /// workloads, so concurrent sessions model interference.
  uint64_t contention = 0;
  /// Seed the session from the daemon's knowledge repository: the tuner is
  /// wrapped in a WarmStartTuner over the shard set pinned at admission
  /// (DESIGN.md §14), so a restarted daemon resumes against byte-identical
  /// history.
  bool warm_start = false;
};

struct StartResponse {
  AdmitCode code = AdmitCode::kAccepted;
  uint64_t retry_after_ms = 0;  ///< only meaningful for shed codes
  SessionState state = SessionState::kUnknown;  ///< for kAlreadyExists
};

/// Attach/poll request. `wait_ms` > 0 long-polls: the server holds the
/// request until the session reaches a terminal state or the per-request
/// deadline expires, whichever is first — this is the request-level
/// deadline propagated into the reactor's timer heap.
struct AttachRequest {
  std::string session_id;
  uint64_t wait_ms = 0;
};

/// Terminal-result payload (valid when state is terminal).
struct SessionResult {
  uint8_t status_code = 0;  ///< StatusCode of the session outcome
  std::string message;
  double best_objective = 0.0;
  uint64_t checksum = 0;  ///< OutcomeChecksum of the finished session
  uint64_t trials = 0;
  uint64_t replayed = 0;  ///< journal records served by replay on resume
};

struct AttachResponse {
  SessionState state = SessionState::kUnknown;
  SessionResult result;
};

struct CancelRequest {
  std::string session_id;
};

struct CancelResponse {
  bool found = false;
};

/// Daemon-wide counters, for the bench gates and operators.
struct StatsResponse {
  uint64_t admitted = 0;
  uint64_t reattached = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_tenant_quota = 0;
  uint64_t shed_draining = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t recovered = 0;  ///< sessions resumed/re-queued at startup
  uint64_t quarantined = 0;  ///< crash-looping sessions quarantined at startup
  uint64_t active = 0;     ///< currently running
  uint64_t queued = 0;     ///< currently waiting for a worker
};

struct ErrorResponse {
  uint8_t status_code = 0;
  std::string message;
};

// ---- serialization ---------------------------------------------------------

/// Appends one framed message (header + CRC + payload) to `*out`.
void AppendFrame(const std::string& payload, std::string* out);

/// Incremental frame extraction: if `data[0, n)` starts with one complete,
/// CRC-valid frame, stores its payload in `*payload`, sets `*consumed` to
/// the frame's total size, and returns OK. Returns OK with *consumed == 0
/// when more bytes are needed. Returns kInvalidArgument when the stream is
/// unrecoverable (oversized length or CRC mismatch) — drop the connection.
Status ExtractFrame(const char* data, size_t n, std::string* payload,
                    size_t* consumed);

// Each message encodes to a payload string (frame it with AppendFrame) and
// parses from one. Parsers reject short/trailing-garbage payloads.
std::string EncodePing();
std::string EncodePong();
std::string EncodeStartRequest(const StartRequest& req);
std::string EncodeStartResponse(const StartResponse& resp);
std::string EncodeAttachRequest(const AttachRequest& req);
std::string EncodeAttachResponse(const AttachResponse& resp);
std::string EncodeCancelRequest(const CancelRequest& req);
std::string EncodeCancelResponse(const CancelResponse& resp);
std::string EncodeStatsRequest();
std::string EncodeStatsResponse(const StatsResponse& resp);
std::string EncodeErrorResponse(const ErrorResponse& resp);

/// Message type of a payload (its first byte), or an error for an empty
/// payload / unknown type byte.
Result<MsgType> PeekType(const std::string& payload);

Result<StartRequest> ParseStartRequest(const std::string& payload);
Result<StartResponse> ParseStartResponse(const std::string& payload);
Result<AttachRequest> ParseAttachRequest(const std::string& payload);
Result<AttachResponse> ParseAttachResponse(const std::string& payload);
Result<CancelRequest> ParseCancelRequest(const std::string& payload);
Result<CancelResponse> ParseCancelResponse(const std::string& payload);
Result<StatsResponse> ParseStatsResponse(const std::string& payload);
Result<ErrorResponse> ParseErrorResponse(const std::string& payload);

/// True iff `id` is a safe session id: nonempty, <= 128 bytes, and only
/// [A-Za-z0-9._-] (ids become journal/meta/result file names).
bool ValidSessionId(const std::string& id);

}  // namespace atune

#endif  // ATUNE_NET_WIRE_H_
