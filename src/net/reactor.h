#ifndef ATUNE_NET_REACTOR_H_
#define ATUNE_NET_REACTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "common/status.h"

namespace atune {

/// Single-threaded epoll event loop — the scheduling core of atuned
/// (DESIGN.md §13). One thread owns every registered fd and all connection
/// state; worker threads never touch fds, they hand results back through
/// Post(), which is the only thread-safe entry point (an eventfd wakes the
/// loop). Timers are a monotonic-clock min-heap serviced between epoll
/// waits; they drive per-request deadlines (long-poll expiry), per-session
/// deadlines, and idle-connection reaping.
class Reactor {
 public:
  using FdCallback = std::function<void(uint32_t epoll_events)>;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// True when epoll + eventfd construction succeeded; everything else
  /// returns FailedPrecondition when it did not.
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback runs
  /// on the loop thread. The fd is NOT owned; Remove() before closing it.
  Status Add(int fd, uint32_t events, FdCallback callback);
  Status Modify(int fd, uint32_t events);
  void Remove(int fd);

  /// Monotonic milliseconds (CLOCK_MONOTONIC); the clock all timers use.
  static uint64_t NowMs();

  /// Schedules `callback` to run on the loop thread at/after `at_ms`
  /// (NowMs() units). Returns a timer id for CancelTimer. Must be called on
  /// the loop thread (use Post from other threads).
  uint64_t AddTimer(uint64_t at_ms, std::function<void()> callback);
  void CancelTimer(uint64_t id);

  /// Thread-safe: enqueues `fn` to run on the loop thread and wakes it.
  /// The only reactor method workers and signal-watching threads may call.
  void Post(std::function<void()> fn);

  /// Runs the loop until Stop(). Returns only after in-flight callbacks for
  /// the final iteration finished.
  void Run();

  /// Thread- and signal-safe: requests loop exit and wakes it.
  void Stop();

  bool stopped() const { return stop_requested_; }

 private:
  void Wake();
  void DrainPosted();
  /// Runs expired timers; returns ms until the next one (-1 = none).
  int RunTimers();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd
  std::map<int, FdCallback> fd_callbacks_;

  struct Timer {
    uint64_t at_ms;
    uint64_t id;
    bool operator>(const Timer& other) const {
      return at_ms != other.at_ms ? at_ms > other.at_ms : id > other.id;
    }
  };
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::map<uint64_t, std::function<void()>> timer_callbacks_;
  uint64_t next_timer_id_ = 1;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;  // guarded by posted_mu_

  volatile bool stop_requested_ = false;
};

}  // namespace atune

#endif  // ATUNE_NET_REACTOR_H_
