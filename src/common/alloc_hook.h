#ifndef ATUNE_COMMON_ALLOC_HOOK_H_
#define ATUNE_COMMON_ALLOC_HOOK_H_

#include <cstdint>

namespace atune {

/// Allocation-counting test hook (DESIGN.md §11).
///
/// The zero-allocation guarantee on the Evaluator commit path is enforced by
/// tests and bench_hotpath, not trusted by inspection. Library code samples
/// an allocation counter around the guarded region via SampleAllocCount();
/// in ordinary builds no counter is installed and the sample is always 0, so
/// the hook costs one relaxed atomic load per commit. Binaries that want
/// real counts (tests/core/commit_alloc_test.cc, bench_hotpath) additionally
/// compile src/common/alloc_hook_override.cc, whose global operator new
/// replacement bumps a thread-local counter and self-installs here. The
/// override translation unit must NEVER be linked into the atune libraries —
/// it changes allocator behavior process-wide.
using AllocCountFn = uint64_t (*)();

/// Installs (or, with nullptr, removes) the process-wide counter source.
void SetAllocCountHookForTesting(AllocCountFn fn);

/// Current thread's allocation count, or 0 when no hook is installed.
/// Meaningful only as a delta between two samples on the same thread.
uint64_t SampleAllocCount();

}  // namespace atune

#endif  // ATUNE_COMMON_ALLOC_HOOK_H_
