#include "common/io_env.h"

#include <fcntl.h>
#include <unistd.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "common/file_util.h"
#include "common/string_util.h"

namespace atune {
namespace {

// ---- crash-point hook (bench_crashsafety) ---------------------------------
//
// One process-wide counter of mutating ops performed through DefaultIoEnv.
// When armed, the process _exit()s the instant the counter would reach the
// target — for writes, after emitting a deterministic half-prefix first, so
// the crash sweep covers torn frames as well as clean op boundaries.

std::atomic<uint64_t> g_io_ops{0};
std::atomic<uint64_t> g_crash_at{0};  // absolute op index; 0 = disarmed

/// Counts one mutating op. Returns true when this op is the crash victim
/// (callers then perform their torn-write side effect and _exit).
bool CountOpAndCheckCrash() {
  // Relaxed load+store instead of an atomic RMW: plain movs (~2ns) versus a
  // lock-prefixed xadd (~20ns) on every mutating I/O op — the difference is
  // most of the IoEnv seam's per-append cost. Concurrent writers may lose
  // increments, which is acceptable: the exact value only matters to the
  // crash harness and its sweep sizing, both single-threaded; everything
  // else treats IoOpCount() as approximate.
  uint64_t count = g_io_ops.load(std::memory_order_relaxed) + 1;
  g_io_ops.store(count, std::memory_order_relaxed);
  uint64_t target = g_crash_at.load(std::memory_order_relaxed);
  return target != 0 && count == target;
}

[[noreturn]] void CrashNow() {
  // _exit, not exit/abort: no atexit handlers, no flushing of inherited
  // stdio buffers, no core dump — exactly what a power loss looks like to
  // the filesystem, and what the harness parent expects to wait() on.
  ::_exit(kCrashExitCode);
}

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status::IoError(
      StrFormat("%s '%s': %s", op, path.c_str(), std::strerror(err)));
}

bool ErrnoTransient(int err) { return err == EINTR || err == EAGAIN; }

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// ---- the real environment -------------------------------------------------

class DefaultIoFile : public IoFile {
 public:
  DefaultIoFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~DefaultIoFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Write(const void* data, size_t n, size_t* written,
               bool* transient) override {
    *written = 0;
    *transient = false;
    if (fd_ < 0) return Status::IoError("write on closed file: " + path_);
    if (CountOpAndCheckCrash()) {
      // Torn write: half the buffer reaches the file, then the machine dies.
      if (n > 1) {
        ssize_t r = ::write(fd_, data, n / 2);
        (void)r;
      }
      CrashNow();
    }
    ssize_t r = ::write(fd_, data, n);
    if (r < 0) {
      *transient = ErrnoTransient(errno);
      return ErrnoStatus("write", path_, errno);
    }
    *written = static_cast<size_t>(r);
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IoError("fsync on closed file: " + path_);
    if (CountOpAndCheckCrash()) CrashNow();
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class DefaultIoEnv : public IoEnv {
 public:
  DefaultIoEnv() {
    const char* crash = std::getenv("ATUNE_CRASH_AT_IO_OP");
    if (crash != nullptr && *crash != '\0') {
      SetCrashAtIoOp(std::strtoull(crash, nullptr, 10));
    }
  }

  Result<std::unique_ptr<IoFile>> OpenWritable(const std::string& path,
                                               OpenMode mode) override {
    if (CountOpAndCheckCrash()) CrashNow();
    int flags = O_WRONLY | (mode == OpenMode::kTruncate ? O_CREAT | O_TRUNC
                                                        : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<IoFile>(new DefaultIoFile(fd, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (CountOpAndCheckCrash()) CrashNow();
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from, errno);
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t length) override {
    if (CountOpAndCheckCrash()) CrashNow();
    if (::truncate(path.c_str(), static_cast<off_t>(length)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    if (CountOpAndCheckCrash()) CrashNow();
#if defined(__unix__) || defined(__APPLE__)
    std::string dir = ParentDir(path);
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir", dir, errno);
    if (::fsync(fd) != 0) {
      Status s = ErrnoStatus("fsync dir", dir, errno);
      ::close(fd);
      return s;
    }
    ::close(fd);
    return Status::OK();
#else
    (void)path;
    return Status::OK();  // no directory-entry durability to speak of
#endif
  }

  Status Unlink(const std::string& path) override {
    if (CountOpAndCheckCrash()) CrashNow();
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::OK();
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    return ::atune::ReadFileToString(path, out);
  }

  Result<uint64_t> FileSize(const std::string& path) override {
#if defined(__unix__) || defined(__APPLE__)
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound(StrFormat("no such file: '%s'", path.c_str()));
      }
      return ErrnoStatus("stat", path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
#else
    std::string contents;
    ATUNE_RETURN_IF_ERROR(::atune::ReadFileToString(path, &contents));
    return static_cast<uint64_t>(contents.size());
#endif
  }

  Result<MappedFile> Map(const std::string& path) override {
    return MappedFile::Map(path);
  }

  void Backoff(size_t attempt) override {
    const IoRetryPolicy& policy = retry_policy();
    if (policy.backoff_base_us == 0 || attempt == 0) return;
    uint64_t shift = std::min<size_t>(attempt - 1, 16);
    uint64_t us = std::min(policy.backoff_base_us << shift,
                           policy.backoff_cap_us);
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(us / 1000000);
    ts.tv_nsec = static_cast<long>((us % 1000000) * 1000);
    ::nanosleep(&ts, nullptr);
  }
};

std::atomic<IoEnv*> g_current_env{nullptr};

}  // namespace

const char* IoOpKindToString(IoOpKind kind) {
  switch (kind) {
    case IoOpKind::kOpen:
      return "open";
    case IoOpKind::kWrite:
      return "write";
    case IoOpKind::kSync:
      return "sync";
    case IoOpKind::kClose:
      return "close";
    case IoOpKind::kRename:
      return "rename";
    case IoOpKind::kTruncate:
      return "truncate";
    case IoOpKind::kSyncDir:
      return "syncdir";
    case IoOpKind::kUnlink:
      return "unlink";
    case IoOpKind::kRead:
      return "read";
    case IoOpKind::kStat:
      return "stat";
  }
  return "?";
}

const char* IoFaultKindToString(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kTransientEio:
      return "transient_eio";
    case IoFaultKind::kEintr:
      return "eintr";
    case IoFaultKind::kShortWrite:
      return "short_write";
    case IoFaultKind::kEnospc:
      return "enospc";
    case IoFaultKind::kPersistentEio:
      return "persistent_eio";
    case IoFaultKind::kSyncFail:
      return "sync_fail";
    case IoFaultKind::kRenameFail:
      return "rename_fail";
    case IoFaultKind::kMapFail:
      return "map_fail";
    case IoFaultKind::kStatShrink:
      return "stat_shrink";
  }
  return "?";
}

IoEnv* IoEnv::Default() {
  static DefaultIoEnv* env = new DefaultIoEnv();  // never destroyed
  return env;
}

IoEnv* IoEnv::Current() {
  IoEnv* env = g_current_env.load(std::memory_order_acquire);
  return env != nullptr ? env : Default();
}

void IoEnv::Set(IoEnv* env) {
  g_current_env.store(env, std::memory_order_release);
}

ScopedIoEnv::ScopedIoEnv(IoEnv* env)
    : previous_(g_current_env.load(std::memory_order_acquire)) {
  IoEnv::Set(env);
}

ScopedIoEnv::~ScopedIoEnv() { IoEnv::Set(previous_); }

uint64_t IoOpCount() { return g_io_ops.load(std::memory_order_relaxed); }

void SetCrashAtIoOp(uint64_t op_index) {
  if (op_index == 0) {
    g_crash_at.store(0, std::memory_order_relaxed);
    return;
  }
  g_crash_at.store(g_io_ops.load(std::memory_order_relaxed) + op_index,
                   std::memory_order_relaxed);
}

Status WriteFully(IoEnv* env, IoFile* file, const void* data, size_t n,
                  uint64_t* retries_out, uint64_t* shorts_out) {
  const auto* p = static_cast<const char*>(data);
  size_t done = 0;
  size_t attempts = 0;
  uint64_t retries = 0;
  uint64_t shorts = 0;
  const size_t max_attempts = std::max<size_t>(1, env->retry_policy().max_attempts);
  while (done < n) {
    size_t written = 0;
    bool transient = false;
    Status status = file->Write(p + done, n - done, &written, &transient);
    if (status.ok() && written > 0) {
      if (written < n - done) ++shorts;
      done += written;
      attempts = 0;  // progress resets the retry budget
      continue;
    }
    // A zero-byte "success" makes no progress; treat it like a transient
    // error so the loop stays bounded.
    if (status.ok()) {
      status = Status::IoError("write accepted 0 bytes");
      transient = true;
    }
    if (!transient) {
      if (retries_out != nullptr) *retries_out = retries;
      if (shorts_out != nullptr) *shorts_out = shorts;
      return status;
    }
    ++attempts;
    ++retries;
    if (attempts >= max_attempts) {
      if (retries_out != nullptr) *retries_out = retries;
      if (shorts_out != nullptr) *shorts_out = shorts;
      return Status::IoError(StrFormat(
          "write failed after %zu transient-error retries: %s", attempts,
          status.message().c_str()));
    }
    env->Backoff(attempts);
  }
  if (retries_out != nullptr) *retries_out = retries;
  if (shorts_out != nullptr) *shorts_out = shorts;
  return Status::OK();
}

// ---- fault injection ------------------------------------------------------

IoFaultSchedule IoFaultSchedule::Single(IoOpKind op, uint64_t at,
                                        IoFaultKind fault, uint64_t count) {
  IoFaultSchedule schedule;
  schedule.rules.push_back(Rule{op, at, fault, count});
  return schedule;
}

/// IoFile wrapper applying write/sync faults assigned by the owning env.
/// Defined at namespace scope (not anonymous) so the friend declaration in
/// FaultInjectingIoEnv applies.
class FaultInjectedFile : public IoFile {
 public:
  FaultInjectedFile(FaultInjectingIoEnv* env, std::unique_ptr<IoFile> base,
                    std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status Write(const void* data, size_t n, size_t* written,
               bool* transient) override;
  Status Sync() override;
  Status Close() override {
    env_->NextFault(IoOpKind::kClose, nullptr);  // count only
    return base_->Close();
  }

 private:
  FaultInjectingIoEnv* env_;
  std::unique_ptr<IoFile> base_;
  std::string path_;
};

FaultInjectingIoEnv::FaultInjectingIoEnv(IoEnv* base, IoFaultSchedule schedule)
    : base_(base),
      schedule_(std::move(schedule)),
      rng_(DeriveSeed(schedule_.seed, 0x10E17)) {
  // The fault env never sleeps: faulted runs must be deterministic AND fast.
  IoRetryPolicy policy = base->retry_policy();
  policy.backoff_base_us = 0;
  set_retry_policy(policy);
}

uint64_t FaultInjectingIoEnv::injected_total() const {
  uint64_t total = 0;
  for (uint64_t count : injected_) total += count;
  return total;
}

bool FaultInjectingIoEnv::NextFault(IoOpKind kind, IoFaultKind* fault) {
  uint64_t index = op_counts_[static_cast<size_t>(kind)]++;
  for (const IoFaultSchedule::Rule& rule : schedule_.rules) {
    if (rule.op == kind && index >= rule.at && index < rule.at + rule.count) {
      if (fault != nullptr) *fault = rule.fault;
      return fault != nullptr;
    }
  }
  if (kind == IoOpKind::kWrite &&
      (schedule_.short_write_rate > 0.0 || schedule_.eintr_rate > 0.0 ||
       schedule_.transient_eio_rate > 0.0)) {
    // One draw per write op, consumed identically whether or not it fires,
    // so the fault stream is a pure function of the op index.
    double draw = rng_.Uniform();
    if (draw < schedule_.short_write_rate) {
      if (fault != nullptr) *fault = IoFaultKind::kShortWrite;
      return fault != nullptr;
    }
    draw -= schedule_.short_write_rate;
    if (draw < schedule_.eintr_rate) {
      if (fault != nullptr) *fault = IoFaultKind::kEintr;
      return fault != nullptr;
    }
    draw -= schedule_.eintr_rate;
    if (draw < schedule_.transient_eio_rate) {
      if (fault != nullptr) *fault = IoFaultKind::kTransientEio;
      return fault != nullptr;
    }
  }
  return false;
}

Status FaultInjectingIoEnv::Fail(IoFaultKind fault, const char* op,
                                 const std::string& path) {
  CountInjected(fault);
  return Status::IoError(StrFormat("injected %s during %s '%s'",
                                   IoFaultKindToString(fault), op,
                                   path.c_str()));
}

Status FaultInjectedFile::Write(const void* data, size_t n, size_t* written,
                                bool* transient) {
  *written = 0;
  *transient = false;
  IoFaultKind fault;
  if (env_->NextFault(IoOpKind::kWrite, &fault)) {
    switch (fault) {
      case IoFaultKind::kShortWrite: {
        env_->CountInjected(fault);
        size_t half = std::max<size_t>(1, n / 2);
        Status status = base_->Write(data, half, written, transient);
        if (status.ok()) env_->unsynced_[path_] += *written;
        return status;
      }
      case IoFaultKind::kEintr:
      case IoFaultKind::kTransientEio:
        *transient = true;
        return env_->Fail(fault, "write", path_);
      case IoFaultKind::kEnospc:
      case IoFaultKind::kPersistentEio:
        return env_->Fail(fault, "write", path_);
      default:
        break;  // faults of other kinds don't apply to writes
    }
  }
  Status status = base_->Write(data, n, written, transient);
  if (status.ok()) env_->unsynced_[path_] += *written;
  return status;
}

Status FaultInjectedFile::Sync() {
  IoFaultKind fault;
  if (env_->NextFault(IoOpKind::kSync, &fault) &&
      fault == IoFaultKind::kSyncFail) {
    // fsyncgate semantics: the failed fsync may have dropped any or all of
    // the dirty pages. Model the worst case deterministically — every byte
    // written since the last successful sync vanishes from the file.
    uint64_t lost = env_->unsynced_[path_];
    if (lost > 0) {
      auto size = env_->base_->FileSize(path_);
      if (size.ok() && *size >= lost) {
        (void)env_->base_->Truncate(path_, *size - lost);
      }
      env_->unsynced_[path_] = 0;
    }
    return env_->Fail(fault, "fsync", path_);
  }
  Status status = base_->Sync();
  if (status.ok()) env_->unsynced_[path_] = 0;
  return status;
}

Result<std::unique_ptr<IoFile>> FaultInjectingIoEnv::OpenWritable(
    const std::string& path, OpenMode mode) {
  IoFaultKind fault;
  if (NextFault(IoOpKind::kOpen, &fault)) {
    if (fault == IoFaultKind::kEnospc || fault == IoFaultKind::kPersistentEio ||
        fault == IoFaultKind::kTransientEio) {
      return Fail(fault, "open", path);
    }
  }
  auto base_file = base_->OpenWritable(path, mode);
  if (!base_file.ok()) return base_file.status();
  if (mode == OpenMode::kTruncate) unsynced_[path] = 0;
  return std::unique_ptr<IoFile>(
      new FaultInjectedFile(this, std::move(*base_file), path));
}

Status FaultInjectingIoEnv::Rename(const std::string& from,
                                   const std::string& to) {
  IoFaultKind fault;
  if (NextFault(IoOpKind::kRename, &fault) &&
      (fault == IoFaultKind::kRenameFail || fault == IoFaultKind::kEnospc ||
       fault == IoFaultKind::kPersistentEio)) {
    return Fail(fault, "rename", from);
  }
  return base_->Rename(from, to);
}

Status FaultInjectingIoEnv::Truncate(const std::string& path,
                                     uint64_t length) {
  IoFaultKind fault;
  if (NextFault(IoOpKind::kTruncate, &fault) &&
      (fault == IoFaultKind::kPersistentEio ||
       fault == IoFaultKind::kEnospc)) {
    return Fail(fault, "truncate", path);
  }
  return base_->Truncate(path, length);
}

Status FaultInjectingIoEnv::SyncDir(const std::string& path) {
  IoFaultKind fault;
  if (NextFault(IoOpKind::kSyncDir, &fault) &&
      fault == IoFaultKind::kSyncFail) {
    return Fail(fault, "fsync dir", path);
  }
  return base_->SyncDir(path);
}

Status FaultInjectingIoEnv::Unlink(const std::string& path) {
  NextFault(IoOpKind::kUnlink, nullptr);  // count only
  return base_->Unlink(path);
}

Status FaultInjectingIoEnv::ReadFileToString(const std::string& path,
                                             std::string* out) {
  IoFaultKind fault;
  if (NextFault(IoOpKind::kRead, &fault) &&
      fault == IoFaultKind::kPersistentEio) {
    return Fail(fault, "read", path);
  }
  return base_->ReadFileToString(path, out);
}

Result<uint64_t> FaultInjectingIoEnv::FileSize(const std::string& path) {
  IoFaultKind fault;
  if (NextFault(IoOpKind::kStat, &fault) &&
      fault == IoFaultKind::kStatShrink) {
    auto size = base_->FileSize(path);
    if (!size.ok()) return size;
    CountInjected(fault);
    return *size > 0 ? *size - 1 : *size;
  }
  return base_->FileSize(path);
}

Result<MappedFile> FaultInjectingIoEnv::Map(const std::string& path) {
  IoFaultKind fault;
  if (NextFault(IoOpKind::kRead, &fault) && fault == IoFaultKind::kMapFail) {
    return Fail(fault, "mmap", path);
  }
  return base_->Map(path);
}

}  // namespace atune
