#ifndef ATUNE_COMMON_IO_ENV_H_
#define ATUNE_COMMON_IO_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace atune {

/// The injectable I/O environment (DESIGN.md §12). Every file operation the
/// durability layer performs — journal appends and fsyncs, atomic publishes,
/// recovery truncation, replay reads — goes through IoEnv::Current() instead
/// of raw syscalls, so a test or bench can swap in FaultInjectingIoEnv and
/// drive the error branches that a healthy filesystem never exercises
/// (short writes, EINTR storms, transient EIO, ENOSPC, fsync failure with
/// fsyncgate semantics, rename failure), or arm the crash-point hook that
/// kills the process at the Nth I/O op for the bench_crashsafety sweep.
///
/// Contract notes:
///  * Errors are surfaced as StatusCode::kIoError (clean, never a crash).
///  * Write() is ONE attempt and may short-write; WriteFully() is the
///    bounded deterministic retry loop everything uses.
///  * Sync() is never blindly retried by callers: after a failed fsync the
///    page-cache state is unknown (the "fsyncgate" lesson), so the journal
///    re-opens and re-verifies its tail instead (core/journal.cc).

/// Operation taxonomy, used for op counting, fault targeting, and the
/// crash-point sweep. Mutating ops (everything except kRead/kStat) advance
/// the process-wide op counter that ATUNE_CRASH_AT_IO_OP indexes.
enum class IoOpKind : uint8_t {
  kOpen = 0,
  kWrite,
  kSync,
  kClose,
  kRename,
  kTruncate,
  kSyncDir,
  kUnlink,
  kRead,
  kStat,
};
inline constexpr size_t kNumIoOpKinds = 10;
const char* IoOpKindToString(IoOpKind kind);

/// A writable file handle obtained from an IoEnv.
class IoFile {
 public:
  virtual ~IoFile() = default;

  /// ONE write attempt. On success *written is the number of bytes accepted
  /// (may be < n: a short write). On failure *transient says whether the
  /// error is worth a bounded retry (EINTR/EAGAIN, injected transient EIO);
  /// ENOSPC and persistent EIO are not transient.
  virtual Status Write(const void* data, size_t n, size_t* written,
                       bool* transient) = 0;

  /// fsync. Callers must NOT retry a failed Sync: the kernel may have
  /// dropped the dirty pages, so the only sound reaction is to re-open and
  /// re-verify what actually reached the disk.
  virtual Status Sync() = 0;

  /// Closes the handle. Idempotent; the destructor closes too (ignoring
  /// errors — error-checked closes go through this method).
  virtual Status Close() = 0;
};

/// Bounded deterministic retry policy for transient write errors. There is
/// no wall-clock in the decision — attempts are counted, and the backoff is
/// delegated to IoEnv::Backoff so the fault env can make it a no-op while
/// the real env sleeps.
struct IoRetryPolicy {
  size_t max_attempts = 8;       ///< total attempts per logical write
  uint64_t backoff_base_us = 100;  ///< real-env sleep: base << attempt, capped
  uint64_t backoff_cap_us = 10000;
};

class MappedFile;  // common/file_util.h

class IoEnv {
 public:
  enum class OpenMode : uint8_t {
    kTruncate,  ///< O_WRONLY | O_CREAT | O_TRUNC
    kAppend,    ///< O_WRONLY | O_APPEND (file must exist)
  };

  virtual ~IoEnv() = default;

  virtual Result<std::unique_ptr<IoFile>> OpenWritable(const std::string& path,
                                                       OpenMode mode) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Truncate(const std::string& path, uint64_t length) = 0;
  /// fsyncs the directory containing `path` (required after rename/create
  /// for the new directory entry itself to be crash-durable).
  virtual Status SyncDir(const std::string& path) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  /// Read-only mapping of the whole file (journal replay's zero-copy path).
  virtual Result<MappedFile> Map(const std::string& path) = 0;
  /// Backoff before retry `attempt` (1-based) of a transient write error.
  virtual void Backoff(size_t attempt) = 0;

  const IoRetryPolicy& retry_policy() const { return retry_policy_; }
  void set_retry_policy(const IoRetryPolicy& policy) { retry_policy_ = policy; }

  /// The real (syscall-backed) environment, with the crash-point hook.
  static IoEnv* Default();
  /// The environment all durability-layer I/O goes through. Default() unless
  /// a ScopedIoEnv has installed a replacement.
  static IoEnv* Current();

 private:
  friend class ScopedIoEnv;
  static void Set(IoEnv* env);

  IoRetryPolicy retry_policy_;
};

/// RAII install/restore of IoEnv::Current() (testing/bench seam). Installing
/// nullptr restores Default(). Not thread-safe against concurrent sessions
/// using different envs — swap only around single-session tests/benches.
class ScopedIoEnv {
 public:
  explicit ScopedIoEnv(IoEnv* env);
  ~ScopedIoEnv();
  ScopedIoEnv(const ScopedIoEnv&) = delete;
  ScopedIoEnv& operator=(const ScopedIoEnv&) = delete;

 private:
  IoEnv* previous_;
};

/// The bounded deterministic retry loop every durability-layer writer uses:
/// reassembles short writes (no retry budget consumed — progress was made),
/// retries transient errors up to env->retry_policy().max_attempts with
/// env->Backoff between attempts, and surfaces everything else (and retry
/// exhaustion) as the underlying kIoError. `retries_out` / `shorts_out`
/// (optional) report the transient retries and short-write continuations
/// performed, so callers that can reach the metrics registry (core links
/// obs; common cannot) can feed the io.* telemetry.
Status WriteFully(IoEnv* env, IoFile* file, const void* data, size_t n,
                  uint64_t* retries_out = nullptr,
                  uint64_t* shorts_out = nullptr);

// ---- crash-point harness hooks (bench_crashsafety) ------------------------

/// Total mutating I/O ops performed through DefaultIoEnv in this process.
uint64_t IoOpCount();

/// Arms the crash point: the process calls _exit(kCrashExitCode) immediately
/// BEFORE performing the Nth (1-based, counted from now) mutating I/O op —
/// except for writes, where a deterministic prefix of the buffer is written
/// first so the sweep also covers torn frames. 0 disarms. The env var
/// ATUNE_CRASH_AT_IO_OP arms it at process start; this setter is for forked
/// children of the crash harness.
void SetCrashAtIoOp(uint64_t op_index);

/// Exit code of a crash-point kill, so the harness parent can tell a planned
/// crash from a genuine child failure.
inline constexpr int kCrashExitCode = 42;

// ---- deterministic fault injection ----------------------------------------

/// What an injected fault does. All injections are deterministic functions
/// of (schedule, op sequence) so a faulted run replays bit-identically.
enum class IoFaultKind : uint8_t {
  kTransientEio = 0,  ///< fails with a retryable EIO
  kEintr,             ///< fails with a retryable EINTR (storm via count)
  kShortWrite,        ///< accepts only half the buffer (min 1 byte)
  kEnospc,            ///< non-transient "no space left on device"
  kPersistentEio,     ///< non-transient EIO
  kSyncFail,          ///< fsync fails AND unsynced bytes are dropped from the
                      ///< file (fsyncgate: page-cache state was unknown)
  kRenameFail,        ///< rename fails; the temp file stays in place
  kMapFail,           ///< Map() fails (forces the streaming replay fallback)
  kStatShrink,        ///< FileSize() lies low by one byte (truncation-race
                      ///< guard: mmap replay must fall back to streaming)
};
inline constexpr size_t kNumIoFaultKinds = 9;
const char* IoFaultKindToString(IoFaultKind kind);

/// Deterministic per-op fault schedule. Targeted rules key on the index of
/// the op *within its kind* (the 3rd write, the 1st rename, ...) counted
/// from env construction; rate-based faults draw from a seeded Rng once per
/// write op. Identical op sequences therefore see identical faults.
struct IoFaultSchedule {
  struct Rule {
    IoOpKind op = IoOpKind::kWrite;  ///< which op kind to target
    uint64_t at = 0;                 ///< 0-based index within that kind
    IoFaultKind fault = IoFaultKind::kTransientEio;
    uint64_t count = 1;  ///< consecutive ops affected (EINTR storms)
  };
  std::vector<Rule> rules;

  uint64_t seed = 0;              ///< seeds the rate-based draws
  double short_write_rate = 0.0;  ///< P(short write) per write op
  double eintr_rate = 0.0;        ///< P(EINTR) per write op
  double transient_eio_rate = 0.0;  ///< P(transient EIO) per write op

  /// Convenience: one rule.
  static IoFaultSchedule Single(IoOpKind op, uint64_t at, IoFaultKind fault,
                                uint64_t count = 1);
};

/// IoEnv decorator that injects the schedule's faults into a base env (the
/// real one in tests). Backoff is a counted no-op — faulted runs must stay
/// deterministic and fast. Per-kind op counters and injected-fault counters
/// are exposed for assertions. Not thread-safe (guarded use: single-session
/// tests and the crash harness).
class FaultInjectingIoEnv : public IoEnv {
 public:
  /// `base` is borrowed and must outlive this env (Default() in practice).
  FaultInjectingIoEnv(IoEnv* base, IoFaultSchedule schedule);

  Result<std::unique_ptr<IoFile>> OpenWritable(const std::string& path,
                                               OpenMode mode) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t length) override;
  Status SyncDir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<MappedFile> Map(const std::string& path) override;
  void Backoff(size_t attempt) override { backoffs_ += attempt > 0 ? 1 : 0; }

  uint64_t ops(IoOpKind kind) const {
    return op_counts_[static_cast<size_t>(kind)];
  }
  uint64_t injected(IoFaultKind fault) const {
    return injected_[static_cast<size_t>(fault)];
  }
  uint64_t injected_total() const;
  uint64_t backoffs() const { return backoffs_; }

 private:
  friend class FaultInjectedFile;

  /// Advances the per-kind op counter and returns the fault (if any) that
  /// the schedule assigns to this op occurrence.
  bool NextFault(IoOpKind kind, IoFaultKind* fault);
  void CountInjected(IoFaultKind fault) {
    ++injected_[static_cast<size_t>(fault)];
  }
  Status Fail(IoFaultKind fault, const char* op, const std::string& path);

  IoEnv* base_;
  IoFaultSchedule schedule_;
  Rng rng_;
  uint64_t op_counts_[kNumIoOpKinds] = {};
  uint64_t injected_[kNumIoFaultKinds] = {};
  uint64_t backoffs_ = 0;
  /// Unsynced-byte tracking per open path, for kSyncFail's page-cache drop.
  std::map<std::string, uint64_t> unsynced_;
};

}  // namespace atune

#endif  // ATUNE_COMMON_IO_ENV_H_
