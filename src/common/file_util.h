#ifndef ATUNE_COMMON_FILE_UTIL_H_
#define ATUNE_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace atune {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `n` bytes, continuing from
/// `seed` (pass 0 for a fresh checksum). Used to frame write-ahead journal
/// records so torn or corrupted tails are detectable on recovery.
uint32_t Crc32(uint32_t seed, const void* data, size_t n);

/// Reads an entire file into `*out`. NotFound if the file does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

/// Crash-safe whole-file write: writes `contents` to `path + ".tmp"`,
/// flushes and fsyncs it, then atomically renames it over `path`. A reader
/// (or a restart after a crash) therefore sees either the old file or the
/// complete new one — never a torn mixture. This is how every BENCH_*.json
/// and CSV artifact is published.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Truncates `path` to `length` bytes and fsyncs it. Used by journal
/// recovery to physically discard a corrupt tail.
Status TruncateFile(const std::string& path, uint64_t length);

/// Completes an atomic publish for a stream opened on `path + ".tmp"`:
/// flushes and fsyncs `f`, closes it (always, even on error), and renames
/// the temp file over `path`. Lets FILE*-style report writers get the same
/// crash-safety as AtomicWriteFile without buffering everything in memory.
Status CommitTempFile(std::FILE* f, const std::string& path);

/// Read-only memory mapping of a whole file — the zero-copy half of journal
/// replay (DESIGN.md §11). On POSIX this is mmap(PROT_READ, MAP_PRIVATE);
/// elsewhere Map() returns Unimplemented and callers fall back to
/// ReadFileToString (TrialJournal::OpenForResume does this automatically).
///
/// The mapping is released in the destructor. Callers that later shrink the
/// file (journal recovery truncating a corrupt tail) must destroy or
/// move-assign away the MappedFile first: touching pages past the new EOF of
/// a live mapping is undefined.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. NotFound if it does not exist; Unimplemented on
  /// platforms without mmap. An empty file maps successfully with
  /// data() == nullptr and size() == 0.
  static Result<MappedFile> Map(const std::string& path);

  /// True when this build can mmap at all.
  static bool Supported();

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }

 private:
  void Unmap();

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace atune

#endif  // ATUNE_COMMON_FILE_UTIL_H_
