#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atune {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double nn = static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / nn;
  mean_ += delta * nb / nn;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (q <= 0.0) return xs.front();
  if (q >= 1.0) return xs.back();
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double Median(const std::vector<double>& xs) { return Quantile(xs, 0.5); }

double UpperMedianInPlace(std::vector<double>* xs) {
  if (xs->empty()) return 0.0;
  std::nth_element(xs->begin(), xs->begin() + xs->size() / 2, xs->end());
  return (*xs)[xs->size() / 2];
}

MadResult Mad(std::vector<double> xs) {
  MadResult r;
  if (xs.empty()) return r;
  r.median = UpperMedianInPlace(&xs);
  // The deviations are computed over the partially reordered vector; that
  // is fine — they form the same multiset, and nth_element is order-blind.
  for (double& x : xs) x = std::abs(x - r.median);
  r.mad = UpperMedianInPlace(&xs);
  return r;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> Ranks(const std::vector<double>& xs) {
  size_t n = xs.size();
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Average rank for the tie group [i, j].
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  std::vector<double> x(xs.begin(), xs.begin() + n);
  std::vector<double> y(ys.begin(), ys.begin() + n);
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

double WelchT(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  double va = Variance(a) / static_cast<double>(a.size());
  double vb = Variance(b) / static_cast<double>(b.size());
  double denom = std::sqrt(va + vb);
  if (denom <= 0.0) return 0.0;
  return (Mean(a) - Mean(b)) / denom;
}

double ConfidenceHalfWidth95(const RunningStats& s) {
  if (s.count() < 2) return 0.0;
  return 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

}  // namespace atune
