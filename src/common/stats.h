#ifndef ATUNE_COMMON_STATS_H_
#define ATUNE_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace atune {

/// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Sample variance (n-1); 0 if fewer than 2 elements.
double Variance(const std::vector<double>& xs);

double StdDev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy.
double Quantile(std::vector<double> xs, double q);

double Median(const std::vector<double>& xs);

/// Upper median: the element at index size/2 after a partial sort
/// (nth_element), i.e. for even n the upper of the two middle elements —
/// no interpolation, always an actual sample. Partially reorders *xs.
/// 0 for empty input.
double UpperMedianInPlace(std::vector<double>* xs);

/// Median absolute deviation about the upper median. Both the center and
/// the spread use UpperMedianInPlace, matching the classical
/// modified-z-score recipe on actual samples (the Evaluator's outlier
/// detector depends on these exact semantics — see
/// RobustnessPolicy::outlier_mad_threshold). Empty input yields {0, 0}.
struct MadResult {
  double median = 0.0;
  double mad = 0.0;
};
MadResult Mad(std::vector<double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Spearman rank correlation; ties get average ranks.
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Welch's t statistic for a difference in means between two samples.
/// Returns 0 when either sample has <2 points or both variances are 0.
double WelchT(const std::vector<double>& a, const std::vector<double>& b);

/// Half-width of an approximate 95% confidence interval for the mean,
/// using the normal quantile 1.96 (adequate for the n>=10 used in benches).
double ConfidenceHalfWidth95(const RunningStats& s);

/// Assigns average ranks (1-based) to values, averaging over ties.
std::vector<double> Ranks(const std::vector<double>& xs);

}  // namespace atune

#endif  // ATUNE_COMMON_STATS_H_
