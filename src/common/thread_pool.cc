#include "common/thread_pool.h"

#include <algorithm>

namespace atune {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity > 0
                          ? queue_capacity
                          : 4 * std::max<size_t>(num_threads, 1)) {
  size_t n = std::max<size_t>(num_threads, 1);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_available_.wait(lock, [this]() {
      return shutdown_ || queue_.size() < queue_capacity_;
    });
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_available_.notify_all();
  space_available_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_available_.notify_one();
    task();
  }
}

}  // namespace atune
