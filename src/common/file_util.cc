#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <sys/stat.h>
#endif

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/io_env.h"
#include "common/string_util.h"

namespace atune {
namespace {

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status Errno(const char* op, const std::string& path) {
  return Status::IoError(
      StrFormat("%s '%s': %s", op, path.c_str(), std::strerror(errno)));
}

}  // namespace

uint32_t Crc32(uint32_t seed, const void* data, size_t n) {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("no such file: '%s'", path.c_str()));
    }
    return Errno("open", path);
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Errno("read", path);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  IoEnv* env = IoEnv::Current();
  const std::string tmp = path + ".tmp";
  auto file = env->OpenWritable(tmp, IoEnv::OpenMode::kTruncate);
  if (!file.ok()) return file.status();
  Status status =
      WriteFully(env, file->get(), contents.data(), contents.size());
  if (status.ok()) status = (*file)->Sync();
  if (status.ok()) status = (*file)->Close();
  if (!status.ok()) {
    (void)(*file)->Close();
    (void)env->Unlink(tmp);
    return status;
  }
  status = env->Rename(tmp, path);
  if (!status.ok()) {
    (void)env->Unlink(tmp);
    return status;
  }
  // Without this the rename — and hence the publish itself — is not
  // crash-durable: the new directory entry may still be only in memory.
  return env->SyncDir(path);
}

Status CommitTempFile(std::FILE* f, const std::string& path) {
  IoEnv* env = IoEnv::Current();
  const std::string tmp = path + ".tmp";
  if (f == nullptr) return Status::InvalidArgument("CommitTempFile: null file");
  // The stream was opened by the caller, outside the IoEnv seam, so the
  // flush/fsync stay raw; the publish itself (rename + dir sync) is routed
  // through the env like every other durability op.
  bool flushed = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  Status flush_error = flushed ? Status::OK() : Errno("flush", tmp);
  if (std::fclose(f) != 0 && flushed) flush_error = Errno("close", tmp);
  if (!flush_error.ok()) {
    (void)env->Unlink(tmp);
    return flush_error;
  }
  Status status = env->Rename(tmp, path);
  if (!status.ok()) {
    (void)env->Unlink(tmp);
    return status;
  }
  return env->SyncDir(path);
}

#if defined(__unix__) || defined(__APPLE__)

Result<MappedFile> MappedFile::Map(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("no such file: '%s'", path.c_str()));
    }
    return Errno("open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("stat", path);
    ::close(fd);
    return s;
  }
  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* addr = ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status s = Errno("mmap", path);
      ::close(fd);
      return s;
    }
    mapped.addr_ = addr;
  }
  // The mapping outlives the descriptor.
  ::close(fd);
  return mapped;
}

bool MappedFile::Supported() { return true; }

void MappedFile::Unmap() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  addr_ = nullptr;
  size_ = 0;
}

#else  // !(__unix__ || __APPLE__)

Result<MappedFile> MappedFile::Map(const std::string& path) {
  (void)path;
  return Status::Unimplemented("mmap is not available on this platform");
}

bool MappedFile::Supported() { return false; }

void MappedFile::Unmap() {
  addr_ = nullptr;
  size_ = 0;
}

#endif  // __unix__ || __APPLE__

MappedFile::~MappedFile() { Unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Status TruncateFile(const std::string& path, uint64_t length) {
  IoEnv* env = IoEnv::Current();
  ATUNE_RETURN_IF_ERROR(env->Truncate(path, length));
  auto file = env->OpenWritable(path, IoEnv::OpenMode::kAppend);
  if (!file.ok()) return file.status();
  Status status = (*file)->Sync();
  Status close_status = (*file)->Close();
  return status.ok() ? close_status : status;
}

}  // namespace atune
