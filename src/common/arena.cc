#include "common/arena.h"

#include <cstdint>

namespace atune {

namespace {
constexpr size_t kMinBlockBytes = 1024;
}  // namespace

ScratchArena::ScratchArena(size_t initial_bytes) {
  if (initial_bytes > 0) AddBlock(initial_bytes);
}

void ScratchArena::AddBlock(size_t min_bytes) {
  size_t size = kMinBlockBytes;
  if (!blocks_.empty()) size = blocks_.back().size * 2;
  if (size < min_bytes) size = min_bytes;
  Block block;
  block.data = std::make_unique<char[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  offset_ = 0;
}

void* ScratchArena::Allocate(size_t bytes, size_t alignment) {
  if (blocks_.empty()) AddBlock(bytes);
  for (;;) {
    Block& block = blocks_[current_];
    uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
    size_t aligned = (offset_ + (alignment - 1)) & ~(alignment - 1);
    // operator new[] storage is max_align_t-aligned, so aligning the offset
    // aligns the pointer.
    if (aligned + bytes <= block.size) {
      offset_ = aligned + bytes;
      used_ += bytes;
      return reinterpret_cast<void*>(base + aligned);
    }
    if (current_ + 1 < blocks_.size()) {
      ++current_;
      offset_ = 0;
    } else {
      AddBlock(bytes + alignment);
    }
  }
}

void ScratchArena::Reset() {
  if (blocks_.size() > 1) {
    // A past cycle overflowed: replace the chain with one block sized to the
    // high-water total so future cycles stay single-block.
    size_t total = capacity();
    blocks_.clear();
    AddBlock(total);
  }
  current_ = 0;
  offset_ = 0;
  used_ = 0;
}

size_t ScratchArena::capacity() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace atune
