#ifndef ATUNE_COMMON_STATUS_H_
#define ATUNE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace atune {

/// Error codes for fallible operations. The framework does not use
/// exceptions; every fallible API returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kAborted,
  kUnimplemented,
  kInternal,
  /// Every trial in a tuning session failed or was censored; the session ran
  /// to completion but produced no usable recommendation.
  kAllTrialsFailed,
  /// A file operation failed beneath the durability layer (journal append,
  /// fsync, atomic publish...). Distinct from kInternal so operators — and
  /// the CLI's exit code — can tell "the filesystem failed us" from "the
  /// framework has a bug". See common/io_env.h and DESIGN.md §12.
  kIoError,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value, modeled after the RocksDB/Abseil Status idiom.
///
/// Status is cheap to copy in the success case (no allocation) and carries a
/// message string in the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status AllTrialsFailed(std::string msg) {
    return Status(StatusCode::kAllTrialsFailed, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper: holds either a T or an error Status.
///
/// Access the value only after checking ok(); accessing the value of an
/// errored Result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace atune

/// Propagates an error Status from an expression, RocksDB-style.
#define ATUNE_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::atune::Status _atune_status = (expr);        \
    if (!_atune_status.ok()) return _atune_status; \
  } while (false)

/// Evaluates a Result<T> expression, assigning the value to `lhs` or
/// returning the error.
#define ATUNE_ASSIGN_OR_RETURN(lhs, expr)              \
  ATUNE_ASSIGN_OR_RETURN_IMPL_(                        \
      ATUNE_STATUS_CONCAT_(_atune_result, __LINE__), lhs, expr)

#define ATUNE_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                 \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

#define ATUNE_STATUS_CONCAT_(a, b) ATUNE_STATUS_CONCAT_IMPL_(a, b)
#define ATUNE_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // ATUNE_COMMON_STATUS_H_
