#ifndef ATUNE_COMMON_RANDOM_H_
#define ATUNE_COMMON_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace atune {

/// Derives an independent seed for stream `stream` of a component seeded
/// with `seed` (splitmix64 finalizer). Unlike Rng::Fork(), the result does
/// not depend on how many draws the parent has made — only on (seed,
/// stream) — which is what lets cloned systems reproduce exactly the
/// measurement noise the parent would have drawn at a given run index (see
/// TunableSystem::Clone).
inline uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seeded pseudo-random number generator used throughout the framework.
///
/// Every stochastic component (samplers, simulators, tuners) takes an
/// explicit seed so that all experiments are reproducible. Rng wraps
/// std::mt19937_64 with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled: mean + stddev * N(0,1).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal with the given underlying normal parameters.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential with the given rate parameter.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Zipf-like skewed index in [0, n): probability of rank r proportional
  /// to 1/(r+1)^theta. Used by workload generators to model access skew.
  int64_t Zipf(int64_t n, double theta);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative; returns 0 if all are zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child generator; handy for giving each
  /// subcomponent its own stream.
  Rng Fork() { return Rng(engine_()); }

  /// Raw 64-bit draw.
  uint64_t Next() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace atune

#endif  // ATUNE_COMMON_RANDOM_H_
