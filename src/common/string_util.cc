#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include <algorithm>
#include <cmath>

namespace atune {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string DoubleToString(double v) {
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  std::string s = StrFormat("%.6g", v);
  return s;
}

std::string BytesToString(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%.0f B", bytes);
  return StrFormat("%.1f %s", bytes, units[unit]);
}

}  // namespace atune
