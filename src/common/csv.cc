#include "common/csv.h"

#include <algorithm>
#include <sstream>

#include "common/file_util.h"

namespace atune {

namespace {
std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::WriteCsv(std::ostream& os) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) os << ",";
    os << CsvEscape(header_[i]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << CsvEscape(row[i]);
    }
    os << "\n";
  }
}

Status TableWriter::WriteCsvFile(const std::string& path) const {
  std::ostringstream buffer;
  WriteCsv(buffer);
  return AtomicWriteFile(path, buffer.str());
}

void TableWriter::WritePretty(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto write_sep = [&]() {
    os << "+";
    for (size_t w : widths) {
      for (size_t k = 0; k < w + 2; ++k) os << "-";
      os << "+";
    }
    os << "\n";
  };
  auto write_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell;
      for (size_t k = cell.size(); k < widths[i]; ++k) os << " ";
      os << " |";
    }
    os << "\n";
  };
  write_sep();
  write_row(header_);
  write_sep();
  for (const auto& row : rows_) write_row(row);
  write_sep();
}

}  // namespace atune
