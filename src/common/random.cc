#include "common/random.h"

#include <cmath>

namespace atune {

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF by rejection-free approximation: draw u and walk the
  // (truncated) harmonic weights. For the sizes used by workload generators
  // (n up to a few thousand ranks) the direct walk is fast enough and exact.
  if (n <= 4096) {
    double norm = 0.0;
    for (int64_t i = 0; i < n; ++i) norm += 1.0 / std::pow(i + 1.0, theta);
    double u = Uniform(0.0, norm);
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(i + 1.0, theta);
      if (u <= acc) return i;
    }
    return n - 1;
  }
  // Large n: use the standard approximation via the continuous power-law
  // inverse CDF, clamped to the range.
  double u = Uniform(1e-12, 1.0);
  double x;
  if (theta == 1.0) {
    x = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    double one_minus = 1.0 - theta;
    x = std::pow(u * (std::pow(static_cast<double>(n), one_minus) - 1.0) + 1.0,
                 1.0 / one_minus);
  }
  int64_t idx = static_cast<int64_t>(x) - 1;
  if (idx < 0) idx = 0;
  if (idx >= n) idx = n - 1;
  return idx;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double u = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace atune
