#ifndef ATUNE_COMMON_CSV_H_
#define ATUNE_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace atune {

/// Minimal CSV/table emitter used by benchmark harnesses: collects rows and
/// renders either RFC-ish CSV or an aligned ASCII table for terminals.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  size_t row_count() const { return rows_.size(); }

  /// Writes comma-separated values (fields containing commas/quotes are
  /// quoted).
  void WriteCsv(std::ostream& os) const;

  /// Crash-safe file variant of WriteCsv: renders the whole table and
  /// publishes it via AtomicWriteFile (write-temp, fsync, rename), so an
  /// interrupted harness never leaves a truncated CSV behind.
  Status WriteCsvFile(const std::string& path) const;

  /// Writes an aligned, boxed ASCII table.
  void WritePretty(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace atune

#endif  // ATUNE_COMMON_CSV_H_
