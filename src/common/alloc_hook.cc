#include "common/alloc_hook.h"

#include <atomic>

namespace atune {

namespace {
std::atomic<AllocCountFn> g_alloc_count_fn{nullptr};
}  // namespace

void SetAllocCountHookForTesting(AllocCountFn fn) {
  g_alloc_count_fn.store(fn, std::memory_order_release);
}

uint64_t SampleAllocCount() {
  AllocCountFn fn = g_alloc_count_fn.load(std::memory_order_acquire);
  return fn == nullptr ? 0 : fn();
}

}  // namespace atune
