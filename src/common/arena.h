#ifndef ATUNE_COMMON_ARENA_H_
#define ATUNE_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace atune {

/// Bump allocator for hot-path scratch memory (DESIGN.md §11).
///
/// The GP prediction/acquisition hot path and the Evaluator commit path run
/// once per trial (or per candidate chunk) and need short-lived buffers whose
/// sizes repeat from call to call. A ScratchArena hands out pointers from a
/// reusable block: `Allocate` bumps an offset, `Reset` rewinds it. After the
/// first cycle at a given working-set size the arena reaches steady state —
/// one resident block, zero heap traffic per Reset/Allocate cycle — which is
/// what the zero-allocation commit-path gate in bench_hotpath measures.
///
/// Contracts:
///   * Allocations are only valid until the next Reset (or destruction);
///     Reset does not run destructors, so only trivially-destructible types
///     belong here (doubles, PODs).
///   * Not thread-safe; use one arena per thread (see GpScratch).
///   * If a cycle outgrows the current capacity the arena chains an overflow
///     block, and the next Reset coalesces everything into a single block of
///     the new high-water size — growth is amortized, shrink never happens.
class ScratchArena {
 public:
  ScratchArena() = default;
  explicit ScratchArena(size_t initial_bytes);

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two no
  /// larger than alignof(std::max_align_t)). Never returns nullptr; a zero
  /// request yields a valid (but unusable) pointer.
  void* Allocate(size_t bytes, size_t alignment = alignof(double));

  /// Typed convenience: `count` uninitialized Ts. T must be trivially
  /// destructible — nothing is ever destroyed.
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Invalidates every outstanding allocation and rewinds to the start.
  /// Coalesces overflow blocks so the steady state is a single block.
  void Reset();

  /// Total bytes owned across all blocks.
  size_t capacity() const;
  /// Bytes handed out since the last Reset (including alignment padding).
  size_t used() const { return used_; }
  /// Number of resident blocks; 1 in steady state.
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Appends a block of at least `min_bytes` and makes it current.
  void AddBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t current_ = 0;  ///< index of the block being bumped
  size_t offset_ = 0;   ///< bump offset within blocks_[current_]
  size_t used_ = 0;
};

}  // namespace atune

#endif  // ATUNE_COMMON_ARENA_H_
