// Global operator new/delete replacement that counts allocations per thread
// and self-installs as the SampleAllocCount() source (see alloc_hook.h).
//
// Link this translation unit ONLY into binaries that assert on allocation
// counts (tests/core/commit_alloc_test.cc, bench/bench_hotpath.cc). It is
// deliberately kept out of every atune library target: replacing the global
// allocator is a whole-process decision the library must not make.

#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/alloc_hook.h"

namespace {

thread_local uint64_t t_alloc_count = 0;

uint64_t ThreadAllocCount() { return t_alloc_count; }

void* CountedAlloc(std::size_t size) {
  ++t_alloc_count;
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  ++t_alloc_count;
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of align.
  std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

// Runs before main: installs the counter for the whole process lifetime.
[[maybe_unused]] const bool g_installed = [] {
  atune::SetAllocCountHookForTesting(&ThreadAllocCount);
  return true;
}();

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
