#ifndef ATUNE_COMMON_STRING_UTIL_H_
#define ATUNE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace atune {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a single-character delimiter; empty tokens are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view s);

/// Renders a double compactly (trims trailing zeros, max 6 significant
/// decimals) — used for configuration printing.
std::string DoubleToString(double v);

/// Renders byte counts human-readably: "512 B", "64.0 MB", "1.5 GB".
std::string BytesToString(double bytes);

}  // namespace atune

#endif  // ATUNE_COMMON_STRING_UTIL_H_
