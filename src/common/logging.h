#ifndef ATUNE_COMMON_LOGGING_H_
#define ATUNE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace atune {

/// Log severity levels, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level: messages below it are discarded.
/// Defaults to kWarning so library users see only problems unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message collector; emits to stderr on destruction if the
/// message level passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace atune

/// Stream-style logging: ATUNE_LOG(Info) << "x=" << x;
#define ATUNE_LOG(level)                       \
  ::atune::internal_logging::LogMessage(       \
      ::atune::LogLevel::k##level, __FILE__, __LINE__)

#endif  // ATUNE_COMMON_LOGGING_H_
