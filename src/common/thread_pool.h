#ifndef ATUNE_COMMON_THREAD_POOL_H_
#define ATUNE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace atune {

/// Fixed-size thread pool behind the parallel experiment engine.
///
/// A small, deliberately simple pool: `num_threads` workers pull tasks from
/// one bounded FIFO queue. Submit() blocks when the queue is full
/// (backpressure instead of unbounded memory growth) and returns a
/// std::future for the task's result. Shutdown() — also run by the
/// destructor — stops intake, drains every queued task, and joins the
/// workers, so no submitted work is ever dropped.
///
/// Tasks must not throw: the framework's error handling is Status-based
/// (see DESIGN.md §5), so tasks communicate failure through their return
/// value (e.g. Result<T>), never exceptions.
///
/// Thread-safety: Submit() may be called concurrently from any thread.
/// Shutdown() must be called at most once, and not concurrently with
/// Submit().
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1). `queue_capacity` bounds the
  /// number of not-yet-started tasks; 0 picks 4 * num_threads.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Enqueues `fn` and returns a future for its result. Blocks while the
  /// queue is at capacity. Calling Submit() after Shutdown() is a
  /// programming error; the task is dropped and the returned future is
  /// invalid.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using ReturnType = decltype(fn());
    auto task = std::make_shared<std::packaged_task<ReturnType()>>(
        std::move(fn));
    std::future<ReturnType> future = task->get_future();
    if (!Enqueue([task]() { (*task)(); })) {
      return std::future<ReturnType>();
    }
    return future;
  }

  /// Stops intake, runs every already-queued task, and joins the workers.
  /// Idempotent via the destructor only; see class comment.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  /// Returns false if the pool is shut down (task rejected).
  bool Enqueue(std::function<void()> task);
  void WorkerLoop();

  const size_t queue_capacity_;
  std::mutex mu_;
  std::condition_variable task_available_;   // signaled on enqueue/shutdown
  std::condition_variable space_available_;  // signaled on dequeue
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  bool shutdown_ = false;                    // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace atune

#endif  // ATUNE_COMMON_THREAD_POOL_H_
