#include "core/knowledge_repo.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <dirent.h>
#include <set>

#include "common/file_util.h"
#include "common/io_env.h"
#include "common/random.h"
#include "ml/kmeans.h"

namespace atune {
namespace {

constexpr char kMagic[8] = {'A', 'T', 'U', 'N', 'E', 'K', 'R', 'S'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 8 + 4 + 4 + 4;  // magic, version, len, crc

// Little-endian payload writers. core cannot depend on net/wire, so the
// shard format carries its own (tiny) codec.
void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutString(const std::string& s, std::string* out) {
  PutU32(uint32_t(s.size()), out);
  out->append(s);
}

void PutVec(const Vec& v, std::string* out) {
  PutU32(uint32_t(v.size()), out);
  for (double x : v) PutF64(x, out);
}

// Bounds-checked payload reader: any overrun poisons ok() and every
// subsequent Get returns a zero value, so Decode fails closed.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool Done() const { return ok_ && pos_ == size_; }

  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(uint8_t(data_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(uint8_t(data_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return v;
  }

  double GetF64() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetString() {
    uint32_t n = GetU32();
    if (!Need(n)) return std::string();
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  Vec GetVec() {
    uint32_t n = GetU32();
    // Each element is 8 bytes; reject counts the remaining bytes can't hold
    // before allocating.
    if (!ok_ || size_ - pos_ < size_t(n) * 8) {
      ok_ = false;
      return Vec();
    }
    Vec v(n);
    for (uint32_t i = 0; i < n; ++i) v[i] = GetF64();
    return v;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool ValidShardId(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (char c : id) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' ||
          c == '-')) {
      return false;
    }
  }
  return true;
}

// Per-metric values of the outcome's transferable trials, non-finite
// scrubbed to 0 so sorting and summation stay well defined.
double FiniteOr0(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

KnowledgeRecord MakeKnowledgeRecord(
    const std::string& session_id, const std::string& tenant,
    const std::string& system_name, const ParameterSpace& space,
    const std::vector<std::string>& metric_names, const Workload& workload,
    uint64_t seed, uint64_t budget, const TuningOutcome& outcome) {
  KnowledgeRecord rec;
  rec.session_id = session_id;
  rec.tenant = tenant;
  rec.tuner = outcome.tuner_name;
  rec.system = system_name;
  rec.workload = workload.name;
  rec.workload_kind = workload.kind;
  rec.scale = workload.scale;
  rec.seed = seed;
  rec.budget = budget;
  rec.metric_names = metric_names;

  // Unscaled trials transfer directly; scaled probes ran a different
  // workload intensity and would skew both fingerprint and seeds.
  std::vector<const Trial*> trials;
  for (const Trial& t : outcome.history) {
    if (!t.scaled) trials.push_back(&t);
  }

  rec.fingerprint.assign(metric_names.size(), 0.0);
  if (!trials.empty()) {
    Vec column(trials.size());
    for (size_t m = 0; m < metric_names.size(); ++m) {
      for (size_t i = 0; i < trials.size(); ++i) {
        column[i] = FiniteOr0(trials[i]->result.MetricOr(metric_names[m], 0.0));
      }
      // Sorting the addends makes the mean *bitwise* invariant under any
      // permutation of the trial history (metamorphic-test contract).
      std::sort(column.begin(), column.end());
      double sum = 0.0;
      for (double v : column) sum += v;
      rec.fingerprint[m] = sum / double(column.size());
    }
  }

  rec.configs.reserve(trials.size());
  rec.objectives.reserve(trials.size());
  for (const Trial* t : trials) {
    rec.configs.push_back(space.ToUnitVector(t->config));
    rec.objectives.push_back(FiniteOr0(t->objective));
  }
  return rec;
}

std::string EncodeKnowledgeRecord(const KnowledgeRecord& record) {
  std::string payload;
  PutString(record.session_id, &payload);
  PutString(record.tenant, &payload);
  PutString(record.tuner, &payload);
  PutString(record.system, &payload);
  PutString(record.workload, &payload);
  PutString(record.workload_kind, &payload);
  PutF64(record.scale, &payload);
  PutU64(record.seed, &payload);
  PutU64(record.budget, &payload);
  PutU32(uint32_t(record.metric_names.size()), &payload);
  for (const std::string& m : record.metric_names) PutString(m, &payload);
  PutVec(record.fingerprint, &payload);
  PutU32(uint32_t(record.configs.size()), &payload);
  for (const Vec& c : record.configs) PutVec(c, &payload);
  PutVec(record.objectives, &payload);

  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(kVersion, &out);
  PutU32(uint32_t(payload.size()), &out);
  PutU32(Crc32(0, payload.data(), payload.size()), &out);
  out.append(payload);
  return out;
}

Result<KnowledgeRecord> DecodeKnowledgeRecord(const std::string& bytes) {
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("knowledge shard: bad magic or truncated header");
  }
  PayloadReader header(bytes.data() + sizeof(kMagic), kHeaderSize - sizeof(kMagic));
  uint32_t version = header.GetU32();
  uint32_t len = header.GetU32();
  uint32_t crc = header.GetU32();
  if (version != kVersion) {
    return Status::IoError("knowledge shard: unsupported version");
  }
  if (bytes.size() != kHeaderSize + size_t(len)) {
    return Status::IoError("knowledge shard: length mismatch");
  }
  const char* payload = bytes.data() + kHeaderSize;
  if (Crc32(0, payload, len) != crc) {
    return Status::IoError("knowledge shard: CRC mismatch");
  }

  PayloadReader r(payload, len);
  KnowledgeRecord rec;
  rec.session_id = r.GetString();
  rec.tenant = r.GetString();
  rec.tuner = r.GetString();
  rec.system = r.GetString();
  rec.workload = r.GetString();
  rec.workload_kind = r.GetString();
  rec.scale = r.GetF64();
  rec.seed = r.GetU64();
  rec.budget = r.GetU64();
  uint32_t n_metrics = r.GetU32();
  for (uint32_t i = 0; i < n_metrics && r.ok(); ++i) {
    rec.metric_names.push_back(r.GetString());
  }
  rec.fingerprint = r.GetVec();
  uint32_t n_configs = r.GetU32();
  for (uint32_t i = 0; i < n_configs && r.ok(); ++i) {
    rec.configs.push_back(r.GetVec());
  }
  rec.objectives = r.GetVec();
  if (!r.Done()) {
    return Status::IoError("knowledge shard: malformed payload");
  }
  if (rec.objectives.size() != rec.configs.size() ||
      rec.fingerprint.size() != rec.metric_names.size()) {
    return Status::IoError("knowledge shard: inconsistent record");
  }
  return rec;
}

KnowledgeRepository::KnowledgeRepository(std::string dir, size_t shard_buckets)
    : dir_(std::move(dir)), shard_buckets_(shard_buckets == 0 ? 1 : shard_buckets) {}

std::string KnowledgeRepository::ShardName(const std::string& session_id) const {
  uint32_t h = Crc32(0, session_id.data(), session_id.size());
  return "s" + std::to_string(size_t(h) % shard_buckets_) + "-" + session_id +
         ".krs";
}

Status KnowledgeRepository::Ingest(const KnowledgeRecord& record) {
  if (!ValidShardId(record.session_id)) {
    return Status::InvalidArgument("knowledge ingest: bad session id '" +
                                   record.session_id + "'");
  }
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir(" + dir_ + "): " + std::strerror(errno));
  }
  return AtomicWriteFile(dir_ + "/" + ShardName(record.session_id),
                         EncodeKnowledgeRecord(record));
}

std::vector<std::string> KnowledgeRepository::ListShards() const {
  std::vector<std::string> names;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return names;
  while (struct dirent* ent = ::readdir(dir)) {
    std::string name = ent->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".krs") == 0) {
      names.push_back(name);
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Result<KnowledgeRecord> KnowledgeRepository::LoadShard(
    const std::string& filename) const {
  std::string bytes;
  Status s = IoEnv::Current()->ReadFileToString(dir_ + "/" + filename, &bytes);
  if (!s.ok()) return s;
  return DecodeKnowledgeRecord(bytes);
}

Result<std::vector<KnowledgeRecord>> KnowledgeRepository::LoadShards(
    const std::vector<std::string>& filenames, size_t* corrupt_skipped) const {
  std::vector<KnowledgeRecord> records;
  size_t skipped = 0;
  for (const std::string& name : filenames) {
    auto rec = LoadShard(name);
    if (rec.ok()) {
      records.push_back(std::move(*rec));
    } else {
      ++skipped;  // corrupt or unreadable shards are skipped, never fatal
    }
  }
  if (corrupt_skipped != nullptr) *corrupt_skipped = skipped;
  return records;
}

Result<std::vector<KnowledgeRecord>> KnowledgeRepository::LoadAll(
    size_t* corrupt_skipped) const {
  return LoadShards(ListShards(), corrupt_skipped);
}

namespace {

// Splits "s<bucket-digits>-<id>.krs" into its embedded session id. The
// bucket digits cannot contain '-', so the first dash is the separator even
// when the id itself has dashes. Anything that does not match the pattern
// is a foreign file compaction must not touch.
bool ParseShardFilename(const std::string& name, std::string* id) {
  constexpr size_t kExtLen = 4;  // ".krs"
  if (name.size() <= kExtLen + 2 || name[0] != 's' ||
      name.compare(name.size() - kExtLen, kExtLen, ".krs") != 0) {
    return false;
  }
  size_t dash = name.find('-');
  if (dash == std::string::npos || dash < 2 || dash + 1 >= name.size() - kExtLen) {
    return false;
  }
  for (size_t i = 1; i < dash; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  *id = name.substr(dash + 1, name.size() - kExtLen - dash - 1);
  return ValidShardId(*id);
}

}  // namespace

Status KnowledgeRepository::Compact(CompactionStats* stats) {
  CompactionStats local;
  IoEnv* env = IoEnv::Current();
  const std::vector<std::string> shards = ListShards();
  std::set<std::string> present(shards.begin(), shards.end());
  Status first_error;
  bool mutated = false;
  for (const std::string& name : shards) {
    std::string id;
    if (!ParseShardFilename(name, &id)) continue;  // foreign file: untouched
    const std::string canonical = ShardName(id);
    if (name == canonical) continue;
    ++local.superseded;
    if (present.count(canonical) != 0) {
      // Every Ingest publishes under the current ShardName, so the
      // canonical twin is the newest record for this id — but it only
      // supersedes the stale copy if it actually decodes. A corrupt
      // survivor never costs the duplicate (corrupt-skip contract).
      if (LoadShard(canonical).ok()) {
        Status s = env->Unlink(dir_ + "/" + name);
        if (s.ok()) {
          ++local.removed;
          mutated = true;
        } else if (first_error.ok()) {
          first_error = s;
        }
      } else {
        ++local.corrupt_kept;
      }
    } else if (LoadShard(name).ok()) {
      // Sole copy stranded under a stale bucket: move it to where current
      // readers and re-ingests look, instead of dropping knowledge.
      Status s = env->Rename(dir_ + "/" + name, dir_ + "/" + canonical);
      if (s.ok()) {
        ++local.renamed;
        mutated = true;
        present.insert(canonical);
      } else if (first_error.ok()) {
        first_error = s;
      }
    } else {
      ++local.corrupt_kept;  // unreadable: never unlink or move it
    }
  }
  if (mutated) {
    // One directory fsync makes the whole pass's unlinks/renames durable.
    Status s = env->SyncDir(dir_ + "/.");
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  if (stats != nullptr) *stats = local;
  return first_error;
}

namespace {

// Decile boundaries over the *distinct* values of one metric dimension.
// Working on distinct values (not the multiset) makes binning invariant
// under record duplication.
Vec DecileBoundaries(const std::set<double>& distinct) {
  Vec sorted(distinct.begin(), distinct.end());
  Vec bounds;
  bounds.reserve(9);
  for (size_t j = 1; j <= 9; ++j) {
    size_t idx = j * sorted.size() / 10;
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    bounds.push_back(sorted[idx]);
  }
  return bounds;
}

double BinValue(const Vec& bounds, double v) {
  double bin = 0.0;
  for (double b : bounds) {
    if (v >= b) bin += 1.0;
  }
  return bin;
}

}  // namespace

WorkloadMapping MapWorkloadKnn(const std::vector<KnowledgeRecord>& records,
                               const Vec& target_fingerprint, size_t k) {
  WorkloadMapping mapping;
  const size_t dims = target_fingerprint.size();
  if (dims == 0) return mapping;

  std::vector<size_t> candidates;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].fingerprint.size() == dims) candidates.push_back(i);
  }
  if (candidates.empty()) return mapping;

  // All pruning/binning statistics come from the distinct fingerprints of
  // the queried set plus the target — a pure function of the query, so a
  // long-lived process carries no normalization state across tenants, and
  // duplicated records cannot shift boundaries.
  std::set<Vec> distinct_set;
  for (size_t i : candidates) distinct_set.insert(records[i].fingerprint);
  distinct_set.insert(target_fingerprint);
  std::vector<Vec> distinct(distinct_set.begin(), distinct_set.end());

  // Step 1: drop near-constant metrics — they cannot discriminate workloads.
  std::vector<size_t> kept;
  for (size_t d = 0; d < dims; ++d) {
    double lo = distinct[0][d], hi = distinct[0][d];
    for (const Vec& fp : distinct) {
      lo = std::min(lo, fp[d]);
      hi = std::max(hi, fp[d]);
    }
    if (hi - lo > 1e-12) kept.push_back(d);
  }

  // Step 2 (OtterTune §5.1, via ml/kmeans): cluster the standardized
  // per-metric profiles and keep the member nearest each centroid, so
  // redundant metrics don't dominate the distance. Fixed seed: the mapping
  // must be a deterministic function of the queried set.
  if (kept.size() > 2 && distinct.size() >= 2) {
    std::vector<Vec> profiles;
    profiles.reserve(kept.size());
    for (size_t d : kept) {
      Vec profile(distinct.size());
      double mean = 0.0;
      for (size_t i = 0; i < distinct.size(); ++i) mean += distinct[i][d];
      mean /= double(distinct.size());
      double var = 0.0;
      for (size_t i = 0; i < distinct.size(); ++i) {
        var += (distinct[i][d] - mean) * (distinct[i][d] - mean);
      }
      double sd = std::sqrt(var / double(distinct.size()));
      if (sd < 1e-12) sd = 1e-12;
      for (size_t i = 0; i < distinct.size(); ++i) {
        profile[i] = (distinct[i][d] - mean) / sd;
      }
      profiles.push_back(std::move(profile));
    }
    Rng rng(0x5eedULL);
    auto clustering =
        KMeansAutoK(profiles, std::min<size_t>(profiles.size(), 8), &rng);
    if (clustering.ok()) {
      std::vector<size_t> reps;
      for (size_t c = 0; c < clustering->centroids.size(); ++c) {
        double best = 0.0;
        size_t best_idx = profiles.size();
        for (size_t p = 0; p < profiles.size(); ++p) {
          if (clustering->assignments[p] != c) continue;
          double dist = 0.0;
          for (size_t i = 0; i < profiles[p].size(); ++i) {
            double diff = profiles[p][i] - clustering->centroids[c][i];
            dist += diff * diff;
          }
          if (best_idx == profiles.size() || dist < best) {
            best = dist;
            best_idx = p;
          }
        }
        if (best_idx < profiles.size()) reps.push_back(kept[best_idx]);
      }
      if (!reps.empty()) {
        std::sort(reps.begin(), reps.end());
        kept = std::move(reps);
      }
    }
  }
  mapping.metric_idx = kept;
  if (kept.empty()) return mapping;

  // Step 3: deciles-binned Euclidean distance (OtterTune §5.2).
  std::vector<Vec> bounds;
  bounds.reserve(kept.size());
  for (size_t d : kept) {
    std::set<double> values;
    for (const Vec& fp : distinct) values.insert(fp[d]);
    bounds.push_back(DecileBoundaries(values));
  }
  Vec target_bins(kept.size());
  for (size_t j = 0; j < kept.size(); ++j) {
    target_bins[j] = BinValue(bounds[j], target_fingerprint[kept[j]]);
  }

  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates.size());
  for (size_t i : candidates) {
    double dist = 0.0;
    for (size_t j = 0; j < kept.size(); ++j) {
      double diff = BinValue(bounds[j], records[i].fingerprint[kept[j]]) -
                    target_bins[j];
      dist += diff * diff;
    }
    scored.emplace_back(std::sqrt(dist), i);
  }
  std::sort(scored.begin(), scored.end(),
            [&records](const std::pair<double, size_t>& a,
                       const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first < b.first;
              if (records[a.second].session_id != records[b.second].session_id) {
                return records[a.second].session_id <
                       records[b.second].session_id;
              }
              return a.second < b.second;
            });
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    mapping.neighbors.push_back(scored[i].second);
    mapping.distances.push_back(scored[i].first);
  }
  return mapping;
}

std::vector<Vec> SelectWarmConfigs(const std::vector<KnowledgeRecord>& records,
                                   const std::vector<size_t>& neighbors,
                                   size_t dims, size_t max_configs) {
  // Per-neighbor trial order: best objective first, config bytes as a
  // deterministic tie-break.
  std::vector<std::vector<size_t>> order(neighbors.size());
  for (size_t n = 0; n < neighbors.size(); ++n) {
    const KnowledgeRecord& rec = records[neighbors[n]];
    for (size_t t = 0; t < rec.configs.size(); ++t) {
      if (rec.configs[t].size() == dims) order[n].push_back(t);
    }
    std::sort(order[n].begin(), order[n].end(), [&rec](size_t a, size_t b) {
      if (rec.objectives[a] != rec.objectives[b]) {
        return rec.objectives[a] < rec.objectives[b];
      }
      return rec.configs[a] < rec.configs[b];
    });
  }

  std::vector<Vec> selected;
  // Round-robin nearest-neighbor first: each neighbor contributes its best
  // remaining trial in turn, so one giant session can't crowd out the rest.
  for (size_t level = 0; selected.size() < max_configs; ++level) {
    bool any = false;
    for (size_t n = 0; n < neighbors.size() && selected.size() < max_configs;
         ++n) {
      if (level >= order[n].size()) continue;
      any = true;
      const Vec& config = records[neighbors[n]].configs[order[n][level]];
      if (std::find(selected.begin(), selected.end(), config) ==
          selected.end()) {
        selected.push_back(config);
      }
    }
    if (!any) break;
  }
  return selected;
}

}  // namespace atune
